// Package repro is a from-scratch Go reproduction of "Detailed Design and
// Evaluation of Redundant Multithreading Alternatives" (Mukherjee, Kontz,
// Reinhardt; ISCA 2002): a cycle-level model of an EV8-class SMT processor
// with the paper's SRT, lockstepping and CRT fault-detection organisations,
// an 18-kernel SPEC CPU95-analog workload suite, a fault-injection
// framework, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go drive the same experiment code as
// cmd/rmtbench.
package repro
