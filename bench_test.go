// Benchmarks, one per table/figure of the paper's evaluation (DESIGN.md's
// experiment index), plus ablation benches for the design choices called
// out there. Each benchmark runs the same experiment code as cmd/rmtbench
// and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation at reduced size (use cmd/rmtbench for
// the full-size recorded numbers in EXPERIMENTS.md).
package repro

import (
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

func benchParams(b *testing.B) exp.Params {
	p := exp.Quick()
	if !testing.Short() {
		p.Budget = 15000
		p.Warmup = 10000
	}
	return p
}

// benchExperiment runs one experiment per iteration and reports its summary
// metrics.
func benchExperiment(b *testing.B, run func(exp.Params) (*stats.Table, map[string]float64, error)) {
	p := benchParams(b)
	b.ResetTimer()
	var summary map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, summary, err = run(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range stats.SortedKeys(summary) {
		b.ReportMetric(summary[k], k)
	}
}

// BenchmarkTable1_BaseIPC measures the base machine itself: simulated IPC
// on a representative kernel and simulator throughput (simulated cycles per
// wall-second is the benchmark's ns/op inverse).
func BenchmarkTable1_BaseIPC(b *testing.B) {
	p := benchParams(b)
	var ipc float64
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := sim.Build(sim.Spec{
			Mode: sim.ModeBase, Programs: []string{"gcc"},
			Budget: p.Budget, Warmup: p.Warmup, Config: pipeline.DefaultConfig(),
		})
		if err != nil {
			b.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		ipc = rs.LogicalIPC[0]
		cycles = rs.Cycles
	}
	b.ReportMetric(ipc, "IPC")
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkFig6_SRT regenerates Figure 6: single logical thread under
// Base2 / SRT / SRT+ptSQ / SRT+noSC.
func BenchmarkFig6_SRT(b *testing.B) { benchExperiment(b, exp.Fig6) }

// BenchmarkFig7_PSR regenerates Figure 7: preferential space redundancy.
func BenchmarkFig7_PSR(b *testing.B) { benchExperiment(b, exp.Fig7) }

// BenchmarkFig8_SRT2 regenerates the two-logical-thread SRT figure.
func BenchmarkFig8_SRT2(b *testing.B) { benchExperiment(b, exp.Fig8) }

// BenchmarkFig9_StoreLifetime regenerates the store-queue pressure figure.
func BenchmarkFig9_StoreLifetime(b *testing.B) { benchExperiment(b, exp.Fig9) }

// BenchmarkFig10_Lock_CRT1 regenerates lockstep-vs-CRT, one logical thread.
func BenchmarkFig10_Lock_CRT1(b *testing.B) { benchExperiment(b, exp.Fig10) }

// BenchmarkFig11_Lock_CRT2 regenerates lockstep-vs-CRT, two logical threads.
func BenchmarkFig11_Lock_CRT2(b *testing.B) { benchExperiment(b, exp.Fig11) }

// BenchmarkFig12_Lock_CRT4 regenerates lockstep-vs-CRT, four logical
// threads.
func BenchmarkFig12_Lock_CRT4(b *testing.B) { benchExperiment(b, exp.Fig12) }

// BenchmarkCoverage_Faults regenerates the fault-injection campaigns.
func BenchmarkCoverage_Faults(b *testing.B) { benchExperiment(b, exp.Coverage) }

// BenchmarkCampaign_ForkOnFault measures one serial fault-injection
// campaign: 96 trials on SRT/compress over a doubled cycle budget (the
// legacy engine's cost scales with run length × trials; the fork engine
// pays the run once, so a campaign-sized workload is where the design
// difference shows). By default it runs the fork-on-fault engine — golden
// run simulated once with periodic state checkpoints, each trial restores
// the checkpoint before its injection and replays only the suffix, exiting
// early when its state rejoins the golden run bytewise;
// RMT_CAMPAIGN_ENGINE=legacy selects the original
// build-everything-per-trial engine. Both engines produce byte-identical
// summaries (internal/fault's TestForkMatchesLegacy), so their ns/op ratio
// — recorded in BENCH_5.json with the legacy run as "baseline" and the fork
// run as "current" — is the campaign speedup at parallelism 1. The
// identical simcycles metric across the two roles is the equivalence check
// in artifact form.
func BenchmarkCampaign_ForkOnFault(b *testing.B) {
	p := benchParams(b)
	spec := sim.Spec{
		Mode: sim.ModeSRT, Programs: []string{"compress"},
		Budget: 2 * p.Budget, Warmup: p.Warmup,
		Config: pipeline.DefaultConfig(), PSR: true,
	}
	engine := fault.CampaignParallel
	if os.Getenv("RMT_CAMPAIGN_ENGINE") == "legacy" {
		engine = fault.CampaignLegacy
	}
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := engine(spec, 96, 0xC0FFEE, fault.CampaignOptions{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		total = sum.TotalCycles
	}
	b.ReportMetric(float64(total), "simcycles")
}

// BenchmarkCampaign_StaticPruning measures the same serial fork-on-fault
// campaign on gcc+li — the kernels whose vulnerability profiles carry
// statically-masked sites — without pruning by default, and with
// PruneStaticallyMasked when RMT_CAMPAIGN_PRUNE=1. The two runs produce
// byte-identical summaries (internal/fault's TestPrunedCampaignByteIdentical),
// so the ns/op ratio — recorded in BENCH_6.json with the unpruned run as
// "baseline" and the pruned run as "current" — is the pure replay work the
// static ACE analysis saves; the pruned metric reports how many trials it
// claimed.
func BenchmarkCampaign_StaticPruning(b *testing.B) {
	p := benchParams(b)
	spec := sim.Spec{
		Mode: sim.ModeSRT, Programs: []string{"gcc", "li"},
		Budget: 2 * p.Budget, Warmup: p.Warmup,
		Config: pipeline.DefaultConfig(), PSR: true,
	}
	opts := fault.CampaignOptions{Parallelism: 1}
	opts.PruneStaticallyMasked = os.Getenv("RMT_CAMPAIGN_PRUNE") == "1"
	var pstats fault.PruneStats
	opts.PruneStats = &pstats
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := fault.CampaignParallel(spec, 96, 0xF00D, opts)
		if err != nil {
			b.Fatal(err)
		}
		total = sum.TotalCycles
	}
	b.ReportMetric(float64(total), "simcycles")
	b.ReportMetric(float64(pstats.Pruned), "pruned")
}

// BenchmarkFunctionalCampaignReplay measures the batched functional
// execution engine on the campaign-replay shape: 64 trials of one
// generated kernel, each lane armed with its own planned transient, run as
// one SoA vm.Batch with predecoded handler tables. RMT_VM_DISPATCH=switch
// selects the baseline — 64 independent scalar threads on the original
// decode-per-step switch (the pre-batch engine). Both engines execute the
// identical instruction streams (internal/vmdiff's lockstep battery), so
// the ns/op ratio — recorded in BENCH_7.json with the switch run as
// "baseline" and the batched run as "current" — is pure dispatch+layout
// speedup. The functional engine's unit of work is executed instructions;
// they are reported as the simcycles metric (identical across roles, the
// equivalence check in artifact form) and as KIPS.
func BenchmarkFunctionalCampaignReplay(b *testing.B) {
	const lanes = 64
	k := progen.Generate(progen.CorpusSeeds(0xC0FFEE, 1)[0])
	spec := sim.Spec{
		Programs: []string{progen.Name(k.Seed)},
		Warmup:   k.MaxDynInstr / 4, Budget: k.MaxDynInstr,
	}
	hooks := make([]vm.CorruptFunc, lanes)
	for i, f := range fault.Plan(spec, lanes, 0xBEEF) {
		f := f
		hooks[i] = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
			if point == f.Point && seq == f.AtSeq {
				return v ^ (1 << (f.Bit & 63))
			}
			return v
		}
	}
	maxRounds := 4*k.MaxDynInstr + 64
	scalar := os.Getenv("RMT_VM_DISPATCH") == "switch"
	var executed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := vm.NewMemory()
		vm.Load(k.Prog, mem)
		if scalar {
			for lane := 0; lane < lanes; lane++ {
				th := vm.NewThreadWith(lane, k.Prog, mem, vm.Config{Dispatch: vm.DispatchSwitch})
				th.Tolerant = true
				th.Corrupt = hooks[lane]
				th.Run(maxRounds)
				executed += th.Seq
			}
		} else {
			bt := vm.NewBatch(k.Prog, mem, lanes)
			bt.Tolerant = true
			copy(bt.Corrupt, hooks)
			bt.Run(maxRounds)
			for lane := 0; lane < lanes; lane++ {
				executed += bt.Seq[lane]
			}
		}
	}
	b.ReportMetric(float64(executed)/float64(b.N), "simcycles")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(executed)/secs/1000, "KIPS")
	}
}

// BenchmarkCorpusBatchReplay measures the corpus-verification shape
// behind the metamorphic and differential batteries: fault-free functional
// replay of 64 lanes each of 8 fixed-corpus kernels, run as one SoA
// vm.Batch per kernel with no Observer — the column fast path, where live
// lanes bucket by PC and each distinct PC costs one handler call.
// RMT_VM_DISPATCH=switch selects the baseline (independent scalar threads
// on the decode-per-step switch). Reported like
// BenchmarkFunctionalCampaignReplay; with no corruption hooks in either
// engine, the ratio isolates dispatch and SoA layout.
func BenchmarkCorpusBatchReplay(b *testing.B) {
	const lanes = 64
	seeds := progen.CorpusSeeds(0xC0FFEE, 8)
	kernels := make([]*progen.Kernel, len(seeds))
	for i, s := range seeds {
		kernels[i] = progen.Generate(s)
	}
	scalar := os.Getenv("RMT_VM_DISPATCH") == "switch"
	var executed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			mem := vm.NewMemory()
			vm.Load(k.Prog, mem)
			maxRounds := 4*k.MaxDynInstr + 64
			if scalar {
				for lane := 0; lane < lanes; lane++ {
					th := vm.NewThreadWith(lane, k.Prog, mem, vm.Config{Dispatch: vm.DispatchSwitch})
					th.Tolerant = true
					th.Run(maxRounds)
					executed += th.Seq
				}
			} else {
				bt := vm.NewBatch(k.Prog, mem, lanes)
				bt.Tolerant = true
				bt.Run(maxRounds)
				for lane := 0; lane < lanes; lane++ {
					executed += bt.Seq[lane]
				}
			}
		}
	}
	b.ReportMetric(float64(executed)/float64(b.N), "simcycles")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(executed)/secs/1000, "KIPS")
	}
}

// BenchmarkProgenCharacterize measures corpus characterisation — the full
// functional replay behind every generated kernel's profile — on the
// batched engine (progen.Characterize, a single-lane vm.Batch).
// RMT_VM_DISPATCH=switch selects the scalar decode-switch oracle
// (progen.CharacterizeOracle, the pre-batch path). Profiles are
// byte-identical across engines (TestCharacterizeMatchesOracle), so the
// ns/op ratio is pure dispatch speedup; executed instructions are reported
// as simcycles and KIPS as in BenchmarkFunctionalCampaignReplay.
func BenchmarkProgenCharacterize(b *testing.B) {
	seeds := progen.CorpusSeeds(0xC0FFEE, 16)
	kernels := make([]*progen.Kernel, len(seeds))
	for i, s := range seeds {
		kernels[i] = progen.Generate(s)
	}
	characterize := progen.Characterize
	if os.Getenv("RMT_VM_DISPATCH") == "switch" {
		characterize = progen.CharacterizeOracle
	}
	var perIter uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perIter = 0
		for _, k := range kernels {
			p, err := characterize(k)
			if err != nil {
				b.Fatal(err)
			}
			perIter += p.DynInstrs
		}
	}
	b.ReportMetric(float64(perIter), "simcycles")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(perIter)*float64(b.N)/secs/1000, "KIPS")
	}
}

// --- ablation benches (design choices from DESIGN.md §5) ---

func ablationEff(b *testing.B, p exp.Params, spec sim.Spec, cycles *uint64) float64 {
	base, err := sim.BaseIPC(p.Config, p.Warmup, p.Budget, spec.Programs...)
	if err != nil {
		b.Fatal(err)
	}
	spec.Budget = p.Budget
	spec.Warmup = p.Warmup
	if spec.Config.RetireWidth == 0 {
		spec.Config = p.Config
	}
	m, err := sim.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	*cycles += rs.Cycles
	var sum float64
	for i, name := range spec.Programs {
		sum += rs.LogicalIPC[i] / base[name]
	}
	return sum / float64(len(spec.Programs))
}

// BenchmarkAblation_SlackFetch compares the paper's LPQ-priority trailing
// fetch policy with the original SRT slack-fetch mechanism (the paper found
// the LPQ's inherent delay subsumes slack fetch).
func BenchmarkAblation_SlackFetch(b *testing.B) {
	p := benchParams(b)
	var lpq, slack float64
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cycles = 0
		lpq = ablationEff(b, p, sim.Spec{Mode: sim.ModeSRT, PSR: true, Programs: []string{"gcc"}}, &cycles)
		slack = ablationEff(b, p, sim.Spec{Mode: sim.ModeSRT, PSR: true, SlackFetch: 64, Programs: []string{"gcc"}}, &cycles)
	}
	b.ReportMetric(lpq, "eff-lpq-priority")
	b.ReportMetric(slack, "eff-slack-64")
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkAblation_LVQDepth sweeps the load value queue size: too shallow
// an LVQ throttles the leading thread's retirement.
func BenchmarkAblation_LVQDepth(b *testing.B) {
	p := benchParams(b)
	effs := map[int]float64{}
	sizes := []int{8, 16, 64}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cycles = 0
		for _, sz := range sizes {
			cfg := p.Config
			cfg.LVQSize = sz
			effs[sz] = ablationEff(b, p, sim.Spec{
				Mode: sim.ModeSRT, PSR: true, Programs: []string{"li"}, Config: cfg,
			}, &cycles)
		}
	}
	b.ReportMetric(effs[8], "eff-lvq8")
	b.ReportMetric(effs[16], "eff-lvq16")
	b.ReportMetric(effs[64], "eff-lvq64")
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkAblation_CRTForwardLatency checks CRT's robustness to the
// cross-core datapath latency: the decoupling queues keep it off the
// critical path (contrast with the checker latency, which lockstepping
// pays on every cache miss).
func BenchmarkAblation_CRTForwardLatency(b *testing.B) {
	p := benchParams(b)
	var crt float64
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cycles = 0
		crt = ablationEff(b, p, sim.Spec{Mode: sim.ModeCRT, PSR: true, Programs: []string{"gcc", "swim"}}, &cycles)
	}
	b.ReportMetric(crt, "eff-crt-4cycle")
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkSimulatorThroughput measures raw simulation speed over a mixed
// 4-thread workload: simulated instructions per iteration, plus the two
// headline throughput rates — simulated cycles per wall-clock second and
// thousands of committed instructions per wall-clock second (KIPS).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := benchParams(b)
	var simulated, cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.Build(sim.Spec{
			Mode: sim.ModeBase, Programs: []string{"gcc", "go", "swim", "fpppp"},
			Budget: p.Budget, Warmup: p.Warmup, Config: pipeline.DefaultConfig(),
		})
		if err != nil {
			b.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		simulated += rs.TotalCommitted()
		cycles += rs.Cycles
	}
	b.ReportMetric(float64(simulated)/float64(b.N), "instructions/op")
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "cycles/sec")
		b.ReportMetric(float64(simulated)/secs/1000, "KIPS")
	}
}
