package rmt

import (
	"context"
	"strings"
	"testing"
)

// testOpts keeps facade tests fast.
func testOpts(extra ...Option) []Option {
	return append([]Option{WithBudget(3000), WithWarmup(1500)}, extra...)
}

// TestRunSRT: the facade runs a redundant pair end to end and surfaces the
// sphere-of-replication activity without any internal imports.
func TestRunSRT(t *testing.T) {
	res, err := Run(context.Background(), Spec{Mode: SRT, PSR: true, Programs: []string{"gcc"}}, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || len(res.IPC) != 1 || res.IPC[0] <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if len(res.Checks) != 1 {
		t.Fatalf("SRT run should expose one pair's checks, got %d", len(res.Checks))
	}
	c := res.Checks[0]
	if c.StoresCompared == 0 || c.LoadsReplicated == 0 {
		t.Errorf("no sphere-boundary activity recorded: %+v", c)
	}
	if c.StoreMismatches != 0 {
		t.Errorf("fault-free run reported %d mismatches", c.StoreMismatches)
	}
	if len(res.StoreLifetime) != 1 || res.StoreLifetime[0] <= 0 {
		t.Errorf("store lifetime missing: %v", res.StoreLifetime)
	}
}

// TestRunBaseHasNoChecks: non-redundant modes expose no pair activity.
func TestRunBaseHasNoChecks(t *testing.T) {
	res, err := Run(context.Background(), Spec{Mode: Base, Programs: []string{"compress"}}, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checks) != 0 {
		t.Errorf("base run has %d pair checks, want 0", len(res.Checks))
	}
}

// TestSweepOrderingAndReport: results come back in spec order and the
// report accounts for every job.
func TestSweepOrderingAndReport(t *testing.T) {
	specs := []Spec{
		{Mode: Base, Programs: []string{"gcc"}},
		{Mode: SRT, PSR: true, Programs: []string{"gcc"}},
		{Mode: Base, Programs: []string{"swim"}},
	}
	var rep Report
	var lastDone int
	results, err := Sweep(context.Background(), specs, testOpts(
		WithParallelism(3),
		WithProgress(func(done, total int) { lastDone = done }),
		WithReport(func(r Report) { rep = r }))...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Spec.Mode != specs[i].Mode || r.Spec.Programs[0] != specs[i].Programs[0] {
			t.Errorf("result %d echoes spec %+v, want %+v", i, r.Spec, specs[i])
		}
	}
	if len(results[1].Checks) != 1 || len(results[0].Checks) != 0 {
		t.Error("sweep results not aligned with specs (checks mismatch)")
	}
	if rep.Jobs != 3 || lastDone != 3 {
		t.Errorf("report jobs=%d lastDone=%d, want 3", rep.Jobs, lastDone)
	}
	// The SRT run is strictly slower than base on the same kernel.
	if results[1].IPC[0] >= results[0].IPC[0] {
		t.Errorf("SRT IPC %.3f >= base IPC %.3f; redundancy should cost something",
			results[1].IPC[0], results[0].IPC[0])
	}
}

// TestSweepDeterministicAcrossParallelism: the same sweep yields identical
// numbers serially and fanned out.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	specs := []Spec{
		{Mode: SRT, PSR: true, Programs: []string{"li"}},
		{Mode: CRT, PSR: true, Programs: []string{"gcc", "swim"}},
	}
	serial, err := Sweep(context.Background(), specs, testOpts(WithParallelism(1))...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(context.Background(), specs, testOpts(WithParallelism(4))...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Cycles != parallel[i].Cycles {
			t.Errorf("spec %d: cycles %d (serial) vs %d (parallel)", i, serial[i].Cycles, parallel[i].Cycles)
		}
		for j := range serial[i].IPC {
			if serial[i].IPC[j] != parallel[i].IPC[j] {
				t.Errorf("spec %d thread %d: IPC differs", i, j)
			}
		}
	}
}

// TestBaseIPC: reference runs come back keyed by kernel, deduplicated.
func TestBaseIPC(t *testing.T) {
	got, err := BaseIPC(context.Background(), []string{"gcc", "swim", "gcc"}, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 entries, got %v", got)
	}
	for k, v := range got {
		if v <= 0 {
			t.Errorf("base IPC of %s = %v", k, v)
		}
	}
}

// TestModeRoundTrip: ParseMode inverts String for every mode, and bad
// input errors.
func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Base, Base2, SRT, Lockstep, CRT} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus input")
	}
	if _, err := Run(context.Background(), Spec{Mode: Mode(99), Programs: []string{"gcc"}}, testOpts()...); err == nil {
		t.Error("Run accepted an unknown mode")
	}
}

// TestKernels: the suite is exposed and includes the paper's multiprogram
// workloads.
func TestKernels(t *testing.T) {
	ks := Kernels()
	if len(ks) != 18 {
		t.Fatalf("suite has %d kernels, want 18", len(ks))
	}
	have := map[string]bool{}
	for _, k := range ks {
		have[k] = true
	}
	for _, want := range []string{"gcc", "go", "fpppp", "swim"} {
		if !have[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

// TestExperimentsFacade: every experiment is listed, and a quick Table1
// render carries the machine parameters.
func TestExperimentsFacade(t *testing.T) {
	exps := Experiments()
	if len(exps) != 10 {
		t.Fatalf("want 10 experiments, got %d", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Description == "" {
			t.Errorf("experiment missing metadata: %+v", e)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig6", "fig12", "coverage", "recovery", "adaptive"} {
		if !ids[want] {
			t.Errorf("experiments missing %s", want)
		}
	}
	tbl := Table1()
	if !strings.Contains(tbl.String(), "store queue") {
		t.Error("Table1 render missing machine parameters")
	}
	if len(tbl.Rows()) == 0 || len(tbl.Columns()) == 0 || tbl.Title() == "" {
		t.Error("Table accessors empty")
	}
	if !strings.Contains(tbl.CSV(), ",") {
		t.Error("CSV render empty")
	}
}

// TestExperimentSizes: option resolution for experiment sizing.
func TestExperimentSizes(t *testing.T) {
	if b, w := ExperimentSizes(); b != 50000 || w != 50000 {
		t.Errorf("full sizes = %d/%d", b, w)
	}
	if b, w := ExperimentSizes(WithQuick()); b != 8000 || w != 5000 {
		t.Errorf("quick sizes = %d/%d", b, w)
	}
	if b, w := ExperimentSizes(WithQuick(), WithBudget(123), WithWarmup(45)); b != 123 || w != 45 {
		t.Errorf("override sizes = %d/%d", b, w)
	}
}
