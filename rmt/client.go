package rmt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a running rmtd daemon (cmd/rmtd, internal/server): the
// same experiments Run and Sweep compute locally, served over HTTP with
// content-addressed caching on the daemon side. Methods mirror the local
// API — Client.Run returns the identical Result a local Run of the same
// spec and sizes would, because the daemon computes through this very
// facade and a cache hit replays the stored bytes.
//
//	c := rmt.NewClient("http://127.0.0.1:8471")
//	res, err := c.Run(ctx, rmt.Spec{Mode: rmt.SRT, Programs: []string{"gcc"}}, rmt.WithQuick())
type Client struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8471".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// specWire mirrors internal/server's SpecWire JSON contract (the packages
// cannot share the type: the serving layer sits above this facade in the
// import DAG). ClientContractBody in the server's e2e battery pins the
// two encodings together.
type specWire struct {
	Mode               string   `json:"mode"`
	Programs           []string `json:"programs"`
	PSR                bool     `json:"psr"`
	PerThreadSQ        bool     `json:"per_thread_sq"`
	NoStoreComparison  bool     `json:"no_store_comparison"`
	CheckerLatency     uint64   `json:"checker_latency"`
	AdaptiveThreshold  float64  `json:"adaptive_threshold"`
	CheckpointInterval uint64   `json:"checkpoint_interval"`
}

func toWire(s Spec) specWire {
	return specWire{
		Mode:               s.Mode.String(),
		Programs:           s.Programs,
		PSR:                s.PSR,
		PerThreadSQ:        s.PerThreadSQ,
		NoStoreComparison:  s.NoStoreComparison,
		CheckerLatency:     s.CheckerLatency,
		AdaptiveThreshold:  s.AdaptiveThreshold,
		CheckpointInterval: s.CheckpointInterval,
	}
}

// CampaignSpec describes a /campaign request: a deterministic
// transient-fault injection campaign on an RMT mode (SRT, CRT, SRTR or
// Adaptive).
type CampaignSpec struct {
	Spec Spec
	// N is the number of injection trials; Seed draws the fault plan.
	N    int
	Seed uint64
}

// CampaignSummary is the daemon's campaign report.
type CampaignSummary struct {
	Runs     int `json:"runs"`
	Detected int `json:"detected"`
	Masked   int `json:"masked"`
	NotFired int `json:"not_fired"`
	// Recovered counts trials where SRTR rolled back to a validated
	// checkpoint and reconverged with the fault-free run; UnprotectedSDC
	// counts adaptive-mode trials where a flip outside the protected
	// region silently corrupted architectural state.
	Recovered           int     `json:"recovered"`
	UnprotectedSDC      int     `json:"unprotected_sdc"`
	Coverage            float64 `json:"coverage"`
	MeanDetectionCycles float64 `json:"mean_detection_cycles"`
	// MeanRecoveryCycles is the mean rollback re-execution distance over
	// recovered trials.
	MeanRecoveryCycles float64 `json:"mean_recovery_cycles"`
	TotalCycles        uint64  `json:"total_cycles"`
	// Outcomes lists per-trial classifications in trial order.
	Outcomes []string `json:"outcomes"`
}

// Run executes one simulation on the daemon. WithBudget/WithWarmup/
// WithQuick size it exactly as they size a local Run; execution-policy
// options (parallelism, progress) are daemon-side concerns and ignored.
func (c *Client) Run(ctx context.Context, spec Spec, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	budget, warmup := cfg.sizes()
	body := struct {
		specWire
		Budget uint64 `json:"budget"`
		Warmup uint64 `json:"warmup"`
	}{toWire(spec), budget, warmup}
	var res Result
	if err := c.post(ctx, "/run", body, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Sweep executes independent simulations on the daemon, results in input
// order — the same slice a local Sweep of the same specs returns.
func (c *Client) Sweep(ctx context.Context, specs []Spec, opts ...Option) ([]*Result, error) {
	cfg := newConfig(opts)
	budget, warmup := cfg.sizes()
	wires := make([]specWire, len(specs))
	for i, s := range specs {
		wires[i] = toWire(s)
	}
	body := struct {
		Specs  []specWire `json:"specs"`
		Budget uint64     `json:"budget"`
		Warmup uint64     `json:"warmup"`
	}{wires, budget, warmup}
	var results []*Result
	if err := c.post(ctx, "/sweep", body, &results); err != nil {
		return nil, err
	}
	return results, nil
}

// Campaign runs a fault-injection campaign on the daemon.
func (c *Client) Campaign(ctx context.Context, cs CampaignSpec, opts ...Option) (*CampaignSummary, error) {
	cfg := newConfig(opts)
	budget, warmup := cfg.budget, cfg.warmup // 0 = daemon campaign defaults
	body := struct {
		specWire
		N      int    `json:"n"`
		Seed   uint64 `json:"seed"`
		Budget uint64 `json:"budget"`
		Warmup uint64 `json:"warmup"`
	}{toWire(cs.Spec), cs.N, cs.Seed, budget, warmup}
	var sum CampaignSummary
	if err := c.post(ctx, "/campaign", body, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// Health probes /healthz; nil means the daemon is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rmt: daemon unhealthy: %s", resp.Status)
	}
	return nil
}

// Metrics fetches the daemon's /metricsz snapshot (an internal/metrics
// JSON document: cache hit ratio, queue depth, latency histograms).
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metricsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rmt: metricsz: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	return b, nil
}

// RetryAfterError reports daemon backpressure: the request was shed with
// 429 and may be retried after the hinted delay.
type RetryAfterError struct {
	// RetryAfter is the daemon's Retry-After hint.
	RetryAfter time.Duration
	// Message is the daemon's error body.
	Message string
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("rmt: daemon overloaded (retry after %v): %s", e.RetryAfter, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends body as JSON and decodes the response into out.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	enc, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(enc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		var ra time.Duration
		if secs := resp.Header.Get("Retry-After"); secs != "" {
			var n int
			if _, err := fmt.Sscanf(secs, "%d", &n); err == nil {
				ra = time.Duration(n) * time.Second
			}
		}
		return &RetryAfterError{RetryAfter: ra, Message: decodeErrBody(raw)}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rmt: %s: %s: %s", path, resp.Status, decodeErrBody(raw))
	}
	return json.Unmarshal(raw, out)
}

func decodeErrBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
