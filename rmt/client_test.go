// Client wire-protocol tests against a scripted fake daemon. The real
// end-to-end pairing (client against internal/server, results compared to
// the local facade) lives in internal/server's battery; these tests pin
// the client's own half of the contract — request shape, response
// decoding, and error mapping — without a simulator in the loop.
package rmt

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fakeDaemon records the last request and plays back a scripted response.
type fakeDaemon struct {
	t        *testing.T
	status   int
	header   map[string]string
	respond  any    // marshalled as the response body when non-nil
	raw      string // literal body when respond is nil
	lastPath string
	lastBody map[string]any
}

func (f *fakeDaemon) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.lastPath = r.URL.Path
		f.lastBody = nil
		if r.Method == http.MethodPost {
			if ct := r.Header.Get("Content-Type"); ct != "application/json" {
				f.t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if err := json.NewDecoder(r.Body).Decode(&f.lastBody); err != nil {
				f.t.Errorf("request body does not decode: %v", err)
			}
		}
		for k, v := range f.header {
			w.Header().Set(k, v)
		}
		w.WriteHeader(f.status)
		if f.respond != nil {
			json.NewEncoder(w).Encode(f.respond)
			return
		}
		w.Write([]byte(f.raw))
	})
}

func newFake(t *testing.T, status int) (*fakeDaemon, *Client) {
	t.Helper()
	f := &fakeDaemon{t: t, status: status}
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	return f, NewClient(srv.URL + "/") // trailing slash must be trimmed
}

func TestClientRunRequestShapeAndDecode(t *testing.T) {
	want := &Result{
		Spec:   Spec{Mode: CRT, Programs: []string{"gcc", "swim"}, PSR: true},
		Cycles: 1234,
		IPC:    []float64{2.5, 1.75},
	}
	f, c := newFake(t, http.StatusOK)
	f.respond = want
	got, err := c.Run(context.Background(),
		Spec{Mode: CRT, Programs: []string{"gcc", "swim"}, PSR: true},
		WithBudget(9000), WithWarmup(4000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result did not round-trip: %+v vs %+v", got, want)
	}
	if f.lastPath != "/run" {
		t.Fatalf("posted to %s, want /run", f.lastPath)
	}
	for field, want := range map[string]any{
		"mode": "crt", "psr": true, "budget": 9000.0, "warmup": 4000.0,
	} {
		if got := f.lastBody[field]; got != want {
			t.Errorf("request %s = %v, want %v", field, got, want)
		}
	}
}

func TestClientSweepKeepsOrder(t *testing.T) {
	want := []*Result{
		{Spec: Spec{Mode: SRT, Programs: []string{"gcc"}}, Cycles: 1},
		{Spec: Spec{Mode: SRT, Programs: []string{"go"}}, Cycles: 2},
	}
	f, c := newFake(t, http.StatusOK)
	f.respond = want
	got, err := c.Sweep(context.Background(), []Spec{
		{Mode: SRT, Programs: []string{"gcc"}},
		{Mode: SRT, Programs: []string{"go"}},
	}, WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweep results did not round-trip in order")
	}
	if f.lastPath != "/sweep" {
		t.Fatalf("posted to %s, want /sweep", f.lastPath)
	}
	specs, ok := f.lastBody["specs"].([]any)
	if !ok || len(specs) != 2 {
		t.Fatalf("request specs = %v, want 2 entries", f.lastBody["specs"])
	}
}

func TestClientCampaignRequestShape(t *testing.T) {
	want := &CampaignSummary{Runs: 5, Detected: 4, Masked: 1, Coverage: 0.8,
		Outcomes: []string{"detected", "detected", "masked", "detected", "detected"}}
	f, c := newFake(t, http.StatusOK)
	f.respond = want
	got, err := c.Campaign(context.Background(),
		CampaignSpec{Spec: Spec{Mode: SRT, Programs: []string{"compress"}}, N: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("summary did not round-trip: %+v vs %+v", got, want)
	}
	if f.lastPath != "/campaign" {
		t.Fatalf("posted to %s, want /campaign", f.lastPath)
	}
	if f.lastBody["n"] != 5.0 || f.lastBody["seed"] != 7.0 {
		t.Fatalf("request n/seed = %v/%v, want 5/7", f.lastBody["n"], f.lastBody["seed"])
	}
	// No explicit sizes: zeros defer to the daemon's campaign defaults.
	if f.lastBody["budget"] != 0.0 || f.lastBody["warmup"] != 0.0 {
		t.Fatalf("unsized campaign sent budget/warmup %v/%v, want 0/0",
			f.lastBody["budget"], f.lastBody["warmup"])
	}
}

func TestClientHealth(t *testing.T) {
	f, c := newFake(t, http.StatusOK)
	f.raw = "ok\n"
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthy daemon reported unhealthy: %v", err)
	}
	f.status = http.StatusServiceUnavailable
	f.raw = "draining\n"
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("draining daemon reported healthy")
	}
}

func TestClientMetrics(t *testing.T) {
	f, c := newFake(t, http.StatusOK)
	f.raw = `{"cycle":3}`
	b, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"cycle":3}` {
		t.Fatalf("metrics body = %q", b)
	}
	f.status = http.StatusInternalServerError
	f.raw = "boom"
	if _, err := c.Metrics(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("metrics error lost the body: %v", err)
	}
}

func TestClientMapsBackpressureToRetryAfterError(t *testing.T) {
	f, c := newFake(t, http.StatusTooManyRequests)
	f.header = map[string]string{"Retry-After": "7"}
	f.raw = `{"error":"server overloaded: worker pool and queue full"}`
	_, err := c.Run(context.Background(), Spec{Mode: SRT, Programs: []string{"gcc"}})
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("429 surfaced as %T (%v), want *RetryAfterError", err, err)
	}
	if ra.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", ra.RetryAfter)
	}
	if !strings.Contains(ra.Message, "overloaded") || !strings.Contains(ra.Error(), "7s") {
		t.Fatalf("error lost daemon detail: %v", ra)
	}
}

func TestClientSurfacesDaemonErrors(t *testing.T) {
	f, c := newFake(t, http.StatusBadRequest)
	f.raw = `{"error":"run: unknown kernel \"gccc\""}`
	_, err := c.Run(context.Background(), Spec{Mode: SRT, Programs: []string{"gccc"}})
	if err == nil || !strings.Contains(err.Error(), `unknown kernel "gccc"`) {
		t.Fatalf("daemon error body was not surfaced: %v", err)
	}
	// Non-JSON error bodies pass through trimmed rather than vanishing.
	f.raw = "  plain text failure\n"
	_, err = c.Run(context.Background(), Spec{Mode: SRT, Programs: []string{"gcc"}})
	if err == nil || !strings.Contains(err.Error(), "plain text failure") {
		t.Fatalf("non-JSON error body was not surfaced: %v", err)
	}
}
