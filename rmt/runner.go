package rmt

import (
	"context"

	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Runner abstracts where simulations execute: Local runs them in-process,
// Client ships them to an rmtd daemon. Both produce identical results for
// identical inputs (the daemon computes through the same engine and its
// cache replays stored bytes), so tools and tests pick a backend at one
// seam and the rest of the code is oblivious.
type Runner interface {
	Run(ctx context.Context, spec Spec, opts ...Option) (*Result, error)
	Sweep(ctx context.Context, specs []Spec, opts ...Option) ([]*Result, error)
	Campaign(ctx context.Context, cs CampaignSpec, opts ...Option) (*CampaignSummary, error)
}

// Local is the in-process Runner: method forms of the package-level Run,
// Sweep and Campaign.
type Local struct{}

var (
	_ Runner = Local{}
	_ Runner = (*Client)(nil)
)

// Run executes the simulation in-process.
func (Local) Run(ctx context.Context, spec Spec, opts ...Option) (*Result, error) {
	return Run(ctx, spec, opts...)
}

// Sweep executes the simulations in-process.
func (Local) Sweep(ctx context.Context, specs []Spec, opts ...Option) ([]*Result, error) {
	return Sweep(ctx, specs, opts...)
}

// Campaign executes the fault-injection campaign in-process.
func (Local) Campaign(ctx context.Context, cs CampaignSpec, opts ...Option) (*CampaignSummary, error) {
	return Campaign(ctx, cs, opts...)
}

// Campaign sizing defaults, mirroring the rmtd daemon's: a campaign sized
// by WithBudget/WithWarmup(0) (or no option at all) uses these, so a local
// Campaign and a Client.Campaign of the same CampaignSpec and options
// measure the same machine. WithQuick does not apply to campaigns.
const (
	DefaultCampaignBudget uint64 = 20000
	DefaultCampaignWarmup uint64 = 5000
)

// Campaign runs a deterministic transient-fault injection campaign
// in-process using the fork-on-fault engine: the fault-free run is
// simulated once, machine state is snapshotted at each planned injection
// cycle, and each trial restores a snapshot and replays only the divergent
// suffix. The summary — including per-trial outcome order — is identical
// at any parallelism and matches what an rmtd daemon serves for the same
// request. Cancelling ctx aborts the campaign between trials.
func Campaign(ctx context.Context, cs CampaignSpec, opts ...Option) (*CampaignSummary, error) {
	c := newConfig(opts)
	im, err := cs.Spec.Mode.internal()
	if err != nil {
		return nil, err
	}
	budget, warmup := c.budget, c.warmup
	if budget == 0 {
		budget = DefaultCampaignBudget
	}
	if warmup == 0 {
		warmup = DefaultCampaignWarmup
	}
	spec := sim.Spec{
		Mode:               im,
		Programs:           cs.Spec.Programs,
		Budget:             budget,
		Warmup:             warmup,
		Config:             pipeline.DefaultConfig(),
		PSR:                cs.Spec.PSR,
		PerThreadSQ:        cs.Spec.PerThreadSQ,
		NoStoreComparison:  cs.Spec.NoStoreComparison,
		AdaptiveThreshold:  cs.Spec.AdaptiveThreshold,
		CheckpointInterval: cs.Spec.CheckpointInterval,
		VM:                 c.vmConfig(),
	}
	fopts := fault.CampaignOptions{
		Parallelism:           c.parallelism,
		Progress:              c.progress,
		Cancel:                ctx.Err,
		PruneStaticallyMasked: c.staticPruning,
	}
	if c.report != nil {
		report := c.report
		fopts.OnReport = func(r runner.Report) { report(fromRunnerReport(r)) }
	}
	sum, err := fault.CampaignParallel(spec, cs.N, cs.Seed, fopts)
	if err != nil {
		return nil, err
	}
	out := &CampaignSummary{
		Runs:                sum.Runs,
		Detected:            sum.Detected,
		Masked:              sum.Masked,
		NotFired:            sum.NotFired,
		Recovered:           sum.Recovered,
		UnprotectedSDC:      sum.UnprotectedSDC,
		Coverage:            sum.Coverage(),
		MeanDetectionCycles: sum.MeanDetectionCycles,
		MeanRecoveryCycles:  sum.MeanRecoveryCycles,
		TotalCycles:         sum.TotalCycles,
		Outcomes:            make([]string, 0, len(sum.Results)),
	}
	for _, res := range sum.Results {
		out.Outcomes = append(out.Outcomes, res.Outcome.String())
	}
	return out, nil
}
