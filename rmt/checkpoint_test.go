package rmt

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestCheckpointResume: a run interrupted at a checkpoint and resumed from
// the snapshot produces the identical Result to the uninterrupted run —
// the facade form of the snapshot layer's cycle-identity invariant.
func TestCheckpointResume(t *testing.T) {
	ctx := context.Background()
	spec := Spec{Mode: SRT, PSR: true, Programs: []string{"compress"}}

	ref, err := Run(ctx, spec, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	var lastSnap []byte
	var lastCycle uint64
	_, err = Run(ctx, spec, testOpts(WithCheckpoint(1500, func(cycle uint64, snapshot []byte) error {
		lastSnap, lastCycle = snapshot, cycle
		return nil
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	if lastSnap == nil {
		t.Fatal("checkpoint sink never called")
	}
	if lastCycle == 0 || lastCycle%1500 != 0 {
		t.Fatalf("checkpoint at cycle %d, want a positive multiple of 1500", lastCycle)
	}

	got, err := Run(ctx, spec, testOpts(Resume(lastSnap))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("resumed run differs from uninterrupted run:\nref: %+v\ngot: %+v", ref, got)
	}
}

// TestCheckpointSinkErrorAborts: a sink error stops the run and surfaces
// verbatim, so caller sentinels survive errors.Is. This is how a caller
// implements "pause": return a sentinel from the sink, keep the snapshot.
func TestCheckpointSinkErrorAborts(t *testing.T) {
	pause := errors.New("pause requested")
	spec := Spec{Mode: SRT, PSR: true, Programs: []string{"compress"}}
	_, err := Run(context.Background(), spec, testOpts(WithCheckpoint(1000, func(uint64, []byte) error {
		return pause
	}))...)
	if !errors.Is(err, pause) {
		t.Fatalf("err = %v, want the sink's sentinel", err)
	}
}

// TestRunContextCancel: a cancelled context aborts the simulation with the
// context's error.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{Mode: SRT, PSR: true, Programs: []string{"gcc"}}, testOpts()...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLocalCampaign: the package-level Campaign runs in-process and its
// summary partitions the trials.
func TestLocalCampaign(t *testing.T) {
	sum, err := Campaign(context.Background(), CampaignSpec{
		Spec: Spec{Mode: SRT, PSR: true, Programs: []string{"compress"}},
		N:    5,
		Seed: 7,
	}, WithBudget(3000), WithWarmup(1000))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 5 || len(sum.Outcomes) != 5 {
		t.Fatalf("summary %+v, want 5 runs with 5 outcomes", sum)
	}
	if sum.Detected+sum.Masked+sum.NotFired != sum.Runs {
		t.Fatalf("classification doesn't partition: %+v", sum)
	}
}

// TestCampaignStaticPruningIdentical: WithStaticPruning is pure execution
// policy — the facade summary, outcome order included, is unchanged by it.
// The spec targets gcc+li (the kernels with statically-masked sites) at the
// seed internal/fault's byte-identity test pins, so pruning has trials to
// claim.
func TestCampaignStaticPruningIdentical(t *testing.T) {
	cs := CampaignSpec{
		Spec: Spec{Mode: SRT, PSR: true, Programs: []string{"gcc", "li"}},
		N:    48,
		Seed: 0xACE,
	}
	opts := []Option{WithBudget(3000), WithWarmup(1000)}
	base, err := Campaign(context.Background(), cs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Campaign(context.Background(), cs, append(opts, WithStaticPruning())...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, pruned) {
		t.Fatalf("pruned summary differs:\nbase:   %+v\npruned: %+v", base, pruned)
	}
}

// TestCampaignContextCancel: cancellation propagates out of the campaign.
func TestCampaignContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Campaign(ctx, CampaignSpec{
		Spec: Spec{Mode: SRT, PSR: true, Programs: []string{"compress"}},
		N:    3,
		Seed: 1,
	}, WithBudget(3000), WithWarmup(1000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
