package rmt

import (
	"repro/internal/exp"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Table is a rendered experiment report: a titled grid with aligned-text
// and CSV renderings.
type Table struct {
	tab *stats.Table
}

// String renders the table with aligned columns.
func (t *Table) String() string { return t.tab.String() }

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string { return t.tab.CSV() }

// Title returns the table title.
func (t *Table) Title() string { return t.tab.Title }

// Columns returns the column headers.
func (t *Table) Columns() []string { return t.tab.Columns }

// Rows returns the table body.
func (t *Table) Rows() [][]string { return t.tab.Rows }

// Experiment is one table/figure of the paper's evaluation.
type Experiment struct {
	// ID is the short name used by rmtbench's -exp flag ("fig6", ...).
	ID string
	// Description is a one-line summary.
	Description string

	run func(exp.Params) (*stats.Table, map[string]float64, error)
}

// Run regenerates the experiment at the sizes selected by opts (full sizes
// by default, WithQuick for the cut-down ones) and returns its table plus
// the summary metrics keyed by name. Independent simulations inside the
// experiment are fanned across WithParallelism workers; the output is
// identical at any parallelism.
func (e Experiment) Run(opts ...Option) (*Table, map[string]float64, error) {
	c := newConfig(opts)
	p := exp.Full()
	if c.quick {
		p = exp.Quick()
	}
	if c.budget > 0 {
		p.Budget = c.budget
	}
	if c.warmup > 0 {
		p.Warmup = c.warmup
	}
	p.Parallelism = c.parallelism
	p.Progress = c.progress
	if c.report != nil {
		p.OnReport = func(r runner.Report) { c.report(fromRunnerReport(r)) }
	}
	tab, summary, err := e.run(p)
	if err != nil {
		return nil, nil, err
	}
	return &Table{tab: tab}, summary, nil
}

// ExperimentSizes resolves the budget/warmup instruction counts an
// Experiment.Run with these options will use (full sizes by default,
// WithQuick's cut-down ones, explicit WithBudget/WithWarmup winning).
func ExperimentSizes(opts ...Option) (budget, warmup uint64) {
	c := newConfig(opts)
	p := exp.Full()
	if c.quick {
		p = exp.Quick()
	}
	if c.budget > 0 {
		p.Budget = c.budget
	}
	if c.warmup > 0 {
		p.Warmup = c.warmup
	}
	return p.Budget, p.Warmup
}

// Experiments returns the paper's evaluation in presentation order: one
// entry per figure plus the fault-injection coverage campaigns.
func Experiments() []Experiment {
	return []Experiment{
		{"fig6", "SRT single logical thread (Base2 / SRT / ptSQ / noSC)", exp.Fig6},
		{"fig7", "preferential space redundancy", exp.Fig7},
		{"fig8", "SRT with two logical threads", exp.Fig8},
		{"fig9", "store-queue lifetime and size sensitivity", exp.Fig9},
		{"fig10", "lockstep vs CRT, one logical thread", exp.Fig10},
		{"fig11", "lockstep vs CRT, two logical threads", exp.Fig11},
		{"fig12", "lockstep vs CRT, four logical threads", exp.Fig12},
		{"coverage", "fault-injection campaigns", exp.Coverage},
		{"recovery", "SRTR rollback latency vs checkpoint interval", exp.FigRecovery},
		{"adaptive", "adaptive partial-redundancy frontier", exp.FigAdaptive},
	}
}

// Table1 reports the base processor parameters (the paper's Table 1),
// taken live from the default configuration.
func Table1() *Table {
	return &Table{tab: exp.Table1(pipeline.DefaultConfig())}
}
