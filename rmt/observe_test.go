package rmt

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// observedSpecs is a small mixed sweep exercising SRT and CRT with the
// observability layer attached.
func observedSpecs() []Spec {
	return []Spec{
		{Mode: SRT, PSR: true, Programs: []string{"compress"}},
		{Mode: CRT, PSR: true, Programs: []string{"compress", "swim"}},
	}
}

// TestObservabilityParallelismInvariant is the acceptance check for the
// observability artifacts: metrics and trace exports must be byte-identical
// whether the sweep ran on 1 worker or 8.
func TestObservabilityParallelismInvariant(t *testing.T) {
	run := func(parallel int) []*Result {
		res, err := Sweep(context.Background(), observedSpecs(),
			WithBudget(1500), WithWarmup(800),
			WithMetrics(), WithTrace(0),
			WithParallelism(parallel))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	if len(serial) != len(wide) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		if len(serial[i].MetricsJSON) == 0 || len(serial[i].TraceJSON) == 0 {
			t.Fatalf("spec %d: missing observability artifacts", i)
		}
		if !bytes.Equal(serial[i].MetricsJSON, wide[i].MetricsJSON) {
			t.Errorf("spec %d: metrics JSON differs between -parallel 1 and 8", i)
		}
		if !bytes.Equal(serial[i].TraceJSON, wide[i].TraceJSON) {
			t.Errorf("spec %d: trace JSON differs between -parallel 1 and 8", i)
		}
	}
}

// TestObservabilityArtifactsWellFormed checks the exports parse as JSON and
// the trace is in Chrome trace_event shape (Perfetto-loadable).
func TestObservabilityArtifactsWellFormed(t *testing.T) {
	res, err := Run(context.Background(), Spec{Mode: SRT, PSR: true, Programs: []string{"gcc"}},
		WithBudget(1500), WithWarmup(800), WithMetrics(), WithTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cycle   uint64 `json:"cycle"`
		Metrics []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(res.MetricsJSON, &snap); err != nil {
		t.Fatalf("metrics export is not valid JSON: %v", err)
	}
	if snap.Cycle != res.Cycles || len(snap.Metrics) == 0 {
		t.Errorf("metrics snapshot malformed: cycle=%d (want %d), %d metrics",
			snap.Cycle, res.Cycles, len(snap.Metrics))
	}
	var tr struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			PID   *int   `json:"pid"`
			TID   *int   `json:"tid"`
			TS    *int64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.TraceJSON, &tr); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
	for i, ev := range tr.TraceEvents {
		if ev.Phase != "X" && ev.Phase != "i" {
			t.Fatalf("event %d: unexpected phase %q", i, ev.Phase)
		}
		if ev.PID == nil || ev.TID == nil || ev.TS == nil {
			t.Fatalf("event %d: missing pid/tid/ts", i)
		}
	}

	// Without the options, artifacts stay absent (and cost nothing).
	plain, err := Run(context.Background(), Spec{Mode: SRT, PSR: true, Programs: []string{"gcc"}},
		WithBudget(1500), WithWarmup(800))
	if err != nil {
		t.Fatal(err)
	}
	if plain.MetricsJSON != nil || plain.TraceJSON != nil {
		t.Error("artifacts present without WithMetrics/WithTrace")
	}
}
