// Package rmt is the public face of the simulator: build and run redundant
// multithreading machines, fan sweeps of independent simulations across
// worker goroutines, and regenerate the paper's evaluation — without
// touching the internal packages.
//
// A simulation is described by a Spec (which machine, which programs) and
// sized by functional options:
//
//	res, err := rmt.Run(ctx,
//		rmt.Spec{Mode: rmt.SRT, PSR: true, Programs: []string{"gcc"}},
//		rmt.WithBudget(30000), rmt.WithWarmup(20000))
//
// Sweeps of independent specs run in parallel and return results in input
// order, so output built from them is deterministic at any parallelism:
//
//	results, err := rmt.Sweep(ctx, specs, rmt.WithParallelism(4))
//
// Run, Sweep and Campaign are also available behind the Runner interface,
// satisfied both by the in-process engine (Local) and by Client (a remote
// rmtd daemon), so tools and tests can swap execution backends without
// changing call sites.
//
// The paper's tables and figures are exposed through Experiments().
package rmt

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Mode selects the machine organisation.
type Mode int

// Machine organisations (see the package-level docs of internal/sim and
// DESIGN.md for the microarchitectural detail).
const (
	// Base is the unprotected base SMT processor.
	Base Mode = iota
	// Base2 runs two independent copies of each program with no coupling
	// (Figure 6's reference point).
	Base2
	// SRT runs each program as a leading/trailing redundant pair on one
	// core.
	SRT
	// Lockstep models two cycle-synchronised cores with a central
	// checker; CheckerLatency selects Lock0 vs Lock8.
	Lockstep
	// CRT runs leading and trailing copies on different cores of a
	// two-way CMP, cross-coupled for multiprogram workloads.
	CRT
	// SRTR extends SRT with recovery: a register value queue cross-checks
	// every retired result, validated checkpoints are kept on a fixed
	// cycle grid, and a detected fault rolls the machine back instead of
	// halting it.
	SRTR
	// Adaptive is SRT with partial redundancy: instructions whose static
	// vulnerability falls below Spec.AdaptiveThreshold run outside the
	// sphere of replication (untagged, uncompared).
	Adaptive
)

func (m Mode) String() string {
	im, err := m.internal()
	if err != nil {
		return "mode?"
	}
	return im.String()
}

func (m Mode) internal() (sim.Mode, error) {
	switch m {
	case Base:
		return sim.ModeBase, nil
	case Base2:
		return sim.ModeBase2, nil
	case SRT:
		return sim.ModeSRT, nil
	case Lockstep:
		return sim.ModeLockstep, nil
	case CRT:
		return sim.ModeCRT, nil
	case SRTR:
		return sim.ModeSRTR, nil
	case Adaptive:
		return sim.ModeAdaptive, nil
	}
	return 0, fmt.Errorf("rmt: unknown mode %d", int(m))
}

// Modes lists every machine organisation the facade exposes, in the same
// order internal/sim enumerates them.
func Modes() []Mode { return []Mode{Base, Base2, SRT, Lockstep, CRT, SRTR, Adaptive} }

// ParseMode maps a mode name ("base", "base2", "srt", "lockstep", "crt",
// "srtr", "adaptive") to its Mode — the inverse of Mode.String, shared by
// the cmd/ tools.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("rmt: unknown mode %q (want base, base2, srt, lockstep, crt, srtr or adaptive)", s)
}

// Spec selects a machine organisation and workload. Sizing (budget,
// warmup) and execution policy (parallelism) are supplied as Options, not
// mutated into the struct.
type Spec struct {
	Mode Mode
	// Programs names the workload kernels (see Kernels()); each runs as
	// one logical thread.
	Programs []string
	// PSR enables preferential space redundancy (§4.5). The paper
	// enables it for all results after Figure 7.
	PSR bool
	// PerThreadSQ gives each hardware thread a private store queue.
	PerThreadSQ bool
	// NoStoreComparison disables output comparison (Figure 6's SRT+nosc).
	NoStoreComparison bool
	// CheckerLatency is the lockstep checker delay in cycles (0 = Lock0,
	// 8 = Lock8). Ignored outside Lockstep mode.
	CheckerLatency uint64
	// AdaptiveThreshold is the Adaptive-mode protection cutoff θ in [0,1]:
	// instructions whose normalised static vulnerability falls below θ run
	// outside the sphere of replication. 0 protects everything (exactly
	// SRT). Ignored outside Adaptive mode.
	AdaptiveThreshold float64
	// CheckpointInterval is the SRTR checkpoint grid in cycles (0 = the
	// engine default, 1024). Ignored outside SRTR mode.
	CheckpointInterval uint64
}

// config collects the option-controlled execution parameters.
type config struct {
	budget      uint64 // 0 = default
	warmup      uint64 // 0 = default
	quick       bool
	parallelism int
	progress    func(done, total int)
	report      func(Report)
	metrics     bool
	trace       bool
	traceCap    int

	checkpointEvery uint64
	checkpointSink  func(cycle uint64, snapshot []byte) error
	resume          []byte

	staticPruning bool

	dispatch Dispatch
}

// Default sizes for Run/Sweep/BaseIPC when no WithBudget/WithWarmup option
// is given: long enough for steady-state behaviour at interactive cost.
const (
	DefaultBudget uint64 = 30000
	DefaultWarmup uint64 = 20000
)

func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) sizes() (budget, warmup uint64) {
	budget, warmup = DefaultBudget, DefaultWarmup
	if c.quick {
		budget, warmup = 8000, 5000
	}
	if c.budget > 0 {
		budget = c.budget
	}
	if c.warmup > 0 {
		warmup = c.warmup
	}
	return budget, warmup
}

// Option configures Run, Sweep, BaseIPC and Experiment.Run.
type Option func(*config)

// WithBudget sets the measured committed instructions per logical thread.
func WithBudget(b uint64) Option { return func(c *config) { c.budget = b } }

// WithWarmup sets the warmup instructions executed before measurement.
func WithWarmup(w uint64) Option { return func(c *config) { c.warmup = w } }

// WithParallelism caps the worker goroutines a sweep fans its independent
// simulations across. n <= 0 selects runtime.GOMAXPROCS(0); 1 runs
// serially. Results never depend on this value.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithQuick selects the cut-down experiment sizes used by tests and smoke
// runs. Explicit WithBudget/WithWarmup still win.
func WithQuick() Option { return func(c *config) { c.quick = true } }

// WithProgress installs a callback receiving (done, total) job counts as a
// sweep advances. Calls are serialized.
func WithProgress(fn func(done, total int)) Option {
	return func(c *config) { c.progress = fn }
}

// WithReport installs a callback receiving each sweep's timing Report.
func WithReport(fn func(Report)) Option { return func(c *config) { c.report = fn } }

// WithMetrics attaches the observability metrics registry to each
// simulation: every pipeline structure's counters and occupancy histograms
// are sampled and exported as an end-of-run JSON snapshot in
// Result.MetricsJSON. The export is byte-identical at any parallelism.
func WithMetrics() Option { return func(c *config) { c.metrics = true } }

// WithTrace attaches a structured cycle-event trace to each simulation and
// exports it in Chrome trace_event JSON (Perfetto-loadable) in
// Result.TraceJSON. cap bounds the stored event count (0 = default); the
// export is byte-identical at any parallelism. Tracing long runs is
// memory-hungry: prefer small budgets.
func WithTrace(cap int) Option {
	return func(c *config) {
		c.trace = true
		c.traceCap = cap
	}
}

// WithCheckpoint serializes the complete machine state every `every`
// cycles and hands each snapshot to sink. A snapshot restored with Resume
// (under the same Spec and sizing options) continues the run with
// cycle-identical results to the uninterrupted simulation. sink errors
// abort the run and are returned verbatim, so a caller's sentinel survives
// errors.Is; every == 0 disables checkpointing. Local engine only: the
// option is ignored by Client.
func WithCheckpoint(every uint64, sink func(cycle uint64, snapshot []byte) error) Option {
	return func(c *config) {
		c.checkpointEvery = every
		c.checkpointSink = sink
	}
}

// Dispatch selects the functional execution engine's dispatch strategy.
type Dispatch int

// Dispatch strategies.
const (
	// DispatchThreaded (the default) steps with per-program predecoded
	// handler tables: decode happens once at machine build, each step is
	// one indirect call.
	DispatchThreaded Dispatch = iota
	// DispatchSwitch selects the original decode-per-step switch
	// interpreter — the differential oracle and the benchmark baseline.
	DispatchSwitch
)

// WithDispatch selects the functional engine's dispatch strategy.
// Dispatch is timing-invariant — cycle results, summaries, and snapshots
// are byte-identical under either engine (gated by the dispatch battery)
// — so like WithStaticPruning it is execution policy, not part of the
// experiment definition: it never enters the daemon's wire contract or
// cache keys, and Client ignores it.
func WithDispatch(d Dispatch) Option { return func(c *config) { c.dispatch = d } }

// vmConfig maps the option onto the functional engine's config.
func (c config) vmConfig() vm.Config {
	if c.dispatch == DispatchSwitch {
		return vm.Config{Dispatch: vm.DispatchSwitch}
	}
	return vm.Config{}
}

// WithStaticPruning lets fault campaigns classify trials at
// statically-masked injection sites (see AnalyzeProgram) as Masked without
// replaying them. The summary is byte-identical to the unpruned campaign —
// pruning only skips work whose outcome is already proven, falling back to
// replay for any kernel the analysis cannot cover. Execution policy, not
// part of the experiment definition: like WithCheckpoint it applies to the
// local engine only and is ignored by Client (the daemon's cache key is the
// campaign request, which pruning does not change).
func WithStaticPruning() Option { return func(c *config) { c.staticPruning = true } }

// Resume makes Run continue from a snapshot produced by WithCheckpoint
// instead of starting fresh. The caller must pass the same Spec and sizing
// options the snapshot was taken under; mismatched machine geometry is
// rejected. Local engine only.
func Resume(snapshot []byte) Option {
	return func(c *config) { c.resume = snapshot }
}

// Report describes how a sweep spent its time.
type Report struct {
	// Jobs is the number of independent simulations; Parallelism the
	// resolved worker count.
	Jobs, Parallelism int
	// Wall is elapsed wall-clock time; Busy the summed per-job time —
	// approximately a serial run's cost.
	Wall, Busy time.Duration
}

// Speedup returns Busy/Wall — the effective speedup over a serial run.
func (r Report) Speedup() float64 {
	return runner.Report{Wall: r.Wall, Busy: r.Busy}.Speedup()
}

func fromRunnerReport(r runner.Report) Report {
	return Report{Jobs: r.Jobs, Parallelism: r.Parallelism, Wall: r.Wall, Busy: r.Busy}
}

// PairChecks aggregates one redundant pair's sphere-of-replication
// activity: everything that crossed the boundary was replicated on the way
// in and compared on the way out.
type PairChecks struct {
	// StoresCompared counts output comparisons at the store comparator;
	// StoreMismatches counts detected divergences (0 in fault-free runs).
	StoresCompared, StoreMismatches uint64
	// LoadsReplicated counts leading-load values forwarded to the
	// trailing copy through the load value queue.
	LoadsReplicated uint64
	// FetchChunksSent counts fetch chunks steered through the line
	// prediction queue.
	FetchChunksSent uint64
	// LeadCore and TrailCore locate the two copies (they differ under
	// CRT).
	LeadCore, TrailCore int
	// SameHalfFrac and SameFUFrac measure space redundancy: the fraction
	// of corresponding instruction pairs sharing an issue-queue half or
	// functional unit.
	SameHalfFrac, SameFUFrac float64
}

// Result is one simulation's outcome.
type Result struct {
	// Spec echoes the input.
	Spec Spec
	// Cycles is the simulated cycle count.
	Cycles uint64
	// IPC holds, per logical program, the measured copy's committed
	// instructions per cycle.
	IPC []float64
	// StoreLifetime holds, per logical program, the mean cycles a
	// (leading) store spends in the store queue.
	StoreLifetime []float64
	// Checks holds, per redundant pair, the sphere-of-replication
	// activity. Empty for non-redundant modes.
	Checks []PairChecks
	// MetricsJSON is the end-of-run metrics snapshot (WithMetrics only):
	// every registered counter, gauge and histogram, sorted by key.
	MetricsJSON []byte
	// TraceJSON is the structured event trace in Chrome trace_event JSON
	// (WithTrace only), loadable in Perfetto / chrome://tracing.
	TraceJSON []byte
}

// Run executes the single simulation described by spec. Cancelling ctx
// aborts the run between simulated cycles with the context's error.
func Run(ctx context.Context, spec Spec, opts ...Option) (*Result, error) {
	return runOne(ctx, spec, newConfig(opts))
}

// Sweep executes the independent simulations described by specs across a
// worker pool and returns their results in input order — byte-identical
// assembly at any parallelism. The first failure cancels unstarted jobs;
// cancelling ctx aborts running simulations between simulated cycles.
func Sweep(ctx context.Context, specs []Spec, opts ...Option) ([]*Result, error) {
	c := newConfig(opts)
	jobs := make([]func() (*Result, error), len(specs))
	for i := range specs {
		s := specs[i]
		jobs[i] = func() (*Result, error) { return runOne(ctx, s, c) }
	}
	results, rep, err := runner.Run(jobs, runner.Options{Parallelism: c.parallelism, Progress: c.progress})
	if c.report != nil {
		c.report(fromRunnerReport(rep))
	}
	return results, err
}

// BaseIPC runs each named program alone on the unprotected base machine —
// the SMT-Efficiency denominator — fanning the reference runs across
// workers.
func BaseIPC(ctx context.Context, programs []string, opts ...Option) (map[string]float64, error) {
	var names []string
	seen := map[string]bool{}
	for _, n := range programs {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	specs := make([]Spec, len(names))
	for i, n := range names {
		specs[i] = Spec{Mode: Base, Programs: []string{n}}
	}
	results, err := Sweep(ctx, specs, opts...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = results[i].IPC[0]
	}
	return out, nil
}

// Kernels lists the workload suite: the paper's 18 SPEC CPU95-analog
// kernels, sorted. Generated kernels ("gen:<seed>", see KnownKernel) are
// unbounded in number and not enumerated here.
func Kernels() []string { return program.Names() }

// KnownKernel reports whether name resolves to a runnable workload:
// either one of the registry kernels listed by Kernels(), or a generated
// kernel addressed by its canonical "gen:<seed>" name. Every Spec.Programs
// entry accepted here runs identically in single runs, multi-program
// mixes, fault campaigns, and rmtd requests.
func KnownKernel(name string) bool { return progen.Known(name) }

// Parallelism resolves an option-style parallelism value: n if positive,
// otherwise runtime.GOMAXPROCS(0).
func Parallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

func runOne(ctx context.Context, spec Spec, c config) (*Result, error) {
	im, err := spec.Mode.internal()
	if err != nil {
		return nil, err
	}
	budget, warmup := c.sizes()
	simSpec := sim.Spec{
		Mode:               im,
		Programs:           spec.Programs,
		Budget:             budget,
		Warmup:             warmup,
		Config:             pipeline.DefaultConfig(),
		PSR:                spec.PSR,
		PerThreadSQ:        spec.PerThreadSQ,
		NoStoreComparison:  spec.NoStoreComparison,
		CheckerLatency:     spec.CheckerLatency,
		AdaptiveThreshold:  spec.AdaptiveThreshold,
		CheckpointInterval: spec.CheckpointInterval,
		VM:                 c.vmConfig(),
	}
	var m *sim.Machine
	if c.resume != nil {
		m, err = sim.Restore(simSpec, c.resume)
	} else {
		m, err = sim.Build(simSpec)
	}
	if err != nil {
		return nil, err
	}
	if c.metrics {
		m.EnableMetrics()
	}
	if c.trace {
		m.EnableTrace(c.traceCap)
	}
	if ctx.Done() != nil || c.checkpointEvery > 0 {
		every, sink := c.checkpointEvery, c.checkpointSink
		m.OnCycle = func(cycle uint64) error {
			if cycle&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if every > 0 && cycle > 0 && cycle%every == 0 {
				snap, err := m.Snapshot()
				if err != nil {
					return err
				}
				return sink(cycle, snap)
			}
			return nil
		}
	}
	rs, err := m.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Spec:   spec,
		Cycles: rs.Cycles,
		IPC:    rs.LogicalIPC,
	}
	if m.Metrics != nil {
		var buf bytes.Buffer
		if err := m.Metrics.Snapshot(rs.Cycles).WriteJSON(&buf); err != nil {
			return nil, err
		}
		res.MetricsJSON = buf.Bytes()
	}
	if m.Events != nil {
		var buf bytes.Buffer
		if err := m.Events.WriteChromeJSON(&buf); err != nil {
			return nil, err
		}
		res.TraceJSON = buf.Bytes()
	}
	for _, lead := range m.Leads {
		res.StoreLifetime = append(res.StoreLifetime, lead.Stats.StoreLifetime.Value())
	}
	for _, p := range m.Pairs {
		res.Checks = append(res.Checks, PairChecks{
			StoresCompared:  p.Cmp.Comparisons.Value(),
			StoreMismatches: p.Cmp.Mismatches.Value(),
			LoadsReplicated: p.LVQ.Pushes.Value(),
			FetchChunksSent: p.LPQ.Pushes.Value(),
			LeadCore:        p.LeadCore,
			TrailCore:       p.TrailCore,
			SameHalfFrac:    p.SameHalfFrac(),
			SameFUFrac:      p.SameFUFrac(),
		})
	}
	return res, nil
}
