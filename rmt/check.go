package rmt

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/progen"
)

// ProgramIssue is one finding from the static ISA program verifier.
type ProgramIssue = analysis.ProgramIssue

// CheckProgram statically verifies a program in the simulator's ISA: CFG
// well-formedness (branch targets in bounds, no path off the end of the
// code image), reachability, register def-before-use, writes to the
// hardwired-zero registers, statically-derivable memory bounds and halt
// structure. A nil error means the program is well-formed; otherwise the
// error lists every issue, and Issues returns them structured.
func CheckProgram(p *isa.Program) error {
	return issuesToError(p.Name, analysis.VerifyProgram(p))
}

// CheckKernel verifies one workload kernel by name — registered or
// generated ("gen:<seed>") — returning the structured issue list (empty
// for a clean kernel). Unknown names are an error.
func CheckKernel(name string) ([]ProgramIssue, error) {
	p, err := progen.Build(name)
	if err != nil {
		return nil, err
	}
	return analysis.VerifyProgram(p), nil
}

// VulnerabilityProfile is the per-program result of the static ACE
// analysis: which fault-injection sites are provably masked, the residual
// ACE fraction, and live-register density. See analysis.AnalyzeProgram.
type VulnerabilityProfile = analysis.VulnerabilityProfile

// MaskedSite is one provably-masked injection site in a profile.
type MaskedSite = analysis.MaskedSite

// AnalyzeProgram runs the static liveness/ACE analysis over an assembled
// program and returns its vulnerability profile — the per-region masking
// information adaptive RMT schemes consume, and the basis for
// WithStaticPruning in fault campaigns. The program must pass structural
// verification (see CheckProgram).
func AnalyzeProgram(p *isa.Program) (*VulnerabilityProfile, error) {
	return analysis.AnalyzeProgram(p)
}

// AnalyzeKernel analyzes one workload kernel by name — registered or
// generated. Unknown names are an error.
func AnalyzeKernel(name string) (*VulnerabilityProfile, error) {
	p, err := progen.Build(name)
	if err != nil {
		return nil, err
	}
	prof, err := analysis.AnalyzeProgram(p)
	if err != nil {
		return nil, err
	}
	prof.Name = name
	return prof, nil
}

func issuesToError(name string, issues []ProgramIssue) error {
	if len(issues) == 0 {
		return nil
	}
	lines := make([]string, len(issues))
	for i, issue := range issues {
		lines[i] = "  " + issue.String()
	}
	return fmt.Errorf("rmt: program %q fails static verification:\n%s",
		name, strings.Join(lines, "\n"))
}
