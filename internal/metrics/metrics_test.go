package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSnapshotSortedAndStable(t *testing.T) {
	build := func(order []int) *Snapshot {
		r := New()
		regs := []func(){
			func() { r.Counter("zz.last", nil, func() uint64 { return 7 }) },
			func() { r.Counter("aa.first", Labels{"core": "1"}, func() uint64 { return 1 }) },
			func() { r.Counter("aa.first", Labels{"core": "0"}, func() uint64 { return 2 }) },
			func() { r.Gauge("mm.mid", Labels{"tid": "3", "core": "0"}, func() float64 { return 0.5 }) },
		}
		for _, i := range order {
			regs[i]()
		}
		return r.Snapshot(42)
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("snapshot bytes depend on registration order:\n%s\n%s", aj, bj)
	}
	want := []string{"aa.first{core=0}", "aa.first{core=1}", "mm.mid{core=0,tid=3}", "zz.last{}"}
	for i, v := range a.Metrics {
		if v.key() != want[i] {
			t.Errorf("metric %d = %s, want %s", i, v.key(), want[i])
		}
	}
}

func TestSnapshotReadsLiveValues(t *testing.T) {
	r := New()
	var n uint64
	r.Counter("events", nil, func() uint64 { return n })
	n = 5
	if got, ok := r.Snapshot(0).CounterValue("events", nil); !ok || got != 5 {
		t.Errorf("counter = %d, %v; want 5, true", got, ok)
	}
	n = 9
	if got, _ := r.Snapshot(1).CounterValue("events", nil); got != 9 {
		t.Errorf("counter after increment = %d, want 9", got)
	}
}

func TestHistogramExport(t *testing.T) {
	r := New()
	r.Histogram("occ", Labels{"q": "sq"}, func() HistogramValue {
		return HistogramValue{Buckets: []uint64{1, 0, 2}, Total: 3, Sum: 4}
	})
	s := r.Snapshot(10)
	v, ok := s.Get("occ", Labels{"q": "sq"})
	if !ok || v.Histogram == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if v.Histogram.Mean() != 4.0/3.0 {
		t.Errorf("mean = %v", v.Histogram.Mean())
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if back.Cycle != 10 || len(back.Metrics) != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("export must end with a newline")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := New()
	r.Counter("x", Labels{"a": "1"}, func() uint64 { return 0 })
	r.Counter("x", Labels{"a": "1"}, func() uint64 { return 0 })
}

func TestLabelsClonedAtRegistration(t *testing.T) {
	r := New()
	l := Labels{"core": "0"}
	r.Counter("c", l, func() uint64 { return 1 })
	l["core"] = "9" // mutate after registration
	if _, ok := r.Snapshot(0).Get("c", Labels{"core": "0"}); !ok {
		t.Error("registry did not clone labels; caller mutation leaked in")
	}
}
