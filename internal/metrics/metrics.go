// Package metrics is the simulator's typed metric registry: pipeline
// structures register counters, gauges and histograms per core / per thread
// / per pair, and a caller snapshots the whole registry at a cycle of its
// choosing into a stable, machine-readable JSON document.
//
// Instruments are read through closures at snapshot time, so registration
// costs nothing on the simulated fast path: the pipeline keeps counting in
// its own structures and the registry samples them when asked. A registry
// belongs to exactly one machine (one goroutine); snapshots are pure
// functions of simulation state, so their bytes are identical at any sweep
// parallelism.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Labels distinguish instruments sharing a name (core, thread, pair, ...).
type Labels map[string]string

// canon renders labels canonically: sorted key=value pairs joined by ','.
func (l Labels) canon() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+l[k])
	}
	return strings.Join(parts, ",")
}

// clone copies the labels so later caller mutation cannot skew a snapshot.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// HistogramValue is one histogram's state at snapshot time.
type HistogramValue struct {
	// Buckets[i] counts samples of value i (the last bucket also holds
	// everything clamped into it).
	Buckets []uint64 `json:"buckets"`
	// Total is the sample count, Sum the sum of sample values.
	Total uint64 `json:"total"`
	Sum   uint64 `json:"sum"`
}

// Mean returns the mean sample value (0 for no samples).
func (h HistogramValue) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// instrument is one registered metric with its read closure.
type instrument struct {
	name      string
	labels    Labels
	kind      string
	readCount func() uint64
	readGauge func() float64
	readHist  func() HistogramValue
}

// Instrument kinds as they appear in the JSON export.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Registry holds the instruments of one simulated machine.
type Registry struct {
	byKey map[string]*instrument
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

func (r *Registry) add(ins *instrument) {
	key := ins.name + "{" + ins.labels.canon() + "}"
	if _, dup := r.byKey[key]; dup {
		panic(fmt.Sprintf("metrics: duplicate instrument %s", key))
	}
	r.byKey[key] = ins
}

// Counter registers a monotonic counter read through fn at snapshot time.
func (r *Registry) Counter(name string, labels Labels, fn func() uint64) {
	r.add(&instrument{name: name, labels: labels.clone(), kind: KindCounter, readCount: fn})
}

// Gauge registers an instantaneous value read through fn at snapshot time.
func (r *Registry) Gauge(name string, labels Labels, fn func() float64) {
	r.add(&instrument{name: name, labels: labels.clone(), kind: KindGauge, readGauge: fn})
}

// Histogram registers a distribution read through fn at snapshot time.
func (r *Registry) Histogram(name string, labels Labels, fn func() HistogramValue) {
	r.add(&instrument{name: name, labels: labels.clone(), kind: KindHistogram, readHist: fn})
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int { return len(r.byKey) }

// Value is one instrument's sampled state inside a Snapshot. Exactly one of
// Counter/Gauge/Histogram is set, matching Kind.
type Value struct {
	Name      string          `json:"name"`
	Labels    Labels          `json:"labels,omitempty"`
	Kind      string          `json:"kind"`
	Counter   *uint64         `json:"counter,omitempty"`
	Gauge     *float64        `json:"gauge,omitempty"`
	Histogram *HistogramValue `json:"histogram,omitempty"`
}

// key orders values inside a snapshot.
func (v Value) key() string { return v.Name + "{" + v.Labels.canon() + "}" }

// Snapshot is the registry's state at one cycle.
type Snapshot struct {
	// Cycle is the simulation cycle the snapshot was taken at.
	Cycle uint64 `json:"cycle"`
	// Metrics is sorted by (name, canonical labels) — the export is stable.
	Metrics []Value `json:"metrics"`
}

// Snapshot samples every instrument. The result is independent of
// registration order: values are sorted by name then canonical labels.
func (r *Registry) Snapshot(cycle uint64) *Snapshot {
	s := &Snapshot{Cycle: cycle, Metrics: make([]Value, 0, len(r.byKey))}
	for _, ins := range r.byKey { //rmtlint:allow snapshot — values are collected then sorted by key below; order-independent
		v := Value{Name: ins.name, Labels: ins.labels, Kind: ins.kind}
		switch ins.kind {
		case KindCounter:
			c := ins.readCount()
			v.Counter = &c
		case KindGauge:
			g := ins.readGauge()
			v.Gauge = &g
		case KindHistogram:
			h := ins.readHist()
			v.Histogram = &h
		}
		s.Metrics = append(s.Metrics, v)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].key() < s.Metrics[j].key() })
	return s
}

// Get returns the snapshot's value for an instrument, by name and labels.
func (s *Snapshot) Get(name string, labels Labels) (Value, bool) {
	want := Value{Name: name, Labels: labels}.key()
	for _, v := range s.Metrics {
		if v.key() == want {
			return v, true
		}
	}
	return Value{}, false
}

// CounterValue returns a counter's sampled count (0, false if absent or not
// a counter).
func (s *Snapshot) CounterValue(name string, labels Labels) (uint64, bool) {
	v, ok := s.Get(name, labels)
	if !ok || v.Counter == nil {
		return 0, false
	}
	return *v.Counter, true
}

// MarshalJSON renders the snapshot. encoding/json sorts map keys, so label
// maps serialise deterministically; metric order is fixed by Snapshot.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // shed the method to avoid recursion
	return json.Marshal((*alias)(s))
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline —
// the byte-stable artifact rmtsim -metrics emits.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
