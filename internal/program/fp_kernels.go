package program

import "repro/internal/isa"

// The floating-point suite. FP arrays are not pre-initialised: the kernels
// write evolving values as they sweep (a zero operand is still a real FP
// operation to the pipeline), which keeps budgeted runs in steady state.

func init() {
	register("swim", "fp",
		"shallow-water stencil: streaming sweeps over large arrays, D-miss heavy",
		buildSwim)
	register("tomcatv", "fp",
		"mesh generation: 2D five-point stencil, predictable, memory bound",
		buildTomcatv)
	register("mgrid", "fp",
		"multigrid: 3D seven-point stencil with plane-strided accesses",
		buildMgrid)
	register("applu", "fp",
		"LU solver: short blocks with serial FP divide chains",
		buildApplu)
	register("apsi", "fp",
		"weather model: mixed int index math and FP updates",
		buildApsi)
	register("hydro2d", "fp",
		"hydrodynamics: stencil plus data-dependent limiter branches",
		buildHydro2d)
	register("su2cor", "fp",
		"quantum field gather: indexed FP loads through an index array",
		buildSu2cor)
	register("fpppp", "fp",
		"quantum chemistry: enormous basic blocks, long FP dependence chains",
		buildFpppp)
	register("turb3d", "fp",
		"turbulence FFT: butterfly passes with power-of-two strides",
		buildTurb3d)
	register("wave5", "fp",
		"particle-in-cell: particle update with scatter/gather to a grid",
		buildWave5)
}

// buildSwim streams three 512 KB arrays with a three-point update,
// write-allocating as it goes: the dominant behaviour is L1/L2 miss
// bandwidth, with perfectly predictable branches.
func buildSwim() *isa.Program {
	b := isa.NewBuilder("swim")
	const (
		u = 0x2000000 // 65536 doubles each
		v = 0x2100000
		p = 0x2200000
		n = 65536
	)
	b.Ldi(isa.R20, u)
	b.Ldi(isa.R21, v)
	b.Ldi(isa.R22, p)
	b.Ldi(isa.R1, 1)
	b.Cvtqf(isa.F10, isa.R1) // 1.0 seed constant

	b.Label("outer")
	b.Ldi(isa.R2, 0)

	b.Label("sweep")
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R4, isa.R3, isa.R20)
	b.Add(isa.R5, isa.R3, isa.R21)
	b.Add(isa.R6, isa.R3, isa.R22)
	// Unrolled x4: four independent grid points per iteration — the
	// abundant loop-level parallelism real swim exposes to a wide core.
	// Point 0.
	b.Fldq(isa.F1, isa.R4, 0)
	b.Fldq(isa.F2, isa.R5, 0)
	b.Fldq(isa.F3, isa.R6, 0)
	b.Fsub(isa.F4, isa.F2, isa.F3)
	b.Fadd(isa.F5, isa.F1, isa.F4)
	b.Fadd(isa.F6, isa.F2, isa.F10)
	b.Fstq(isa.F5, isa.R4, 0)
	b.Fstq(isa.F6, isa.R5, 0)
	// Point 1 (independent).
	b.Fldq(isa.F11, isa.R4, 8)
	b.Fldq(isa.F12, isa.R5, 8)
	b.Fldq(isa.F13, isa.R6, 8)
	b.Fsub(isa.F14, isa.F12, isa.F13)
	b.Fadd(isa.F15, isa.F11, isa.F14)
	b.Fadd(isa.F16, isa.F12, isa.F10)
	b.Fstq(isa.F15, isa.R4, 8)
	b.Fstq(isa.F16, isa.R5, 8)
	// Point 2.
	b.Fldq(isa.F17, isa.R4, 16)
	b.Fldq(isa.F18, isa.R5, 16)
	b.Fldq(isa.F19, isa.R6, 16)
	b.Fsub(isa.F20, isa.F18, isa.F19)
	b.Fadd(isa.F21, isa.F17, isa.F20)
	b.Fstq(isa.F21, isa.R6, 16)
	// Point 3.
	b.Fldq(isa.F22, isa.R4, 24)
	b.Fldq(isa.F23, isa.R5, 24)
	b.Fldq(isa.F24, isa.R6, 24)
	b.Fadd(isa.F25, isa.F22, isa.F23)
	b.Fsub(isa.F26, isa.F25, isa.F24)
	b.Fstq(isa.F26, isa.R6, 24)
	b.Addi(isa.R2, isa.R2, 4)
	b.Cmplti(isa.R7, isa.R2, n)
	b.Bne(isa.R7, "sweep")
	b.Br("outer")
	return b.MustFinish()
}

// buildTomcatv sweeps a 128x128 mesh with a five-point stencil: row-major
// streaming with ±1 and ±row neighbours.
func buildTomcatv() *isa.Program {
	b := isa.NewBuilder("tomcatv")
	const (
		mesh = 0x2400000 // 16384 doubles = 128 KB
		row  = 128
		n    = row * row
	)
	b.Ldi(isa.R20, mesh)
	b.Ldi(isa.R1, 3)
	b.Cvtqf(isa.F10, isa.R1)

	b.Label("outer")
	b.Ldi(isa.R2, row+1) // start inside the boundary

	b.Label("pt")
	// Two independent stencil points per iteration (they are two apart,
	// so neither reads the other's output within the iteration).
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Fldq(isa.F1, isa.R3, 0)
	b.Fldq(isa.F2, isa.R3, -8)
	b.Fldq(isa.F3, isa.R3, 8)
	b.Fldq(isa.F4, isa.R3, -8*row)
	b.Fldq(isa.F5, isa.R3, 8*row)
	b.Fadd(isa.F6, isa.F2, isa.F3)
	b.Fadd(isa.F7, isa.F4, isa.F5)
	b.Fadd(isa.F6, isa.F6, isa.F7)
	b.Fsub(isa.F6, isa.F6, isa.F1)
	b.Fadd(isa.F6, isa.F6, isa.F10)
	b.Fstq(isa.F6, isa.R3, 0)
	b.Fldq(isa.F11, isa.R3, 16)
	b.Fldq(isa.F13, isa.R3, 24)
	b.Fldq(isa.F14, isa.R3, -8*row+16)
	b.Fldq(isa.F15, isa.R3, 8*row+16)
	b.Fadd(isa.F16, isa.F13, isa.F14)
	b.Fadd(isa.F16, isa.F16, isa.F15)
	b.Fsub(isa.F16, isa.F16, isa.F11)
	b.Fadd(isa.F16, isa.F16, isa.F10)
	b.Fstq(isa.F16, isa.R3, 16)
	b.Addi(isa.R2, isa.R2, 2)
	b.Cmplti(isa.R4, isa.R2, n-row-3)
	b.Bne(isa.R4, "pt")
	b.Br("outer")
	return b.MustFinish()
}

// buildMgrid applies a seven-point 3D stencil over a 32^3 grid; the ±plane
// neighbours are 8 KB apart, defeating spatial locality in one dimension.
func buildMgrid() *isa.Program {
	b := isa.NewBuilder("mgrid")
	const (
		grid  = 0x2600000 // 32768 doubles = 256 KB
		plane = 32 * 32
		n     = 32 * plane
	)
	b.Ldi(isa.R20, grid)
	b.Ldi(isa.R1, 2)
	b.Cvtqf(isa.F10, isa.R1)

	b.Label("outer")
	b.Ldi(isa.R2, plane+33)

	b.Label("cell")
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Fldq(isa.F1, isa.R3, 0)
	b.Fldq(isa.F2, isa.R3, -8)
	b.Fldq(isa.F3, isa.R3, 8)
	b.Fldq(isa.F4, isa.R3, -8*32)
	b.Fldq(isa.F5, isa.R3, 8*32)
	b.Fldq(isa.F6, isa.R3, -8*plane)
	b.Fldq(isa.F7, isa.R3, 8*plane)
	b.Fadd(isa.F8, isa.F2, isa.F3)
	b.Fadd(isa.F9, isa.F4, isa.F5)
	b.Fadd(isa.F11, isa.F6, isa.F7)
	b.Fadd(isa.F8, isa.F8, isa.F9)
	b.Fadd(isa.F8, isa.F8, isa.F11)
	b.Fsub(isa.F8, isa.F8, isa.F1)
	b.Fadd(isa.F8, isa.F8, isa.F10)
	b.Fstq(isa.F8, isa.R3, 0)
	// Second, independent cell two elements over.
	b.Fldq(isa.F12, isa.R3, 16)
	b.Fldq(isa.F13, isa.R3, 16-8*32)
	b.Fldq(isa.F14, isa.R3, 16+8*32)
	b.Fldq(isa.F15, isa.R3, 16-8*plane)
	b.Fldq(isa.F16, isa.R3, 16+8*plane)
	b.Fadd(isa.F17, isa.F13, isa.F14)
	b.Fadd(isa.F18, isa.F15, isa.F16)
	b.Fadd(isa.F17, isa.F17, isa.F18)
	b.Fsub(isa.F17, isa.F17, isa.F12)
	b.Fadd(isa.F17, isa.F17, isa.F10)
	b.Fstq(isa.F17, isa.R3, 16)
	b.Addi(isa.R2, isa.R2, 2)
	b.Cmplti(isa.R4, isa.R2, n-plane-35)
	b.Bne(isa.R4, "cell")
	b.Br("outer")
	return b.MustFinish()
}

// buildApplu runs short blocked solves whose inner recurrences serialise
// through FDIV — low ILP, latency bound.
func buildApplu() *isa.Program {
	b := isa.NewBuilder("applu")
	const blocks = 0x2800000 // 4096 doubles of block data
	b.Ldi(isa.R20, blocks)
	b.Ldi(isa.R1, 7)
	b.Cvtqf(isa.F10, isa.R1) // 7.0
	b.Ldi(isa.R1, 3)
	b.Cvtqf(isa.F11, isa.R1) // 3.0

	b.Label("outer")
	b.Ldi(isa.R2, 0)

	b.Label("blk")
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Fldq(isa.F1, isa.R3, 0)
	b.Fadd(isa.F1, isa.F1, isa.F10)
	// Serial divide chain: pivot elimination.
	b.Fdiv(isa.F2, isa.F11, isa.F1)
	b.Fadd(isa.F3, isa.F2, isa.F10)
	b.Fdiv(isa.F4, isa.F3, isa.F1)
	b.Fmul(isa.F5, isa.F4, isa.F2)
	b.Fsub(isa.F5, isa.F5, isa.F11)
	b.Fstq(isa.F5, isa.R3, 0)
	b.Addi(isa.R2, isa.R2, 1)
	b.Andi(isa.R2, isa.R2, 4095)
	b.Bne(isa.R2, "blk")
	b.Br("outer")
	return b.MustFinish()
}

// buildApsi mixes integer index arithmetic with FP column updates over a
// mid-sized working set, with a mostly-predictable mode branch.
func buildApsi() *isa.Program {
	b := isa.NewBuilder("apsi")
	const (
		field = 0x2a00000 // 8192 doubles = 64 KB
		cols  = 64
	)
	b.Ldi(isa.R20, field)
	b.Ldi(isa.R1, 161803)
	b.Ldi(isa.R5, 1)
	b.Cvtqf(isa.F10, isa.R5)

	b.Label("outer")
	b.Ldi(isa.R2, 2048)

	b.Label("col")
	lcgStep(b, isa.R1)
	// Column index: semi-random column, sequential within.
	b.Andi(isa.R3, isa.R1, cols-1)
	b.Muli(isa.R3, isa.R3, 128) // column stride in doubles
	b.Andi(isa.R4, isa.R2, 127)
	b.Add(isa.R3, isa.R3, isa.R4)
	b.Slli(isa.R3, isa.R3, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Andi(isa.R3, isa.R3, 0xffffff) // clamp into the region
	b.Fldq(isa.F1, isa.R3, 0)
	b.Fadd(isa.F2, isa.F1, isa.F10)
	// Mode branch: taken for the dominant regime (predictable ~87%).
	b.Andi(isa.R6, isa.R1, 7)
	b.Beq(isa.R6, "wet")
	b.Fmul(isa.F2, isa.F2, isa.F10)
	b.Br("store")
	b.Label("wet")
	b.Fsub(isa.F2, isa.F2, isa.F10)
	b.Fadd(isa.F2, isa.F2, isa.F2)
	b.Label("store")
	b.Fstq(isa.F2, isa.R3, 0)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "col")
	b.Br("outer")
	return b.MustFinish()
}

// buildHydro2d combines a 2D stencil with data-dependent flux-limiter
// branches (FCMP feeding control flow).
func buildHydro2d() *isa.Program {
	b := isa.NewBuilder("hydro2d")
	const (
		h   = 0x2c00000 // 16384 doubles
		row = 128
		n   = 16384
	)
	b.Ldi(isa.R20, h)
	b.Ldi(isa.R1, 1)
	b.Cvtqf(isa.F10, isa.R1)

	b.Label("outer")
	b.Ldi(isa.R2, row)

	b.Label("zone")
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Fldq(isa.F1, isa.R3, 0)
	b.Fldq(isa.F2, isa.R3, -8*row)
	b.Fsub(isa.F3, isa.F1, isa.F2) // gradient
	// Limiter: branch on the sign of the gradient (data dependent).
	b.Fcmplt(isa.F4, isa.F3, isa.F31)
	b.Ftoi(isa.R4, isa.F4)
	b.Bne(isa.R4, "negative")
	b.Fadd(isa.F5, isa.F1, isa.F10)
	b.Br("update")
	b.Label("negative")
	b.Fsub(isa.F5, isa.F1, isa.F3)
	b.Fadd(isa.F5, isa.F5, isa.F10)
	b.Label("update")
	b.Fstq(isa.F5, isa.R3, 0)
	// Second, independent zone (no limiter: the smooth-flow fast path).
	b.Fldq(isa.F6, isa.R3, 8)
	b.Fldq(isa.F7, isa.R3, 8-8*row)
	b.Fsub(isa.F8, isa.F6, isa.F7)
	b.Fadd(isa.F9, isa.F6, isa.F8)
	b.Fadd(isa.F9, isa.F9, isa.F10)
	b.Fstq(isa.F9, isa.R3, 8)
	b.Addi(isa.R2, isa.R2, 2)
	b.Cmplti(isa.R5, isa.R2, n)
	b.Bne(isa.R5, "zone")
	b.Br("outer")
	return b.MustFinish()
}

// buildSu2cor gathers field values through an index array — dependent
// (load feeding load) accesses over a 512 KB table.
func buildSu2cor() *isa.Program {
	b := isa.NewBuilder("su2cor")
	const (
		idx   = 0x2e00000 // 8192 indices
		table = 0x2f00000 // 65536 doubles = 512 KB
	)
	b.Ldi(isa.R20, idx)
	b.Ldi(isa.R21, table)
	b.Ldi(isa.R1, 888)

	b.Label("outer")
	b.Ldi(isa.R2, 0)

	b.Label("site")
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Ldq(isa.R4, isa.R3, 0) // gauge link index (self-building)
	b.Bne(isa.R4, "haveidx")
	lcgStep(b, isa.R1)
	b.Andi(isa.R4, isa.R1, 65535)
	b.Ori(isa.R4, isa.R4, 1)
	b.Stq(isa.R4, isa.R3, 0)
	b.Label("haveidx")
	b.Slli(isa.R5, isa.R4, 3)
	b.Add(isa.R5, isa.R5, isa.R21)
	b.Fldq(isa.F1, isa.R5, 0) // dependent gather
	b.Fadd(isa.F2, isa.F2, isa.F1)
	b.Fstq(isa.F2, isa.R5, 0) // scatter back
	// Second, independent gather through the next index slot.
	b.Ldq(isa.R6, isa.R3, 8)
	b.Bne(isa.R6, "haveidx2")
	lcgStep(b, isa.R1)
	b.Srli(isa.R6, isa.R1, 5)
	b.Andi(isa.R6, isa.R6, 65535)
	b.Ori(isa.R6, isa.R6, 1)
	b.Stq(isa.R6, isa.R3, 8)
	b.Label("haveidx2")
	b.Slli(isa.R7, isa.R6, 3)
	b.Add(isa.R7, isa.R7, isa.R21)
	b.Fldq(isa.F3, isa.R7, 0)
	b.Fadd(isa.F4, isa.F4, isa.F3)
	b.Fstq(isa.F4, isa.R7, 0)
	b.Addi(isa.R2, isa.R2, 2)
	b.Andi(isa.R2, isa.R2, 8191)
	b.Bne(isa.R2, "site")
	b.Br("outer")
	return b.MustFinish()
}

// buildFpppp reproduces fpppp's signature: basic blocks hundreds of
// instructions long with essentially no branches, dense with FP operations
// in long dependence chains.
func buildFpppp() *isa.Program {
	b := isa.NewBuilder("fpppp")
	const work = 0x3200000 // 1024 doubles of integral intermediates
	b.Ldi(isa.R20, work)
	b.Ldi(isa.R1, 5)
	b.Cvtqf(isa.F1, isa.R1)
	b.Ldi(isa.R1, 9)
	b.Cvtqf(isa.F2, isa.R1)

	b.Label("outer")
	b.Ldi(isa.R2, 0)

	b.Label("integral")
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Fldq(isa.F3, isa.R3, 0)
	b.Fadd(isa.F3, isa.F3, isa.F1)
	// One enormous straight-line block: six independent dependence chains
	// interleaved (real fpppp exposes enough ILP to saturate a wide FP
	// machine), with a cross-mix at the end.
	chains := []isa.Reg{isa.F4, isa.F5, isa.F6, isa.F7, isa.F8, isa.F9}
	for _, c := range chains {
		b.Fadd(c, isa.F3, isa.F2) // seed each chain
	}
	for step := 0; step < 12; step++ {
		for ci, c := range chains {
			if (step+ci)%2 == 0 {
				b.Fmul(c, c, isa.F1)
			} else {
				b.Fadd(c, c, isa.F2)
			}
		}
	}
	// Reduce the chains.
	b.Fadd(isa.F11, isa.F4, isa.F5)
	b.Fadd(isa.F12, isa.F6, isa.F7)
	b.Fadd(isa.F13, isa.F8, isa.F9)
	b.Fadd(isa.F11, isa.F11, isa.F12)
	b.Fadd(isa.F3, isa.F11, isa.F13)
	b.Fstq(isa.F3, isa.R3, 0)
	b.Addi(isa.R2, isa.R2, 1)
	b.Andi(isa.R2, isa.R2, 1023)
	b.Bne(isa.R2, "integral")
	b.Br("outer")
	return b.MustFinish()
}

// buildTurb3d performs FFT-style butterflies: pairs of elements a
// power-of-two stride apart are combined and written back.
func buildTurb3d() *isa.Program {
	b := isa.NewBuilder("turb3d")
	const (
		data = 0x3400000 // 32768 doubles = 256 KB
		n    = 32768
	)
	b.Ldi(isa.R20, data)
	b.Ldi(isa.R23, 8) // stride in elements, doubles each outer pass

	b.Label("outer")
	b.Ldi(isa.R2, 0)
	// stride = stride*2 mod 4096, min 8
	b.Slli(isa.R23, isa.R23, 1)
	b.Andi(isa.R23, isa.R23, 4095)
	b.Ori(isa.R23, isa.R23, 8)

	b.Label("fly")
	// Two independent butterflies per iteration.
	b.Slli(isa.R3, isa.R2, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Slli(isa.R4, isa.R23, 3)
	b.Add(isa.R4, isa.R4, isa.R3) // partner element
	b.Fldq(isa.F1, isa.R3, 0)
	b.Fldq(isa.F2, isa.R4, 0)
	b.Fadd(isa.F3, isa.F1, isa.F2)
	b.Fsub(isa.F4, isa.F1, isa.F2)
	b.Fstq(isa.F3, isa.R3, 0)
	b.Fstq(isa.F4, isa.R4, 0)
	b.Fldq(isa.F5, isa.R3, 8)
	b.Fldq(isa.F6, isa.R4, 8)
	b.Fadd(isa.F7, isa.F5, isa.F6)
	b.Fsub(isa.F8, isa.F5, isa.F6)
	b.Fstq(isa.F7, isa.R3, 8)
	b.Fstq(isa.F8, isa.R4, 8)
	b.Addi(isa.R2, isa.R2, 2)
	b.Cmplti(isa.R5, isa.R2, n-4096-10)
	b.Bne(isa.R5, "fly")
	b.Br("outer")
	return b.MustFinish()
}

// buildWave5 is particle-in-cell: per-particle FP update, conversion to a
// grid index, and a read-modify-write scatter into the grid.
func buildWave5() *isa.Program {
	b := isa.NewBuilder("wave5")
	const (
		parts = 0x3600000 // 8192 particles * 16 B (pos, vel)
		grid  = 0x3700000 // 16384 doubles
	)
	b.Ldi(isa.R20, parts)
	b.Ldi(isa.R21, grid)
	b.Ldi(isa.R1, 1)
	b.Cvtqf(isa.F10, isa.R1) // dt = 1.0

	b.Label("outer")
	b.Ldi(isa.R2, 0)

	b.Label("particle")
	// Two independent particles per iteration.
	b.Slli(isa.R3, isa.R2, 4)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Fldq(isa.F1, isa.R3, 0) // position
	b.Fldq(isa.F2, isa.R3, 8) // velocity
	b.Fadd(isa.F2, isa.F2, isa.F10)
	b.Fadd(isa.F1, isa.F1, isa.F2) // pos += vel*dt
	b.Fstq(isa.F1, isa.R3, 0)
	b.Fstq(isa.F2, isa.R3, 8)
	b.Fldq(isa.F4, isa.R3, 16)
	b.Fldq(isa.F5, isa.R3, 24)
	b.Fadd(isa.F5, isa.F5, isa.F10)
	b.Fadd(isa.F4, isa.F4, isa.F5)
	b.Fstq(isa.F4, isa.R3, 16)
	b.Fstq(isa.F5, isa.R3, 24)
	// Grid deposits: indices from the positions (scatter).
	b.Cvtfq(isa.R4, isa.F1)
	b.Andi(isa.R4, isa.R4, 16383)
	b.Slli(isa.R4, isa.R4, 3)
	b.Add(isa.R4, isa.R4, isa.R21)
	b.Fldq(isa.F3, isa.R4, 0)
	b.Fadd(isa.F3, isa.F3, isa.F10)
	b.Fstq(isa.F3, isa.R4, 0)
	b.Cvtfq(isa.R5, isa.F4)
	b.Andi(isa.R5, isa.R5, 16383)
	b.Slli(isa.R5, isa.R5, 3)
	b.Add(isa.R5, isa.R5, isa.R21)
	b.Fldq(isa.F6, isa.R5, 0)
	b.Fadd(isa.F6, isa.F6, isa.F10)
	b.Fstq(isa.F6, isa.R5, 0)
	b.Addi(isa.R2, isa.R2, 2)
	b.Andi(isa.R2, isa.R2, 8191)
	b.Bne(isa.R2, "particle")
	b.Br("outer")
	return b.MustFinish()
}
