package program

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// earlyHaltKernel is the minimized reproducer for the sim-layer
// completion bug shaken out by the generated-kernel battery (progen
// corpus seed 0xC0FFEE, first corpus kernel): sim.Machine.finishedAll
// ignored Arch.Halted, so any kernel that halts before committing its
// budget made Run report a spurious cycle-cap failure. The smallest
// shape that triggers it is a counted loop that halts almost
// immediately — 8 dynamic instructions against any budget above 8.
func earlyHaltKernel(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("earlyhalt")
	b.Ldi(1, 3)
	b.Label("top")
	b.Addi(1, 1, -1)
	b.Bne(1, "top")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEarlyHaltRegressionImage pins the checked-in RMTBIN1 image to the
// in-tree builder form (so the testdata cannot drift silently) and
// replays it: it must halt at exactly 8 dynamic instructions, the shape
// that distinguishes "program finished early" from "run hit the cycle
// cap".
func TestEarlyHaltRegressionImage(t *testing.T) {
	want := earlyHaltKernel(t)
	var wantImg bytes.Buffer
	if err := isa.WriteImage(&wantImg, want); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "earlyhalt.rmtbin")
	gotImg, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate by writing earlyHaltKernel via isa.WriteImage)", path, err)
	}
	if !bytes.Equal(gotImg, wantImg.Bytes()) {
		t.Fatalf("%s drifted from the in-tree builder form (%d vs %d bytes)", path, len(gotImg), wantImg.Len())
	}

	p, err := isa.ReadImage(bytes.NewReader(gotImg), "earlyhalt")
	if err != nil {
		t.Fatal(err)
	}
	memImg := vm.NewMemory()
	vm.Load(p, memImg)
	th := vm.NewThread(0, p, memImg)
	for !th.Halted && th.Seq < 100 {
		th.Step()
	}
	if !th.Halted || th.Seq != 8 {
		t.Fatalf("earlyhalt: halted=%v at seq %d, want halt at 8", th.Halted, th.Seq)
	}
}
