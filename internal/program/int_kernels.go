package program

import "repro/internal/isa"

// The integer suite. Register conventions within each kernel are local;
// R26 is the call link register by convention, R31 the hardwired zero.
//
// Kernels self-initialise their data structures lazily (a zero read means
// "not built yet"), so short budgeted runs measure steady-state behaviour
// rather than an initialisation phase.

func init() {
	register("gcc", "int",
		"compiler: hash-table symbol lookups, jump-table dispatch, calls, branchy",
		buildGCC)
	register("go", "int",
		"game AI: data-dependent unpredictable branches, small footprint",
		buildGo)
	register("compress", "int",
		"LZ compressor: byte loads/stores, sliding window, hash chains",
		buildCompress)
	register("li", "int",
		"lisp interpreter: linked-list pointer chasing, recursion",
		buildLi)
	register("ijpeg", "int",
		"image codec: dense multiply-accumulate loops, predictable branches",
		buildIjpeg)
	register("perl", "int",
		"script interpreter: string hashing, indirect dispatch",
		buildPerl)
	register("m88ksim", "int",
		"CPU simulator: decode/dispatch loop over a synthetic guest program",
		buildM88ksim)
	register("vortex", "int",
		"OO database: large-footprint record traversal, store-heavy",
		buildVortex)
}

// buildGCC models a compiler's symbol-table behaviour: LCG-driven keys
// probe a 256 KB open-addressed hash table, a jump table dispatches on the
// token class, and a helper function is called on collisions.
func buildGCC() *isa.Program {
	b := isa.NewBuilder("gcc")
	const (
		tableBase = 0x100000 // 32768 entries * 8 B = 256 KB
		tableMask = 32767
		jtBase    = 0x80000
	)
	b.Ldi(isa.R20, tableBase)
	b.Ldi(isa.R21, jtBase)
	b.Ldi(isa.R1, 12345) // LCG state

	b.Label("outer")
	b.Ldi(isa.R2, 512) // tokens per outer iteration

	b.Label("token")
	lcgStep(b, isa.R1)
	// Probe the symbol table (high LCG bits: the low bits of an LCG have
	// short periods and would make the access pattern trivially regular).
	b.Srli(isa.R3, isa.R1, 9)
	b.Andi(isa.R3, isa.R3, tableMask)
	b.Slli(isa.R3, isa.R3, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Ldq(isa.R4, isa.R3, 0)
	b.Bne(isa.R4, "hit")
	b.Stq(isa.R1, isa.R3, 0) // insert
	b.Br("dispatch")
	b.Label("hit")
	// Collision check: equal keys update in place, others chain to a
	// helper that rehashes (call-heavy path).
	b.Cmpeq(isa.R5, isa.R4, isa.R1)
	b.Bne(isa.R5, "dispatch")
	b.Jsr(isa.R26, "rehash")

	b.Label("dispatch")
	// Per-token expression work: straight-line hashing with real ILP
	// (real gcc spends most instructions between branches, not on them).
	b.Srli(isa.R14, isa.R1, 3)
	b.Xor(isa.R15, isa.R14, isa.R10)
	b.Slli(isa.R16, isa.R14, 2)
	b.Add(isa.R16, isa.R16, isa.R15)
	b.Srli(isa.R17, isa.R16, 5)
	b.Xor(isa.R10, isa.R17, isa.R16)
	b.Add(isa.R18, isa.R15, isa.R17)
	b.Andi(isa.R18, isa.R18, 0xfffff)
	// Token-class dispatch through a jump table (indirect jump) on every
	// fourth token only — indirect jumps are a minority of control flow.
	b.Andi(isa.R6, isa.R2, 3)
	b.Bne(isa.R6, "join")
	b.Srli(isa.R6, isa.R1, 16)
	b.Andi(isa.R6, isa.R6, 7)
	b.Slli(isa.R6, isa.R6, 3)
	b.Add(isa.R6, isa.R6, isa.R21)
	b.Ldq(isa.R6, isa.R6, 0)
	b.Jmp(isa.R31, isa.R6)
	for i := 0; i < 8; i++ {
		b.Label(jtLabel("gcc_arm", i))
		switch i % 4 {
		case 0:
			b.Add(isa.R10, isa.R10, isa.R1)
			b.Xori(isa.R10, isa.R10, 0x55)
		case 1:
			b.Srli(isa.R11, isa.R1, 7)
			b.Add(isa.R10, isa.R10, isa.R11)
		case 2:
			b.Mul(isa.R12, isa.R1, isa.R10)
			b.Andi(isa.R12, isa.R12, 0xffff)
		case 3:
			b.Sub(isa.R10, isa.R10, isa.R1)
		}
		b.Br("join")
	}
	b.Label("join")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "token")
	b.Br("outer")

	// rehash: secondary probe and store (exercises store traffic and a
	// short call/return).
	b.Label("rehash")
	b.Slli(isa.R7, isa.R1, 1)
	b.Xor(isa.R7, isa.R7, isa.R4)
	b.Andi(isa.R7, isa.R7, tableMask)
	b.Slli(isa.R7, isa.R7, 3)
	b.Add(isa.R7, isa.R7, isa.R20)
	b.Stq(isa.R1, isa.R7, 0)
	b.Ret(isa.R26)

	arms := make([]string, 8)
	for i := range arms {
		arms[i] = jtLabel("gcc_arm", i)
	}
	b.InitDataLabelTable(jtBase, arms...)
	return b.MustFinish()
}

func jtLabel(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// buildGo models the SPEC go program: long chains of data-dependent
// conditionals on effectively random values — the branch predictor's worst
// case — over a small board-sized footprint.
func buildGo() *isa.Program {
	b := isa.NewBuilder("go")
	const boardBase = 0x40000 // 8 KB board
	b.Ldi(isa.R20, boardBase)
	b.Ldi(isa.R1, 987654321)

	b.Label("outer")
	b.Ldi(isa.R2, 1024)

	b.Label("move")
	lcgStep(b, isa.R1)
	// Position-evaluation arithmetic between branches (ILP carrier).
	b.Srli(isa.R13, isa.R1, 4)
	b.Xor(isa.R14, isa.R13, isa.R10)
	b.Slli(isa.R15, isa.R13, 3)
	b.Add(isa.R15, isa.R15, isa.R14)
	b.Srli(isa.R16, isa.R15, 7)
	b.Add(isa.R10, isa.R16, isa.R14)
	// One genuinely unpredictable branch (high LCG bit: the low bits of an
	// LCG alternate with short periods and would be trivially predictable)
	// and one biased 3-in-4 branch per move.
	b.Srli(isa.R3, isa.R1, 13)
	b.Andi(isa.R3, isa.R3, 1)
	b.Beq(isa.R3, "left")
	b.Addi(isa.R10, isa.R10, 3)
	b.Br("biased")
	b.Label("left")
	b.Xori(isa.R10, isa.R10, 0x3c)
	b.Label("biased")
	b.Srli(isa.R4, isa.R1, 19)
	b.Andi(isa.R4, isa.R4, 3)
	b.Beq(isa.R4, "rare") // ~25% taken
	b.Addi(isa.R11, isa.R11, 1)
	b.Br("evaluate")
	b.Label("rare")
	b.Slli(isa.R5, isa.R10, 1)
	b.Sub(isa.R10, isa.R5, isa.R10)

	b.Label("evaluate")
	// Board read-modify-write at an unpredictable position.
	b.Srli(isa.R6, isa.R1, 7)
	b.Andi(isa.R6, isa.R6, 1023)
	b.Slli(isa.R6, isa.R6, 3)
	b.Add(isa.R6, isa.R6, isa.R20)
	b.Ldq(isa.R7, isa.R6, 0)
	b.Add(isa.R7, isa.R7, isa.R10)
	b.Stq(isa.R7, isa.R6, 0)
	// Liberties check: another unpredictable branch on loaded data.
	b.Srli(isa.R8, isa.R1, 24)
	b.Xor(isa.R8, isa.R8, isa.R7)
	b.Andi(isa.R8, isa.R8, 8)
	b.Beq(isa.R8, "skip")
	b.Addi(isa.R11, isa.R11, 1)
	b.Label("skip")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "move")
	b.Br("outer")
	return b.MustFinish()
}

// buildCompress models compress95: byte-granularity sliding-window
// processing with a hash table of recent positions — many LDB/STB (the
// partial-forwarding pattern) and short data-dependent branches.
func buildCompress() *isa.Program {
	b := isa.NewBuilder("compress")
	const (
		window = 0x200000 // 64 KB byte window
		htab   = 0x300000 // 8192 entries * 8 B
	)
	b.Ldi(isa.R20, window)
	b.Ldi(isa.R21, htab)
	b.Ldi(isa.R1, 31415926)
	b.Ldi(isa.R9, 0) // position

	b.Label("outer")
	b.Ldi(isa.R2, 2048)

	b.Label("byte")
	// One LCG step yields two bytes (distinct bit fields), processed as
	// two mostly-independent strands: the serial recurrence is hoisted off
	// the critical path of the byte work.
	lcgStep(b, isa.R1)
	b.Andi(isa.R9, isa.R9, 0xfffe)
	b.Add(isa.R4, isa.R20, isa.R9)
	// Strand A.
	b.Srli(isa.R3, isa.R1, 8)
	b.Andi(isa.R3, isa.R3, 0xff)
	b.Stb(isa.R3, isa.R4, 0)
	b.Ldb(isa.R5, isa.R4, 0)
	b.Slli(isa.R6, isa.R10, 5)
	b.Xor(isa.R6, isa.R6, isa.R5)
	b.Andi(isa.R10, isa.R6, 8191)
	b.Slli(isa.R6, isa.R10, 3)
	b.Add(isa.R6, isa.R6, isa.R21)
	b.Ldq(isa.R7, isa.R6, 0)
	b.Stq(isa.R9, isa.R6, 0)
	// Strand B (independent hash state in R12).
	b.Srli(isa.R13, isa.R1, 18)
	b.Andi(isa.R13, isa.R13, 0xff)
	b.Stb(isa.R13, isa.R4, 1)
	b.Ldb(isa.R14, isa.R4, 1)
	b.Slli(isa.R15, isa.R12, 5)
	b.Xor(isa.R15, isa.R15, isa.R14)
	b.Andi(isa.R12, isa.R15, 8191)
	b.Slli(isa.R15, isa.R12, 3)
	b.Add(isa.R15, isa.R15, isa.R21)
	b.Ldq(isa.R16, isa.R15, 0)
	b.Stq(isa.R9, isa.R15, 0)
	// Match test: distance-dependent branch.
	b.Sub(isa.R8, isa.R9, isa.R7)
	b.Andi(isa.R8, isa.R8, 0xff00)
	b.Bne(isa.R8, "nomatch")
	b.Add(isa.R11, isa.R11, isa.R16) // match length bookkeeping
	b.Label("nomatch")
	b.Addi(isa.R9, isa.R9, 2)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "byte")
	b.Br("outer")
	return b.MustFinish()
}

// buildLi models xlisp: cons-cell pointer chasing with self-building list
// structure (a nil next pointer is allocated on first touch) and short
// recursive evaluation.
func buildLi() *isa.Program {
	b := isa.NewBuilder("li")
	const (
		heap  = 0x400000 // 16384 cells * 16 B = 256 KB
		cells = 16384
	)
	b.Ldi(isa.R20, heap)
	b.Ldi(isa.R1, 0)    // current cell index
	b.Ldi(isa.R13, 777) // LCG for allocation
	b.Ldi(isa.R14, 0)   // accumulated value

	b.Label("outer")
	b.Ldi(isa.R2, 512)

	b.Label("chase")
	// Two independent chase chains (two live lists), doubling memory-level
	// parallelism while each chain stays serially dependent.
	// Chain 1: cell address = heap + idx*16.
	b.Slli(isa.R3, isa.R1, 4)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Ldq(isa.R4, isa.R3, 0) // car (value)
	b.Add(isa.R14, isa.R14, isa.R4)
	b.Ldq(isa.R5, isa.R3, 8) // cdr (next index+1, 0 = unbuilt)
	b.Bne(isa.R5, "linked")
	// Build the link lazily: pseudo-random successor.
	lcgStep(b, isa.R13)
	b.Srli(isa.R5, isa.R13, 7)
	b.Andi(isa.R5, isa.R5, cells-1)
	b.Addi(isa.R5, isa.R5, 1)
	b.Stq(isa.R5, isa.R3, 8)
	b.Stq(isa.R13, isa.R3, 0)
	b.Label("linked")
	b.Addi(isa.R1, isa.R5, -1)
	b.Andi(isa.R1, isa.R1, cells-1)
	// Chain 2 (index in R9, offset half the heap away).
	b.Slli(isa.R7, isa.R9, 4)
	b.Add(isa.R7, isa.R7, isa.R20)
	b.Ldq(isa.R8, isa.R7, 0)
	b.Add(isa.R14, isa.R14, isa.R8)
	b.Ldq(isa.R10, isa.R7, 8)
	b.Bne(isa.R10, "linked2")
	lcgStep(b, isa.R13)
	b.Srli(isa.R10, isa.R13, 11)
	b.Andi(isa.R10, isa.R10, cells-1)
	b.Addi(isa.R10, isa.R10, 1)
	b.Stq(isa.R10, isa.R7, 8)
	b.Label("linked2")
	b.Addi(isa.R9, isa.R10, 4095)
	b.Andi(isa.R9, isa.R9, cells-1)
	// Write back the evaluation result (the interpreter's heap mutation),
	// so the kernel has a steady-state output stream for the comparator.
	b.Slli(isa.R11, isa.R2, 3)
	b.Addi(isa.R11, isa.R11, 0x500000)
	b.Stq(isa.R14, isa.R11, 0)
	// Every 64th cell, recursively evaluate (3-deep call chain).
	b.Andi(isa.R6, isa.R2, 63)
	b.Bne(isa.R6, "nocall")
	b.Jsr(isa.R26, "eval1")
	b.Label("nocall")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "chase")
	b.Br("outer")

	b.Label("eval1")
	b.Add(isa.R15, isa.R14, isa.R1)
	b.Jsr(isa.R25, "eval2")
	b.Ret(isa.R26)
	b.Label("eval2")
	b.Xori(isa.R15, isa.R15, 0x1f)
	b.Jsr(isa.R24, "eval3")
	b.Ret(isa.R25)
	b.Label("eval3")
	b.Addi(isa.R15, isa.R15, 9)
	b.Ret(isa.R24)
	return b.MustFinish()
}

// buildIjpeg models ijpeg: dense multiply-accumulate sweeps over an image
// with highly predictable control flow.
func buildIjpeg() *isa.Program {
	b := isa.NewBuilder("ijpeg")
	const (
		src = 0x500000 // 64 KB image
		dst = 0x520000
	)
	b.Ldi(isa.R20, src)
	b.Ldi(isa.R21, dst)
	b.Ldi(isa.R1, 5551212)

	b.Label("outer")
	b.Ldi(isa.R2, 0) // pixel index

	b.Label("block")
	// Straight-line 8-tap multiply-accumulate with two independent
	// accumulators — the dense, branch-free ILP of DCT inner loops.
	b.Add(isa.R4, isa.R20, isa.R2)
	b.Ldb(isa.R5, isa.R4, 0)
	// Seed the first pixel of an untouched block so the image becomes
	// non-trivial as the run proceeds.
	b.Bne(isa.R5, "seeded")
	lcgStep(b, isa.R1)
	b.Andi(isa.R5, isa.R1, 0xff)
	b.Stb(isa.R5, isa.R4, 0)
	b.Label("seeded")
	b.Muli(isa.R10, isa.R5, 8)
	b.Ldi(isa.R11, 0)
	for tap := int64(1); tap < 8; tap++ {
		dst := isa.R10
		if tap%2 == 1 {
			dst = isa.R11
		}
		b.Ldb(isa.R6, isa.R4, tap)
		b.Muli(isa.R6, isa.R6, 8-tap)
		b.Add(dst, dst, isa.R6)
	}
	b.Add(isa.R10, isa.R10, isa.R11)
	b.Addi(isa.R2, isa.R2, 8)
	// Emit the transformed block byte.
	b.Srli(isa.R7, isa.R2, 3)
	b.Andi(isa.R7, isa.R7, 0x1fff)
	b.Add(isa.R7, isa.R7, isa.R21)
	b.Stb(isa.R10, isa.R7, 0)
	b.Andi(isa.R2, isa.R2, 0xffff)
	b.Bne(isa.R2, "block")
	b.Br("outer")
	return b.MustFinish()
}

// buildPerl models perl: byte-string hashing with an interpreter-style
// indirect dispatch and associative-array updates.
func buildPerl() *isa.Program {
	b := isa.NewBuilder("perl")
	const (
		text = 0x600000 // 32 KB text
		hash = 0x610000 // 4096 * 8 B associative array
		jt   = 0x620000
	)
	b.Ldi(isa.R20, text)
	b.Ldi(isa.R21, hash)
	b.Ldi(isa.R22, jt)
	b.Ldi(isa.R1, 271828)
	b.Ldi(isa.R9, 0) // text cursor

	b.Label("outer")
	b.Ldi(isa.R2, 256) // words per iteration

	b.Label("word")
	b.Ldi(isa.R10, 5381) // djb2 seed
	b.Ldi(isa.R3, 12)    // 12-byte word, predictable inner loop
	b.Label("chr")
	b.Andi(isa.R9, isa.R9, 0x7fff)
	b.Add(isa.R4, isa.R20, isa.R9)
	b.Ldb(isa.R5, isa.R4, 0)
	b.Bne(isa.R5, "have")
	lcgStep(b, isa.R1)
	b.Andi(isa.R5, isa.R1, 0x7f)
	b.Ori(isa.R5, isa.R5, 1)
	b.Stb(isa.R5, isa.R4, 0)
	b.Label("have")
	b.Slli(isa.R6, isa.R10, 5)
	b.Add(isa.R10, isa.R6, isa.R10)
	b.Add(isa.R10, isa.R10, isa.R5)
	b.Addi(isa.R9, isa.R9, 1)
	b.Addi(isa.R3, isa.R3, -1)
	b.Bne(isa.R3, "chr")
	// Opcode dispatch on hash bits.
	b.Andi(isa.R7, isa.R10, 3)
	b.Slli(isa.R7, isa.R7, 3)
	b.Add(isa.R7, isa.R7, isa.R22)
	b.Ldq(isa.R7, isa.R7, 0)
	b.Jmp(isa.R31, isa.R7)
	for i := 0; i < 4; i++ {
		b.Label(jtLabel("perl_op", i))
		switch i {
		case 0: // %h{$k}++
			b.Andi(isa.R8, isa.R10, 4095)
			b.Slli(isa.R8, isa.R8, 3)
			b.Add(isa.R8, isa.R8, isa.R21)
			b.Ldq(isa.R11, isa.R8, 0)
			b.Addi(isa.R11, isa.R11, 1)
			b.Stq(isa.R11, isa.R8, 0)
		case 1: // string length bookkeeping
			b.Add(isa.R12, isa.R12, isa.R3)
			b.Addi(isa.R12, isa.R12, 12)
		case 2: // pattern test
			b.Andi(isa.R13, isa.R10, 0xff)
			b.Cmplti(isa.R13, isa.R13, 0x80)
			b.Add(isa.R12, isa.R12, isa.R13)
		case 3: // join/concat cost model
			b.Slli(isa.R14, isa.R12, 1)
			b.Xor(isa.R12, isa.R14, isa.R10)
			b.Andi(isa.R12, isa.R12, 0xffffff)
		}
		b.Br("wjoin")
	}
	b.Label("wjoin")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "word")
	b.Br("outer")

	arms := make([]string, 4)
	for i := range arms {
		arms[i] = jtLabel("perl_op", i)
	}
	b.InitDataLabelTable(jt, arms...)
	return b.MustFinish()
}

// buildM88ksim models m88ksim: a fetch/decode/dispatch interpreter loop
// over a self-generating guest instruction stream, with a hot simulated
// register file in memory.
func buildM88ksim() *isa.Program {
	b := isa.NewBuilder("m88ksim")
	const (
		guest = 0x700000 // 4096 guest words
		regs  = 0x710000 // 16 simulated registers
		jt    = 0x720000
	)
	b.Ldi(isa.R20, guest)
	b.Ldi(isa.R21, regs)
	b.Ldi(isa.R22, jt)
	b.Ldi(isa.R1, 1234567)
	b.Ldi(isa.R9, 0) // guest PC

	b.Label("cycle")
	// Guest fetch (self-generating program memory).
	b.Andi(isa.R9, isa.R9, 4095)
	b.Slli(isa.R3, isa.R9, 3)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Ldq(isa.R4, isa.R3, 0)
	b.Bne(isa.R4, "decoded")
	lcgStep(b, isa.R1)
	b.Ori(isa.R4, isa.R1, 1)
	b.Stq(isa.R4, isa.R3, 0)
	b.Label("decoded")
	// Decode: opcode = bits 0..2, operand regs = bits 3..6 / 7..10.
	b.Andi(isa.R5, isa.R4, 7)
	b.Slli(isa.R5, isa.R5, 3)
	b.Add(isa.R5, isa.R5, isa.R22)
	b.Ldq(isa.R5, isa.R5, 0)
	b.Srli(isa.R6, isa.R4, 3)
	b.Andi(isa.R6, isa.R6, 15)
	b.Slli(isa.R6, isa.R6, 3)
	b.Add(isa.R6, isa.R6, isa.R21) // &sim_reg[a]
	b.Srli(isa.R7, isa.R4, 7)
	b.Andi(isa.R7, isa.R7, 15)
	b.Slli(isa.R7, isa.R7, 3)
	b.Add(isa.R7, isa.R7, isa.R21) // &sim_reg[b]
	b.Jmp(isa.R31, isa.R5)
	for i := 0; i < 8; i++ {
		b.Label(jtLabel("m88k_op", i))
		b.Ldq(isa.R10, isa.R6, 0)
		b.Ldq(isa.R11, isa.R7, 0)
		switch i % 4 {
		case 0:
			b.Add(isa.R10, isa.R10, isa.R11)
		case 1:
			b.Xor(isa.R10, isa.R10, isa.R11)
		case 2:
			b.Sub(isa.R10, isa.R10, isa.R11)
		case 3:
			b.Srli(isa.R10, isa.R10, 1)
			b.Add(isa.R10, isa.R10, isa.R11)
		}
		b.Stq(isa.R10, isa.R6, 0)
		if i >= 6 {
			// Guest branch: data-dependent target perturbation.
			b.Andi(isa.R12, isa.R10, 31)
			b.Add(isa.R9, isa.R9, isa.R12)
		}
		b.Br("next")
	}
	b.Label("next")
	b.Addi(isa.R9, isa.R9, 1)
	b.Br("cycle")

	arms := make([]string, 8)
	for i := range arms {
		arms[i] = jtLabel("m88k_op", i)
	}
	b.InitDataLabelTable(jt, arms...)
	return b.MustFinish()
}

// buildVortex models vortex: an object database with a footprint beyond the
// L2, record field reads/updates, and a secondary index — load/store heavy
// with long-latency misses.
func buildVortex() *isa.Program {
	b := isa.NewBuilder("vortex")
	const (
		db      = 0x1000000 // 65536 records * 64 B = 4 MB (beyond the 3 MB L2)
		records = 65536
		index   = 0x1800000 // 8192 * 8 B secondary index
	)
	b.Ldi(isa.R20, db)
	b.Ldi(isa.R21, index)
	b.Ldi(isa.R1, 424242)

	b.Label("outer")
	b.Ldi(isa.R2, 256)

	b.Label("txn")
	lcgStep(b, isa.R1)
	// Two independent record streams per transaction (join-style access):
	// doubled memory-level parallelism over the big table.
	b.Srli(isa.R3, isa.R1, 6)
	b.Andi(isa.R3, isa.R3, records-1)
	b.Slli(isa.R3, isa.R3, 6)
	b.Add(isa.R3, isa.R3, isa.R20)
	b.Srli(isa.R13, isa.R1, 14)
	b.Andi(isa.R13, isa.R13, records-1)
	b.Slli(isa.R13, isa.R13, 6)
	b.Add(isa.R13, isa.R13, isa.R20)
	// Read three fields of each, update one of each.
	b.Ldq(isa.R4, isa.R3, 0)
	b.Ldq(isa.R5, isa.R3, 16)
	b.Ldq(isa.R6, isa.R3, 40)
	b.Ldq(isa.R14, isa.R13, 8)
	b.Ldq(isa.R15, isa.R13, 32)
	b.Add(isa.R7, isa.R4, isa.R5)
	b.Xor(isa.R7, isa.R7, isa.R6)
	b.Addi(isa.R7, isa.R7, 1)
	b.Stq(isa.R7, isa.R3, 24)
	b.Add(isa.R16, isa.R14, isa.R15)
	b.Stq(isa.R16, isa.R13, 48)
	// Secondary index insert on a subset of transactions.
	b.Srli(isa.R8, isa.R1, 20)
	b.Andi(isa.R8, isa.R8, 3)
	b.Bne(isa.R8, "commit")
	b.Srli(isa.R9, isa.R1, 8)
	b.Andi(isa.R9, isa.R9, 8191)
	b.Slli(isa.R9, isa.R9, 3)
	b.Add(isa.R9, isa.R9, isa.R21)
	b.Stq(isa.R3, isa.R9, 0)
	b.Label("commit")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, "txn")
	b.Br("outer")
	return b.MustFinish()
}
