package program

import (
	"sort"
	"testing"
)

// Invariants on the paper's multi-program combination tables (§6.2):
// every name resolves in the registry, no combination repeats a program,
// no two combinations coincide, and the counts match the paper's draws
// (C(4,2) = 6 pairs, C(5,4) = 5 quadruples).

func TestMultiprogramPairsInvariants(t *testing.T) {
	pairs := MultiprogramPairs()
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs, want 6 (all pairs from a 4-program pool)", len(pairs))
	}
	seen := map[[2]string]bool{}
	for _, pr := range pairs {
		if pr[0] == pr[1] {
			t.Errorf("pair %v runs the same program twice", pr)
		}
		// Order-insensitive duplicate check: {a,b} and {b,a} are the same
		// experiment.
		key := pr
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			t.Errorf("duplicate pair %v", pr)
		}
		seen[key] = true
		for _, n := range pr {
			if _, err := Build(n); err != nil {
				t.Errorf("pair %v: %q does not resolve: %v", pr, n, err)
			}
		}
	}
}

func TestFourProgramCombosInvariants(t *testing.T) {
	combos := FourProgramCombos()
	if len(combos) != 5 {
		t.Fatalf("got %d combos, want 5 (leave-one-out from a 5-program pool)", len(combos))
	}
	seen := map[[4]string]bool{}
	for _, c := range combos {
		names := map[string]bool{}
		for _, n := range c {
			if names[n] {
				t.Errorf("combo %v repeats %q", c, n)
			}
			names[n] = true
			if _, err := Build(n); err != nil {
				t.Errorf("combo %v: %q does not resolve: %v", c, n, err)
			}
		}
		key := c
		sort.Strings(key[:])
		if seen[key] {
			t.Errorf("duplicate combo %v", c)
		}
		seen[key] = true
	}
}
