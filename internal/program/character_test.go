package program

import (
	"testing"

	"repro/internal/vm"
)

// profile measures a kernel's dynamic character over n instructions
// starting after a warm lead-in (so self-initialisation doesn't dominate).
type profile struct {
	loadFrac, storeFrac, branchFrac float64
}

func measure(t *testing.T, name string, warm, n int) profile {
	t.Helper()
	p := MustBuild(name)
	memImg := vm.NewMemory()
	vm.Load(p, memImg)
	th := vm.NewThread(0, p, memImg)
	if got := th.Run(uint64(warm)); got != uint64(warm) {
		t.Fatalf("%s halted during warmup", name)
	}
	var loads, stores, branches int
	for i := 0; i < n; i++ {
		out := th.Step()
		switch {
		case out.Instr.IsLoad():
			loads++
		case out.Instr.IsStore():
			stores++
		case out.Instr.IsBranch():
			branches++
		}
	}
	f := float64(n)
	return profile{float64(loads) / f, float64(stores) / f, float64(branches) / f}
}

// TestKernelCharacter pins each kernel's engineered microarchitectural
// character — the property the DESIGN.md substitution argument rests on.
// Ranges are deliberately loose: they catch a kernel drifting out of its
// SPEC namesake's regime (e.g., an edit that removes li's loads or fpppp's
// straight-line density), not exact ratios.
func TestKernelCharacter(t *testing.T) {
	type bounds struct{ lo, hi float64 }
	cases := map[string]struct {
		load, store, branch bounds
	}{
		// Integer: branchy, load/store mixes.
		"gcc":      {bounds{0.03, 0.30}, bounds{0.01, 0.15}, bounds{0.05, 0.25}},
		"go":       {bounds{0.02, 0.20}, bounds{0.01, 0.15}, bounds{0.08, 0.30}},
		"compress": {bounds{0.10, 0.30}, bounds{0.08, 0.30}, bounds{0.02, 0.15}},
		"li":       {bounds{0.15, 0.40}, bounds{0.02, 0.20}, bounds{0.05, 0.30}},
		"ijpeg":    {bounds{0.15, 0.60}, bounds{0.005, 0.15}, bounds{0.02, 0.15}},
		"perl":     {bounds{0.05, 0.30}, bounds{0.005, 0.15}, bounds{0.05, 0.25}},
		"m88ksim":  {bounds{0.08, 0.35}, bounds{0.02, 0.20}, bounds{0.05, 0.30}},
		"vortex":   {bounds{0.10, 0.35}, bounds{0.05, 0.25}, bounds{0.02, 0.15}},
		// FP: heavier memory traffic, few branches.
		"swim":    {bounds{0.15, 0.45}, bounds{0.10, 0.40}, bounds{0.01, 0.10}},
		"tomcatv": {bounds{0.20, 0.50}, bounds{0.03, 0.20}, bounds{0.01, 0.10}},
		"mgrid":   {bounds{0.25, 0.55}, bounds{0.03, 0.20}, bounds{0.01, 0.10}},
		"applu":   {bounds{0.03, 0.25}, bounds{0.03, 0.25}, bounds{0.02, 0.15}},
		"apsi":    {bounds{0.03, 0.25}, bounds{0.03, 0.25}, bounds{0.02, 0.20}},
		"hydro2d": {bounds{0.15, 0.45}, bounds{0.05, 0.30}, bounds{0.02, 0.20}},
		"su2cor":  {bounds{0.10, 0.40}, bounds{0.05, 0.30}, bounds{0.02, 0.15}},
		"fpppp":   {bounds{0.005, 0.10}, bounds{0.003, 0.10}, bounds{0.001, 0.05}},
		"turb3d":  {bounds{0.10, 0.40}, bounds{0.10, 0.40}, bounds{0.01, 0.15}},
		"wave5":   {bounds{0.10, 0.40}, bounds{0.10, 0.40}, bounds{0.01, 0.15}},
	}
	if len(cases) != 18 {
		t.Fatalf("character table covers %d kernels, want 18", len(cases))
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			got := measure(t, name, 30000, 30000)
			check := func(label string, v float64, b bounds) {
				if v < b.lo || v > b.hi {
					t.Errorf("%s %s fraction %.3f outside engineered range [%.3f, %.3f]",
						name, label, v, b.lo, b.hi)
				}
			}
			check("load", got.loadFrac, want.load)
			check("store", got.storeFrac, want.store)
			check("branch", got.branchFrac, want.branch)
		})
	}
}

// TestFootprintOrdering: vortex's working set must dwarf go's — the
// L2-pressure vs small-footprint contrast several experiments rely on.
func TestFootprintOrdering(t *testing.T) {
	pages := func(name string) int {
		p := MustBuild(name)
		memImg := vm.NewMemory()
		vm.Load(p, memImg)
		th := vm.NewThread(0, p, memImg)
		th.Run(200000)
		// Pending overlay bytes also occupy pages once committed; resident
		// page count of the shared image is a good footprint proxy.
		return memImg.Pages()
	}
	small, big := pages("go"), pages("vortex")
	if big < small*4 {
		t.Errorf("vortex pages %d not >> go pages %d", big, small)
	}
}
