// Package program provides the workload suite: eighteen kernels named after
// the SPEC CPU95 benchmarks the paper evaluates with. SPEC CPU95 binaries
// (and the Alpha toolchain to build them) are not available here, so each
// kernel is a from-scratch program in the simulator's ISA engineered to the
// published microarchitectural character of its namesake — branch behaviour,
// cache footprint, pointer-chasing depth, FP dependence-chain length,
// load/store mix. The substitution is documented in DESIGN.md: the paper's
// results depend on this character, not on SPEC program semantics, and these
// are real programs executed redundantly, so output comparison and fault
// injection are exercised for real.
//
// Every kernel is an infinite loop (runs are bounded by committed-instruction
// budgets), deterministic, and self-initialising: the first outer iteration
// writes its data structures, subsequent iterations read them.
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Info pairs a kernel with a short description of the behaviour it models.
type Info struct {
	Name string
	// Suite is "int" or "fp".
	Suite string
	// Description states the microarchitectural character.
	Description string
	Build       func() *isa.Program
}

//rmtlint:allow sharedstate — kernel registry, written only by init-time register()
var registry = map[string]Info{}

func register(name, suite, desc string, build func() *isa.Program) {
	if _, dup := registry[name]; dup {
		panic("program: duplicate kernel " + name)
	}
	registry[name] = Info{Name: name, Suite: suite, Description: desc, Build: build}
}

// Names returns all kernel names, sorted (the paper's 18 SPEC CPU95
// programs).
func Names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// IntNames returns the integer-suite kernels, sorted.
func IntNames() []string { return suiteNames("int") }

// FPNames returns the FP-suite kernels, sorted.
func FPNames() []string { return suiteNames("fp") }

func suiteNames(suite string) []string {
	var ns []string
	for n, i := range registry {
		if i.Suite == suite {
			ns = append(ns, n)
		}
	}
	sort.Strings(ns)
	return ns
}

// Get returns the Info for a kernel.
func Get(name string) (Info, error) {
	i, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("program: unknown kernel %q (have %v)", name, Names())
	}
	return i, nil
}

// Build assembles a kernel by name.
func Build(name string) (*isa.Program, error) {
	i, err := Get(name)
	if err != nil {
		return nil, err
	}
	return i.Build(), nil
}

// MustBuild assembles a kernel, panicking on unknown names (for use with the
// static names in benches and examples).
func MustBuild(name string) *isa.Program {
	p, err := Build(name)
	if err != nil {
		panic(err)
	}
	return p
}

// MultiprogramPairs returns the paper's two-program combinations: the six
// pairs drawn from {gcc, go, fpppp, swim} (§6.2).
func MultiprogramPairs() [][2]string {
	base := []string{"gcc", "go", "fpppp", "swim"}
	var pairs [][2]string
	for i := 0; i < len(base); i++ {
		for j := i + 1; j < len(base); j++ {
			pairs = append(pairs, [2]string{base[i], base[j]})
		}
	}
	return pairs
}

// FourProgramCombos returns the paper's four-program combinations drawn
// from {gcc, go, ijpeg, fpppp, swim} (§6.2 names five programs; choosing
// four gives five distinct combinations — DESIGN.md notes the discrepancy
// with the paper's "15").
func FourProgramCombos() [][4]string {
	base := []string{"gcc", "go", "ijpeg", "fpppp", "swim"}
	var combos [][4]string
	for skip := range base {
		var c [4]string
		k := 0
		for i, n := range base {
			if i == skip {
				continue
			}
			c[k] = n
			k++
		}
		combos = append(combos, c)
	}
	return combos
}

// --- shared builder idioms ---

// lcgStep emits r = (r*1103515245 + 12345) & 0x3fffffff — the classic C
// rand() recurrence, the kernels' deterministic pseudo-randomness source.
func lcgStep(b *isa.Builder, r isa.Reg) {
	b.Muli(r, r, 1103515245)
	b.Addi(r, r, 12345)
	b.Andi(r, r, 0x3fffffff)
}
