package program

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// TestAllKernelsBuildAndValidate assembles every kernel.
func TestAllKernelsBuildAndValidate(t *testing.T) {
	if len(Names()) != 18 {
		t.Fatalf("expected 18 kernels (the SPEC CPU95 suite), have %d: %v", len(Names()), Names())
	}
	for _, name := range Names() {
		p, err := Build(name)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSuiteSplit checks the int/fp partition matches SPEC CPU95 (8 int, 10 fp).
func TestSuiteSplit(t *testing.T) {
	if n := len(IntNames()); n != 8 {
		t.Errorf("int suite has %d kernels, want 8: %v", n, IntNames())
	}
	if n := len(FPNames()); n != 10 {
		t.Errorf("fp suite has %d kernels, want 10: %v", n, FPNames())
	}
}

// TestKernelsRunForever executes each kernel functionally for 50k
// instructions: no HALT, no PC escape, no panic.
func TestKernelsRunForever(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := MustBuild(name)
			mem := vm.NewMemory()
			vm.Load(p, mem)
			th := vm.NewThread(0, p, mem)
			if n := th.Run(50000); n != 50000 {
				t.Fatalf("%s halted after %d instructions", name, n)
			}
		})
	}
}

// TestKernelsAreDeterministic runs each kernel twice and compares the full
// store stream — the redundant-execution invariant every RMT experiment
// rests on.
func TestKernelsAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			stores := func() []vm.Outcome {
				p := MustBuild(name)
				mem := vm.NewMemory()
				vm.Load(p, mem)
				th := vm.NewThread(0, p, mem)
				var ss []vm.Outcome
				for i := 0; i < 30000; i++ {
					out := th.Step()
					if out.IsStore() {
						out.Instr = isa.Instr{} // compare addr/val/size only
						ss = append(ss, out)
					}
				}
				return ss
			}
			a, b := stores(), stores()
			if len(a) != len(b) || len(a) == 0 {
				t.Fatalf("store streams differ in length: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i].Addr != b[i].Addr || a[i].Value != b[i].Value || a[i].Size != b[i].Size {
					t.Fatalf("store %d differs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestKernelsExerciseStores verifies every kernel emits output (stores) —
// a kernel without stores would be invisible to RMT output comparison.
func TestKernelsExerciseStores(t *testing.T) {
	for _, name := range Names() {
		p := MustBuild(name)
		mem := vm.NewMemory()
		vm.Load(p, mem)
		th := vm.NewThread(0, p, mem)
		stores := 0
		for i := 0; i < 20000; i++ {
			if out := th.Step(); out.IsStore() {
				stores++
			}
		}
		if stores == 0 {
			t.Errorf("%s: no stores in 20k instructions", name)
		}
		frac := float64(stores) / 20000
		if frac > 0.5 {
			t.Errorf("%s: implausible store fraction %.2f", name, frac)
		}
	}
}

// TestMultiprogramSets checks the paper's workload combinations.
func TestMultiprogramSets(t *testing.T) {
	pairs := MultiprogramPairs()
	if len(pairs) != 6 {
		t.Fatalf("want 6 two-program pairs, got %d", len(pairs))
	}
	for _, p := range pairs {
		if _, err := Get(p[0]); err != nil {
			t.Error(err)
		}
		if _, err := Get(p[1]); err != nil {
			t.Error(err)
		}
	}
	combos := FourProgramCombos()
	if len(combos) != 5 {
		t.Fatalf("want 5 four-program combos, got %d", len(combos))
	}
	for _, c := range combos {
		seen := map[string]bool{}
		for _, n := range c {
			if seen[n] {
				t.Errorf("combo %v repeats %s", c, n)
			}
			seen[n] = true
			if _, err := Get(n); err != nil {
				t.Error(err)
			}
		}
	}
}

// TestKernelBranchMix sanity-checks that the suite spans a range of branch
// densities (branchy integer codes vs straight-line FP codes).
func TestKernelBranchMix(t *testing.T) {
	density := func(name string) float64 {
		p := MustBuild(name)
		mem := vm.NewMemory()
		vm.Load(p, mem)
		th := vm.NewThread(0, p, mem)
		branches := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if out := th.Step(); out.Instr.IsBranch() {
				branches++
			}
		}
		return float64(branches) / n
	}
	if d := density("go"); d < 0.10 {
		t.Errorf("go branch density %.3f, want >= 0.10 (branchy integer code)", d)
	}
	if d := density("fpppp"); d > 0.05 {
		t.Errorf("fpppp branch density %.3f, want <= 0.05 (huge basic blocks)", d)
	}
}
