// Package snap is the deterministic binary serialization substrate under
// the machine-state snapshot layer: a length-checked little-endian
// writer/reader pair over plain byte slices, standard library only.
//
// The encoding is deliberately primitive — fixed-width 64-bit words plus
// length-prefixed byte strings behind an 8-byte magic header — because the
// snapshot contract is byte-identity: the same machine state must always
// encode to the same bytes. There is no reflection, no map iteration, and
// no varint ambiguity; every composite structure above this layer writes
// its fields in a fixed order and serializes map-backed state in sorted key
// order.
//
// The Reader is total: malformed input can never panic it. Errors are
// sticky — after the first failure every subsequent read returns the zero
// value — so decoders can be written as straight-line field reads with one
// error check at the end.
package snap

import (
	"errors"
	"fmt"
	"math"
)

// magic identifies a snapshot stream and pins the framing version.
const magic = "RMTSNAP1"

// Writer appends fixed-width fields to a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer primed with the stream header.
func NewWriter() *Writer {
	return NewWriterSize(4096)
}

// NewWriterSize returns a writer primed with the stream header and buffer
// capacity for a stream whose encoded size is roughly known in advance. A
// machine snapshot re-encodes to within a few hundred bytes of its previous
// size, and preallocating skips the doubling-growth copies that otherwise
// dominate encode cost on multi-megabyte streams.
func NewWriterSize(capacity int) *Writer {
	if capacity < 4096 {
		capacity = 4096
	}
	return &Writer{buf: append(make([]byte, 0, capacity), magic...)}
}

// U64 writes one little-endian 64-bit word.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Int writes a signed integer as its two's-complement 64-bit image.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// I64 writes a signed 64-bit integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool writes a boolean as one word (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// F64 writes a float64 by its IEEE-754 bit image.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Finish returns the encoded stream. The writer may not be reused after.
func (w *Writer) Finish() []byte { return w.buf }

// ErrMalformed reports a structurally invalid snapshot stream.
var ErrMalformed = errors.New("snap: malformed snapshot")

// Reader consumes a stream produced by Writer. All methods are safe on
// malformed input: the first structural violation latches an error and
// every later read returns zero values.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader validates the stream header and returns a reader positioned at
// the first field.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad header", ErrMalformed)
	}
	return &Reader{data: data, off: len(magic)}, nil
}

// fail latches the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
	}
}

// U64 reads one little-endian 64-bit word.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	b := r.data[r.off:]
	r.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Int reads a signed integer written by Writer.Int.
func (r *Reader) Int() int { return int(int64(r.U64())) }

// I64 reads a signed 64-bit integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a boolean, rejecting encodings other than 0 and 1.
func (r *Reader) Bool() bool {
	switch r.U64() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool at offset %d", r.off-8)
		return false
	}
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// reader's backing array; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("byte string of %d exceeds remaining %d", n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// Count reads an element count and bounds it against the bytes remaining in
// the stream, assuming each element occupies at least minBytes — the guard
// that keeps a corrupted count from driving a huge allocation.
func (r *Reader) Count(minBytes int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64((len(r.data)-r.off)/minBytes) {
		r.fail("count %d exceeds remaining stream", n)
		return 0
	}
	return int(n)
}

// Failf lets a decoder latch a domain error of its own — a geometry
// mismatch between the stream and the machine being restored, say — with
// the same sticky semantics as structural failures.
func (r *Reader) Failf(format string, args ...any) {
	r.fail(format, args...)
}

// Err returns the latched error, nil if the stream has decoded cleanly so
// far.
func (r *Reader) Err() error { return r.err }

// Done returns the latched error, or an error if decoding stopped short of
// the end of the stream (trailing garbage).
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.data)-r.off)
	}
	return nil
}
