package vm

import (
	"math"
	"testing"

	"repro/internal/isa"
)

// opCase drives one opcode through Step with controlled register state and
// checks the destination value (or memory / control-flow effect).
type opCase struct {
	name   string
	ins    isa.Instr
	ra, rb uint64 // preloaded into R1/R2 (or F1/F2 for FP sources)
	fp     bool   // sources are FP registers
	want   uint64 // expected destination value
}

// TestEveryALUOpcode checks the functional semantics of each ALU and FP
// opcode individually.
func TestEveryALUOpcode(t *testing.T) {
	f := math.Float64bits
	cases := []opCase{
		{"add", isa.Instr{Op: isa.ADD, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 7, 5, false, 12},
		{"sub", isa.Instr{Op: isa.SUB, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 7, 5, false, 2},
		{"sub-wrap", isa.Instr{Op: isa.SUB, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 0, 1, false, ^uint64(0)},
		{"mul", isa.Instr{Op: isa.MUL, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 7, 5, false, 35},
		{"div", isa.Instr{Op: isa.DIV, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 35, 5, false, 7},
		{"div-neg", isa.Instr{Op: isa.DIV, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, ^uint64(34), 5, false, ^uint64(6)},
		{"mod", isa.Instr{Op: isa.MOD, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 37, 5, false, 2},
		{"and", isa.Instr{Op: isa.AND, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 0xff, 0x0f, false, 0x0f},
		{"or", isa.Instr{Op: isa.OR, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 0xf0, 0x0f, false, 0xff},
		{"xor", isa.Instr{Op: isa.XOR, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 0xff, 0x0f, false, 0xf0},
		{"sll", isa.Instr{Op: isa.SLL, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 1, 8, false, 256},
		{"sll-mask", isa.Instr{Op: isa.SLL, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 1, 64, false, 1},
		{"srl", isa.Instr{Op: isa.SRL, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 256, 8, false, 1},
		{"sra", isa.Instr{Op: isa.SRA, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, ^uint64(255), 4, false, ^uint64(15)},
		{"cmpeq-t", isa.Instr{Op: isa.CMPEQ, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 5, 5, false, 1},
		{"cmpeq-f", isa.Instr{Op: isa.CMPEQ, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 5, 6, false, 0},
		{"cmplt-signed", isa.Instr{Op: isa.CMPLT, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, ^uint64(0), 0, false, 1},
		{"cmple", isa.Instr{Op: isa.CMPLE, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, 5, 5, false, 1},
		{"cmpult-unsigned", isa.Instr{Op: isa.CMPULT, Rd: isa.R3, Ra: isa.R1, Rb: isa.R2}, ^uint64(0), 0, false, 0},

		{"ldi", isa.Instr{Op: isa.LDI, Rd: isa.R3, Imm: -9}, 0, 0, false, ^uint64(8)},
		{"addi", isa.Instr{Op: isa.ADDI, Rd: isa.R3, Ra: isa.R1, Imm: -2}, 7, 0, false, 5},
		{"muli", isa.Instr{Op: isa.MULI, Rd: isa.R3, Ra: isa.R1, Imm: 3}, 7, 0, false, 21},
		{"andi", isa.Instr{Op: isa.ANDI, Rd: isa.R3, Ra: isa.R1, Imm: 3}, 7, 0, false, 3},
		{"ori", isa.Instr{Op: isa.ORI, Rd: isa.R3, Ra: isa.R1, Imm: 8}, 7, 0, false, 15},
		{"xori", isa.Instr{Op: isa.XORI, Rd: isa.R3, Ra: isa.R1, Imm: 1}, 7, 0, false, 6},
		{"slli", isa.Instr{Op: isa.SLLI, Rd: isa.R3, Ra: isa.R1, Imm: 4}, 1, 0, false, 16},
		{"srli", isa.Instr{Op: isa.SRLI, Rd: isa.R3, Ra: isa.R1, Imm: 2}, 16, 0, false, 4},
		{"srai", isa.Instr{Op: isa.SRAI, Rd: isa.R3, Ra: isa.R1, Imm: 2}, ^uint64(15), 0, false, ^uint64(3)},
		{"cmpeqi", isa.Instr{Op: isa.CMPEQI, Rd: isa.R3, Ra: isa.R1, Imm: 7}, 7, 0, false, 1},
		{"cmplti", isa.Instr{Op: isa.CMPLTI, Rd: isa.R3, Ra: isa.R1, Imm: 8}, 7, 0, false, 1},

		{"fadd", isa.Instr{Op: isa.FADD, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(1.5), f(2.25), true, f(3.75)},
		{"fsub", isa.Instr{Op: isa.FSUB, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(1.5), f(2.25), true, f(-0.75)},
		{"fmul", isa.Instr{Op: isa.FMUL, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(1.5), f(2), true, f(3)},
		{"fdiv", isa.Instr{Op: isa.FDIV, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(3), f(2), true, f(1.5)},
		{"fsqrt", isa.Instr{Op: isa.FSQRT, Rd: isa.F3, Ra: isa.F1}, f(9), 0, true, f(3)},
		{"fneg", isa.Instr{Op: isa.FNEG, Rd: isa.F3, Ra: isa.F1}, f(2.5), 0, true, f(-2.5)},
		{"fcmpeq", isa.Instr{Op: isa.FCMPEQ, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(2), f(2), true, 1},
		{"fcmplt", isa.Instr{Op: isa.FCMPLT, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(1), f(2), true, 1},
		{"fcmple", isa.Instr{Op: isa.FCMPLE, Rd: isa.F3, Ra: isa.F1, Rb: isa.F2}, f(3), f(2), true, 0},
		{"itof", isa.Instr{Op: isa.ITOF, Rd: isa.F3, Ra: isa.R1}, 0x4008000000000000, 0, false, f(3)},
		{"cvtqf", isa.Instr{Op: isa.CVTQF, Rd: isa.F3, Ra: isa.R1}, 3, 0, false, f(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := isa.NewBuilder("op")
			b.Emit(c.ins)
			b.Halt()
			p := b.MustFinish()
			th := NewThread(0, p, NewMemory())
			if c.fp {
				th.FPReg[isa.F1] = c.ra
				th.FPReg[isa.F2] = c.rb
			} else {
				th.IntReg[isa.R1] = c.ra
				th.IntReg[isa.R2] = c.rb
			}
			out := th.Step()
			if out.DestVal != c.want {
				t.Errorf("%v: got %#x, want %#x", c.ins, out.DestVal, c.want)
			}
			var got uint64
			if c.ins.DestIsFP() {
				got = th.FPReg[c.ins.Rd]
			} else {
				got = th.IntReg[c.ins.Rd]
			}
			if got != c.want {
				t.Errorf("%v: register holds %#x, want %#x", c.ins, got, c.want)
			}
		})
	}
}

// TestFtoiCvtfq checks the FP-to-integer movers write the integer file.
func TestFtoiCvtfq(t *testing.T) {
	b := isa.NewBuilder("m")
	b.Emit(isa.Instr{Op: isa.FTOI, Rd: isa.R3, Ra: isa.F1})
	b.Emit(isa.Instr{Op: isa.CVTFQ, Rd: isa.R4, Ra: isa.F1})
	b.Halt()
	p := b.MustFinish()
	th := NewThread(0, p, NewMemory())
	th.FPReg[isa.F1] = math.Float64bits(-7.0)
	th.Step()
	th.Step()
	if th.IntReg[isa.R3] != math.Float64bits(-7.0) {
		t.Errorf("ftoi = %#x", th.IntReg[isa.R3])
	}
	if int64(th.IntReg[isa.R4]) != -7 {
		t.Errorf("cvtfq = %d", int64(th.IntReg[isa.R4]))
	}
}

// TestBranchOutcomes checks every conditional branch's taken rule.
func TestBranchOutcomes(t *testing.T) {
	cases := []struct {
		op    isa.Op
		val   int64
		taken bool
	}{
		{isa.BEQ, 0, true}, {isa.BEQ, 1, false},
		{isa.BNE, 0, false}, {isa.BNE, -1, true},
		{isa.BLT, -1, true}, {isa.BLT, 0, false},
		{isa.BGE, 0, true}, {isa.BGE, -1, false},
		{isa.BGT, 1, true}, {isa.BGT, 0, false},
		{isa.BLE, 0, true}, {isa.BLE, 1, false},
	}
	for _, c := range cases {
		b := isa.NewBuilder("br")
		b.Emit(isa.Instr{Op: c.op, Ra: isa.R1, Imm: 1})
		b.Halt() // fall-through target
		b.Halt() // taken target
		p := b.MustFinish()
		th := NewThread(0, p, NewMemory())
		th.IntReg[isa.R1] = uint64(c.val)
		out := th.Step()
		if out.Taken != c.taken {
			t.Errorf("%v with %d: taken=%v, want %v", c.op, c.val, out.Taken, c.taken)
		}
		wantPC := uint64(1)
		if c.taken {
			wantPC = 2
		}
		if out.NextPC != wantPC {
			t.Errorf("%v with %d: nextPC=%d, want %d", c.op, c.val, out.NextPC, wantPC)
		}
	}
}

// TestJumpLinkValues checks JSR/JMP link-register semantics.
func TestJumpLinkValues(t *testing.T) {
	b := isa.NewBuilder("j")
	b.Jsr(isa.R26, "f") // pc 0 -> link 1
	b.Halt()            // pc 1
	b.Label("f")
	b.Jmp(isa.R25, isa.R26) // pc 2: jump back to 1, link 3
	b.Halt()                // pc 3
	p := b.MustFinish()
	th := NewThread(0, p, NewMemory())
	out := th.Step()
	if out.NextPC != 2 || th.IntReg[isa.R26] != 1 {
		t.Fatalf("jsr: next=%d link=%d", out.NextPC, th.IntReg[isa.R26])
	}
	out = th.Step()
	if out.NextPC != 1 || th.IntReg[isa.R25] != 3 {
		t.Fatalf("jmp: next=%d link=%d", out.NextPC, th.IntReg[isa.R25])
	}
}
