package vm

import (
	"sort"

	"repro/internal/snap"
)

// Snapshot support for the functional substrate. Each method writes the
// receiver's mutable state to a snap.Writer in a fixed field order (map-backed
// state in sorted key order, so identical machine state always encodes to
// identical bytes) and the matching RestoreFrom reads it back. Wiring —
// the Overlay→Memory link, a Thread's Corrupt/IORead hooks, its Prog — is
// not serialized: restore targets a freshly built machine that already has
// the static structure in place.

// SnapshotTo writes the committed memory image: resident pages in ascending
// page-number order.
func (m *Memory) SnapshotTo(w *snap.Writer) {
	nums := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		nums = append(nums, pn)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	w.U64(uint64(len(nums)))
	for _, pn := range nums {
		w.U64(pn)
		w.Bytes(m.pages[pn][:])
	}
}

// RestoreFrom replaces the memory image with the snapshot's pages.
func (m *Memory) RestoreFrom(r *snap.Reader) {
	n := r.Count(16)
	m.pages = make(map[uint64]*page, n)
	m.cacheP = [16]*page{} // cached pointers target the replaced map's entries
	for i := 0; i < n; i++ {
		pn := r.U64()
		b := r.Bytes()
		if len(b) != pageSize {
			continue // sticky reader error already latched on truncation
		}
		p := new(page)
		copy(p[:], b)
		m.pages[pn] = p
	}
}

// SnapshotTo writes the overlay's pending store bytes in ascending address
// order. The backing Memory is shared between threads and serialized once
// by the machine layer, not here.
func (o *Overlay) SnapshotTo(w *snap.Writer) {
	was := make([]uint64, 0, len(o.words))
	for wa := range o.words {
		was = append(was, wa)
	}
	sort.Slice(was, func(i, j int) bool { return was[i] < was[j] })
	w.U64(uint64(o.n))
	for _, wa := range was {
		ow := o.words[wa]
		if ow.mask == 0 {
			continue // tombstone kept for pool reuse, nothing pending
		}
		for i := uint64(0); i < 8; i++ {
			if ow.mask&(1<<i) != 0 {
				w.U64(wa<<3 | i)
				w.U64(uint64(byte(ow.val >> (8 * i))))
				w.U64(ow.seq[i])
			}
		}
	}
}

// RestoreFrom replaces the pending byte set, leaving the backing Memory
// link untouched.
func (o *Overlay) RestoreFrom(r *snap.Reader) {
	n := r.Count(24)
	o.words = make(map[uint64]*overlayWord, (n+7)/8)
	o.n = 0
	o.filter = 0
	o.cacheW = [8]*overlayWord{} // cached pointers target the replaced map's entries
	for i := 0; i < n; i++ {
		a := r.U64()
		val := byte(r.U64())
		seq := r.U64()
		o.storeByte(a, val, seq)
	}
}

// SnapshotTo writes the thread's architectural state and its overlay's
// pending bytes. Prog, Corrupt, and IORead are wiring and stay with the
// rebuilt machine.
func (t *Thread) SnapshotTo(w *snap.Writer) {
	w.U64(t.PC)
	for _, v := range t.IntReg {
		w.U64(v)
	}
	for _, v := range t.FPReg {
		w.U64(v)
	}
	w.U64(t.Seq)
	w.Bool(t.Halted)
	w.Bool(t.Tolerant)
	w.Bool(t.Trapped)
	t.Mem.SnapshotTo(w)
}

// RestoreFrom reads state written by SnapshotTo.
func (t *Thread) RestoreFrom(r *snap.Reader) {
	t.PC = r.U64()
	for i := range t.IntReg {
		t.IntReg[i] = r.U64()
	}
	for i := range t.FPReg {
		t.FPReg[i] = r.U64()
	}
	t.Seq = r.U64()
	t.Halted = r.Bool()
	t.Tolerant = r.Bool()
	t.Trapped = r.Bool()
	t.Mem.RestoreFrom(r)
}

// SnapshotTo writes the device's counter state and write log.
func (d *PseudoDevice) SnapshotTo(w *snap.Writer) {
	w.U64(d.state)
	w.U64(d.Reads)
	w.U64(uint64(len(d.WriteLog)))
	for _, rec := range d.WriteLog {
		w.U64(rec.Addr)
		w.U64(rec.Val)
	}
}

// RestoreFrom reads state written by SnapshotTo.
func (d *PseudoDevice) RestoreFrom(r *snap.Reader) {
	d.state = r.U64()
	d.Reads = r.U64()
	n := r.Count(16)
	d.WriteLog = make([]IOWriteRecord, n)
	for i := 0; i < n; i++ {
		d.WriteLog[i] = IOWriteRecord{Addr: r.U64(), Val: r.U64()}
	}
}
