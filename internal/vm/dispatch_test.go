package vm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/snap"
)

// The dispatch differential battery: the compiled per-PC handler tables
// (threaded dispatch, scalar and batch) must be step-for-step and
// bit-for-bit equal to the original decode switch (stepSwitch, the
// oracle), over every opcode, with and without corruption hooks, through
// traps and halts.

// allOps is every defined opcode, used to assert generator coverage.
func allOps() []isa.Op {
	ops := make([]isa.Op, 0, isa.NumOps)
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

// diffRNG is a tiny xorshift for deterministic program generation.
type diffRNG uint64

func (r *diffRNG) next() uint64 {
	x := uint64(*r) | 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = diffRNG(x)
	return x
}

// randProgram builds a random program exercising op (and whatever else the
// generator draws), with in-range branch targets and a data image. The
// program is not verifier-clean — wild jumps are possible — so executions
// run Tolerant, which is itself part of what the battery checks (traps
// must match across engines).
func randProgram(seed uint64, op isa.Op) *isa.Program {
	r := diffRNG(seed)
	const n = 64
	code := make([]isa.Instr, n)
	for i := range code {
		o := isa.Op(r.next() % uint64(isa.NumOps))
		if i == 7 { // force the op under test to appear early
			o = op
		}
		ins := isa.Instr{
			Op: o,
			Rd: isa.Reg(r.next() % 32),
			Ra: isa.Reg(r.next() % 32),
			Rb: isa.Reg(r.next() % 32),
		}
		switch {
		case ins.IsBranch() && o != isa.JMP:
			// Keep direct targets inside the image: target = pc+1+Imm.
			ins.Imm = int64(r.next()%n) - int64(i) - 1
		case ins.IsMem():
			ins.Imm = int64(r.next() % 512)
		default:
			ins.Imm = int64(r.next()%1024) - 512
		}
		code[i] = ins
	}
	// A HALT floor so most paths terminate quickly enough.
	code[n-1] = isa.Instr{Op: isa.HALT}
	return &isa.Program{
		Name: "diff",
		Code: code,
		Data: map[uint64][]byte{0: {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}},
	}
}

// testCorrupt is a deterministic corruption hook exercising every
// corruption point's ordering.
func testCorrupt(point CorruptPoint, seq, pc, v uint64) uint64 {
	if seq%7 == 3 {
		return v ^ (1 << (uint(point) + uint(pc%8)))
	}
	return v
}

func snapshotBytes(t *Thread) []byte {
	w := snap.NewWriter()
	t.SnapshotTo(w)
	return w.Finish()
}

func newDiffThread(prog *isa.Program, cfg Config, corrupt CorruptFunc) *Thread {
	mem := NewMemory()
	Load(prog, mem)
	th := NewThreadWith(0, prog, mem, cfg)
	th.Tolerant = true
	th.Corrupt = corrupt
	th.IORead = func(addr uint64) uint64 { return addr * 0x9E3779B97F4A7C15 }
	return th
}

func compareOutcomes(t *testing.T, label string, step int, want, got Outcome) {
	t.Helper()
	if want != got {
		t.Fatalf("%s: step %d: outcome diverged\nswitch:   %+v\nthreaded: %+v", label, step, want, got)
	}
}

func compareState(t *testing.T, label string, step int, oracle, subject *Thread) {
	t.Helper()
	if oracle.PC != subject.PC || oracle.Seq != subject.Seq ||
		oracle.Halted != subject.Halted || oracle.Trapped != subject.Trapped ||
		oracle.IntReg != subject.IntReg || oracle.FPReg != subject.FPReg {
		t.Fatalf("%s: step %d: architectural state diverged", label, step)
	}
}

// TestThreadedMatchesSwitch runs, for every opcode, random programs under
// the threaded handler table and the decode switch in lockstep, with and
// without a corruption hook, and requires identical outcomes and
// architectural state at every step plus byte-identical final snapshots.
func TestThreadedMatchesSwitch(t *testing.T) {
	for _, op := range allOps() {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			t.Parallel()
			for variant, corrupt := range map[string]CorruptFunc{"clean": nil, "corrupt": testCorrupt} {
				for seed := uint64(1); seed <= 8; seed++ {
					prog := randProgram(seed*977+uint64(op), op)
					oracle := newDiffThread(prog, Config{Dispatch: DispatchSwitch}, corrupt)
					subject := newDiffThread(prog, Config{}, corrupt)
					label := op.String() + "/" + variant
					for step := 0; step < 3000; step++ {
						a := oracle.Step()
						b := subject.Step()
						compareOutcomes(t, label, step, a, b)
						compareState(t, label, step, oracle, subject)
						if oracle.Halted {
							break
						}
					}
					if wantSnap, gotSnap := snapshotBytes(oracle), snapshotBytes(subject); string(wantSnap) != string(gotSnap) {
						t.Fatalf("%s: final snapshots differ (%d vs %d bytes)", label, len(wantSnap), len(gotSnap))
					}
				}
			}
		})
	}
}

// TestTrapOutcome is the regression for the tolerant PC-overrun marker:
// both dispatchers must report the overrunning step with Trap set, Seq
// frozen, and every subsequent no-op step still carrying Trap; the
// intolerant path must still panic.
func TestTrapOutcome(t *testing.T) {
	// An indirect jump to PC 99 leaves the 2-instruction image.
	prog := &isa.Program{Name: "trap", Code: []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 99},
		{Op: isa.JMP, Rd: isa.ZeroReg, Ra: 1},
	}}
	for _, cfg := range []Config{{}, {Dispatch: DispatchSwitch}} {
		mem := NewMemory()
		th := NewThreadWith(0, prog, mem, cfg)
		th.Tolerant = true
		th.Step() // LDI
		th.Step() // JMP to 99
		out := th.Step()
		if !out.Halted || !out.Trap || out.PC != 99 || out.Seq != 2 {
			t.Fatalf("%v: trap outcome = %+v, want Halted+Trap at PC 99 Seq 2", cfg.Dispatch, out)
		}
		if !th.Halted || !th.Trapped || th.Seq != 2 {
			t.Fatalf("%v: trap state = halted %v trapped %v seq %d", cfg.Dispatch, th.Halted, th.Trapped, th.Seq)
		}
		again := th.Step()
		if !again.Halted || !again.Trap || again.Seq != 2 {
			t.Fatalf("%v: post-trap no-op outcome = %+v, want Halted+Trap Seq 2", cfg.Dispatch, again)
		}
		// A normal HALT must not be marked as a trap.
		hm := NewMemory()
		ht := NewThreadWith(0, &isa.Program{Name: "halt", Code: []isa.Instr{{Op: isa.HALT}}}, hm, cfg)
		if out := ht.Step(); out.Trap || !out.Halted || ht.Trapped {
			t.Fatalf("%v: HALT outcome = %+v trapped=%v, want clean halt", cfg.Dispatch, out, ht.Trapped)
		}
		if out := ht.Step(); out.Trap || !out.Halted {
			t.Fatalf("%v: post-HALT no-op = %+v, want clean halt", cfg.Dispatch, out)
		}

		// Intolerant overrun still panics.
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: intolerant PC overrun did not panic", cfg.Dispatch)
				}
			}()
			pm := NewMemory()
			pt := NewThreadWith(0, prog, pm, cfg)
			pt.Step()
			pt.Step()
			pt.Step()
		}()
	}
}

// TestTrapSnapshotRoundTrip: Trapped must survive snapshot/restore so a
// restored machine reports post-trap no-op outcomes identically.
func TestTrapSnapshotRoundTrip(t *testing.T) {
	prog := &isa.Program{Name: "trap", Code: []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 50},
		{Op: isa.JMP, Rd: isa.ZeroReg, Ra: 1},
	}}
	mem := NewMemory()
	th := NewThread(0, prog, mem)
	th.Tolerant = true
	th.Run(3)
	if !th.Trapped {
		t.Fatal("setup: thread did not trap")
	}
	b := snapshotBytes(th)
	r, err := snap.NewReader(b)
	if err != nil {
		t.Fatal(err)
	}
	mem2 := NewMemory()
	th2 := NewThread(0, prog, mem2)
	th2.RestoreFrom(r)
	if !th2.Trapped {
		t.Fatal("Trapped lost across snapshot/restore")
	}
	if out := th2.Step(); !out.Trap {
		t.Fatalf("restored post-trap outcome = %+v, want Trap", out)
	}
}
