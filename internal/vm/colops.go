package vm

import "repro/internal/isa"

// Column handlers: the unobserved batch fast path. A colFn executes one
// static instruction for a whole group of lanes parked at its PC — the
// lane loop lives inside the handler, so dispatch cost is paid once per
// distinct PC per round, operand reads sweep the contiguous SoA register
// columns, and no Outcome is materialised (there is no Observer to hand it
// to). Each handler is specialised from the same semOf decode as the
// scalar and per-lane paths — identical corruption-point order, ZeroReg
// discard, trap/halt behaviour — and the shadow-batch differential
// batteries (internal/vm dispatch tests, internal/vmdiff) hold the column
// path bit-equal to the scalar switch oracle after every round.
//
// Lane order within a group is unspecified (diverged rounds chain PC
// buckets in reverse lane order): lanes are architecturally independent —
// private registers, private store overlays, read-only shared base memory
// — and corruption hooks are required to be pure functions of their
// arguments, so group execution order cannot be observed in final state.
//
// The handlers capture the batch's column slices and per-lane arrays at
// build time (they are allocated once in NewBatch and reused by Reset), so
// the hot loops index through closure locals instead of re-loading slice
// headers through the Batch pointer every iteration.

// colFn executes one instruction for every lane in lanes.
type colFn func(lanes []int32)

// buildColOps compiles the program into the per-PC column-handler table.
func (b *Batch) buildColOps() []colFn {
	ops := make([]colFn, len(b.Prog.Code))
	for pc := range b.Prog.Code {
		ops[pc] = b.colFnOf(semOf(b.Prog.Code[pc]), uint64(pc))
	}
	return ops
}

// destCol resolves an instruction's destination column, nil for ZeroReg
// (writes to the zero register are discarded, and the column read path
// relies on the ZeroReg column never being written).
func (b *Batch) destCol(rd isa.Reg, fp bool) []uint64 {
	if rd == isa.ZeroReg {
		return nil
	}
	if fp {
		return b.FPReg[rd]
	}
	return b.IntReg[rd]
}

func (b *Batch) colFnOf(s sem, pc uint64) colFn {
	ins := s.ins
	next := pc + 1
	seqs, pcs, halts := b.Seq, b.PC, b.Halted
	cors, mems := b.Corrupt, b.Mem
	switch s.shape {
	case shNop:
		return func(lanes []int32) {
			for _, ln := range lanes {
				pcs[ln] = next
				seqs[ln]++
			}
		}

	case shHalt:
		return func(lanes []int32) {
			for _, ln := range lanes {
				halts[ln] = true
				seqs[ln]++
			}
		}

	case shALU:
		fn, imm, bImm := s.fn, uint64(ins.Imm), s.bImm
		var ac, bc []uint64
		if !s.noA {
			if s.aFP {
				ac = b.FPReg[ins.Ra]
			} else {
				ac = b.IntReg[ins.Ra]
			}
		}
		if !bImm && !s.noB {
			if s.bFP {
				bc = b.FPReg[ins.Rb]
			} else {
				bc = b.IntReg[ins.Rb]
			}
		}
		dc := b.destCol(ins.Rd, s.destFP)
		if !s.aFP && !s.bFP && !s.destFP {
			if h := b.intALUCol(ins.Op, ac, bc, dc, imm, bImm, pc, next); h != nil {
				return h
			}
		}
		return func(lanes []int32) {
			for _, ln := range lanes {
				var a, bv uint64
				if ac != nil {
					a = ac[ln]
				}
				if bImm {
					bv = imm
				} else if bc != nil {
					bv = bc[ln]
				}
				v := fn(a, bv)
				if c := cors[ln]; c != nil {
					v = c(PointResult, seqs[ln], pc, v)
				}
				if dc != nil {
					dc[ln] = v
				}
				pcs[ln] = next
				seqs[ln]++
			}
		}

	case shLoad:
		imm, byteOp := uint64(ins.Imm), s.byteOp
		ac := b.IntReg[ins.Ra]
		dc := b.destCol(ins.Rd, s.destFP)
		return func(lanes []int32) {
			for _, ln := range lanes {
				addr := ac[ln] + imm
				var v uint64
				if byteOp {
					v = uint64(mems[ln].Byte(addr))
				} else {
					v = mems[ln].Read64(addr)
				}
				if c := cors[ln]; c != nil {
					seq := seqs[ln]
					v = c(PointLoadValue, seq, pc, v)
					v = c(PointResult, seq, pc, v)
				}
				if dc != nil {
					dc[ln] = v
				}
				pcs[ln] = next
				seqs[ln]++
			}
		}

	case shLoadIO:
		imm := uint64(ins.Imm)
		ac := b.IntReg[ins.Ra]
		dc := b.destCol(ins.Rd, false)
		return func(lanes []int32) {
			for _, ln := range lanes {
				addr := ac[ln] + imm
				var v uint64
				if b.IORead != nil {
					v = b.IORead(addr)
				}
				if c := cors[ln]; c != nil {
					seq := seqs[ln]
					v = c(PointLoadValue, seq, pc, v)
					v = c(PointResult, seq, pc, v)
				}
				if dc != nil {
					dc[ln] = v
				}
				pcs[ln] = next
				seqs[ln]++
			}
		}

	case shStore, shStoreIO:
		imm, byteOp, size := uint64(ins.Imm), s.byteOp, s.size
		cached := s.shape == shStore
		ac := b.IntReg[ins.Ra]
		var sc []uint64
		if s.srcFP {
			sc = b.FPReg[ins.Rd]
		} else {
			sc = b.IntReg[ins.Rd]
		}
		return func(lanes []int32) {
			for _, ln := range lanes {
				seq := seqs[ln]
				c := cors[ln]
				addr := ac[ln] + imm
				if c != nil {
					addr = c(PointStoreAddr, seq, pc, addr)
				}
				v := sc[ln]
				if byteOp {
					v &= 0xff
				}
				if c != nil {
					v = c(PointStoreData, seq, pc, v)
				}
				if cached {
					mems[ln].Store(addr, v, size, seq)
				}
				pcs[ln] = next
				seqs[ln] = seq + 1
			}
		}

	case shBR:
		target := ins.BranchTarget(pc)
		return func(lanes []int32) {
			for _, ln := range lanes {
				pcs[ln] = target
				seqs[ln]++
			}
		}

	case shCondBr:
		cond := s.cond
		ac := b.IntReg[ins.Ra]
		target := ins.BranchTarget(pc)
		return func(lanes []int32) {
			for _, ln := range lanes {
				if cond(ac[ln]) {
					pcs[ln] = target
				} else {
					pcs[ln] = next
				}
				seqs[ln]++
			}
		}

	case shJSR:
		target := ins.BranchTarget(pc)
		dc := b.destCol(ins.Rd, false)
		return func(lanes []int32) {
			for _, ln := range lanes {
				link := next
				if c := cors[ln]; c != nil {
					link = c(PointResult, seqs[ln], pc, next)
				}
				if dc != nil {
					dc[ln] = link
				}
				pcs[ln] = target
				seqs[ln]++
			}
		}

	case shJMP:
		ac := b.IntReg[ins.Ra]
		dc := b.destCol(ins.Rd, false)
		return func(lanes []int32) {
			for _, ln := range lanes {
				// Jump target read before the link writeback (rd may alias ra).
				npc := ac[ln]
				link := next
				if c := cors[ln]; c != nil {
					link = c(PointResult, seqs[ln], pc, next)
				}
				if dc != nil {
					dc[ln] = link
				}
				pcs[ln] = npc
				seqs[ln]++
			}
		}
	}
	panic("vm: no column handler shape for opcode " + s.ins.Op.String())
}

// intALUCol returns a specialised column handler for the campaign-dominant
// integer ALU opcodes, or nil when the opcode has no specialisation (the
// generic shALU closure then applies). The generic form pays an indirect
// value-function call per lane; here the arithmetic is inlined into a tight
// compute loop that fills valBuf, and aluTail applies the shared
// corruption/writeback/advance sequence in a second pass. Identity with the
// generic form and the scalar oracle is held by TestBatchMatchesScalar,
// which forces every opcode through the column path.
func (b *Batch) intALUCol(op isa.Op, ac, bc, dc []uint64, imm uint64, bImm bool, pc, next uint64) colFn {
	vb := b.valBuf
	mk := func(compute func(lanes []int32)) colFn {
		return func(lanes []int32) {
			compute(lanes)
			b.aluTail(lanes, dc, pc, next)
		}
	}
	simm := int64(imm)
	switch {
	case op == isa.LDI && bImm:
		return mk(func(lanes []int32) {
			for i := range lanes {
				vb[i] = imm
			}
		})
	case ac == nil:
		return nil
	case bImm:
		switch op {
		case isa.ADDI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] + imm
				}
			})
		case isa.MULI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] * imm
				}
			})
		case isa.ANDI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] & imm
				}
			})
		case isa.ORI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] | imm
				}
			})
		case isa.XORI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] ^ imm
				}
			})
		case isa.SLLI:
			sh := imm & 63
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] << sh
				}
			})
		case isa.SRLI:
			sh := imm & 63
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] >> sh
				}
			})
		case isa.SRAI:
			sh := imm & 63
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = uint64(int64(ac[ln]) >> sh)
				}
			})
		case isa.CMPEQI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = boolBits(ac[ln] == imm)
				}
			})
		case isa.CMPLTI:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = boolBits(int64(ac[ln]) < simm)
				}
			})
		}
		return nil
	case bc != nil:
		switch op {
		case isa.ADD:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] + bc[ln]
				}
			})
		case isa.SUB:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] - bc[ln]
				}
			})
		case isa.MUL:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] * bc[ln]
				}
			})
		case isa.AND:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] & bc[ln]
				}
			})
		case isa.OR:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] | bc[ln]
				}
			})
		case isa.XOR:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] ^ bc[ln]
				}
			})
		case isa.SLL:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] << (bc[ln] & 63)
				}
			})
		case isa.SRL:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = ac[ln] >> (bc[ln] & 63)
				}
			})
		case isa.SRA:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = uint64(int64(ac[ln]) >> (bc[ln] & 63))
				}
			})
		case isa.CMPEQ:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = boolBits(ac[ln] == bc[ln])
				}
			})
		case isa.CMPLT:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = boolBits(int64(ac[ln]) < int64(bc[ln]))
				}
			})
		case isa.CMPLE:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = boolBits(int64(ac[ln]) <= int64(bc[ln]))
				}
			})
		case isa.CMPULT:
			return mk(func(lanes []int32) {
				for i, ln := range lanes {
					vb[i] = boolBits(ac[ln] < bc[ln])
				}
			})
		}
	}
	return nil
}

// aluTail applies the ALU writeback sequence for a lane group whose values
// were computed into valBuf: corruption hook at PointResult, destination
// column write (dc nil discards, matching ZeroReg), PC and Seq advance.
func (b *Batch) aluTail(lanes []int32, dc []uint64, pc, next uint64) {
	vb := b.valBuf[:len(lanes)]
	cors, seqs, pcs := b.Corrupt, b.Seq, b.PC
	if dc == nil {
		for i, ln := range lanes {
			if c := cors[ln]; c != nil {
				c(PointResult, seqs[ln], pc, vb[i])
			}
			pcs[ln] = next
			seqs[ln]++
		}
		return
	}
	for i, ln := range lanes {
		v := vb[i]
		if c := cors[ln]; c != nil {
			v = c(PointResult, seqs[ln], pc, v)
		}
		dc[ln] = v
		pcs[ln] = next
		seqs[ln]++
	}
}
