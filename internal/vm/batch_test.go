package vm

import (
	"testing"

	"repro/internal/isa"
)

// laneOracle pairs a Batch with N scalar switch-dispatch oracle threads
// over the same base memory, stepping them in lockstep and comparing
// everything: per-lane outcomes, register columns, PCs, Seqs, flags. A
// second, unobserved shadow batch rides along so the PC-grouped column
// fast path (taken only when Observer is nil) is held to the same state
// identity; hooks are pure, so sharing them with the shadow is sound.
type laneOracle struct {
	b       *Batch
	shadow  *Batch
	threads []*Thread
	outs    []Outcome
	seen    []bool
}

func newLaneOracle(t *testing.T, prog *isa.Program, n int, corrupt func(lane int) CorruptFunc) *laneOracle {
	t.Helper()
	mem := NewMemory()
	Load(prog, mem)
	io := func(addr uint64) uint64 { return addr ^ 0xABCD }
	lo := &laneOracle{
		b:       NewBatch(prog, mem, n),
		shadow:  NewBatch(prog, mem, n),
		threads: make([]*Thread, n),
		outs:    make([]Outcome, n),
		seen:    make([]bool, n),
	}
	lo.b.Tolerant = true
	lo.b.IORead = io
	lo.b.Observer = func(lane int, out *Outcome) {
		lo.outs[lane] = *out
		lo.seen[lane] = true
	}
	lo.shadow.Tolerant = true
	lo.shadow.IORead = io
	for i := 0; i < n; i++ {
		th := NewThreadWith(i, prog, mem, Config{Dispatch: DispatchSwitch})
		th.Tolerant = true
		th.IORead = io
		if corrupt != nil {
			c := corrupt(i)
			th.Corrupt = c
			lo.b.Corrupt[i] = c
			lo.shadow.Corrupt[i] = c
		}
		lo.threads[i] = th
	}
	return lo
}

// step advances batch and oracles one round and compares all lanes.
func (lo *laneOracle) step(t *testing.T, round int) int {
	t.Helper()
	for i := range lo.seen {
		lo.seen[i] = false
	}
	wasLive := make([]bool, lo.b.N)
	for i := range lo.threads {
		wasLive[i] = !lo.b.Halted[i]
	}
	live := lo.b.Step()
	lo.shadow.Step()
	for i, th := range lo.threads {
		if !wasLive[i] {
			continue // batch skips halted lanes; a halted Thread step is a state no-op
		}
		want := th.Step()
		if !lo.seen[i] {
			t.Fatalf("round %d lane %d: batch emitted no outcome", round, i)
		}
		if want != lo.outs[i] {
			t.Fatalf("round %d lane %d: outcome diverged\nscalar: %+v\nbatch:  %+v", round, i, want, lo.outs[i])
		}
		for _, cmp := range []struct {
			label string
			b     *Batch
		}{{"batch", lo.b}, {"shadow", lo.shadow}} {
			if th.PC != cmp.b.PC[i] || th.Seq != cmp.b.Seq[i] ||
				th.Halted != cmp.b.Halted[i] || th.Trapped != cmp.b.Trapped[i] {
				t.Fatalf("round %d %s lane %d: control state diverged: oracle pc %d seq %d halted %v trapped %v, got pc %d seq %d halted %v trapped %v",
					round, cmp.label, i, th.PC, th.Seq, th.Halted, th.Trapped,
					cmp.b.PC[i], cmp.b.Seq[i], cmp.b.Halted[i], cmp.b.Trapped[i])
			}
			for r := 0; r < isa.NumIntRegs; r++ {
				if th.IntReg[r] != cmp.b.IntReg[r][i] {
					t.Fatalf("round %d %s lane %d: r%d = %#x, got %#x", round, cmp.label, i, r, th.IntReg[r], cmp.b.IntReg[r][i])
				}
			}
			for r := 0; r < isa.NumFPRegs; r++ {
				if th.FPReg[r] != cmp.b.FPReg[r][i] {
					t.Fatalf("round %d %s lane %d: f%d = %#x, got %#x", round, cmp.label, i, r, th.FPReg[r], cmp.b.FPReg[r][i])
				}
			}
			if op, bp := th.Mem.PendingBytes(), cmp.b.Mem[i].PendingBytes(); op != bp {
				t.Fatalf("round %d %s lane %d: overlay diverged: oracle %d pending bytes, got %d", round, cmp.label, i, op, bp)
			}
		}
	}
	return live
}

// TestBatchMatchesScalar: a Batch over random programs — one per opcode,
// each forced to contain that opcode — must stay bit-equal to N
// independent scalar oracle threads after every lockstep round, with
// distinct per-lane corruption hooks driving the lanes apart. The shadow
// batch inside laneOracle extends the identity to the column fast path
// for every handler shape.
func TestBatchMatchesScalar(t *testing.T) {
	for i, op := range allOps() {
		seed := uint64(i + 1)
		prog := randProgram(seed*131071, op)
		const n = 8
		corrupt := func(lane int) CorruptFunc {
			if lane == 0 {
				return nil // lane 0 runs fault-free
			}
			salt := uint64(lane) * 0x9E37
			return func(point CorruptPoint, seq, pc, v uint64) uint64 {
				if (seq+salt)%11 == 5 {
					return v ^ (salt << uint(point))
				}
				return v
			}
		}
		lo := newLaneOracle(t, prog, n, corrupt)
		for round := 0; round < 3000; round++ {
			if lo.step(t, round) == 0 {
				break
			}
		}
	}
}

// TestBatchTrapParity: lanes that run off the code image must trap exactly
// like scalar tolerant threads — Halted+Trapped set, trap outcome emitted,
// Seq frozen — and the intolerant batch must panic.
func TestBatchTrapParity(t *testing.T) {
	// Lane behaviour diverges on r1: LDI loads the lane-corrupted jump
	// target, so some lanes jump out of the image and trap.
	prog := &isa.Program{Name: "trap", Code: []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 2},
		{Op: isa.JMP, Rd: isa.ZeroReg, Ra: 1},
		{Op: isa.HALT},
	}}
	corrupt := func(lane int) CorruptFunc {
		if lane%2 == 0 {
			return nil // even lanes halt cleanly at PC 2
		}
		return func(point CorruptPoint, seq, pc, v uint64) uint64 {
			if point == PointResult && pc == 0 {
				return 77 // odd lanes jump to 77 and trap
			}
			return v
		}
	}
	lo := newLaneOracle(t, prog, 6, corrupt)
	for round := 0; round < 8; round++ {
		if lo.step(t, round) == 0 {
			break
		}
	}
	for lane := 0; lane < lo.b.N; lane++ {
		wantTrap := lane%2 == 1
		if !lo.b.Halted[lane] || lo.b.Trapped[lane] != wantTrap {
			t.Fatalf("lane %d: halted %v trapped %v, want halted, trapped=%v",
				lane, lo.b.Halted[lane], lo.b.Trapped[lane], wantTrap)
		}
	}

	// Intolerant overrun panics with the lane in the message.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("intolerant batch PC overrun did not panic")
			}
		}()
		mem := NewMemory()
		b := NewBatch(prog, mem, 1)
		b.Corrupt[0] = corrupt(1)
		b.Run(8)
	}()
}

// storeLoop is an infinite store/load/branch kernel for the steady-state
// alloc and reuse gates: it keeps the overlay hot without ever halting.
func storeLoop() *isa.Program {
	return &isa.Program{Name: "storeloop", Code: []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 64},
		{Op: isa.STQ, Rd: 2, Ra: 1, Imm: 0},
		{Op: isa.LDQ, Rd: 3, Ra: 1, Imm: 0},
		{Op: isa.ADDI, Rd: 2, Ra: 2, Imm: 1},
		{Op: isa.BR, Imm: -4}, // back to the STQ
	}}
}

// TestBatchSteadyStateAllocs: the batched hot loop must allocate nothing
// per step once the overlays are warm.
func TestBatchSteadyStateAllocs(t *testing.T) {
	mem := NewMemory()
	b := NewBatch(storeLoop(), mem, 16)
	b.Run(64) // warm the overlay maps
	allocs := testing.AllocsPerRun(200, func() {
		b.Step()
	})
	if allocs != 0 {
		t.Fatalf("batched Step allocates %.2f per round in steady state, want 0", allocs)
	}
}

// TestBatchResetReuse: Reset must rewind a pooled batch without
// reallocating its columns or overlay buckets, so a whole
// reset-and-replay cycle is allocation-free after the first campaign.
func TestBatchResetReuse(t *testing.T) {
	prog := &isa.Program{Name: "resetloop", Code: []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 64},
		{Op: isa.STQ, Rd: 1, Ra: 1, Imm: 0},
		{Op: isa.STQ, Rd: 1, Ra: 1, Imm: 8},
		{Op: isa.HALT},
	}}
	mem := NewMemory()
	Load(prog, mem)
	b := NewBatch(prog, mem, 8)
	b.Run(16) // first campaign grows the overlay maps
	allocs := testing.AllocsPerRun(50, func() {
		b.Reset(mem)
		b.Run(16)
	})
	if allocs != 0 {
		t.Fatalf("Reset+Run allocates %.2f per campaign after warmup, want 0", allocs)
	}

	// Reset really rewinds: state after Reset equals a fresh batch.
	b.Reset(mem)
	for lane := 0; lane < b.N; lane++ {
		if b.PC[lane] != prog.Entry || b.Seq[lane] != 0 || b.Halted[lane] || b.Trapped[lane] {
			t.Fatalf("lane %d not rewound: pc %d seq %d halted %v trapped %v",
				lane, b.PC[lane], b.Seq[lane], b.Halted[lane], b.Trapped[lane])
		}
		for r := 0; r < isa.NumIntRegs; r++ {
			if b.IntReg[r][lane] != 0 {
				t.Fatalf("lane %d r%d = %#x after Reset, want 0", lane, r, b.IntReg[r][lane])
			}
		}
		if got := b.Mem[lane].Read64(64); got != 0 {
			t.Fatalf("lane %d overlay survived Reset: mem[64] = %#x", lane, got)
		}
	}
}
