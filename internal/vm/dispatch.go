package vm

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Threaded-code dispatch for the functional engine. Step's original
// interpreter decodes its operands on every dynamic instruction: a giant
// switch over the opcode plus per-step calls into the Instr predicate
// methods (HasDest, IsCondBranch, IsStore, ...) in the shared tail. On the
// campaign-replay, metamorphic-verification, and characterisation paths
// that re-decode is the dominant cost, because the same static instruction
// executes thousands of times.
//
// buildOps compiles a program once into a per-PC handler table: each entry
// is a closure specialised for the instruction at that PC (operands,
// immediate, branch target, and the shared-tail decisions are resolved at
// build time), so a step is one indirect call with no per-step decode. The
// semantic core — value functions and branch predicates — is defined once
// below and shared with the SoA batch engine (batch.go), so the scalar and
// batched threaded paths cannot drift apart; the original switch
// interpreter is retained verbatim (thread.go stepSwitch) as the
// differential oracle and is exhaustively checked against the compiled
// handlers by the vm and vmdiff test batteries.

// Dispatch selects the functional interpreter a Thread steps with.
type Dispatch uint8

// Interpreter choices.
const (
	// DispatchThreaded steps through the per-PC predecoded handler table.
	// It is the default.
	DispatchThreaded Dispatch = iota
	// DispatchSwitch steps through the original per-step decode switch. It
	// is the differential oracle for the threaded paths.
	DispatchSwitch
)

func (d Dispatch) String() string {
	if d == DispatchSwitch {
		return "switch"
	}
	return "threaded"
}

// Config selects functional-engine variants. The zero value is the
// default (threaded dispatch).
type Config struct {
	Dispatch Dispatch
}

// shape classifies an instruction by the handler skeleton it compiles to.
type shape uint8

const (
	shNop     shape = iota // NOP, MB
	shALU                  // pure compute with a register destination
	shLoad                 // LDQ, FLDQ, LDB
	shStore                // STQ, FSTQ, STB
	shLoadIO               // LDIO
	shStoreIO              // STIO
	shBR                   // BR
	shCondBr               // BEQ..BLE
	shJSR                  // JSR
	shJMP                  // JMP
	shHalt                 // HALT
)

// sem is one instruction's decoded semantics: everything a handler
// specialiser needs, resolved once at table-build time.
type sem struct {
	ins   isa.Instr
	shape shape

	// shALU operand routing: a from the FP or int file (or absent), b from
	// the FP file, the int file, or the immediate.
	aFP, bFP, bImm, noA, noB bool
	fn                       func(a, b uint64) uint64
	destFP                   bool

	// shCondBr predicate over the Ra value.
	cond func(a uint64) bool

	// Memory access width and routing.
	size   int
	srcFP  bool // store data read from the FP file (FSTQ)
	byteOp bool // 1-byte access (LDB/STB)
}

// Value functions and branch predicates: the single statement of each
// opcode's computation for the threaded paths. Immediate variants reuse
// their register-register function with b bound to the immediate.
func fnAdd(a, b uint64) uint64    { return a + b }
func fnSub(a, b uint64) uint64    { return a - b }
func fnMul(a, b uint64) uint64    { return a * b }
func fnAnd(a, b uint64) uint64    { return a & b }
func fnOr(a, b uint64) uint64     { return a | b }
func fnXor(a, b uint64) uint64    { return a ^ b }
func fnSll(a, b uint64) uint64    { return a << (b & 63) }
func fnSrl(a, b uint64) uint64    { return a >> (b & 63) }
func fnSra(a, b uint64) uint64    { return uint64(int64(a) >> (b & 63)) }
func fnCmpEq(a, b uint64) uint64  { return boolBits(a == b) }
func fnCmpLt(a, b uint64) uint64  { return boolBits(int64(a) < int64(b)) }
func fnCmpLe(a, b uint64) uint64  { return boolBits(int64(a) <= int64(b)) }
func fnCmpUlt(a, b uint64) uint64 { return boolBits(a < b) }
func fnLdi(_, b uint64) uint64    { return b }

func fnDiv(a, b uint64) uint64 {
	if int64(b) == 0 {
		return 0
	}
	return uint64(int64(a) / int64(b))
}

func fnMod(a, b uint64) uint64 {
	if int64(b) == 0 {
		return 0
	}
	return uint64(int64(a) % int64(b))
}

func fnFAdd(a, b uint64) uint64   { return bits(f64(a) + f64(b)) }
func fnFSub(a, b uint64) uint64   { return bits(f64(a) - f64(b)) }
func fnFMul(a, b uint64) uint64   { return bits(f64(a) * f64(b)) }
func fnFDiv(a, b uint64) uint64   { return bits(f64(a) / f64(b)) }
func fnFSqrt(a, _ uint64) uint64  { return bits(math.Sqrt(f64(a))) }
func fnFNeg(a, _ uint64) uint64   { return bits(-f64(a)) }
func fnFCmpEq(a, b uint64) uint64 { return boolBits(f64(a) == f64(b)) }
func fnFCmpLt(a, b uint64) uint64 { return boolBits(f64(a) < f64(b)) }
func fnFCmpLe(a, b uint64) uint64 { return boolBits(f64(a) <= f64(b)) }
func fnCvtQF(a, _ uint64) uint64  { return bits(float64(int64(a))) }
func fnMove(a, _ uint64) uint64   { return a }

func fnCvtFQ(a, _ uint64) uint64 {
	f := f64(a)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint64(int64(f))
}

func condBeq(a uint64) bool { return a == 0 }
func condBne(a uint64) bool { return a != 0 }
func condBlt(a uint64) bool { return int64(a) < 0 }
func condBge(a uint64) bool { return int64(a) >= 0 }
func condBgt(a uint64) bool { return int64(a) > 0 }
func condBle(a uint64) bool { return int64(a) <= 0 }

// semOf decodes one instruction's semantics. It is the threaded engine's
// single decode point; both the scalar and the batch specialiser consume
// its output.
func semOf(ins isa.Instr) sem {
	s := sem{ins: ins, destFP: ins.DestIsFP(), size: ins.MemBytes()}
	intOp := func(fn func(a, b uint64) uint64) {
		s.shape, s.fn = shALU, fn
	}
	immOp := func(fn func(a, b uint64) uint64) {
		s.shape, s.fn, s.bImm = shALU, fn, true
	}
	fpOp := func(fn func(a, b uint64) uint64) {
		s.shape, s.fn, s.aFP, s.bFP = shALU, fn, true, true
	}
	fp1 := func(fn func(a, b uint64) uint64) {
		s.shape, s.fn, s.aFP, s.noB = shALU, fn, true, true
	}
	int1 := func(fn func(a, b uint64) uint64) {
		s.shape, s.fn, s.noB = shALU, fn, true
	}
	cond := func(fn func(a uint64) bool) {
		s.shape, s.cond = shCondBr, fn
	}
	switch ins.Op {
	case isa.NOP, isa.MB:
		s.shape = shNop
	case isa.HALT:
		s.shape = shHalt

	case isa.ADD:
		intOp(fnAdd)
	case isa.SUB:
		intOp(fnSub)
	case isa.MUL:
		intOp(fnMul)
	case isa.DIV:
		intOp(fnDiv)
	case isa.MOD:
		intOp(fnMod)
	case isa.AND:
		intOp(fnAnd)
	case isa.OR:
		intOp(fnOr)
	case isa.XOR:
		intOp(fnXor)
	case isa.SLL:
		intOp(fnSll)
	case isa.SRL:
		intOp(fnSrl)
	case isa.SRA:
		intOp(fnSra)
	case isa.CMPEQ:
		intOp(fnCmpEq)
	case isa.CMPLT:
		intOp(fnCmpLt)
	case isa.CMPLE:
		intOp(fnCmpLe)
	case isa.CMPULT:
		intOp(fnCmpUlt)

	case isa.LDI:
		immOp(fnLdi)
		s.noA = true
	case isa.ADDI:
		immOp(fnAdd)
	case isa.MULI:
		immOp(fnMul)
	case isa.ANDI:
		immOp(fnAnd)
	case isa.ORI:
		immOp(fnOr)
	case isa.XORI:
		immOp(fnXor)
	case isa.SLLI:
		immOp(fnSll)
	case isa.SRLI:
		immOp(fnSrl)
	case isa.SRAI:
		immOp(fnSra)
	case isa.CMPEQI:
		immOp(fnCmpEq)
	case isa.CMPLTI:
		immOp(fnCmpLt)

	case isa.LDIO:
		s.shape = shLoadIO
	case isa.STIO:
		s.shape = shStoreIO
	case isa.LDQ, isa.FLDQ:
		s.shape = shLoad
	case isa.LDB:
		s.shape, s.byteOp = shLoad, true
	case isa.STQ:
		s.shape = shStore
	case isa.FSTQ:
		s.shape, s.srcFP = shStore, true
	case isa.STB:
		s.shape, s.byteOp = shStore, true

	case isa.FADD:
		fpOp(fnFAdd)
	case isa.FSUB:
		fpOp(fnFSub)
	case isa.FMUL:
		fpOp(fnFMul)
	case isa.FDIV:
		fpOp(fnFDiv)
	case isa.FSQRT:
		fp1(fnFSqrt)
	case isa.FNEG:
		fp1(fnFNeg)
	case isa.FCMPEQ:
		fpOp(fnFCmpEq)
	case isa.FCMPLT:
		fpOp(fnFCmpLt)
	case isa.FCMPLE:
		fpOp(fnFCmpLe)
	case isa.CVTQF:
		int1(fnCvtQF)
	case isa.CVTFQ:
		fp1(fnCvtFQ)
	case isa.ITOF:
		int1(fnMove)
	case isa.FTOI:
		fp1(fnMove)

	case isa.BR:
		s.shape = shBR
	case isa.BEQ:
		cond(condBeq)
	case isa.BNE:
		cond(condBne)
	case isa.BLT:
		cond(condBlt)
	case isa.BGE:
		cond(condBge)
	case isa.BGT:
		cond(condBgt)
	case isa.BLE:
		cond(condBle)
	case isa.JSR:
		s.shape = shJSR
	case isa.JMP:
		s.shape = shJMP

	default:
		panic(fmt.Sprintf("vm: unimplemented opcode %v", ins.Op))
	}
	return s
}

// stepFn is one compiled scalar handler: it executes the instruction at
// its PC against t, fills out, and advances PC/Seq — the whole of Step for
// that instruction.
type stepFn func(t *Thread, out *Outcome)

// buildOps compiles prog into the scalar per-PC handler table.
func buildOps(prog *isa.Program) []stepFn {
	ops := make([]stepFn, len(prog.Code))
	for pc := range prog.Code {
		ops[pc] = scalarFn(semOf(prog.Code[pc]), uint64(pc))
	}
	return ops
}

// scalarFn specialises one sem into a scalar handler. Every closure's
// captures are per-PC constants, so its internal branches are perfectly
// predictable; the byte-for-byte contract with stepSwitch (Outcome fields,
// corruption-point order, Seq/PC advance) is gated by the differential
// tests.
func scalarFn(s sem, pc uint64) stepFn {
	ins := s.ins
	next := pc + 1
	switch s.shape {
	case shNop:
		return func(t *Thread, out *Outcome) {
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: next}
			t.PC = next
			t.Seq++
		}

	case shHalt:
		return func(t *Thread, out *Outcome) {
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: next, Halted: true}
			t.Halted = true
			t.Seq++
		}

	case shALU:
		fn, ra, rb, rd := s.fn, ins.Ra, ins.Rb, ins.Rd
		aFP, bFP, bImm, noA, noB, destFP := s.aFP, s.bFP, s.bImm, s.noA, s.noB, s.destFP
		imm := uint64(ins.Imm)
		return func(t *Thread, out *Outcome) {
			var a, b uint64
			if !noA {
				if aFP {
					a = t.readFP(ra)
				} else {
					a = t.readInt(ra)
				}
			}
			if bImm {
				b = imm
			} else if !noB {
				if bFP {
					b = t.readFP(rb)
				} else {
					b = t.readInt(rb)
				}
			}
			v := t.corrupt(PointResult, pc, fn(a, b))
			if destFP {
				t.writeFP(rd, v)
			} else {
				t.writeInt(rd, v)
			}
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: next, DestVal: v}
			t.PC = next
			t.Seq++
		}

	case shLoad:
		ra, rd := ins.Ra, ins.Rd
		imm := uint64(ins.Imm)
		byteOp, destFP, size := s.byteOp, s.destFP, s.size
		return func(t *Thread, out *Outcome) {
			addr := t.readInt(ra) + imm
			var v uint64
			if byteOp {
				v = uint64(t.Mem.Byte(addr))
			} else {
				v = t.Mem.Read64(addr)
			}
			v = t.corrupt(PointLoadValue, pc, v)
			v = t.corrupt(PointResult, pc, v)
			if destFP {
				t.writeFP(rd, v)
			} else {
				t.writeInt(rd, v)
			}
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: next, Addr: addr, Size: size, Value: v, DestVal: v}
			t.PC = next
			t.Seq++
		}

	case shLoadIO:
		ra, rd := ins.Ra, ins.Rd
		imm := uint64(ins.Imm)
		size := s.size
		return func(t *Thread, out *Outcome) {
			addr := t.readInt(ra) + imm
			var v uint64
			if t.IORead != nil {
				v = t.IORead(addr)
			}
			v = t.corrupt(PointLoadValue, pc, v)
			v = t.corrupt(PointResult, pc, v)
			t.writeInt(rd, v)
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: next, Addr: addr, Size: size, Value: v, DestVal: v}
			t.PC = next
			t.Seq++
		}

	case shStore, shStoreIO:
		ra, rd := ins.Ra, ins.Rd
		imm := uint64(ins.Imm)
		srcFP, byteOp, size := s.srcFP, s.byteOp, s.size
		cached := s.shape == shStore
		return func(t *Thread, out *Outcome) {
			addr := t.corrupt(PointStoreAddr, pc, t.readInt(ra)+imm)
			var v uint64
			switch {
			case srcFP:
				v = t.readFP(rd)
			case byteOp:
				v = t.readInt(rd) & 0xff
			default:
				v = t.readInt(rd)
			}
			v = t.corrupt(PointStoreData, pc, v)
			if cached {
				t.Mem.Store(addr, v, size, t.Seq)
			}
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: next, Addr: addr, Size: size, Value: v}
			t.PC = next
			t.Seq++
		}

	case shBR:
		target := ins.BranchTarget(pc)
		return func(t *Thread, out *Outcome) {
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: target, Taken: true}
			t.PC = target
			t.Seq++
		}

	case shCondBr:
		cond, ra := s.cond, ins.Ra
		target := ins.BranchTarget(pc)
		return func(t *Thread, out *Outcome) {
			npc := next
			taken := cond(t.readInt(ra))
			if taken {
				npc = target
			}
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: npc, Taken: taken}
			t.PC = npc
			t.Seq++
		}

	case shJSR:
		rd := ins.Rd
		target := ins.BranchTarget(pc)
		return func(t *Thread, out *Outcome) {
			link := t.corrupt(PointResult, pc, next)
			t.writeInt(rd, link)
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: target, Taken: true, DestVal: link}
			t.PC = target
			t.Seq++
		}

	case shJMP:
		ra, rd := ins.Ra, ins.Rd
		return func(t *Thread, out *Outcome) {
			// Read the jump target before the link writeback: rd may alias
			// ra, and the switch oracle computes NextPC from the pre-link
			// register value.
			npc := t.readInt(ra)
			link := t.corrupt(PointResult, pc, next)
			t.writeInt(rd, link)
			*out = Outcome{Seq: t.Seq, PC: pc, Instr: ins, NextPC: npc, Taken: true, DestVal: link}
			t.PC = npc
			t.Seq++
		}
	}
	panic(fmt.Sprintf("vm: no handler shape for opcode %v", s.ins.Op))
}
