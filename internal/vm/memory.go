// Package vm provides the functional execution substrate: sparse
// byte-addressable memory, per-hardware-thread architectural state, and the
// instruction semantics of the ISA. The timing model (internal/pipeline)
// drives a Thread as its oracle: instructions are executed functionally in
// program order as they are fetched, yielding branch outcomes, effective
// addresses and values that the timing model then charges cycles for.
//
// Redundant threads of the same logical program share one committed Memory
// but each has a private store overlay (the architectural image of the
// sphere of replication's store queue): its own stores are visible to its
// own loads but do not reach committed memory until the simulated machine
// releases them (after output comparison in RMT modes).
package vm

import mathbits "math/bits" // plain `bits` is taken by the float64 view helper

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse, byte-addressable, little-endian memory image. The zero
// value is ready to use. All unwritten bytes read as zero.
type Memory struct {
	pages map[uint64]*page

	// Direct-mapped page cache (indexed by low page-number bits): kernel
	// working sets span a few pages, so most accesses skip the map probe.
	// Pure cache over pages — nothing to snapshot.
	cachePN [16]uint64 //rmtsnap:skip — derived cache
	cacheP  [16]*page  //rmtsnap:skip — derived cache
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageShift
	slot := pn & 15
	if p := m.cacheP[slot]; p != nil && m.cachePN[slot] == pn {
		return p
	}
	p := m.pages[pn]
	if p == nil {
		if !create {
			return nil
		}
		p = new(page)
		if m.pages == nil {
			m.pages = make(map[uint64]*page)
		}
		m.pages[pn] = p
	}
	m.cachePN[slot], m.cacheP[slot] = pn, p
	return p
}

// Byte returns the byte at addr.
func (m *Memory) Byte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte sets the byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.pageFor(addr, true)[addr&pageMask] = v
}

// Read64 returns the little-endian 64-bit value at addr (no alignment
// requirement).
func (m *Memory) Read64(addr uint64) uint64 {
	// Fast path: within one page and aligned.
	if addr&7 == 0 && addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Byte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit value at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&7 == 0 && addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, true)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		p[o+4] = byte(v >> 32)
		p[o+5] = byte(v >> 40)
		p[o+6] = byte(v >> 48)
		p[o+7] = byte(v >> 56)
		return
	}
	for i := 0; i < 8; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// SetBytes copies b into memory starting at addr.
func (m *Memory) SetBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.SetByte(addr+uint64(i), v)
	}
}

// Pages returns the number of resident pages (for footprint accounting).
func (m *Memory) Pages() int { return len(m.pages) }

// overlayWord holds the pending (not yet released) store bytes of one
// aligned 8-byte span. mask bit i marks byte i pending; val keeps that
// byte at bits [8i, 8i+8); seq[i] identifies the youngest store that wrote
// it, so release can tell whether the byte is still live in the overlay.
//
// Word granularity is a hot-path decision: the dominant overlay traffic is
// aligned 8-byte STQ/LDQ from the functional engines, which costs one map
// operation per access here versus eight under a per-byte map, and batch
// campaigns sweep dozens of lane overlays per round, so the map footprint
// they drag through the cache shrinks by the same factor.
type overlayWord struct {
	val  uint64
	mask uint32
	seq  [8]uint64
}

// maskSpread expands pending-byte mask bit i to byte i = 0xff, for merging
// overlay bytes over the committed word without a per-byte loop.
var maskSpread = func() (t [256]uint64) { //rmtlint:allow sharedstate — immutable lookup table, built once before any run
	for m := 1; m < 256; m++ {
		for i := 0; i < 8; i++ {
			if m&(1<<i) != 0 {
				t[m] |= 0xff << (8 * i)
			}
		}
	}
	return
}()

// Overlay is a thread-private view of pending stores layered over a shared
// committed Memory. It models the architectural contents of the thread's
// store queue: loads from the owning thread see overlay bytes first.
type Overlay struct {
	mem   *Memory //rmtsnap:skip — wiring to shared memory, which snapshots itself
	words map[uint64]*overlayWord
	n     int // pending byte count (sum of the word masks' popcounts)

	// filter is a 64-bit presence summary over hashed word addresses: a
	// clear bit proves the word was never stored, letting loads from
	// never-stored addresses skip the map probe entirely (the common case —
	// kernels read far more addresses than they write). Conservative: bits
	// are set on store and only cleared wholesale on Reset/RestoreFrom, so
	// a released byte may leave a stale bit, which costs one redundant map
	// probe and nothing else.
	filter uint64 //rmtsnap:skip — derived presence summary, rebuilt from words on restore

	// Direct-mapped word cache (indexed by low word-address bits): kernels
	// bang on a handful of STQ/LDQ targets, so most accesses hit here and
	// skip the map probe. Pure cache over words — nothing to snapshot.
	cacheWA [8]uint64       //rmtsnap:skip — derived cache
	cacheW  [8]*overlayWord //rmtsnap:skip — derived cache
}

func filterBit(wa uint64) uint64 { return 1 << ((wa * 0x9E3779B97F4A7C15) >> 58) }

// NewOverlay returns an empty overlay over mem.
func NewOverlay(mem *Memory) *Overlay {
	return &Overlay{mem: mem, words: make(map[uint64]*overlayWord)}
}

// Reset repoints the overlay at mem and clears its pending bytes in place.
// Released and cleared words stay in the map as empty entries so a recycled
// overlay re-stores to the same addresses without allocating (Batch pool
// reuse); the footprint is bounded by the distinct words ever stored.
func (o *Overlay) Reset(mem *Memory) {
	o.mem = mem
	for _, w := range o.words {
		w.mask = 0
	}
	o.n = 0
	o.filter = 0
}

func (o *Overlay) wordFor(wa uint64) *overlayWord {
	slot := wa & 7
	if w := o.cacheW[slot]; w != nil && o.cacheWA[slot] == wa {
		return w
	}
	w := o.words[wa]
	if w == nil {
		w = new(overlayWord)
		o.words[wa] = w
	}
	o.cacheWA[slot], o.cacheW[slot] = wa, w
	return w
}

// cachedWord is the read-side probe: cache hit, else map lookup (filling
// the cache on hit), else nil.
func (o *Overlay) cachedWord(wa uint64) *overlayWord {
	slot := wa & 7
	if w := o.cacheW[slot]; w != nil && o.cacheWA[slot] == wa {
		return w
	}
	w := o.words[wa]
	if w != nil {
		o.cacheWA[slot], o.cacheW[slot] = wa, w
	}
	return w
}

// Byte returns the thread-visible byte at addr.
func (o *Overlay) Byte(addr uint64) byte {
	if o.filter&filterBit(addr>>3) != 0 {
		if w := o.words[addr>>3]; w != nil && w.mask&(1<<(addr&7)) != 0 {
			return byte(w.val >> ((addr & 7) * 8))
		}
	}
	return o.mem.Byte(addr)
}

// Read64 returns the thread-visible 64-bit value at addr.
func (o *Overlay) Read64(addr uint64) uint64 {
	if o.filter&filterBit(addr>>3) == 0 && addr&7 == 0 {
		return o.mem.Read64(addr)
	}
	if addr&7 == 0 {
		w := o.cachedWord(addr >> 3)
		if w == nil || w.mask == 0 {
			return o.mem.Read64(addr)
		}
		if w.mask == 0xff {
			return w.val
		}
		m := maskSpread[w.mask]
		return o.mem.Read64(addr)&^m | w.val&m
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(o.Byte(addr+uint64(i))) << (8 * i)
	}
	return v
}

func (o *Overlay) storeByte(a uint64, v byte, seq uint64) {
	o.filter |= filterBit(a >> 3)
	w := o.wordFor(a >> 3)
	bit := uint32(1) << (a & 7)
	if w.mask&bit == 0 {
		w.mask |= bit
		o.n++
	}
	sh := (a & 7) * 8
	w.val = w.val&^(uint64(0xff)<<sh) | uint64(v)<<sh
	w.seq[a&7] = seq
}

// Store records a pending store of the low `size` bytes of val at addr,
// tagged with the dynamic sequence number seq (strictly increasing per
// thread).
func (o *Overlay) Store(addr uint64, val uint64, size int, seq uint64) {
	if size == 8 && addr&7 == 0 {
		o.filter |= filterBit(addr >> 3)
		w := o.wordFor(addr >> 3)
		o.n += 8 - mathbits.OnesCount8(uint8(w.mask))
		w.val = val
		w.mask = 0xff
		for i := range w.seq {
			w.seq[i] = seq
		}
		return
	}
	for i := 0; i < size; i++ {
		o.storeByte(addr+uint64(i), byte(val>>(8*i)), seq)
	}
}


// Release commits the store identified by (addr, val, size, seq) to the
// shared memory and drops overlay bytes that still belong to it. If commit
// is false the bytes are dropped without being written (used for the
// trailing copy, whose stores never leave the sphere).
func (o *Overlay) Release(addr uint64, val uint64, size int, seq uint64, commit bool) {
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if commit {
			o.mem.SetByte(a, byte(val>>(8*i)))
		}
		if w := o.words[a>>3]; w != nil {
			bit := uint32(1) << (a & 7)
			if w.mask&bit != 0 && w.seq[a&7] == seq {
				w.mask &^= bit
				o.n--
			}
		}
	}
}

// PendingBytes returns the number of bytes currently held in the overlay.
func (o *Overlay) PendingBytes() int { return o.n }

// Backing returns the committed memory under the overlay.
func (o *Overlay) Backing() *Memory { return o.mem }
