// Package vm provides the functional execution substrate: sparse
// byte-addressable memory, per-hardware-thread architectural state, and the
// instruction semantics of the ISA. The timing model (internal/pipeline)
// drives a Thread as its oracle: instructions are executed functionally in
// program order as they are fetched, yielding branch outcomes, effective
// addresses and values that the timing model then charges cycles for.
//
// Redundant threads of the same logical program share one committed Memory
// but each has a private store overlay (the architectural image of the
// sphere of replication's store queue): its own stores are visible to its
// own loads but do not reach committed memory until the simulated machine
// releases them (after output comparison in RMT modes).
package vm

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse, byte-addressable, little-endian memory image. The zero
// value is ready to use. All unwritten bytes read as zero.
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// Byte returns the byte at addr.
func (m *Memory) Byte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte sets the byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.pageFor(addr, true)[addr&pageMask] = v
}

// Read64 returns the little-endian 64-bit value at addr (no alignment
// requirement).
func (m *Memory) Read64(addr uint64) uint64 {
	// Fast path: within one page and aligned.
	if addr&7 == 0 && addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Byte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit value at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&7 == 0 && addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, true)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		p[o+4] = byte(v >> 32)
		p[o+5] = byte(v >> 40)
		p[o+6] = byte(v >> 48)
		p[o+7] = byte(v >> 56)
		return
	}
	for i := 0; i < 8; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// SetBytes copies b into memory starting at addr.
func (m *Memory) SetBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.SetByte(addr+uint64(i), v)
	}
}

// Pages returns the number of resident pages (for footprint accounting).
func (m *Memory) Pages() int { return len(m.pages) }

// overlayByte is one pending (not yet released) store byte. seq identifies
// the youngest store that wrote it, so release can tell whether the byte is
// still live in the overlay.
type overlayByte struct {
	val byte
	seq uint64
}

// Overlay is a thread-private view of pending stores layered over a shared
// committed Memory. It models the architectural contents of the thread's
// store queue: loads from the owning thread see overlay bytes first.
type Overlay struct {
	mem     *Memory //rmtsnap:skip — wiring to shared memory, which snapshots itself
	pending map[uint64]overlayByte
}

// NewOverlay returns an empty overlay over mem.
func NewOverlay(mem *Memory) *Overlay {
	return &Overlay{mem: mem, pending: make(map[uint64]overlayByte)}
}

// Byte returns the thread-visible byte at addr.
func (o *Overlay) Byte(addr uint64) byte {
	if b, ok := o.pending[addr]; ok {
		return b.val
	}
	return o.mem.Byte(addr)
}

// Read64 returns the thread-visible 64-bit value at addr.
func (o *Overlay) Read64(addr uint64) uint64 {
	if len(o.pending) == 0 {
		return o.mem.Read64(addr)
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(o.Byte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Store records a pending store of the low `size` bytes of val at addr,
// tagged with the dynamic sequence number seq (strictly increasing per
// thread).
func (o *Overlay) Store(addr uint64, val uint64, size int, seq uint64) {
	for i := 0; i < size; i++ {
		o.pending[addr+uint64(i)] = overlayByte{val: byte(val >> (8 * i)), seq: seq}
	}
}

// Release commits the store identified by (addr, val, size, seq) to the
// shared memory and drops overlay bytes that still belong to it. If commit
// is false the bytes are dropped without being written (used for the
// trailing copy, whose stores never leave the sphere).
func (o *Overlay) Release(addr uint64, val uint64, size int, seq uint64, commit bool) {
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if commit {
			o.mem.SetByte(a, byte(val>>(8*i)))
		}
		if b, ok := o.pending[a]; ok && b.seq == seq {
			delete(o.pending, a)
		}
	}
}

// PendingBytes returns the number of bytes currently held in the overlay.
func (o *Overlay) PendingBytes() int { return len(o.pending) }

// Backing returns the committed memory under the overlay.
func (o *Overlay) Backing() *Memory { return o.mem }
