package vm

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// CorruptPoint identifies where in an instruction's dataflow a fault
// injector may flip bits.
type CorruptPoint uint8

// Corruption points.
const (
	// PointResult is the value written to the destination register.
	PointResult CorruptPoint = iota
	// PointStoreData is the data value of a store.
	PointStoreData
	// PointStoreAddr is the effective address of a store.
	PointStoreAddr
	// PointLoadValue is the value returned by a load.
	PointLoadValue
)

// CorruptFunc lets a fault model perturb a value as an instruction executes.
// seq is the thread-local dynamic instruction number; the returned value
// replaces v. A nil CorruptFunc means fault-free execution.
type CorruptFunc func(point CorruptPoint, seq uint64, pc uint64, v uint64) uint64

// Outcome describes the architectural effect of one dynamically executed
// instruction; it is everything the timing model needs to charge cycles and
// everything the RMT machinery needs to replicate inputs and compare
// outputs.
type Outcome struct {
	Seq    uint64 // thread-local dynamic instruction number, from 0
	PC     uint64
	Instr  isa.Instr
	NextPC uint64

	// Taken is meaningful for conditional branches.
	Taken bool

	// Memory effects. For loads, Value is the loaded value; for stores,
	// Value is the store data. Addr/Size are zero for non-memory ops.
	Addr  uint64
	Size  int
	Value uint64

	// DestVal is the value written to the destination register (loads,
	// ALU, FP, JSR/JMP link). Valid only if Instr.HasDest().
	DestVal uint64

	Halted bool

	// Trap marks a tolerant halt: the PC left the code image (a corrupted
	// jump target under fault injection) and the thread halted in place
	// instead of panicking. Scalar and batched execution report it
	// identically: the overrunning step and every no-op step after it
	// carry Trap, and Seq does not advance.
	Trap bool
}

// IsStore reports whether the outcome is a store.
func (o *Outcome) IsStore() bool { return o.Instr.IsStore() }

// IsLoad reports whether the outcome is a load.
func (o *Outcome) IsLoad() bool { return o.Instr.IsLoad() }

// Thread is the architectural state of one hardware thread context: PC,
// integer and FP register files, and a store overlay onto the logical
// program's committed memory.
type Thread struct {
	// ID is the hardware thread context number (for diagnostics).
	ID int //rmtsnap:skip — identity fixed at construction
	// Prog is the program being executed.
	Prog *isa.Program //rmtsnap:skip — static code image, not machine state

	PC     uint64
	IntReg [isa.NumIntRegs]uint64
	FPReg  [isa.NumFPRegs]uint64

	// Mem is this thread's view: committed memory + private overlay.
	Mem *Overlay

	// Corrupt, when non-nil, is invoked at each corruption point.
	Corrupt CorruptFunc //rmtsnap:skip — injection hook, outside simulated state

	// Tolerant makes an out-of-range PC halt the thread instead of
	// panicking. Fault-injection runs set it: a corrupted jump target can
	// legitimately leave the code image, and the machine must survive to
	// flag the divergence rather than crash the simulator.
	Tolerant bool

	// IORead services uncached (LDIO) loads. Device reads are
	// side-effecting, so redundant configurations wire the leading copy to
	// the device and the trailing copy to a replication bridge. nil reads
	// as zero.
	IORead func(addr uint64) uint64 //rmtsnap:skip — device hook, outside simulated state

	// Seq counts dynamically executed instructions.
	Seq uint64

	Halted bool

	// Trapped records that Halted was set by a tolerant out-of-image PC
	// rather than a HALT instruction (see Outcome.Trap).
	Trapped bool

	// ops is the per-PC predecoded handler table (threaded dispatch); nil
	// selects the original decode switch.
	ops []stepFn //rmtsnap:skip — compiled view of Prog, rebuilt at construction

	// stepOut backs Step's by-value return: passing a stack variable's
	// address into the handler closures would make escape analysis
	// heap-allocate it per step.
	stepOut Outcome //rmtsnap:skip — scratch buffer, dead between steps
}

// NewThread creates a thread at the program entry with a fresh overlay over
// mem. The program's initial data image must already have been loaded into
// mem (see Load). The thread steps with the default threaded dispatch; use
// NewThreadWith to select the switch oracle.
func NewThread(id int, prog *isa.Program, mem *Memory) *Thread {
	return NewThreadWith(id, prog, mem, Config{})
}

// NewThreadWith is NewThread with an explicit functional-engine config.
func NewThreadWith(id int, prog *isa.Program, mem *Memory, cfg Config) *Thread {
	t := &Thread{
		ID:   id,
		Prog: prog,
		PC:   prog.Entry,
		Mem:  NewOverlay(mem),
	}
	if cfg.Dispatch == DispatchThreaded {
		t.ops = buildOps(prog)
	}
	return t
}

// Load initialises mem with the program's data image.
func Load(prog *isa.Program, mem *Memory) {
	for addr, bytes := range prog.Data {
		mem.SetBytes(addr, bytes)
	}
}

func (t *Thread) readInt(r isa.Reg) uint64 {
	if r == isa.ZeroReg {
		return 0
	}
	return t.IntReg[r]
}

func (t *Thread) writeInt(r isa.Reg, v uint64) {
	if r != isa.ZeroReg {
		t.IntReg[r] = v
	}
}

func (t *Thread) readFP(r isa.Reg) uint64 {
	if r == isa.ZeroReg {
		return 0
	}
	return t.FPReg[r]
}

func (t *Thread) writeFP(r isa.Reg, v uint64) {
	if r != isa.ZeroReg {
		t.FPReg[r] = v
	}
}

func (t *Thread) corrupt(p CorruptPoint, pc uint64, v uint64) uint64 {
	if t.Corrupt == nil {
		return v
	}
	return t.Corrupt(p, t.Seq, pc, v)
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func bits(f float64) uint64   { return math.Float64bits(f) }
func boolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Step functionally executes the instruction at the current PC and advances
// architectural state. It panics if the PC is outside the program (programs
// are validated at build time, so this indicates a simulator bug) and
// returns a no-op outcome if the thread has halted. If Tolerant is set, an
// out-of-image PC halts the thread with Outcome.Trap instead of panicking.
func (t *Thread) Step() Outcome {
	t.StepInto(&t.stepOut)
	return t.stepOut
}

// StepInto is Step writing the outcome into out instead of returning it by
// value — the allocation- and copy-free form the pipeline and the
// characterisation replay use.
func (t *Thread) StepInto(out *Outcome) {
	if t.Halted {
		*out = Outcome{Seq: t.Seq, PC: t.PC, Instr: isa.Instr{Op: isa.HALT}, NextPC: t.PC, Halted: true, Trap: t.Trapped}
		return
	}
	if t.PC >= uint64(len(t.Prog.Code)) {
		if t.Tolerant {
			t.Halted = true
			t.Trapped = true
			*out = Outcome{Seq: t.Seq, PC: t.PC, Instr: isa.Instr{Op: isa.HALT}, NextPC: t.PC, Halted: true, Trap: true}
			return
		}
		panic(fmt.Sprintf("vm: thread %d PC %d outside %q code (len %d)",
			t.ID, t.PC, t.Prog.Name, len(t.Prog.Code)))
	}
	if t.ops != nil {
		t.ops[t.PC](t, out)
		return
	}
	t.stepSwitch(out)
}

// stepSwitch is the original decode-per-step interpreter, retained
// verbatim as the differential oracle for the threaded handler tables
// (select it with Config{Dispatch: DispatchSwitch}).
func (t *Thread) stepSwitch(out *Outcome) {
	ins := t.Prog.Code[t.PC]
	*out = Outcome{Seq: t.Seq, PC: t.PC, Instr: ins, NextPC: t.PC + 1}

	switch ins.Op {
	case isa.NOP:

	// Integer ALU.
	case isa.ADD:
		out.DestVal = t.readInt(ins.Ra) + t.readInt(ins.Rb)
	case isa.SUB:
		out.DestVal = t.readInt(ins.Ra) - t.readInt(ins.Rb)
	case isa.MUL:
		out.DestVal = t.readInt(ins.Ra) * t.readInt(ins.Rb)
	case isa.DIV:
		d := int64(t.readInt(ins.Rb))
		if d == 0 {
			out.DestVal = 0
		} else {
			out.DestVal = uint64(int64(t.readInt(ins.Ra)) / d)
		}
	case isa.MOD:
		d := int64(t.readInt(ins.Rb))
		if d == 0 {
			out.DestVal = 0
		} else {
			out.DestVal = uint64(int64(t.readInt(ins.Ra)) % d)
		}
	case isa.AND:
		out.DestVal = t.readInt(ins.Ra) & t.readInt(ins.Rb)
	case isa.OR:
		out.DestVal = t.readInt(ins.Ra) | t.readInt(ins.Rb)
	case isa.XOR:
		out.DestVal = t.readInt(ins.Ra) ^ t.readInt(ins.Rb)
	case isa.SLL:
		out.DestVal = t.readInt(ins.Ra) << (t.readInt(ins.Rb) & 63)
	case isa.SRL:
		out.DestVal = t.readInt(ins.Ra) >> (t.readInt(ins.Rb) & 63)
	case isa.SRA:
		out.DestVal = uint64(int64(t.readInt(ins.Ra)) >> (t.readInt(ins.Rb) & 63))
	case isa.CMPEQ:
		out.DestVal = boolBits(t.readInt(ins.Ra) == t.readInt(ins.Rb))
	case isa.CMPLT:
		out.DestVal = boolBits(int64(t.readInt(ins.Ra)) < int64(t.readInt(ins.Rb)))
	case isa.CMPLE:
		out.DestVal = boolBits(int64(t.readInt(ins.Ra)) <= int64(t.readInt(ins.Rb)))
	case isa.CMPULT:
		out.DestVal = boolBits(t.readInt(ins.Ra) < t.readInt(ins.Rb))

	// Integer ALU immediate.
	case isa.LDI:
		out.DestVal = uint64(ins.Imm)
	case isa.ADDI:
		out.DestVal = t.readInt(ins.Ra) + uint64(ins.Imm)
	case isa.MULI:
		out.DestVal = t.readInt(ins.Ra) * uint64(ins.Imm)
	case isa.ANDI:
		out.DestVal = t.readInt(ins.Ra) & uint64(ins.Imm)
	case isa.ORI:
		out.DestVal = t.readInt(ins.Ra) | uint64(ins.Imm)
	case isa.XORI:
		out.DestVal = t.readInt(ins.Ra) ^ uint64(ins.Imm)
	case isa.SLLI:
		out.DestVal = t.readInt(ins.Ra) << (uint64(ins.Imm) & 63)
	case isa.SRLI:
		out.DestVal = t.readInt(ins.Ra) >> (uint64(ins.Imm) & 63)
	case isa.SRAI:
		out.DestVal = uint64(int64(t.readInt(ins.Ra)) >> (uint64(ins.Imm) & 63))
	case isa.CMPEQI:
		out.DestVal = boolBits(t.readInt(ins.Ra) == uint64(ins.Imm))
	case isa.CMPLTI:
		out.DestVal = boolBits(int64(t.readInt(ins.Ra)) < ins.Imm)

	// Uncached I/O. The device read is side-effecting and happens here
	// (in program order, exactly once per dynamic instance); the device
	// WRITE is deferred to the machine (performed once, after output
	// comparison), so STIO only computes its address and data.
	case isa.LDIO:
		out.Addr = t.readInt(ins.Ra) + uint64(ins.Imm)
		out.Size = 8
		var v uint64
		if t.IORead != nil {
			v = t.IORead(out.Addr)
		}
		out.Value = t.corrupt(PointLoadValue, t.PC, v)
		out.DestVal = out.Value
	case isa.STIO:
		out.Addr = t.corrupt(PointStoreAddr, t.PC, t.readInt(ins.Ra)+uint64(ins.Imm))
		out.Size = 8
		out.Value = t.corrupt(PointStoreData, t.PC, t.readInt(ins.Rd))

	// Memory.
	case isa.LDQ, isa.FLDQ:
		out.Addr = t.readInt(ins.Ra) + uint64(ins.Imm)
		out.Size = 8
		out.Value = t.corrupt(PointLoadValue, t.PC, t.Mem.Read64(out.Addr))
		out.DestVal = out.Value
	case isa.LDB:
		out.Addr = t.readInt(ins.Ra) + uint64(ins.Imm)
		out.Size = 1
		out.Value = t.corrupt(PointLoadValue, t.PC, uint64(t.Mem.Byte(out.Addr)))
		out.DestVal = out.Value
	case isa.STQ:
		out.Addr = t.corrupt(PointStoreAddr, t.PC, t.readInt(ins.Ra)+uint64(ins.Imm))
		out.Size = 8
		out.Value = t.corrupt(PointStoreData, t.PC, t.readInt(ins.Rd))
	case isa.FSTQ:
		out.Addr = t.corrupt(PointStoreAddr, t.PC, t.readInt(ins.Ra)+uint64(ins.Imm))
		out.Size = 8
		out.Value = t.corrupt(PointStoreData, t.PC, t.readFP(ins.Rd))
	case isa.STB:
		out.Addr = t.corrupt(PointStoreAddr, t.PC, t.readInt(ins.Ra)+uint64(ins.Imm))
		out.Size = 1
		out.Value = t.corrupt(PointStoreData, t.PC, t.readInt(ins.Rd)&0xff)

	// Floating point.
	case isa.FADD:
		out.DestVal = bits(f64(t.readFP(ins.Ra)) + f64(t.readFP(ins.Rb)))
	case isa.FSUB:
		out.DestVal = bits(f64(t.readFP(ins.Ra)) - f64(t.readFP(ins.Rb)))
	case isa.FMUL:
		out.DestVal = bits(f64(t.readFP(ins.Ra)) * f64(t.readFP(ins.Rb)))
	case isa.FDIV:
		out.DestVal = bits(f64(t.readFP(ins.Ra)) / f64(t.readFP(ins.Rb)))
	case isa.FSQRT:
		out.DestVal = bits(math.Sqrt(f64(t.readFP(ins.Ra))))
	case isa.FNEG:
		out.DestVal = bits(-f64(t.readFP(ins.Ra)))
	case isa.FCMPEQ:
		out.DestVal = boolBits(f64(t.readFP(ins.Ra)) == f64(t.readFP(ins.Rb)))
	case isa.FCMPLT:
		out.DestVal = boolBits(f64(t.readFP(ins.Ra)) < f64(t.readFP(ins.Rb)))
	case isa.FCMPLE:
		out.DestVal = boolBits(f64(t.readFP(ins.Ra)) <= f64(t.readFP(ins.Rb)))
	case isa.CVTQF:
		out.DestVal = bits(float64(int64(t.readInt(ins.Ra))))
	case isa.CVTFQ:
		f := f64(t.readFP(ins.Ra))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			out.DestVal = 0
		} else {
			out.DestVal = uint64(int64(f))
		}
	case isa.ITOF:
		out.DestVal = t.readInt(ins.Ra)
	case isa.FTOI:
		out.DestVal = t.readFP(ins.Ra)

	// Control.
	case isa.BR:
		out.Taken = true
		out.NextPC = ins.BranchTarget(t.PC)
	case isa.BEQ:
		out.Taken = t.readInt(ins.Ra) == 0
	case isa.BNE:
		out.Taken = t.readInt(ins.Ra) != 0
	case isa.BLT:
		out.Taken = int64(t.readInt(ins.Ra)) < 0
	case isa.BGE:
		out.Taken = int64(t.readInt(ins.Ra)) >= 0
	case isa.BGT:
		out.Taken = int64(t.readInt(ins.Ra)) > 0
	case isa.BLE:
		out.Taken = int64(t.readInt(ins.Ra)) <= 0
	case isa.JSR:
		out.Taken = true
		out.DestVal = t.PC + 1
		out.NextPC = ins.BranchTarget(t.PC)
	case isa.JMP:
		out.Taken = true
		out.DestVal = t.PC + 1
		out.NextPC = t.readInt(ins.Ra)

	case isa.MB:

	case isa.HALT:
		out.Halted = true

	default:
		panic(fmt.Sprintf("vm: unimplemented opcode %v at pc=%d", ins.Op, t.PC))
	}

	if ins.IsCondBranch() && out.Taken {
		out.NextPC = ins.BranchTarget(t.PC)
	}

	// Apply the result corruption point and write back.
	if ins.HasDest() && !ins.IsStore() {
		out.DestVal = t.corrupt(PointResult, t.PC, out.DestVal)
		if ins.DestIsFP() {
			t.writeFP(ins.Rd, out.DestVal)
		} else {
			t.writeInt(ins.Rd, out.DestVal)
		}
		if ins.IsLoad() {
			out.Value = out.DestVal
		}
	}

	// Stores become visible to this thread's own later loads immediately
	// (architecturally: store-queue forwarding). Uncached stores target
	// the device, not memory; the machine performs them at drain.
	if ins.IsStore() && !ins.IsUncached() {
		t.Mem.Store(out.Addr, out.Value, out.Size, out.Seq)
	}

	if out.Halted {
		t.Halted = true
	} else {
		t.PC = out.NextPC
	}
	t.Seq++
}

// Interrupt redirects the thread to an interrupt handler, hardware-style:
// the resume PC is saved in R30 (the interrupt link register) and execution
// continues at handler. Handlers return with JMP through R30. Nested
// interrupts are the caller's responsibility to avoid (the machine layers
// schedule them far apart and never inside a handler).
func (t *Thread) Interrupt(handler uint64) {
	t.IntReg[30] = t.PC
	t.PC = handler
}

// Run executes up to n instructions or until HALT, returning the number
// executed. It is a convenience for tests and for functional (timing-free)
// validation of programs.
func (t *Thread) Run(n uint64) uint64 {
	var i uint64
	for ; i < n && !t.Halted; i++ {
		t.Step()
	}
	return i
}
