package vm

import (
	"fmt"

	"repro/internal/isa"
)

// Batch advances N independent threads of the same program in lockstep
// rounds with structure-of-arrays state: one slice per register column
// (IntReg[r][lane]), per-lane PC/Seq/halt flags, and one private store
// overlay per lane over a single shared committed memory. The layout keeps
// each register column cache-resident while a round sweeps the lanes, and
// the per-PC handler table is shared by every lane, so campaign replays
// (N trials of one kernel, one injection each), corpus verification, and
// characterisation sweeps amortize predecode across the whole batch.
//
// Lane semantics are exactly Thread semantics — same handler specialiser
// over the same semOf decode, same corruption-point order, same trap and
// halt behaviour — and the vmdiff battery holds a Batch bit-equal to N
// scalar oracle threads after every step.
type Batch struct {
	// Prog is the program every lane executes.
	Prog *isa.Program
	// N is the lane count.
	N int

	PC  []uint64
	Seq []uint64
	// IntReg and FPReg are column-major: IntReg[r][lane]. The ZeroReg
	// column is never written, so lane reads skip the zero-register check.
	IntReg [isa.NumIntRegs][]uint64
	FPReg  [isa.NumFPRegs][]uint64

	Halted  []bool
	Trapped []bool

	// Mem holds each lane's private view: the shared committed memory
	// plus the lane's own store overlay.
	Mem []*Overlay

	// Corrupt holds each lane's fault-injection hook (nil = fault-free).
	Corrupt []CorruptFunc

	// Tolerant applies Thread.Tolerant to every lane: an out-of-image PC
	// halts the lane with Trap instead of panicking.
	Tolerant bool

	// IORead services uncached loads for every lane (the lanes execute
	// the same program against the same device model). nil reads as zero.
	IORead func(addr uint64) uint64

	// Observer, when non-nil, receives every executed instruction's
	// outcome (including tolerant traps). The outcome buffer is reused
	// across calls; implementations must copy what they keep.
	Observer func(lane int, out *Outcome)

	ops  []laneFn
	cols []colFn // unobserved fast path: one handler call per PC-group
	// colHalts[pc] marks instructions that can halt a lane (HALT); rounds
	// executing only non-halting in-image instructions skip live-list
	// compaction.
	colHalts []bool

	regBack []uint64 // one backing array for all register columns
	out     Outcome  // scratch outcome, reused every step

	// liveList holds the lanes not yet halted, ascending. Step maintains
	// it (Halted is engine-written state; campaigns park lanes by letting
	// them run to HALT or trap).
	liveList []int32

	// PC-grouping scratch for diverged unobserved rounds: live lanes are
	// bucketed by PC (headByPC chains through nextLane), and each bucket
	// executes through one column-handler call. All preallocated; the hot
	// loop does not grow them.
	headByPC []int32
	nextLane []int32
	touched  []uint64
	groupBuf []int32

	// valBuf carries computed values from a specialised integer-ALU compute
	// loop to the shared writeback tail (see intALUCol), indexed by position
	// in the lane group.
	valBuf []uint64
}

// NewBatch creates an n-lane batch at the program entry. Every lane
// overlays the same base memory, which must already hold the program's
// data image (see Load).
func NewBatch(prog *isa.Program, mem *Memory, n int) *Batch {
	b := &Batch{
		Prog:    prog,
		N:       n,
		PC:      make([]uint64, n),
		Seq:     make([]uint64, n),
		Halted:  make([]bool, n),
		Trapped: make([]bool, n),
		Mem:     make([]*Overlay, n),
		Corrupt: make([]CorruptFunc, n),
		ops:     buildLaneOps(prog),
		regBack: make([]uint64, (isa.NumIntRegs+isa.NumFPRegs)*n),
	}
	for r := 0; r < isa.NumIntRegs; r++ {
		b.IntReg[r] = b.regBack[r*n : (r+1)*n : (r+1)*n]
	}
	off := isa.NumIntRegs * n
	for r := 0; r < isa.NumFPRegs; r++ {
		b.FPReg[r] = b.regBack[off+r*n : off+(r+1)*n : off+(r+1)*n]
	}
	for lane := 0; lane < n; lane++ {
		b.PC[lane] = prog.Entry
		b.Mem[lane] = NewOverlay(mem)
	}
	b.colHalts = make([]bool, len(prog.Code))
	for pc, ins := range prog.Code {
		b.colHalts[pc] = ins.Op == isa.HALT
	}
	b.liveList = make([]int32, n)
	for i := range b.liveList {
		b.liveList[i] = int32(i)
	}
	b.headByPC = make([]int32, len(prog.Code))
	for i := range b.headByPC {
		b.headByPC[i] = -1
	}
	b.nextLane = make([]int32, n)
	b.touched = make([]uint64, 0, n)
	b.groupBuf = make([]int32, 0, n)
	b.valBuf = make([]uint64, n)
	b.cols = b.buildColOps()
	return b
}

// Reset rewinds every lane to the program entry over mem, clearing
// registers, overlays, flags, and hooks, so a pooled batch can be reused
// across campaigns without reallocating its columns (overlay maps keep
// their buckets).
func (b *Batch) Reset(mem *Memory) {
	for i := range b.regBack {
		b.regBack[i] = 0
	}
	for lane := 0; lane < b.N; lane++ {
		b.PC[lane] = b.Prog.Entry
		b.Seq[lane] = 0
		b.Halted[lane] = false
		b.Trapped[lane] = false
		b.Corrupt[lane] = nil
		b.Mem[lane].Reset(mem)
	}
	b.Observer = nil
	b.liveList = b.liveList[:0]
	for lane := 0; lane < b.N; lane++ {
		b.liveList = append(b.liveList, int32(lane))
	}
}

func (b *Batch) readInt(r isa.Reg, lane int) uint64 { return b.IntReg[r][lane] }
func (b *Batch) readFP(r isa.Reg, lane int) uint64  { return b.FPReg[r][lane] }

func (b *Batch) writeInt(r isa.Reg, lane int, v uint64) {
	if r != isa.ZeroReg {
		b.IntReg[r][lane] = v
	}
}

func (b *Batch) writeFP(r isa.Reg, lane int, v uint64) {
	if r != isa.ZeroReg {
		b.FPReg[r][lane] = v
	}
}

func (b *Batch) corrupt(lane int, p CorruptPoint, pc uint64, v uint64) uint64 {
	if c := b.Corrupt[lane]; c != nil {
		return c(p, b.Seq[lane], pc, v)
	}
	return v
}

// Live returns the number of lanes still running.
func (b *Batch) Live() int {
	live := 0
	for _, h := range b.Halted {
		if !h {
			live++
		}
	}
	return live
}

// Step advances every live lane by one instruction and returns the number
// of lanes still live afterwards. Halted lanes are skipped (a halted
// scalar Thread's Step is a state no-op, so skipping keeps batch and
// scalar state equal). A lane whose PC has left the code image traps
// (Tolerant) or panics, exactly as Thread.StepInto does.
//
// With no Observer attached, the round runs SIMT-style: live lanes are
// bucketed by PC and each bucket executes through one column-handler call,
// so dispatch is paid once per distinct PC instead of once per lane, the
// handler sweeps contiguous register columns, and no Outcome is
// materialised. Campaign replays keep most lanes at the same PC for most
// rounds (one injected bit flip rarely redirects control flow at once), so
// a round is typically one or two handler calls. With an Observer the
// per-lane handlers run in ascending lane order and report every executed
// instruction; both paths are held bit-equal to the scalar oracle by the
// vm and vmdiff differential batteries.
func (b *Batch) Step() int {
	if b.Observer != nil {
		return b.stepObserved()
	}
	live := b.liveList
	if len(live) == 0 {
		return 0
	}
	codeLen := uint64(len(b.Prog.Code))
	pc0 := b.PC[live[0]]
	uniform := true
	for _, ln := range live[1:] {
		if b.PC[ln] != pc0 {
			uniform = false
			break
		}
	}
	if uniform && pc0 < codeLen {
		b.cols[pc0](live)
		if !b.colHalts[pc0] {
			// Nothing halted: an in-image non-HALT instruction cannot park
			// a lane, so the live list is still exact.
			return len(live)
		}
	} else {
		b.stepDiverged(live, codeLen)
	}
	return b.compactLive()
}

// stepDiverged executes one round for lanes parked at different PCs:
// bucket by PC (headByPC chains through nextLane), one column-handler call
// per bucket. Out-of-image lanes trap.
func (b *Batch) stepDiverged(live []int32, codeLen uint64) {
	touched := b.touched[:0]
	for _, lane := range live {
		pc := b.PC[lane]
		if pc >= codeLen {
			b.trapLane(int(lane), &b.out)
			continue
		}
		if b.headByPC[pc] < 0 {
			touched = append(touched, pc)
		}
		b.nextLane[lane] = b.headByPC[pc]
		b.headByPC[pc] = lane
	}
	b.touched = touched
	for _, pc := range touched {
		g := b.groupBuf[:0]
		for i := b.headByPC[pc]; i >= 0; i = b.nextLane[i] {
			g = append(g, i)
		}
		b.headByPC[pc] = -1
		b.cols[pc](g)
	}
}

// compactLive drops freshly halted lanes from the live list and returns
// the live count.
func (b *Batch) compactLive() int {
	live := b.liveList
	k := 0
	for _, ln := range live {
		if !b.Halted[ln] {
			live[k] = ln
			k++
		}
	}
	b.liveList = live[:k]
	return k
}

// stepObserved is the per-lane round: ascending lane order, full Outcome
// per executed instruction, Observer called for each. It rebuilds the live
// list afterwards so observed and unobserved rounds can interleave.
func (b *Batch) stepObserved() int {
	out := &b.out
	codeLen := uint64(len(b.Prog.Code))
	for lane := 0; lane < b.N; lane++ {
		if b.Halted[lane] {
			continue
		}
		pc := b.PC[lane]
		if pc >= codeLen {
			b.trapLane(lane, out)
			continue
		}
		b.ops[pc](b, lane, out)
		b.Observer(lane, out)
	}
	live := b.liveList[:0]
	for lane := 0; lane < b.N; lane++ {
		if !b.Halted[lane] {
			live = append(live, int32(lane))
		}
	}
	b.liveList = live
	return len(live)
}

// Run executes up to maxRounds lockstep rounds (one instruction per live
// lane per round), stopping early when every lane has halted, and returns
// the number of rounds executed.
func (b *Batch) Run(maxRounds uint64) uint64 {
	live := b.Live()
	var rounds uint64
	for ; rounds < maxRounds && live > 0; rounds++ {
		live = b.Step()
	}
	return rounds
}

func (b *Batch) trapLane(lane int, out *Outcome) {
	if !b.Tolerant {
		panic(fmt.Sprintf("vm: batch lane %d PC %d outside %q code (len %d)",
			lane, b.PC[lane], b.Prog.Name, len(b.Prog.Code)))
	}
	b.Halted[lane] = true
	b.Trapped[lane] = true
	*out = Outcome{Seq: b.Seq[lane], PC: b.PC[lane], Instr: isa.Instr{Op: isa.HALT}, NextPC: b.PC[lane], Halted: true, Trap: true}
	if b.Observer != nil {
		b.Observer(lane, out)
	}
}

// laneFn is one compiled batch handler: the lane-indexed form of stepFn.
type laneFn func(b *Batch, lane int, out *Outcome)

// buildLaneOps compiles prog into the batch per-PC handler table. It is
// the same specialisation as scalarFn over the same semOf decode, acting
// on SoA columns instead of a Thread.
func buildLaneOps(prog *isa.Program) []laneFn {
	ops := make([]laneFn, len(prog.Code))
	for pc := range prog.Code {
		ops[pc] = laneFnOf(semOf(prog.Code[pc]), uint64(pc))
	}
	return ops
}

func laneFnOf(s sem, pc uint64) laneFn {
	ins := s.ins
	next := pc + 1
	switch s.shape {
	case shNop:
		return func(b *Batch, lane int, out *Outcome) {
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: next}
			b.PC[lane] = next
			b.Seq[lane]++
		}

	case shHalt:
		return func(b *Batch, lane int, out *Outcome) {
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: next, Halted: true}
			b.Halted[lane] = true
			b.Seq[lane]++
		}

	case shALU:
		fn, ra, rb, rd := s.fn, ins.Ra, ins.Rb, ins.Rd
		aFP, bFP, bImm, noA, noB, destFP := s.aFP, s.bFP, s.bImm, s.noA, s.noB, s.destFP
		imm := uint64(ins.Imm)
		return func(b *Batch, lane int, out *Outcome) {
			var a, bv uint64
			if !noA {
				if aFP {
					a = b.readFP(ra, lane)
				} else {
					a = b.readInt(ra, lane)
				}
			}
			if bImm {
				bv = imm
			} else if !noB {
				if bFP {
					bv = b.readFP(rb, lane)
				} else {
					bv = b.readInt(rb, lane)
				}
			}
			v := b.corrupt(lane, PointResult, pc, fn(a, bv))
			if destFP {
				b.writeFP(rd, lane, v)
			} else {
				b.writeInt(rd, lane, v)
			}
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: next, DestVal: v}
			b.PC[lane] = next
			b.Seq[lane]++
		}

	case shLoad:
		ra, rd := ins.Ra, ins.Rd
		imm := uint64(ins.Imm)
		byteOp, destFP, size := s.byteOp, s.destFP, s.size
		return func(b *Batch, lane int, out *Outcome) {
			addr := b.readInt(ra, lane) + imm
			var v uint64
			if byteOp {
				v = uint64(b.Mem[lane].Byte(addr))
			} else {
				v = b.Mem[lane].Read64(addr)
			}
			v = b.corrupt(lane, PointLoadValue, pc, v)
			v = b.corrupt(lane, PointResult, pc, v)
			if destFP {
				b.writeFP(rd, lane, v)
			} else {
				b.writeInt(rd, lane, v)
			}
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: next, Addr: addr, Size: size, Value: v, DestVal: v}
			b.PC[lane] = next
			b.Seq[lane]++
		}

	case shLoadIO:
		ra, rd := ins.Ra, ins.Rd
		imm := uint64(ins.Imm)
		size := s.size
		return func(b *Batch, lane int, out *Outcome) {
			addr := b.readInt(ra, lane) + imm
			var v uint64
			if b.IORead != nil {
				v = b.IORead(addr)
			}
			v = b.corrupt(lane, PointLoadValue, pc, v)
			v = b.corrupt(lane, PointResult, pc, v)
			b.writeInt(rd, lane, v)
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: next, Addr: addr, Size: size, Value: v, DestVal: v}
			b.PC[lane] = next
			b.Seq[lane]++
		}

	case shStore, shStoreIO:
		ra, rd := ins.Ra, ins.Rd
		imm := uint64(ins.Imm)
		srcFP, byteOp, size := s.srcFP, s.byteOp, s.size
		cached := s.shape == shStore
		return func(b *Batch, lane int, out *Outcome) {
			addr := b.corrupt(lane, PointStoreAddr, pc, b.readInt(ra, lane)+imm)
			var v uint64
			switch {
			case srcFP:
				v = b.readFP(rd, lane)
			case byteOp:
				v = b.readInt(rd, lane) & 0xff
			default:
				v = b.readInt(rd, lane)
			}
			v = b.corrupt(lane, PointStoreData, pc, v)
			if cached {
				b.Mem[lane].Store(addr, v, size, b.Seq[lane])
			}
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: next, Addr: addr, Size: size, Value: v}
			b.PC[lane] = next
			b.Seq[lane]++
		}

	case shBR:
		target := ins.BranchTarget(pc)
		return func(b *Batch, lane int, out *Outcome) {
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: target, Taken: true}
			b.PC[lane] = target
			b.Seq[lane]++
		}

	case shCondBr:
		cond, ra := s.cond, ins.Ra
		target := ins.BranchTarget(pc)
		return func(b *Batch, lane int, out *Outcome) {
			npc := next
			taken := cond(b.readInt(ra, lane))
			if taken {
				npc = target
			}
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: npc, Taken: taken}
			b.PC[lane] = npc
			b.Seq[lane]++
		}

	case shJSR:
		rd := ins.Rd
		target := ins.BranchTarget(pc)
		return func(b *Batch, lane int, out *Outcome) {
			link := b.corrupt(lane, PointResult, pc, next)
			b.writeInt(rd, lane, link)
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: target, Taken: true, DestVal: link}
			b.PC[lane] = target
			b.Seq[lane]++
		}

	case shJMP:
		ra, rd := ins.Ra, ins.Rd
		return func(b *Batch, lane int, out *Outcome) {
			// Jump target read before the link writeback (rd may alias ra).
			npc := b.readInt(ra, lane)
			link := b.corrupt(lane, PointResult, pc, next)
			b.writeInt(rd, lane, link)
			*out = Outcome{Seq: b.Seq[lane], PC: pc, Instr: ins, NextPC: npc, Taken: true, DestVal: link}
			b.PC[lane] = npc
			b.Seq[lane]++
		}
	}
	panic(fmt.Sprintf("vm: no batch handler shape for opcode %v", s.ins.Op))
}
