package vm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func run(t *testing.T, build func(b *isa.Builder)) *Thread {
	t.Helper()
	b := isa.NewBuilder("test")
	build(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	Load(p, mem)
	th := NewThread(0, p, mem)
	if th.Run(100000) == 100000 {
		t.Fatal("program did not halt within 100k instructions")
	}
	return th
}

func TestALUBasics(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, 7)
		b.Ldi(isa.R2, 3)
		b.Add(isa.R3, isa.R1, isa.R2)    // 10
		b.Sub(isa.R4, isa.R1, isa.R2)    // 4
		b.Mul(isa.R5, isa.R1, isa.R2)    // 21
		b.Div(isa.R6, isa.R1, isa.R2)    // 2
		b.Mod(isa.R7, isa.R1, isa.R2)    // 1
		b.Xor(isa.R8, isa.R1, isa.R2)    // 4
		b.Sll(isa.R9, isa.R1, isa.R2)    // 56
		b.Cmplt(isa.R10, isa.R2, isa.R1) // 1
		b.Halt()
	})
	want := map[isa.Reg]uint64{
		isa.R3: 10, isa.R4: 4, isa.R5: 21, isa.R6: 2, isa.R7: 1,
		isa.R8: 4, isa.R9: 56, isa.R10: 1,
	}
	for r, v := range want {
		if th.IntReg[r] != v {
			t.Errorf("r%d = %d, want %d", r, th.IntReg[r], v)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, 42)
		b.Div(isa.R2, isa.R1, isa.R31)
		b.Mod(isa.R3, isa.R1, isa.R31)
		b.Halt()
	})
	if th.IntReg[isa.R2] != 0 || th.IntReg[isa.R3] != 0 {
		t.Errorf("div/mod by zero: got %d, %d; want 0, 0", th.IntReg[isa.R2], th.IntReg[isa.R3])
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R31, 99)
		b.Add(isa.R1, isa.R31, isa.R31)
		b.Halt()
	})
	if th.IntReg[isa.R1] != 0 {
		t.Errorf("R31 not hardwired to zero: r1 = %d", th.IntReg[isa.R1])
	}
}

func TestNegativeImmediates(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, -5)
		b.Addi(isa.R2, isa.R1, -10) // -15
		b.Srai(isa.R3, isa.R1, 1)   // -3 (arithmetic)
		b.Srli(isa.R4, isa.R1, 60)  // high bits of -5
		b.Halt()
	})
	if int64(th.IntReg[isa.R2]) != -15 {
		t.Errorf("addi: got %d, want -15", int64(th.IntReg[isa.R2]))
	}
	if int64(th.IntReg[isa.R3]) != -3 {
		t.Errorf("srai: got %d, want -3", int64(th.IntReg[isa.R3]))
	}
	if th.IntReg[isa.R4] != 0xf {
		t.Errorf("srli: got %#x, want 0xf", th.IntReg[isa.R4])
	}
}

func TestLoadStore(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.InitData64(0x2000, 0xdeadbeefcafef00d)
		b.Ldi(isa.R1, 0x2000)
		b.Ldq(isa.R2, isa.R1, 0) // load init data
		b.Stq(isa.R2, isa.R1, 8) // copy
		b.Ldq(isa.R3, isa.R1, 8) // reload through overlay
		b.Ldb(isa.R4, isa.R1, 0) // 0x0d
		b.Ldi(isa.R5, 0x77)
		b.Stb(isa.R5, isa.R1, 16)
		b.Ldb(isa.R6, isa.R1, 16)
		b.Halt()
	})
	if th.IntReg[isa.R2] != 0xdeadbeefcafef00d {
		t.Errorf("ldq init: got %#x", th.IntReg[isa.R2])
	}
	if th.IntReg[isa.R3] != 0xdeadbeefcafef00d {
		t.Errorf("store-forward: got %#x", th.IntReg[isa.R3])
	}
	if th.IntReg[isa.R4] != 0x0d {
		t.Errorf("ldb: got %#x, want 0x0d", th.IntReg[isa.R4])
	}
	if th.IntReg[isa.R6] != 0x77 {
		t.Errorf("stb/ldb: got %#x, want 0x77", th.IntReg[isa.R6])
	}
}

func TestPartialStoreForward(t *testing.T) {
	// Byte store followed by quad load of the same location must merge the
	// byte into the quad (this pattern drives the paper's partial-forward
	// chunk-termination rule).
	th := run(t, func(b *isa.Builder) {
		b.InitData64(0x3000, 0x1111111111111111)
		b.Ldi(isa.R1, 0x3000)
		b.Ldi(isa.R2, 0xaa)
		b.Stb(isa.R2, isa.R1, 2)
		b.Ldq(isa.R3, isa.R1, 0)
		b.Halt()
	})
	if th.IntReg[isa.R3] != 0x11111111_11aa1111 {
		t.Errorf("partial forward: got %#x", th.IntReg[isa.R3])
	}
}

func TestControlFlowLoop(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, 10)
		b.Ldi(isa.R2, 0)
		b.Label("top")
		b.Add(isa.R2, isa.R2, isa.R1)
		b.Addi(isa.R1, isa.R1, -1)
		b.Bne(isa.R1, "top")
		b.Halt()
	})
	if th.IntReg[isa.R2] != 55 {
		t.Errorf("sum 10..1 = %d, want 55", th.IntReg[isa.R2])
	}
}

func TestJsrRet(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, 5)
		b.Jsr(isa.R26, "double")
		b.Jsr(isa.R26, "double")
		b.Halt()
		b.Label("double")
		b.Add(isa.R1, isa.R1, isa.R1)
		b.Ret(isa.R26)
	})
	if th.IntReg[isa.R1] != 20 {
		t.Errorf("double twice: got %d, want 20", th.IntReg[isa.R1])
	}
}

func TestConditionalBranchVariants(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, -1)
		b.Ldi(isa.R10, 0)
		b.Blt(isa.R1, "neg")
		b.Halt() // skipped
		b.Label("neg")
		b.Ldi(isa.R10, 1)
		b.Bge(isa.R1, "bad")
		b.Bgt(isa.R31, "bad")
		b.Ble(isa.R31, "ok")
		b.Label("bad")
		b.Ldi(isa.R10, 99)
		b.Halt()
		b.Label("ok")
		b.Halt()
	})
	if th.IntReg[isa.R10] != 1 {
		t.Errorf("branch variants: r10 = %d, want 1", th.IntReg[isa.R10])
	}
}

func TestFloatingPoint(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Ldi(isa.R1, 9)
		b.Cvtqf(isa.F1, isa.R1) // 9.0
		b.Fsqrt(isa.F2, isa.F1) // 3.0
		b.Fadd(isa.F3, isa.F2, isa.F2)
		b.Fmul(isa.F4, isa.F3, isa.F2) // 18
		b.Fdiv(isa.F5, isa.F4, isa.F2) // 6
		b.Fsub(isa.F6, isa.F5, isa.F2) // 3
		b.Fneg(isa.F7, isa.F6)         // -3
		b.Cvtfq(isa.R2, isa.F7)        // -3
		b.Fcmplt(isa.F8, isa.F7, isa.F6)
		b.Ftoi(isa.R3, isa.F8) // 1
		b.Halt()
	})
	if int64(th.IntReg[isa.R2]) != -3 {
		t.Errorf("fp chain: got %d, want -3", int64(th.IntReg[isa.R2]))
	}
	if th.IntReg[isa.R3] != 1 {
		t.Errorf("fcmplt: got %d, want 1", th.IntReg[isa.R3])
	}
	if got := math.Float64frombits(th.FPReg[isa.F4]); got != 18 {
		t.Errorf("fmul: got %v, want 18", got)
	}
}

func TestCvtfqNaN(t *testing.T) {
	th := run(t, func(b *isa.Builder) {
		b.Fdiv(isa.F1, isa.F31, isa.F31) // 0/0 = NaN
		b.Cvtfq(isa.R1, isa.F1)
		b.Halt()
	})
	if th.IntReg[isa.R1] != 0 {
		t.Errorf("cvtfq(NaN) = %d, want 0", th.IntReg[isa.R1])
	}
}

func TestHaltStopsThread(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Halt()
	p := b.MustFinish()
	mem := NewMemory()
	th := NewThread(0, p, mem)
	th.Step()
	if !th.Halted {
		t.Fatal("thread not halted")
	}
	out := th.Step()
	if !out.Halted || out.Instr.Op != isa.HALT {
		t.Error("stepping a halted thread should return halted no-op outcomes")
	}
}

func TestOutcomeFieldsForStore(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Ldi(isa.R1, 0x100)
	b.Ldi(isa.R2, 0x42)
	b.Stq(isa.R2, isa.R1, 8)
	b.Halt()
	p := b.MustFinish()
	mem := NewMemory()
	th := NewThread(0, p, mem)
	th.Step()
	th.Step()
	out := th.Step()
	if !out.IsStore() || out.Addr != 0x108 || out.Value != 0x42 || out.Size != 8 {
		t.Errorf("store outcome = %+v", out)
	}
}

func TestMemoryQuickRead64Write64(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, val uint64) bool {
		addr &= (1 << 40) - 1 // keep page map small-ish
		m.Write64(addr, val)
		return m.Read64(addr) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryUnalignedCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // crosses a page boundary
	m.Write64(addr, 0x0807060504030201)
	if got := m.Read64(addr); got != 0x0807060504030201 {
		t.Errorf("cross-page read = %#x", got)
	}
	if m.Byte(pageSize) != 4 {
		t.Errorf("byte on second page = %d, want 4", m.Byte(pageSize))
	}
}

func TestOverlayVisibilityAndRelease(t *testing.T) {
	mem := NewMemory()
	mem.Write64(0x100, 0x1111)
	a := NewOverlay(mem)
	b := NewOverlay(mem)

	// a stores privately; b must not see it.
	a.Store(0x100, 0x2222, 8, 1)
	if got := a.Read64(0x100); got != 0x2222 {
		t.Errorf("a sees %#x, want its own store", got)
	}
	if got := b.Read64(0x100); got != 0x1111 {
		t.Errorf("b sees %#x, want committed value", got)
	}

	// Release with commit: b now sees it; overlay drained.
	a.Release(0x100, 0x2222, 8, 1, true)
	if got := b.Read64(0x100); got != 0x2222 {
		t.Errorf("after commit b sees %#x", got)
	}
	if a.PendingBytes() != 0 {
		t.Errorf("overlay not drained: %d bytes", a.PendingBytes())
	}
}

func TestOverlayReleaseKeepsNewerStore(t *testing.T) {
	mem := NewMemory()
	o := NewOverlay(mem)
	o.Store(0x100, 0xaa, 1, 1)
	o.Store(0x100, 0xbb, 1, 2) // newer store, same byte
	// Releasing the older store must not evict the newer overlay byte.
	o.Release(0x100, 0xaa, 1, 1, true)
	if got := o.Byte(0x100); got != 0xbb {
		t.Errorf("overlay byte = %#x, want 0xbb (newer store)", got)
	}
	o.Release(0x100, 0xbb, 1, 2, true)
	if got := mem.Byte(0x100); got != 0xbb {
		t.Errorf("memory byte = %#x, want 0xbb", got)
	}
	if o.PendingBytes() != 0 {
		t.Error("overlay should be empty")
	}
}

func TestRedundantThreadsProduceIdenticalStores(t *testing.T) {
	// Two copies of the same program over the same committed memory, each
	// with its own overlay, must produce bit-identical store streams — the
	// fault-free invariant underlying RMT output comparison.
	b := isa.NewBuilder("t")
	b.Ldi(isa.R1, 0x1000)
	b.Ldi(isa.R2, 0)
	b.Ldi(isa.R3, 50)
	b.Label("top")
	b.Mul(isa.R4, isa.R2, isa.R2)
	b.Stq(isa.R4, isa.R1, 0)
	b.Ldq(isa.R5, isa.R1, 0)
	b.Add(isa.R2, isa.R2, isa.R5)
	b.Andi(isa.R2, isa.R2, 0xffff)
	b.Addi(isa.R1, isa.R1, 8)
	b.Addi(isa.R3, isa.R3, -1)
	b.Bne(isa.R3, "top")
	b.Halt()
	p := b.MustFinish()

	mem := NewMemory()
	Load(p, mem)
	lead := NewThread(0, p, mem)
	trail := NewThread(1, p, mem)

	type st struct {
		addr, val uint64
	}
	var leadStores, trailStores []st
	for !lead.Halted {
		out := lead.Step()
		if out.IsStore() {
			leadStores = append(leadStores, st{out.Addr, out.Value})
		}
	}
	for !trail.Halted {
		out := trail.Step()
		if out.IsStore() {
			trailStores = append(trailStores, st{out.Addr, out.Value})
		}
	}
	if len(leadStores) != len(trailStores) || len(leadStores) == 0 {
		t.Fatalf("store counts differ: %d vs %d", len(leadStores), len(trailStores))
	}
	for i := range leadStores {
		if leadStores[i] != trailStores[i] {
			t.Fatalf("store %d differs: %+v vs %+v", i, leadStores[i], trailStores[i])
		}
	}
}

func TestCorruptHookDivergesStores(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Ldi(isa.R1, 0x1000)
	b.Ldi(isa.R2, 5)
	b.Muli(isa.R3, isa.R2, 3)
	b.Stq(isa.R3, isa.R1, 0)
	b.Halt()
	p := b.MustFinish()

	mem := NewMemory()
	clean := NewThread(0, p, mem)
	faulty := NewThread(1, p, mem)
	faulty.Corrupt = func(point CorruptPoint, seq, pc, v uint64) uint64 {
		if point == PointResult && seq == 2 { // the MULI
			return v ^ (1 << 7)
		}
		return v
	}
	var cleanVal, faultyVal uint64
	for !clean.Halted {
		if out := clean.Step(); out.IsStore() {
			cleanVal = out.Value
		}
	}
	for !faulty.Halted {
		if out := faulty.Step(); out.IsStore() {
			faultyVal = out.Value
		}
	}
	if cleanVal == faultyVal {
		t.Fatal("fault did not propagate to store value")
	}
	if faultyVal != cleanVal^(1<<7) {
		t.Errorf("faulty = %#x, clean = %#x", faultyVal, cleanVal)
	}
}
