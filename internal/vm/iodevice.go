package vm

// IODevice is a memory-mapped device: reads are side-effecting (they
// consume device state), writes are externally visible. The sphere of
// replication treats device reads as inputs to replicate and device writes
// as outputs to compare.
type IODevice interface {
	Read(addr uint64) uint64
	Write(addr, val uint64)
}

// IOWriteRecord is one performed device write.
type IOWriteRecord struct {
	Addr, Val uint64
}

// PseudoDevice is a deterministic side-effecting device: every read
// advances its internal state (so reading twice yields different values —
// the property that makes uncached-load replication mandatory), and writes
// are logged in order.
type PseudoDevice struct {
	state    uint64
	Reads    uint64
	WriteLog []IOWriteRecord
}

// NewPseudoDevice returns a device seeded deterministically.
func NewPseudoDevice(seed uint64) *PseudoDevice {
	return &PseudoDevice{state: seed | 1}
}

// Read implements IODevice: a keyed-counter value, different on every call.
func (d *PseudoDevice) Read(addr uint64) uint64 {
	d.Reads++
	d.state = d.state*6364136223846793005 + 1442695040888963407
	return d.state ^ addr
}

// Write implements IODevice.
func (d *PseudoDevice) Write(addr, val uint64) {
	d.WriteLog = append(d.WriteLog, IOWriteRecord{Addr: addr, Val: val})
}
