package lockstep

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/vm"
)

func cfg(checker uint64) Config {
	return Config{
		Pipeline:       pipeline.DefaultConfig(),
		CheckerLatency: checker,
		Budget:         8000,
		Warmup:         4000,
	}
}

// TestFaultFreeCoresStayInLockstep: the fundamental lockstep property —
// identical cores, identical inputs, identical outputs, checker silent.
func TestFaultFreeCoresStayInLockstep(t *testing.T) {
	m, err := New(cfg(8), []string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2_000_000, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Checker.Comparisons.Value() == 0 {
		t.Fatal("checker compared nothing")
	}
	a, b := m.Checker.Backlog()
	if a != b {
		t.Errorf("asymmetric backlog %d vs %d at end of fault-free run", a, b)
	}
}

// TestDualMatchesSingle validates the single-core equivalence that
// internal/sim's performance experiments rely on: the dual-core machine's
// per-program IPC must equal the single-core model's, exactly.
func TestDualMatchesSingle(t *testing.T) {
	for _, checker := range []uint64{0, 8} {
		dual, err := New(cfg(checker), []string{"gcc"})
		if err != nil {
			t.Fatal(err)
		}
		drs, err := dual.Run(2_000_000, false)
		if err != nil {
			t.Fatal(err)
		}

		single, err := sim.Build(sim.Spec{
			Mode:           sim.ModeLockstep,
			Programs:       []string{"gcc"},
			Budget:         8000,
			Warmup:         4000,
			CheckerLatency: checker,
			Config:         pipeline.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srs, err := single.Run()
		if err != nil {
			t.Fatal(err)
		}
		if drs.LogicalIPC[0] != srs.LogicalIPC[0] {
			t.Errorf("checker=%d: dual-core IPC %.6f != single-core model IPC %.6f",
				checker, drs.LogicalIPC[0], srs.LogicalIPC[0])
		}
	}
}

// TestCheckerDetectsDataFault: flip a store-data bit in ONE core; the
// central checker must flag the very first divergent store.
func TestCheckerDetectsDataFault(t *testing.T) {
	for core := 0; core < 2; core++ {
		m, err := New(cfg(8), []string{"compress"})
		if err != nil {
			t.Fatal(err)
		}
		m.InjectFault(core, 0, 6000, vm.PointStoreData, 9)
		if _, err := m.Run(2_000_000, true); err != nil {
			t.Fatal(err)
		}
		if len(m.Checker.Detected) == 0 {
			t.Errorf("core %d store-data fault not detected", core)
		}
	}
}

// TestCheckerDetectsControlFlowFault: corrupt a loaded value that steers
// control flow; the cores' store streams then disagree in content or
// length, and the checker flags it either way.
func TestCheckerDetectsControlFlowFault(t *testing.T) {
	m, err := New(cfg(8), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	m.InjectFault(1, 0, 6000, vm.PointLoadValue, 1)
	if _, err := m.Run(2_000_000, true); err != nil {
		t.Fatal(err)
	}
	if len(m.Checker.Detected) == 0 {
		t.Error("control-flow fault not detected by the checker")
	}
}

// TestLock8SlowerThanLock0: the realistic checker costs cycles on the
// cache-miss path.
func TestLock8SlowerThanLock0(t *testing.T) {
	run := func(c uint64) uint64 {
		m, err := New(cfg(c), []string{"vortex"}) // miss-heavy
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(4_000_000, false); err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	l0, l8 := run(0), run(8)
	if l8 <= l0 {
		t.Errorf("Lock8 (%d cycles) not slower than Lock0 (%d)", l8, l0)
	}
}
