// Package lockstep implements the paper's lockstepping baseline as a real
// dual-core machine: two identical cores execute the same computation
// cycle-by-cycle, and a central checker compares every output signal
// (retired stores, in this model) before it is forwarded outside the
// sphere of replication (Figure 1b).
//
// For performance experiments, internal/sim's ModeLockstep uses an
// equivalent single-core model (two fault-free lockstepped cores are
// cycle-identical by construction, so simulating one with the checker
// penalties charged is exact); this package exists to
//
//  1. validate that equivalence (TestDualMatchesSingle), and
//  2. run fault-detection experiments on lockstepping, which the
//     single-core model cannot express: inject a fault into ONE core and
//     watch the checker flag the divergence.
//
// The checker models the paper's central-checker properties: it sees each
// core's store stream at retirement + checker latency, compares
// (address, value, size) pairs in order, and flags any divergence —
// including one core producing a store the other does not (a corrupted
// branch), detected when the streams' orders disagree.
package lockstep

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Mismatch describes a checker-detected divergence between the cores.
type Mismatch struct {
	Cycle        uint64
	CoreAHead    bool // true if core A's stream had an entry core B lacked
	AddrA, AddrB uint64
	ValA, ValB   uint64
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("lockstep: store streams diverge at cycle %d: A %#x=%#x vs B %#x=%#x",
		m.Cycle, m.AddrA, m.ValA, m.AddrB, m.ValB)
}

// storeEvent is one store leaving a core's sphere, as seen by the checker.
type storeEvent struct {
	addr, val uint64
	size      int
}

// Checker is the central output comparator between the two cores.
type Checker struct {
	// Latency is the checker's comparison delay; it is also charged on
	// the cores' miss paths via the cache configuration (Lock8).
	Latency uint64

	a, b []storeEvent

	Comparisons stats.Counter
	Mismatches  stats.Counter
	Detected    []*Mismatch
}

// Observe records a store leaving core "core" (0 or 1).
func (c *Checker) Observe(core int, addr, val uint64, size int) {
	ev := storeEvent{addr: addr, val: val, size: size}
	if core == 0 {
		c.a = append(c.a, ev)
	} else {
		c.b = append(c.b, ev)
	}
}

// Drain compares as many paired events as are available at cycle now.
func (c *Checker) Drain(now uint64) {
	for len(c.a) > 0 && len(c.b) > 0 {
		ea, eb := c.a[0], c.b[0]
		c.a, c.b = c.a[1:], c.b[1:]
		c.Comparisons.Inc()
		if ea != eb {
			c.Mismatches.Inc()
			c.Detected = append(c.Detected, &Mismatch{
				Cycle: now,
				AddrA: ea.addr, ValA: ea.val,
				AddrB: eb.addr, ValB: eb.val,
			})
		}
	}
}

// Backlog reports how many unpaired events wait on each side; a large
// asymmetry means one core has raced ahead or diverged in control flow.
func (c *Checker) Backlog() (a, b int) { return len(c.a), len(c.b) }

// Machine is a dual-core lockstepped processor pair running one or more
// logical programs (each program runs on BOTH cores as a RoleSingle
// thread).
type Machine struct {
	CoreA, CoreB *pipeline.Core
	Checker      *Checker

	// ThreadsA/ThreadsB hold the per-program contexts on each core.
	ThreadsA, ThreadsB []*pipeline.Context

	// DivergenceWindow bounds how far one core's unpaired store backlog
	// may grow before the checker declares a control-flow divergence
	// (one core emitting stores the other never will).
	DivergenceWindow int

	Cycles uint64
}

// Config bundles the machine parameters.
type Config struct {
	Pipeline pipeline.Config
	// CheckerLatency is the Lock0/Lock8 knob.
	CheckerLatency uint64
	Budget         uint64
	Warmup         uint64
}

// New builds a dual-core lockstep machine running the named programs.
func New(cfg Config, programs []string) (*Machine, error) {
	pcfg := cfg.Pipeline
	pcfg.Hier.CheckerMissPenalty = cfg.CheckerLatency
	pcfg.CheckerStorePenalty = cfg.CheckerLatency

	m := &Machine{
		CoreA:            pipeline.NewCore(0, pcfg, nil),
		CoreB:            pipeline.NewCore(1, pcfg, nil),
		Checker:          &Checker{Latency: cfg.CheckerLatency},
		DivergenceWindow: 512,
	}
	for i, name := range programs {
		prog, err := progen.Build(name)
		if err != nil {
			return nil, err
		}
		mk := func(core *pipeline.Core, id int) *pipeline.Context {
			img := vm.NewMemory()
			vm.Load(prog, img)
			ctx := pipeline.NewContext(pipeline.RoleSingle, i, vm.NewThread(id, prog, img), cfg.Warmup+cfg.Budget)
			ctx.Warmup = cfg.Warmup
			core.AddContext(ctx)
			return ctx
		}
		m.ThreadsA = append(m.ThreadsA, mk(m.CoreA, i*2))
		m.ThreadsB = append(m.ThreadsB, mk(m.CoreB, i*2+1))
	}
	m.CoreA.FinalizeQueues()
	m.CoreB.FinalizeQueues()
	return m, nil
}

// InjectFault attaches a single-bit result corruption to one core's copy of
// one program, firing at the victim's seq-th instruction.
func (m *Machine) InjectFault(core, logical int, atSeq uint64, point vm.CorruptPoint, bit uint) {
	ctx := m.ThreadsA[logical]
	if core == 1 {
		ctx = m.ThreadsB[logical]
	}
	fired := false
	ctx.Arch.Tolerant = true
	ctx.Arch.Corrupt = func(p vm.CorruptPoint, seq, pc, v uint64) uint64 {
		if !fired && seq >= atSeq && p == point {
			fired = true
			return v ^ (1 << (bit & 63))
		}
		return v
	}
}

// Run simulates until all budgets complete, a mismatch is detected (if
// stopOnDetection), or maxCycles elapse. The two cores' architectural
// store streams are fed through the checker as their threads' stores leave
// each sphere; since pipeline cores commit stores at drain, we sample each
// core's committed memory writes via the contexts' outcome streams —
// concretely, the checker taps the same retirement information the central
// checker wires would carry.
func (m *Machine) Run(maxCycles uint64, stopOnDetection bool) (*stats.RunStats, error) {
	// The pipeline package exposes store-drain tapping via DrainTap.
	m.CoreA.DrainTap = func(addr, val uint64, size int) {
		m.Checker.Observe(0, addr, val, size)
	}
	m.CoreB.DrainTap = func(addr, val uint64, size int) {
		m.Checker.Observe(1, addr, val, size)
	}
	var lastRetired uint64
	var lastProgress uint64
	for m.Cycles = 0; m.Cycles < maxCycles; m.Cycles++ {
		m.CoreA.Step()
		m.CoreB.Step()
		m.Checker.Drain(m.Cycles)
		if a, b := m.Checker.Backlog(); a > m.DivergenceWindow || b > m.DivergenceWindow {
			// One core's store stream ran unboundedly ahead: control-flow
			// divergence (a corrupted branch made the copies disagree about
			// which stores exist at all).
			m.Checker.Mismatches.Inc()
			m.Checker.Detected = append(m.Checker.Detected, &Mismatch{Cycle: m.Cycles, CoreAHead: a > b})
		}
		if stopOnDetection && len(m.Checker.Detected) > 0 {
			break
		}
		if m.doneAll() {
			m.Cycles++
			break
		}
		retired := m.CoreA.Retired + m.CoreB.Retired
		if retired > lastRetired {
			lastRetired, lastProgress = retired, m.Cycles
		} else if m.Cycles-lastProgress > 200000 {
			return nil, fmt.Errorf("lockstep: no progress by cycle %d", m.Cycles)
		}
	}
	rs := &stats.RunStats{Cycles: m.Cycles, Extra: map[string]float64{}}
	for i, c := range m.ThreadsA {
		rs.Threads = append(rs.Threads, c.Stats)
		ipc := 0.0
		if c.FinishCycle > c.WarmCycle && c.Budget > c.Warmup {
			ipc = float64(c.Budget-c.Warmup) / float64(c.FinishCycle-c.WarmCycle)
		}
		rs.LogicalIPC = append(rs.LogicalIPC, ipc)
		_ = i
	}
	return rs, nil
}

func (m *Machine) doneAll() bool {
	for _, cs := range [][]*pipeline.Context{m.ThreadsA, m.ThreadsB} {
		for _, c := range cs {
			if c.Budget > 0 && c.FinishCycle == 0 && !c.Arch.Halted {
				return false
			}
		}
	}
	return true
}

// Validate checks the machine invariant the paper relies on: with no
// faults, the two cores are cycle-identical. It runs both cores and
// returns an error if their per-thread retirement counts ever disagree at
// the end of the run or any store comparison failed.
func (m *Machine) Validate() error {
	for i := range m.ThreadsA {
		a, b := m.ThreadsA[i].Committed(), m.ThreadsB[i].Committed()
		if a != b {
			return fmt.Errorf("lockstep: program %d committed %d vs %d", i, a, b)
		}
	}
	if n := m.Checker.Mismatches.Value(); n != 0 {
		return fmt.Errorf("lockstep: %d mismatches in fault-free run", n)
	}
	return nil
}
