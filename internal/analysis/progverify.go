package analysis

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/isa"
)

// This file is Layer 2 of rmtlint: a static verifier for programs in the
// simulator's own ISA. The paper's sphere of replication assumes the
// workload is a well-formed program before the first fault is injected;
// VerifyProgram makes that assumption checkable. It builds a control-flow
// graph over the code image and checks, in order:
//
//	encode          every instruction encodes (opcode/register/imm ranges)
//	entry           entry point and interrupt handler are inside the code
//	branch-bounds   every direct branch/call target is inside the code
//	fallthrough     no path can run off the end of the code image
//	unreachable     every instruction is reachable from entry, the
//	                interrupt handler, or a statically-visible indirect
//	                target (JSR/JMP link values, jump-table words in the
//	                data image)
//	use-before-def  no reachable instruction reads a register that is not
//	                written on ANY path reaching it (registers are
//	                architecturally zeroed at thread start, so the lazy
//	                accumulator idiom the kernels use is well-defined;
//	                a register with no reaching definition at all is
//	                always a typo)
//	zero-write      no non-jump instruction targets hardwired R31/F31
//	halt            if the program contains HALT, one must be reachable
//	                (kernels are deliberate infinite loops and carry none)
//	mem-bounds      statically-derivable effective addresses (constant
//	                propagation from the zeroed register file) must not
//	                wrap negative or leave the 4 GiB data space; when all
//	                store addresses are statically known, loads must also
//	                stay inside the program's data segment
type ProgramIssue struct {
	// Check names the failed check (see above).
	Check string
	// PC is the instruction address the issue anchors to, or -1 for
	// program-wide issues.
	PC int
	// Msg states the defect.
	Msg string
}

func (i ProgramIssue) String() string {
	if i.PC < 0 {
		return fmt.Sprintf("[%s] %s", i.Check, i.Msg)
	}
	return fmt.Sprintf("pc=%d [%s] %s", i.PC, i.Check, i.Msg)
}

// dataSpaceLimit bounds statically-derived effective addresses: the kernels
// address at most a few MB, so an address beyond 4 GiB is a typo'd
// immediate, not a big working set.
const dataSpaceLimit = uint64(1) << 32

// VerifyProgram statically checks an assembled program and returns every
// issue found (empty means the program is well-formed). Structural issues
// (encoding, entry, branch bounds) suppress the CFG-based checks, which
// would otherwise cascade.
func VerifyProgram(p *isa.Program) []ProgramIssue {
	var issues []ProgramIssue
	add := func(check string, pc int, format string, args ...any) {
		issues = append(issues, ProgramIssue{Check: check, PC: pc, Msg: fmt.Sprintf(format, args...)})
	}
	n := len(p.Code)
	if n == 0 {
		add("entry", -1, "empty program")
		return issues
	}
	if p.Entry >= uint64(n) {
		add("entry", -1, "entry %d outside code (len %d)", p.Entry, n)
	}
	if p.InterruptHandler >= uint64(n) {
		add("entry", -1, "interrupt handler %d outside code (len %d)", p.InterruptHandler, n)
	}
	for pc, ins := range p.Code {
		if _, err := isa.Encode(ins); err != nil {
			add("encode", pc, "%v", err)
			continue
		}
		if ins.Op == isa.BR || ins.IsCondBranch() || ins.Op == isa.JSR {
			if t := ins.BranchTarget(uint64(pc)); t >= uint64(n) {
				add("branch-bounds", pc, "%v: target %d outside code (len %d)", ins, t, n)
			}
		}
	}
	if len(issues) > 0 {
		return issues
	}

	cfg := buildCFG(p)
	issues = append(issues, checkFallthrough(p)...)
	reach := reachable(p, cfg)
	issues = append(issues, reportUnreachable(p, reach)...)
	issues = append(issues, checkDefUse(p, cfg, reach)...)
	issues = append(issues, checkZeroWrites(p, reach)...)
	issues = append(issues, checkHalt(p, reach)...)
	issues = append(issues, checkMemBounds(p, cfg, reach)...)
	sort.SliceStable(issues, func(i, j int) bool { return issues[i].PC < issues[j].PC })
	return issues
}

// cfg holds per-instruction successor lists. Indirect jumps (JMP) get the
// program's statically-visible indirect target set: link values captured by
// JSR/JMP and code-range words in the initial data image (jump tables).
type progCFG struct {
	succs    [][]int
	indirect []int
}

func buildCFG(p *isa.Program) *progCFG {
	n := len(p.Code)
	cfg := &progCFG{succs: make([][]int, n)}
	hasJMP := false
	for _, ins := range p.Code {
		if ins.Op == isa.JMP {
			hasJMP = true
			break
		}
	}
	if hasJMP {
		cfg.indirect = indirectTargets(p)
	}
	for pc, ins := range p.Code {
		switch {
		case ins.Op == isa.HALT:
		case ins.Op == isa.BR:
			cfg.succs[pc] = []int{int(ins.BranchTarget(uint64(pc)))}
		case ins.IsCondBranch():
			cfg.succs[pc] = appendFall([]int{int(ins.BranchTarget(uint64(pc)))}, pc, n)
		case ins.Op == isa.JSR:
			cfg.succs[pc] = appendFall([]int{int(ins.BranchTarget(uint64(pc)))}, pc, n)
		case ins.Op == isa.JMP:
			cfg.succs[pc] = cfg.indirect
		default:
			cfg.succs[pc] = appendFall(nil, pc, n)
		}
	}
	return cfg
}

func appendFall(s []int, pc, n int) []int {
	if pc+1 < n {
		return append(s, pc+1)
	}
	return s
}

// indirectTargets over-approximates where a JMP can land: every captured
// link value (JSR/JMP writes pc+1) plus every aligned 64-bit word in the
// initial data image whose value indexes the code (jump tables land here;
// small data constants are included too, which errs on the side of
// reachability).
func indirectTargets(p *isa.Program) []int {
	n := len(p.Code)
	set := map[int]bool{}
	for pc, ins := range p.Code {
		if (ins.Op == isa.JSR || ins.Op == isa.JMP) && ins.Rd != isa.ZeroReg && pc+1 < n {
			set[pc+1] = true
		}
	}
	for _, blob := range p.Data {
		for off := 0; off+8 <= len(blob); off += 8 {
			v := uint64(blob[off]) | uint64(blob[off+1])<<8 | uint64(blob[off+2])<<16 |
				uint64(blob[off+3])<<24 | uint64(blob[off+4])<<32 | uint64(blob[off+5])<<40 |
				uint64(blob[off+6])<<48 | uint64(blob[off+7])<<56
			if v < uint64(n) {
				set[int(v)] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// checkFallthrough flags instructions whose execution can step past the end
// of the code image: only HALT and unconditional transfers may be last.
func checkFallthrough(p *isa.Program) []ProgramIssue {
	var issues []ProgramIssue
	last := len(p.Code) - 1
	ins := p.Code[last]
	switch {
	case ins.Op == isa.HALT, ins.Op == isa.BR, ins.Op == isa.JMP:
	case ins.Op == isa.JSR: // unconditional transfer; the link may never return here
	default:
		issues = append(issues, ProgramIssue{Check: "fallthrough", PC: last,
			Msg: fmt.Sprintf("%v: execution falls off the end of the code image", ins)})
	}
	return issues
}

func roots(p *isa.Program) []int {
	rs := []int{int(p.Entry)}
	if p.InterruptHandler != 0 {
		rs = append(rs, int(p.InterruptHandler))
	}
	return rs
}

func reachable(p *isa.Program, cfg *progCFG) []bool {
	reach := make([]bool, len(p.Code))
	work := append([]int(nil), roots(p)...)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if reach[pc] {
			continue
		}
		reach[pc] = true
		work = append(work, cfg.succs[pc]...)
	}
	return reach
}

func reportUnreachable(p *isa.Program, reach []bool) []ProgramIssue {
	var issues []ProgramIssue
	for pc := 0; pc < len(reach); {
		if reach[pc] {
			pc++
			continue
		}
		end := pc
		for end < len(reach) && !reach[end] {
			end++
		}
		issues = append(issues, ProgramIssue{Check: "unreachable", PC: pc,
			Msg: fmt.Sprintf("unreachable code: pc %d..%d (%d instructions)", pc, end-1, end-pc)})
		pc = end
	}
	return issues
}

// regBits is a pair of 32-bit register bitsets: low word integer, high word
// floating point.
type regBits uint64

const (
	intBit = regBits(1)
	fpBit  = regBits(1) << 32
	// zeroDefined marks the hardwired-zero registers, always readable.
	zeroDefined = intBit<<isa.ZeroReg | fpBit<<isa.ZeroReg
	allDefined  = ^regBits(0)
)

// readRegs returns the integer and FP registers an instruction reads.
func readRegs(ins isa.Instr) (ints, fps []isa.Reg) {
	switch ins.Op {
	case isa.NOP, isa.MB, isa.HALT, isa.BR, isa.LDI, isa.JSR:
		return nil, nil
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLE, isa.CMPULT:
		return []isa.Reg{ins.Ra, ins.Rb}, nil
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI,
		isa.SRAI, isa.CMPEQI, isa.CMPLTI:
		return []isa.Reg{ins.Ra}, nil
	case isa.LDQ, isa.LDB, isa.LDIO, isa.FLDQ:
		return []isa.Reg{ins.Ra}, nil
	case isa.STQ, isa.STB, isa.STIO:
		return []isa.Reg{ins.Ra, ins.Rd}, nil
	case isa.FSTQ:
		return []isa.Reg{ins.Ra}, []isa.Reg{ins.Rd}
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FCMPEQ, isa.FCMPLT, isa.FCMPLE:
		return nil, []isa.Reg{ins.Ra, ins.Rb}
	case isa.FSQRT, isa.FNEG:
		return nil, []isa.Reg{ins.Ra}
	case isa.CVTQF, isa.ITOF:
		return []isa.Reg{ins.Ra}, nil
	case isa.CVTFQ, isa.FTOI:
		return nil, []isa.Reg{ins.Ra}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BGT, isa.BLE:
		return []isa.Reg{ins.Ra}, nil
	case isa.JMP:
		return []isa.Reg{ins.Ra}, nil
	}
	return nil, nil
}

func defBit(ins isa.Instr) regBits {
	if !ins.HasDest() || ins.Rd == isa.ZeroReg {
		return 0
	}
	if ins.DestIsFP() {
		return fpBit << ins.Rd
	}
	return intBit << ins.Rd
}

// checkDefUse runs a may-defined forward dataflow from the entry (registers
// start architecturally zeroed, so "defined" here means "some reaching path
// wrote it") and flags reachable reads of registers with no reaching
// definition at all — a register the program never writes on any path into
// the use is a typo, while first-iteration zero reads of later-written
// accumulators are the kernels' sanctioned lazy-init idiom and pass.
func checkDefUse(p *isa.Program, cfg *progCFG, reach []bool) []ProgramIssue {
	n := len(p.Code)
	in := make([]regBits, n)
	seen := make([]bool, n)
	var work []int
	push := func(pc int, state regBits) {
		if !seen[pc] || in[pc]|state != in[pc] {
			in[pc] |= state
			seen[pc] = true
			work = append(work, pc)
		}
	}
	push(int(p.Entry), zeroDefined)
	if p.InterruptHandler != 0 {
		// The handler interrupts arbitrary code: every register may hold
		// live interrupted state (R30 carries the return link).
		push(int(p.InterruptHandler), allDefined)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[pc] | defBit(p.Code[pc])
		for _, s := range cfg.succs[pc] {
			push(s, out)
		}
	}
	var issues []ProgramIssue
	for pc, ins := range p.Code {
		if !reach[pc] || !seen[pc] {
			continue
		}
		ints, fps := readRegs(ins)
		for _, r := range ints {
			if in[pc]&(intBit<<r) == 0 {
				issues = append(issues, ProgramIssue{Check: "use-before-def", PC: pc,
					Msg: fmt.Sprintf("%v: reads r%d, which no path into this instruction ever writes", ins, r)})
			}
		}
		for _, r := range fps {
			if in[pc]&(fpBit<<r) == 0 {
				issues = append(issues, ProgramIssue{Check: "use-before-def", PC: pc,
					Msg: fmt.Sprintf("%v: reads f%d, which no path into this instruction ever writes", ins, r)})
			}
		}
	}
	return issues
}

// checkZeroWrites flags writes to the hardwired-zero registers. JSR/JMP are
// exempt: discarding the link through R31 is the return idiom.
func checkZeroWrites(p *isa.Program, reach []bool) []ProgramIssue {
	var issues []ProgramIssue
	for pc, ins := range p.Code {
		if !reach[pc] || !ins.DestDiscarded() {
			continue
		}
		if ins.Op == isa.JSR || ins.Op == isa.JMP {
			continue
		}
		name := "r31"
		if ins.DestIsFP() {
			name = "f31"
		}
		issues = append(issues, ProgramIssue{Check: "zero-write", PC: pc,
			Msg: fmt.Sprintf("%v: write to hardwired-zero %s is silently discarded", ins, name)})
	}
	return issues
}

// checkHalt verifies the program's termination structure: a program that
// contains HALT must be able to reach one (an unreachable-only HALT means
// the intended exit was orphaned); a program with no HALT at all is an
// intentional infinite loop, already guaranteed by the fallthrough check
// never to leave the code image.
func checkHalt(p *isa.Program, reach []bool) []ProgramIssue {
	first := -1
	for pc, ins := range p.Code {
		if ins.Op != isa.HALT {
			continue
		}
		if reach[pc] {
			return nil
		}
		if first < 0 {
			first = pc
		}
	}
	if first < 0 {
		return nil
	}
	return []ProgramIssue{{Check: "halt", PC: first,
		Msg: "program contains HALT but no reachable one: the exit path is orphaned"}}
}

// --- constant propagation for mem-bounds ---

// constVal is a three-point lattice over an integer register: unset (top,
// no path reached yet), known constant, or varies (bottom).
type constVal struct {
	known  bool
	varies bool
	v      uint64
}

func meet(a, b constVal) constVal {
	switch {
	case a.varies || b.varies:
		return constVal{varies: true}
	case !a.known:
		return b
	case !b.known:
		return a
	case a.v == b.v:
		return a
	default:
		return constVal{varies: true}
	}
}

type constState [isa.NumIntRegs]constVal

func (s *constState) get(r isa.Reg) constVal {
	if r == isa.ZeroReg {
		return constVal{known: true}
	}
	return s[r]
}

func (s *constState) set(r isa.Reg, v constVal) {
	if r != isa.ZeroReg {
		s[r] = v
	}
}

func meetState(a, b *constState) (constState, bool) {
	var out constState
	changed := false
	for i := range a {
		out[i] = meet(a[i], b[i])
		if out[i] != a[i] {
			changed = true
		}
	}
	return out, changed
}

// constTransfer models the VM's integer semantics for the ops whose results
// are statically computable; everything else (loads, FP extracts, DIV/MOD
// and shifts-by-register, which this pass doesn't need) becomes varies.
func constTransfer(s *constState, pc int, ins isa.Instr) {
	if !ins.HasDest() || ins.DestIsFP() {
		return
	}
	ra := s.get(ins.Ra)
	rb := s.get(ins.Rb)
	val := constVal{varies: true}
	bin := func(f func(a, b uint64) uint64) {
		if ra.known && rb.known {
			val = constVal{known: true, v: f(ra.v, rb.v)}
		}
	}
	immOp := func(f func(a uint64) uint64) {
		if ra.known {
			val = constVal{known: true, v: f(ra.v)}
		}
	}
	imm := uint64(ins.Imm)
	switch ins.Op {
	case isa.LDI:
		val = constVal{known: true, v: imm}
	case isa.ADD:
		bin(func(a, b uint64) uint64 { return a + b })
	case isa.SUB:
		bin(func(a, b uint64) uint64 { return a - b })
	case isa.MUL:
		bin(func(a, b uint64) uint64 { return a * b })
	case isa.AND:
		bin(func(a, b uint64) uint64 { return a & b })
	case isa.OR:
		bin(func(a, b uint64) uint64 { return a | b })
	case isa.XOR:
		bin(func(a, b uint64) uint64 { return a ^ b })
	case isa.SLL:
		bin(func(a, b uint64) uint64 { return a << (b & 63) })
	case isa.SRL:
		bin(func(a, b uint64) uint64 { return a >> (b & 63) })
	case isa.ADDI:
		immOp(func(a uint64) uint64 { return a + imm })
	case isa.MULI:
		immOp(func(a uint64) uint64 { return a * imm })
	case isa.ANDI:
		immOp(func(a uint64) uint64 { return a & imm })
	case isa.ORI:
		immOp(func(a uint64) uint64 { return a | imm })
	case isa.XORI:
		immOp(func(a uint64) uint64 { return a ^ imm })
	case isa.SLLI:
		immOp(func(a uint64) uint64 { return a << (imm & 63) })
	case isa.SRLI:
		immOp(func(a uint64) uint64 { return a >> (imm & 63) })
	case isa.JSR, isa.JMP:
		val = constVal{known: true, v: uint64(pc) + 1}
	}
	s.set(ins.Rd, val)
}

// constFixpoint propagates constants from the zeroed register file to a
// fixpoint over the CFG and returns each instruction's entry state plus a
// mask of the pcs the propagation visited. Shared by the mem-bounds
// verifier and the memory-liveness analysis (dataflow.go) so the two can
// never disagree about which effective addresses are statically known.
func constFixpoint(p *isa.Program, cfg *progCFG) (states []constState, seen []bool) {
	n := len(p.Code)
	in := make([]constState, n)
	seen = make([]bool, n)
	var work []int
	pushRoot := func(pc int, varies bool) {
		var s constState
		if varies {
			for i := range s {
				s[i] = constVal{varies: true}
			}
		} else {
			for i := range s {
				s[i] = constVal{known: true} // architecturally zeroed
			}
		}
		in[pc] = s
		seen[pc] = true
		work = append(work, pc)
	}
	pushRoot(int(p.Entry), false)
	if p.InterruptHandler != 0 {
		pushRoot(int(p.InterruptHandler), true)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[pc]
		constTransfer(&out, pc, p.Code[pc])
		for _, s := range cfg.succs[pc] {
			if !seen[s] {
				in[s] = out
				seen[s] = true
				work = append(work, s)
				continue
			}
			merged, changed := meetState(&in[s], &out)
			if changed {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	return in, seen
}

// checkMemBounds propagates constants from the zeroed register file to every
// reachable memory instruction and flags statically-wild effective
// addresses. When every store address in the program is statically known,
// the data segment is fully visible, so loads outside it are flagged too.
func checkMemBounds(p *isa.Program, cfg *progCFG, reach []bool) []ProgramIssue {
	in, seen := constFixpoint(p, cfg)

	// Data segment: initial image plus statically-known store spans
	// (capped at the sanity limit so a wild store cannot mask itself).
	segEnd := uint64(4096)
	for addr, blob := range p.Data {
		if end := addr + uint64(len(blob)); end <= dataSpaceLimit && end > segEnd {
			segEnd = end
		}
	}
	allStoresKnown := true
	type memAccess struct {
		pc   int
		ins  isa.Instr
		ea   uint64
		size uint64
	}
	var accesses []memAccess
	for pc, ins := range p.Code {
		if !reach[pc] || !seen[pc] || !ins.IsMem() || ins.IsUncached() {
			continue
		}
		st := in[pc]
		base := st.get(ins.Ra)
		if !base.known {
			if ins.IsStore() {
				allStoresKnown = false
			}
			continue
		}
		ea := base.v + uint64(ins.Imm)
		accesses = append(accesses, memAccess{pc, ins, ea, uint64(ins.MemBytes())})
		if ins.IsStore() {
			if end := ea + uint64(ins.MemBytes()); end <= dataSpaceLimit && end > segEnd {
				segEnd = end
			}
		}
	}
	segLimit := uint64(1) << bits.Len64(segEnd-1)

	var issues []ProgramIssue
	for _, a := range accesses {
		switch {
		case int64(a.ea) < 0:
			issues = append(issues, ProgramIssue{Check: "mem-bounds", PC: a.pc,
				Msg: fmt.Sprintf("%v: effective address %d wraps negative", a.ins, int64(a.ea))})
		case a.ea+a.size > dataSpaceLimit:
			issues = append(issues, ProgramIssue{Check: "mem-bounds", PC: a.pc,
				Msg: fmt.Sprintf("%v: effective address %#x is beyond the 4 GiB data space", a.ins, a.ea)})
		case allStoresKnown && a.ea+a.size > segLimit:
			issues = append(issues, ProgramIssue{Check: "mem-bounds", PC: a.pc,
				Msg: fmt.Sprintf("%v: effective address %#x is outside the program's data segment (limit %#x)", a.ins, a.ea, segLimit)})
		}
	}
	return issues
}
