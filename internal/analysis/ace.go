package analysis

import (
	"fmt"

	"repro/internal/isa"
)

// This file is the ACE analysis: a static classification of every
// fault-injection site in a program as provably masked or potentially ACE
// (Architecturally Correct Execution — a bit that can change the program's
// observable behaviour, after Mukherjee et al.'s AVF methodology). The
// campaign fault model (internal/fault) injects at four dataflow points;
// statically they collapse to two kinds of site per instruction:
//
//   - a destination-register site (PointResult, and PointLoadValue on
//     loads): the corrupted value lands in the destination register. If
//     liveness proves the destination dead at that pc — or the pc is
//     unreachable, or the destination is hardwired zero — no consumer can
//     ever observe the flip, so the site is provably masked.
//   - a store site (PointStoreData / PointStoreAddr): the corrupted value
//     crosses the sphere-of-replication boundary into the store comparator,
//     which is exactly the detection mechanism. Store sites are always
//     potentially ACE (detection-ACE) unless the store is unreachable.
//
// The classification is bit-agnostic and deliberately one-sided: "masked"
// is a proof, "ACE" is an over-approximation. The fault engine's
// cross-validation mode (fault.CampaignOptions.ValidateStaticMasking)
// replays pruned trials and asserts the dynamic outcome agrees.

// Masking reasons recorded in MaskedSite.Reason.
const (
	// MaskedZeroReg: the destination is hardwired R31/F31; the register
	// file discards the write (the JSR/JMP discarded-link idiom).
	MaskedZeroReg = "zero-reg"
	// MaskedNeverRead: no reachable instruction reads the destination
	// register at all.
	MaskedNeverRead = "never-read"
	// MaskedOverwritten: the destination is read somewhere, but every path
	// from this pc overwrites it before any read.
	MaskedOverwritten = "overwritten-before-use"
	// MaskedUnreachable: the instruction can never execute.
	MaskedUnreachable = "unreachable"
)

// MaskedSite is one provably-masked destination-register injection site.
type MaskedSite struct {
	// PC is the instruction address of the site.
	PC int `json:"pc"`
	// Reg names the destination register ("r7", "f3").
	Reg string `json:"reg"`
	// Reason is one of the Masked* constants.
	Reason string `json:"reason"`
	// Instr is the instruction's disassembly, for human-readable profiles.
	Instr string `json:"instr"`
}

// VulnerabilityProfile is the per-program result of the ACE analysis.
type VulnerabilityProfile struct {
	// Name is the kernel name when analyzed through the registry ("" for
	// ad-hoc programs).
	Name string `json:"name,omitempty"`
	// Instructions is the static code size.
	Instructions int `json:"instructions"`
	// Reachable counts instructions reachable from the entry (plus
	// interrupt handler and statically-visible indirect targets).
	Reachable int `json:"reachable"`
	// RegSites counts destination-register injection sites: one per
	// instruction with a non-store destination (loads, ALU/FP ops, JSR/JMP
	// links), reachable or not.
	RegSites int `json:"reg_sites"`
	// StoreSites counts store injection sites: two per store instruction
	// (data and address), reachable or not.
	StoreSites int `json:"store_sites"`
	// MaskedSites lists every provably-masked destination-register site.
	MaskedSites []MaskedSite `json:"masked_sites,omitempty"`
	// MaskedStoreSites counts masked store sites (unreachable stores only:
	// reachable stores always face the comparator).
	MaskedStoreSites int `json:"masked_store_sites"`
	// ACEFraction is the fraction of all injection sites not provably
	// masked: 1 - (len(MaskedSites)+MaskedStoreSites)/(RegSites+StoreSites).
	ACEFraction float64 `json:"ace_fraction"`
	// LiveRegDensity is the mean number of live registers on entry to a
	// reachable instruction — how much architectural state a random strike
	// at a random point could land in.
	LiveRegDensity float64 `json:"live_reg_density"`
	// DeadStores lists reachable stores whose written bytes are provably
	// overwritten before any read (informational: still detection-ACE, see
	// MemLiveness).
	DeadStores []int `json:"dead_stores,omitempty"`
	// Conservative is set when an interrupt handler forces the analysis to
	// assume every register live everywhere; no site is then provably
	// masked except unreachable and zero-reg ones.
	Conservative bool `json:"conservative,omitempty"`
	// LiveIn holds the per-pc live-register count on entry (0 for
	// unreachable pcs) — the raw series behind LiveRegDensity. Excluded
	// from the JSON profile: consumers that need per-pc vulnerability
	// (the adaptive-redundancy protection table) read it in-process.
	LiveIn []int `json:"-"`
}

// DestMasked reports whether the destination-register site at pc is
// provably masked. Store-point sites are never masked through this query.
func (v *VulnerabilityProfile) DestMasked(pc int) bool {
	for _, s := range v.MaskedSites {
		if s.PC == pc {
			return true
		}
	}
	return false
}

// AnalyzeProgram runs the liveness and ACE analyses over an assembled
// program and returns its vulnerability profile. The program must pass the
// verifier's structural checks (encoding, entry, branch bounds) — a broken
// CFG proves nothing — but non-structural findings (use-before-def,
// mem-bounds) do not block analysis.
func AnalyzeProgram(p *isa.Program) (*VulnerabilityProfile, error) {
	for _, issue := range VerifyProgram(p) {
		switch issue.Check {
		case "encode", "entry", "branch-bounds":
			return nil, fmt.Errorf("analysis: program %q fails structural verification: %v", p.Name, issue)
		}
	}
	cfg := buildCFG(p)
	reach := reachable(p, cfg)
	lv := computeLiveness(p, cfg)
	ml := computeMemLiveness(p, cfg, reach)

	prof := &VulnerabilityProfile{
		Instructions: len(p.Code),
		DeadStores:   ml.DeadStores,
		Conservative: lv.Conservative,
	}

	// everRead: registers some reachable instruction reads — the cheap
	// global screen that separates never-read from overwritten-before-use.
	var everRead regBits
	for pc, ins := range p.Code {
		if reach[pc] {
			prof.Reachable++
			everRead |= useBits(ins)
		}
	}

	var liveSum int
	prof.LiveIn = make([]int, len(p.Code))
	for pc, ins := range p.Code {
		if reach[pc] {
			prof.LiveIn[pc] = lv.In[pc].Count()
			liveSum += prof.LiveIn[pc]
		}
		if ins.IsStore() {
			prof.StoreSites += 2
			if !reach[pc] {
				prof.MaskedStoreSites += 2
			}
			continue
		}
		if !ins.HasDest() {
			continue
		}
		prof.RegSites++
		name := fmt.Sprintf("r%d", ins.Rd)
		bit := intBit << ins.Rd
		if ins.DestIsFP() {
			name = fmt.Sprintf("f%d", ins.Rd)
			bit = fpBit << ins.Rd
		}
		mask := func(reason string) {
			prof.MaskedSites = append(prof.MaskedSites, MaskedSite{
				PC: pc, Reg: name, Reason: reason, Instr: ins.String(),
			})
		}
		switch {
		case !reach[pc]:
			mask(MaskedUnreachable)
		case ins.DestDiscarded():
			mask(MaskedZeroReg)
		case lv.Conservative:
			// Nothing further provable.
		case everRead&bit == 0:
			mask(MaskedNeverRead)
		case regBits(lv.Out[pc])&bit == 0:
			mask(MaskedOverwritten)
		}
	}
	if prof.Reachable > 0 {
		prof.LiveRegDensity = float64(liveSum) / float64(prof.Reachable)
	}
	if total := prof.RegSites + prof.StoreSites; total > 0 {
		prof.ACEFraction = 1 - float64(len(prof.MaskedSites)+prof.MaskedStoreSites)/float64(total)
	}
	return prof, nil
}
