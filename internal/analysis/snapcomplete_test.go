package analysis

import (
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package and returns its Pass, without
// running any analyzer, so tests can drive RunAnalyzers and StaleDirectives
// separately.
func loadFixture(t *testing.T, path, src string) *Pass {
	t.Helper()
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	pass, err := l.LoadSource(path, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return pass
}

// The known-bad fixture: Regs is serialized on both sides, Cycles only on
// the encode side, Scratch on neither. Fixtures live in repro/internal/vm so
// the snap import is layering-legal.
const snapFixtureMissing = `
package vm

import "repro/internal/snap"

type Core struct {
	Regs    [4]uint64
	Cycles  uint64
	Scratch int
}

func (c *Core) SnapshotTo(w *snap.Writer) {
	for _, r := range c.Regs {
		w.U64(r)
	}
	w.U64(c.Cycles)
}

func (c *Core) RestoreFrom(r *snap.Reader) {
	for i := range c.Regs {
		c.Regs[i] = r.U64()
	}
}
`

func TestSnapcompleteMissingField(t *testing.T) {
	diags := runOn(t, "repro/internal/vm", snapFixtureMissing)
	if !hasDiag(diags, "snapcomplete", "field Core.Scratch is not referenced on the snapshot encode/decode paths") {
		t.Errorf("want Scratch finding on both paths, got %v", diags)
	}
	if !hasDiag(diags, "snapcomplete", "field Core.Cycles is not referenced on the snapshot decode path") {
		t.Errorf("want Cycles finding on the decode path, got %v", diags)
	}
	if hasDiag(diags, "snapcomplete", "Core.Regs") {
		t.Errorf("Regs is covered on both sides, got %v", diags)
	}
}

func TestSnapcompleteSkipDirective(t *testing.T) {
	src := strings.Replace(snapFixtureMissing,
		"Cycles  uint64", "Cycles  uint64 //rmtsnap:skip — fixture", 1)
	src = strings.Replace(src,
		"Scratch int", "Scratch int //rmtsnap:skip — fixture", 1)
	diags := runOn(t, "repro/internal/vm", src)
	if hasDiag(diags, "snapcomplete", "") {
		t.Errorf("skip directives did not suppress: %v", diags)
	}
}

// A field referenced only through a package-local helper still counts: the
// analyzer closes over the call graph, so writeRegs/readRegs carry the Regs
// coverage and Saved is covered by the NewWriter/NewReader entry points.
func TestSnapcompleteHelperClosure(t *testing.T) {
	diags := runOn(t, "repro/internal/vm", `
package vm

import "repro/internal/snap"

type Core struct {
	Regs  [4]uint64
	Saved uint64
}

func (c *Core) writeRegs(w *snap.Writer) {
	for _, r := range c.Regs {
		w.U64(r)
	}
}

func (c *Core) readRegs(r *snap.Reader) {
	for i := range c.Regs {
		c.Regs[i] = r.U64()
	}
}

func (c *Core) Snapshot() []byte {
	w := snap.NewWriter()
	c.writeRegs(w)
	w.U64(c.Saved)
	return w.Finish()
}

func (c *Core) Restore(data []byte) error {
	r, err := snap.NewReader(data)
	if err != nil {
		return err
	}
	c.readRegs(r)
	c.Saved = r.U64()
	return r.Done()
}
`)
	if hasDiag(diags, "snapcomplete", "") {
		t.Errorf("helper-covered fields flagged: %v", diags)
	}
}

// Encode-only structs have no round-trip contract: a struct that is written
// into a report stream but never restored is not a subject.
func TestSnapcompleteEncodeOnlyNotASubject(t *testing.T) {
	diags := runOn(t, "repro/internal/vm", `
package vm

import "repro/internal/snap"

type Report struct {
	Cycles uint64
	Label  string
}

func (rep *Report) WriteTo(w *snap.Writer) {
	w.U64(rep.Cycles)
}
`)
	if hasDiag(diags, "snapcomplete", "") {
		t.Errorf("encode-only struct flagged: %v", diags)
	}
}

func TestSnapcompleteSnapPackageExempt(t *testing.T) {
	diags := runOn(t, "repro/internal/snap", `
package snap

type codecState struct {
	buf []byte
	off int
}

func (s *codecState) save(w *Writer)    { w.Bytes(s.buf) }
func (s *codecState) load(r *Reader)    { s.buf = r.Bytes() }
`)
	if hasDiag(diags, "snapcomplete", "") {
		t.Errorf("snap package must be exempt from its own contract: %v", diags)
	}
}

// A //rmtsnap:skip on a fully-serialized field suppresses nothing and must
// surface as stale once the suite has run.
func TestStaleSnapSkipDirective(t *testing.T) {
	src := strings.Replace(snapFixtureMissing,
		"Regs    [4]uint64", "Regs    [4]uint64 //rmtsnap:skip — stale: the loops below cover it", 1)
	src = strings.Replace(src,
		"Cycles  uint64", "Cycles  uint64 //rmtsnap:skip — fixture", 1)
	src = strings.Replace(src,
		"Scratch int", "Scratch int //rmtsnap:skip — fixture", 1)
	pass := loadFixture(t, "repro/internal/vm", src)
	if diags := RunAnalyzers(pass, Analyzers()); len(diags) != 0 {
		t.Fatalf("fixture should be finding-free with skips in place: %v", diags)
	}
	stale := pass.StaleDirectives()
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "rmtsnap:skip") {
		t.Fatalf("want exactly the Regs skip reported stale, got %v", stale)
	}
}

func TestStaleAllowDirective(t *testing.T) {
	pass := loadFixture(t, "repro/internal/sim", `
package sim

func pure(x int) int {
	return x + 1 //rmtlint:allow determinism — nothing here to allow
}
`)
	if diags := RunAnalyzers(pass, Analyzers()); len(diags) != 0 {
		t.Fatalf("fixture should be finding-free: %v", diags)
	}
	stale := pass.StaleDirectives()
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "rmtlint:allow determinism") {
		t.Fatalf("want the unused allow reported stale, got %v", stale)
	}
}

// A consumed directive is not stale.
func TestUsedDirectiveNotStale(t *testing.T) {
	pass := loadFixture(t, "repro/internal/sim", `
package sim

import "time"

func stamp() int64 {
	return time.Now().UnixNano() //rmtlint:allow determinism — test fixture
}
`)
	if diags := RunAnalyzers(pass, Analyzers()); len(diags) != 0 {
		t.Fatalf("allow should suppress the finding: %v", diags)
	}
	if stale := pass.StaleDirectives(); len(stale) != 0 {
		t.Fatalf("consumed directive reported stale: %v", stale)
	}
}
