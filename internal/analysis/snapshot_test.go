package analysis

import "testing"

func TestSnapshotFlagsMapRangeInEncoder(t *testing.T) {
	diags := runOn(t, "repro/internal/vm", `
package vm

import "fmt"

type M struct{ pages map[uint64][]byte }

func (m *M) SnapshotTo() {
	for pn, pg := range m.pages {
		fmt.Println(pn, pg) //rmtlint:allow determinism — fixture
	}
}
`)
	if !hasDiag(diags, "snapshot", "map order") {
		t.Fatalf("want map-order finding, got %v", diags)
	}
}

func TestSnapshotAllowsKeyCollectIdiom(t *testing.T) {
	diags := runOn(t, "repro/internal/vm", `
package vm

import "sort"

type M struct{ pages map[uint64][]byte }

func (m *M) SnapshotTo() []uint64 {
	keys := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		keys = append(keys, pn)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
`)
	if hasDiag(diags, "snapshot", "map order") {
		t.Fatalf("key-collect idiom was flagged: %v", diags)
	}
}

func TestSnapshotIgnoresMapRangeOutsideEncoders(t *testing.T) {
	diags := runOn(t, "repro/internal/vm", `
package vm

type M struct{ pages map[uint64][]byte }

func (m *M) bytes() int {
	n := 0
	for _, pg := range m.pages {
		n += len(pg)
	}
	return n
}
`)
	if hasDiag(diags, "snapshot", "map order") {
		t.Fatalf("non-encoder map range was flagged: %v", diags)
	}
}

func TestSnapshotSubstrateMustStayStdlibOnly(t *testing.T) {
	diags := runOn(t, "repro/internal/snap", `
package snap

import "repro/internal/isa" //rmtlint:allow layering — fixture exercises the snapshot check

var _ = isa.Instr{}
`)
	if !hasDiag(diags, "snapshot", "standard library alone") {
		t.Fatalf("want stdlib-only finding, got %v", diags)
	}
}

// TestSnapshotCleanOnRealSnapPackage: the real substrate passes its own
// gate.
func TestSnapshotCleanOnRealSnapPackage(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	pass, err := l.Load("repro/internal/snap")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pass, []*Analyzer{Snapshot}); len(diags) != 0 {
		t.Fatalf("internal/snap has snapshot findings: %v", diags)
	}
}
