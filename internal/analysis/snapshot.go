package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Snapshot guards the machine-state snapshot layer's two contracts. First,
// repro/internal/snap is the serialization substrate every state-bearing
// package encodes through, so it must stay a dependency-free leaf: standard
// library imports only. Second, snapshot encoding must be deterministic —
// the same machine state always serializes to the same bytes, because
// fork-on-fault campaigns, the restored-run byte-identity tests and rmtd's
// content-addressed cache all compare snapshots bytewise. Go map iteration
// order is randomized, so any `range` over a map inside a
// Snapshot/SnapshotTo/Restore/RestoreFrom/RestoreState function is flagged
// unless it is the collect-keys idiom (append every key to a slice, which
// is then sorted before emission).
var Snapshot = &Analyzer{
	Name: "snapshot",
	Doc:  "keep the snapshot substrate stdlib-only and snapshot encoding map-order-independent",
	Run:  runSnapshot,
}

// snapshotFuncs names the serialization entry points the map-order check
// applies to.
var snapshotFuncs = map[string]bool{
	"Snapshot":     true,
	"SnapshotTo":   true,
	"Restore":      true,
	"RestoreFrom":  true,
	"RestoreState": true,
}

func runSnapshot(p *Pass) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Check:   "snapshot",
			Message: fmt.Sprintf(format, args...),
		})
	}
	if p.Path == ModPath+"/internal/snap" {
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep == ModPath || strings.HasPrefix(dep, ModPath+"/") || strings.Contains(strings.SplitN(dep, "/", 2)[0], ".") {
					report(spec.Pos(), "internal/snap must build from the standard library alone, not %s: every state-bearing package serializes through it", dep)
				}
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !snapshotFuncs[fn.Name.Name] {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.typeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if isKeyCollect(rng) {
					return true
				}
				report(rng.Pos(), "map iteration in %s: snapshot encoding must not depend on map order — collect the keys, sort, then emit", name)
				return true
			})
		}
	}
	return out
}

// isKeyCollect recognises the one map range an encoder may contain: keys
// appended to a slice (to be sorted afterwards), values untouched, e.g.
//
//	for pn := range m.pages {
//		keys = append(keys, pn)
//	}
func isKeyCollect(rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}
