package analysis

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// Layering enforces the import DAG DESIGN.md draws for the simulator:
//
//	layer 0  isa, stats, runner, metrics, snap (leaves: no repro imports)
//	layer 1  vm, program, predict, mem, rmt (branch/LVQ/SQ queues), analysis
//	layer 2  pipeline; progen (generated workloads: builds on vm for
//	         characterisation replay and falls through to program for
//	         registry names)
//	layer 3  lockstep, trace, vmdiff (batch-vs-scalar differential
//	         harness: drives vm batches against scalar oracles over
//	         progen corpora)
//	layer 4  sim (assembles machines and wires trace/metrics observability)
//	layer 5  fault, cliflags
//	layer 6  exp
//	layer 7  rmt facade (and the repro doc package)
//	layer 8  server (rmtd's serving layer: sits above the facade and
//	         calls rmt.Run/rmt.Sweep so served results are the facade's)
//
// A package may import only packages on a strictly lower layer, so cycles
// and layer-skipping back-edges are impossible by construction. cmd/ and
// examples/ binaries sit above everything but are restricted to the public
// facade (repro/rmt) plus repro/internal/cliflags; a binary that must reach
// internal machinery the facade does not expose carries an
// //rmtlint:allow layering directive on the import line stating why.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the package import DAG",
	Run:  runLayering,
}

// ModPath is the module path the layer map below is keyed under.
const ModPath = "repro"

// layerOf assigns every first-party package its layer. Packages absent from
// the map are flagged: growing the tree means placing new packages in the
// DAG deliberately.
var layerOf = map[string]int{
	ModPath:                        7,
	ModPath + "/internal/isa":      0,
	ModPath + "/internal/ringq":    0,
	ModPath + "/internal/stats":    0,
	ModPath + "/internal/runner":   0,
	ModPath + "/internal/metrics":  0,
	ModPath + "/internal/snap":     0,
	ModPath + "/internal/vm":       1,
	ModPath + "/internal/program":  1,
	ModPath + "/internal/predict":  1,
	ModPath + "/internal/mem":      1,
	ModPath + "/internal/rmt":      1,
	ModPath + "/internal/analysis": 1,
	ModPath + "/internal/pipeline": 2,
	ModPath + "/internal/progen":   2,
	ModPath + "/internal/lockstep": 3,
	ModPath + "/internal/trace":    3,
	ModPath + "/internal/vmdiff":   3,
	ModPath + "/internal/sim":      4,
	ModPath + "/internal/fault":    5,
	ModPath + "/internal/cliflags": 5,
	ModPath + "/internal/exp":      6,
	ModPath + "/rmt":               7,
	ModPath + "/internal/server":   8,
}

// binaryAllowed is the import set open to cmd/ and examples/ packages.
var binaryAllowed = map[string]bool{
	ModPath + "/rmt":               true,
	ModPath + "/internal/cliflags": true,
}

func isBinaryPath(path string) bool {
	return strings.HasPrefix(path, ModPath+"/cmd/") ||
		strings.HasPrefix(path, ModPath+"/examples/")
}

func runLayering(p *Pass) []Diagnostic {
	var out []Diagnostic
	report := func(spec *ast.ImportSpec, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(spec.Pos()),
			Check:   "layering",
			Message: fmt.Sprintf(format, args...),
		})
	}
	selfBinary := isBinaryPath(p.Path)
	selfLayer, selfKnown := layerOf[p.Path]
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			dep, err := strconv.Unquote(spec.Path.Value)
			if err != nil || (dep != ModPath && !strings.HasPrefix(dep, ModPath+"/")) {
				continue // stdlib: out of scope
			}
			if isBinaryPath(dep) {
				report(spec, "import of binary package %s: binaries are leaves of the DAG", dep)
				continue
			}
			depLayer, depKnown := layerOf[dep]
			if !depKnown {
				report(spec, "import of %s, which has no layer assignment: add it to the layer map in internal/analysis/layering.go", dep)
				continue
			}
			if selfBinary {
				if !binaryAllowed[dep] {
					report(spec, "%s may import only the rmt facade and cliflags, not %s (layer %d): expose what it needs through the facade or justify with an allow directive", p.Path, dep, depLayer)
				}
				continue
			}
			if !selfKnown {
				report(spec, "package %s has no layer assignment: add it to the layer map in internal/analysis/layering.go", p.Path)
				continue
			}
			if depLayer >= selfLayer {
				report(spec, "%s (layer %d) may not import %s (layer %d): imports must point strictly down the DAG", p.Path, selfLayer, dep, depLayer)
			}
		}
	}
	return out
}
