package analysis

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// hasIssue reports whether any issue matches the check name and, when
// msgPart is non-empty, contains it.
func hasIssue(issues []ProgramIssue, check, msgPart string) bool {
	for _, i := range issues {
		if i.Check == check && (msgPart == "" || strings.Contains(i.Msg, msgPart)) {
			return true
		}
	}
	return false
}

func checkNames(issues []ProgramIssue) []string {
	var names []string
	for _, i := range issues {
		names = append(names, i.Check)
	}
	return names
}

func TestVerifyCleanLoop(t *testing.T) {
	b := isa.NewBuilder("clean")
	b.Ldi(isa.R1, 100)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	p := b.MustFinish()
	if issues := VerifyProgram(p); len(issues) != 0 {
		t.Fatalf("clean program flagged: %v", issues)
	}
}

func TestVerifyUnreachableBlock(t *testing.T) {
	// BR skips one instruction that nothing else targets.
	p := &isa.Program{Name: "orphan", Code: []isa.Instr{
		{Op: isa.LDI, Rd: isa.R1, Imm: 5},
		{Op: isa.BR, Imm: 1},
		{Op: isa.ADDI, Rd: isa.R1, Ra: isa.R1, Imm: 1}, // orphaned
		{Op: isa.HALT},
	}}
	issues := VerifyProgram(p)
	if !hasIssue(issues, "unreachable", "pc 2..2") {
		t.Fatalf("want unreachable pc 2, got %v", issues)
	}
}

func TestVerifyUseBeforeDef(t *testing.T) {
	// R9 is read but written nowhere on any path.
	p := &isa.Program{Name: "undef", Code: []isa.Instr{
		{Op: isa.LDI, Rd: isa.R1, Imm: 5},
		{Op: isa.ADD, Rd: isa.R2, Ra: isa.R1, Rb: isa.R9},
		{Op: isa.HALT},
	}}
	issues := VerifyProgram(p)
	if !hasIssue(issues, "use-before-def", "r9") {
		t.Fatalf("want use-before-def of r9, got %v", issues)
	}
}

func TestVerifyLazyAccumulatorPasses(t *testing.T) {
	// The kernels' idiom: R2 is read before its first write on the first
	// iteration (architectural zero), but a loop path does write it — a
	// reaching definition exists, so this must NOT be flagged.
	b := isa.NewBuilder("lazy")
	b.Label("top")
	b.Addi(isa.R1, isa.R2, 1) // reads R2: zero on iteration one
	b.Addi(isa.R2, isa.R1, 1) // defines R2 for later iterations
	b.Br("top")
	p := b.MustFinish()
	if issues := VerifyProgram(p); len(issues) != 0 {
		t.Fatalf("lazy accumulator flagged: %v", issues)
	}
}

func TestVerifyBranchOutOfBounds(t *testing.T) {
	p := &isa.Program{Name: "oob", Code: []isa.Instr{
		{Op: isa.BR, Imm: 100},
	}}
	issues := VerifyProgram(p)
	if !hasIssue(issues, "branch-bounds", "outside code") {
		t.Fatalf("want branch-bounds, got %v", issues)
	}
}

func TestVerifyZeroWrite(t *testing.T) {
	p := &isa.Program{Name: "zw", Code: []isa.Instr{
		{Op: isa.LDI, Rd: isa.R1, Imm: 1},
		{Op: isa.ADD, Rd: isa.R31, Ra: isa.R1, Rb: isa.R1},
		{Op: isa.HALT},
	}}
	issues := VerifyProgram(p)
	if !hasIssue(issues, "zero-write", "r31") {
		t.Fatalf("want zero-write, got %v", issues)
	}
	// The return idiom — JMP discarding the link through R31 — is exempt.
	b := isa.NewBuilder("ret")
	b.Jsr(isa.R26, "fn")
	b.Halt()
	b.Label("fn")
	b.Ret(isa.R26)
	if issues := VerifyProgram(b.MustFinish()); hasIssue(issues, "zero-write", "") {
		t.Fatalf("JMP link discard flagged: %v", issues)
	}
}

func TestVerifyFallthrough(t *testing.T) {
	p := &isa.Program{Name: "fall", Code: []isa.Instr{
		{Op: isa.LDI, Rd: isa.R1, Imm: 1},
		{Op: isa.ADDI, Rd: isa.R1, Ra: isa.R1, Imm: 1}, // falls off the end
	}}
	issues := VerifyProgram(p)
	if !hasIssue(issues, "fallthrough", "falls off the end") {
		t.Fatalf("want fallthrough, got %v", issues)
	}
}

func TestVerifyOrphanedHalt(t *testing.T) {
	// An infinite loop whose only HALT nothing reaches.
	b := isa.NewBuilder("orphanhalt")
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Br("top")
	b.Halt() // orphaned exit
	p := b.MustFinish()
	issues := VerifyProgram(p)
	if !hasIssue(issues, "halt", "no reachable") {
		t.Fatalf("want orphaned-halt issue, got %v", issues)
	}
	if !hasIssue(issues, "unreachable", "") {
		t.Fatalf("want unreachable issue too, got %v", issues)
	}
}

func TestVerifyMemBounds(t *testing.T) {
	// Negative effective address from the zero register.
	p := &isa.Program{Name: "neg", Code: []isa.Instr{
		{Op: isa.LDQ, Rd: isa.R1, Ra: isa.R31, Imm: -8},
		{Op: isa.HALT},
	}}
	if issues := VerifyProgram(p); !hasIssue(issues, "mem-bounds", "wraps negative") {
		t.Fatalf("want negative-address issue, got %v", issues)
	}

	// A typo'd immediate sends a store beyond the 4 GiB data space.
	b := isa.NewBuilder("wild")
	b.Ldi(isa.R1, 1)
	b.Slli(isa.R1, isa.R1, 40)
	b.Stq(isa.R1, isa.R1, 0)
	b.Halt()
	if issues := VerifyProgram(b.MustFinish()); !hasIssue(issues, "mem-bounds", "4 GiB") {
		t.Fatalf("want 4GiB sanity issue, got %v", issues)
	}

	// With every store address statically known, a load outside the data
	// segment is flagged...
	b = isa.NewBuilder("seg")
	b.Ldi(isa.R1, 0x1000)
	b.Stq(isa.R1, isa.R1, 0) // segment extends to 0x1008 -> limit 0x2000
	b.Ldi(isa.R2, 0x100000)
	b.Ldq(isa.R3, isa.R2, 0) // far outside
	b.Halt()
	if issues := VerifyProgram(b.MustFinish()); !hasIssue(issues, "mem-bounds", "outside the program's data segment") {
		t.Fatalf("want data-segment issue, got %v", issues)
	}

	// ...but computed store addresses make the segment statically
	// invisible, so the soft check stands down (the kernels' case).
	b = isa.NewBuilder("dyn")
	b.Ldi(isa.R1, 0x1000)
	b.Ldq(isa.R4, isa.R1, 0) // load inside
	b.Add(isa.R2, isa.R1, isa.R4)
	b.Stq(isa.R1, isa.R2, 0) // computed store address
	b.Ldi(isa.R5, 0x100000)
	b.Ldq(isa.R6, isa.R5, 0) // would be outside a visible segment
	b.Halt()
	if issues := VerifyProgram(b.MustFinish()); hasIssue(issues, "mem-bounds", "") {
		t.Fatalf("soft segment check fired despite unknown stores: %v", issues)
	}
}

func TestVerifyJumpTableReachability(t *testing.T) {
	// Blocks reached only through a jump table in the data image must not
	// be reported unreachable.
	b := isa.NewBuilder("jt")
	const jt = 0x2000
	b.Ldi(isa.R1, jt)
	b.Ldq(isa.R2, isa.R1, 0)
	b.Jmp(isa.R31, isa.R2)
	b.Label("arm0")
	b.Halt()
	b.InitDataLabelTable(jt, "arm0")
	p := b.MustFinish()
	if issues := VerifyProgram(p); hasIssue(issues, "unreachable", "") {
		t.Fatalf("jump-table arm reported unreachable: %v", issues)
	}
}

func TestVerifyEmptyAndEntry(t *testing.T) {
	if issues := VerifyProgram(&isa.Program{Name: "empty"}); !hasIssue(issues, "entry", "empty") {
		t.Fatalf("want empty-program issue, got %v", issues)
	}
	p := &isa.Program{Name: "entry", Entry: 9, Code: []isa.Instr{{Op: isa.HALT}}}
	if issues := VerifyProgram(p); !hasIssue(issues, "entry", "entry 9") {
		t.Fatalf("want entry issue, got %v", issues)
	}
}

func TestVerifyEncodeIssue(t *testing.T) {
	p := &isa.Program{Name: "enc", Code: []isa.Instr{
		{Op: isa.Op(250)},
	}}
	issues := VerifyProgram(p)
	if !hasIssue(issues, "encode", "") {
		t.Fatalf("want encode issue, got %v", checkNames(issues))
	}
}
