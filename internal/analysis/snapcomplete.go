package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Snapcomplete guards the snapshot layer's completeness: a struct that
// participates in machine-state serialization must account for every one of
// its fields in both directions, or a field added later silently breaks the
// restored-run byte-identity invariant (the restored machine carries a
// stale value the snapshot never saw). The analyzer:
//
//  1. finds the package's serialization entry points — functions with a
//     *snap.Writer (encode) or *snap.Reader (decode) parameter, or that
//     construct one via snap.NewWriter/snap.NewReader;
//  2. closes each side over the package-local call graph, so helpers like
//     writeInst or instQueues contribute their field accesses;
//  3. takes as subjects the package-local structs appearing as a receiver
//     or parameter of an entry point on BOTH sides (encode-only or
//     decode-only structs have no round-trip contract to check);
//  4. requires every subject field to be referenced somewhere on each
//     side, or to carry a //rmtsnap:skip directive on or above the field
//     declaring it deliberately outside the snapshot (hooks, config
//     pointers, scratch state reset on restore).
//
// The check is syntactic and one-sided: a referenced field is not proven
// serialized, but an unreferenced one is proven forgotten — which is
// exactly the added-field hazard. Structs serialized from another package
// (e.g. vm.Outcome encoded by pipeline's writeOutcome) are outside the
// contract: the analyzer sees one package at a time.
var Snapcomplete = &Analyzer{
	Name: "snapcomplete",
	Doc:  "every snapshotted struct accounts for all its fields in both encode and decode, or skips them explicitly",
	Run:  runSnapcomplete,
}

func runSnapcomplete(p *Pass) []Diagnostic {
	if p.Pkg == nil || p.Info == nil {
		return nil
	}
	snapPath := ModPath + "/internal/snap"
	if p.Path == snapPath {
		return nil // the substrate itself has no snapshot contract
	}

	isSnapType := func(t types.Type, name string) bool {
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == snapPath && obj.Name() == name
	}
	// localStruct resolves t (through one pointer) to a package-local named
	// struct's TypeName, or nil.
	localStruct := func(t types.Type) *types.TypeName {
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		obj := named.Obj()
		if obj.Pkg() != p.Pkg {
			return nil
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return nil
		}
		return obj
	}

	// Pass 1 over every function: classify entry points, record the
	// package-local call graph and per-function field references.
	fns := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					fns[obj] = fd
				}
			}
		}
	}
	var encSeeds, decSeeds []types.Object
	calls := make(map[types.Object][]types.Object)
	fieldRefs := make(map[types.Object][]*types.Var)
	for obj, fd := range fns {
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		enc, dec := false, false
		for i := 0; i < sig.Params().Len(); i++ {
			t := sig.Params().At(i).Type()
			if isSnapType(t, "Writer") {
				enc = true
			}
			if isSnapType(t, "Reader") {
				dec = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			switch o := p.Info.Uses[id].(type) {
			case *types.Var:
				if o.IsField() {
					fieldRefs[obj] = append(fieldRefs[obj], o)
				}
			case *types.Func:
				if o.Pkg() == p.Pkg {
					if _, local := fns[o]; local {
						calls[obj] = append(calls[obj], o)
					}
				} else if o.Pkg() != nil && o.Pkg().Path() == snapPath {
					// Entry points that build their own codec (e.g.
					// Machine.Snapshot over snap.NewWriter).
					switch o.Name() {
					case "NewWriter":
						enc = true
					case "NewReader":
						dec = true
					}
				}
			}
			return true
		})
		if enc {
			encSeeds = append(encSeeds, obj)
		}
		if dec {
			decSeeds = append(decSeeds, obj)
		}
	}

	closure := func(seeds []types.Object) map[types.Object]bool {
		seen := make(map[types.Object]bool)
		stack := append([]types.Object(nil), seeds...)
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[fn] {
				continue
			}
			seen[fn] = true
			stack = append(stack, calls[fn]...)
		}
		return seen
	}
	coverage := func(reach map[types.Object]bool) map[*types.Var]bool {
		cov := make(map[*types.Var]bool)
		for fn := range reach {
			for _, v := range fieldRefs[fn] {
				cov[v] = true
			}
		}
		return cov
	}
	encReach, decReach := closure(encSeeds), closure(decSeeds)
	encCov, decCov := coverage(encReach), coverage(decReach)

	// Subjects: package-local structs a seed serializes directly, via its
	// receiver or a parameter — on both sides.
	subjectsOf := func(seeds []types.Object) map[*types.TypeName]bool {
		subj := make(map[*types.TypeName]bool)
		for _, fn := range seeds {
			sig := fn.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if tn := localStruct(recv.Type()); tn != nil {
					subj[tn] = true
				}
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if tn := localStruct(sig.Params().At(i).Type()); tn != nil {
					subj[tn] = true
				}
			}
		}
		return subj
	}
	encSubj, decSubj := subjectsOf(encSeeds), subjectsOf(decSeeds)

	// Walk struct declarations in source order (not subject-map order) so
	// findings emerge deterministically.
	var subjects []*types.TypeName
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if encSubj[tn] && decSubj[tn] {
					subjects = append(subjects, tn)
				}
			}
		}
	}

	var out []Diagnostic
	for _, tn := range subjects {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Name() == "_" {
				continue
			}
			encMiss, decMiss := !encCov[field], !decCov[field]
			if !encMiss && !decMiss {
				continue
			}
			pos := p.Fset.Position(field.Pos())
			if p.snapSkipped(pos) {
				continue
			}
			side := "encode/decode paths"
			switch {
			case encMiss && !decMiss:
				side = "encode path"
			case decMiss && !encMiss:
				side = "decode path"
			}
			out = append(out, Diagnostic{
				Pos:   pos,
				Check: "snapcomplete",
				Message: fmt.Sprintf("field %s.%s is not referenced on the snapshot %s: serialize it or mark it //rmtsnap:skip",
					tn.Name(), field.Name(), side),
			})
		}
	}
	return out
}
