package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism flags constructs that can make canonical output depend on
// anything but the simulation inputs: wall-clock reads, the process-global
// math/rand state, map iteration feeding formatted output or string
// building, and appends to captured slices from goroutines (completion
// order). The sweep engine's contract — byte-identical stdout at any
// parallelism — survives only if none of these reach the output path;
// legitimate diagnostics-only sites carry //rmtlint:allow determinism.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global randomness and iteration-order-dependent output",
	Run:  runDeterminism,
}

// fmtPrinters is the fmt formatting family whose output ordering matters.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// randConstructors are the math/rand functions that build local generators
// rather than touching process-global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Check:   "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name, ok := p.pkgCall(n); ok {
					switch {
					case pkg == "time" && name == "Now":
						report(n.Pos(), "time.Now: wall-clock must not influence canonical output")
					case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
						report(n.Pos(), "math/rand.%s uses process-global state; use a locally-seeded *rand.Rand", name)
					}
				}
			case *ast.RangeStmt:
				if t := p.typeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRangeBody(p, n, report)
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineAppends(p, lit, report)
				}
			}
			return true
		})
	}
	return out
}

// pkgCall matches a call of the form pkg.Name(...) where pkg is an imported
// package qualifier, returning the package's import path and the name.
func (p *Pass) pkgCall(call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	path := p.pkgNameOf(id)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// checkMapRangeBody flags output-building inside the body of a range over a
// map: the iteration order is randomized per run, so anything formatted or
// concatenated inside the loop is nondeterministic. Collecting into a slice
// and sorting first is the sanctioned idiom and is not flagged.
func checkMapRangeBody(p *Pass, rng *ast.RangeStmt, report func(token.Pos, string, ...any)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := p.pkgCall(n); ok && pkg == "fmt" && fmtPrinters[name] {
				report(n.Pos(), "fmt.%s inside map iteration: order is randomized; collect keys and sort first", name)
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isWriterMethod(sel.Sel.Name) {
				if t := p.typeOf(sel.X); t != nil && isStringBuilderLike(t) {
					report(n.Pos(), "%s.%s inside map iteration: order is randomized; collect keys and sort first",
						builderName(t), sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := p.typeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation inside map iteration: order is randomized; collect keys and sort first")
					}
				}
			}
		}
		return true
	})
}

func isWriterMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// isStringBuilderLike matches strings.Builder and bytes.Buffer receivers
// (optionally behind a pointer) — the string-building sinks whose content
// order is the output order.
func isStringBuilderLike(t types.Type) bool {
	return builderName(t) != ""
}

func builderName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	switch full {
	case "strings.Builder", "bytes.Buffer":
		return full
	}
	return ""
}

// checkGoroutineAppends flags `x = append(x, ...)` inside a go-statement
// function literal when x is captured from the enclosing scope: goroutine
// completion order then dictates element order. Index-assignment into a
// pre-sized slice (results[i] = v) is the deterministic idiom and passes.
func checkGoroutineAppends(p *Pass, lit *ast.FuncLit, report func(token.Pos, string, ...any)) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) || i >= len(asg.Lhs) {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok || p.Info == nil {
				continue
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				obj = p.Info.Defs[id]
			}
			if obj == nil {
				continue
			}
			// Captured iff declared outside the literal's body.
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				report(asg.Pos(), "append to captured %q inside a goroutine: completion order decides element order; index into a pre-sized slice instead", id.Name)
			}
		}
		return true
	})
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if p.Info == nil {
		return true
	}
	_, builtin := p.Info.Uses[id].(*types.Builtin)
	return builtin
}
