package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module from source, with no
// dependency on export data or external tooling: imports inside the module
// are resolved against the module directory and type-checked recursively;
// everything else (the standard library — the module has no third-party
// dependencies) is handled by the stdlib source importer.
type Loader struct {
	// ModRoot is the module root directory; ModPath its module path.
	ModRoot, ModPath string
	// Fset is shared across every package the loader touches.
	Fset *token.FileSet

	std   types.ImporterFrom
	cache map[string]*loaded
}

type loaded struct {
	pass *Pass
	err  error
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   make(map[string]*loaded),
	}
}

// Dir maps an import path inside the module to its directory.
func (l *Loader) Dir(path string) string {
	rel := strings.TrimPrefix(path, l.ModPath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// PathOf maps a directory inside the module to its import path.
func (l *Loader) PathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer for module-internal packages, recursing
// through the loader, and delegates the rest to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the package at the given module-internal
// import path. Results are memoized. Type errors are tolerated (the build
// tier reports them better); parse errors are not.
func (l *Loader) Load(path string) (*Pass, error) {
	if got, ok := l.cache[path]; ok {
		return got.pass, got.err
	}
	// Pre-claim the slot to fail fast on import cycles instead of
	// recursing forever (the layering analyzer reports the cycle's cause).
	l.cache[path] = &loaded{err: fmt.Errorf("analysis: import cycle through %s", path)}
	pass, err := l.load(path)
	l.cache[path] = &loaded{pass: pass, err: err}
	return pass, err
}

func (l *Loader) load(path string) (*Pass, error) {
	dir := l.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})
	return l.check(path, files)
}

// LoadSource type-checks a package given directly as file name -> source
// text. Tests use it to run analyzers over fixture programs without
// touching the filesystem.
func (l *Loader) LoadSource(path string, sources map[string]string) (*Pass, error) {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return l.check(path, files)
}

func (l *Loader) check(path string, files []*ast.File) (*Pass, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // best-effort: partial Info is enough
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return &Pass{
		Fset:  l.Fset,
		Path:  path,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}, nil
}

// ModuleRoot walks upward from dir to the nearest go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Packages lists every package directory under the module root (directories
// containing at least one non-test .go file), as import paths, sorted.
func (l *Loader) Packages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		path, err := l.PathOf(dir)
		if err != nil {
			return err
		}
		if len(paths) == 0 || paths[len(paths)-1] != path {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// WalkDir visits files of one directory consecutively, but dedupe
	// defensively in case of interleaving.
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}
