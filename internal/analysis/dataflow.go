package analysis

import (
	"math/bits"

	"repro/internal/isa"
)

// This file is the dataflow substrate under the ACE analysis (ace.go):
// a backward may-live register analysis over the program CFG, and a
// const-prop-bounded memory liveness pass that proves stores dead. Both
// reuse the CFG, register read/write sets and constant-propagation lattice
// the Layer-2 program verifier (progverify.go) already builds, so the
// verifier and the vulnerability analysis can never disagree about program
// structure.

// RegSet is a per-program-point register set in the regBits layout: bit r
// is integer register r, bit 32+r is floating-point register r. The
// hardwired-zero registers are never members — reading R31/F31 observes the
// constant zero, not stored state, so no fault in them can propagate.
type RegSet uint64

// LiveInt reports whether integer register r is in the set.
func (s RegSet) LiveInt(r isa.Reg) bool { return regBits(s)&(intBit<<r) != 0 }

// LiveFP reports whether floating-point register r is in the set.
func (s RegSet) LiveFP(r isa.Reg) bool { return regBits(s)&(fpBit<<r) != 0 }

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Liveness is the result of the backward may-live register analysis: for
// each program counter, the registers whose current value may still be read
// before being overwritten, on entry to (In) and exit from (Out) the
// instruction. A destination register absent from Out[pc] is dynamically
// dead at pc: the value the instruction writes is overwritten or abandoned
// on every path before any instruction reads it.
type Liveness struct {
	In  []RegSet
	Out []RegSet
	// Conservative is set when the program declares an interrupt handler:
	// the handler can run between any two instructions and reads arbitrary
	// interrupted state, so every register is treated as live everywhere
	// and nothing is provable.
	Conservative bool
}

// ComputeLiveness runs the backward may-live register analysis over a
// program. The program must pass the verifier's structural checks (encode,
// entry, branch-bounds) — AnalyzeProgram gates on that; calling this
// directly on a structurally broken program may panic on a wild target.
func ComputeLiveness(p *isa.Program) *Liveness {
	return computeLiveness(p, buildCFG(p))
}

func computeLiveness(p *isa.Program, cfg *progCFG) *Liveness {
	n := len(p.Code)
	lv := &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	if p.InterruptHandler != 0 {
		lv.Conservative = true
		for pc := range lv.In {
			lv.In[pc] = RegSet(allDefined)
			lv.Out[pc] = RegSet(allDefined)
		}
		return lv
	}
	use := make([]regBits, n)
	def := make([]regBits, n)
	for pc, ins := range p.Code {
		use[pc] = useBits(ins)
		def[pc] = defBit(ins)
	}
	preds := make([][]int, n)
	for pc, ss := range cfg.succs {
		for _, s := range ss {
			preds[s] = append(preds[s], pc)
		}
	}
	in := make([]regBits, n)
	out := make([]regBits, n)
	inWork := make([]bool, n)
	work := make([]int, 0, n)
	// Seed every pc in reverse order so backward facts propagate in few
	// passes; HALT and the last instruction have no successors, so their
	// live-out is empty (nothing observes the register file after the run).
	for pc := 0; pc < n; pc++ {
		work = append(work, pc)
		inWork[pc] = true
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		var o regBits
		for _, s := range cfg.succs[pc] {
			o |= in[s]
		}
		out[pc] = o
		newIn := use[pc] | (o &^ def[pc])
		if newIn == in[pc] {
			continue
		}
		in[pc] = newIn
		for _, pr := range preds[pc] {
			if !inWork[pr] {
				inWork[pr] = true
				work = append(work, pr)
			}
		}
	}
	for pc := range in {
		lv.In[pc] = RegSet(in[pc])
		lv.Out[pc] = RegSet(out[pc])
	}
	return lv
}

// useBits folds readRegs into a bitset, excluding the hardwired-zero
// registers: a read of R31/F31 observes the architectural constant, so it
// keeps no stored value alive.
func useBits(ins isa.Instr) regBits {
	var b regBits
	ints, fps := readRegs(ins)
	for _, r := range ints {
		if r != isa.ZeroReg {
			b |= intBit << r
		}
	}
	for _, r := range fps {
		if r != isa.ZeroReg {
			b |= fpBit << r
		}
	}
	return b
}

// MemLiveness is the result of the const-prop-bounded memory liveness
// analysis: which reachable stores write bytes that are provably never read
// before being fully overwritten. Note the distinction from register
// deadness: a dead store is architecturally benign, but its data and
// address still cross the sphere-of-replication boundary through the store
// comparator, so dead-store injection sites remain detection-ACE and are
// never pruned from fault campaigns. The list is exposed for profiling and
// kernel hygiene only.
type MemLiveness struct {
	// DeadStores are the PCs of reachable stores whose written span is
	// dead: on every path, the span is fully overwritten by a later store
	// before any load overlaps it and before the program can halt.
	DeadStores []int
	// Tracked counts the distinct (address, size) store spans constant
	// propagation resolved; untracked stores (varying address) are never
	// classified and never kill a tracked span.
	Tracked int
	// Conservative mirrors Liveness.Conservative: an interrupt handler
	// makes every span live everywhere.
	Conservative bool
}

// ComputeMemLiveness runs the memory liveness analysis over a program (see
// ComputeLiveness for the structural precondition).
func ComputeMemLiveness(p *isa.Program) *MemLiveness {
	cfg := buildCFG(p)
	return computeMemLiveness(p, cfg, reachable(p, cfg))
}

func computeMemLiveness(p *isa.Program, cfg *progCFG, reach []bool) *MemLiveness {
	ml := &MemLiveness{}
	if p.InterruptHandler != 0 {
		ml.Conservative = true
		return ml
	}
	n := len(p.Code)
	consts, seen := constFixpoint(p, cfg)

	// The span universe: every distinct (ea, size) a reachable cached store
	// writes through a statically-known address. Identical spans share one
	// bit — a later store to the same span is exactly the overwrite that
	// kills the earlier one.
	type span struct{ ea, size uint64 }
	index := map[span]int{}
	var spans []span
	storeSpan := make([]int, n)
	for pc := range storeSpan {
		storeSpan[pc] = -1
	}
	for pc, ins := range p.Code {
		if !reach[pc] || !seen[pc] || !ins.IsStore() || ins.IsUncached() {
			continue
		}
		base := consts[pc].get(ins.Ra)
		if !base.known {
			continue
		}
		sp := span{ea: base.v + uint64(ins.Imm), size: uint64(ins.MemBytes())}
		id, ok := index[sp]
		if !ok {
			id = len(spans)
			index[sp] = id
			spans = append(spans, sp)
		}
		storeSpan[pc] = id
	}
	ml.Tracked = len(spans)
	if len(spans) == 0 {
		return ml
	}

	overlaps := func(aEA, aSize, bEA, bSize uint64) bool {
		return aEA < bEA+bSize && bEA < aEA+aSize
	}
	covers := func(outerEA, outerSize, innerEA, innerSize uint64) bool {
		return outerEA <= innerEA && innerEA+innerSize <= outerEA+outerSize
	}

	words := (len(spans) + 63) / 64
	genAll := make([]uint64, words)
	for id := range spans {
		genAll[id/64] |= 1 << (id % 64)
	}
	// gen[pc]: spans whose bytes the instruction may read. kill[pc]: spans
	// the instruction fully overwrites. A load through a varying address may
	// read anything; HALT makes final memory observable, so it reads
	// everything too.
	gen := make([][]uint64, n)
	kill := make([][]uint64, n)
	for pc, ins := range p.Code {
		switch {
		case ins.Op == isa.HALT:
			gen[pc] = genAll
		case ins.IsLoad() && !ins.IsUncached():
			base := constVal{}
			if seen[pc] {
				base = consts[pc].get(ins.Ra)
			}
			if !base.known {
				gen[pc] = genAll
				continue
			}
			ea, size := base.v+uint64(ins.Imm), uint64(ins.MemBytes())
			g := make([]uint64, words)
			for id, sp := range spans {
				if overlaps(ea, size, sp.ea, sp.size) {
					g[id/64] |= 1 << (id % 64)
				}
			}
			gen[pc] = g
		case ins.IsStore() && !ins.IsUncached():
			if storeSpan[pc] < 0 {
				continue // varying address: writes something, kills nothing provably
			}
			sp := spans[storeSpan[pc]]
			k := make([]uint64, words)
			for id, other := range spans {
				if covers(sp.ea, sp.size, other.ea, other.size) {
					k[id/64] |= 1 << (id % 64)
				}
			}
			kill[pc] = k
		}
	}

	preds := make([][]int, n)
	for pc, ss := range cfg.succs {
		for _, s := range ss {
			preds[s] = append(preds[s], pc)
		}
	}
	in := make([][]uint64, n)
	out := make([][]uint64, n)
	for pc := 0; pc < n; pc++ {
		in[pc] = make([]uint64, words)
		out[pc] = make([]uint64, words)
	}
	inWork := make([]bool, n)
	work := make([]int, 0, n)
	for pc := 0; pc < n; pc++ {
		work = append(work, pc)
		inWork[pc] = true
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		o := out[pc]
		for w := range o {
			o[w] = 0
		}
		for _, s := range cfg.succs[pc] {
			for w, v := range in[s] {
				o[w] |= v
			}
		}
		changed := false
		for w := range o {
			ni := o[w]
			if kill[pc] != nil {
				ni &^= kill[pc][w]
			}
			if gen[pc] != nil {
				ni |= gen[pc][w]
			}
			if ni != in[pc][w] {
				in[pc][w] = ni
				changed = true
			}
		}
		if !changed {
			continue
		}
		for _, pr := range preds[pc] {
			if !inWork[pr] {
				inWork[pr] = true
				work = append(work, pr)
			}
		}
	}

	for pc := 0; pc < n; pc++ {
		id := storeSpan[pc]
		if id < 0 {
			continue
		}
		if out[pc][id/64]&(1<<(id%64)) == 0 {
			ml.DeadStores = append(ml.DeadStores, pc)
		}
	}
	return ml
}
