package analysis_test

import (
	"testing"

	"repro/internal/program"
	"repro/rmt"
)

// TestEveryKernelVerifies is the Layer-2 half of `make lint` as a test:
// all 18 registered kernels — both suites — must pass the static program
// verifier clean, through the public facade.
func TestEveryKernelVerifies(t *testing.T) {
	names := program.Names()
	if len(names) == 0 {
		t.Fatal("no kernels registered")
	}
	for _, name := range names {
		issues, err := rmt.CheckKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, issue := range issues {
			t.Errorf("kernel %s: %s", name, issue)
		}
		if err := rmt.CheckProgram(program.MustBuild(name)); err != nil {
			t.Errorf("CheckProgram(%s): %v", name, err)
		}
	}
}

func TestCheckKernelUnknown(t *testing.T) {
	if _, err := rmt.CheckKernel("nonesuch"); err == nil {
		t.Fatal("want error for unknown kernel")
	}
}

func TestCheckProgramReportsIssues(t *testing.T) {
	p := program.MustBuild("gcc")
	// Orphan the entry path's first instruction target by truncating: a
	// malformed variant must produce a non-nil, multi-line error.
	p.Code = p.Code[:len(p.Code)-1]
	if err := rmt.CheckProgram(p); err == nil {
		t.Fatal("want error for truncated kernel")
	}
}
