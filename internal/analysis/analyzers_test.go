package analysis

import (
	"strings"
	"testing"
)

// runOn type-checks one fixture package given as source text and returns
// the surviving findings of the whole Layer-1 suite.
func runOn(t *testing.T, path string, src string) []Diagnostic {
	t.Helper()
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	pass, err := l.LoadSource(path, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return RunAnalyzers(pass, Analyzers())
}

func hasDiag(diags []Diagnostic, check, msgPart string) bool {
	for _, d := range diags {
		if d.Check == check && strings.Contains(d.Message, msgPart) {
			return true
		}
	}
	return false
}

func TestDeterminismTimeNow(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	if !hasDiag(diags, "determinism", "time.Now") {
		t.Fatalf("want time.Now finding, got %v", diags)
	}
}

func TestDeterminismAllowDirective(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import "time"

func stamp() int64 {
	return time.Now().UnixNano() //rmtlint:allow determinism — test fixture
}
`)
	if hasDiag(diags, "determinism", "time.Now") {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

func TestDeterminismGlobalRand(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import "math/rand"

func pick() int      { return rand.Intn(10) }
func local() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	if !hasDiag(diags, "determinism", "math/rand.Intn") {
		t.Fatalf("want global-rand finding, got %v", diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "rand.New") {
			t.Fatalf("local generator construction flagged: %v", d)
		}
	}
}

func TestDeterminismMapRangePrint(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import (
	"fmt"
	"sort"
	"strings"
)

func bad(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func good(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	if !hasDiag(diags, "determinism", "fmt.Printf inside map iteration") {
		t.Fatalf("want map-range print finding, got %v", diags)
	}
	if !hasDiag(diags, "determinism", "strings.Builder.WriteString inside map iteration") {
		t.Fatalf("want builder finding, got %v", diags)
	}
	if !hasDiag(diags, "determinism", "string concatenation inside map iteration") {
		t.Fatalf("want concat finding, got %v", diags)
	}
	// The collect-and-sort idiom in good() must survive: exactly the three
	// bad sites and nothing more.
	n := 0
	for _, d := range diags {
		if d.Check == "determinism" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("want exactly 3 determinism findings, got %d: %v", n, diags)
	}
}

func TestDeterminismGoroutineAppend(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import "sync"

func bad(jobs []func() int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, j()) // ordered by completion
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

func good(jobs []func() int) []int {
	out := make([]int, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := []int{j()}
			local = append(local, 0) // append to goroutine-local slice: fine
			out[i] = local[0]
		}()
	}
	wg.Wait()
	return out
}
`)
	if !hasDiag(diags, "determinism", `append to captured "out"`) {
		t.Fatalf("want goroutine-append finding, got %v", diags)
	}
	if hasDiag(diags, "determinism", `append to captured "local"`) {
		t.Fatalf("goroutine-local append flagged: %v", diags)
	}
}

func TestLayeringBackEdge(t *testing.T) {
	// isa is layer 0: importing the layer-2 pipeline is a back edge.
	diags := runOn(t, "repro/internal/isa", `
package isa

import _ "repro/internal/pipeline"
`)
	if !hasDiag(diags, "layering", "strictly down the DAG") {
		t.Fatalf("want layering finding, got %v", diags)
	}
}

func TestLayeringBinaryRestriction(t *testing.T) {
	diags := runOn(t, "repro/cmd/fixture", `
package main

import (
	_ "repro/internal/sim"
	_ "repro/rmt"
	_ "repro/internal/cliflags"
)

func main() {}
`)
	if !hasDiag(diags, "layering", "may import only the rmt facade") {
		t.Fatalf("want binary-restriction finding, got %v", diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "not repro/rmt") || strings.Contains(d.Message, "not repro/internal/cliflags") {
			t.Fatalf("facade/cliflags import flagged: %v", d)
		}
	}
}

func TestLayeringUnknownPackage(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import _ "repro/internal/nonesuch"
`)
	if !hasDiag(diags, "layering", "no layer assignment") {
		t.Fatalf("want unknown-package finding, got %v", diags)
	}
}

func TestSharedStatePackageVar(t *testing.T) {
	diags := runOn(t, "repro/internal/sim", `
package sim

import "errors"

var cache = map[string]int{}          // flagged
var ErrBadSpec = errors.New("bad")    // sentinel: exempt
var table = [4]int{1, 2, 3, 4}        //rmtlint:allow sharedstate — read-only fixture
`)
	if !hasDiag(diags, "sharedstate", "package-level var cache") {
		t.Fatalf("want sharedstate finding for cache, got %v", diags)
	}
	if hasDiag(diags, "sharedstate", "ErrBadSpec") {
		t.Fatalf("error sentinel flagged: %v", diags)
	}
	if hasDiag(diags, "sharedstate", "package-level var table") {
		t.Fatalf("allow directive did not suppress: %v", diags)
	}
}

func TestSharedStateToolingPackagesExempt(t *testing.T) {
	diags := runOn(t, "repro/internal/runner", `
package runner

var pool = map[string]int{}
`)
	if hasDiag(diags, "sharedstate", "") {
		t.Fatalf("tooling package flagged: %v", diags)
	}
}

// TestRepoIsClean runs the full Layer-1 suite over every package of the
// module — the same sweep `make lint` does — and requires zero findings,
// including stale suppression directives.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	paths, err := l.Packages()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pass, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		diags := RunAnalyzers(pass, Analyzers())
		diags = append(diags, pass.StaleDirectives()...)
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
