// Package analysis is the repo's static-analysis layer: the machinery behind
// `make lint` and cmd/rmtlint. It has two halves.
//
// Layer 1 analyzes the Go source of the simulator itself. Three analyzers
// enforce the invariants the paper's methodology rests on: Determinism (no
// wall-clock, global randomness, or iteration-order-dependent output on the
// canonical-stdout path), Layering (the package import DAG is the one
// DESIGN.md draws), and SharedState (no package-level mutable state in
// simulation packages — the class of bug behind the old exp.baseCache race).
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer / Pass / Diagnostic) but is self-contained: it builds with
// the standard library only, type-checking packages from source.
//
// Layer 2 analyzes programs written in the simulator's own ISA:
// VerifyProgram (progverify.go) builds a CFG for an isa.Program and checks
// branch targets, reachability, register def-before-use, hardwired-zero
// writes, statically-derivable memory bounds and halt structure. It is
// exposed publicly as rmt.CheckProgram and drives `rmtasm -check`.
//
// A finding at a site that is legitimate by design is suppressed with a
// directive comment on (or immediately above) the flagged line:
//
//	start := time.Now() //rmtlint:allow determinism — stderr-only timing
//
// The token after "allow" names the check; everything after it is the
// human justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding from a Layer-1 analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Check is the analyzer name ("determinism", "layering", "sharedstate");
	// it is the token an //rmtlint:allow directive must name to suppress
	// the finding.
	Check string
	// Message states the defect.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Analyzer is one Layer-1 check.
type Analyzer struct {
	// Name is the check name used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and returns its findings. Findings at
	// allowed sites are filtered by the framework, not by Run.
	Run func(p *Pass) []Diagnostic
}

// Pass carries one type-checked package through the analyzers.
type Pass struct {
	// Fset positions for Files.
	Fset *token.FileSet
	// Path is the package import path (e.g. "repro/internal/sim").
	Path string
	// Files are the package's non-test source files, with comments.
	Files []*ast.File
	// Pkg and Info hold the type-checking result. Info is best-effort:
	// loading tolerates type errors so the linter can still run on code
	// `go build` will reject with a better message.
	Pkg  *types.Package
	Info *types.Info

	// allows maps filename -> line -> allowed check name -> directive.
	allows map[string]map[int]map[string]*directive
	// skips maps filename -> line -> //rmtsnap:skip directive.
	skips map[string]map[int]*directive
	// dirs lists every directive in the package, for staleness reporting.
	dirs []*directive
}

// directive is one suppression comment, tracked so stale ones — directives
// that no longer suppress any finding — can be reported.
type directive struct {
	pos  token.Position
	text string // the directive as written ("rmtlint:allow determinism", "rmtsnap:skip")
	used bool
}

// DirectivePrefix introduces an allow directive inside a comment.
const DirectivePrefix = "rmtlint:allow"

// SkipDirectivePrefix marks a struct field as deliberately excluded from
// its struct's snapshot (see the snapcomplete analyzer).
const SkipDirectivePrefix = "rmtsnap:skip"

// scanDirectives indexes every //rmtlint:allow and //rmtsnap:skip directive
// by file and line.
func (p *Pass) scanDirectives() {
	p.allows = make(map[string]map[int]map[string]*directive)
	p.skips = make(map[string]map[int]*directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				pos := p.Fset.Position(c.Pos())
				switch {
				case strings.HasPrefix(text, DirectivePrefix):
					rest := strings.TrimSpace(text[len(DirectivePrefix):])
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					check := fields[0]
					d := &directive{pos: pos, text: DirectivePrefix + " " + check}
					p.dirs = append(p.dirs, d)
					byLine := p.allows[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]*directive)
						p.allows[pos.Filename] = byLine
					}
					set := byLine[pos.Line]
					if set == nil {
						set = make(map[string]*directive)
						byLine[pos.Line] = set
					}
					set[check] = d
				case strings.HasPrefix(text, SkipDirectivePrefix):
					d := &directive{pos: pos, text: SkipDirectivePrefix}
					p.dirs = append(p.dirs, d)
					byLine := p.skips[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]*directive)
						p.skips[pos.Filename] = byLine
					}
					byLine[pos.Line] = d
				}
			}
		}
	}
}

// allowed reports whether a finding of the given check at pos is suppressed
// by a directive on the same line or the line immediately above it (the
// latter supports a directive as a standalone comment over the site). A
// matching directive is marked used for staleness accounting.
func (p *Pass) allowed(check string, pos token.Position) bool {
	byLine := p.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d := byLine[line][check]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}

// snapSkipped reports whether a struct field at pos carries a
// //rmtsnap:skip directive on its line or the line above, marking the
// directive used.
func (p *Pass) snapSkipped(pos token.Position) bool {
	if p.allows == nil {
		p.scanDirectives()
	}
	byLine := p.skips[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d := byLine[line]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}

// StaleDirectives reports every directive in the package that suppressed no
// finding. Meaningful only after the full analyzer suite has run over the
// pass (an unused directive is only provably stale once every check that
// could consume it has reported).
func (p *Pass) StaleDirectives() []Diagnostic {
	var out []Diagnostic
	for _, d := range p.dirs {
		if d.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     d.pos,
			Check:   "stale-directive",
			Message: fmt.Sprintf("//%s suppresses no finding: remove the directive or restore what it justified", d.text),
		})
	}
	sortDiagnostics(out)
	return out
}

// typeOf returns the type of an expression, or nil when type information is
// unavailable (best-effort checking).
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" if it is not a package qualifier.
func (p *Pass) pkgNameOf(id *ast.Ident) string {
	if p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// Analyzers returns the Layer-1 suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Layering, SharedState, Snapshot, Snapcomplete}
}

// RunAnalyzers applies the given analyzers to one loaded package and returns
// the surviving (un-allowed) findings sorted by position.
func RunAnalyzers(p *Pass, analyzers []*Analyzer) []Diagnostic {
	if p.allows == nil {
		p.scanDirectives()
	}
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(p) {
			if p.allowed(d.Check, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
