package analysis

import (
	"fmt"
	"go/ast"
)

// SharedState flags package-level `var` declarations in simulation
// packages. Package state is shared by every concurrent simulation a sweep
// runs, so any of it that is written after init is a cross-run channel —
// exactly the class of bug behind the old exp.baseCache data race. All
// per-run state must hang off the Machine/run structs; the few intentional
// survivors (init-time registries, read-only lookup tables) carry an
// //rmtlint:allow sharedstate directive with a justification. Error
// sentinels (`var ErrX = errors.New(...)`) are the one built-in exemption.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "flag package-level mutable state in simulation packages",
	Run:  runSharedState,
}

// simPackages are the packages whose code executes inside (or aggregates)
// concurrent simulations. Tooling packages (runner, cliflags, analysis) are
// exempt: they hold no simulated state.
var simPackages = map[string]bool{
	ModPath + "/internal/isa":      true,
	ModPath + "/internal/vm":       true,
	ModPath + "/internal/program":  true,
	ModPath + "/internal/predict":  true,
	ModPath + "/internal/mem":      true,
	ModPath + "/internal/rmt":      true,
	ModPath + "/internal/pipeline": true,
	ModPath + "/internal/lockstep": true,
	ModPath + "/internal/sim":      true,
	ModPath + "/internal/trace":    true,
	ModPath + "/internal/fault":    true,
	ModPath + "/internal/exp":      true,
	ModPath + "/internal/stats":    true,
	ModPath + "/internal/metrics":  true,
	ModPath + "/rmt":               true,
}

func runSharedState(p *Pass) []Diagnostic {
	if !simPackages[p.Path] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" || isErrSentinel(name.Name, vs, i) {
						continue
					}
					out = append(out, Diagnostic{
						Pos:   p.Fset.Position(name.Pos()),
						Check: "sharedstate",
						Message: fmt.Sprintf("package-level var %s in simulation package %s: state shared across concurrent runs; move it onto the run's structs or justify with an allow directive",
							name.Name, p.Path),
					})
				}
			}
		}
	}
	return out
}

// isErrSentinel matches the `var ErrX = errors.New(...)` / fmt.Errorf idiom:
// written once at init, treated as immutable by convention.
func isErrSentinel(name string, vs *ast.ValueSpec, i int) bool {
	if len(name) < 3 || name[:3] != "Err" && name[:3] != "err" {
		return false
	}
	if i >= len(vs.Values) {
		return false
	}
	call, ok := vs.Values[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return (pkg.Name == "errors" && sel.Sel.Name == "New") ||
		(pkg.Name == "fmt" && sel.Sel.Name == "Errorf")
}
