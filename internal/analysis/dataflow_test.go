package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// maskedAt returns the masking reason recorded for pc, or "" when the site
// is potentially ACE (or has no destination-register site at all).
func maskedAt(prof *VulnerabilityProfile, pc int) string {
	for _, s := range prof.MaskedSites {
		if s.PC == pc {
			return s.Reason
		}
	}
	return ""
}

func analyze(t *testing.T, p *isa.Program) *VulnerabilityProfile {
	t.Helper()
	prof, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("AnalyzeProgram: %v", err)
	}
	return prof
}

func TestACEDeadWriteOverwritten(t *testing.T) {
	// pc0's r1 is overwritten at pc1 before any read: masked. pc1's r1
	// feeds the store: ACE.
	b := isa.NewBuilder("deadwrite")
	b.Ldi(isa.R1, 5) // pc0: dead
	b.Ldi(isa.R1, 7) // pc1: live (store data)
	b.Stq(isa.R1, isa.R31, 64)
	b.Halt()
	prof := analyze(t, b.MustFinish())
	if got := maskedAt(prof, 0); got != MaskedOverwritten {
		t.Errorf("pc0: got %q, want %q", got, MaskedOverwritten)
	}
	if got := maskedAt(prof, 1); got != "" {
		t.Errorf("pc1: got %q, want ACE", got)
	}
}

func TestACENeverRead(t *testing.T) {
	b := isa.NewBuilder("neverread")
	b.Ldi(isa.R2, 9) // pc0: no instruction reads r2
	b.Ldi(isa.R1, 7)
	b.Stq(isa.R1, isa.R31, 64)
	b.Halt()
	prof := analyze(t, b.MustFinish())
	if got := maskedAt(prof, 0); got != MaskedNeverRead {
		t.Errorf("pc0: got %q, want %q", got, MaskedNeverRead)
	}
}

func TestACELoopCarriedLiveRange(t *testing.T) {
	// The accumulator r2 is written inside the loop and read on the next
	// iteration (and by the store after exit): its write must stay ACE even
	// though no read follows it in straight-line order. The counter r1 is
	// dead after the loop exits but live across the back edge.
	b := isa.NewBuilder("loopcarried")
	b.Ldi(isa.R1, 100) // pc0
	b.Label("top")
	b.Addi(isa.R2, isa.R2, 1)  // pc1: loop-carried accumulator
	b.Addi(isa.R1, isa.R1, -1) // pc2: loop counter
	b.Bne(isa.R1, "top")       // pc3
	b.Stq(isa.R2, isa.R31, 64) // pc4
	b.Halt()
	prof := analyze(t, b.MustFinish())
	for pc := 0; pc <= 2; pc++ {
		if got := maskedAt(prof, pc); got != "" {
			t.Errorf("pc%d: got %q, want ACE (loop-carried)", pc, got)
		}
	}
	lv := ComputeLiveness(b.MustFinish())
	if !lv.Out[3].LiveInt(isa.R1) {
		t.Error("r1 must be live out of the back-edge branch")
	}
	if !lv.Out[3].LiveInt(isa.R2) {
		t.Error("r2 must be live out of the back-edge branch")
	}
	if lv.Out[4].LiveInt(isa.R1) || lv.Out[4].LiveInt(isa.R2) {
		t.Error("nothing is live after the final store")
	}
}

func TestACEZeroRegLink(t *testing.T) {
	// A JSR that discards its link through R31 writes nothing observable.
	b := isa.NewBuilder("zerolink")
	b.Jsr(isa.R31, "next") // pc0: link discarded
	b.Label("next")
	b.Halt()
	prof := analyze(t, b.MustFinish())
	if got := maskedAt(prof, 0); got != MaskedZeroReg {
		t.Errorf("pc0: got %q, want %q", got, MaskedZeroReg)
	}
}

func TestACEUnreachableSite(t *testing.T) {
	p := &isa.Program{Name: "orphan", Code: []isa.Instr{
		{Op: isa.LDI, Rd: isa.R1, Imm: 5},
		{Op: isa.BR, Imm: 1},
		{Op: isa.ADDI, Rd: isa.R1, Ra: isa.R1, Imm: 1}, // orphaned
		{Op: isa.STQ, Rd: isa.R1, Ra: isa.R31, Imm: 64},
		{Op: isa.HALT},
	}}
	prof := analyze(t, p)
	if got := maskedAt(prof, 2); got != MaskedUnreachable {
		t.Errorf("pc2: got %q, want %q", got, MaskedUnreachable)
	}
}

func TestACEConservativeWithInterruptHandler(t *testing.T) {
	// With a handler declared, nothing dataflow-based is provable: the
	// dead write from TestACEDeadWriteOverwritten must stay ACE.
	b := isa.NewBuilder("handler")
	b.Ldi(isa.R1, 5)
	b.Ldi(isa.R1, 7)
	b.Stq(isa.R1, isa.R31, 64)
	b.Br("spin")
	b.Label("spin")
	b.Br("spin")
	b.Label("isr")
	b.InterruptHandlerAt("isr")
	b.Jmp(isa.R31, isa.R30)
	prof := analyze(t, b.MustFinish())
	if !prof.Conservative {
		t.Fatal("handler program must analyze conservatively")
	}
	if got := maskedAt(prof, 0); got != "" {
		t.Errorf("pc0: got %q, want ACE under conservative analysis", got)
	}
}

func TestMemLivenessDeadStore(t *testing.T) {
	// The first store to [64,72) is fully overwritten by the second before
	// the load reads the slot: provably dead. The second store is read, and
	// the third is live into HALT (final memory is observable).
	b := isa.NewBuilder("deadstore")
	b.Ldi(isa.R1, 5)
	b.Stq(isa.R1, isa.R31, 64) // pc1: dead
	b.Ldi(isa.R2, 9)
	b.Stq(isa.R2, isa.R31, 64) // pc3: read by pc4
	b.Ldq(isa.R3, isa.R31, 64)
	b.Stq(isa.R3, isa.R31, 128) // pc5: live into HALT
	b.Halt()
	ml := ComputeMemLiveness(b.MustFinish())
	if !reflect.DeepEqual(ml.DeadStores, []int{1}) {
		t.Errorf("DeadStores = %v, want [1]", ml.DeadStores)
	}
	if ml.Tracked != 2 {
		t.Errorf("Tracked = %d, want 2 spans", ml.Tracked)
	}
}

func TestMemLivenessPartialOverwriteKeepsStoreLive(t *testing.T) {
	// A 1-byte store does not fully cover the 8-byte span, so the quad
	// store stays live for the later load.
	b := isa.NewBuilder("partial")
	b.Ldi(isa.R1, 5)
	b.Stq(isa.R1, isa.R31, 64) // pc1: NOT dead — only partially overwritten
	b.Stb(isa.R1, isa.R31, 64) // pc2: 1 byte
	b.Ldq(isa.R2, isa.R31, 64)
	b.Stq(isa.R2, isa.R31, 128)
	b.Halt()
	ml := ComputeMemLiveness(b.MustFinish())
	if len(ml.DeadStores) != 0 {
		t.Errorf("DeadStores = %v, want none", ml.DeadStores)
	}
}

// TestKernelProfilesGolden pins every registered kernel's vulnerability
// profile. A kernel edit that shifts its ACE fraction or masked-site list
// shows up as a golden diff; regenerate with `go test ./internal/analysis/
// -run Golden -update` after auditing the change.
func TestKernelProfilesGolden(t *testing.T) {
	names := program.Names()
	sort.Strings(names)
	profiles := make([]*VulnerabilityProfile, 0, len(names))
	for _, name := range names {
		p, err := program.Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		prof, err := AnalyzeProgram(p)
		if err != nil {
			t.Fatalf("analyze %s: %v", name, err)
		}
		prof.Name = name
		profiles = append(profiles, prof)
	}
	got, err := json.MarshalIndent(profiles, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "ace_profiles.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("kernel vulnerability profiles drifted from %s (rerun with -update after auditing):\ngot:\n%s", golden, got)
	}
}
