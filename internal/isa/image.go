package isa

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary program images. The container is deliberately minimal: a magic
// header, the entry points, the encoded code words, and the initial data
// blobs. rmtasm writes images with -o and reloads them with -bin; the
// static verifier (internal/analysis, rmtasm -check) runs on reloaded
// images exactly as on built-in kernels.
//
//	offset  size  field
//	0       8     magic "RMTBIN1\x00"
//	8       8     entry PC
//	16      8     interrupt handler PC (0 = none)
//	24      8     code length in words
//	32      8     data blob count
//	40      ...   code words, 8 B little-endian each (see Encode)
//	...           per blob: u64 addr, u64 byte length, then the bytes
//rmtlint:allow sharedstate — read-only file magic, written by no one
var imageMagic = [8]byte{'R', 'M', 'T', 'B', 'I', 'N', '1', 0}

// imageLimit caps code words and data bytes a reader will accept, so a
// corrupt header cannot ask for gigabytes.
const imageLimit = 1 << 24

// WriteImage serialises the program, data blobs in address order so the
// bytes are deterministic.
func WriteImage(w io.Writer, p *Program) error {
	var hdr [40]byte
	copy(hdr[:8], imageMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], p.Entry)
	binary.LittleEndian.PutUint64(hdr[16:], p.InterruptHandler)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(p.Code)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(p.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var word [8]byte
	for pc, ins := range p.Code {
		enc, err := Encode(ins)
		if err != nil {
			return fmt.Errorf("isa: %s pc=%d: %w", p.Name, pc, err)
		}
		binary.LittleEndian.PutUint64(word[:], uint64(enc))
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
	}
	addrs := make([]uint64, 0, len(p.Data))
	for addr := range p.Data {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		blob := p.Data[addr]
		var bh [16]byte
		binary.LittleEndian.PutUint64(bh[:], addr)
		binary.LittleEndian.PutUint64(bh[8:], uint64(len(blob)))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

// ReadImage deserialises a program image. Words that do not decode are an
// error — images are verified-on-load so a truncated or bit-flipped file
// cannot smuggle undefined instructions into the simulator.
func ReadImage(r io.Reader, name string) (*Program, error) {
	var hdr [40]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: %s: short image header: %w", name, err)
	}
	if [8]byte(hdr[:8]) != imageMagic {
		return nil, fmt.Errorf("isa: %s: not a program image (bad magic)", name)
	}
	p := &Program{
		Name:             name,
		Entry:            binary.LittleEndian.Uint64(hdr[8:]),
		InterruptHandler: binary.LittleEndian.Uint64(hdr[16:]),
	}
	codeLen := binary.LittleEndian.Uint64(hdr[24:])
	blobs := binary.LittleEndian.Uint64(hdr[32:])
	if codeLen > imageLimit || blobs > imageLimit {
		return nil, fmt.Errorf("isa: %s: implausible image header (code %d words, %d blobs)", name, codeLen, blobs)
	}
	p.Code = make([]Instr, codeLen)
	var word [8]byte
	for pc := range p.Code {
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return nil, fmt.Errorf("isa: %s: short code at pc=%d: %w", name, pc, err)
		}
		ins, err := Decode(Word(binary.LittleEndian.Uint64(word[:])))
		if err != nil {
			return nil, fmt.Errorf("isa: %s pc=%d: %w", name, pc, err)
		}
		p.Code[pc] = ins
	}
	if blobs > 0 {
		p.Data = make(map[uint64][]byte, blobs)
	}
	for i := uint64(0); i < blobs; i++ {
		var bh [16]byte
		if _, err := io.ReadFull(r, bh[:]); err != nil {
			return nil, fmt.Errorf("isa: %s: short data blob header: %w", name, err)
		}
		addr := binary.LittleEndian.Uint64(bh[:])
		size := binary.LittleEndian.Uint64(bh[8:])
		if size > imageLimit {
			return nil, fmt.Errorf("isa: %s: implausible data blob (%d bytes)", name, size)
		}
		blob := make([]byte, size)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, fmt.Errorf("isa: %s: short data blob at %#x: %w", name, addr, err)
		}
		p.Data[addr] = blob
	}
	return p, nil
}
