package isa

import (
	"strings"
	"testing"
)

func TestBuilderBackwardBranch(t *testing.T) {
	b := NewBuilder("t")
	b.Ldi(R1, 3)
	b.Label("top")
	b.Addi(R1, R1, -1)
	b.Bne(R1, "top")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// bne at pc=2 targeting pc=1 -> imm = 1 - 2 - 1 = -2.
	if p.Code[2].Imm != -2 {
		t.Errorf("backward branch imm = %d, want -2", p.Code[2].Imm)
	}
	if p.Code[2].BranchTarget(2) != 1 {
		t.Errorf("target = %d, want 1", p.Code[2].BranchTarget(2))
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	b := NewBuilder("t")
	b.Beq(R1, "done") // pc 0
	b.Nop()           // pc 1
	b.Nop()           // pc 2
	b.Label("done")
	b.Halt() // pc 3
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Code[0].BranchTarget(0); got != 3 {
		t.Errorf("forward target = %d, want 3", got)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Br("nowhere")
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("expected duplicate-label error, got %v", err)
	}
}

func TestBuilderJsrAndRet(t *testing.T) {
	b := NewBuilder("t")
	b.Jsr(R26, "fn") // pc 0
	b.Halt()         // pc 1
	b.Label("fn")
	b.Ret(R26) // pc 2
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Code[0].BranchTarget(0); got != 2 {
		t.Errorf("jsr target = %d, want 2", got)
	}
	if p.Code[2].Op != JMP || p.Code[2].Ra != R26 || p.Code[2].Rd != R31 {
		t.Errorf("ret encoded as %v", p.Code[2])
	}
}

func TestBuilderInitData64(t *testing.T) {
	b := NewBuilder("t")
	b.Halt()
	b.InitData64(0x1000, 0x1122334455667788, 42)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d := p.Data[0x1000]
	if len(d) != 16 {
		t.Fatalf("data len = %d, want 16", len(d))
	}
	if d[0] != 0x88 || d[7] != 0x11 {
		t.Errorf("little-endian layout wrong: % x", d[:8])
	}
	if d[8] != 42 {
		t.Errorf("second word low byte = %d, want 42", d[8])
	}
	if p.DataFootprint() != 16 {
		t.Errorf("footprint = %d, want 16", p.DataFootprint())
	}
}

func TestValidateCatchesWildBranch(t *testing.T) {
	p := &Program{Name: "bad", Code: []Instr{{Op: BR, Imm: 100}}}
	if err := p.Validate(); err == nil {
		t.Error("expected out-of-range branch error")
	}
}

func TestValidateCatchesBadEntry(t *testing.T) {
	p := &Program{Name: "bad", Code: []Instr{{Op: HALT}}, Entry: 5}
	if err := p.Validate(); err == nil {
		t.Error("expected bad entry error")
	}
}
