// Package isa defines the instruction set architecture executed by the
// simulator: a small, deterministic, Alpha-flavoured 64-bit RISC ISA with 32
// integer and 32 floating-point registers per thread (the 64 architectural
// registers per thread of the paper's Table 1).
//
// The ISA is intentionally simple — word-addressed instruction memory,
// byte-addressed data memory, register-register ALU ops, displacement
// addressing, PC-relative branches — but it is a real ISA: every instruction
// has full functional semantics (package vm), a binary encoding, an
// assembler (Builder) and a disassembler. All workloads in internal/program
// are written against it, and redundant-thread output comparison operates on
// the values it produces.
package isa

import "fmt"

// Reg names an architectural register. Integer registers are R0..R31 and
// floating-point registers are F0..F31. R31 and F31 always read as zero and
// ignore writes, following the Alpha convention.
type Reg uint8

// Integer register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31 // hardwired zero
)

// Floating-point register names. They share the Reg namespace with integer
// registers; FP opcodes interpret their operands as F-registers.
const (
	F0 Reg = iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31 // hardwired zero
)

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// ZeroReg is the hardwired-zero register index in both files.
	ZeroReg = 31
)

// Op is an operation code.
type Op uint8

// Operation codes. The groups matter to the timing model: the pipeline maps
// each group onto a functional-unit class and latency.
const (
	NOP Op = iota

	// Integer register-register ALU.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	CMPEQ
	CMPLT
	CMPLE
	CMPULT

	// Integer register-immediate ALU.
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	CMPEQI
	CMPLTI
	LDI // rd = imm (sign-extended 32-bit)

	// Memory. Addresses are Ra + Imm.
	LDQ // rd = mem64[ra+imm]
	STQ // mem64[ra+imm] = rd
	LDB // rd = zext(mem8[ra+imm])
	STB // mem8[ra+imm] = rd & 0xff

	// Floating point. Operands are F-registers holding float64 bit
	// patterns; compare results are written to an F-register as 0/1 so
	// they can feed FBEQ/FBNE-style tests via FTOI.
	FADD
	FSUB
	FMUL
	FDIV
	FSQRT
	FNEG
	FCMPEQ
	FCMPLT
	FCMPLE
	CVTQF // fd = float64(int64 ra)   (ra is an integer register)
	CVTFQ // rd = int64(float64 fa)   (rd is an integer register)
	ITOF  // fd = bits(ra)            (raw move int -> fp)
	FTOI  // rd = bits(fa)            (raw move fp -> int)
	FLDQ  // fd = mem64[ra+imm] as float bits (ra integer)
	FSTQ  // mem64[ra+imm] = bits(fd)

	// Control. Branch displacements are in instruction words relative to
	// the next instruction: target = pc + 1 + imm.
	BR  // unconditional PC-relative branch
	BEQ // taken if ra == 0
	BNE // taken if ra != 0
	BLT // taken if int64(ra) < 0
	BGE // taken if int64(ra) >= 0
	BGT // taken if int64(ra) > 0
	BLE // taken if int64(ra) <= 0
	JSR // rd = pc + 1; pc = pc + 1 + imm (direct call)
	JMP // rd = pc + 1; pc = ra (indirect jump / return)

	// Uncached (memory-mapped I/O) accesses. Side-effecting: a device read
	// consumes device state, so redundant threads must replicate the value
	// rather than read twice; an uncached store is performed exactly once,
	// after output comparison. Addresses are Ra + Imm into the I/O space.
	LDIO // rd = io[ra+imm] (uncached, side-effecting, non-speculative)
	STIO // io[ra+imm] = rd (uncached, performed once, non-speculative)

	// Miscellaneous.
	MB   // memory barrier: retires only after all older stores drain
	HALT // stop the thread

	numOps // sentinel
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

//rmtlint:allow sharedstate — read-only mnemonic table, written by no one
var opNames = [...]string{
	NOP: "nop",

	ADD:    "add",
	SUB:    "sub",
	MUL:    "mul",
	DIV:    "div",
	MOD:    "mod",
	AND:    "and",
	OR:     "or",
	XOR:    "xor",
	SLL:    "sll",
	SRL:    "srl",
	SRA:    "sra",
	CMPEQ:  "cmpeq",
	CMPLT:  "cmplt",
	CMPLE:  "cmple",
	CMPULT: "cmpult",

	ADDI:   "addi",
	MULI:   "muli",
	ANDI:   "andi",
	ORI:    "ori",
	XORI:   "xori",
	SLLI:   "slli",
	SRLI:   "srli",
	SRAI:   "srai",
	CMPEQI: "cmpeqi",
	CMPLTI: "cmplti",
	LDI:    "ldi",

	LDQ: "ldq",
	STQ: "stq",
	LDB: "ldb",
	STB: "stb",

	FADD:   "fadd",
	FSUB:   "fsub",
	FMUL:   "fmul",
	FDIV:   "fdiv",
	FSQRT:  "fsqrt",
	FNEG:   "fneg",
	FCMPEQ: "fcmpeq",
	FCMPLT: "fcmplt",
	FCMPLE: "fcmple",
	CVTQF:  "cvtqf",
	CVTFQ:  "cvtfq",
	ITOF:   "itof",
	FTOI:   "ftoi",
	FLDQ:   "fldq",
	FSTQ:   "fstq",

	BR:  "br",
	BEQ: "beq",
	BNE: "bne",
	BLT: "blt",
	BGE: "bge",
	BGT: "bgt",
	BLE: "ble",
	JSR: "jsr",
	JMP: "jmp",

	LDIO: "ldio",
	STIO: "stio",

	MB:   "mb",
	HALT: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the opcode is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Class buckets opcodes by the pipeline resource they consume.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassFPAdd // add/sub/compare/convert/moves
	ClassFPMul
	ClassFPDiv // div and sqrt
	ClassBranch
	ClassJump
	ClassBarrier
	ClassHalt
)

//rmtlint:allow sharedstate — read-only opcode-class table, written by no one
var opClasses = [...]Class{
	NOP: ClassNop,

	ADD: ClassIntALU, SUB: ClassIntALU, AND: ClassIntALU, OR: ClassIntALU,
	XOR: ClassIntALU, SLL: ClassIntALU, SRL: ClassIntALU, SRA: ClassIntALU,
	CMPEQ: ClassIntALU, CMPLT: ClassIntALU, CMPLE: ClassIntALU, CMPULT: ClassIntALU,
	MUL: ClassIntMul, DIV: ClassIntDiv, MOD: ClassIntDiv,

	ADDI: ClassIntALU, ANDI: ClassIntALU, ORI: ClassIntALU, XORI: ClassIntALU,
	SLLI: ClassIntALU, SRLI: ClassIntALU, SRAI: ClassIntALU,
	CMPEQI: ClassIntALU, CMPLTI: ClassIntALU, LDI: ClassIntALU,
	MULI: ClassIntMul,

	LDQ: ClassLoad, LDB: ClassLoad, FLDQ: ClassLoad,
	STQ: ClassStore, STB: ClassStore, FSTQ: ClassStore,

	FADD: ClassFPAdd, FSUB: ClassFPAdd, FNEG: ClassFPAdd,
	FCMPEQ: ClassFPAdd, FCMPLT: ClassFPAdd, FCMPLE: ClassFPAdd,
	CVTQF: ClassFPAdd, CVTFQ: ClassFPAdd, ITOF: ClassFPAdd, FTOI: ClassFPAdd,
	FMUL: ClassFPMul,
	FDIV: ClassFPDiv, FSQRT: ClassFPDiv,

	BR: ClassBranch, BEQ: ClassBranch, BNE: ClassBranch, BLT: ClassBranch,
	BGE: ClassBranch, BGT: ClassBranch, BLE: ClassBranch,
	JSR: ClassJump, JMP: ClassJump,

	LDIO: ClassLoad,
	STIO: ClassStore,

	MB:   ClassBarrier,
	HALT: ClassHalt,
}

// ClassOf returns the resource class of an opcode.
func ClassOf(o Op) Class {
	if int(o) < len(opClasses) {
		return opClasses[o]
	}
	return ClassNop
}

// Instr is one decoded instruction. Rd is the destination (or the store data
// source for STQ/STB/FSTQ), Ra and Rb are sources, Imm is the immediate /
// displacement.
type Instr struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int64
}

// IsBranch reports whether the instruction is any control transfer.
func (i Instr) IsBranch() bool {
	c := ClassOf(i.Op)
	return c == ClassBranch || c == ClassJump
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Instr) IsCondBranch() bool {
	switch i.Op {
	case BEQ, BNE, BLT, BGE, BGT, BLE:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory.
func (i Instr) IsMem() bool {
	c := ClassOf(i.Op)
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether the instruction is a load.
func (i Instr) IsLoad() bool { return ClassOf(i.Op) == ClassLoad }

// IsStore reports whether the instruction is a store.
func (i Instr) IsStore() bool { return ClassOf(i.Op) == ClassStore }

// MemBytes returns the access width in bytes for memory instructions, 0
// otherwise.
func (i Instr) MemBytes() int {
	switch i.Op {
	case LDQ, STQ, FLDQ, FSTQ, LDIO, STIO:
		return 8
	case LDB, STB:
		return 1
	}
	return 0
}

// IsUncached reports whether the instruction is an uncached I/O access.
func (i Instr) IsUncached() bool { return i.Op == LDIO || i.Op == STIO }

// HasDest reports whether the instruction writes an architectural register.
func (i Instr) HasDest() bool {
	switch ClassOf(i.Op) {
	case ClassStore, ClassBranch, ClassBarrier, ClassHalt, ClassNop:
		return i.Op == JSR // JSR is ClassJump; branches never write
	case ClassJump:
		return true // JSR and JMP both write a link register (may be R31)
	}
	return true
}

// DestDiscarded reports whether the instruction writes a register but the
// destination is the hardwired zero of its file (R31/F31), so the value is
// architecturally dropped — a JSR discarding its link, or a write kept only
// for its side effects. Such writes can never be ACE: no later instruction
// can observe them.
func (i Instr) DestDiscarded() bool { return i.HasDest() && i.Rd == ZeroReg }

// DestIsFP reports whether the destination register is in the FP file.
func (i Instr) DestIsFP() bool {
	switch i.Op {
	case FADD, FSUB, FMUL, FDIV, FSQRT, FNEG, FCMPEQ, FCMPLT, FCMPLE,
		CVTQF, ITOF, FLDQ:
		return true
	}
	return false
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch ClassOf(i.Op) {
	case ClassNop, ClassBarrier, ClassHalt:
		return i.Op.String()
	case ClassLoad:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Ra)
	case ClassStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Ra)
	case ClassBranch:
		if i.Op == BR {
			return fmt.Sprintf("br %+d", i.Imm)
		}
		return fmt.Sprintf("%s r%d, %+d", i.Op, i.Ra, i.Imm)
	case ClassJump:
		if i.Op == JSR {
			return fmt.Sprintf("jsr r%d, %+d", i.Rd, i.Imm)
		}
		return fmt.Sprintf("jmp r%d, (r%d)", i.Rd, i.Ra)
	}
	switch i.Op {
	case LDI:
		return fmt.Sprintf("ldi r%d, %d", i.Rd, i.Imm)
	case ADDI, MULI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, CMPEQI, CMPLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
	}
}

// Encoding layout, most significant byte first:
//
//	bits 63..56 opcode
//	bits 55..48 rd
//	bits 47..40 ra
//	bits 39..32 rb
//	bits 31..0  imm (two's-complement 32-bit)
//
// Word is the fixed 64-bit binary form of an instruction.
type Word uint64

// ErrBadEncoding is returned by Decode for malformed words and by Encode for
// out-of-range fields.
type ErrBadEncoding struct {
	Word   Word
	Reason string
}

func (e *ErrBadEncoding) Error() string {
	return fmt.Sprintf("isa: bad encoding %#016x: %s", uint64(e.Word), e.Reason)
}

// Encode packs an instruction into its binary word form. It returns an error
// if any field is out of range.
func Encode(i Instr) (Word, error) {
	if !i.Op.Valid() {
		return 0, &ErrBadEncoding{Reason: fmt.Sprintf("invalid opcode %d", i.Op)}
	}
	if i.Rd >= NumIntRegs || i.Ra >= NumIntRegs || i.Rb >= NumIntRegs {
		return 0, &ErrBadEncoding{Reason: "register out of range"}
	}
	if i.Imm < -(1<<31) || i.Imm > (1<<31)-1 {
		return 0, &ErrBadEncoding{Reason: fmt.Sprintf("immediate %d out of 32-bit range", i.Imm)}
	}
	w := uint64(i.Op)<<56 | uint64(i.Rd)<<48 | uint64(i.Ra)<<40 | uint64(i.Rb)<<32 |
		uint64(uint32(int32(i.Imm)))
	return Word(w), nil
}

// MustEncode is like Encode but panics on error; for use with known-good
// instructions (e.g., from the Builder, which validates as it goes).
func MustEncode(i Instr) Word {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a binary word into an instruction.
func Decode(w Word) (Instr, error) {
	i := Instr{
		Op:  Op(w >> 56),
		Rd:  Reg(w >> 48),
		Ra:  Reg(w >> 40),
		Rb:  Reg(w >> 32),
		Imm: int64(int32(uint32(w))),
	}
	if !i.Op.Valid() {
		return Instr{}, &ErrBadEncoding{Word: w, Reason: fmt.Sprintf("invalid opcode %d", uint8(w>>56))}
	}
	if i.Rd >= NumIntRegs || i.Ra >= NumIntRegs || i.Rb >= NumIntRegs {
		return Instr{}, &ErrBadEncoding{Word: w, Reason: "register out of range"}
	}
	return i, nil
}

// BranchTarget computes the target PC of a direct control transfer located
// at pc. It is meaningful only for BR, conditional branches and JSR.
func (i Instr) BranchTarget(pc uint64) uint64 {
	return uint64(int64(pc) + 1 + i.Imm)
}
