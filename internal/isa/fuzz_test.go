// Fuzz battery for the RMTBIN1 loader: ReadImage consumes untrusted bytes
// (rmtasm -bin loads user files), so no input may panic it, hang it, or
// make it allocate unboundedly — corrupted headers, truncations and
// undecodable words must all come back as errors. The test lives in an
// external package so the seed corpus can be built from the registered
// kernels via internal/program without an import cycle.
package isa_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/isa"
	"repro/internal/progen"
	"repro/internal/program"
)

// kernelImages serialises every registered kernel plus a handful of
// generated ones — the well-formed half of the corpus. The generated
// images exercise loader paths the curated kernels cannot: larger data
// segments (the LCG window) and denser label-resolved branch forests.
func kernelImages(f *testing.F) [][]byte {
	var out [][]byte
	for _, name := range program.Names() {
		prog := program.MustBuild(name)
		var buf bytes.Buffer
		if err := isa.WriteImage(&buf, prog); err != nil {
			f.Fatalf("serialise %s: %v", name, err)
		}
		out = append(out, buf.Bytes())
	}
	for _, seed := range progen.CorpusSeeds(0xC0FFEE, 6) {
		var buf bytes.Buffer
		if err := isa.WriteImage(&buf, progen.Generate(seed).Prog); err != nil {
			f.Fatalf("serialise gen:%d: %v", seed, err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

func FuzzLoadImage(f *testing.F) {
	images := kernelImages(f)
	for _, img := range images {
		f.Add(img)
	}
	// Adversarial seeds steering the fuzzer at each validation branch.
	f.Add([]byte{})                          // empty
	f.Add([]byte("RMTBIN1\x00"))             // magic only, truncated header
	f.Add([]byte("NOTANIMG________epilogue")) // bad magic
	if len(images) > 0 {
		img := images[0]
		f.Add(img[:len(img)/2]) // truncated mid-code
		huge := append([]byte{}, img...)
		binary.LittleEndian.PutUint64(huge[24:], 1<<40) // implausible code length
		f.Add(huge)
		flipped := append([]byte{}, img...)
		if len(flipped) > 40 {
			flipped[47] ^= 0xFF // corrupt a code word's opcode byte
		}
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := isa.ReadImage(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejected: exactly what corrupt input should get
		}
		// Accepted images must be internally consistent and survive a
		// write/reload round trip with identical bytes.
		if uint64(len(p.Code)) > 1<<24 {
			t.Fatalf("accepted implausible code length %d", len(p.Code))
		}
		var rt bytes.Buffer
		if err := isa.WriteImage(&rt, p); err != nil {
			t.Fatalf("accepted image did not re-serialise: %v", err)
		}
		p2, err := isa.ReadImage(bytes.NewReader(rt.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("round-tripped image did not reload: %v", err)
		}
		var rt2 bytes.Buffer
		if err := isa.WriteImage(&rt2, p2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt.Bytes(), rt2.Bytes()) {
			t.Fatal("write/reload round trip is not a fixed point")
		}
	})
}
