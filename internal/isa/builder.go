package isa

import (
	"fmt"
	"sort"
)

// Program is an assembled instruction stream plus its initial data image.
// Instruction memory is word-addressed: the instruction at PC p is Code[p].
type Program struct {
	// Name identifies the workload (e.g., "gcc").
	Name string
	// Code is the instruction stream; entry point is PC 0 unless Entry is set.
	Code []Instr
	// Entry is the initial PC.
	Entry uint64
	// InterruptHandler is the PC interrupts vector to (0 = the program
	// takes no interrupts). Handlers return via JMP through R30, the
	// interrupt link register.
	InterruptHandler uint64
	// Data holds initial data memory contents keyed by byte address.
	Data map[uint64][]byte
}

// DataFootprint returns the total number of initialised data bytes.
func (p *Program) DataFootprint() int {
	n := 0
	for _, b := range p.Data {
		n += len(b)
	}
	return n
}

// Validate checks that every direct branch lands inside the code image and
// that all instructions encode.
func (p *Program) Validate() error {
	for pc, ins := range p.Code {
		if _, err := Encode(ins); err != nil {
			return fmt.Errorf("isa: %s pc=%d %v: %w", p.Name, pc, ins, err)
		}
		if ins.Op == BR || ins.IsCondBranch() || ins.Op == JSR {
			t := ins.BranchTarget(uint64(pc))
			if t >= uint64(len(p.Code)) {
				return fmt.Errorf("isa: %s pc=%d %v: branch target %d outside code (len %d)",
					p.Name, pc, ins, t, len(p.Code))
			}
		}
	}
	if p.Entry >= uint64(len(p.Code)) {
		return fmt.Errorf("isa: %s entry %d outside code (len %d)", p.Name, p.Entry, len(p.Code))
	}
	return nil
}

// Builder assembles a Program. It supports forward references through named
// labels; Finish resolves them and validates the result.
//
//	b := isa.NewBuilder("loop-demo")
//	b.Ldi(isa.R1, 100)
//	b.Label("top")
//	b.Addi(isa.R1, isa.R1, -1)
//	b.Bne(isa.R1, "top")
//	b.Halt()
//	prog, err := b.Finish()
type Builder struct {
	name   string
	code   []Instr
	labels map[string]uint64
	// fixups maps code index -> label for PC-relative patching.
	fixups map[int]string
	data   map[uint64][]byte
	// labelTables are jump tables to materialise in data memory at Finish.
	labelTables []labelTable
	// handlerLabel, when set, names the interrupt handler.
	handlerLabel string
	err          error
}

type labelTable struct {
	addr   uint64
	labels []string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]uint64),
		fixups: make(map[int]string),
		data:   make(map[uint64][]byte),
	}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return uint64(len(b.code)) }

// InterruptHandlerAt declares the label interrupts vector to.
func (b *Builder) InterruptHandlerAt(label string) {
	b.handlerLabel = label
}

// Label defines a label at the current PC. Defining the same label twice is
// an error reported by Finish.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(i Instr) {
	b.code = append(b.code, i)
}

// InitDataLabelTable writes the code addresses of the given labels as
// consecutive 64-bit words starting at addr (a jump table). Labels are
// resolved at Finish.
func (b *Builder) InitDataLabelTable(addr uint64, labels ...string) {
	cp := make([]string, len(labels))
	copy(cp, labels)
	b.labelTables = append(b.labelTables, labelTable{addr: addr, labels: cp})
}

// InitData sets initial data memory at addr. Overlapping regions are
// rejected by Finish.
func (b *Builder) InitData(addr uint64, bytes []byte) {
	cp := make([]byte, len(bytes))
	copy(cp, bytes)
	b.data[addr] = cp
}

// InitData64 writes a little-endian 64-bit value sequence starting at addr.
func (b *Builder) InitData64(addr uint64, vals ...uint64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putLE64(buf[i*8:], v)
	}
	b.InitData(addr, buf)
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// --- ALU ---

// Add emits rd = ra + rb.
func (b *Builder) Add(rd, ra, rb Reg) { b.Emit(Instr{Op: ADD, Rd: rd, Ra: ra, Rb: rb}) }

// Sub emits rd = ra - rb.
func (b *Builder) Sub(rd, ra, rb Reg) { b.Emit(Instr{Op: SUB, Rd: rd, Ra: ra, Rb: rb}) }

// Mul emits rd = ra * rb.
func (b *Builder) Mul(rd, ra, rb Reg) { b.Emit(Instr{Op: MUL, Rd: rd, Ra: ra, Rb: rb}) }

// Div emits rd = int64(ra) / int64(rb) (0 if rb == 0).
func (b *Builder) Div(rd, ra, rb Reg) { b.Emit(Instr{Op: DIV, Rd: rd, Ra: ra, Rb: rb}) }

// Mod emits rd = int64(ra) % int64(rb) (0 if rb == 0).
func (b *Builder) Mod(rd, ra, rb Reg) { b.Emit(Instr{Op: MOD, Rd: rd, Ra: ra, Rb: rb}) }

// And emits rd = ra & rb.
func (b *Builder) And(rd, ra, rb Reg) { b.Emit(Instr{Op: AND, Rd: rd, Ra: ra, Rb: rb}) }

// Or emits rd = ra | rb.
func (b *Builder) Or(rd, ra, rb Reg) { b.Emit(Instr{Op: OR, Rd: rd, Ra: ra, Rb: rb}) }

// Xor emits rd = ra ^ rb.
func (b *Builder) Xor(rd, ra, rb Reg) { b.Emit(Instr{Op: XOR, Rd: rd, Ra: ra, Rb: rb}) }

// Sll emits rd = ra << (rb & 63).
func (b *Builder) Sll(rd, ra, rb Reg) { b.Emit(Instr{Op: SLL, Rd: rd, Ra: ra, Rb: rb}) }

// Srl emits rd = ra >> (rb & 63) (logical).
func (b *Builder) Srl(rd, ra, rb Reg) { b.Emit(Instr{Op: SRL, Rd: rd, Ra: ra, Rb: rb}) }

// Sra emits rd = int64(ra) >> (rb & 63) (arithmetic).
func (b *Builder) Sra(rd, ra, rb Reg) { b.Emit(Instr{Op: SRA, Rd: rd, Ra: ra, Rb: rb}) }

// Cmpeq emits rd = (ra == rb) ? 1 : 0.
func (b *Builder) Cmpeq(rd, ra, rb Reg) { b.Emit(Instr{Op: CMPEQ, Rd: rd, Ra: ra, Rb: rb}) }

// Cmplt emits rd = (int64(ra) < int64(rb)) ? 1 : 0.
func (b *Builder) Cmplt(rd, ra, rb Reg) { b.Emit(Instr{Op: CMPLT, Rd: rd, Ra: ra, Rb: rb}) }

// Cmple emits rd = (int64(ra) <= int64(rb)) ? 1 : 0.
func (b *Builder) Cmple(rd, ra, rb Reg) { b.Emit(Instr{Op: CMPLE, Rd: rd, Ra: ra, Rb: rb}) }

// Cmpult emits rd = (ra < rb) ? 1 : 0 (unsigned).
func (b *Builder) Cmpult(rd, ra, rb Reg) { b.Emit(Instr{Op: CMPULT, Rd: rd, Ra: ra, Rb: rb}) }

// --- ALU immediate ---

// Ldi emits rd = imm.
func (b *Builder) Ldi(rd Reg, imm int64) { b.Emit(Instr{Op: LDI, Rd: rd, Imm: imm}) }

// Addi emits rd = ra + imm.
func (b *Builder) Addi(rd, ra Reg, imm int64) { b.Emit(Instr{Op: ADDI, Rd: rd, Ra: ra, Imm: imm}) }

// Muli emits rd = ra * imm.
func (b *Builder) Muli(rd, ra Reg, imm int64) { b.Emit(Instr{Op: MULI, Rd: rd, Ra: ra, Imm: imm}) }

// Andi emits rd = ra & imm.
func (b *Builder) Andi(rd, ra Reg, imm int64) { b.Emit(Instr{Op: ANDI, Rd: rd, Ra: ra, Imm: imm}) }

// Ori emits rd = ra | imm.
func (b *Builder) Ori(rd, ra Reg, imm int64) { b.Emit(Instr{Op: ORI, Rd: rd, Ra: ra, Imm: imm}) }

// Xori emits rd = ra ^ imm.
func (b *Builder) Xori(rd, ra Reg, imm int64) { b.Emit(Instr{Op: XORI, Rd: rd, Ra: ra, Imm: imm}) }

// Slli emits rd = ra << imm.
func (b *Builder) Slli(rd, ra Reg, imm int64) { b.Emit(Instr{Op: SLLI, Rd: rd, Ra: ra, Imm: imm}) }

// Srli emits rd = ra >> imm (logical).
func (b *Builder) Srli(rd, ra Reg, imm int64) { b.Emit(Instr{Op: SRLI, Rd: rd, Ra: ra, Imm: imm}) }

// Srai emits rd = int64(ra) >> imm.
func (b *Builder) Srai(rd, ra Reg, imm int64) { b.Emit(Instr{Op: SRAI, Rd: rd, Ra: ra, Imm: imm}) }

// Cmpeqi emits rd = (ra == imm) ? 1 : 0.
func (b *Builder) Cmpeqi(rd, ra Reg, imm int64) { b.Emit(Instr{Op: CMPEQI, Rd: rd, Ra: ra, Imm: imm}) }

// Cmplti emits rd = (int64(ra) < imm) ? 1 : 0.
func (b *Builder) Cmplti(rd, ra Reg, imm int64) { b.Emit(Instr{Op: CMPLTI, Rd: rd, Ra: ra, Imm: imm}) }

// --- Memory ---

// Ldq emits rd = mem64[ra+imm].
func (b *Builder) Ldq(rd, ra Reg, imm int64) { b.Emit(Instr{Op: LDQ, Rd: rd, Ra: ra, Imm: imm}) }

// Stq emits mem64[ra+imm] = rd.
func (b *Builder) Stq(rd, ra Reg, imm int64) { b.Emit(Instr{Op: STQ, Rd: rd, Ra: ra, Imm: imm}) }

// Ldb emits rd = zext(mem8[ra+imm]).
func (b *Builder) Ldb(rd, ra Reg, imm int64) { b.Emit(Instr{Op: LDB, Rd: rd, Ra: ra, Imm: imm}) }

// Stb emits mem8[ra+imm] = rd&0xff.
func (b *Builder) Stb(rd, ra Reg, imm int64) { b.Emit(Instr{Op: STB, Rd: rd, Ra: ra, Imm: imm}) }

// Ldio emits rd = io[ra+imm] (uncached device read).
func (b *Builder) Ldio(rd, ra Reg, imm int64) { b.Emit(Instr{Op: LDIO, Rd: rd, Ra: ra, Imm: imm}) }

// Stio emits io[ra+imm] = rd (uncached device write).
func (b *Builder) Stio(rd, ra Reg, imm int64) { b.Emit(Instr{Op: STIO, Rd: rd, Ra: ra, Imm: imm}) }

// Fldq emits fd = mem64[ra+imm] (float bits).
func (b *Builder) Fldq(fd, ra Reg, imm int64) { b.Emit(Instr{Op: FLDQ, Rd: fd, Ra: ra, Imm: imm}) }

// Fstq emits mem64[ra+imm] = bits(fd).
func (b *Builder) Fstq(fd, ra Reg, imm int64) { b.Emit(Instr{Op: FSTQ, Rd: fd, Ra: ra, Imm: imm}) }

// --- Floating point ---

// Fadd emits fd = fa + fb.
func (b *Builder) Fadd(fd, fa, fb Reg) { b.Emit(Instr{Op: FADD, Rd: fd, Ra: fa, Rb: fb}) }

// Fsub emits fd = fa - fb.
func (b *Builder) Fsub(fd, fa, fb Reg) { b.Emit(Instr{Op: FSUB, Rd: fd, Ra: fa, Rb: fb}) }

// Fmul emits fd = fa * fb.
func (b *Builder) Fmul(fd, fa, fb Reg) { b.Emit(Instr{Op: FMUL, Rd: fd, Ra: fa, Rb: fb}) }

// Fdiv emits fd = fa / fb.
func (b *Builder) Fdiv(fd, fa, fb Reg) { b.Emit(Instr{Op: FDIV, Rd: fd, Ra: fa, Rb: fb}) }

// Fsqrt emits fd = sqrt(fa).
func (b *Builder) Fsqrt(fd, fa Reg) { b.Emit(Instr{Op: FSQRT, Rd: fd, Ra: fa}) }

// Fneg emits fd = -fa.
func (b *Builder) Fneg(fd, fa Reg) { b.Emit(Instr{Op: FNEG, Rd: fd, Ra: fa}) }

// Fcmplt emits fd = (fa < fb) ? 1.0-bits : 0 — the result is an integer 0/1
// stored in the FP register file, extractable with Ftoi.
func (b *Builder) Fcmplt(fd, fa, fb Reg) { b.Emit(Instr{Op: FCMPLT, Rd: fd, Ra: fa, Rb: fb}) }

// Fcmple emits fd = (fa <= fb) ? 1 : 0 (as raw bits).
func (b *Builder) Fcmple(fd, fa, fb Reg) { b.Emit(Instr{Op: FCMPLE, Rd: fd, Ra: fa, Rb: fb}) }

// Fcmpeq emits fd = (fa == fb) ? 1 : 0 (as raw bits).
func (b *Builder) Fcmpeq(fd, fa, fb Reg) { b.Emit(Instr{Op: FCMPEQ, Rd: fd, Ra: fa, Rb: fb}) }

// Cvtqf emits fd = float64(int64(ra)); ra is an integer register.
func (b *Builder) Cvtqf(fd, ra Reg) { b.Emit(Instr{Op: CVTQF, Rd: fd, Ra: ra}) }

// Cvtfq emits rd = int64(fa); rd is an integer register.
func (b *Builder) Cvtfq(rd, fa Reg) { b.Emit(Instr{Op: CVTFQ, Rd: rd, Ra: fa}) }

// Itof emits fd = bits(ra) (raw move).
func (b *Builder) Itof(fd, ra Reg) { b.Emit(Instr{Op: ITOF, Rd: fd, Ra: ra}) }

// Ftoi emits rd = bits(fa) (raw move).
func (b *Builder) Ftoi(rd, fa Reg) { b.Emit(Instr{Op: FTOI, Rd: rd, Ra: fa}) }

// --- Control ---

func (b *Builder) branchTo(i Instr, label string) {
	b.fixups[len(b.code)] = label
	b.Emit(i)
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) { b.branchTo(Instr{Op: BR}, label) }

// Beq emits a branch to label taken if ra == 0.
func (b *Builder) Beq(ra Reg, label string) { b.branchTo(Instr{Op: BEQ, Ra: ra}, label) }

// Bne emits a branch to label taken if ra != 0.
func (b *Builder) Bne(ra Reg, label string) { b.branchTo(Instr{Op: BNE, Ra: ra}, label) }

// Blt emits a branch to label taken if int64(ra) < 0.
func (b *Builder) Blt(ra Reg, label string) { b.branchTo(Instr{Op: BLT, Ra: ra}, label) }

// Bge emits a branch to label taken if int64(ra) >= 0.
func (b *Builder) Bge(ra Reg, label string) { b.branchTo(Instr{Op: BGE, Ra: ra}, label) }

// Bgt emits a branch to label taken if int64(ra) > 0.
func (b *Builder) Bgt(ra Reg, label string) { b.branchTo(Instr{Op: BGT, Ra: ra}, label) }

// Ble emits a branch to label taken if int64(ra) <= 0.
func (b *Builder) Ble(ra Reg, label string) { b.branchTo(Instr{Op: BLE, Ra: ra}, label) }

// Jsr emits a direct call to label, writing the return PC to rd.
func (b *Builder) Jsr(rd Reg, label string) { b.branchTo(Instr{Op: JSR, Rd: rd}, label) }

// Jmp emits an indirect jump to the address in ra, writing the return PC to
// rd (use R31 to discard). Used for returns and jump tables.
func (b *Builder) Jmp(rd, ra Reg) { b.Emit(Instr{Op: JMP, Rd: rd, Ra: ra}) }

// Ret emits a return through ra.
func (b *Builder) Ret(ra Reg) { b.Jmp(R31, ra) }

// --- Misc ---

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(Instr{Op: NOP}) }

// Mb emits a memory barrier.
func (b *Builder) Mb() { b.Emit(Instr{Op: MB}) }

// Halt emits a thread-halt.
func (b *Builder) Halt() { b.Emit(Instr{Op: HALT}) }

// Finish resolves labels, validates and returns the assembled program.
func (b *Builder) Finish() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Resolve fixups deterministically (sorted by index) so error messages
	// are stable.
	idxs := make([]int, 0, len(b.fixups))
	for i := range b.fixups {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		label := b.fixups[i]
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at pc=%d", label, i)
		}
		b.code[i].Imm = int64(target) - int64(i) - 1
	}
	for _, lt := range b.labelTables {
		vals := make([]uint64, len(lt.labels))
		for i, l := range lt.labels {
			target, ok := b.labels[l]
			if !ok {
				return nil, fmt.Errorf("isa: undefined label %q in jump table at %#x", l, lt.addr)
			}
			vals[i] = target
		}
		b.InitData64(lt.addr, vals...)
	}
	// Reject overlapping data regions.
	type span struct{ lo, hi uint64 }
	var spans []span
	for addr, bytes := range b.data {
		spans = append(spans, span{addr, addr + uint64(len(bytes))})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return nil, fmt.Errorf("isa: overlapping data regions [%#x,%#x) and [%#x,%#x)",
				spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
	p := &Program{Name: b.name, Code: b.code, Data: b.data}
	if b.handlerLabel != "" {
		target, ok := b.labels[b.handlerLabel]
		if !ok {
			return nil, fmt.Errorf("isa: undefined interrupt handler label %q", b.handlerLabel)
		}
		p.InterruptHandler = target
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustFinish is Finish that panics on error, for statically-known programs.
func (b *Builder) MustFinish() *Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}
