package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: ADD, Rd: R1, Ra: R2, Rb: R3},
		{Op: LDI, Rd: R4, Imm: -12345},
		{Op: LDQ, Rd: R5, Ra: R6, Imm: 4096},
		{Op: STB, Rd: R7, Ra: R8, Imm: -1},
		{Op: BEQ, Ra: R9, Imm: -100},
		{Op: JSR, Rd: R26, Imm: 500},
		{Op: FADD, Rd: F1, Ra: F2, Rb: F3},
		{Op: MB},
		{Op: HALT},
		{Op: LDI, Rd: R0, Imm: (1 << 31) - 1},
		{Op: LDI, Rd: R0, Imm: -(1 << 31)},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %v, want %v", got, in)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Instr{
		{Op: Op(200)},
		{Op: ADD, Rd: 32},
		{Op: ADD, Ra: 33},
		{Op: ADD, Rb: 40},
		{Op: LDI, Imm: 1 << 31},
		{Op: LDI, Imm: -(1 << 31) - 1},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v): expected error", in)
		}
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(Word(uint64(numOps) << 56)); err == nil {
		t.Error("Decode of invalid opcode succeeded")
	}
	if _, err := Decode(Word(uint64(ADD)<<56 | uint64(63)<<48)); err == nil {
		t.Error("Decode of out-of-range register succeeded")
	}
}

// TestEncodeDecodeQuick property-tests that any valid instruction round-trips.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int32) bool {
		in := Instr{
			Op:  Op(op % uint8(numOps)),
			Rd:  Reg(rd % NumIntRegs),
			Ra:  Reg(ra % NumIntRegs),
			Rb:  Reg(rb % NumIntRegs),
			Imm: int64(imm),
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics property-tests the decoder against arbitrary words.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint64) bool {
		ins, err := Decode(Word(w))
		if err != nil {
			return true
		}
		// Anything that decodes must re-encode to the same word.
		w2, err := Encode(ins)
		return err == nil && uint64(w2) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBranchTarget(t *testing.T) {
	ins := Instr{Op: BEQ, Ra: R1, Imm: -3}
	if got := ins.BranchTarget(10); got != 8 {
		t.Errorf("BranchTarget(10) with imm -3 = %d, want 8", got)
	}
	fwd := Instr{Op: BR, Imm: 5}
	if got := fwd.BranchTarget(0); got != 6 {
		t.Errorf("BranchTarget(0) with imm 5 = %d, want 6", got)
	}
}

func TestInstrPredicates(t *testing.T) {
	checks := []struct {
		in                             Instr
		branch, cond, mem, load, store bool
		memBytes                       int
		hasDest                        bool
	}{
		{Instr{Op: ADD, Rd: R1}, false, false, false, false, false, 0, true},
		{Instr{Op: LDQ, Rd: R1}, false, false, true, true, false, 8, true},
		{Instr{Op: STB, Rd: R1}, false, false, true, false, true, 1, false},
		{Instr{Op: FSTQ, Rd: F1}, false, false, true, false, true, 8, false},
		{Instr{Op: BEQ, Ra: R1}, true, true, false, false, false, 0, false},
		{Instr{Op: BR}, true, false, false, false, false, 0, false},
		{Instr{Op: JSR, Rd: R26}, true, false, false, false, false, 0, true},
		{Instr{Op: JMP, Rd: R31, Ra: R26}, true, false, false, false, false, 0, true},
		{Instr{Op: MB}, false, false, false, false, false, 0, false},
		{Instr{Op: NOP}, false, false, false, false, false, 0, false},
	}
	for _, c := range checks {
		if got := c.in.IsBranch(); got != c.branch {
			t.Errorf("%v IsBranch = %v", c.in, got)
		}
		if got := c.in.IsCondBranch(); got != c.cond {
			t.Errorf("%v IsCondBranch = %v", c.in, got)
		}
		if got := c.in.IsMem(); got != c.mem {
			t.Errorf("%v IsMem = %v", c.in, got)
		}
		if got := c.in.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad = %v", c.in, got)
		}
		if got := c.in.IsStore(); got != c.store {
			t.Errorf("%v IsStore = %v", c.in, got)
		}
		if got := c.in.MemBytes(); got != c.memBytes {
			t.Errorf("%v MemBytes = %d", c.in, got)
		}
		if got := c.in.HasDest(); got != c.hasDest {
			t.Errorf("%v HasDest = %v", c.in, got)
		}
	}
}

func TestDestDiscarded(t *testing.T) {
	checks := []struct {
		in   Instr
		want bool
	}{
		{Instr{Op: JSR, Rd: R31, Ra: R3}, true},  // link discarded
		{Instr{Op: JSR, Rd: R26, Ra: R3}, false}, // link kept
		{Instr{Op: ADD, Rd: R31, Ra: R1}, true},  // computed into the sink
		{Instr{Op: ADD, Rd: R1, Ra: R2}, false},  // normal write
		{Instr{Op: STQ, Rd: R31, Ra: R1}, false}, // stores have no dest; Rd is data
		{Instr{Op: BEQ, Rd: R31, Ra: R1}, false}, // branches never write
		{Instr{Op: FADD, Rd: F31, Ra: F1}, true}, // FP sink (F31 aliases reg 31)
		{Instr{Op: FADD, Rd: F1, Ra: F2}, false},
	}
	for _, c := range checks {
		if got := c.in.DestDiscarded(); got != c.want {
			t.Errorf("%v DestDiscarded = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDestIsFP(t *testing.T) {
	if !(Instr{Op: FLDQ}).DestIsFP() {
		t.Error("FLDQ dest should be FP")
	}
	if (Instr{Op: LDQ}).DestIsFP() {
		t.Error("LDQ dest should be integer")
	}
	if (Instr{Op: CVTFQ}).DestIsFP() {
		t.Error("CVTFQ dest should be integer")
	}
	if !(Instr{Op: CVTQF}).DestIsFP() {
		t.Error("CVTQF dest should be FP")
	}
	if !(Instr{Op: FCMPLT}).DestIsFP() {
		t.Error("FCMPLT dest should be FP")
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if Op(250).String() != "op(250)" {
		t.Errorf("invalid op string: %q", Op(250).String())
	}
}

func TestClassCoverage(t *testing.T) {
	// Every defined op must have a class consistent with its predicates.
	for op := Op(1); op < numOps; op++ {
		in := Instr{Op: op}
		c := ClassOf(op)
		if in.IsLoad() != (c == ClassLoad) {
			t.Errorf("%v: load class mismatch", op)
		}
		if in.IsStore() != (c == ClassStore) {
			t.Errorf("%v: store class mismatch", op)
		}
	}
}
