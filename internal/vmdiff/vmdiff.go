// Package vmdiff is the differential harness for the batched functional
// execution engine: it drives an N-lane vm.Batch and N independent scalar
// oracle threads (decode-switch dispatch, the original interpreter) over
// the same program in lockstep. Every round it compares the full Outcome
// (which carries the destination write), control state (PC, Seq, halt and
// trap flags) and the pending-store byte count; full register-file sweeps
// run on a fixed cadence (SweepEvery rounds) and at each lane's halt, so
// the terminal state is always checked bit-for-bit while the per-round
// cost stays O(1) per lane — registers only change through destination
// writes, which the outcome compare covers, so the sweep cadence only
// bounds how long a write to the *wrong* register column could hide. An
// unobserved shadow batch runs alongside so the PC-grouped column fast
// path (taken only when no Observer is attached) is held to the same
// state identity. The sim and fault batteries and the FuzzBatchStep fuzz
// target all go through this harness, so "batch equals scalar" is checked
// in one place.
package vmdiff

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/progen"
	"repro/internal/vm"
)

// Options configure one lockstep comparison.
type Options struct {
	// Tolerant lets lanes whose PC leaves the code image trap instead of
	// panicking (fault-injection lanes need it: a corrupted jump target
	// can legitimately leave the image).
	Tolerant bool
	// IORead services uncached loads on the batch and every oracle.
	IORead func(addr uint64) uint64
	// Corrupt, when non-nil, supplies each lane's fault-injection hook
	// (shared by the lane and its oracle; nil return = fault-free lane).
	Corrupt func(lane int) vm.CorruptFunc
}

// Lockstep pairs a Batch with its per-lane scalar oracles. A second,
// unobserved Shadow batch rides along: with no Observer attached a batch
// round takes the PC-grouped column fast path instead of the per-lane
// handlers, and the shadow holds that path to the same bit-identity as the
// observed one (state only — an unobserved round materialises no
// outcomes). Shadow lanes share the observed lanes' corruption hooks,
// which is sound because hooks are required to be pure functions of their
// arguments.
type Lockstep struct {
	Batch   *vm.Batch
	Shadow  *vm.Batch
	Oracles []*vm.Thread

	// SweepEvery is the full register-file sweep cadence in rounds (halt
	// rounds always sweep). 1 restores the exhaustive every-round compare;
	// the default keeps long-kernel batteries affordable under -race.
	SweepEvery uint64

	outs  []vm.Outcome
	seen  []bool
	round uint64
}

// NewLockstep builds an n-lane batch and n scalar switch-dispatch oracle
// threads over prog, all overlaying one shared base memory holding the
// program's data image.
func NewLockstep(prog *isa.Program, n int, opts Options) *Lockstep {
	mem := vm.NewMemory()
	vm.Load(prog, mem)
	l := &Lockstep{
		Batch:      vm.NewBatch(prog, mem, n),
		Shadow:     vm.NewBatch(prog, mem, n),
		Oracles:    make([]*vm.Thread, n),
		SweepEvery: 64,
		outs:       make([]vm.Outcome, n),
		seen:       make([]bool, n),
	}
	l.Batch.Tolerant = opts.Tolerant
	l.Batch.IORead = opts.IORead
	l.Batch.Observer = func(lane int, out *vm.Outcome) {
		l.outs[lane] = *out
		l.seen[lane] = true
	}
	l.Shadow.Tolerant = opts.Tolerant
	l.Shadow.IORead = opts.IORead
	for i := 0; i < n; i++ {
		th := vm.NewThreadWith(i, prog, mem, vm.Config{Dispatch: vm.DispatchSwitch})
		th.Tolerant = opts.Tolerant
		th.IORead = opts.IORead
		if opts.Corrupt != nil {
			c := opts.Corrupt(i)
			th.Corrupt = c
			l.Batch.Corrupt[i] = c
			l.Shadow.Corrupt[i] = c
		}
		l.Oracles[i] = th
	}
	return l
}

// Round advances the batch and every live lane's oracle by one instruction
// and compares them, returning the number of live lanes and the first
// divergence found (nil when bit-equal). Outcome, control state and
// pending-byte counts are checked every round; the full register sweep
// runs every SweepEvery rounds and whenever a lane halts.
func (l *Lockstep) Round() (int, error) {
	for i := range l.seen {
		l.seen[i] = false
	}
	wasLive := make([]bool, l.Batch.N)
	for i := range wasLive {
		wasLive[i] = !l.Batch.Halted[i]
	}
	l.round++
	sweepRound := l.SweepEvery <= 1 || l.round%l.SweepEvery == 0
	live := l.Batch.Step()
	l.Shadow.Step()
	for i, th := range l.Oracles {
		if !wasLive[i] {
			continue // batch skips halted lanes; a halted oracle step is a state no-op
		}
		want := th.Step()
		if !l.seen[i] {
			return live, fmt.Errorf("vmdiff: lane %d: batch emitted no outcome at seq %d", i, want.Seq)
		}
		if want != l.outs[i] {
			return live, fmt.Errorf("vmdiff: lane %d seq %d: outcome diverged\noracle: %+v\nbatch:  %+v", i, want.Seq, want, l.outs[i])
		}
		sweep := sweepRound || l.Batch.Halted[i] || l.Shadow.Halted[i]
		if err := compareLane(l.Batch, "batch", i, th, sweep); err != nil {
			return live, err
		}
		if err := compareLane(l.Shadow, "shadow", i, th, sweep); err != nil {
			return live, err
		}
	}
	return live, nil
}

func compareLane(b *vm.Batch, label string, i int, th *vm.Thread, sweep bool) error {
	if th.PC != b.PC[i] || th.Seq != b.Seq[i] ||
		th.Halted != b.Halted[i] || th.Trapped != b.Trapped[i] {
		return fmt.Errorf("vmdiff: %s lane %d: control state diverged: oracle pc %d seq %d halted %v trapped %v, %s pc %d seq %d halted %v trapped %v",
			label, i, th.PC, th.Seq, th.Halted, th.Trapped, label, b.PC[i], b.Seq[i], b.Halted[i], b.Trapped[i])
	}
	if op, bp := th.Mem.PendingBytes(), b.Mem[i].PendingBytes(); op != bp {
		return fmt.Errorf("vmdiff: %s lane %d: overlay diverged: oracle %d pending bytes, got %d", label, i, op, bp)
	}
	if !sweep {
		return nil
	}
	for r := 0; r < isa.NumIntRegs; r++ {
		if th.IntReg[r] != b.IntReg[r][i] {
			return fmt.Errorf("vmdiff: %s lane %d: r%d = %#x, got %#x", label, i, r, th.IntReg[r], b.IntReg[r][i])
		}
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		if th.FPReg[r] != b.FPReg[r][i] {
			return fmt.Errorf("vmdiff: %s lane %d: f%d = %#x, got %#x", label, i, r, th.FPReg[r], b.FPReg[r][i])
		}
	}
	return nil
}

// Run drives rounds until every lane halts or maxRounds is reached,
// returning the first divergence (nil = bit-equal throughout).
func (l *Lockstep) Run(maxRounds uint64) error {
	for round := uint64(0); round < maxRounds; round++ {
		live, err := l.Round()
		if err != nil {
			return err
		}
		if live == 0 {
			return nil
		}
	}
	return nil
}

// laneCorrupt derives a deterministic per-lane single-bit-flavoured
// corruption hook from salt. Lane 0 is always fault-free — the campaign
// shape: one golden lane, injected siblings.
func laneCorrupt(salt uint64) func(lane int) vm.CorruptFunc {
	return func(lane int) vm.CorruptFunc {
		if lane == 0 {
			return nil
		}
		mix := salt ^ (uint64(lane) * 0x9E3779B97F4A7C15)
		return func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
			if (seq+mix)%13 == uint64(lane)%13 {
				return v ^ (1 << ((mix + uint64(point) + pc) % 64))
			}
			return v
		}
	}
}

// VerifyKernel locksteps one generated kernel: lane 0 fault-free, the
// remaining lanes under deterministic per-lane corruption, all compared
// against scalar oracles to HALT (or trap). maxRounds bounds runaway
// divergence; generated kernels declare a dynamic bound well below it.
func VerifyKernel(k *progen.Kernel, lanes int, salt uint64, maxRounds uint64) error {
	l := NewLockstep(k.Prog, lanes, Options{
		Tolerant: true, // corrupted jump targets may leave the image
		Corrupt:  laneCorrupt(salt),
	})
	if err := l.Run(maxRounds); err != nil {
		return fmt.Errorf("%s (salt %#x): %w", k.Prog.Name, salt, err)
	}
	return nil
}

// VerifyCorpus locksteps a whole generated corpus (the standard campaign
// corpus shape: CorpusSeeds(corpusSeed, kernels), each kernel batched over
// `lanes` lanes), returning the first divergence.
func VerifyCorpus(corpusSeed uint64, kernels, lanes int) error {
	for _, seed := range progen.CorpusSeeds(corpusSeed, kernels) {
		k := progen.Generate(seed)
		if err := VerifyKernel(k, lanes, seed, 4*k.MaxDynInstr+64); err != nil {
			return err
		}
	}
	return nil
}
