package vmdiff

import (
	"testing"

	"repro/internal/progen"
)

// corpusSeed mirrors the fixed-corpus constant the other batteries pin
// (internal/progen, internal/sim, EXPERIMENTS.md).
const corpusSeed = 0xC0FFEE

// TestVerifyCorpus locksteps a slice of the fixed corpus — the full
// 64-kernel battery lives in internal/sim's gen battery; this is the
// package's own fast gate.
func TestVerifyCorpus(t *testing.T) {
	if err := VerifyCorpus(corpusSeed, 8, 4); err != nil {
		t.Fatal(err)
	}
}

// TestLockstepDetectsDivergence: the harness must actually flag a batch
// whose lane state is perturbed out from under it — a harness that cannot
// fail proves nothing.
func TestLockstepDetectsDivergence(t *testing.T) {
	k := progen.Generate(progen.CorpusSeeds(corpusSeed, 1)[0])
	l := NewLockstep(k.Prog, 2, Options{})
	l.SweepEvery = 1 // every-round sweep: the strike must be seen before the program can overwrite it
	if _, err := l.Round(); err != nil {
		t.Fatalf("clean first round diverged: %v", err)
	}
	l.Batch.IntReg[3][1] ^= 1 << 17 // strike lane 1's r3 behind the oracle's back
	var err error
	for round := 0; round < int(4*k.MaxDynInstr); round++ {
		var live int
		live, err = l.Round()
		if err != nil || live == 0 {
			break
		}
	}
	if err == nil {
		t.Fatal("lockstep never flagged a perturbed lane")
	}
}

// FuzzBatchStep: for arbitrary (kernel seed, corruption salt, lane count),
// the SoA batch must stay bit-equal to N independent scalar oracle threads
// after every step. Run it under -race: the batch is single-goroutine by
// design, and the fuzzer doubles as a check that nothing in the hot loop
// shares state across lanes in a racy way.
func FuzzBatchStep(f *testing.F) {
	for i, seed := range progen.CorpusSeeds(corpusSeed, 8) {
		f.Add(seed, uint64(i)*0xD1B54A32D192ED03, uint8(i))
	}
	f.Fuzz(func(t *testing.T, seed, salt uint64, lanes uint8) {
		n := 1 + int(lanes%8)
		k := progen.Generate(seed)
		if err := VerifyKernel(k, n, salt, 4*k.MaxDynInstr+64); err != nil {
			t.Fatal(err)
		}
	})
}
