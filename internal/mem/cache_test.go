package mem

import (
	"testing"
	"testing/quick"
)

func flat(lat uint64) *FlatMemory { return &FlatMemory{Latency: lat} }

func small(next Level) *Cache {
	return NewCache(Config{
		Name: "t", SizeBytes: 1024, Ways: 2, BlockBytes: 64, HitLatency: 0,
	}, next)
}

func TestCacheMissThenHit(t *testing.T) {
	c := small(flat(100))
	done, hit := c.Lookup(0x40, 0)
	if hit || done != 100 {
		t.Fatalf("first access: done=%d hit=%v, want miss filling at 100", done, hit)
	}
	done, hit = c.Lookup(0x40, 200)
	if !hit || done != 200 {
		t.Fatalf("second access: done=%d hit=%v, want 0-latency hit", done, hit)
	}
	if c.Hits.Value() != 1 || c.Misses.Value() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits.Value(), c.Misses.Value())
	}
}

func TestCacheInFlightFillCombines(t *testing.T) {
	// A second access to a block still being filled must wait for the same
	// fill, not start another (MSHR behaviour).
	c := small(flat(100))
	c.Lookup(0x40, 0) // fill completes at 100
	done, hit := c.Lookup(0x48, 10)
	if !hit {
		t.Fatal("same-block access should hit the in-flight line")
	}
	if done != 100 {
		t.Fatalf("in-flight hit done=%d, want 100", done)
	}
	next := c.next.(*FlatMemory)
	if next.Accesses.Value() != 1 {
		t.Errorf("next-level accesses = %d, want 1", next.Accesses.Value())
	}
}

func TestCacheSameBlockDistinctAddresses(t *testing.T) {
	c := small(flat(10))
	c.Lookup(0x80, 0)
	if _, hit := c.Lookup(0xBF, 20); !hit {
		t.Error("last byte of the block should hit")
	}
	if _, hit := c.Lookup(0xC0, 20); hit {
		t.Error("next block should miss")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 1024/2/64 = 8 sets; addresses 64*8 apart share a set.
	c := small(flat(10))
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Lookup(a, 0)
	c.Lookup(b, 100) // set now holds {b, a}
	c.Lookup(a, 200) // touch a -> {a, b}
	c.Lookup(d, 300) // evicts b
	if _, hit := c.Lookup(a, 400); !hit {
		t.Error("a should still be resident (MRU)")
	}
	if _, hit := c.Lookup(b, 500); hit {
		t.Error("b should have been the LRU victim")
	}
}

func TestWayPredictionPenalty(t *testing.T) {
	cfg := Config{Name: "wp", SizeBytes: 1024, Ways: 2, BlockBytes: 64, HitLatency: 0, WayPredict: true}
	c := NewCache(cfg, flat(10))
	setStride := uint64(64 * 8)
	a, b := uint64(0), setStride
	c.Lookup(a, 0)
	c.Lookup(b, 100) // b becomes MRU/predicted
	done, hit := c.Lookup(a, 200)
	if !hit || done != 201 {
		t.Fatalf("way-mispredicted hit: done=%d hit=%v, want 201", done, hit)
	}
	if c.WayMispredicts.Value() != 1 {
		t.Errorf("way mispredicts = %d", c.WayMispredicts.Value())
	}
	// Retrained: immediate re-access costs nothing extra.
	if done, _ := c.Lookup(a, 300); done != 300 {
		t.Errorf("retrained access done=%d, want 300", done)
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// The 3 MB / 8-way / 64 B L2 of Table 1 has 6144 sets.
	c := NewCache(Config{Name: "l2", SizeBytes: 3 << 20, Ways: 8, BlockBytes: 64, HitLatency: 12}, flat(100))
	addrs := []uint64{0, 1 << 20, 3 << 20, 0xdeadbe00, 1<<43 | 0x40}
	for _, a := range addrs {
		c.Lookup(a, 0)
	}
	for _, a := range addrs {
		if _, hit := c.Lookup(a, 1000); !hit {
			t.Errorf("addr %#x should be resident", a)
		}
	}
}

func TestCacheQuickNoFalseHits(t *testing.T) {
	// Property: an address never accessed before must miss.
	c := NewCache(Config{Name: "q", SizeBytes: 4096, Ways: 4, BlockBytes: 64}, flat(10))
	seen := map[uint64]bool{}
	f := func(addr uint64) bool {
		block := addr >> 6
		_, hit := c.Lookup(addr, 0)
		if hit && !seen[block] {
			return false // false hit
		}
		seen[block] = true
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHierarchySharedL2(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h0 := NewHierarchy(cfg, nil)
	h1 := NewHierarchy(cfg, h0.L2)
	if h0.L2 != h1.L2 {
		t.Fatal("second hierarchy should share the first's L2")
	}
	// A block fetched through core 0's L1D lands in the shared L2; core
	// 1's L1D miss should then hit L2 (12 cycles, not memory's 100).
	h0.L1D.Access(0x1000, 0)
	done := h1.L1D.Access(0x1000, 1000)
	if done-1000 > cfg.L2Latency {
		t.Errorf("cross-core L2 hit took %d cycles, want <= %d", done-1000, cfg.L2Latency)
	}
}

func TestCheckerMissPenalty(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.CheckerMissPenalty = 8
	h := NewHierarchy(cfg, nil)
	done := h.L1D.Access(0x40, 0)
	want := cfg.L2Latency + cfg.MemLatency + 8
	if done != want {
		t.Errorf("Lock8 miss done=%d, want L2+mem+checker=%d", done, want)
	}
}

func TestMergeBufferCoalescing(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(), nil)
	mb := NewMergeBuffer(4, 64, h.L1D)
	if !mb.CanAccept(0x100, 0) {
		t.Fatal("empty buffer should accept")
	}
	mb.Accept(0x100, 0)
	mb.Accept(0x108, 0) // same block: coalesces
	if mb.Coalesced.Value() != 1 {
		t.Errorf("coalesced = %d, want 1", mb.Coalesced.Value())
	}
	if mb.Occupancy(0) != 1 {
		t.Errorf("occupancy = %d, want 1", mb.Occupancy(0))
	}
}

func TestMergeBufferCapacityAndExpiry(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(), nil)
	mb := NewMergeBuffer(2, 64, h.L1D)
	mb.Accept(0x000, 0)
	mb.Accept(0x100, 0)
	if mb.CanAccept(0x200, 0) {
		t.Fatal("full buffer accepted a third block")
	}
	if !mb.CanAccept(0x100, 0) {
		t.Fatal("full buffer must still coalesce into existing blocks")
	}
	// After the writes complete (memory latency), entries expire.
	late := uint64(10000)
	if !mb.CanAccept(0x200, late) {
		t.Error("entries should have expired")
	}
	if mb.Occupancy(late) != 0 {
		t.Errorf("occupancy = %d after expiry", mb.Occupancy(late))
	}
}
