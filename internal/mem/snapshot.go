package mem

import (
	"repro/internal/snap"
	"repro/internal/stats"
)

// Snapshot support for the memory hierarchy. Geometry (set counts, ways,
// block size, latencies) is configuration and is validated rather than
// restored: RestoreFrom targets a cache freshly built from the same Config,
// so only the replacement state, in-flight fills, way-predictor state, and
// counters travel. Way order within a set IS the MRU order, so serializing
// sets way-by-way reproduces replacement behavior exactly.

// SnapshotTo writes the cache's mutable state.
func (c *Cache) SnapshotTo(w *snap.Writer) {
	w.U64(c.nsets)
	w.Int(c.ways)
	for _, set := range c.sets {
		for _, l := range set {
			w.U64(l.tag)
			w.Bool(l.valid)
			w.U64(l.readyAt)
		}
	}
	for _, p := range c.predictedWay {
		w.Int(p)
	}
	w.U64(c.Hits.Value())
	w.U64(c.Misses.Value())
	w.U64(c.WayMispredicts.Value())
}

// RestoreFrom reads state written by SnapshotTo into an identically
// configured cache, latching a reader error on geometry mismatch.
func (c *Cache) RestoreFrom(r *snap.Reader) {
	if r.U64() != c.nsets || r.Int() != c.ways {
		r.Failf("cache %q geometry mismatch", c.name)
		return
	}
	for _, set := range c.sets {
		for i := range set {
			set[i].tag = r.U64()
			set[i].valid = r.Bool()
			set[i].readyAt = r.U64()
		}
	}
	for i := range c.predictedWay {
		c.predictedWay[i] = r.Int()
	}
	c.Hits = stats.Counter(r.U64())
	c.Misses = stats.Counter(r.U64())
	c.WayMispredicts = stats.Counter(r.U64())
}

// SnapshotTo writes the flat memory's access counter.
func (m *FlatMemory) SnapshotTo(w *snap.Writer) {
	w.U64(m.Accesses.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (m *FlatMemory) RestoreFrom(r *snap.Reader) {
	m.Accesses = stats.Counter(r.U64())
}

// SnapshotTo writes the merge buffer's slots (slot identity matters: Accept
// fills the first invalid slot, so position is behavior) and counters.
func (m *MergeBuffer) SnapshotTo(w *snap.Writer) {
	w.Int(len(m.slots))
	for _, s := range m.slots {
		w.U64(s.block)
		w.U64(s.done)
		w.Bool(s.valid)
	}
	w.Int(m.n)
	w.U64(m.Coalesced.Value())
	w.U64(m.Writes.Value())
}

// RestoreFrom reads state written by SnapshotTo into an identically sized
// merge buffer.
func (m *MergeBuffer) RestoreFrom(r *snap.Reader) {
	if r.Int() != len(m.slots) {
		r.Failf("merge buffer capacity mismatch")
		return
	}
	for i := range m.slots {
		m.slots[i].block = r.U64()
		m.slots[i].done = r.U64()
		m.slots[i].valid = r.Bool()
	}
	m.n = r.Int()
	m.Coalesced = stats.Counter(r.U64())
	m.Writes = stats.Counter(r.U64())
}
