// Package mem models the memory hierarchy outside the sphere of
// replication: L1 instruction and data caches (64 KB, 2-way, 64-byte blocks,
// with way prediction), a unified 3 MB 8-way L2, and a flat Rambus-like
// memory behind it, following the paper's Table 1.
//
// Timing is expressed as absolute completion cycles: Access(addr, now)
// returns the cycle at which the data is available. Fills are tracked
// per-line ("readyAt"), so overlapping accesses to an in-flight block
// combine instead of paying the miss twice (MSHR-style behaviour), and
// independent misses overlap freely — the pipeline provides the limit on
// outstanding accesses.
//
// For lockstepped operation the checker interposes on every off-core signal;
// MissExtra models that per-miss checker penalty (8 cycles for the paper's
// realistic Lock8 configuration).
package mem

import "repro/internal/stats"

// Level is anything that can service a block fetch: a next-level cache or
// memory.
type Level interface {
	// Access requests the block containing addr at cycle now and returns
	// the cycle the block is available.
	Access(addr uint64, now uint64) uint64
}

// FlatMemory is the bottom of the hierarchy: fixed-latency DRAM.
type FlatMemory struct {
	// Latency is the access latency in cycles.
	Latency uint64 //rmtsnap:skip — construction-time config, identical in every snapshot
	// Accesses counts block requests.
	Accesses stats.Counter
}

// Access implements Level.
func (m *FlatMemory) Access(addr uint64, now uint64) uint64 {
	m.Accesses.Inc()
	return now + m.Latency
}

type line struct {
	tag     uint64
	valid   bool
	readyAt uint64 // cycle at which an in-flight fill completes
}

// Cache is one set-associative cache level.
type Cache struct {
	name      string //rmtsnap:skip — construction-time config
	nsets     uint64
	blockBits uint //rmtsnap:skip — construction-time config
	ways      int
	hitLat    uint64 //rmtsnap:skip — construction-time config
	// MissExtra is added to every miss's fill time (lockstep checker
	// interposition penalty; 0 in all non-lockstepped configurations).
	MissExtra uint64 //rmtsnap:skip — construction-time config

	next Level //rmtsnap:skip — hierarchy wiring; the next level snapshots itself

	sets [][]line // sets[set][way], way 0 = MRU
	// predictedWay implements way prediction: a hit in a non-predicted way
	// costs one extra cycle and retrains the predictor.
	predictedWay []int
	wayPredict   bool //rmtsnap:skip — construction-time config

	Hits           stats.Counter
	Misses         stats.Counter
	WayMispredicts stats.Counter
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	HitLatency uint64
	WayPredict bool
}

// NewCache builds a cache over next. The set count (size / ways / block)
// need not be a power of two (the 3 MB L2 of Table 1 has 6144 sets); sets
// are indexed block-number-modulo-sets with the full block number as tag.
func NewCache(cfg Config, next Level) *Cache {
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	if nsets <= 0 {
		panic("mem: cache must have at least one set")
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockBytes {
		blockBits++
	}
	c := &Cache{
		name:         cfg.Name,
		nsets:        uint64(nsets),
		blockBits:    blockBits,
		ways:         cfg.Ways,
		hitLat:       cfg.HitLatency,
		next:         next,
		sets:         make([][]line, nsets),
		predictedWay: make([]int, nsets),
		wayPredict:   cfg.WayPredict,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// BlockBytes returns the block size.
func (c *Cache) BlockBytes() int { return 1 << c.blockBits }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	b := addr >> c.blockBits
	return b % c.nsets, b
}

// promote moves way w of set s to MRU position.
func (c *Cache) promote(s uint64, w int) {
	set := c.sets[s]
	l := set[w]
	copy(set[1:w+1], set[:w])
	set[0] = l
}

// Access implements Level: look up addr at cycle now, filling from the next
// level on a miss, and return the data-available cycle.
func (c *Cache) Access(addr uint64, now uint64) uint64 {
	done, _ := c.Lookup(addr, now)
	return done
}

// Lookup is Access plus a hit indication, letting the fetch engine tell a
// way-mispredict bubble (hit, done = now+1) from a real miss it must stall
// on.
func (c *Cache) Lookup(addr uint64, now uint64) (uint64, bool) {
	set, tag := c.index(addr)
	for w, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			c.Hits.Inc()
			extra := uint64(0)
			if c.wayPredict && c.predictedWay[set] != w {
				// Way misprediction: one retry cycle, retrain.
				c.WayMispredicts.Inc()
				extra = 1
			}
			c.promote(set, w)
			if c.wayPredict {
				c.predictedWay[set] = 0 // MRU after promote
			}
			done := now + c.hitLat + extra
			if l.readyAt > done {
				done = l.readyAt // fill still in flight
			}
			return done, true
		}
	}
	// Miss: fill from next level, install as MRU (evict LRU).
	c.Misses.Inc()
	fill := c.next.Access(addr, now+c.hitLat) + c.MissExtra
	set2 := c.sets[set]
	copy(set2[1:], set2[:len(set2)-1])
	set2[0] = line{tag: tag, valid: true, readyAt: fill}
	if c.wayPredict {
		c.predictedWay[set] = 0
	}
	return fill, false
}

// Probe reports whether addr currently hits without touching LRU state or
// counters (used by tests and by fetch-ahead heuristics).
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses / (hits + misses).
func (c *Cache) MissRate() float64 {
	total := c.Hits.Value() + c.Misses.Value()
	if total == 0 {
		return 0
	}
	return float64(c.Misses.Value()) / float64(total)
}

// Hierarchy bundles the per-core L1s with the shared L2 and memory.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem *FlatMemory
}

// HierarchyConfig carries the Table 1 memory-system parameters.
type HierarchyConfig struct {
	L1ISize, L1IWays     int
	L1DSize, L1DWays     int
	L2Size, L2Ways       int
	BlockBytes           int
	L1Latency, L2Latency uint64
	MemLatency           uint64
	// CheckerMissPenalty is added to every L1 miss (Lock8-style checker).
	CheckerMissPenalty uint64
}

// DefaultHierarchyConfig returns the paper's Table 1 memory parameters.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1ISize: 64 << 10, L1IWays: 2,
		L1DSize: 64 << 10, L1DWays: 2,
		L2Size: 3 << 20, L2Ways: 8,
		BlockBytes: 64,
		L1Latency:  0, // the pipeline's M stage covers the L1 hit time
		L2Latency:  12,
		MemLatency: 100,
	}
}

// NewHierarchy builds per-core L1s over a shared L2/memory. Pass the same
// *Cache L2 to share it between cores (CMP); pass nil l2 to build a private
// one from cfg.
func NewHierarchy(cfg HierarchyConfig, shared *Cache) *Hierarchy {
	var l2 *Cache
	var flat *FlatMemory
	if shared != nil {
		l2 = shared
	} else {
		flat = &FlatMemory{Latency: cfg.MemLatency}
		l2 = NewCache(Config{
			Name: "l2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways,
			BlockBytes: cfg.BlockBytes, HitLatency: cfg.L2Latency,
		}, flat)
	}
	h := &Hierarchy{
		L1I: NewCache(Config{
			Name: "l1i", SizeBytes: cfg.L1ISize, Ways: cfg.L1IWays,
			BlockBytes: cfg.BlockBytes, HitLatency: cfg.L1Latency, WayPredict: true,
		}, l2),
		L1D: NewCache(Config{
			Name: "l1d", SizeBytes: cfg.L1DSize, Ways: cfg.L1DWays,
			BlockBytes: cfg.BlockBytes, HitLatency: cfg.L1Latency,
		}, l2),
		L2:  l2,
		Mem: flat,
	}
	h.L1I.MissExtra = cfg.CheckerMissPenalty
	h.L1D.MissExtra = cfg.CheckerMissPenalty
	return h
}

// mergeEntry is one block-granularity write-combining entry.
type mergeEntry struct {
	block uint64
	done  uint64 // earliest drain cycle
	valid bool
}

// MergeBuffer models the coalescing merge buffer between the store queue and
// the data cache: a small write-combining buffer with a fixed number of
// block-granularity entries, draining one block write per cycle. The
// hardware is a 16-entry CAM, and the model matches: a fixed slot array
// searched linearly, which at this size is faster than a map and never
// allocates after construction.
type MergeBuffer struct {
	blockBits uint         //rmtsnap:skip — construction-time config
	slots     []mergeEntry // fixed length = capacity
	n         int
	dcache    *Cache //rmtsnap:skip — hierarchy wiring; the cache snapshots itself

	Coalesced stats.Counter
	Writes    stats.Counter
}

// NewMergeBuffer returns a merge buffer of capacity entries in front of d.
func NewMergeBuffer(capacity int, blockBytes int, d *Cache) *MergeBuffer {
	bb := uint(0)
	for 1<<bb < blockBytes {
		bb++
	}
	return &MergeBuffer{
		blockBits: bb,
		slots:     make([]mergeEntry, capacity),
		dcache:    d,
	}
}

// find returns the index of the valid slot holding block, or -1.
func (m *MergeBuffer) find(block uint64) int {
	for i := range m.slots {
		if m.slots[i].valid && m.slots[i].block == block {
			return i
		}
	}
	return -1
}

// CanAccept reports whether a store to addr can enter at cycle now.
func (m *MergeBuffer) CanAccept(addr uint64, now uint64) bool {
	m.expire(now)
	if m.find(addr>>m.blockBits) >= 0 {
		return true // coalesces into an existing entry
	}
	return m.n < len(m.slots)
}

// Accept enqueues a store to addr at cycle now. Callers must have checked
// CanAccept.
func (m *MergeBuffer) Accept(addr uint64, now uint64) {
	m.Writes.Inc()
	b := addr >> m.blockBits
	if m.find(b) >= 0 {
		m.Coalesced.Inc()
		return
	}
	// The block write reaches the data cache after the write completes;
	// model the cache fill (write-allocate) and hold the entry until then.
	done := m.dcache.Access(addr, now)
	for i := range m.slots {
		if !m.slots[i].valid {
			m.slots[i] = mergeEntry{block: b, done: done, valid: true}
			m.n++
			return
		}
	}
	panic("mem: merge buffer has no free slot despite not being full")
}

func (m *MergeBuffer) expire(now uint64) {
	for i := range m.slots {
		if m.slots[i].valid && m.slots[i].done <= now {
			m.slots[i] = mergeEntry{}
			m.n--
		}
	}
}

// Occupancy returns the number of live entries at cycle now.
func (m *MergeBuffer) Occupancy(now uint64) int {
	m.expire(now)
	return m.n
}
