package progen

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Profile is one kernel's characterisation: the workload-character axes
// the paper's evaluation turns on (branchiness, memory footprint, miss
// behaviour, exploitable ILP), measured by a full functional replay to
// the kernel's HALT. JSON field order is the corpus artifact format
// cmd/progen emits.
type Profile struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// StaticInstrs is the code size; DataBytes the initial image size.
	StaticInstrs int `json:"static_instrs"`
	DataBytes    int `json:"data_bytes"`
	// DynInstrs is the measured dynamic length (committed instructions to
	// HALT); DeclaredMaxDyn the generator's compositional bound, which
	// DynInstrs never exceeds.
	DynInstrs      uint64 `json:"dyn_instrs"`
	DeclaredMaxDyn uint64 `json:"declared_max_dyn"`
	// Instruction-mix fractions of the dynamic stream.
	LoadFrac   float64 `json:"load_frac"`
	StoreFrac  float64 `json:"store_frac"`
	BranchFrac float64 `json:"branch_frac"`
	FPFrac     float64 `json:"fp_frac"`
	// TakenRate is the fraction of conditional branches taken.
	TakenRate float64 `json:"taken_rate"`
	// FootprintLines counts distinct 64-byte lines touched; MissProxy is
	// distinct-lines / memory-accesses — the compulsory-miss-rate proxy
	// (an infinite cache's miss rate).
	FootprintLines int     `json:"footprint_lines"`
	MissProxy      float64 `json:"miss_proxy"`
	// ILP is DynInstrs divided by the length of the longest dynamic
	// dependence chain (registers and memory, unit latency) — the
	// speedup ceiling of an infinitely wide machine.
	ILP float64 `json:"ilp"`
}

// characterizeCap bounds a characterisation replay, far above any
// generated kernel's declared bound — a kernel that trips it is a
// generator bug, not a long workload.
const characterizeCap = 4 << 20

// Characterize replays the kernel functionally to its HALT and measures
// the profile. An error means the kernel overran its declared bound —
// the generator's halt guarantee failed.
func Characterize(k *Kernel) (*Profile, error) {
	memImg := vm.NewMemory()
	vm.Load(k.Prog, memImg)
	th := vm.NewThread(0, k.Prog, memImg)

	var loads, stores, branches, fp stats.Counter
	var taken stats.Mean
	lines := make(map[uint64]bool)
	var memRefs uint64

	// Dependence-depth scoreboard: depth[r] is the length of the chain
	// producing r's current value; the critical path is the max over all
	// writes. Memory carries chains through store->load at 8-byte grain.
	var intDepth, fpDepth [32]uint64
	memDepth := make(map[uint64]uint64)
	var critical uint64

	for !th.Halted {
		if th.Seq >= characterizeCap {
			return nil, fmt.Errorf("progen: %s did not halt within %d instructions (declared bound %d)",
				k.Prog.Name, uint64(characterizeCap), k.MaxDynInstr)
		}
		out := th.Step()
		ins := out.Instr
		switch {
		case ins.IsLoad():
			loads.Inc()
		case ins.IsStore():
			stores.Inc()
		case ins.IsBranch():
			branches.Inc()
		}
		if ins.IsCondBranch() {
			if out.Taken {
				taken.Add(1)
			} else {
				taken.Add(0)
			}
		}
		if isFPOp(ins.Op) {
			fp.Inc()
		}
		if ins.IsMem() && !ins.IsUncached() {
			memRefs++
			for a := out.Addr &^ 63; a < out.Addr+uint64(ins.MemBytes()); a += 64 {
				lines[a] = true
			}
		}
		depthStep(ins, out, &intDepth, &fpDepth, memDepth, &critical)
	}
	if th.Seq > k.MaxDynInstr {
		return nil, fmt.Errorf("progen: %s halted at %d dynamic instructions, beyond its declared bound %d",
			k.Prog.Name, th.Seq, k.MaxDynInstr)
	}

	dyn := th.Seq
	frac := func(c stats.Counter) float64 {
		if dyn == 0 {
			return 0
		}
		return float64(c.Value()) / float64(dyn)
	}
	p := &Profile{
		Name:           k.Prog.Name,
		Seed:           k.Seed,
		StaticInstrs:   len(k.Prog.Code),
		DataBytes:      k.Prog.DataFootprint(),
		DynInstrs:      dyn,
		DeclaredMaxDyn: k.MaxDynInstr,
		LoadFrac:       frac(loads),
		StoreFrac:      frac(stores),
		BranchFrac:     frac(branches),
		FPFrac:         frac(fp),
		TakenRate:      taken.Value(),
		FootprintLines: len(lines),
	}
	if memRefs > 0 {
		p.MissProxy = float64(len(lines)) / float64(memRefs)
	}
	if critical > 0 {
		p.ILP = float64(dyn) / float64(critical)
	}
	return p, nil
}

// isFPOp reports whether the op executes in the FP classes.
func isFPOp(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		return true
	}
	return false
}

// depthStep advances the dependence scoreboard by one committed
// instruction: the new chain depth is 1 past the deepest input (source
// registers, and the stored cell for loads).
func depthStep(ins isa.Instr, out vm.Outcome, intDepth, fpDepth *[32]uint64, memDepth map[uint64]uint64, critical *uint64) {
	readInt := func(r isa.Reg) uint64 {
		if r == isa.ZeroReg {
			return 0
		}
		return intDepth[r]
	}
	readFP := func(r isa.Reg) uint64 {
		if r == isa.ZeroReg {
			return 0
		}
		return fpDepth[r]
	}
	var d uint64
	maxIn := func(v uint64) {
		if v > d {
			d = v
		}
	}
	switch {
	case ins.Op == isa.LDI || ins.Op == isa.NOP || ins.Op == isa.MB || ins.Op == isa.HALT || ins.Op == isa.BR:
		// no register inputs
	case ins.IsCondBranch():
		maxIn(readInt(ins.Ra))
	case ins.Op == isa.JMP:
		maxIn(readInt(ins.Ra))
	case ins.IsStore():
		maxIn(readInt(ins.Ra)) // address
		if ins.Op == isa.FSTQ {
			maxIn(readFP(ins.Rd))
		} else {
			maxIn(readInt(ins.Rd))
		}
	case ins.IsLoad():
		maxIn(readInt(ins.Ra))
		if !ins.IsUncached() {
			maxIn(memDepth[out.Addr&^7])
		}
	case ins.Op == isa.CVTQF || ins.Op == isa.ITOF:
		maxIn(readInt(ins.Ra))
	case ins.Op == isa.CVTFQ || ins.Op == isa.FTOI || ins.Op == isa.FSQRT || ins.Op == isa.FNEG:
		maxIn(readFP(ins.Ra))
	case isFPOp(ins.Op):
		maxIn(readFP(ins.Ra))
		maxIn(readFP(ins.Rb))
	default: // integer ALU, reg-reg or immediate
		maxIn(readInt(ins.Ra))
		if !hasImmOperand(ins.Op) {
			maxIn(readInt(ins.Rb))
		}
	}
	d++
	if ins.IsStore() && !ins.IsUncached() {
		for a := out.Addr &^ 7; a < out.Addr+uint64(ins.MemBytes()); a += 8 {
			memDepth[a] = d
		}
	}
	if ins.HasDest() && ins.Rd != isa.ZeroReg {
		if ins.DestIsFP() {
			fpDepth[ins.Rd] = d
		} else {
			intDepth[ins.Rd] = d
		}
	}
	if d > *critical {
		*critical = d
	}
}

// hasImmOperand reports whether the integer-ALU op's second operand is
// the immediate rather than Rb.
func hasImmOperand(op isa.Op) bool {
	switch op {
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SLLI, isa.SRLI, isa.SRAI, isa.CMPEQI, isa.CMPLTI:
		return true
	}
	return false
}
