package progen

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Profile is one kernel's characterisation: the workload-character axes
// the paper's evaluation turns on (branchiness, memory footprint, miss
// behaviour, exploitable ILP), measured by a full functional replay to
// the kernel's HALT. JSON field order is the corpus artifact format
// cmd/progen emits.
type Profile struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// StaticInstrs is the code size; DataBytes the initial image size.
	StaticInstrs int `json:"static_instrs"`
	DataBytes    int `json:"data_bytes"`
	// DynInstrs is the measured dynamic length (committed instructions to
	// HALT); DeclaredMaxDyn the generator's compositional bound, which
	// DynInstrs never exceeds.
	DynInstrs      uint64 `json:"dyn_instrs"`
	DeclaredMaxDyn uint64 `json:"declared_max_dyn"`
	// Instruction-mix fractions of the dynamic stream.
	LoadFrac   float64 `json:"load_frac"`
	StoreFrac  float64 `json:"store_frac"`
	BranchFrac float64 `json:"branch_frac"`
	FPFrac     float64 `json:"fp_frac"`
	// TakenRate is the fraction of conditional branches taken.
	TakenRate float64 `json:"taken_rate"`
	// FootprintLines counts distinct 64-byte lines touched; MissProxy is
	// distinct-lines / memory-accesses — the compulsory-miss-rate proxy
	// (an infinite cache's miss rate).
	FootprintLines int     `json:"footprint_lines"`
	MissProxy      float64 `json:"miss_proxy"`
	// ILP is DynInstrs divided by the length of the longest dynamic
	// dependence chain (registers and memory, unit latency) — the
	// speedup ceiling of an infinitely wide machine.
	ILP float64 `json:"ilp"`
}

// characterizeCap bounds a characterisation replay, far above any
// generated kernel's declared bound — a kernel that trips it is a
// generator bug, not a long workload.
const characterizeCap = 4 << 20

// profiler accumulates one kernel's profile from its committed outcome
// stream. Both replay engines feed it identically — the measurement is a
// pure function of the outcome sequence, which the vm battery holds
// bit-equal across engines.
type profiler struct {
	loads, stores, branches, fp stats.Counter
	taken                       stats.Mean
	lines                       map[uint64]bool
	memRefs                     uint64

	// Dependence-depth scoreboard: depth[r] is the length of the chain
	// producing r's current value; the critical path is the max over all
	// writes. Memory carries chains through store->load at 8-byte grain.
	intDepth, fpDepth [32]uint64
	memDepth          map[uint64]uint64
	critical          uint64
}

func newProfiler() *profiler {
	return &profiler{
		lines:    make(map[uint64]bool),
		memDepth: make(map[uint64]uint64),
	}
}

// step accumulates one committed instruction. The outcome buffer may be
// reused by the caller; step copies what it keeps.
func (p *profiler) step(out *vm.Outcome) {
	ins := out.Instr
	switch {
	case ins.IsLoad():
		p.loads.Inc()
	case ins.IsStore():
		p.stores.Inc()
	case ins.IsBranch():
		p.branches.Inc()
	}
	if ins.IsCondBranch() {
		if out.Taken {
			p.taken.Add(1)
		} else {
			p.taken.Add(0)
		}
	}
	if isFPOp(ins.Op) {
		p.fp.Inc()
	}
	if ins.IsMem() && !ins.IsUncached() {
		p.memRefs++
		for a := out.Addr &^ 63; a < out.Addr+uint64(ins.MemBytes()); a += 64 {
			p.lines[a] = true
		}
	}
	p.depthStep(ins, out)
}

// finish folds the accumulated counters into the kernel's profile.
func (p *profiler) finish(k *Kernel, dyn uint64) *Profile {
	frac := func(c stats.Counter) float64 {
		if dyn == 0 {
			return 0
		}
		return float64(c.Value()) / float64(dyn)
	}
	prof := &Profile{
		Name:           k.Prog.Name,
		Seed:           k.Seed,
		StaticInstrs:   len(k.Prog.Code),
		DataBytes:      k.Prog.DataFootprint(),
		DynInstrs:      dyn,
		DeclaredMaxDyn: k.MaxDynInstr,
		LoadFrac:       frac(p.loads),
		StoreFrac:      frac(p.stores),
		BranchFrac:     frac(p.branches),
		FPFrac:         frac(p.fp),
		TakenRate:      p.taken.Value(),
		FootprintLines: len(p.lines),
	}
	if p.memRefs > 0 {
		prof.MissProxy = float64(len(p.lines)) / float64(p.memRefs)
	}
	if p.critical > 0 {
		prof.ILP = float64(dyn) / float64(p.critical)
	}
	return prof
}

// Characterize replays the kernel functionally to its HALT on the batched
// engine (a single-lane vm.Batch — predecode amortised, outcomes observed
// in place) and measures the profile. An error means the kernel overran
// its declared bound — the generator's halt guarantee failed.
// CharacterizeOracle is the same measurement on the scalar decode-switch
// engine; the two are byte-identical by construction and by test.
func Characterize(k *Kernel) (*Profile, error) {
	memImg := vm.NewMemory()
	vm.Load(k.Prog, memImg)
	b := vm.NewBatch(k.Prog, memImg, 1)
	p := newProfiler()
	b.Observer = func(_ int, out *vm.Outcome) { p.step(out) }

	for !b.Halted[0] {
		if b.Seq[0] >= characterizeCap {
			return nil, fmt.Errorf("progen: %s did not halt within %d instructions (declared bound %d)",
				k.Prog.Name, uint64(characterizeCap), k.MaxDynInstr)
		}
		b.Step()
	}
	if b.Seq[0] > k.MaxDynInstr {
		return nil, fmt.Errorf("progen: %s halted at %d dynamic instructions, beyond its declared bound %d",
			k.Prog.Name, b.Seq[0], k.MaxDynInstr)
	}
	return p.finish(k, b.Seq[0]), nil
}

// CharacterizeOracle replays the kernel on the scalar switch-dispatch
// thread — the differential oracle the batched Characterize is tested
// against.
func CharacterizeOracle(k *Kernel) (*Profile, error) {
	memImg := vm.NewMemory()
	vm.Load(k.Prog, memImg)
	th := vm.NewThreadWith(0, k.Prog, memImg, vm.Config{Dispatch: vm.DispatchSwitch})
	p := newProfiler()

	var out vm.Outcome
	for !th.Halted {
		if th.Seq >= characterizeCap {
			return nil, fmt.Errorf("progen: %s did not halt within %d instructions (declared bound %d)",
				k.Prog.Name, uint64(characterizeCap), k.MaxDynInstr)
		}
		th.StepInto(&out)
		p.step(&out)
	}
	if th.Seq > k.MaxDynInstr {
		return nil, fmt.Errorf("progen: %s halted at %d dynamic instructions, beyond its declared bound %d",
			k.Prog.Name, th.Seq, k.MaxDynInstr)
	}
	return p.finish(k, th.Seq), nil
}

// isFPOp reports whether the op executes in the FP classes.
func isFPOp(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		return true
	}
	return false
}

// depthStep advances the dependence scoreboard by one committed
// instruction: the new chain depth is 1 past the deepest input (source
// registers, and the stored cell for loads).
func (p *profiler) depthStep(ins isa.Instr, out *vm.Outcome) {
	readInt := func(r isa.Reg) uint64 {
		if r == isa.ZeroReg {
			return 0
		}
		return p.intDepth[r]
	}
	readFP := func(r isa.Reg) uint64 {
		if r == isa.ZeroReg {
			return 0
		}
		return p.fpDepth[r]
	}
	var d uint64
	maxIn := func(v uint64) {
		if v > d {
			d = v
		}
	}
	switch {
	case ins.Op == isa.LDI || ins.Op == isa.NOP || ins.Op == isa.MB || ins.Op == isa.HALT || ins.Op == isa.BR:
		// no register inputs
	case ins.IsCondBranch():
		maxIn(readInt(ins.Ra))
	case ins.Op == isa.JMP:
		maxIn(readInt(ins.Ra))
	case ins.IsStore():
		maxIn(readInt(ins.Ra)) // address
		if ins.Op == isa.FSTQ {
			maxIn(readFP(ins.Rd))
		} else {
			maxIn(readInt(ins.Rd))
		}
	case ins.IsLoad():
		maxIn(readInt(ins.Ra))
		if !ins.IsUncached() {
			maxIn(p.memDepth[out.Addr&^7])
		}
	case ins.Op == isa.CVTQF || ins.Op == isa.ITOF:
		maxIn(readInt(ins.Ra))
	case ins.Op == isa.CVTFQ || ins.Op == isa.FTOI || ins.Op == isa.FSQRT || ins.Op == isa.FNEG:
		maxIn(readFP(ins.Ra))
	case isFPOp(ins.Op):
		maxIn(readFP(ins.Ra))
		maxIn(readFP(ins.Rb))
	default: // integer ALU, reg-reg or immediate
		maxIn(readInt(ins.Ra))
		if !hasImmOperand(ins.Op) {
			maxIn(readInt(ins.Rb))
		}
	}
	d++
	if ins.IsStore() && !ins.IsUncached() {
		for a := out.Addr &^ 7; a < out.Addr+uint64(ins.MemBytes()); a += 8 {
			p.memDepth[a] = d
		}
	}
	if ins.HasDest() && ins.Rd != isa.ZeroReg {
		if ins.DestIsFP() {
			p.fpDepth[ins.Rd] = d
		} else {
			p.intDepth[ins.Rd] = d
		}
	}
	if d > p.critical {
		p.critical = d
	}
}

// hasImmOperand reports whether the integer-ALU op's second operand is
// the immediate rather than Rb.
func hasImmOperand(op isa.Op) bool {
	switch op {
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SLLI, isa.SRLI, isa.SRAI, isa.CMPEQI, isa.CMPLTI:
		return true
	}
	return false
}
