package progen

import (
	"encoding/json"
	"testing"
)

// TestCharacterizeMatchesOracle: the batched characterisation must produce
// byte-identical profiles to the scalar switch-dispatch oracle over the
// fixed 64-kernel corpus (the measurement is a pure function of the
// outcome stream, which the vm battery holds bit-equal across engines).
func TestCharacterizeMatchesOracle(t *testing.T) {
	for _, seed := range CorpusSeeds(corpusSeed, 64) {
		k := Generate(seed)
		batched, err := Characterize(k)
		if err != nil {
			t.Fatalf("%s: batched: %v", k.Prog.Name, err)
		}
		scalar, err := CharacterizeOracle(k)
		if err != nil {
			t.Fatalf("%s: oracle: %v", k.Prog.Name, err)
		}
		bj, err := json.Marshal(batched)
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(scalar)
		if err != nil {
			t.Fatal(err)
		}
		if string(bj) != string(sj) {
			t.Fatalf("%s: profiles diverged\nbatched: %s\noracle:  %s", k.Prog.Name, bj, sj)
		}
	}
}
