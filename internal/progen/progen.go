// Package progen is the workload engine: a seeded, deterministic random
// kernel generator whose output is verifier-clean by construction. Every
// generated program passes the static verifier (analysis.VerifyProgram /
// rmt.CheckProgram) and halts within a declared dynamic-instruction bound,
// because the generator only composes structures that discharge each check:
//
//   - Structured control flow only: counted loops with reserved counter
//     registers the loop body never writes, if/else diamonds whose arms
//     both rejoin, and a final reachable HALT. No indirect jumps, so
//     reachability and halt structure hold trivially.
//   - Every register a generated instruction reads is written first: the
//     preamble loads every working register (def-before-use), loop
//     counters are loaded at loop entry, and scratch registers are written
//     inside the item that reads them. R31/F31 are never destinations.
//   - Memory accesses land in a power-of-two data window that the initial
//     data image covers entirely: each access masks a 64-bit LCG register
//     into the window and adds the window base, so no effective address
//     can leave [base, base+window) — dynamically bounded even though the
//     verifier's constant propagation sees the addresses as varying.
//   - Loop trip counts are constants, so the total dynamic instruction
//     count is compositionally bounded: MaxDynInstr is computed from the
//     tree (worst-case arm of every diamond, declared trips of every
//     loop) while the program is built.
//
// Generated kernels are addressed by name — "gen:<seed>" — through Build,
// which falls through to the hand-written registry (internal/program) for
// every other name. The sim, fault-campaign and rmt facade layers resolve
// workloads through this package, so a generated kernel can appear
// anywhere a registry kernel can: single runs, multi-program CRT mixes,
// fault campaigns, and rmtd requests.
package progen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// NamePrefix marks generated-kernel names: "gen:<seed>" with the seed in
// canonical decimal.
const NamePrefix = "gen:"

// Name returns the canonical name of the generated kernel with this seed.
func Name(seed uint64) string { return NamePrefix + strconv.FormatUint(seed, 10) }

// ParseName extracts the seed from a generated-kernel name. Only the
// canonical spelling is accepted (decimal, no leading zeros, no sign), so
// each generated kernel has exactly one name — distinct names are distinct
// experiments for content-addressed caches.
func ParseName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, NamePrefix)
	if !ok {
		return 0, false
	}
	seed, err := strconv.ParseUint(s, 10, 64)
	if err != nil || s != strconv.FormatUint(seed, 10) {
		return 0, false
	}
	return seed, true
}

// IsGenerated reports whether name addresses a generated kernel.
func IsGenerated(name string) bool {
	_, ok := ParseName(name)
	return ok
}

// Build resolves a workload name: generated kernels by seed, everything
// else through the hand-written registry. This is the single resolution
// point the machine-building layers use.
func Build(name string) (*isa.Program, error) {
	if seed, ok := ParseName(name); ok {
		return Generate(seed).Prog, nil
	}
	return program.Build(name)
}

// MustBuild is Build that panics on unknown names.
func MustBuild(name string) *isa.Program {
	p, err := Build(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Known reports whether name resolves to a workload: a generated kernel or
// a registered one. Cheap (no program is assembled), for request
// validation.
func Known(name string) bool {
	if IsGenerated(name) {
		return true
	}
	_, err := program.Get(name)
	return err == nil
}

// Kernel is one generated workload.
type Kernel struct {
	// Seed drew every structural decision; Name(Seed) rebuilds it.
	Seed uint64
	// Prog is the assembled program (Prog.Name == Name(Seed)).
	Prog *isa.Program
	// MaxDynInstr is the declared halt bound: the kernel commits at most
	// this many dynamic instructions before its HALT retires, on every
	// run. Computed compositionally during generation (worst-case diamond
	// arms, declared loop trips), never measured.
	MaxDynInstr uint64
	// WindowBytes is the data window size; every load and store lands in
	// [windowBase, windowBase+WindowBytes).
	WindowBytes uint64
}

// CorpusSeeds derives n kernel seeds from one corpus seed (splitmix64), so
// test batteries can pin a whole corpus with a single recorded constant.
func CorpusSeeds(corpus uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := corpus
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = z ^ (z >> 31)
	}
	return out
}

// MixPairs draws n two-program mixes of generated kernels — the shape the
// paper's cross-coupled CRT configurations run.
func MixPairs(seed uint64, n int) [][2]string {
	r := rng(seed | 1)
	out := make([][2]string, n)
	for i := range out {
		a := r.next()
		b := r.next()
		if b == a {
			b = a + 1
		}
		out[i] = [2]string{Name(a), Name(b)}
	}
	return out
}

// MixQuads draws n four-program mixes — the 4-context SMT shape.
func MixQuads(seed uint64, n int) [][4]string {
	r := rng(seed | 1)
	out := make([][4]string, n)
	for i := range out {
		seen := map[uint64]bool{}
		for k := 0; k < 4; k++ {
			s := r.next()
			for seen[s] {
				s++
			}
			seen[s] = true
			out[i][k] = Name(s)
		}
	}
	return out
}

// rng is the xorshift64 generator every structural decision is drawn from.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// rangeN draws uniformly from [lo, hi].
func (r *rng) rangeN(lo, hi uint64) uint64 {
	return lo + r.next()%(hi-lo+1)
}

// Fixed register assignment. Working registers evolve freely; the address
// path (lcg, base, addr scratch) is disjoint from them so a working-value
// excursion (FP bits, compare results) can never form an address.
const (
	firstWorkInt = isa.R1  // working int registers: R1..R1+nInt-1
	condScratch  = isa.R12 // if/else condition values
	addrScratch  = isa.R13 // effective-address assembly
	cvtScratch   = isa.R14 // FP preamble integer staging
	lcgReg       = isa.R16 // address-stream LCG state
	baseReg      = isa.R17 // data window base
	loopReg0     = isa.R20 // loop counters: R20+depth, body loops
	outerReg     = isa.R26 // outer (sizing) loop counter
)

// windowBase is where the data window starts; the verifier's segment model
// starts at 4096, so the whole window is inside the initial data image.
const windowBase = 4096

// generation caps.
const (
	maxLoopDepth = 2 // nested counted loops inside the outer loop
	// targetDyn sizes the outer loop so kernels run long enough to fill
	// default test budgets before halting, drawn from [minTarget,
	// maxTarget].
	minTargetDyn = 60000
	maxTargetDyn = 150000
)

// gen carries one generation's state.
type gen struct {
	r       rng
	b       *isa.Builder
	useFP   bool
	nInt    int    // working int registers
	nFP     int    // working FP registers
	window  uint64 // data window bytes (power of two >= 256)
	labelID int
}

// block is one generated code region: emit writes its instructions,
// maxCost bounds the dynamic instructions one execution of it can commit.
type block struct {
	maxCost uint64
	emit    func()
}

// seq concatenates blocks.
func seq(blocks ...block) block {
	var cost uint64
	for _, bl := range blocks {
		cost += bl.maxCost
	}
	return block{maxCost: cost, emit: func() {
		for _, bl := range blocks {
			bl.emit()
		}
	}}
}

// Generate builds the kernel for seed. The same seed always yields the
// same program, bit for bit.
func Generate(seed uint64) *Kernel {
	g := &gen{
		r: rng(seed | 1),
		b: isa.NewBuilder(Name(seed)),
	}
	g.window = 256 << g.r.rangeN(0, 4) // 256B..4KiB footprint diversity
	g.nInt = int(g.r.rangeN(4, 8))
	g.useFP = g.r.next()%2 == 0
	g.nFP = int(g.r.rangeN(3, 6))

	preamble := g.preamble()

	// The body: a handful of top-level constructs, plus one guaranteed
	// store and one guaranteed load so every run crosses the
	// sphere-of-replication output boundary and the replication input
	// path.
	parts := []block{g.memOp(true), g.memOp(false)}
	for n := g.r.rangeN(2, 4); n > 0; n-- {
		parts = append(parts, g.construct(0))
	}
	body := seq(parts...)

	// Size the outer loop so the total dynamic length lands near the
	// drawn target: enough to fill default budgets, cheap to replay.
	target := g.r.rangeN(minTargetDyn, maxTargetDyn)
	perIter := body.maxCost + 2 // body + Addi + Bne
	trips := target / perIter
	if trips < 2 {
		trips = 2
	}

	b := g.b
	preamble.emit()
	b.Ldi(outerReg, int64(trips))
	b.Label("outer")
	body.emit()
	b.Addi(outerReg, outerReg, -1)
	b.Bne(outerReg, "outer")
	b.Halt()

	prog, err := b.Finish()
	if err != nil {
		// Unreachable by construction; a failure here is a generator bug.
		panic(fmt.Sprintf("progen: seed %d produced an unassemblable program: %v", seed, err))
	}
	return &Kernel{
		Seed:        seed,
		Prog:        prog,
		MaxDynInstr: preamble.maxCost + 1 + trips*perIter + 1,
		WindowBytes: g.window,
	}
}

// preamble defines every register the body may read and the initial data
// image covering the whole window, discharging the def-before-use and
// memory-bounds checks by construction.
func (g *gen) preamble() block {
	r := &g.r
	ints := make([]int64, g.nInt)
	for i := range ints {
		ints[i] = int64(r.next() & 0x7fffffff)
	}
	fps := make([]int64, g.nFP)
	for i := range fps {
		fps[i] = int64(r.rangeN(1, 1<<20))
	}
	lcgInit := int64(r.next() & 0x3fffffff)
	data := make([]byte, g.window)
	for i := range data {
		data[i] = byte(r.next())
	}

	cost := uint64(g.nInt + 2)
	if g.useFP {
		cost += uint64(2 * g.nFP)
	}
	return block{maxCost: cost, emit: func() {
		b := g.b
		b.InitData(windowBase, data)
		for i, v := range ints {
			b.Ldi(firstWorkInt+isa.Reg(i), v)
		}
		b.Ldi(lcgReg, lcgInit)
		b.Ldi(baseReg, windowBase)
		if g.useFP {
			for i, v := range fps {
				b.Ldi(cvtScratch, v)
				b.Cvtqf(isa.Reg(i+1), cvtScratch) // F1..FnFP
			}
		}
	}}
}

// construct draws one control construct (or a straight-line run) at the
// given loop-nesting depth.
func (g *gen) construct(depth int) block {
	switch g.r.rangeN(0, 3) {
	case 0:
		if depth < maxLoopDepth {
			return g.loop(depth)
		}
		return g.straight()
	case 1:
		return g.diamond(depth)
	default:
		return g.straight()
	}
}

// loop emits a counted loop: the counter register is reserved for this
// nesting depth and no body item ever writes it, so the declared trip
// count is exact.
func (g *gen) loop(depth int) block {
	trips := g.r.rangeN(2, 6)
	var parts []block
	for n := g.r.rangeN(1, 3); n > 0; n-- {
		parts = append(parts, g.construct(depth+1))
	}
	body := seq(parts...)
	counter := loopReg0 + isa.Reg(depth)
	top := g.label("loop")
	return block{maxCost: 1 + trips*(body.maxCost+2), emit: func() {
		b := g.b
		b.Ldi(counter, int64(trips))
		b.Label(top)
		body.emit()
		b.Addi(counter, counter, -1)
		b.Bne(counter, top)
	}}
}

// diamond emits if/else on a working-register condition; both arms are
// statically reachable whatever the dynamic value, and the declared cost
// is the worse arm.
func (g *gen) diamond(depth int) block {
	cond := g.workInt()
	// Branch flavour: direct test of the working value, or a compare
	// against a drawn immediate staged through the condition scratch.
	flavour := g.r.rangeN(0, 2)
	imm := int64(g.r.next() & 0xffff)
	thenB := g.straight()
	var elseB block
	if depth < maxLoopDepth && g.r.rangeN(0, 2) == 0 {
		elseB = g.loop(depth)
	} else {
		elseB = g.straight()
	}
	elseL := g.label("else")
	joinL := g.label("join")

	condCost := uint64(0)
	if flavour == 2 {
		condCost = 1
	}
	thenCost := thenB.maxCost + 1 // + Br join
	elseCost := elseB.maxCost
	worst := thenCost
	if elseCost > worst {
		worst = elseCost
	}
	return block{maxCost: condCost + 1 + worst, emit: func() {
		b := g.b
		switch flavour {
		case 0:
			b.Beq(cond, elseL)
		case 1:
			b.Blt(cond, elseL)
		default:
			b.Cmplti(condScratch, cond, imm)
			b.Bne(condScratch, elseL)
		}
		thenB.emit()
		b.Br(joinL)
		b.Label(elseL)
		elseB.emit()
		b.Label(joinL)
	}}
}

// straight emits a run of dependency-bearing items: ALU mixes, FP chains,
// windowed memory traffic.
func (g *gen) straight() block {
	var parts []block
	for n := g.r.rangeN(2, 5); n > 0; n-- {
		switch g.r.rangeN(0, 5) {
		case 0, 1:
			parts = append(parts, g.aluRun())
		case 2:
			parts = append(parts, g.memOp(g.r.next()%2 == 0))
		case 3:
			if g.useFP {
				parts = append(parts, g.fpRun())
			} else {
				parts = append(parts, g.aluRun())
			}
		case 4:
			parts = append(parts, g.aluRun())
		default:
			parts = append(parts, block{maxCost: 1, emit: func() { g.b.Mb() }})
		}
	}
	return seq(parts...)
}

// workInt draws a working integer register.
func (g *gen) workInt() isa.Reg {
	return firstWorkInt + isa.Reg(g.r.rangeN(0, uint64(g.nInt-1)))
}

// workFP draws a working FP register (F1..FnFP).
func (g *gen) workFP() isa.Reg {
	return isa.Reg(g.r.rangeN(1, uint64(g.nFP)))
}

// aluRun emits 2..6 integer ops over the working set.
func (g *gen) aluRun() block {
	type op struct {
		kind       uint64
		rd, ra, rb isa.Reg
		imm        int64
	}
	n := g.r.rangeN(2, 6)
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			kind: g.r.rangeN(0, 9),
			rd:   g.workInt(),
			ra:   g.workInt(),
			rb:   g.workInt(),
			imm:  int64(g.r.next() & 0xfffff),
		}
	}
	return block{maxCost: n, emit: func() {
		b := g.b
		for _, o := range ops {
			switch o.kind {
			case 0:
				b.Add(o.rd, o.ra, o.rb)
			case 1:
				b.Sub(o.rd, o.ra, o.rb)
			case 2:
				b.Xor(o.rd, o.ra, o.rb)
			case 3:
				b.Mul(o.rd, o.ra, o.rb)
			case 4:
				b.Addi(o.rd, o.ra, o.imm)
			case 5:
				b.Andi(o.rd, o.ra, o.imm)
			case 6:
				b.Srli(o.rd, o.ra, o.imm&31)
			case 7:
				b.Cmplt(o.rd, o.ra, o.rb)
			case 8:
				b.Ori(o.rd, o.ra, o.imm)
			default:
				b.Slli(o.rd, o.ra, o.imm&15)
			}
		}
	}}
}

// fpRun emits 2..4 FP ops over the working FP set. Division and square
// root are excluded to keep values finite-or-infinite without NaN payload
// subtleties; add/sub/mul/neg are bit-deterministic IEEE.
func (g *gen) fpRun() block {
	type op struct {
		kind       uint64
		fd, fa, fb isa.Reg
		ia         isa.Reg
	}
	n := g.r.rangeN(2, 4)
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			kind: g.r.rangeN(0, 4),
			fd:   g.workFP(),
			fa:   g.workFP(),
			fb:   g.workFP(),
			ia:   g.workInt(),
		}
	}
	return block{maxCost: n, emit: func() {
		b := g.b
		for _, o := range ops {
			switch o.kind {
			case 0:
				b.Fadd(o.fd, o.fa, o.fb)
			case 1:
				b.Fsub(o.fd, o.fa, o.fb)
			case 2:
				b.Fmul(o.fd, o.fa, o.fb)
			case 3:
				b.Fneg(o.fd, o.fa)
			default:
				b.Cvtqf(o.fd, o.ia)
			}
		}
	}}
}

// memOp emits one windowed access: step the LCG, mask the state into the
// window, add the base, access. The mask keeps every effective address in
// [windowBase, windowBase+window) whatever the LCG state, which is the
// whole memory-safety argument — no verifier-visible constant is needed.
func (g *gen) memOp(store bool) block {
	r := &g.r
	mulC := int64(1103515245)
	addC := int64(r.rangeN(1, 1<<15) | 1)
	kind := r.rangeN(0, 2) // 0: 8-byte int, 1: byte, 2: FP 8-byte
	if kind == 2 && !g.useFP {
		kind = 0
	}
	mask := int64(g.window - 8) // aligned 8-byte slots
	if kind == 1 {
		mask = int64(g.window - 1) // any byte
	}
	val := g.workInt()
	fval := isa.Reg(1)
	if g.useFP {
		fval = g.workFP()
	}
	return block{maxCost: 5, emit: func() {
		b := g.b
		b.Muli(lcgReg, lcgReg, mulC)
		b.Addi(lcgReg, lcgReg, addC)
		b.Andi(addrScratch, lcgReg, mask)
		b.Add(addrScratch, addrScratch, baseReg)
		switch {
		case store && kind == 0:
			b.Stq(val, addrScratch, 0)
		case store && kind == 1:
			b.Stb(val, addrScratch, 0)
		case store:
			b.Fstq(fval, addrScratch, 0)
		case kind == 0:
			b.Ldq(val, addrScratch, 0)
		case kind == 1:
			b.Ldb(val, addrScratch, 0)
		default:
			b.Fldq(fval, addrScratch, 0)
		}
	}}
}

// label mints a unique label.
func (g *gen) label(stem string) string {
	g.labelID++
	return fmt.Sprintf("%s%d", stem, g.labelID)
}
