package progen

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// corpusSeed pins the fixed 64-kernel corpus the differential batteries
// (here, internal/sim, internal/fault, internal/server) all draw from.
// EXPERIMENTS.md records the same constant next to the characterisation
// table; change it only with the table.
const corpusSeed = 0xC0FFEE

// TestGeneratedKernelsVerifierClean is the acceptance gate: 100% of the
// fixed corpus passes the full static verifier — not just the structural
// checks, every check. The generator's by-construction guarantees are
// exactly the verifier's obligations, so a single issue is a generator
// bug.
func TestGeneratedKernelsVerifierClean(t *testing.T) {
	for _, seed := range CorpusSeeds(corpusSeed, 64) {
		k := Generate(seed)
		if issues := analysis.VerifyProgram(k.Prog); len(issues) != 0 {
			t.Errorf("seed %d (%s): %d verifier issues, first: %v", seed, k.Prog.Name, len(issues), issues[0])
		}
	}
}

// TestGeneratedKernelsHaltWithinBound: every corpus kernel halts, within
// its declared dynamic-instruction bound — Characterize replays to HALT
// and errors past the bound, so a nil error is the whole property.
func TestGeneratedKernelsHaltWithinBound(t *testing.T) {
	for _, seed := range CorpusSeeds(corpusSeed, 64) {
		k := Generate(seed)
		p, err := Characterize(k)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if p.DynInstrs == 0 || p.DynInstrs > k.MaxDynInstr {
			t.Errorf("seed %d: dynamic length %d outside (0, %d]", seed, p.DynInstrs, k.MaxDynInstr)
		}
	}
}

// TestGenerateDeterministic: the same seed yields byte-identical RMTBIN1
// images and identical profiles across calls — generated names are stable
// experiment identities for content-addressed caches.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range CorpusSeeds(corpusSeed, 8) {
		img := func() []byte {
			var buf bytes.Buffer
			if err := isa.WriteImage(&buf, Generate(seed).Prog); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(img(), img()) {
			t.Errorf("seed %d: two generations serialised differently", seed)
		}
		p1, err1 := Characterize(Generate(seed))
		p2, err2 := Characterize(Generate(seed))
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v / %v", seed, err1, err2)
		}
		if *p1 != *p2 {
			t.Errorf("seed %d: profiles differ:\n%+v\n%+v", seed, p1, p2)
		}
	}
}

func TestNameRoundTrip(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
		name := Name(seed)
		got, ok := ParseName(name)
		if !ok || got != seed {
			t.Errorf("ParseName(Name(%d)) = %d, %v", seed, got, ok)
		}
	}
	for _, bad := range []string{
		"gcc", "gen:", "gen:01", "gen:+1", "gen:-1", "gen: 1",
		"gen:18446744073709551616", // 2^64: out of range
		"gen:0x10", "GEN:1", "gen:1 ",
	} {
		if _, ok := ParseName(bad); ok {
			t.Errorf("ParseName(%q) accepted a non-canonical name", bad)
		}
	}
}

// TestBuildResolvesBothWorlds: Build serves generated names and falls
// through to the registry; Known agrees without assembling anything.
func TestBuildResolvesBothWorlds(t *testing.T) {
	p, err := Build("gen:7")
	if err != nil || p.Name != "gen:7" {
		t.Fatalf("Build(gen:7) = %v, %v", p, err)
	}
	if p2, err := Build("gcc"); err != nil || p2.Name != "gcc" {
		t.Fatalf("Build(gcc) = %v, %v", p2, err)
	}
	if _, err := Build("no-such-kernel"); err == nil {
		t.Fatal("Build accepted an unknown name")
	}
	for name, want := range map[string]bool{
		"gen:7": true, "gcc": true, "no-such-kernel": false, "gen:x": false,
	} {
		if Known(name) != want {
			t.Errorf("Known(%q) = %v, want %v", name, !want, want)
		}
	}
}

// TestCharacterisationSane: profile axes stay in their domains and the
// corpus actually spans character space (the point of generation): both
// FP and integer-only kernels, varied footprints.
func TestCharacterisationSane(t *testing.T) {
	var fpKernels, intKernels int
	footprints := map[int]bool{}
	for _, seed := range CorpusSeeds(corpusSeed, 32) {
		k := Generate(seed)
		p, err := Characterize(k)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{
			"load_frac": p.LoadFrac, "store_frac": p.StoreFrac,
			"branch_frac": p.BranchFrac, "fp_frac": p.FPFrac,
			"taken_rate": p.TakenRate, "miss_proxy": p.MissProxy,
		} {
			if v < 0 || v > 1 {
				t.Errorf("seed %d: %s = %v outside [0,1]", seed, name, v)
			}
		}
		if p.LoadFrac == 0 || p.StoreFrac == 0 || p.BranchFrac == 0 {
			t.Errorf("seed %d: degenerate mix %+v — every kernel must load, store and branch", seed, p)
		}
		if p.ILP < 1 {
			t.Errorf("seed %d: ILP %v < 1", seed, p.ILP)
		}
		if p.FootprintLines <= 0 || p.FootprintLines > int(k.WindowBytes/64) {
			t.Errorf("seed %d: footprint %d lines outside window (%d bytes)", seed, p.FootprintLines, k.WindowBytes)
		}
		if p.FPFrac > 0 {
			fpKernels++
		} else {
			intKernels++
		}
		footprints[p.FootprintLines] = true
	}
	if fpKernels == 0 || intKernels == 0 {
		t.Errorf("corpus does not span suites: %d fp, %d int", fpKernels, intKernels)
	}
	if len(footprints) < 4 {
		t.Errorf("corpus footprints collapsed to %d distinct values", len(footprints))
	}
}

// TestMixesDrawValidNames: every mix entry parses and resolves.
func TestMixesDrawValidNames(t *testing.T) {
	for _, pr := range MixPairs(corpusSeed, 8) {
		if pr[0] == pr[1] {
			t.Errorf("pair %v duplicates a kernel", pr)
		}
		for _, n := range pr {
			if !Known(n) {
				t.Errorf("pair name %q does not resolve", n)
			}
		}
	}
	for _, q := range MixQuads(corpusSeed, 4) {
		seen := map[string]bool{}
		for _, n := range q {
			if seen[n] {
				t.Errorf("quad %v duplicates %q", q, n)
			}
			seen[n] = true
			if !Known(n) {
				t.Errorf("quad name %q does not resolve", n)
			}
		}
	}
	// Mixes are themselves deterministic.
	a, b := MixPairs(99, 4), MixPairs(99, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("MixPairs not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
