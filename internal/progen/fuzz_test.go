package progen

import (
	"testing"

	"repro/internal/analysis"
)

// FuzzGenerate drives the generator's whole contract from arbitrary
// seeds: every seed must yield a program that (1) assembles (Generate
// panics otherwise), (2) passes the complete static verifier, and
// (3) halts within its declared dynamic-instruction bound. There is no
// invalid input — the generator's domain is all of uint64 — so any
// failure is a generator bug, and the offending seed is its own
// minimized reproducer (check it in as a regression seed below).
func FuzzGenerate(f *testing.F) {
	for _, seed := range CorpusSeeds(corpusSeed, 8) {
		f.Add(seed)
	}
	// Edge seeds: the generator masks/ors draws, so degenerate states are
	// worth steering at.
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Add(uint64(1) << 63)

	f.Fuzz(func(t *testing.T, seed uint64) {
		k := Generate(seed)
		if issues := analysis.VerifyProgram(k.Prog); len(issues) != 0 {
			t.Fatalf("seed %d: %d verifier issues, first: %v", seed, len(issues), issues[0])
		}
		p, err := Characterize(k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.DynInstrs > k.MaxDynInstr {
			t.Fatalf("seed %d: ran %d > declared %d", seed, p.DynInstrs, k.MaxDynInstr)
		}
	})
}
