// Package cliflags centralises the flag group shared by the cmd/ tools, so
// -budget, -warmup, -quick and -parallel spell and behave identically
// everywhere instead of each main() hand-rolling its own copies.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/sim"
)

// Sim is the shared simulation flag group.
type Sim struct {
	// Budget and Warmup are instruction counts; 0 means "use the tool's
	// full/quick default" (see Sizes).
	Budget uint64
	Warmup uint64
	// Quick selects cut-down sizes.
	Quick bool
	// Parallel is the worker-goroutine count for independent simulations.
	Parallel int
}

// RegisterSim installs the shared -budget/-warmup/-quick/-parallel group
// on fs. -parallel defaults to runtime.GOMAXPROCS(0); -parallel 1
// reproduces serial execution (results are identical either way).
func RegisterSim(fs *flag.FlagSet) *Sim {
	s := &Sim{}
	fs.Uint64Var(&s.Budget, "budget", 0, "measured instructions per logical thread (0 = tool default)")
	fs.Uint64Var(&s.Warmup, "warmup", 0, "warmup instructions before measurement (0 = tool default)")
	fs.BoolVar(&s.Quick, "quick", false, "use cut-down sizes")
	fs.IntVar(&s.Parallel, "parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent simulations (1 = serial)")
	return s
}

// Sizes resolves -budget/-warmup against the tool's defaults: explicit
// flag values win, otherwise -quick selects the quick pair.
func (s *Sim) Sizes(fullBudget, fullWarmup, quickBudget, quickWarmup uint64) (budget, warmup uint64) {
	budget, warmup = fullBudget, fullWarmup
	if s.Quick {
		budget, warmup = quickBudget, quickWarmup
	}
	if s.Budget > 0 {
		budget = s.Budget
	}
	if s.Warmup > 0 {
		warmup = s.Warmup
	}
	return budget, warmup
}

// Parallelism resolves the -parallel value (<= 0 selects GOMAXPROCS).
func (s *Sim) Parallelism() int {
	if s.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Parallel
}

// Serve is the flag group of the rmtd daemon.
type Serve struct {
	// Addr is the listen address.
	Addr string
	// Workers bounds concurrently executing simulation requests; Queue
	// bounds requests waiting for a worker (beyond it: 429).
	Workers int
	Queue   int
	// CacheEntries bounds the content-addressed result cache.
	CacheEntries int
	// SimParallel fans one sweep's or campaign's internal jobs across
	// workers (results never depend on it).
	SimParallel int
	// DrainTimeout bounds the graceful drain on SIGINT/SIGTERM.
	DrainTimeout time.Duration
}

// RegisterServe installs the rmtd serving flag group on fs.
func RegisterServe(fs *flag.FlagSet) *Serve {
	s := &Serve{}
	fs.StringVar(&s.Addr, "addr", "127.0.0.1:8471", "listen address (host:port; :0 picks a free port)")
	fs.IntVar(&s.Workers, "workers", 2, "concurrently executing simulation requests")
	fs.IntVar(&s.Queue, "queue", 8, "requests allowed to wait for a worker before 429")
	fs.IntVar(&s.CacheEntries, "cache-entries", 512, "content-addressed result cache size (entries)")
	fs.IntVar(&s.SimParallel, "sim-parallel", 1, "goroutines per sweep/campaign request (results are identical at any value)")
	fs.DurationVar(&s.DrainTimeout, "drain-timeout", 30*time.Second, "graceful-drain bound on SIGINT/SIGTERM")
	return s
}

// Prof is the shared profiling flag group. The profiles observe the tool,
// not the simulation: enabling them never changes simulated results.
type Prof struct {
	// CPUProfile and MemProfile name output files ("" = disabled).
	CPUProfile string
	MemProfile string
}

// RegisterProf installs the shared -cpuprofile/-memprofile group on fs.
func RegisterProf(fs *flag.FlagSet) *Prof {
	p := &Prof{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	return p
}

// Start begins CPU profiling when requested and returns the function that
// finishes both profiles; call it on every exit path (defer after a
// successful Start).
func (p *Prof) Start() (stop func() error, err error) {
	var cpuF *os.File
	if p.CPUProfile != "" {
		cpuF, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// ParseMode maps a -mode flag value to the machine organisation it names.
func ParseMode(s string) (sim.Mode, error) {
	switch s {
	case "base":
		return sim.ModeBase, nil
	case "base2":
		return sim.ModeBase2, nil
	case "srt":
		return sim.ModeSRT, nil
	case "lockstep":
		return sim.ModeLockstep, nil
	case "crt":
		return sim.ModeCRT, nil
	case "srtr":
		return sim.ModeSRTR, nil
	case "adaptive":
		return sim.ModeAdaptive, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want base, base2, srt, lockstep, crt, srtr or adaptive)", s)
}

// SplitProgs splits a comma-separated -progs value, trimming spaces and
// dropping empty elements.
func SplitProgs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
