package cliflags

import (
	"flag"
	"reflect"
	"runtime"
	"time"
	"testing"

	"repro/internal/sim"
)

func parse(t *testing.T, args ...string) *Sim {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := RegisterSim(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSizes(t *testing.T) {
	cases := []struct {
		name           string
		args           []string
		budget, warmup uint64
	}{
		{"defaults", nil, 100, 50},
		{"quick", []string{"-quick"}, 10, 5},
		{"explicit", []string{"-budget", "7", "-warmup", "3"}, 7, 3},
		{"explicit beats quick", []string{"-quick", "-budget", "7"}, 7, 5},
	}
	for _, c := range cases {
		s := parse(t, c.args...)
		if b, w := s.Sizes(100, 50, 10, 5); b != c.budget || w != c.warmup {
			t.Errorf("%s: Sizes = %d/%d, want %d/%d", c.name, b, w, c.budget, c.warmup)
		}
	}
}

func TestParallelism(t *testing.T) {
	if got := parse(t).Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := parse(t, "-parallel", "3").Parallelism(); got != 3 {
		t.Errorf("-parallel 3 resolved to %d", got)
	}
	if got := parse(t, "-parallel", "0").Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("-parallel 0 resolved to %d, want GOMAXPROCS", got)
	}
}

func TestParseMode(t *testing.T) {
	want := map[string]sim.Mode{
		"base":     sim.ModeBase,
		"base2":    sim.ModeBase2,
		"srt":      sim.ModeSRT,
		"lockstep": sim.ModeLockstep,
		"crt":      sim.ModeCRT,
	}
	for name, mode := range want {
		got, err := ParseMode(name)
		if err != nil || got != mode {
			t.Errorf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMode("sr"); err == nil {
		t.Error("ParseMode accepted a bad mode")
	}
}

func TestSplitProgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"gcc", []string{"gcc"}},
		{"gcc,swim", []string{"gcc", "swim"}},
		{" gcc , swim ,", []string{"gcc", "swim"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := SplitProgs(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitProgs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRegisterServe(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := RegisterServe(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	want := Serve{Addr: "127.0.0.1:8471", Workers: 2, Queue: 8,
		CacheEntries: 512, SimParallel: 1, DrainTimeout: 30 * time.Second}
	if *s != want {
		t.Fatalf("defaults = %+v, want %+v", *s, want)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	s = RegisterServe(fs)
	if err := fs.Parse([]string{"-addr", ":0", "-workers", "4", "-queue", "-1",
		"-cache-entries", "16", "-sim-parallel", "8", "-drain-timeout", "5s"}); err != nil {
		t.Fatal(err)
	}
	want = Serve{Addr: ":0", Workers: 4, Queue: -1,
		CacheEntries: 16, SimParallel: 8, DrainTimeout: 5 * time.Second}
	if *s != want {
		t.Fatalf("parsed = %+v, want %+v", *s, want)
	}
}
