package fault

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/vm"
)

// The mode-matrix fault-coverage battery: the same injections, aimed at the
// same dynamic sites, across EVERY machine organisation, asserting the
// expected outcome class per (mode, site-class) cell:
//
//	site class      base/base2/lockstep  srt/crt    srtr       adaptive θ=.5
//	masked result   masked               masked     recovered  masked
//	store data      masked (silent!)     detected   recovered  det/masked/sdc
//	store addr      masked (silent!)     detected   recovered  det/masked/sdc
//	load value      masked (silent!)     detected   recovered  det/masked/sdc
//
// "masked" in the unprotected modes means undetected — the model simulates
// no comparison boundary there (for lockstep, the checker's second core is
// folded into latency penalties, see DESIGN.md), so the same corruption
// that SRT flags runs to completion silently; the battery additionally
// checks the architectural digest to show the corruption really did land
// (the SDC the redundant modes exist to stop). SRTR rows must not merely
// detect: every detected-class injection rolls back, re-executes, and ends
// with machine state byte-identical to the fault-free golden run.

// matrixSpec is the battery's spec for one mode, with the mode-specific
// knobs set the way the campaign layers set them.
func matrixSpec(mode sim.Mode, names ...string) sim.Spec {
	s := faultSpec(mode, names...)
	s.Budget, s.Warmup = 2500, 800
	switch mode {
	case sim.ModeLockstep:
		s.CheckerLatency = 8
	case sim.ModeAdaptive:
		s.AdaptiveThreshold = 0.5
	}
	return s
}

// runOneKeep mirrors runOneWith but hands back the trial machine so the
// battery can make byte-level assertions about post-run state.
func runOneKeep(spec sim.Spec, f Transient, golden *[32]byte) (Result, *sim.Machine, error) {
	spec.StopOnDetection = true
	m, err := sim.Build(spec)
	if err != nil {
		return Result{}, nil, err
	}
	res, err := runArmed(m, f, golden)
	return res, m, err
}

// normSnapshot serialises the machine with the harness-perturbed Tolerant
// flags cleared, so trial state can be compared byte-for-byte against a
// fault-free reference.
func normSnapshot(t *testing.T, m *sim.Machine) []byte {
	t.Helper()
	for i := range m.Leads {
		m.Leads[i].Arch.Tolerant = false
		if tr := m.Trails[i]; tr != nil {
			tr.Arch.Tolerant = false
		}
	}
	b, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// goldenRun simulates spec fault-free and returns the finished machine.
func goldenRun(t *testing.T, spec sim.Spec) *sim.Machine {
	t.Helper()
	m, err := sim.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// maskedTargets reports which copies a mode can strike: only the paired
// organisations have a trailing copy.
func maskedTargets(mode sim.Mode) []Copy {
	if CampaignMode(mode) {
		return []Copy{LeadingCopy, TrailingCopy}
	}
	return []Copy{LeadingCopy}
}

// TestModeMatrixMaskedSites runs the exhaustive statically-masked-site gate
// across every mode: a targeted flip of a provably-dead destination
// register must classify Masked everywhere — except SRTR, whose register
// value queue compares every retired destination value and therefore
// detects (and recovers from) even architecturally-dead corruption, with
// post-recovery state byte-identical to the fault-free run.
func TestModeMatrixMaskedSites(t *testing.T) {
	if testing.Short() {
		t.Skip("mode-matrix sweep; skipped in -short")
	}
	// Collect, once, every executed masked site across the curated kernels:
	// the observer run records the first dynamic sequence number at which
	// each statically-masked pc executes. The functional instruction stream
	// is mode-invariant (same program, oracle frontend), so the recorded
	// (seq, pc) sites are valid injection targets for every mode.
	type site struct {
		pc  int
		seq uint64
	}
	kernels := map[string][]site{}
	var names []string
	for _, name := range program.Names() {
		prog, err := program.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := analysis.AnalyzeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(prof.MaskedSites) == 0 {
			continue
		}
		m, err := sim.Build(matrixSpec(sim.ModeSRT, name))
		if err != nil {
			t.Fatal(err)
		}
		firstSeq := map[uint64]uint64{}
		m.Leads[0].Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
			if point == vm.PointResult && seq >= 64 {
				if _, ok := firstSeq[pc]; !ok {
					firstSeq[pc] = seq
				}
			}
			return v
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s observer run: %v", name, err)
		}
		for _, s := range prof.MaskedSites {
			if seq, ok := firstSeq[uint64(s.PC)]; ok {
				kernels[name] = append(kernels[name], site{pc: s.PC, seq: seq})
			}
		}
		if len(kernels[name]) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		t.Fatal("no kernel has an executed masked site")
	}

	for _, mode := range sim.Modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			want := Masked
			if mode == sim.ModeSRTR {
				want = Recovered
			}
			goldenSnaps := map[string][]byte{}
			injections := 0
			for _, name := range names {
				spec := matrixSpec(mode, name)
				golden, err := goldenDigest(spec)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range kernels[name] {
					for _, target := range maskedTargets(mode) {
						for _, bit := range []uint{0, 63} {
							f := Transient{Target: target, AtSeq: s.seq, Point: vm.PointResult, Bit: bit}
							res, m, err := runOneKeep(spec, f, golden)
							if err != nil {
								t.Fatalf("%s pc=%d %v: %v", name, s.pc, f, err)
							}
							if res.Outcome != want {
								t.Errorf("%s pc=%d %v: outcome %v, want %v",
									name, s.pc, f, res.Outcome, want)
							}
							injections++
							if mode == sim.ModeSRTR && res.Outcome == Recovered {
								ref := goldenSnaps[name]
								if ref == nil {
									ref = normSnapshot(t, goldenRun(t, spec))
									goldenSnaps[name] = ref
								}
								if !bytes.Equal(normSnapshot(t, m), ref) {
									t.Errorf("%s pc=%d %v: post-recovery state differs from fault-free golden",
										name, s.pc, f)
								}
							}
						}
					}
				}
			}
			t.Logf("%v: %d masked-site injections, want %v", mode, injections, want)
		})
	}
}

// TestModeMatrixTargetedInjections aims known-unmasked injections — store
// data, store address, load value — at every mode and asserts the expected
// outcome class per cell: detection at the sphere boundary for SRT/CRT,
// detection-plus-rollback for SRTR (byte-identical final state), silent
// completion for the unprotected organisations (with the architectural
// digest confirming the corruption landed), and any fired classification
// for partial redundancy (which cell a trial hits depends on whether the
// struck instruction is inside the protected region).
func TestModeMatrixTargetedInjections(t *testing.T) {
	if testing.Short() {
		t.Skip("mode-matrix sweep; skipped in -short")
	}
	cells := []struct {
		cell, kernel string
		point        vm.CorruptPoint
		bit          uint
		leadOnly     bool
	}{
		{"store-data", "compress", vm.PointStoreData, 5, false},
		{"store-addr", "vortex", vm.PointStoreAddr, 3, false},
		{"load-value", "li", vm.PointLoadValue, 0, true},
	}
	const atSeq = 1500
	for _, mode := range sim.Modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			sdcSeen := false
			for _, c := range cells {
				spec := matrixSpec(mode, c.kernel)
				golden, err := goldenDigest(spec)
				if err != nil {
					t.Fatal(err)
				}
				var goldenSnap []byte
				var goldenArch [32]byte
				haveArch := false
				targets := maskedTargets(mode)
				if c.leadOnly {
					targets = targets[:1]
				}
				for _, target := range targets {
					f := Transient{Target: target, AtSeq: atSeq, Point: c.point, Bit: c.bit}
					res, m, err := runOneKeep(spec, f, golden)
					if err != nil {
						t.Fatalf("%s %v: %v", c.cell, f, err)
					}
					switch mode {
					case sim.ModeSRT, sim.ModeCRT:
						if res.Outcome != Detected {
							t.Errorf("%s %v: outcome %v, want detected", c.cell, f, res.Outcome)
						}
					case sim.ModeSRTR:
						if res.Outcome != Recovered || res.Recoveries == 0 {
							t.Errorf("%s %v: outcome %v (%d rollbacks), want recovered",
								c.cell, f, res.Outcome, res.Recoveries)
							continue
						}
						if goldenSnap == nil {
							goldenSnap = normSnapshot(t, goldenRun(t, spec))
						}
						if !bytes.Equal(normSnapshot(t, m), goldenSnap) {
							t.Errorf("%s %v: post-recovery state differs from fault-free golden", c.cell, f)
						}
					case sim.ModeAdaptive:
						if res.Outcome == NotFired {
							t.Errorf("%s %v: never fired", c.cell, f)
						}
					default: // base, base2, lockstep: no boundary in the model
						if res.Outcome != Masked {
							t.Errorf("%s %v: outcome %v, want masked (no comparison boundary)",
								c.cell, f, res.Outcome)
						}
						if !haveArch {
							goldenArch = goldenRun(t, spec).ArchDigest()
							haveArch = true
						}
						if m.ArchDigest() != goldenArch {
							sdcSeen = true
						}
					}
				}
			}
			if !CampaignMode(mode) && !sdcSeen {
				t.Errorf("%v: no injection corrupted architectural state; the silent-corruption contrast is gone", mode)
			}
		})
	}
}

// TestSRTRCampaignRecoversCurated is the SRTR acceptance gate over the
// curated kernel registry: a fault campaign on every kernel must classify
// every detected-class injection as Recovered — zero standing detections,
// zero silent corruption — and recovered trials re-verified individually
// must end byte-identical to the fault-free golden run.
func TestSRTRCampaignRecoversCurated(t *testing.T) {
	if testing.Short() {
		t.Skip("per-kernel campaign sweep; skipped in -short")
	}
	totalRecovered := 0
	for _, name := range program.Names() {
		spec := matrixSpec(sim.ModeSRTR, name)
		sum, err := CampaignParallel(spec, 8, 0xD15EA5E, CampaignOptions{Parallelism: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sum.Detected != 0 || sum.UnprotectedSDC != 0 {
			t.Errorf("%s: %d standing detections, %d SDC — SRTR must recover every detected-class injection",
				name, sum.Detected, sum.UnprotectedSDC)
		}
		if sum.Recovered+sum.Masked+sum.NotFired != sum.Runs {
			t.Errorf("%s: classification doesn't partition: %+v", name, sum)
		}
		totalRecovered += sum.Recovered
		verified := 0
		var goldenSnap []byte
		for _, res := range sum.Results {
			if res.Outcome != Recovered || verified >= 2 {
				continue
			}
			res2, m, err := runOneKeep(spec, res.Fault, nil)
			if err != nil {
				t.Fatalf("%s re-run %v: %v", name, res.Fault, err)
			}
			if res2.Outcome != Recovered {
				t.Errorf("%s re-run %v: outcome %v, campaign said recovered", name, res.Fault, res2.Outcome)
				continue
			}
			if goldenSnap == nil {
				goldenSnap = normSnapshot(t, goldenRun(t, spec))
			}
			if !bytes.Equal(normSnapshot(t, m), goldenSnap) {
				t.Errorf("%s %v: post-recovery state differs from fault-free golden", name, res.Fault)
			}
			verified++
		}
	}
	if totalRecovered == 0 {
		t.Fatal("no campaign trial recovered: the battery exercised nothing")
	}
	t.Logf("recovered %d trials across %d kernels", totalRecovered, len(program.Names()))
}

// TestSRTRCampaignRecoversGenCorpus runs the same acceptance gate over the
// 32-kernel generated corpus — programs nobody hand-tuned, the same seeds
// the sim layer's differential batteries replay.
func TestSRTRCampaignRecoversGenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("per-kernel campaign sweep; skipped in -short")
	}
	totalRecovered := 0
	names := genNames(32)
	for i, name := range names {
		spec := genFaultSpec(sim.ModeSRTR, name)
		sum, err := CampaignParallel(spec, 6, 0xD15EA5E, CampaignOptions{Parallelism: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i < 2 {
			// Campaign determinism across parallelism, on generated kernels:
			// a recovery-bearing campaign must produce the identical summary
			// regardless of worker count.
			wide, err := CampaignParallel(spec, 6, 0xD15EA5E, CampaignOptions{Parallelism: 4})
			if err != nil {
				t.Fatalf("%s wide: %v", name, err)
			}
			if !reflect.DeepEqual(sum, wide) {
				t.Errorf("%s: summary depends on parallelism:\n2: %+v\n4: %+v", name, sum, wide)
			}
		}
		if sum.Detected != 0 || sum.UnprotectedSDC != 0 {
			t.Errorf("%s: %d standing detections, %d SDC — SRTR must recover every detected-class injection",
				name, sum.Detected, sum.UnprotectedSDC)
		}
		if sum.Recovered+sum.Masked+sum.NotFired != sum.Runs {
			t.Errorf("%s: classification doesn't partition: %+v", name, sum)
		}
		totalRecovered += sum.Recovered
	}
	if totalRecovered == 0 {
		t.Fatal("no campaign trial recovered across the generated corpus")
	}
	t.Logf("recovered %d trials across %d generated kernels", totalRecovered, len(names))
}

// TestSRTRSnapshotRestoreAcrossRollback: the snapshot substrate must be
// transparent to recovery. A faulty SRTR run is snapshotted on the
// checkpoint grid two intervals before the fault fires (the same margin
// the fork engine's srtrReplayHistory retains); restoring that snapshot
// into a fresh machine, re-arming the same transient, and running to
// completion must go through the identical rollback and finish with
// machine state byte-identical to the uninterrupted faulty run.
func TestSRTRSnapshotRestoreAcrossRollback(t *testing.T) {
	spec := faultSpec(sim.ModeSRTR, "compress")
	f := Transient{Target: LeadingCopy, AtSeq: 6000, Point: vm.PointStoreData, Bit: 7}

	m, err := sim.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	fired, err := f.Arm(m)
	if err != nil {
		t.Fatal(err)
	}
	// Record a snapshot at every checkpoint boundary until the fault fires.
	type boundarySnap struct {
		cycle uint64
		data  []byte
	}
	var snaps []boundarySnap
	m.OnCycle = func(cycle uint64) error {
		if cycle%1024 == 0 && cycle > 0 && !fired() {
			data, err := m.Snapshot()
			if err != nil {
				return err
			}
			snaps = append(snaps, boundarySnap{cycle, data})
		}
		return nil
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired() {
		t.Fatal("fault never fired; pick an earlier AtSeq")
	}
	if m.Recoveries == 0 {
		t.Fatal("uninterrupted run did not recover; the test exercises nothing")
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d pre-fire boundaries; fault fires too early for a mid-run restore", len(snaps))
	}
	mid := snaps[len(snaps)-3] // two intervals of slack before the fire
	refSnap := normSnapshot(t, m)

	r, err := sim.Restore(spec, mid.data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != mid.cycle {
		t.Fatalf("restored at cycle %d, want %d", r.Cycles, mid.cycle)
	}
	if _, err := f.Arm(r); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Recoveries != m.Recoveries || r.RecoveryCycles != m.RecoveryCycles {
		t.Errorf("restored run recovered differently: %d rollbacks/%d cycles, want %d/%d",
			r.Recoveries, r.RecoveryCycles, m.Recoveries, m.RecoveryCycles)
	}
	if !bytes.Equal(normSnapshot(t, r), refSnap) {
		t.Error("restored run's final state differs from the uninterrupted faulty run")
	}
}

// TestAdaptiveCampaignFrontier pins the two ends of the coverage/slowdown
// frontier: θ = 0 protects everything (no silent corruption possible,
// exactly SRT's campaign behaviour), while a high θ strips protection from
// most of the program and must let some injections through as
// UnprotectedSDC — the coverage loss the adaptive figure quantifies.
func TestAdaptiveCampaignFrontier(t *testing.T) {
	run := func(theta float64) *CampaignSummary {
		spec := matrixSpec(sim.ModeAdaptive, "gcc")
		spec.AdaptiveThreshold = theta
		sum, err := CampaignParallel(spec, 48, 0xF00D, CampaignOptions{Parallelism: 4})
		if err != nil {
			t.Fatalf("θ=%v: %v", theta, err)
		}
		return sum
	}
	full := run(0)
	if full.UnprotectedSDC != 0 {
		t.Errorf("θ=0: %d unprotected SDCs; full protection must have none", full.UnprotectedSDC)
	}
	sparse := run(0.95)
	if sparse.UnprotectedSDC == 0 {
		t.Error("θ=0.95: no unprotected SDC across 48 trials; gating is not biting")
	}
	if sparse.Coverage() >= full.Coverage() {
		t.Errorf("coverage did not drop: θ=0.95 %.3f vs θ=0 %.3f", sparse.Coverage(), full.Coverage())
	}
	t.Logf("coverage θ=0: %.3f, θ=0.95: %.3f (SDC %d/%d)",
		full.Coverage(), sparse.Coverage(), sparse.UnprotectedSDC, sparse.Runs)
}
