package fault

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestForkMatchesLegacy is the fork-on-fault engine's ground-truth check:
// over the same table the sharding-invariance test uses, the snapshot/replay
// engine must produce a summary byte-identical to the legacy
// build-everything-per-trial engine — every per-trial Result (outcome,
// detection latency, end cycle), every aggregate, at more than one
// parallelism.
func TestForkMatchesLegacy(t *testing.T) {
	small := func(mode sim.Mode, progs ...string) sim.Spec {
		s := faultSpec(mode, progs...)
		s.Budget, s.Warmup = 3000, 1000
		return s
	}
	adaptive := func(progs ...string) sim.Spec {
		s := small(sim.ModeAdaptive, progs...)
		s.AdaptiveThreshold = 0.5
		return s
	}
	cases := []struct {
		name string
		spec sim.Spec
		n    int
		seed uint64
	}{
		{"srt one program", small(sim.ModeSRT, "compress"), 6, 0xA11CE},
		{"srt two programs", small(sim.ModeSRT, "gcc", "swim"), 6, 42},
		{"crt two programs", small(sim.ModeCRT, "gcc", "swim"), 6, 0xBEEF},
		{"srtr one program", small(sim.ModeSRTR, "compress"), 6, 0xA11CE},
		{"srtr two programs", small(sim.ModeSRTR, "gcc", "swim"), 6, 42},
		{"adaptive one program", adaptive("compress"), 6, 0xA11CE},
		{"adaptive two programs", adaptive("gcc", "swim"), 6, 42},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := CampaignLegacy(tc.spec, tc.n, tc.seed, CampaignOptions{Parallelism: 1})
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			for _, workers := range []int{1, 4} {
				spec := tc.spec
				fork, err := CampaignParallel(spec, tc.n, tc.seed, CampaignOptions{Parallelism: workers})
				if err != nil {
					t.Fatalf("fork workers=%d: %v", workers, err)
				}
				if fork.Runs != legacy.Runs || fork.Detected != legacy.Detected ||
					fork.Masked != legacy.Masked || fork.NotFired != legacy.NotFired ||
					fork.Recovered != legacy.Recovered ||
					fork.UnprotectedSDC != legacy.UnprotectedSDC ||
					fork.MeanDetectionCycles != legacy.MeanDetectionCycles ||
					fork.MeanRecoveryCycles != legacy.MeanRecoveryCycles ||
					fork.TotalCycles != legacy.TotalCycles {
					t.Fatalf("workers=%d summary differs:\nfork:   %+v\nlegacy: %+v", workers, fork, legacy)
				}
				for i := range fork.Results {
					if fork.Results[i] != legacy.Results[i] {
						t.Fatalf("workers=%d trial %d: fork %+v, legacy %+v",
							workers, i, fork.Results[i], legacy.Results[i])
					}
				}
			}
		})
	}
}

// TestCampaignCancel: a Cancel callback returning an error aborts the
// campaign with that error (this is the context plumbing rmt.Campaign uses).
func TestCampaignCancel(t *testing.T) {
	boom := errors.New("canceled")
	for name, run := range map[string]func(sim.Spec, int, uint64, CampaignOptions) (*CampaignSummary, error){
		"fork":   CampaignParallel,
		"legacy": CampaignLegacy,
	} {
		_, err := run(faultSpec(sim.ModeSRT, "compress"), 4, 1,
			CampaignOptions{Parallelism: 1, Cancel: func() error { return boom }})
		if !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want wrapped cancel error", name, err)
		}
	}
}
