package fault

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/vm"
)

func faultSpec(mode sim.Mode, progs ...string) sim.Spec {
	return sim.Spec{
		Mode:     mode,
		Programs: progs,
		Budget:   8000,
		Warmup:   2000,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	}
}

// TestStoreDataFaultDetected injects a flip directly into a store's data:
// the comparator must always catch it.
func TestStoreDataFaultDetected(t *testing.T) {
	for _, target := range []Copy{LeadingCopy, TrailingCopy} {
		res, err := RunOne(faultSpec(sim.ModeSRT, "compress"), Transient{
			Target: target,
			AtSeq:  3000,
			Point:  vm.PointStoreData,
			Bit:    5,
		})
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		if res.Outcome != Detected {
			t.Errorf("%v copy store-data fault: outcome %v, want detected", target, res.Outcome)
		}
		if res.DetectionCycles == 0 {
			t.Errorf("%v copy: zero detection latency", target)
		}
	}
}

// TestStoreAddrFaultDetected flips a store address bit.
func TestStoreAddrFaultDetected(t *testing.T) {
	res, err := RunOne(faultSpec(sim.ModeSRT, "vortex"), Transient{
		Target: LeadingCopy,
		AtSeq:  3000,
		Point:  vm.PointStoreAddr,
		Bit:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Detected {
		t.Errorf("store-addr fault: outcome %v, want detected", res.Outcome)
	}
}

// TestLoadValueFaultPropagates corrupts a loaded value; the corruption flows
// through dependent computation into stores.
func TestLoadValueFaultPropagates(t *testing.T) {
	res, err := RunOne(faultSpec(sim.ModeSRT, "li"), Transient{
		Target: LeadingCopy,
		AtSeq:  3000,
		Point:  vm.PointLoadValue,
		Bit:    0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Detected {
		t.Errorf("load-value fault: outcome %v, want detected", res.Outcome)
	}
}

// TestHighBitResultFaultMayBeMasked: flipping a high bit of a result that is
// masked off (kernels AND down to small ranges) is often architecturally
// benign; the run must complete cleanly either way, never escape silently
// into a wrong store.
func TestResultFaultDetectedOrMasked(t *testing.T) {
	res, err := RunOne(faultSpec(sim.ModeSRT, "gcc"), Transient{
		Target: TrailingCopy,
		AtSeq:  2500,
		Point:  vm.PointResult,
		Bit:    62,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == NotFired {
		t.Fatal("fault never fired")
	}
}

// TestCRTDetectsFaults runs an injection on the cross-core organisation.
func TestCRTDetectsFaults(t *testing.T) {
	res, err := RunOne(faultSpec(sim.ModeCRT, "compress"), Transient{
		Target: LeadingCopy,
		AtSeq:  3000,
		Point:  vm.PointStoreData,
		Bit:    17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Detected {
		t.Errorf("CRT store-data fault: outcome %v, want detected", res.Outcome)
	}
}

// TestCampaignNoEscapes runs a small campaign: every fired fault must be
// detected or masked — never a silent escape (an SRT machine compares every
// store).
func TestCampaignNoEscapes(t *testing.T) {
	sum, err := Campaign(faultSpec(sim.ModeSRT, "compress"), 20, 0xfeedface)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 20 {
		t.Fatalf("runs = %d", sum.Runs)
	}
	if sum.Detected+sum.Masked+sum.NotFired != sum.Runs {
		t.Fatalf("classification doesn't partition: %+v", sum)
	}
	if sum.Detected == 0 {
		t.Error("campaign detected nothing; injection is broken")
	}
	if cov := sum.Coverage(); cov < 0.4 {
		t.Errorf("coverage %.2f implausibly low for output comparison", cov)
	}
}

// TestCampaignDeterministic: identical seeds give identical results.
func TestCampaignDeterministic(t *testing.T) {
	a, err := Campaign(faultSpec(sim.ModeSRT, "go"), 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(faultSpec(sim.ModeSRT, "go"), 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, a.Results[i], b.Results[i])
		}
	}
}

// TestFaultFreeRunHasNoDetections guards against false positives.
func TestFaultFreeRunHasNoDetections(t *testing.T) {
	m, err := sim.Build(faultSpec(sim.ModeSRT, "wave5"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Detections()); n != 0 {
		t.Fatalf("fault-free run produced %d detections", n)
	}
}

// TestCampaignRejectsNonRMTModes: injection needs a comparator.
func TestCampaignRejectsNonRMTModes(t *testing.T) {
	if _, err := Campaign(faultSpec(sim.ModeBase, "gcc"), 1, 1); err == nil {
		t.Error("campaign on base mode should error")
	}
}

// TestCampaignParallelMatchesSerial: sharding trials across workers must
// not change a single outcome — the fault plan is drawn from the seed
// before any trial runs and results are keyed by trial index.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	spec := faultSpec(sim.ModeSRT, "compress")
	serial, err := Campaign(spec, 8, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CampaignParallel(spec, 8, 0xBEEF, CampaignOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Detected != parallel.Detected || serial.Masked != parallel.Masked ||
		serial.NotFired != parallel.NotFired || serial.Runs != parallel.Runs ||
		serial.MeanDetectionCycles != parallel.MeanDetectionCycles {
		t.Fatalf("summaries differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for i := range serial.Results {
		if serial.Results[i] != parallel.Results[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, serial.Results[i], parallel.Results[i])
		}
	}
}

// TestPlanDeterministic: the campaign's fault plan is a pure function of
// (spec sizing, n, seed).
func TestPlanDeterministic(t *testing.T) {
	spec := faultSpec(sim.ModeSRT, "gcc", "swim")
	a := Plan(spec, 10, 7)
	b := Plan(spec, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A longer plan extends the shorter one: trial i does not depend on n.
	c := Plan(spec, 20, 7)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("plan entry %d changed when n grew: %v vs %v", i, a[i], c[i])
		}
	}
}

// TestPlanShardingInvariance: the fault plan is a pure function of
// (spec, n, seed), every campaign trial executes exactly its plan entry,
// and the whole summary — per-trial outcomes and Coverage — is invariant
// to CampaignParallel's worker count. This is the sharding contract
// rmtd's /campaign endpoint leans on when it serves cached summaries
// computed at an arbitrary parallelism.
func TestPlanShardingInvariance(t *testing.T) {
	small := func(mode sim.Mode, progs ...string) sim.Spec {
		s := faultSpec(mode, progs...)
		s.Budget, s.Warmup = 3000, 1000
		return s
	}
	cases := []struct {
		name string
		spec sim.Spec
		n    int
		seed uint64
	}{
		{"srt one program", small(sim.ModeSRT, "compress"), 6, 0xA11CE},
		{"srt two programs", small(sim.ModeSRT, "gcc", "swim"), 6, 42},
		{"crt two programs", small(sim.ModeCRT, "gcc", "swim"), 6, 0xBEEF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := Plan(tc.spec, tc.n, tc.seed)
			replan := Plan(tc.spec, tc.n, tc.seed)
			for i := range plan {
				if plan[i] != replan[i] {
					t.Fatalf("plan entry %d not reproducible: %v vs %v", i, plan[i], replan[i])
				}
			}
			var ref *CampaignSummary
			for _, workers := range []int{1, 4, 8} {
				// StopOnDetection is forced inside CampaignParallel; pass a
				// fresh copy so spec mutation cannot leak between runs.
				spec := tc.spec
				sum, err := CampaignParallel(spec, tc.n, tc.seed, CampaignOptions{Parallelism: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for i, res := range sum.Results {
					if res.Fault != plan[i] {
						t.Fatalf("workers=%d trial %d ran fault %v, plan says %v", workers, i, res.Fault, plan[i])
					}
				}
				if ref == nil {
					ref = sum
					continue
				}
				if sum.Runs != ref.Runs || sum.Detected != ref.Detected ||
					sum.Masked != ref.Masked || sum.NotFired != ref.NotFired ||
					sum.MeanDetectionCycles != ref.MeanDetectionCycles ||
					sum.TotalCycles != ref.TotalCycles {
					t.Fatalf("workers=%d summary differs from workers=1:\n%+v\nvs\n%+v", workers, sum, ref)
				}
				if sum.Coverage() != ref.Coverage() {
					t.Fatalf("workers=%d Coverage %v differs from workers=1 Coverage %v",
						workers, sum.Coverage(), ref.Coverage())
				}
				for i := range sum.Results {
					if sum.Results[i] != ref.Results[i] {
						t.Fatalf("workers=%d trial %d = %+v, workers=1 got %+v",
							workers, i, sum.Results[i], ref.Results[i])
					}
				}
			}
		})
	}
}
