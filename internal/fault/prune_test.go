package fault

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/vm"
)

// pruneSpec targets the kernels whose vulnerability profiles carry masked
// sites (gcc, li have dead writes and discarded links), so static pruning
// has real trials to claim.
func pruneSpec() sim.Spec {
	s := faultSpec(sim.ModeSRT, "gcc", "li")
	s.Budget, s.Warmup = 3000, 1000
	return s
}

// TestPrunedCampaignByteIdentical is the pruning invariant: with
// PruneStaticallyMasked on, every aggregate and every per-trial Result must
// match the unpruned campaign exactly — pruning may only skip work whose
// outcome is already proven, never change one.
func TestPrunedCampaignByteIdentical(t *testing.T) {
	spec := pruneSpec()
	const n, seed = 96, 0xACE
	base, err := CampaignParallel(spec, n, seed, CampaignOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("unpruned: %v", err)
	}
	var stats PruneStats
	pruned, err := CampaignParallel(spec, n, seed, CampaignOptions{
		Parallelism:           4,
		PruneStaticallyMasked: true,
		PruneStats:            &stats,
	})
	if err != nil {
		t.Fatalf("pruned: %v", err)
	}
	if stats.Pruned == 0 {
		t.Fatalf("no trials pruned (stats %+v): the test spec no longer exercises pruning", stats)
	}
	t.Logf("prune stats: %+v", stats)
	if pruned.Runs != base.Runs || pruned.Detected != base.Detected ||
		pruned.Masked != base.Masked || pruned.NotFired != base.NotFired ||
		pruned.MeanDetectionCycles != base.MeanDetectionCycles ||
		pruned.TotalCycles != base.TotalCycles {
		t.Fatalf("summary differs:\npruned:   %+v\nunpruned: %+v", pruned, base)
	}
	for i := range pruned.Results {
		if pruned.Results[i] != base.Results[i] {
			t.Fatalf("trial %d: pruned %+v, unpruned %+v", i, pruned.Results[i], base.Results[i])
		}
	}
}

// TestStaticMaskingCrossValidation is the acceptance gate for the ACE
// analysis: over every registered kernel, every statically-masked site that
// fires is replayed under ValidateStaticMasking, which errors if the
// dynamic outcome is anything but Masked-at-the-golden-end-cycle. A failure
// here means the static analysis claimed a proof the machine refutes.
func TestStaticMaskingCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweeps every kernel; skipped in -short")
	}
	for _, name := range program.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := faultSpec(sim.ModeSRT, name)
			spec.Budget, spec.Warmup = 2000, 800
			var stats PruneStats
			_, err := CampaignParallel(spec, 48, 0xC0DE, CampaignOptions{
				Parallelism:           2,
				PruneStaticallyMasked: true,
				ValidateStaticMasking: true,
				PruneStats:            &stats,
			})
			if err != nil {
				t.Fatalf("cross-validation: %v", err)
			}
			t.Logf("prune stats: %+v", stats)
		})
	}
}

// TestStaticMaskedSitesExhaustive aims one injection at EVERY
// statically-masked site of every kernel, rather than waiting for a random
// plan to land on one: a fault-free observer run records the first dynamic
// sequence number at which each masked pc executes, and a targeted
// transient at exactly that sequence must classify Masked for both copies
// and several bit positions. Together with the randomized cross-validation
// above this discharges the claim that no statically-masked site can fire
// as detected.
func TestStaticMaskedSitesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("per-site sweep; skipped in -short")
	}
	sites := 0
	for _, name := range program.Names() {
		prog, err := program.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := analysis.AnalyzeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(prof.MaskedSites) == 0 {
			continue
		}
		spec := faultSpec(sim.ModeSRT, name)
		spec.Budget, spec.Warmup = 2500, 800
		m, err := sim.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		firstSeq := map[uint64]uint64{}
		m.Leads[0].Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
			if point == vm.PointResult && seq >= 64 {
				if _, ok := firstSeq[pc]; !ok {
					firstSeq[pc] = seq
				}
			}
			return v
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s observer run: %v", name, err)
		}
		for _, site := range prof.MaskedSites {
			seq, executed := firstSeq[uint64(site.PC)]
			if !executed {
				// Statically reachable but not covered within the budget
				// (or unreachable by construction): no dynamic site exists.
				continue
			}
			points := []vm.CorruptPoint{vm.PointResult}
			if prog.Code[site.PC].IsLoad() {
				points = append(points, vm.PointLoadValue)
			}
			for _, target := range []Copy{LeadingCopy, TrailingCopy} {
				for _, point := range points {
					for _, bit := range []uint{0, 33, 63} {
						f := Transient{Target: target, AtSeq: seq, Point: point, Bit: bit}
						res, err := RunOne(spec, f)
						if err != nil {
							t.Fatalf("%s pc=%d (%s, %s) %v: %v", name, site.PC, site.Reg, site.Reason, f, err)
						}
						if res.Outcome != Masked {
							t.Errorf("%s pc=%d (%s, %s) %v: outcome %v, want masked",
								name, site.PC, site.Reg, site.Reason, f, res.Outcome)
						}
						sites++
					}
				}
			}
		}
	}
	if sites == 0 {
		t.Fatal("no masked site was exercised: kernels lost all masked sites?")
	}
	t.Logf("validated %d targeted injections at statically-masked sites", sites)
}

// TestPruneStatsWithoutPruning: PruneStats is still filled (with zero
// pruned) when pruning is off, so callers can report unconditionally.
func TestPruneStatsWithoutPruning(t *testing.T) {
	spec := pruneSpec()
	var stats PruneStats
	if _, err := CampaignParallel(spec, 8, 7, CampaignOptions{Parallelism: 1, PruneStats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Planned != 8 || stats.Pruned != 0 {
		t.Fatalf("stats = %+v, want Planned=8 Pruned=0", stats)
	}
}
