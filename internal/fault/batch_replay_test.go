package fault

import (
	"testing"

	"repro/internal/progen"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/vmdiff"
)

// TestGenBatchedCampaignReplay is the campaign's functional core run
// batched: N trials of one generated kernel, each lane armed with its own
// planned transient at the vm corruption layer (lane 0 golden), advanced
// as one vm.Batch and held bit-equal to N scalar per-trial oracle
// replays after every step. The timing engines have TestForkMatchesLegacy;
// this is the same byte-identity obligation for the batched functional
// engine, under the actual campaign fault plan. gen-battery runs it under
// the race detector.
func TestGenBatchedCampaignReplay(t *testing.T) {
	const lanes = 9 // 1 golden + 8 planned trials
	for _, seed := range progen.CorpusSeeds(0xC0FFEE, 8) {
		seed := seed
		t.Run(progen.Name(seed), func(t *testing.T) {
			t.Parallel()
			k := progen.Generate(seed)
			// The plan only reads Programs/Warmup/Budget; the injection
			// windows it draws land inside the kernel's dynamic length.
			faults := Plan(sim.Spec{
				Programs: []string{progen.Name(seed)},
				Warmup:   k.MaxDynInstr / 4,
				Budget:   k.MaxDynInstr,
			}, lanes-1, seed|1)
			l := vmdiff.NewLockstep(k.Prog, lanes, vmdiff.Options{
				Tolerant: true, // a corrupted jump target may leave the image
				Corrupt: func(lane int) vm.CorruptFunc {
					if lane == 0 {
						return nil
					}
					f := faults[lane-1]
					// Stateless single-shot arm: one dynamic instruction
					// invokes each corruption point at most once, so the
					// (seq, point) match flips exactly one value.
					return func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
						if point == f.Point && seq == f.AtSeq {
							return v ^ (1 << (f.Bit & 63))
						}
						return v
					}
				},
			})
			if err := l.Run(4*k.MaxDynInstr + 64); err != nil {
				t.Fatal(err)
			}
		})
	}
}
