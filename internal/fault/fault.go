// Package fault provides the fault models and injection campaigns used to
// demonstrate RMT's detection capability: single-bit transient flips
// injected into one copy of a redundant pair (a cosmic-ray strike on a
// latch), and the permanent-fault coverage analysis behind preferential
// space redundancy.
//
// A transient fault is injected into the functional execution of exactly one
// hardware thread, so the corrupted value propagates through that copy's
// architectural state exactly as a real strike would: it may be masked
// (overwritten before use), or reach the sphere-of-replication boundary
// where the store comparator / load value queue / line prediction stream
// flags the divergence.
package fault

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/progen"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Copy selects which copy of the redundant pair a fault strikes.
type Copy int

// Fault targets.
const (
	// LeadingCopy strikes the leading thread.
	LeadingCopy Copy = iota
	// TrailingCopy strikes the trailing thread.
	TrailingCopy
)

func (c Copy) String() string {
	if c == TrailingCopy {
		return "trailing"
	}
	return "leading"
}

// Transient is a single-bit transient fault: at the victim copy's AtSeq-th
// dynamically executed instruction, flip bit Bit of the value at Point.
type Transient struct {
	// Logical selects which redundant pair (program) to strike.
	Logical int
	// Target selects the leading or trailing copy.
	Target Copy
	// AtSeq is the victim's dynamic instruction number.
	AtSeq uint64
	// Point is the dataflow location to corrupt.
	Point vm.CorruptPoint
	// Bit is the bit to flip (0..63).
	Bit uint
}

func (t Transient) String() string {
	return fmt.Sprintf("transient{pair %d %s seq %d point %d bit %d}",
		t.Logical, t.Target, t.AtSeq, t.Point, t.Bit)
}

// Arm attaches the fault to a built machine. The returned function reports
// whether the fault has fired (some dynamic paths never reach AtSeq with a
// matching corruption point).
func (t Transient) Arm(m *sim.Machine) (fired func() bool, err error) {
	if t.Logical < 0 || t.Logical >= len(m.Leads) {
		return nil, fmt.Errorf("fault: no logical thread %d", t.Logical)
	}
	ctx := m.Leads[t.Logical]
	if t.Target == TrailingCopy {
		ctx = m.Trails[t.Logical]
	}
	if ctx == nil {
		return nil, fmt.Errorf("fault: machine has no %v copy for logical thread %d (mode %v)",
			t.Target, t.Logical, m.Spec.Mode)
	}
	// Locate the victim context for the event log (pid=core, tid=thread).
	core, tid := 0, ctx.TID
	if t.Logical < len(m.Pairs) {
		p := m.Pairs[t.Logical]
		if t.Target == TrailingCopy {
			core = p.TrailCore
		} else {
			core = p.LeadCore
		}
	}
	didFire := false
	prev := ctx.Arch.Corrupt
	ctx.Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
		if prev != nil {
			v = prev(point, seq, pc, v)
		}
		if !didFire && seq >= t.AtSeq && point == t.Point {
			didFire = true
			if m.Events != nil {
				m.Events.Inject(core, tid, m.Cores[core].Cycle(), seq, pc,
					fmt.Sprintf("%v copy, point %d, bit %d", t.Target, int(t.Point), t.Bit))
			}
			return v ^ (1 << (t.Bit & 63))
		}
		return v
	}
	return func() bool { return didFire }, nil
}

// Outcome classifies one injection run.
type Outcome int

// Injection outcomes.
const (
	// Detected: the machine flagged a mismatch at the sphere boundary.
	Detected Outcome = iota
	// Masked: the corrupted value never reached an output — architecturally
	// benign (dead value, overwritten register, idempotent store).
	Masked
	// NotFired: the run ended before the injection point was reached.
	NotFired
	// Recovered (SRTR only): the machine detected the corruption, rolled
	// back to a validated checkpoint, and re-executed to a final
	// architectural state byte-identical to the fault-free run.
	Recovered
	// UnprotectedSDC (adaptive only): the fault fired in an unprotected
	// region, was never detected, and the final architectural state
	// diverges from the fault-free run — silent data corruption, the
	// coverage cost of partial redundancy.
	UnprotectedSDC
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Masked:
		return "masked"
	case NotFired:
		return "not-fired"
	case Recovered:
		return "recovered"
	case UnprotectedSDC:
		return "unprotected-sdc"
	}
	return "outcome?"
}

// Result is one injection's classification.
type Result struct {
	Fault   Transient
	Outcome Outcome
	// DetectionCycles is the cycle count from injection to the first
	// recorded mismatch (Detected only).
	DetectionCycles uint64
	// Cycles is the total number of cycles the trial simulated, whatever
	// the outcome — the campaign's unit of simulation work.
	Cycles uint64
	// Recoveries and RecoveryCycles account SRTR rollbacks (Recovered
	// only): how many the trial performed and the total cycles re-executed.
	// Scalars, so Result stays comparable (the engines diff results with ==).
	Recoveries     int
	RecoveryCycles uint64
}

// CampaignSummary aggregates a campaign.
type CampaignSummary struct {
	Runs     int
	Detected int
	Masked   int
	NotFired int
	// Recovered counts SRTR trials that rolled back and re-executed to the
	// fault-free state.
	Recovered int
	// UnprotectedSDC counts adaptive trials whose undetected corruption
	// reached final architectural state.
	UnprotectedSDC int
	// MeanDetectionCycles averages detection latency over detected runs.
	MeanDetectionCycles float64
	// MeanRecoveryCycles averages the cycles re-executed per rollback over
	// recovered runs (the SRTR recovery-latency figure of merit).
	MeanRecoveryCycles float64
	// TotalCycles sums the simulated cycles of every trial: the campaign's
	// total simulation work, used to express throughput as cycles/second.
	TotalCycles uint64
	Results     []Result
}

// Coverage returns the fraction of fired faults the machine handled —
// detected at the sphere boundary or detected-and-recovered — over all
// fired faults. Masked counts in the denominator (a masked fault was
// handled by luck, not the mechanism, but is also benign); UnprotectedSDC
// is the outcome coverage loses to.
func (s *CampaignSummary) Coverage() float64 {
	fired := s.Detected + s.Recovered + s.Masked + s.UnprotectedSDC
	if fired == 0 {
		return 0
	}
	return float64(s.Detected+s.Recovered) / float64(fired)
}

// rng is a small deterministic xorshift generator so campaigns are exactly
// reproducible.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// Plan draws the deterministic fault sequence a campaign over spec with
// this seed injects: trial i of the campaign injects Plan(spec, n, seed)[i].
// Drawing the whole plan from the serial generator before any trial runs is
// what lets CampaignParallel shard trials across workers without changing
// a single outcome.
func Plan(spec sim.Spec, n int, seed uint64) []Transient {
	r := rng(seed | 1)
	points := []vm.CorruptPoint{vm.PointResult, vm.PointStoreData, vm.PointLoadValue, vm.PointStoreAddr}
	faults := make([]Transient, n)
	for i := range faults {
		faults[i] = Transient{
			// Reduce in uint64 space: casting the raw draw to int first can
			// go negative, and a negative % yields an unarmable pair index.
			Logical: int(r.next() % uint64(max(len(spec.Programs), 1))),
			Target:  Copy(r.next() % 2),
			AtSeq:   spec.Warmup/2 + r.next()%(spec.Warmup/2+spec.Budget/2+1),
			Point:   points[r.next()%uint64(len(points))],
			Bit:     uint(r.next() % 64),
		}
	}
	return faults
}

// Campaign runs n injection trials against the configuration described by
// spec (which must be an RMT mode: SRT or CRT). Each trial injects one
// transient at a pseudo-random point after warmup and classifies the
// outcome. Trials run serially; use CampaignParallel to shard them across
// workers.
func Campaign(spec sim.Spec, n int, seed uint64) (*CampaignSummary, error) {
	return CampaignParallel(spec, n, seed, CampaignOptions{Parallelism: 1})
}

// CampaignOptions configure how a campaign schedules its trials.
type CampaignOptions struct {
	// Parallelism caps concurrent trials (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// Progress, when non-nil, receives (done, total) trial counts.
	Progress func(done, total int)
	// OnReport, when non-nil, receives the campaign's timing report.
	OnReport func(runner.Report)
	// Cancel, when non-nil, is polled before each trial; a non-nil return
	// aborts the campaign with that error (context cancellation plumbing).
	Cancel func() error
	// PruneStaticallyMasked classifies fired trials whose injection site
	// the static ACE analysis (analysis.AnalyzeProgram) proves masked —
	// the corrupted destination register is dead at the fire pc — without
	// replaying them. The pruned summary is byte-identical to the unpruned
	// one: a dead-register flip cannot change any architectural outcome,
	// so the replay the prune skips is provably the golden suffix with the
	// golden end cycle and the Masked outcome. Only the fork-on-fault
	// engine supports pruning (it needs the golden pass's fire pcs).
	PruneStaticallyMasked bool
	// ValidateStaticMasking replays every pruned trial anyway and fails
	// the campaign if the dynamic result disagrees with the static
	// classification — the cross-validation gate for the ACE analysis.
	// Implies PruneStaticallyMasked does not save any work.
	ValidateStaticMasking bool
	// PruneStats, when non-nil, receives what pruning did.
	PruneStats *PruneStats
}

// PruneStats reports the effect of PruneStaticallyMasked on one campaign.
type PruneStats struct {
	// Planned is the campaign's trial count.
	Planned int
	// Fired counts trials whose fault fires in the golden run (the rest
	// are classified from golden end state by both engines already).
	Fired int
	// Pruned counts fired trials the static analysis classified without
	// replay.
	Pruned int
}

// replayChunkSize bounds how many replay trials ride in one worker job.
// Trials in a chunk share a golden checkpoint, so a worker restores from
// the same (cache-hot) snapshot bytes back to back and recycles one pooled
// machine across the whole chunk instead of bouncing it through the pool
// per trial. The bound keeps chunks small enough to load-balance across
// workers when fires cluster around one checkpoint.
const replayChunkSize = 8

// CampaignParallel runs the same campaign as Campaign with the injection
// trials sharded across a worker pool, using the fork-on-fault engine: the
// fault-free (golden) run is simulated once, with machine-state checkpoints
// taken at a fixed cycle interval, and each trial restores the last
// checkpoint before its injection point and replays only the suffix instead
// of re-simulating the whole prefix. Trials that need no replay at all —
// never fired, or statically pruned — are classified inline from golden end
// state; the rest are grouped into chunks sharing a golden checkpoint (see
// replayChunkSize) and sharded across the pool. Replay machines are
// recycled through a pool (restore overwrites all mutable state), so
// steady-state trial cost is one snapshot decode plus the suffix cycles.
// The fault plan is fixed before the first trial starts and results are
// written by trial index, so the summary — including per-trial outcome
// order — is identical at any parallelism, and byte-identical to
// CampaignLegacy's.
func CampaignParallel(spec sim.Spec, n int, seed uint64, opts CampaignOptions) (*CampaignSummary, error) {
	if !CampaignMode(spec.Mode) {
		return nil, fmt.Errorf("fault: campaign requires an RMT mode, got %v", spec.Mode)
	}
	spec.StopOnDetection = true
	if opts.Cancel != nil {
		if err := opts.Cancel(); err != nil {
			return nil, err
		}
	}
	faults := Plan(spec, n, seed)
	prep, err := forkPrepare(spec, faults)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run: %w", err)
	}
	pruned, err := planPruning(spec, faults, prep, opts)
	if err != nil {
		return nil, err
	}

	// Campaign-owned per-trial progress: workers complete whole chunks, but
	// the caller still sees trial counts.
	var progMu sync.Mutex
	doneTrials := 0
	trialsDone := func(k int) {
		if opts.Progress == nil || k == 0 {
			return
		}
		progMu.Lock()
		doneTrials += k
		opts.Progress(doneTrials, n)
		progMu.Unlock()
	}

	// Classify the cheap trials inline — their outcome is a function of
	// golden end state (or the static proof), no replay involved.
	results := make([]Result, n)
	var replays []int
	cheap := 0
	for i, f := range faults {
		switch {
		case !prep.fired[i]:
			results[i] = prep.classifyUnfired(f)
			cheap++
		case pruned[i] != nil && !opts.ValidateStaticMasking:
			results[i] = *pruned[i]
			cheap++
		default:
			replays = append(replays, i)
		}
	}
	trialsDone(cheap)

	chunks := chunkByCheckpoint(replays, prep)
	jobs := make([]func() (struct{}, error), len(chunks))
	for ci, chunk := range chunks {
		chunk := chunk
		jobs[ci] = func() (struct{}, error) {
			for _, i := range chunk {
				if opts.Cancel != nil {
					if err := opts.Cancel(); err != nil {
						return struct{}{}, err
					}
				}
				f := faults[i]
				res, err := prep.replay(spec, f, i)
				if err != nil {
					return struct{}{}, fmt.Errorf("fault: trial %d (%v): %w", i, f, err)
				}
				if pruned[i] != nil && res != *pruned[i] {
					return struct{}{}, fmt.Errorf("fault: trial %d (%v): static masking disagrees with replay: static %+v, dynamic %+v",
						i, f, *pruned[i], res)
				}
				results[i] = res
				trialsDone(1)
			}
			return struct{}{}, nil
		}
	}
	_, rep, err := runner.Run(jobs, runner.Options{Parallelism: opts.Parallelism})
	if opts.OnReport != nil {
		opts.OnReport(rep)
	}
	if err != nil {
		return nil, err
	}
	return summarize(n, results), nil
}

// chunkByCheckpoint groups replay trials by the golden checkpoint they
// restore from and splits each group into chunks of at most
// replayChunkSize, in ascending (checkpoint, trial index) order. Chunks
// write disjoint trial indices, so scheduling order cannot affect the
// summary.
func chunkByCheckpoint(replays []int, prep *forkPrep) [][]int {
	byBase := make(map[uint64][]int)
	var bases []uint64
	for _, i := range replays {
		base := prep.restoreBase(i)
		if byBase[base] == nil {
			bases = append(bases, base)
		}
		byBase[base] = append(byBase[base], i)
	}
	sort.Slice(bases, func(a, b int) bool { return bases[a] < bases[b] })
	var chunks [][]int
	for _, base := range bases {
		g := byBase[base]
		for len(g) > replayChunkSize {
			chunks = append(chunks, g[:replayChunkSize])
			g = g[replayChunkSize:]
		}
		if len(g) > 0 {
			chunks = append(chunks, g)
		}
	}
	return chunks
}

// CampaignLegacy runs the campaign with the original per-trial engine:
// every trial builds a fresh machine and re-simulates warmup plus the
// entire fault-free prefix before its injection point. It is retained as
// the equivalence baseline for the fork-on-fault engine (the two must
// produce byte-identical summaries) and for benchmarking the speedup.
func CampaignLegacy(spec sim.Spec, n int, seed uint64, opts CampaignOptions) (*CampaignSummary, error) {
	if !CampaignMode(spec.Mode) {
		return nil, fmt.Errorf("fault: campaign requires an RMT mode, got %v", spec.Mode)
	}
	spec.StopOnDetection = true
	golden, err := goldenDigest(spec)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run: %w", err)
	}
	faults := Plan(spec, n, seed)
	jobs := make([]func() (Result, error), n)
	for i := range faults {
		i, f := i, faults[i]
		jobs[i] = func() (Result, error) {
			if opts.Cancel != nil {
				if err := opts.Cancel(); err != nil {
					return Result{}, err
				}
			}
			res, err := runOneWith(spec, f, golden)
			if err != nil {
				return Result{}, fmt.Errorf("fault: trial %d (%v): %w", i, f, err)
			}
			return res, nil
		}
	}
	results, rep, err := runner.Run(jobs, runner.Options{Parallelism: opts.Parallelism, Progress: opts.Progress})
	if opts.OnReport != nil {
		opts.OnReport(rep)
	}
	if err != nil {
		return nil, err
	}
	return summarize(n, results), nil
}

// CampaignMode reports whether the mode supports injection campaigns: it
// needs a redundant pair to strike and a detection (or, for adaptive, an
// architectural-digest) boundary to classify against. The serving layer's
// campaign gate and the mode round-trip battery key off this predicate so
// the engine stays the single source of truth.
func CampaignMode(m sim.Mode) bool {
	switch m {
	case sim.ModeSRT, sim.ModeCRT, sim.ModeSRTR, sim.ModeAdaptive:
		return true
	}
	return false
}

// summarize aggregates per-trial results into the campaign summary; shared
// by both engines so aggregation can never diverge between them.
func summarize(n int, results []Result) *CampaignSummary {
	sum := &CampaignSummary{Runs: n, Results: results}
	var totalLatency, totalRecovery uint64
	for _, res := range results {
		sum.TotalCycles += res.Cycles
		switch res.Outcome {
		case Detected:
			sum.Detected++
			totalLatency += res.DetectionCycles
		case Masked:
			sum.Masked++
		case NotFired:
			sum.NotFired++
		case Recovered:
			sum.Recovered++
			totalRecovery += res.RecoveryCycles
		case UnprotectedSDC:
			sum.UnprotectedSDC++
		}
	}
	if sum.Detected > 0 {
		sum.MeanDetectionCycles = float64(totalLatency) / float64(sum.Detected)
	}
	if sum.Recovered > 0 {
		sum.MeanRecoveryCycles = float64(totalRecovery) / float64(sum.Recovered)
	}
	return sum
}

// planPruning statically pre-classifies fired trials when the options ask
// for it. The returned slice holds, per trial, the Result static analysis
// proves — nil when the trial must (or may as well) replay.
//
// A trial is prunable when all of the following hold:
//
//   - the golden run is healthy (no detections, no halt divergence for the
//     victim pair): otherwise every trial is classified Detected from
//     golden end state and static masking is moot;
//   - the fault corrupts a destination register (PointResult, or
//     PointLoadValue, whose corrupted value lands in the load's
//     destination; the load value queue replicates addresses, not values,
//     across the sphere boundary) — store data/address corruptions always
//     face the store comparator and are never pruned;
//   - the ACE analysis proves the destination register dead at the fire
//     pc recorded by the golden pass.
//
// For such a trial the flip is invisible to every consumer: the victim's
// timing and all compared values are unchanged, so the replay would run
// the golden suffix to the golden end cycle and classify Masked with zero
// detection latency — exactly the Result returned here. That equivalence
// is what keeps pruned summaries byte-identical, and is machine-checked by
// ValidateStaticMasking (the cross-validation gate).
//
// SRTR never prunes: its register value queue cross-checks every retired
// destination value, so a flip the ACE analysis proves architecturally
// masked is still detected microarchitecturally and recovered — the static
// Masked classification would be wrong.
func planPruning(spec sim.Spec, faults []Transient, prep *forkPrep, opts CampaignOptions) ([]*Result, error) {
	if spec.Mode == sim.ModeSRTR ||
		(!opts.PruneStaticallyMasked && !opts.ValidateStaticMasking) {
		if opts.PruneStats != nil {
			*opts.PruneStats = PruneStats{Planned: len(faults)}
		}
		return make([]*Result, len(faults)), nil
	}
	masked, err := staticMaskedSites(spec)
	if err != nil {
		return nil, fmt.Errorf("fault: static analysis: %w", err)
	}
	pruned := make([]*Result, len(faults))
	stats := PruneStats{Planned: len(faults)}
	for i, f := range faults {
		if !prep.fired[i] {
			continue
		}
		stats.Fired++
		if prep.detections > 0 || prep.haltDiverged[f.Logical] {
			continue
		}
		if f.Point != vm.PointResult && f.Point != vm.PointLoadValue {
			continue
		}
		if sites := masked[f.Logical]; sites != nil && sites[int(prep.firePC[i])] {
			pruned[i] = &Result{Fault: f, Outcome: Masked, Cycles: prep.endCycle}
			stats.Pruned++
		}
	}
	if opts.PruneStats != nil {
		*opts.PruneStats = stats
	}
	return pruned, nil
}

// staticMaskedSites runs the ACE analysis over each of the campaign's
// programs and returns, per logical thread, the set of pcs whose
// destination-register injection site is provably masked (nil when the
// analysis is conservative and proves nothing).
func staticMaskedSites(spec sim.Spec) ([]map[int]bool, error) {
	cache := make(map[string]map[int]bool, len(spec.Programs))
	out := make([]map[int]bool, len(spec.Programs))
	for i, name := range spec.Programs {
		sites, ok := cache[name]
		if !ok {
			prog, err := progen.Build(name)
			if err != nil {
				return nil, err
			}
			prof, err := analysis.AnalyzeProgram(prog)
			if err != nil {
				return nil, err
			}
			if !prof.Conservative {
				sites = make(map[int]bool, len(prof.MaskedSites))
				for _, s := range prof.MaskedSites {
					sites[s.PC] = true
				}
			}
			cache[name] = sites
		}
		out[i] = sites
	}
	return out, nil
}

// checkpointInterval is the golden-run checkpoint spacing in machine
// iterations. A trial replays from the last checkpoint at or before its
// fire iteration; an armed fault is silent until its exact injection point,
// so the replayed prefix re-executes the golden run bit-for-bit and the
// interval trades at most this many re-simulated cycles per trial against
// the cost of encoding checkpoints nobody replays from.
const checkpointInterval = 1024

// convergenceChecks bounds how many checkpoint boundaries past its fire a
// replay trial compares itself against the golden run before giving up and
// simulating to the end. Masked faults die fast — the corrupted value is
// overwritten and the machine state rejoins the golden run bitwise within a
// boundary or two — so a small bound captures the early exits while capping
// the snapshot-encode cost of trials that genuinely diverge.
const convergenceChecks = 2

// srtrReplayHistory is how many extra checkpoint intervals of golden
// snapshot history an SRTR replay keeps (and restores) below each fire's
// checkpoint base. Two intervals comfortably cover the checkpoint
// validation lag (bounded by the pair's slack: RVQ/LPQ depth worth of
// commits plus store-comparator drain), so by the time the fault fires the
// replayed machine has re-validated a rollback target at the same cycle the
// from-scratch (legacy) run holds as its newest validated checkpoint.
const srtrReplayHistory = 2

// errConverged aborts a replay whose state has become byte-identical to the
// golden run: the rest of the trial is provably the golden suffix, so its
// outcome is known without simulating it.
var errConverged = errors.New("fault: replay converged with golden run")

// forkPrep carries what the golden pass learned: per fault, whether it
// fires and at which machine iteration; periodic checkpoints covering every
// fire; the golden run's end state for classifying unfired trials; and a
// pool of machines recycled across replay trials.
type forkPrep struct {
	fired    []bool
	fireIter []uint64          // machine iteration (Machine.Cycles) at fire
	firePC   []uint64          // victim pc at fire (static-pruning lookup key)
	snaps    map[uint64][]byte // checkpoint iteration -> snapshot
	pool     sync.Pool         // recycled *sim.Machine for replay trials

	endCycle     uint64 // Cores[0].Cycle() at golden completion
	detections   int    // golden detections (0 in a healthy machine)
	haltDiverged []bool // per logical: lead/trail halt states diverged

	// history widens the replay window below each fire's checkpoint base
	// (SRTR only, 0 otherwise): a restored SRTR machine must re-validate
	// its entry checkpoint before it can roll back to it, so the replay
	// starts early enough that validation completes — and the machine holds
	// the same newest-validated rollback target a from-scratch run would —
	// before the fault fires.
	history uint64
	// golden, when non-nil (adaptive only), is the fault-free run's final
	// architectural digest, the reference undetected trials are classified
	// against (Masked vs UnprotectedSDC).
	golden *[32]byte
}

// restoreBase returns the checkpoint iteration a fired trial replays from:
// the last checkpoint at or before its fire iteration, walked down by up to
// history cycles of retained earlier checkpoints (see forkPrep.history).
// The golden run reached the fire iteration, so every checkpoint boundary
// in the window was crossed and the lookups cannot miss.
func (p *forkPrep) restoreBase(i int) uint64 {
	base := p.fireIter[i] - p.fireIter[i]%checkpointInterval
	lo := uint64(0)
	if base > p.history {
		lo = base - p.history
	}
	for base > lo && p.snaps[base-checkpointInterval] != nil {
		base -= checkpointInterval
	}
	return base
}

// checkpointFor returns the snapshot trial i replays from.
func (p *forkPrep) checkpointFor(i int) []byte {
	return p.snaps[p.restoreBase(i)]
}

// classifyUnfired reproduces the legacy engine's classification for a trial
// whose fault never fires: such a trial's machine executes the golden run
// bit-for-bit (an armed-but-silent fault and oracle tolerance change
// nothing on a fault-free path), so its outcome is a function of golden end
// state alone.
func (p *forkPrep) classifyUnfired(f Transient) Result {
	res := Result{Fault: f, Cycles: p.endCycle}
	switch {
	case p.detections > 0 || p.haltDiverged[f.Logical]:
		res.Outcome = Detected
		res.DetectionCycles = p.endCycle // fireCycle 0, end > 0
	default:
		res.Outcome = NotFired
	}
	return res
}

// forkPrepare runs the golden simulation once, doing two things at the same
// time: read-only observers record (without perturbing) the machine
// iteration where each planned fault first fires, and the OnCycle hook
// captures a state checkpoint every checkpointInterval iterations. The
// observers return every value unchanged and snapshot encoding only reads
// state, so the pass executes the identical fault-free run. Checkpoints no
// fired fault replays from are dropped afterwards, and the golden machine
// itself seeds the replay pool.
func forkPrepare(spec sim.Spec, faults []Transient) (*forkPrep, error) {
	p := &forkPrep{
		fired:    make([]bool, len(faults)),
		fireIter: make([]uint64, len(faults)),
		firePC:   make([]uint64, len(faults)),
		snaps:    make(map[uint64][]byte),
	}
	if spec.Mode == sim.ModeSRTR {
		p.history = srtrReplayHistory * checkpointInterval
	}
	g, err := sim.Build(spec)
	if err != nil {
		return nil, err
	}
	// firedCount and maxFire track fire discovery as the golden run
	// progresses, so checkpointing can stop once no future checkpoint could
	// be replayed from or converged against.
	firedCount, maxFire := 0, uint64(0)
	// Group fault indices by victim context in deterministic (logical,
	// target) order and install one read-only observer per victim. The
	// observer mirrors Arm's trigger condition per fault — first call with
	// seq >= AtSeq at the matching point — and records the machine
	// iteration, which is the cycle to snapshot before.
	for logical := 0; logical < len(g.Leads); logical++ {
		for _, target := range []Copy{LeadingCopy, TrailingCopy} {
			var mine []int
			for i, f := range faults {
				if f.Logical == logical && f.Target == target {
					mine = append(mine, i)
				}
			}
			if len(mine) == 0 {
				continue
			}
			ctx := g.Leads[logical]
			if target == TrailingCopy {
				ctx = g.Trails[logical]
			}
			if ctx == nil {
				return nil, fmt.Errorf("no %v copy for logical thread %d (mode %v)",
					target, logical, spec.Mode)
			}
			ctx.Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
				for _, i := range mine {
					if !p.fired[i] && seq >= faults[i].AtSeq && point == faults[i].Point {
						p.fired[i] = true
						p.fireIter[i] = g.Cycles
						p.firePC[i] = pc
						firedCount++
						if g.Cycles > maxFire {
							maxFire = g.Cycles
						}
					}
				}
				return v
			}
		}
	}
	g.OnCycle = func(cycle uint64) error {
		if cycle%checkpointInterval != 0 {
			return nil
		}
		// Once every fault has fired, checkpoints are only useful as
		// convergence references for the latest fire; past that horizon
		// nothing can replay from or compare against them.
		if firedCount == len(faults) &&
			cycle > maxFire-maxFire%checkpointInterval+convergenceChecks*checkpointInterval {
			return nil
		}
		snap, err := g.Snapshot()
		if err != nil {
			return err
		}
		p.snaps[cycle] = snap
		return nil
	}
	if _, err := g.Run(); err != nil {
		return nil, err
	}
	p.endCycle = g.Cores[0].Cycle()
	p.detections = len(g.Detections())
	p.haltDiverged = make([]bool, len(g.Leads))
	for i := range g.Leads {
		if tr := g.Trails[i]; tr != nil {
			p.haltDiverged[i] = g.Leads[i].Arch.Halted != tr.Arch.Halted
		}
	}
	if spec.Mode == sim.ModeAdaptive {
		d := g.ArchDigest()
		p.golden = &d
	}
	// Checkpoints before the earliest replay base serve neither as restore
	// points nor as convergence references; drop them (for SRTR the window
	// extends history cycles lower — see restoreBase). Everything later
	// stays: a trial may replay from it, or compare against it to prove it
	// has rejoined the golden run.
	minBase, anyFired := ^uint64(0), false
	for i := range faults {
		if p.fired[i] {
			base := p.fireIter[i] - p.fireIter[i]%checkpointInterval
			if p.snaps[base] == nil {
				return nil, fmt.Errorf("golden run has no checkpoint %d for fire cycle %d", base, p.fireIter[i])
			}
			if base < minBase {
				minBase = base
			}
			anyFired = true
		}
	}
	keepFrom := uint64(0)
	if minBase > p.history {
		keepFrom = minBase - p.history
	}
	for cycle := range p.snaps {
		if !anyFired || cycle < keepFrom {
			delete(p.snaps, cycle)
		}
	}
	// The golden machine's job is done; strip its hooks and let the first
	// replay trial recycle it instead of building from scratch.
	g.OnCycle = nil
	clearCorruptHooks(g)
	p.pool.Put(g)
	return p, nil
}

// clearCorruptHooks detaches every corruption closure from the machine.
// Arm chains onto Arch.Corrupt and hook wiring is deliberately outside the
// snapshot, so a recycled machine must shed the previous trial's closures
// before it is re-armed.
func clearCorruptHooks(m *sim.Machine) {
	for i := range m.Leads {
		m.Leads[i].Arch.Corrupt = nil
		if tr := m.Trails[i]; tr != nil {
			tr.Arch.Corrupt = nil
		}
	}
}

// replay restores trial i's golden checkpoint into a pooled machine (or a
// fresh build when the pool is empty), arms the fault, and replays the
// suffix. RestoreState replaces all mutable simulated state, so a machine
// that just finished another trial restores as cleanly as a fresh one; the
// machine returns to the pool only after a successful trial.
//
// When the golden run is healthy, the replay also watches for convergence:
// at the first checkpoint boundaries past the fire, the trial's state is
// compared bytewise against the golden checkpoint at the same cycle. A
// match proves the fault's effects have died out entirely — every later
// cycle of the trial IS the golden run — so the trial ends immediately with
// the masked outcome and the golden end cycle, exactly what simulating the
// rest would produce.
func (p *forkPrep) replay(spec sim.Spec, f Transient, i int) (Result, error) {
	m, _ := p.pool.Get().(*sim.Machine)
	if m == nil {
		var err error
		m, err = sim.Build(spec)
		if err != nil {
			return Result{}, err
		}
	}
	clearCorruptHooks(m)
	if err := m.RestoreState(p.checkpointFor(i)); err != nil {
		return Result{}, err
	}
	m.OnCycle = nil
	if p.detections == 0 && !p.haltDiverged[f.Logical] {
		fire := p.fireIter[i]
		checks := 0
		m.OnCycle = func(cycle uint64) error {
			if cycle%checkpointInterval != 0 || cycle <= fire || checks >= convergenceChecks {
				return nil
			}
			gsnap := p.snaps[cycle]
			if gsnap == nil || len(m.Detections()) > 0 {
				return nil
			}
			checks++
			eq, err := convergedWithGolden(m, f, gsnap)
			if err != nil {
				return err
			}
			if eq {
				return errConverged
			}
			return nil
		}
	}
	res, err := runArmed(m, f, p.golden)
	if errors.Is(err, errConverged) {
		// Byte-identical to the golden run from here on: the rest of the
		// trial is provably the golden suffix. If the machine rolled back
		// to get there, the convergence is the proof of recovery.
		res = Result{Fault: f, Outcome: Masked, Cycles: p.endCycle}
		if m.Recoveries > 0 {
			res.Outcome = Recovered
			res.Recoveries = m.Recoveries
			res.RecoveryCycles = m.RecoveryCycles
		}
		err = nil
	}
	if err != nil {
		return Result{}, err
	}
	m.OnCycle = nil
	p.pool.Put(m)
	return res, nil
}

// convergedWithGolden reports whether the trial machine's state is
// byte-identical to a golden checkpoint taken at the same cycle. The only
// serialized field the replay harness itself perturbs is the victim pair's
// Tolerant flag, so it is masked off for the comparison; everything else
// must match bit-for-bit for convergence to hold.
func convergedWithGolden(m *sim.Machine, f Transient, gsnap []byte) (bool, error) {
	lead := m.Leads[f.Logical]
	trail := m.Trails[f.Logical]
	lt := lead.Arch.Tolerant
	lead.Arch.Tolerant = false
	var tt bool
	if trail != nil {
		tt = trail.Arch.Tolerant
		trail.Arch.Tolerant = false
	}
	ts, err := m.Snapshot()
	lead.Arch.Tolerant = lt
	if trail != nil {
		trail.Arch.Tolerant = tt
	}
	if err != nil {
		return false, err
	}
	return bytes.Equal(ts, gsnap), nil
}

// RunOne builds a machine for spec, injects the single fault, runs to
// detection or completion, and classifies the outcome. For adaptive specs
// it first simulates the fault-free run to obtain the architectural
// reference digest; campaigns amortise that golden run across trials.
func RunOne(spec sim.Spec, f Transient) (Result, error) {
	golden, err := goldenDigest(spec)
	if err != nil {
		return Result{}, err
	}
	return runOneWith(spec, f, golden)
}

// goldenDigest returns the fault-free run's final architectural digest for
// adaptive specs, and nil for every other mode (they classify entirely at
// the detection boundary).
func goldenDigest(spec sim.Spec) (*[32]byte, error) {
	if spec.Mode != sim.ModeAdaptive {
		return nil, nil
	}
	g, err := sim.Build(spec)
	if err != nil {
		return nil, err
	}
	if _, err := g.Run(); err != nil {
		return nil, err
	}
	d := g.ArchDigest()
	return &d, nil
}

// runOneWith is RunOne with the golden digest supplied by the caller.
func runOneWith(spec sim.Spec, f Transient, golden *[32]byte) (Result, error) {
	spec.StopOnDetection = true
	m, err := sim.Build(spec)
	if err != nil {
		return Result{}, err
	}
	return runArmed(m, f, golden)
}

// runArmed arms f on a ready machine (fresh or restored), runs to detection
// or completion, and classifies the outcome. golden, when non-nil, is the
// fault-free architectural digest undetected adaptive trials are compared
// against.
func runArmed(m *sim.Machine, f Transient, golden *[32]byte) (Result, error) {
	fired, err := f.Arm(m)
	if err != nil {
		return Result{}, err
	}
	// A corrupted jump target may leave the code image; let the victim
	// pair's oracles halt gracefully so the divergence is flagged rather
	// than crashing the simulation.
	m.Leads[f.Logical].Arch.Tolerant = true
	if tr := m.Trails[f.Logical]; tr != nil {
		tr.Arch.Tolerant = true
	}
	// Record the cycle at which the fault fires by sampling around the arm
	// closure: wrap again to capture the cycle.
	var fireCycle uint64
	ctx := m.Leads[f.Logical]
	if f.Target == TrailingCopy {
		ctx = m.Trails[f.Logical]
	}
	inner := ctx.Arch.Corrupt
	armed := false
	ctx.Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
		nv := inner(point, seq, pc, v)
		if !armed && nv != v {
			armed = true
			fireCycle = m.Cores[0].Cycle()
		}
		return nv
	}
	if _, err := m.Run(); err != nil {
		// A deadlock after divergence can only follow an unrecorded
		// divergence; treat any watchdog error with detections as
		// detected, otherwise propagate.
		if len(m.Detections()) == 0 {
			return Result{}, err
		}
	}
	// A corrupted jump that leaves the code image halts one copy; the two
	// copies' halt states diverging is an observable failure (the trailing
	// store stream stops matching / the checker watchdog fires), so it
	// counts as detected.
	haltDivergence := false
	if tr := m.Trails[f.Logical]; tr != nil {
		haltDivergence = m.Leads[f.Logical].Arch.Halted != tr.Arch.Halted
	}
	res := Result{Fault: f, Cycles: m.Cores[0].Cycle()}
	switch {
	case len(m.Detections()) > 0 || haltDivergence:
		// Standing detections: either a non-recovering mode, or SRTR out
		// of rollback targets/recovery budget.
		res.Outcome = Detected
		end := m.Cores[0].Cycle()
		if end > fireCycle {
			res.DetectionCycles = end - fireCycle
		}
	case !fired():
		res.Outcome = NotFired
	case m.Recoveries > 0:
		// SRTR rolled back past the corruption and re-executed the golden
		// suffix (the transient is one-shot, so it cannot re-fire).
		res.Outcome = Recovered
		res.Recoveries = m.Recoveries
		res.RecoveryCycles = m.RecoveryCycles
	case golden != nil && m.ArchDigest() != *golden:
		res.Outcome = UnprotectedSDC
	default:
		res.Outcome = Masked
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
