// Package fault provides the fault models and injection campaigns used to
// demonstrate RMT's detection capability: single-bit transient flips
// injected into one copy of a redundant pair (a cosmic-ray strike on a
// latch), and the permanent-fault coverage analysis behind preferential
// space redundancy.
//
// A transient fault is injected into the functional execution of exactly one
// hardware thread, so the corrupted value propagates through that copy's
// architectural state exactly as a real strike would: it may be masked
// (overwritten before use), or reach the sphere-of-replication boundary
// where the store comparator / load value queue / line prediction stream
// flags the divergence.
package fault

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Copy selects which copy of the redundant pair a fault strikes.
type Copy int

// Fault targets.
const (
	// LeadingCopy strikes the leading thread.
	LeadingCopy Copy = iota
	// TrailingCopy strikes the trailing thread.
	TrailingCopy
)

func (c Copy) String() string {
	if c == TrailingCopy {
		return "trailing"
	}
	return "leading"
}

// Transient is a single-bit transient fault: at the victim copy's AtSeq-th
// dynamically executed instruction, flip bit Bit of the value at Point.
type Transient struct {
	// Logical selects which redundant pair (program) to strike.
	Logical int
	// Target selects the leading or trailing copy.
	Target Copy
	// AtSeq is the victim's dynamic instruction number.
	AtSeq uint64
	// Point is the dataflow location to corrupt.
	Point vm.CorruptPoint
	// Bit is the bit to flip (0..63).
	Bit uint
}

func (t Transient) String() string {
	return fmt.Sprintf("transient{pair %d %s seq %d point %d bit %d}",
		t.Logical, t.Target, t.AtSeq, t.Point, t.Bit)
}

// Arm attaches the fault to a built machine. The returned function reports
// whether the fault has fired (some dynamic paths never reach AtSeq with a
// matching corruption point).
func (t Transient) Arm(m *sim.Machine) (fired func() bool, err error) {
	if t.Logical < 0 || t.Logical >= len(m.Leads) {
		return nil, fmt.Errorf("fault: no logical thread %d", t.Logical)
	}
	ctx := m.Leads[t.Logical]
	if t.Target == TrailingCopy {
		ctx = m.Trails[t.Logical]
	}
	if ctx == nil {
		return nil, fmt.Errorf("fault: machine has no %v copy for logical thread %d (mode %v)",
			t.Target, t.Logical, m.Spec.Mode)
	}
	// Locate the victim context for the event log (pid=core, tid=thread).
	core, tid := 0, ctx.TID
	if t.Logical < len(m.Pairs) {
		p := m.Pairs[t.Logical]
		if t.Target == TrailingCopy {
			core = p.TrailCore
		} else {
			core = p.LeadCore
		}
	}
	didFire := false
	prev := ctx.Arch.Corrupt
	ctx.Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
		if prev != nil {
			v = prev(point, seq, pc, v)
		}
		if !didFire && seq >= t.AtSeq && point == t.Point {
			didFire = true
			if m.Events != nil {
				m.Events.Inject(core, tid, m.Cores[core].Cycle(), seq, pc,
					fmt.Sprintf("%v copy, point %d, bit %d", t.Target, int(t.Point), t.Bit))
			}
			return v ^ (1 << (t.Bit & 63))
		}
		return v
	}
	return func() bool { return didFire }, nil
}

// Outcome classifies one injection run.
type Outcome int

// Injection outcomes.
const (
	// Detected: the machine flagged a mismatch at the sphere boundary.
	Detected Outcome = iota
	// Masked: the corrupted value never reached an output — architecturally
	// benign (dead value, overwritten register, idempotent store).
	Masked
	// NotFired: the run ended before the injection point was reached.
	NotFired
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Masked:
		return "masked"
	case NotFired:
		return "not-fired"
	}
	return "outcome?"
}

// Result is one injection's classification.
type Result struct {
	Fault   Transient
	Outcome Outcome
	// DetectionCycles is the cycle count from injection to the first
	// recorded mismatch (Detected only).
	DetectionCycles uint64
	// Cycles is the total number of cycles the trial simulated, whatever
	// the outcome — the campaign's unit of simulation work.
	Cycles uint64
}

// CampaignSummary aggregates a campaign.
type CampaignSummary struct {
	Runs     int
	Detected int
	Masked   int
	NotFired int
	// MeanDetectionCycles averages detection latency over detected runs.
	MeanDetectionCycles float64
	// TotalCycles sums the simulated cycles of every trial: the campaign's
	// total simulation work, used to express throughput as cycles/second.
	TotalCycles uint64
	Results     []Result
}

// Coverage returns detected / (detected + masked-that-mattered)… for RMT the
// meaningful ratio is detected / fired-and-unmasked; since every unmasked
// fault is detected at the output boundary, we report detected/fired.
func (s *CampaignSummary) Coverage() float64 {
	fired := s.Detected + s.Masked
	if fired == 0 {
		return 0
	}
	return float64(s.Detected) / float64(fired)
}

// rng is a small deterministic xorshift generator so campaigns are exactly
// reproducible.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// Plan draws the deterministic fault sequence a campaign over spec with
// this seed injects: trial i of the campaign injects Plan(spec, n, seed)[i].
// Drawing the whole plan from the serial generator before any trial runs is
// what lets CampaignParallel shard trials across workers without changing
// a single outcome.
func Plan(spec sim.Spec, n int, seed uint64) []Transient {
	r := rng(seed | 1)
	points := []vm.CorruptPoint{vm.PointResult, vm.PointStoreData, vm.PointLoadValue, vm.PointStoreAddr}
	faults := make([]Transient, n)
	for i := range faults {
		faults[i] = Transient{
			// Reduce in uint64 space: casting the raw draw to int first can
			// go negative, and a negative % yields an unarmable pair index.
			Logical: int(r.next() % uint64(max(len(spec.Programs), 1))),
			Target:  Copy(r.next() % 2),
			AtSeq:   spec.Warmup/2 + r.next()%(spec.Warmup/2+spec.Budget/2+1),
			Point:   points[r.next()%uint64(len(points))],
			Bit:     uint(r.next() % 64),
		}
	}
	return faults
}

// Campaign runs n injection trials against the configuration described by
// spec (which must be an RMT mode: SRT or CRT). Each trial builds a fresh
// machine, injects one transient at a pseudo-random point after warmup, and
// classifies the outcome. Trials run serially; use CampaignParallel to
// shard them across workers.
func Campaign(spec sim.Spec, n int, seed uint64) (*CampaignSummary, error) {
	return CampaignParallel(spec, n, seed, CampaignOptions{Parallelism: 1})
}

// CampaignOptions configure how CampaignParallel schedules its trials.
type CampaignOptions struct {
	// Parallelism caps concurrent trials (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// Progress, when non-nil, receives (done, total) trial counts.
	Progress func(done, total int)
	// OnReport, when non-nil, receives the campaign's timing report.
	OnReport func(runner.Report)
}

// CampaignParallel runs the same campaign as Campaign with the injection
// trials sharded across a worker pool. Each trial builds its own machine,
// the fault plan is fixed before the first trial starts, and results are
// keyed by trial index — so the summary, including per-trial outcome
// order, is identical at any parallelism.
func CampaignParallel(spec sim.Spec, n int, seed uint64, opts CampaignOptions) (*CampaignSummary, error) {
	if spec.Mode != sim.ModeSRT && spec.Mode != sim.ModeCRT {
		return nil, fmt.Errorf("fault: campaign requires an RMT mode, got %v", spec.Mode)
	}
	spec.StopOnDetection = true
	faults := Plan(spec, n, seed)
	jobs := make([]func() (Result, error), n)
	for i := range faults {
		i, f := i, faults[i]
		jobs[i] = func() (Result, error) {
			res, err := RunOne(spec, f)
			if err != nil {
				return Result{}, fmt.Errorf("fault: trial %d (%v): %w", i, f, err)
			}
			return res, nil
		}
	}
	results, rep, err := runner.Run(jobs, runner.Options{Parallelism: opts.Parallelism, Progress: opts.Progress})
	if opts.OnReport != nil {
		opts.OnReport(rep)
	}
	if err != nil {
		return nil, err
	}
	sum := &CampaignSummary{Runs: n, Results: results}
	var totalLatency uint64
	for _, res := range results {
		sum.TotalCycles += res.Cycles
		switch res.Outcome {
		case Detected:
			sum.Detected++
			totalLatency += res.DetectionCycles
		case Masked:
			sum.Masked++
		case NotFired:
			sum.NotFired++
		}
	}
	if sum.Detected > 0 {
		sum.MeanDetectionCycles = float64(totalLatency) / float64(sum.Detected)
	}
	return sum, nil
}

// RunOne builds a machine for spec, injects the single fault, runs to
// detection or completion, and classifies the outcome.
func RunOne(spec sim.Spec, f Transient) (Result, error) {
	spec.StopOnDetection = true
	m, err := sim.Build(spec)
	if err != nil {
		return Result{}, err
	}
	fired, err := f.Arm(m)
	if err != nil {
		return Result{}, err
	}
	// A corrupted jump target may leave the code image; let the victim
	// pair's oracles halt gracefully so the divergence is flagged rather
	// than crashing the simulation.
	m.Leads[f.Logical].Arch.Tolerant = true
	if tr := m.Trails[f.Logical]; tr != nil {
		tr.Arch.Tolerant = true
	}
	// Record the cycle at which the fault fires by sampling around the arm
	// closure: wrap again to capture the cycle.
	var fireCycle uint64
	ctx := m.Leads[f.Logical]
	if f.Target == TrailingCopy {
		ctx = m.Trails[f.Logical]
	}
	inner := ctx.Arch.Corrupt
	armed := false
	ctx.Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
		nv := inner(point, seq, pc, v)
		if !armed && nv != v {
			armed = true
			fireCycle = m.Cores[0].Cycle()
		}
		return nv
	}
	if _, err := m.Run(); err != nil {
		// A deadlock after divergence can only follow an unrecorded
		// divergence; treat any watchdog error with detections as
		// detected, otherwise propagate.
		if len(m.Detections()) == 0 {
			return Result{}, err
		}
	}
	// A corrupted jump that leaves the code image halts one copy; the two
	// copies' halt states diverging is an observable failure (the trailing
	// store stream stops matching / the checker watchdog fires), so it
	// counts as detected.
	haltDivergence := false
	if tr := m.Trails[f.Logical]; tr != nil {
		haltDivergence = m.Leads[f.Logical].Arch.Halted != tr.Arch.Halted
	}
	res := Result{Fault: f, Cycles: m.Cores[0].Cycle()}
	switch {
	case len(m.Detections()) > 0 || haltDivergence:
		res.Outcome = Detected
		end := m.Cores[0].Cycle()
		if end > fireCycle {
			res.DetectionCycles = end - fireCycle
		}
	case !fired():
		res.Outcome = NotFired
	default:
		res.Outcome = Masked
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
