package fault

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/progen"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Generated-corpus fault battery: the fixed corpus the sim layer replays
// (progen.CorpusSeeds(genCorpusSeed, ...)) also has to hold up the
// campaign machinery's two strongest claims — pruning never changes an
// outcome, and a statically-masked site can never fire as detected — on
// kernels nobody hand-tuned. Campaign sizes are explicit and small:
// Plan draws AtSeq inside [Warmup/2, Warmup+Budget/2], and every
// generated kernel runs at least ~20k dynamic instructions, so these
// sizes guarantee each fault fires well before HALT.

const genCorpusSeed = 0xC0FFEE

func genFaultSpec(mode sim.Mode, progs ...string) sim.Spec {
	s := faultSpec(mode, progs...)
	s.Budget, s.Warmup = 2500, 1000
	return s
}

func genNames(n int) []string {
	seeds := progen.CorpusSeeds(genCorpusSeed, n)
	names := make([]string, n)
	for i, s := range seeds {
		names[i] = progen.Name(s)
	}
	return names
}

// TestGenPrunedCampaignByteIdentical: prune cross-validation over
// generated kernels — pruned and unpruned campaigns must agree on every
// aggregate and every per-trial Result.
func TestGenPrunedCampaignByteIdentical(t *testing.T) {
	for _, name := range genNames(6) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := genFaultSpec(sim.ModeSRT, name)
			const n, seed = 48, 0xACE
			base, err := CampaignParallel(spec, n, seed, CampaignOptions{Parallelism: 1})
			if err != nil {
				t.Fatalf("unpruned: %v", err)
			}
			var stats PruneStats
			pruned, err := CampaignParallel(spec, n, seed, CampaignOptions{
				Parallelism:           4,
				PruneStaticallyMasked: true,
				ValidateStaticMasking: true,
				PruneStats:            &stats,
			})
			if err != nil {
				t.Fatalf("pruned: %v", err)
			}
			t.Logf("prune stats: %+v", stats)
			if pruned.Runs != base.Runs || pruned.Detected != base.Detected ||
				pruned.Masked != base.Masked || pruned.NotFired != base.NotFired ||
				pruned.MeanDetectionCycles != base.MeanDetectionCycles ||
				pruned.TotalCycles != base.TotalCycles {
				t.Fatalf("summary differs:\npruned:   %+v\nunpruned: %+v", pruned, base)
			}
			for i := range pruned.Results {
				if pruned.Results[i] != base.Results[i] {
					t.Fatalf("trial %d: pruned %+v, unpruned %+v", i, pruned.Results[i], base.Results[i])
				}
			}
		})
	}
}

// TestGenStaticMaskedSitesExhaustive: for generated kernels, exhaustive
// targeted injection at every statically-masked site the ACE analysis
// claims, capped per kernel — a fault-free observer run records the first
// dynamic sequence each masked pc executes, and a transient there must
// classify Masked. Generated kernels have few masked sites by
// construction (every register is initialised and read), so whatever the
// analysis does claim on them is exactly the kind of marginal claim worth
// refuting dynamically.
func TestGenStaticMaskedSitesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("per-site sweep; skipped in -short")
	}
	const maxSitesPerKernel = 4
	sites, kernelsWithSites := 0, 0
	for _, name := range genNames(12) {
		prog, err := progen.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := analysis.AnalyzeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(prof.MaskedSites) == 0 {
			continue
		}
		kernelsWithSites++
		spec := genFaultSpec(sim.ModeSRT, name)
		m, err := sim.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		firstSeq := map[uint64]uint64{}
		m.Leads[0].Arch.Corrupt = func(point vm.CorruptPoint, seq, pc, v uint64) uint64 {
			if point == vm.PointResult && seq >= 64 {
				if _, ok := firstSeq[pc]; !ok {
					firstSeq[pc] = seq
				}
			}
			return v
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s observer run: %v", name, err)
		}
		tried := 0
		for _, site := range prof.MaskedSites {
			if tried >= maxSitesPerKernel {
				break
			}
			seq, executed := firstSeq[uint64(site.PC)]
			if !executed {
				continue
			}
			tried++
			for _, target := range []Copy{LeadingCopy, TrailingCopy} {
				for _, bit := range []uint{0, 33, 63} {
					f := Transient{Target: target, AtSeq: seq, Point: vm.PointResult, Bit: bit}
					res, err := RunOne(spec, f)
					if err != nil {
						t.Fatalf("%s pc=%d (%s, %s) %v: %v", name, site.PC, site.Reg, site.Reason, f, err)
					}
					if res.Outcome != Masked {
						t.Errorf("%s pc=%d (%s, %s) %v: outcome %v, want masked",
							name, site.PC, site.Reg, site.Reason, f, res.Outcome)
					}
					sites++
				}
			}
		}
	}
	t.Logf("validated %d targeted injections across %d generated kernels with masked sites",
		sites, kernelsWithSites)
}

// TestGenCRTMixCampaignDeterministic: a randomized 2-pair cross-coupled
// CRT mix's campaign summary and per-trial results must be invariant to
// the parallelism the campaign ran at — the acceptance shape the rmtd
// /campaign endpoint relies on for cache coherence.
func TestGenCRTMixCampaignDeterministic(t *testing.T) {
	pair := progen.MixPairs(genCorpusSeed, 1)[0]
	spec := genFaultSpec(sim.ModeCRT, pair[0], pair[1])
	const n, seed = 32, 0xBEEF
	serial, err := CampaignParallel(spec, n, seed, CampaignOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CampaignParallel(spec, n, seed, CampaignOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Runs != parallel.Runs || serial.Detected != parallel.Detected ||
		serial.Masked != parallel.Masked || serial.NotFired != parallel.NotFired ||
		serial.MeanDetectionCycles != parallel.MeanDetectionCycles ||
		serial.TotalCycles != parallel.TotalCycles {
		t.Fatalf("parallelism changed the summary:\n-p1: %+v\n-p4: %+v", serial, parallel)
	}
	for i := range serial.Results {
		if serial.Results[i] != parallel.Results[i] {
			t.Fatalf("trial %d: -p1 %+v, -p4 %+v", i, serial.Results[i], parallel.Results[i])
		}
	}
	if serial.Detected == 0 {
		t.Error("no fault detected across the CRT mix campaign — injection not biting")
	}
}
