package pipeline

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/predict"
	"repro/internal/ringq"
	"repro/internal/stats"
)

// Core is one SMT processor core: shared fetch/rename/issue/retire hardware
// multiplexed over up to four hardware thread contexts.
type Core struct {
	ID  int    //rmtsnap:skip — identity fixed at construction
	cfg Config //rmtsnap:skip — construction-time config

	cycle uint64

	ctxs []*Context

	hier     *mem.Hierarchy
	mergeBuf *mem.MergeBuffer

	linePred   *predict.LinePredictor
	branchPred *predict.BranchPredictor
	jumpPred   *predict.JumpPredictor
	storeSets  *predict.StoreSets

	// iqUsed tracks occupancy of the two instruction-queue halves
	// (false=lower, true=upper indexed as 0/1).
	iqUsed [2]int

	// inFlight counts renamed, unretired instructions across all threads:
	// the shared completion-unit / physical-register budget (512 physical
	// minus 256 architectural registers = 256 renames in flight).
	inFlight int

	fetchRR    int
	dispatchRR int

	// Retired counts total instructions retired on this core (watchdog
	// progress indicator).
	Retired uint64

	// DrainTap, when non-nil, observes every RoleSingle store as it leaves
	// the core for the rest of the system — the signal a lockstep
	// machine's central checker interposes on (internal/lockstep).
	DrainTap func(addr, val uint64, size int) //rmtsnap:skip — observer hook, outside simulated state

	// Trace, when non-nil, receives a TraceEvent at each pipeline stage an
	// instruction passes (internal/trace renders them).
	Trace func(ev TraceEvent) //rmtsnap:skip — observer hook, outside simulated state

	// Probe, when non-nil, runs at the end of every Step — the hook the
	// observability layer uses to sample occupancy histograms. It must not
	// mutate machine state.
	Probe func() //rmtsnap:skip — observer hook, outside simulated state
}

// TraceStage identifies a pipeline event for tracing.
type TraceStage uint8

// Trace stages.
const (
	StageFetch TraceStage = iota
	StageDispatch
	StageIssue
	StageDone
	StageRetire
	// StageSquash marks a mispredicted branch resolving: fetch was stalled
	// on the wrong-path bubble and restarts down the correct path.
	StageSquash
	// StageCompare marks a sphere-of-replication output comparison: a store
	// verified against its trailing copy, a trailing load's address checked
	// at the LVQ, or a control-flow divergence caught at trailing fetch.
	// Mismatch reports whether the comparison detected a fault.
	StageCompare
)

// TraceEvent is one instruction passing one pipeline stage.
type TraceEvent struct {
	Cycle uint64
	TID   int
	Seq   uint64
	PC    uint64
	Text  string
	Stage TraceStage
	// Mismatch is set on StageCompare events that detected a divergence.
	Mismatch bool
}

// emit sends a trace event if tracing is enabled. Done events are emitted
// at issue time with the (already decided) completion cycle.
func (co *Core) emit(ctx *Context, d *dynInst, stage TraceStage, cycle uint64) {
	if co.Trace == nil {
		return
	}
	co.Trace(TraceEvent{
		Cycle: cycle,
		TID:   ctx.TID,
		Seq:   d.out.Seq,
		PC:    d.out.PC,
		Text:  d.out.Instr.String(),
		Stage: stage,
	})
}

// emitCompare sends a StageCompare trace event carrying the comparison
// outcome.
func (co *Core) emitCompare(ctx *Context, d *dynInst, cycle uint64, mismatch bool) {
	if co.Trace == nil {
		return
	}
	co.Trace(TraceEvent{
		Cycle:    cycle,
		TID:      ctx.TID,
		Seq:      d.out.Seq,
		PC:       d.out.PC,
		Text:     d.out.Instr.String(),
		Stage:    StageCompare,
		Mismatch: mismatch,
	})
}

// NewCore builds a core with the given contexts. shared may carry a shared
// L2 for CMP configurations (nil = private hierarchy).
func NewCore(id int, cfg Config, sharedL2 *mem.Cache) *Core {
	co := &Core{
		ID:         id,
		cfg:        cfg,
		hier:       mem.NewHierarchy(cfg.Hier, sharedL2),
		linePred:   predict.NewLinePredictor(cfg.LinePredictorBits),
		branchPred: predict.NewBranchPredictor(cfg.BranchPredictorBits),
		jumpPred:   predict.NewJumpPredictor(cfg.JumpPredictorBits),
		storeSets:  predict.NewStoreSets(cfg.StoreSetBits, cfg.StoreSetCount),
	}
	co.mergeBuf = mem.NewMergeBuffer(cfg.MergeBufEntries, cfg.Hier.BlockBytes, co.hier.L1D)
	return co
}

// Hierarchy exposes the core's memory hierarchy (for inspection and shared-L2
// plumbing).
func (co *Core) Hierarchy() *mem.Hierarchy { return co.hier }

// Contexts returns the hardware thread contexts.
func (co *Core) Contexts() []*Context { return co.ctxs }

// Cycle returns the current cycle number.
func (co *Core) Cycle() uint64 { return co.cycle }

// AddContext attaches a hardware thread context and finalises its queue
// shares once all contexts are attached via FinalizeQueues.
func (co *Core) AddContext(ctx *Context) {
	ctx.TID = len(co.ctxs)
	ctx.ras = predict.NewRAS(co.cfg.RASDepth)
	if ctx.Stats == nil {
		ctx.Stats = &stats.ThreadStats{}
	}
	ctx.decode = buildDecode(&co.cfg, ctx.Arch.Prog)
	ctx.poolDisabled = co.cfg.DisableInstPool
	co.ctxs = append(co.ctxs, ctx)
}

// FinalizeQueues statically divides the load and store queues among the
// attached contexts (§3.4): the store queue among all threads (or SQCap each
// with per-thread store queues), the load queue among the threads that use
// it (trailing threads read the LVQ instead, §4.1).
func (co *Core) FinalizeQueues() {
	nLQ := 0
	for _, c := range co.ctxs {
		if c.usesLoadQueue() {
			nLQ++
		}
	}
	for _, c := range co.ctxs {
		if co.cfg.PerThreadSQ {
			c.sqCap = co.cfg.SQCap
		} else {
			c.sqCap = co.cfg.SQCap / len(co.ctxs)
		}
		if c.usesLoadQueue() {
			c.lqCap = co.cfg.LQCap / nLQ
		}
		co.allocQueues(c)
	}
}

// allocQueues sizes the context's ring buffers and recycling pool from the
// final capacities: the RMB and window at their configured caps, and every
// store list at the store-queue share (each entry holds an SQ slot until it
// drains, so sqCap bounds all three). The pool's high-water mark is the sum
// of every structure that can hold a live instruction.
func (co *Core) allocQueues(c *Context) {
	if c.rmb != nil {
		return // already allocated (FinalizeQueues called again)
	}
	c.rmb = ringq.New[*dynInst](co.cfg.RMBCap)
	c.rob = ringq.New[*dynInst](co.cfg.InFlightCap)
	c.iq = ringq.New[*dynInst](2 * co.cfg.IQHalfCap)
	sq := max(c.sqCap, 1)
	c.inFlightStores = ringq.New[*dynInst](sq)
	c.retiredStores = ringq.New[*dynInst](sq)
	c.trailRetiredStores = ringq.New[*dynInst](sq)
	c.freeInsts = make([]*dynInst, 0, co.cfg.RMBCap+co.cfg.InFlightCap+2*sq)
}

// iAddr maps a program counter into the tagged instruction address space.
// Each program's code image is offset by a stride that is NOT a multiple of
// the instruction cache's set span (as a linker's layout would be), so
// co-scheduled programs spread across sets instead of thrashing one set —
// 0x2840 bytes lands images 161 sets apart in a 512-set L1I.
func (co *Core) iAddr(ctx *Context, pc uint64) uint64 {
	return uint64(ctx.ProgID)<<44 | 1<<43 | (uint64(ctx.ProgID)*0x2840 + pc<<3)
}

// dAddr maps a data address into the tagged data address space.
func (co *Core) dAddr(ctx *Context, addr uint64) uint64 {
	return uint64(ctx.ProgID)<<44 | addr&((1<<43)-1)
}

func halfIdx(upper bool) int {
	if upper {
		return 1
	}
	return 0
}

// iqHasRoom checks capacity in the requested half while honouring the
// per-thread reserved chunk (§4.3): a dispatch may not consume slots that
// another thread needs to keep one chunk's worth of guaranteed space.
func (co *Core) iqHasRoom(ctx *Context, upper bool) bool {
	h := halfIdx(upper)
	if co.iqUsed[h] >= co.cfg.IQHalfCap {
		return false
	}
	if !co.cfg.ReservedChunks {
		return true
	}
	reserve := 0
	for _, o := range co.ctxs {
		if o == ctx {
			continue
		}
		if n := o.iqN(); n < co.cfg.ChunkSize {
			reserve += co.cfg.ChunkSize - n
		}
	}
	total := co.iqUsed[0] + co.iqUsed[1]
	return total+1+reserve <= 2*co.cfg.IQHalfCap
}

// inFlightHasRoom checks the shared rename budget, reserving one chunk's
// worth per other thread (same deadlock-avoidance principle as the IQ).
func (co *Core) inFlightHasRoom(ctx *Context) bool {
	if co.inFlight >= co.cfg.InFlightCap {
		return false
	}
	if !co.cfg.ReservedChunks {
		return true
	}
	reserve := 0
	for _, o := range co.ctxs {
		if o == ctx {
			continue
		}
		if n := o.rob.Len(); n < co.cfg.ChunkSize {
			reserve += co.cfg.ChunkSize - n
		}
	}
	return co.inFlight+1+reserve <= co.cfg.InFlightCap
}

// iqN is a cached per-context IQ occupancy counter.
func (c *Context) iqN() int { return c.iqOccupancy }

// Step advances the core by one cycle.
func (co *Core) Step() {
	// Stage order within a cycle is back-to-front so a value produced this
	// cycle is consumed no earlier than the next.
	co.retireStage()
	co.drainStores()
	co.issueStage()
	co.dispatchStage()
	co.fetchStage()
	if co.Probe != nil {
		co.Probe()
	}
	co.cycle++
}

// IQUsed returns the occupancy of one instruction-queue half (0 = lower,
// 1 = upper).
func (co *Core) IQUsed(half int) int { return co.iqUsed[half&1] }

// InFlightCount returns the renamed, unretired instruction count — shared
// completion-unit / physical-register pressure.
func (co *Core) InFlightCount() int { return co.inFlight }

// String summarises occupancy for debugging.
func (co *Core) String() string {
	s := fmt.Sprintf("core%d cyc=%d iq=%d/%d", co.ID, co.cycle, co.iqUsed[0], co.iqUsed[1])
	for _, c := range co.ctxs {
		s += fmt.Sprintf(" [t%d %s rob=%d rmb=%d sq=%d/%d committed=%d]",
			c.TID, c.Role, c.rob.Len(), c.rmb.Len(), c.sqUsed, c.sqCap, c.committed)
	}
	return s
}
