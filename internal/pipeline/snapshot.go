package pipeline

import (
	"repro/internal/isa"
	"repro/internal/ringq"
	"repro/internal/snap"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Machine-state snapshot/restore. SnapshotTo serializes everything that
// changes as the machine steps — cycle counters, committed memories, cache
// and predictor state, per-context architectural state, every pipeline
// queue's dynamic instructions (with their pointer graph and recycling
// generations), the redundant-pair structures, and statistics — in a fixed
// deterministic order. RestoreFrom reads it back into a machine freshly
// built from the same spec, whose static structure (configs, decode tables,
// closures, queue wiring) it reuses. The contract: a restored machine,
// resumed with Run, is cycle-identical to the machine the snapshot was
// taken from — same stats, same artifacts, byte-identical later snapshots.
//
// What is NOT captured: observer hooks (Trace, Probe, DrainTap, OnCycle),
// metrics registries, and event logs — they are attachments of a particular
// machine instance, not simulated state.

// instRef encoding tags. A reference is either never set, live within the
// owning context's serialized instruction set (with its generation, which
// may lag the target's — that mismatch IS the "producer already recycled"
// signal), or a dangling pointer to an instruction that was dropped from
// the pool entirely (wasSet must stay true, get must stay nil).
const (
	refNil uint64 = iota
	refLive
	refDead
)

// snapCtx carries the per-context instruction index built during
// serialization: first-encounter order over the queues below.
type snapCtx struct {
	insts []*dynInst
	index map[*dynInst]int
}

func (sc *snapCtx) add(d *dynInst) {
	if d == nil {
		return
	}
	if _, ok := sc.index[d]; !ok {
		sc.index[d] = len(sc.insts)
		sc.insts = append(sc.insts, d)
	}
}

// enumerate walks every structure that can hold a live *dynInst in a fixed
// order, assigning first-encounter indices. Aliasing (the IQ holds a subset
// of the ROB; store lists overlap the ROB) is preserved because an already
// seen pointer keeps its first index.
func (c *Context) enumerate() *snapCtx {
	sc := &snapCtx{index: make(map[*dynInst]int, 64)}
	for _, q := range c.instQueues() {
		for i := 0; i < q.Len(); i++ {
			sc.add(q.At(i))
		}
	}
	sc.add(c.pendingBranch)
	for _, d := range c.freeInsts {
		sc.add(d)
	}
	return sc
}

// instQueues returns the context's dynInst rings in serialization order.
func (c *Context) instQueues() []*ringq.Ring[*dynInst] {
	return []*ringq.Ring[*dynInst]{
		c.rmb, c.rob, c.iq, c.inFlightStores, c.retiredStores, c.trailRetiredStores,
	}
}

func (sc *snapCtx) writeRef(w *snap.Writer, r instRef) {
	if r.d == nil {
		w.U64(refNil)
		return
	}
	if idx, ok := sc.index[r.d]; ok {
		w.U64(refLive)
		w.Int(idx)
		w.U64(r.gen)
		return
	}
	// The target was recycled and dropped from the pool; only wasSet/get
	// semantics survive.
	w.U64(refDead)
}

// restCtx is the restore-side counterpart: the rebuilt instruction set plus
// one shared tombstone for dangling references.
type restCtx struct {
	insts []*dynInst
	dead  *dynInst
}

func (rc *restCtx) readRef(r *snap.Reader) instRef {
	switch r.U64() {
	case refNil:
		return instRef{}
	case refLive:
		idx := r.Int()
		gen := r.U64()
		if idx < 0 || idx >= len(rc.insts) {
			r.Failf("instruction reference %d out of range", idx)
			return instRef{}
		}
		return instRef{d: rc.insts[idx], gen: gen}
	case refDead:
		// gen 0 against the tombstone's gen 1: wasSet true, get nil.
		return instRef{d: rc.dead}
	default:
		r.Failf("bad instruction reference tag")
		return instRef{}
	}
}

func writeOutcome(w *snap.Writer, o *vm.Outcome) {
	w.U64(o.Seq)
	w.U64(o.PC)
	w.U64(uint64(o.Instr.Op))
	w.U64(uint64(o.Instr.Rd))
	w.U64(uint64(o.Instr.Ra))
	w.U64(uint64(o.Instr.Rb))
	w.I64(o.Instr.Imm)
	w.U64(o.NextPC)
	w.Bool(o.Taken)
	w.U64(o.Addr)
	w.Int(o.Size)
	w.U64(o.Value)
	w.U64(o.DestVal)
	w.Bool(o.Halted)
	w.Bool(o.Trap)
}

func readOutcome(r *snap.Reader, o *vm.Outcome) {
	o.Seq = r.U64()
	o.PC = r.U64()
	o.Instr.Op = isa.Op(r.U64())
	o.Instr.Rd = isa.Reg(r.U64())
	o.Instr.Ra = isa.Reg(r.U64())
	o.Instr.Rb = isa.Reg(r.U64())
	o.Instr.Imm = r.I64()
	o.NextPC = r.U64()
	o.Taken = r.Bool()
	o.Addr = r.U64()
	o.Size = r.Int()
	o.Value = r.U64()
	o.DestVal = r.U64()
	o.Halted = r.Bool()
	o.Trap = r.Bool()
}

func (sc *snapCtx) writeInst(w *snap.Writer, d *dynInst) {
	writeOutcome(w, &d.out)
	w.Int(d.tid)
	w.U64(uint64(d.kind))
	w.U64(d.fetchCycle)
	w.U64(d.rmbReadyAt)
	w.U64(d.renameCycle)
	w.U64(d.issueCycle)
	w.U64(d.doneCycle)
	w.U64(d.retireCycle)
	w.Bool(d.inIQ)
	w.Bool(d.issued)
	w.Bool(d.retired)
	w.U64(d.earliestIssue)
	w.Int(d.fetchSlot)
	w.Bool(d.upperHalf)
	w.U64(uint64(d.fu))
	sc.writeRef(w, d.srcA)
	sc.writeRef(w, d.srcB)
	sc.writeRef(w, d.srcD)
	sc.writeRef(w, d.depStore)
	w.Bool(d.covered)
	w.Bool(d.partial)
	sc.writeRef(w, d.predictedDep)
	w.Bool(d.mispredicted)
	w.U64(d.sqEntered)
	w.Bool(d.verified)
	w.U64(d.verifiedAt)
	w.Bool(d.drained)
	w.Bool(d.forceTerm)
	w.U64(d.loadTag)
	w.U64(d.storeTag)
	w.Bool(d.hasLeadInfo)
	w.Bool(d.leadUpper)
	w.U64(uint64(d.leadFU))
	w.U64(d.gen)
}

func (rc *restCtx) readInst(r *snap.Reader, d *dynInst) {
	readOutcome(r, &d.out)
	d.tid = r.Int()
	d.kind = classKind(r.U64())
	d.fetchCycle = r.U64()
	d.rmbReadyAt = r.U64()
	d.renameCycle = r.U64()
	d.issueCycle = r.U64()
	d.doneCycle = r.U64()
	d.retireCycle = r.U64()
	d.inIQ = r.Bool()
	d.issued = r.Bool()
	d.retired = r.Bool()
	d.earliestIssue = r.U64()
	d.fetchSlot = r.Int()
	d.upperHalf = r.Bool()
	d.fu = uint8(r.U64())
	d.srcA = rc.readRef(r)
	d.srcB = rc.readRef(r)
	d.srcD = rc.readRef(r)
	d.depStore = rc.readRef(r)
	d.covered = r.Bool()
	d.partial = r.Bool()
	d.predictedDep = rc.readRef(r)
	d.mispredicted = r.Bool()
	d.sqEntered = r.U64()
	d.verified = r.Bool()
	d.verifiedAt = r.U64()
	d.drained = r.Bool()
	d.forceTerm = r.Bool()
	d.loadTag = r.U64()
	d.storeTag = r.U64()
	d.hasLeadInfo = r.Bool()
	d.leadUpper = r.Bool()
	d.leadFU = uint8(r.U64())
	d.gen = r.U64()
}

func writeThreadStats(w *snap.Writer, ts *stats.ThreadStats) {
	w.U64(ts.Committed.Value())
	w.U64(ts.Loads.Value())
	w.U64(ts.Stores.Value())
	w.U64(ts.Branches.Value())
	w.U64(ts.BranchMispredicts.Value())
	w.U64(ts.LineMispredicts.Value())
	w.U64(ts.LineFetches.Value())
	w.U64(ts.ICacheMisses.Value())
	w.U64(ts.DCacheMisses.Value())
	w.U64(ts.SQFullStalls.Value())
	w.U64(ts.IQFullStalls.Value())
	w.U64(ts.LQFullStalls.Value())
	n, sum := ts.StoreLifetime.State()
	w.U64(n)
	w.F64(sum)
	w.U64(ts.LVQWaits.Value())
}

func readThreadStats(r *snap.Reader, ts *stats.ThreadStats) {
	ts.Committed = stats.Counter(r.U64())
	ts.Loads = stats.Counter(r.U64())
	ts.Stores = stats.Counter(r.U64())
	ts.Branches = stats.Counter(r.U64())
	ts.BranchMispredicts = stats.Counter(r.U64())
	ts.LineMispredicts = stats.Counter(r.U64())
	ts.LineFetches = stats.Counter(r.U64())
	ts.ICacheMisses = stats.Counter(r.U64())
	ts.DCacheMisses = stats.Counter(r.U64())
	ts.SQFullStalls = stats.Counter(r.U64())
	ts.IQFullStalls = stats.Counter(r.U64())
	ts.LQFullStalls = stats.Counter(r.U64())
	n := r.U64()
	sum := r.F64()
	ts.StoreLifetime = stats.MeanFromState(n, sum)
	ts.LVQWaits = stats.Counter(r.U64())
}

// snapshotContext writes one context's mutable state and its dynamic
// instruction graph.
func (c *Context) snapshotContext(w *snap.Writer) {
	c.Arch.SnapshotTo(w)
	writeThreadStats(w, c.Stats)
	w.U64(c.Budget)
	w.U64(c.Warmup)
	w.U64(c.fetchBlockedUntil)
	w.Bool(c.fetchHalted)
	c.ras.SnapshotTo(w)
	w.U64(c.lastChunkStart)
	w.Bool(c.haveLastChunk)
	w.Int(c.lqUsed)
	w.Int(c.sqUsed)
	w.Int(c.iqOccupancy)
	w.U64(c.nextInterruptAt)
	w.U64(c.Interrupts)
	w.U64(c.committed)
	w.U64(c.FinishCycle)
	w.U64(c.WarmCycle)
	w.Bool(c.warmed)

	sc := c.enumerate()
	w.U64(uint64(len(sc.insts)))
	for _, d := range sc.insts {
		sc.writeInst(w, d)
	}
	for _, q := range c.instQueues() {
		w.Int(q.Len())
		for i := 0; i < q.Len(); i++ {
			w.Int(sc.index[q.At(i)])
		}
	}
	if c.pendingBranch == nil {
		w.Int(-1)
	} else {
		w.Int(sc.index[c.pendingBranch])
	}
	for _, ref := range c.lastInt {
		sc.writeRef(w, ref)
	}
	for _, ref := range c.lastFP {
		sc.writeRef(w, ref)
	}
	w.Int(len(c.freeInsts))
	for _, d := range c.freeInsts {
		w.Int(sc.index[d])
	}
}

// restoreContext reads state written by snapshotContext into a freshly
// built context with the same static configuration.
func (c *Context) restoreContext(r *snap.Reader) {
	c.Arch.RestoreFrom(r)
	readThreadStats(r, c.Stats)
	c.Budget = r.U64()
	c.Warmup = r.U64()
	c.fetchBlockedUntil = r.U64()
	c.fetchHalted = r.Bool()
	c.ras.RestoreFrom(r)
	c.lastChunkStart = r.U64()
	c.haveLastChunk = r.Bool()
	c.lqUsed = r.Int()
	c.sqUsed = r.Int()
	c.iqOccupancy = r.Int()
	c.nextInterruptAt = r.U64()
	c.Interrupts = r.U64()
	c.committed = r.U64()
	c.FinishCycle = r.U64()
	c.WarmCycle = r.U64()
	c.warmed = r.Bool()

	n := r.Count(8)
	rc := &restCtx{insts: make([]*dynInst, n), dead: &dynInst{gen: 1}}
	for i := range rc.insts {
		rc.insts[i] = new(dynInst)
	}
	for _, d := range rc.insts {
		rc.readInst(r, d)
	}
	for _, q := range c.instQueues() {
		for !q.Empty() {
			q.Pop()
		}
		qn := r.Int()
		if r.Err() != nil {
			return
		}
		if qn < 0 || qn > q.Cap() {
			r.Failf("queue length %d exceeds capacity %d", qn, q.Cap())
			return
		}
		for i := 0; i < qn; i++ {
			idx := r.Int()
			if idx < 0 || idx >= len(rc.insts) {
				r.Failf("queue element index %d out of range", idx)
				return
			}
			q.Push(rc.insts[idx])
		}
	}
	if idx := r.Int(); idx < 0 {
		c.pendingBranch = nil
	} else if idx < len(rc.insts) {
		c.pendingBranch = rc.insts[idx]
	} else {
		r.Failf("pending branch index out of range")
		return
	}
	for i := range c.lastInt {
		c.lastInt[i] = rc.readRef(r)
	}
	for i := range c.lastFP {
		c.lastFP[i] = rc.readRef(r)
	}
	nf := r.Int()
	if r.Err() != nil {
		return
	}
	if nf < 0 || nf > cap(c.freeInsts) {
		r.Failf("free pool length %d exceeds capacity %d", nf, cap(c.freeInsts))
		return
	}
	c.freeInsts = c.freeInsts[:0]
	for i := 0; i < nf; i++ {
		idx := r.Int()
		if idx < 0 || idx >= len(rc.insts) {
			r.Failf("free pool index %d out of range", idx)
			return
		}
		c.freeInsts = append(c.freeInsts, rc.insts[idx])
	}
}

// snapshotCore writes one core's mutable state, then its contexts.
func (co *Core) snapshotCore(w *snap.Writer) {
	w.U64(co.cycle)
	w.Int(co.iqUsed[0])
	w.Int(co.iqUsed[1])
	w.Int(co.inFlight)
	w.Int(co.fetchRR)
	w.Int(co.dispatchRR)
	w.U64(co.Retired)
	co.hier.L1I.SnapshotTo(w)
	co.hier.L1D.SnapshotTo(w)
	ownL2 := co.hier.Mem != nil
	w.Bool(ownL2)
	if ownL2 {
		co.hier.L2.SnapshotTo(w)
		co.hier.Mem.SnapshotTo(w)
	}
	co.mergeBuf.SnapshotTo(w)
	co.linePred.SnapshotTo(w)
	co.branchPred.SnapshotTo(w)
	co.jumpPred.SnapshotTo(w)
	co.storeSets.SnapshotTo(w)
	w.Int(len(co.ctxs))
	for _, c := range co.ctxs {
		c.snapshotContext(w)
	}
}

// restoreCore reads state written by snapshotCore.
func (co *Core) restoreCore(r *snap.Reader) {
	co.cycle = r.U64()
	co.iqUsed[0] = r.Int()
	co.iqUsed[1] = r.Int()
	co.inFlight = r.Int()
	co.fetchRR = r.Int()
	co.dispatchRR = r.Int()
	co.Retired = r.U64()
	co.hier.L1I.RestoreFrom(r)
	co.hier.L1D.RestoreFrom(r)
	ownL2 := r.Bool()
	if ownL2 != (co.hier.Mem != nil) {
		r.Failf("core %d L2 ownership mismatch", co.ID)
		return
	}
	if ownL2 {
		co.hier.L2.RestoreFrom(r)
		co.hier.Mem.RestoreFrom(r)
	}
	co.mergeBuf.RestoreFrom(r)
	co.linePred.RestoreFrom(r)
	co.branchPred.RestoreFrom(r)
	co.jumpPred.RestoreFrom(r)
	co.storeSets.RestoreFrom(r)
	if r.Int() != len(co.ctxs) {
		r.Failf("core %d context count mismatch", co.ID)
		return
	}
	for _, c := range co.ctxs {
		c.restoreContext(r)
		if r.Err() != nil {
			return
		}
	}
}

// sharedMemories returns the distinct committed memory images across all
// contexts, in first-encounter (core, context) order. Redundant pairs share
// one image; the order is deterministic because it follows the machine's
// fixed structure, not pointer values.
func (m *Machine) sharedMemories() []*vm.Memory {
	var mems []*vm.Memory
	seen := make(map[*vm.Memory]bool, 4)
	for _, co := range m.Cores {
		for _, c := range co.ctxs {
			b := c.Arch.Mem.Backing()
			if !seen[b] {
				seen[b] = true
				mems = append(mems, b)
			}
		}
	}
	return mems
}

// SnapshotTo writes the machine's complete mutable state.
func (m *Machine) SnapshotTo(w *snap.Writer) {
	w.U64(m.Cycles)
	w.U64(m.wdLastProgress)
	w.U64(m.wdLastRetired)
	mems := m.sharedMemories()
	w.Int(len(mems))
	for _, mem := range mems {
		mem.SnapshotTo(w)
	}
	w.Int(len(m.Cores))
	for _, co := range m.Cores {
		co.snapshotCore(w)
	}
	w.Int(len(m.Pairs))
	for _, p := range m.Pairs {
		p.SnapshotTo(w)
	}
}

// RestoreFrom reads state written by SnapshotTo into a machine built from
// the same spec. It returns the reader's first error, if any; on error the
// machine's state is undefined and it must be discarded.
func (m *Machine) RestoreFrom(r *snap.Reader) error {
	m.Cycles = r.U64()
	m.wdLastProgress = r.U64()
	m.wdLastRetired = r.U64()
	mems := m.sharedMemories()
	if r.Int() != len(mems) {
		r.Failf("shared memory count mismatch")
		return r.Err()
	}
	for _, mem := range mems {
		mem.RestoreFrom(r)
	}
	if r.Int() != len(m.Cores) {
		r.Failf("core count mismatch")
		return r.Err()
	}
	for _, co := range m.Cores {
		co.restoreCore(r)
		if r.Err() != nil {
			return r.Err()
		}
	}
	if r.Int() != len(m.Pairs) {
		r.Failf("pair count mismatch")
		return r.Err()
	}
	for _, p := range m.Pairs {
		p.RestoreFrom(r)
	}
	return r.Err()
}

// Snapshot serializes the machine into a standalone byte stream.
func (m *Machine) Snapshot() []byte {
	w := snap.NewWriter()
	m.SnapshotTo(w)
	return w.Finish()
}

// Restore replaces the machine's mutable state with a stream produced by
// Snapshot on an identically built machine.
func (m *Machine) Restore(data []byte) error {
	r, err := snap.NewReader(data)
	if err != nil {
		return err
	}
	if err := m.RestoreFrom(r); err != nil {
		return err
	}
	return r.Done()
}

// PoolGenerations returns the recycling generation of every instruction in
// the context's free pool, in pool order — a debug accessor for the
// snapshot regression tests (generations must survive restore, or stale
// instRefs would alias recycled instructions).
func (c *Context) PoolGenerations() []uint64 {
	gens := make([]uint64, len(c.freeInsts))
	for i, d := range c.freeInsts {
		gens[i] = d.gen
	}
	return gens
}
