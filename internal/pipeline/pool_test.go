package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// mispredictStorm builds a loop whose inner branch follows an LCG's
// (unpredictable) bit 17 and whose body stores to and reloads from an
// LCG-dependent address. Every mispredict stalls fetch on a live window;
// the store/load pair exercises the memory-dependence machinery (depStore,
// store-sets, forwarding) whose references the recycling pool must keep
// safe across reuse.
func mispredictStorm(iters int64) *isa.Program {
	b := isa.NewBuilder("storm")
	b.Ldi(isa.R1, iters)
	b.Ldi(isa.R2, 12345)
	b.Ldi(isa.R7, 0x2000)
	b.Label("top")
	b.Muli(isa.R2, isa.R2, 1103515245)
	b.Addi(isa.R2, isa.R2, 12345)
	b.Andi(isa.R2, isa.R2, 0x3fffffff)
	b.Srli(isa.R3, isa.R2, 17)
	b.Andi(isa.R3, isa.R3, 1)
	b.Andi(isa.R5, isa.R2, 0xf8)
	b.Add(isa.R6, isa.R7, isa.R5)
	b.Stq(isa.R2, isa.R6, 0)
	b.Beq(isa.R3, "skip")
	b.Ldq(isa.R4, isa.R6, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.Label("skip")
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	return b.MustFinish()
}

// stormResult captures everything the pooled and unpooled machines must
// agree on.
type stormResult struct {
	cycles      uint64
	committed   uint64
	mispredicts uint64
	loads       uint64
	stores      uint64
	dcMisses    uint64
	finalMem    [32]uint64
}

func runStormSingle(t *testing.T, disablePool bool) stormResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DisableInstPool = disablePool
	prog := mispredictStorm(3000)
	core := NewCore(0, cfg, nil)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	ctx := NewContext(RoleSingle, 0, vm.NewThread(0, prog, memImg), 1_000_000)
	core.AddContext(ctx)
	core.FinalizeQueues()
	m := &Machine{Cores: []*Core{core}}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	return stormState(m, ctx)
}

func runStormSRT(t *testing.T, disablePool bool) stormResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DisableInstPool = disablePool
	prog := mispredictStorm(3000)
	m, lead, _, _ := srtMachine(t, prog, 1_000_000, cfg)
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	return stormState(m, lead)
}

func stormState(m *Machine, ctx *Context) stormResult {
	r := stormResult{
		cycles:      m.Cycles,
		committed:   ctx.Committed(),
		mispredicts: ctx.Stats.BranchMispredicts.Value(),
		loads:       ctx.Stats.Loads.Value(),
		stores:      ctx.Stats.Stores.Value(),
		dcMisses:    ctx.Stats.DCacheMisses.Value(),
	}
	for i := range r.finalMem {
		r.finalMem[i] = ctx.Arch.Mem.Read64(0x2000 + uint64(i)*8)
	}
	return r
}

// TestInstPoolIsCycleIdentical is the pool-correctness oracle: recycling
// dynamic instructions must be pure mechanics — the pooled and unpooled
// machines produce bit-identical timing and architectural state, even under
// a mispredict storm with memory dependences (where stale references to
// recycled instructions would first show up as timing drift).
func TestInstPoolIsCycleIdentical(t *testing.T) {
	t.Run("single", func(t *testing.T) {
		pooled, unpooled := runStormSingle(t, false), runStormSingle(t, true)
		if pooled != unpooled {
			t.Errorf("pooled run diverged from unpooled:\n pooled:   %+v\n unpooled: %+v", pooled, unpooled)
		}
		if pooled.mispredicts < 300 {
			t.Errorf("storm mispredicted only %d times; not a storm", pooled.mispredicts)
		}
	})
	t.Run("srt", func(t *testing.T) {
		pooled, unpooled := runStormSRT(t, false), runStormSRT(t, true)
		if pooled != unpooled {
			t.Errorf("pooled SRT run diverged from unpooled:\n pooled:   %+v\n unpooled: %+v", pooled, unpooled)
		}
	})
}

// TestRetireMoreStoresThanSQCapacity retires far more stores than the
// store queue holds (300 vs the 64-entry total / 32-entry SRT share),
// forcing continuous in-flight-store list turnover — the regression guard
// for the store-release path (formerly an O(n) slice shift-delete, now a
// ring removal).
func TestRetireMoreStoresThanSQCapacity(t *testing.T) {
	prog := tinyLoop(300)
	m, ctx := singleMachine(t, prog, 1_000_000)
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !ctx.Arch.Halted {
		t.Fatal("single: thread did not halt")
	}
	for i := int64(300); i >= 1; i-- {
		addr := uint64(0x1000 + 8*(300-i))
		if got := ctx.Arch.Mem.Read64(addr); got != uint64(i*i) {
			t.Fatalf("single: mem[%#x] = %d, want %d", addr, got, i*i)
		}
	}
	if ctx.Arch.Mem.PendingBytes() != 0 {
		t.Errorf("single: overlay not drained: %d bytes", ctx.Arch.Mem.PendingBytes())
	}

	ms, lead, trail, pair := srtMachine(t, prog, 1_000_000, DefaultConfig())
	if _, err := ms.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if got := pair.Cmp.Comparisons.Value(); got != 300 {
		t.Errorf("srt: %d store comparisons, want 300", got)
	}
	if got := pair.Cmp.Mismatches.Value(); got != 0 {
		t.Errorf("srt: %d mismatches in a fault-free run", got)
	}
	if lead.Committed() != trail.Committed() {
		t.Errorf("srt: lead committed %d, trail %d", lead.Committed(), trail.Committed())
	}
}
