package pipeline

import "repro/internal/isa"

// dispatchStage implements the PBOX/QBOX front end: one 8-instruction map
// chunk per cycle from one thread's rate-matching buffer into the
// instruction queue, allocating rename producers, load/store queue entries
// and correlation tags, and resolving memory dependences against older
// in-flight stores.
func (co *Core) dispatchStage() {
	ctx := co.chooseDispatchThread()
	if ctx == nil {
		return
	}
	for n := 0; n < co.cfg.MapWidth && !ctx.rmb.Empty(); n++ {
		d := ctx.rmb.Front()
		if d.rmbReadyAt > co.cycle {
			break
		}
		if !co.inFlightHasRoom(ctx) {
			break
		}
		upper := co.chooseHalf(ctx, d)
		if !co.iqHasRoom(ctx, upper) {
			ctx.Stats.IQFullStalls.Inc()
			break
		}
		if d.isLoad() && ctx.usesLoadQueue() && ctx.lqUsed >= ctx.lqCap {
			ctx.Stats.LQFullStalls.Inc()
			break
		}
		if d.isStore() && ctx.sqUsed >= ctx.sqCap {
			ctx.Stats.SQFullStalls.Inc()
			break
		}

		// All resources available: dispatch.
		ctx.rmb.Pop()
		d.renameCycle = co.cycle
		d.earliestIssue = co.cycle + PBOXLatency + QBOXLatency
		d.upperHalf = upper
		d.inIQ = true
		ctx.iq.Push(d)
		co.iqUsed[halfIdx(upper)]++
		ctx.iqOccupancy++
		co.inFlight++
		ctx.rob.Push(d)

		co.emit(ctx, d, StageDispatch, co.cycle)
		co.renameSources(ctx, d)
		if d.isMem() {
			co.dispatchMem(ctx, d)
		}
	}
}

// chooseDispatchThread picks, among threads whose oldest RMB instruction is
// ready, the one with the fewest instructions in flight (ICOUNT-style).
// This keeps one thread from monopolising the shared rename/completion
// budget while its own retirement is blocked — without it, a leading thread
// stalled on RMT backpressure squeezes its trailing thread down to the
// reserved chunk and the pair livelocks at a crawl.
func (co *Core) chooseDispatchThread() *Context {
	n := len(co.ctxs)
	var best *Context
	bestCount := 0
	for i := 0; i < n; i++ {
		ctx := co.ctxs[(co.dispatchRR+i)%n]
		if ctx.rmb.Empty() || ctx.rmb.Front().rmbReadyAt > co.cycle {
			continue
		}
		if count := ctx.rob.Len(); best == nil || count < bestCount {
			best, bestCount = ctx, count
		}
	}
	if best != nil {
		co.dispatchRR = (co.dispatchRR + 1) % n
	}
	return best
}

// chooseHalf assigns the instruction-queue half. The base rule follows the
// paper (§3.3): assignment by the instruction's position in its chunk —
// which is why, without PSR, corresponding leading and trailing
// instructions usually land in the same half (they occupy similar chunk
// positions; the paper measures 65% same-unit). With preferential space
// redundancy enabled, a trailing instruction goes to the opposite half from
// its leading counterpart (§4.5); if that half has no room but the other
// does, the scheduler falls back (the reason Figure 7's same-half fraction
// is near zero rather than exactly zero).
func (co *Core) chooseHalf(ctx *Context, d *dynInst) bool {
	positional := d.fetchSlot%2 == 1
	if ctx.Role == RoleTrailing && d.hasLeadInfo && ctx.Pair.PreferentialSpaceRedundancy {
		preferred := !d.leadUpper
		if co.iqHasRoom(ctx, preferred) {
			return preferred
		}
		if co.iqHasRoom(ctx, !preferred) {
			return !preferred
		}
		return preferred
	}
	return positional
}

// srcRegs identifies the architectural source registers of an instruction:
// up to two operand sources (a, b) plus the store-data source (d).
func srcRegs(ins isa.Instr) (a isa.Reg, aFP, aOK bool, b isa.Reg, bFP, bOK bool, sd isa.Reg, sdFP, sdOK bool) {
	switch isa.ClassOf(ins.Op) {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv:
		if ins.Op == isa.LDI {
			return
		}
		a, aOK = ins.Ra, true
		switch ins.Op {
		case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI,
			isa.SRLI, isa.SRAI, isa.CMPEQI, isa.CMPLTI:
		default:
			b, bOK = ins.Rb, true
		}
	case isa.ClassLoad:
		a, aOK = ins.Ra, true
	case isa.ClassStore:
		a, aOK = ins.Ra, true
		sd, sdOK = ins.Rd, true
		sdFP = ins.Op == isa.FSTQ
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		switch ins.Op {
		case isa.CVTQF, isa.ITOF:
			a, aOK = ins.Ra, true // integer source
		case isa.CVTFQ, isa.FTOI, isa.FSQRT, isa.FNEG:
			a, aFP, aOK = ins.Ra, true, true
		default:
			a, aFP, aOK = ins.Ra, true, true
			b, bFP, bOK = ins.Rb, true, true
		}
	case isa.ClassBranch:
		if ins.Op != isa.BR {
			a, aOK = ins.Ra, true
		}
	case isa.ClassJump:
		if ins.Op == isa.JMP {
			a, aOK = ins.Ra, true
		}
	}
	return
}

// renameSources wires the dynInst to its in-flight producers and records it
// as the new producer of its destination. Sources and destination come from
// the static decode table (the zero register was already filtered out at
// decode, matching the old per-dispatch check).
func (co *Core) renameSources(ctx *Context, d *dynInst) {
	var scratch decodedInst
	dec := ctx.decodeOf(&co.cfg, d, &scratch)
	producer := func(r uint8, fp bool) instRef {
		if fp {
			return ctx.lastFP[r]
		}
		return ctx.lastInt[r]
	}
	if dec.srcA != noReg {
		d.srcA = producer(dec.srcA, dec.aFP)
	}
	if dec.srcB != noReg {
		d.srcB = producer(dec.srcB, dec.bFP)
	}
	if dec.srcD != noReg {
		d.srcD = producer(dec.srcD, dec.dFP)
	}
	if dec.dest != noReg {
		if dec.destFP {
			ctx.lastFP[dec.dest] = ref(d)
		} else {
			ctx.lastInt[dec.dest] = ref(d)
		}
	}
}

// dispatchMem allocates queue entries, correlation tags and memory
// dependences for a load or store.
func (co *Core) dispatchMem(ctx *Context, d *dynInst) {
	pair := ctx.Pair
	if d.isLoad() {
		if ctx.usesLoadQueue() && !d.out.Instr.IsUncached() {
			ctx.lqUsed++
		}
		// Uncached loads are replicated functionally through the I/O
		// bridge, not the LVQ, so they carry no load correlation tag.
		// Under adaptive redundancy, loads outside the sphere of
		// replication are likewise untagged: both copies consult the same
		// static protection table, so tag sequences stay dense and
		// identical across the pair.
		if !d.out.Instr.IsUncached() && (pair == nil || pair.ProtectedPC(d.out.PC)) {
			switch ctx.Role {
			case RoleLeading:
				d.loadTag = pair.NextLeadLoadTag()
			case RoleTrailing:
				d.loadTag = pair.NextTrailLoadTag()
			}
		}
		ctx.Stats.Loads.Inc()
	} else {
		ctx.sqUsed++
		d.sqEntered = co.cycle
		if pair == nil || pair.ProtectedPC(d.out.PC) {
			switch ctx.Role {
			case RoleLeading:
				d.storeTag = pair.NextLeadStoreTag()
			case RoleTrailing:
				d.storeTag = pair.NextTrailStoreTag()
			}
		}
		ctx.Stats.Stores.Inc()
	}

	// Trailing threads bypass the load queue, data cache and store-queue
	// search: their loads read the LVQ (§4.1). Their stores still sit in
	// the store queue until compared, but need no disambiguation (they
	// never misspeculate and their loads don't probe the SQ).
	if ctx.Role == RoleTrailing {
		if d.isStore() {
			ctx.inFlightStores.Push(d)
		}
		return
	}

	if d.isLoad() {
		// Oracle memory disambiguation: find the youngest older
		// overlapping in-flight store.
		for i := ctx.inFlightStores.Len() - 1; i >= 0; i-- {
			s := ctx.inFlightStores.At(i)
			if s.out.Seq > d.out.Seq || s.drained {
				continue
			}
			if overlaps(s.out.Addr, s.out.Size, d.out.Addr, d.out.Size) {
				d.depStore = ref(s)
				d.covered = covers(s.out.Addr, s.out.Size, d.out.Addr, d.out.Size)
				d.partial = !d.covered
				if d.partial {
					// The base machine flushes the store so the load can
					// read the merged bytes from the cache (§4.4.2); in RMT
					// mode the chunk must terminate at the store so the
					// trailing copy can verify and release it.
					s.forceTerm = true
				}
				break
			}
		}
		// Store-sets prediction: a load in a store's set waits for it.
		pcKey := co.iAddr(ctx, d.out.PC)
		if depTag := co.storeSets.DependsOn(pcKey, false, 0); depTag != 0 {
			for i := ctx.inFlightStores.Len() - 1; i >= 0; i-- {
				s := ctx.inFlightStores.At(i)
				if s.out.Seq == depTag-1 && !s.drained {
					d.predictedDep = ref(s)
					break
				}
			}
		}
	} else {
		pcKey := co.iAddr(ctx, d.out.PC)
		co.storeSets.DependsOn(pcKey, true, d.out.Seq+1) // register in LFST (tag = seq+1, 0 means none)
		ctx.inFlightStores.Push(d)
	}
}
