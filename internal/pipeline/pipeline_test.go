package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rmt"
	"repro/internal/vm"
)

// buildMachine wires a machine by hand (tests stay independent of
// internal/sim, which would be an import cycle through internal/program).
func singleMachine(t *testing.T, prog *isa.Program, budget uint64) (*Machine, *Context) {
	t.Helper()
	cfg := DefaultConfig()
	core := NewCore(0, cfg, nil)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	ctx := NewContext(RoleSingle, 0, vm.NewThread(0, prog, memImg), budget)
	core.AddContext(ctx)
	core.FinalizeQueues()
	m := &Machine{Cores: []*Core{core}}
	return m, ctx
}

func srtMachine(t *testing.T, prog *isa.Program, budget uint64, cfg Config) (*Machine, *Context, *Context, *rmt.Pair) {
	t.Helper()
	core := NewCore(0, cfg, nil)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	lead := NewContext(RoleLeading, 0, vm.NewThread(0, prog, memImg), budget)
	trail := NewContext(RoleTrailing, 0, vm.NewThread(1, prog, memImg), 0)
	lead.PeerArch = trail.Arch
	trail.PeerArch = lead.Arch
	pair := rmt.NewPair(0, rmt.SRTLatencies(), cfg.LVQSize, cfg.LPQSize)
	pair.PreferentialSpaceRedundancy = true
	lead.Pair = pair
	trail.Pair = pair
	core.AddContext(lead)
	core.AddContext(trail)
	pair.LeadCore, pair.LeadTID = 0, lead.TID
	pair.TrailCore, pair.TrailTID = 0, trail.TID
	core.FinalizeQueues()
	m := &Machine{Cores: []*Core{core}, Pairs: []*rmt.Pair{pair}}
	return m, lead, trail, pair
}

// tinyLoop builds a deterministic loop of n iterations that ends in HALT.
func tinyLoop(n int64) *isa.Program {
	b := isa.NewBuilder("tiny")
	b.Ldi(isa.R1, n)
	b.Ldi(isa.R2, 0x1000)
	b.Label("top")
	b.Mul(isa.R3, isa.R1, isa.R1)
	b.Stq(isa.R3, isa.R2, 0)
	b.Ldq(isa.R4, isa.R2, 0)
	b.Add(isa.R5, isa.R4, isa.R3)
	b.Addi(isa.R2, isa.R2, 8)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	return b.MustFinish()
}

func TestHaltingProgramCompletes(t *testing.T) {
	prog := tinyLoop(50)
	m, ctx := singleMachine(t, prog, 1_000_000)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	// 2 setup + 50*7 loop + halt = 353 committed instructions.
	if got := ctx.Committed(); got != 353 {
		t.Errorf("committed = %d, want 353", got)
	}
	if !ctx.Arch.Halted {
		t.Error("thread did not halt")
	}
	if m.Cycles == 0 || m.Cycles > 20000 {
		t.Errorf("implausible cycle count %d", m.Cycles)
	}
}

func TestStoresCommitToMemoryInOrder(t *testing.T) {
	prog := tinyLoop(10)
	m, ctx := singleMachine(t, prog, 1_000_000)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	// After the run drains, every store must have left the sphere: the
	// memory image holds i*i at 0x1000+8*(10-i).
	memImg := ctx.Arch.Mem
	for i := int64(10); i >= 1; i-- {
		addr := uint64(0x1000 + 8*(10-i))
		if got := memImg.Read64(addr); got != uint64(i*i) {
			t.Errorf("mem[%#x] = %d, want %d", addr, got, i*i)
		}
	}
	if ctx.Arch.Mem.PendingBytes() != 0 {
		t.Errorf("overlay not drained: %d bytes", ctx.Arch.Mem.PendingBytes())
	}
}

func TestBranchMispredictionCostsCycles(t *testing.T) {
	// Same instruction count; one loop's inner branch is LCG-driven
	// (unpredictable high bit), the other constant. The unpredictable
	// version must take noticeably longer.
	build := func(random bool) *isa.Program {
		b := isa.NewBuilder("br")
		b.Ldi(isa.R1, 2000)
		b.Ldi(isa.R2, 12345)
		b.Label("top")
		b.Muli(isa.R2, isa.R2, 1103515245)
		b.Addi(isa.R2, isa.R2, 12345)
		b.Andi(isa.R2, isa.R2, 0x3fffffff)
		if random {
			b.Srli(isa.R3, isa.R2, 17)
		} else {
			b.Srli(isa.R3, isa.R2, 62) // always zero
		}
		b.Andi(isa.R3, isa.R3, 1)
		b.Beq(isa.R3, "skip")
		b.Addi(isa.R4, isa.R4, 1)
		b.Label("skip")
		b.Addi(isa.R1, isa.R1, -1)
		b.Bne(isa.R1, "top")
		b.Halt()
		return b.MustFinish()
	}
	mr, ctxr := singleMachine(t, build(true), 1_000_000)
	if _, err := mr.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	mp, _ := singleMachine(t, build(false), 1_000_000)
	if _, err := mp.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if ctxr.Stats.BranchMispredicts.Value() < 300 {
		t.Fatalf("random branch mispredicted only %d times", ctxr.Stats.BranchMispredicts.Value())
	}
	if mr.Cycles < mp.Cycles*12/10 {
		t.Errorf("unpredictable loop %d cycles vs predictable %d; expected >= 1.2x",
			mr.Cycles, mp.Cycles)
	}
}

func TestSRTRunsTinyProgramIdentically(t *testing.T) {
	prog := tinyLoop(60)
	m, lead, trail, pair := srtMachine(t, prog, 1_000_000, DefaultConfig())
	if _, err := m.Run(200000); err != nil {
		t.Fatal(err)
	}
	// The machine stops when the budgeted leading copy finishes; the
	// trailing copy's final HALT may still be in flight.
	if d := int64(lead.Committed()) - int64(trail.Committed()); d < 0 || d > 1 {
		t.Errorf("copies committed %d vs %d", lead.Committed(), trail.Committed())
	}
	if pair.Cmp.Mismatches.Value() != 0 {
		t.Error("fault-free mismatch")
	}
	if pair.Cmp.Comparisons.Value() != 60 {
		t.Errorf("comparisons = %d, want 60 (one per store)", pair.Cmp.Comparisons.Value())
	}
	// All stores verified and committed.
	if got := lead.Arch.Mem.PendingBytes(); got != 0 {
		t.Errorf("leading overlay: %d pending bytes", got)
	}
	if got := trail.Arch.Mem.PendingBytes(); got != 0 {
		t.Errorf("trailing overlay: %d pending bytes", got)
	}
}

// TestSRTTrailingIsPerfect: the line prediction queue gives the trailing
// thread a perfect instruction stream — no branch or line mispredictions,
// and no data-cache traffic (loads come from the LVQ).
func TestSRTTrailingIsPerfect(t *testing.T) {
	prog := tinyLoop(200)
	m, _, trail, _ := srtMachine(t, prog, 1_000_000, DefaultConfig())
	if _, err := m.Run(400000); err != nil {
		t.Fatal(err)
	}
	if n := trail.Stats.BranchMispredicts.Value(); n != 0 {
		t.Errorf("trailing mispredicted %d branches", n)
	}
	if n := trail.Stats.LineMispredicts.Value(); n != 0 {
		t.Errorf("trailing line-mispredicted %d chunks", n)
	}
	if n := trail.Stats.DCacheMisses.Value(); n != 0 {
		t.Errorf("trailing took %d D-cache misses", n)
	}
}

// TestMemoryBarrierOrdering: an MB retires only after all older stores
// drain, in both base and SRT modes (the SRT case requires the §4.4.2
// forced chunk termination to avoid deadlock).
func TestMemoryBarrierOrdering(t *testing.T) {
	b := isa.NewBuilder("mb")
	b.Ldi(isa.R1, 40)
	b.Ldi(isa.R2, 0x2000)
	b.Label("top")
	b.Stq(isa.R1, isa.R2, 0)
	b.Mb()
	b.Ldq(isa.R3, isa.R2, 0)
	b.Addi(isa.R2, isa.R2, 8)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	prog := b.MustFinish()

	m1, ctx := singleMachine(t, prog, 1_000_000)
	if _, err := m1.Run(100000); err != nil {
		t.Fatalf("base MB run: %v", err)
	}
	if ctx.Committed() == 0 {
		t.Fatal("nothing retired")
	}

	m2, lead, _, _ := srtMachine(t, prog, 1_000_000, DefaultConfig())
	if _, err := m2.Run(300000); err != nil {
		t.Fatalf("SRT MB run deadlocked: %v", err)
	}
	if lead.Committed() != ctx.Committed() {
		t.Errorf("SRT committed %d, base %d", lead.Committed(), ctx.Committed())
	}
}

// TestPartialForwardFlush: a byte store followed by an overlapping quad
// load forces the store out of the store queue before the load issues; in
// SRT mode the chunk terminates at the store (§4.4.2). The loaded value
// must merge the byte correctly either way.
func TestPartialForwardFlush(t *testing.T) {
	b := isa.NewBuilder("pf")
	b.Ldi(isa.R1, 30)
	b.Ldi(isa.R2, 0x3000)
	b.Ldi(isa.R5, 0)
	b.Label("top")
	b.Andi(isa.R3, isa.R1, 0xff)
	b.Stb(isa.R3, isa.R2, 2) // byte store
	b.Ldq(isa.R4, isa.R2, 0) // overlapping quad load (partial forward)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Addi(isa.R2, isa.R2, 8)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	prog := b.MustFinish()

	m, lead, _, pair := srtMachine(t, prog, 1_000_000, DefaultConfig())
	if _, err := m.Run(300000); err != nil {
		t.Fatalf("partial-forward SRT run: %v", err)
	}
	if pair.Agg.ForcedTerminations.Value() == 0 {
		t.Error("no forced chunk terminations despite partial forwarding")
	}
	// Functional check: sum of (i & 0xff) << 16 for i = 30..1.
	var want uint64
	for i := uint64(30); i >= 1; i-- {
		want += (i & 0xff) << 16
	}
	if got := lead.Arch.IntReg[isa.R5]; got != want {
		t.Errorf("accumulator = %#x, want %#x", got, want)
	}
}

// TestQueueDivision checks the static load/store queue division of §3.4 and
// the LVQ's load-queue exemption of §4.1.
func TestQueueDivision(t *testing.T) {
	cfg := DefaultConfig()
	prog := tinyLoop(10)

	// Base, two threads: 32 SQ / 32 LQ entries each.
	core := NewCore(0, cfg, nil)
	for i := 0; i < 2; i++ {
		memImg := vm.NewMemory()
		vm.Load(prog, memImg)
		core.AddContext(NewContext(RoleSingle, i, vm.NewThread(i, prog, memImg), 0))
	}
	core.FinalizeQueues()
	for _, c := range core.Contexts() {
		if c.sqCap != 32 || c.lqCap != 32 {
			t.Errorf("base 2-thread division: sq=%d lq=%d, want 32/32", c.sqCap, c.lqCap)
		}
	}

	// SRT pair: SQ divided 32/32, but the leading thread gets the whole
	// 64-entry load queue (trailing loads use the LVQ).
	_, lead, trail, _ := srtMachine(t, prog, 0, cfg)
	if lead.sqCap != 32 || trail.sqCap != 32 {
		t.Errorf("SRT SQ division: %d/%d, want 32/32", lead.sqCap, trail.sqCap)
	}
	if lead.lqCap != 64 {
		t.Errorf("leading LQ = %d, want all 64", lead.lqCap)
	}

	// Per-thread store queues: 64 each.
	cfg2 := cfg
	cfg2.PerThreadSQ = true
	_, lead2, trail2, _ := srtMachine(t, prog, 0, cfg2)
	if lead2.sqCap != 64 || trail2.sqCap != 64 {
		t.Errorf("ptSQ: %d/%d, want 64/64", lead2.sqCap, trail2.sqCap)
	}
}

// TestStoreLifetimeLongerUnderSRT: the headline store-queue observation —
// leading stores live longer because they wait for output comparison.
func TestStoreLifetimeLongerUnderSRT(t *testing.T) {
	prog := tinyLoop(400)
	mb, ctxb := singleMachine(t, prog, 1_000_000)
	if _, err := mb.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	ms, lead, _, _ := srtMachine(t, prog, 1_000_000, DefaultConfig())
	if _, err := ms.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	baseLife := ctxb.Stats.StoreLifetime.Value()
	srtLife := lead.Stats.StoreLifetime.Value()
	if srtLife <= baseLife {
		t.Errorf("SRT store lifetime %.1f <= base %.1f; comparison must lengthen it",
			srtLife, baseLife)
	}
}

// TestWatchdogReportsDeadlock: a machine with no fetchable work (empty
// budgeted context that never finishes) trips the watchdog rather than
// spinning forever.
func TestWatchdogReportsDeadlock(t *testing.T) {
	// A program that HALTs immediately but with Budget > instructions
	// executed: FinishCycle never set; done() accepts the halted thread,
	// so instead force deadlock with an artificial never-ready context by
	// giving the watchdog a machine whose only context halts but claim it
	// unfinished via a huge budget... the halted thread counts as done, so
	// build a 2-context machine where the second waits on a pair that has
	// no leading side: simplest is an SRT machine whose LPQ never fills
	// because the leading thread halted before the trailing consumed
	// everything is still "done". Exercise the watchdog path directly via
	// WatchdogCycles=1 and a context that cannot finish: budget larger
	// than the halting program can commit, with Arch.Halted suppressed by
	// an infinite loop and zero fetch (RMB cap 0 is invalid) — use a
	// trailing-only machine instead.
	cfg := DefaultConfig()
	core := NewCore(0, cfg, nil)
	prog := tinyLoop(5)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	trail := NewContext(RoleTrailing, 0, vm.NewThread(0, prog, memImg), 100)
	pair := rmt.NewPair(0, rmt.SRTLatencies(), 8, 8)
	trail.Pair = pair
	core.AddContext(trail)
	core.FinalizeQueues()
	m := &Machine{Cores: []*Core{core}, WatchdogCycles: 500}
	_, err := m.Run(100000)
	if err == nil {
		t.Fatal("orphan trailing thread should deadlock (its LPQ never fills)")
	}
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("error type %T, want *DeadlockError", err)
	}
}

// TestLockstepCheckerSlowsMisses: Lock8's checker penalty must lengthen
// runs relative to Lock0 on a miss-heavy program.
func TestLockstepCheckerSlowsMisses(t *testing.T) {
	// Build a pointer-walk over 1 MB to guarantee cache misses.
	b := isa.NewBuilder("walk")
	b.Ldi(isa.R1, 3000)
	b.Ldi(isa.R2, 0x100000)
	b.Label("top")
	b.Ldq(isa.R3, isa.R2, 0)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Stq(isa.R4, isa.R2, 8)
	b.Addi(isa.R2, isa.R2, 64) // new cache block each iteration
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	prog := b.MustFinish()

	runWith := func(penalty uint64) uint64 {
		cfg := DefaultConfig()
		cfg.Hier.CheckerMissPenalty = penalty
		cfg.CheckerStorePenalty = penalty
		core := NewCore(0, cfg, nil)
		memImg := vm.NewMemory()
		vm.Load(prog, memImg)
		core.AddContext(NewContext(RoleSingle, 0, vm.NewThread(0, prog, memImg), 1_000_000))
		core.FinalizeQueues()
		m := &Machine{Cores: []*Core{core}}
		if _, err := m.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	lock0 := runWith(0)
	lock8 := runWith(8)
	if lock8 <= lock0 {
		t.Errorf("Lock8 (%d cycles) not slower than Lock0 (%d)", lock8, lock0)
	}
}

// TestReservedChunksPreventStarvation: with reservation disabled, one
// thread may take the whole instruction queue; the reservation guarantees
// each thread can always dispatch a chunk eventually. We check the
// invariant directly: with reservation on, a two-thread run never lets one
// thread's IQ occupancy exceed capacity minus the other's reserved chunk.
func TestReservedChunksPreventStarvation(t *testing.T) {
	cfg := DefaultConfig()
	prog := tinyLoop(2000)
	core := NewCore(0, cfg, nil)
	for i := 0; i < 2; i++ {
		memImg := vm.NewMemory()
		vm.Load(prog, memImg)
		core.AddContext(NewContext(RoleSingle, i, vm.NewThread(i, prog, memImg), 0))
	}
	core.FinalizeQueues()
	for i := 0; i < 20000; i++ {
		core.Step()
		total := core.iqUsed[0] + core.iqUsed[1]
		for _, c := range core.Contexts() {
			if total-c.iqN() > 2*cfg.IQHalfCap-cfg.ChunkSize {
				t.Fatalf("cycle %d: thread %d starved (other occupancy %d)",
					i, c.TID, total-c.iqN())
			}
		}
	}
}
