package pipeline

import (
	"repro/internal/isa"
	"repro/internal/vm"
)

// classKind is the pipeline-internal instruction class used for latency and
// port selection.
type classKind uint8

const (
	kindIntALU classKind = iota
	kindIntMul
	kindIntDiv
	kindLoad
	kindStore
	kindFPAdd
	kindFPMul
	kindFPDiv
	kindBranch
	kindBarrier
	kindHalt
	kindNop
)

func kindOf(op isa.Op) classKind {
	switch isa.ClassOf(op) {
	case isa.ClassIntALU:
		return kindIntALU
	case isa.ClassIntMul:
		return kindIntMul
	case isa.ClassIntDiv:
		return kindIntDiv
	case isa.ClassLoad:
		return kindLoad
	case isa.ClassStore:
		return kindStore
	case isa.ClassFPAdd:
		return kindFPAdd
	case isa.ClassFPMul:
		return kindFPMul
	case isa.ClassFPDiv:
		return kindFPDiv
	case isa.ClassBranch, isa.ClassJump:
		return kindBranch
	case isa.ClassBarrier:
		return kindBarrier
	case isa.ClassHalt:
		return kindHalt
	}
	return kindNop
}

// dynInst is one dynamic instruction flowing through the timing model.
type dynInst struct {
	out  vm.Outcome
	tid  int
	kind classKind

	// Pipeline event cycles.
	fetchCycle  uint64
	rmbReadyAt  uint64 // visible to the PBOX (fetch + IBOX latency)
	renameCycle uint64
	issueCycle  uint64
	doneCycle   uint64 // result available (bypass) / store data in SQ
	retireCycle uint64

	inIQ    bool
	issued  bool
	retired bool

	// earliestIssue gates issue (queue-front latency, LVQ retry).
	earliestIssue uint64

	// fetchSlot is the instruction's position within its fetch chunk; the
	// QBOX assigns the issue-queue half from it (§3.3).
	fetchSlot int
	// upperHalf is the issue-queue half the instruction was dispatched to.
	upperHalf bool
	// fu is the functional unit the instruction issued on (half*4+slot).
	fu uint8

	// Producers for operand readiness (zero ref = architecturally ready).
	srcA, srcB, srcD instRef

	// Memory dependence: the youngest older overlapping store. covered
	// means full containment (store-queue forwarding possible); partial
	// means the store must drain before the load may access the cache.
	depStore instRef
	covered  bool
	partial  bool
	// predictedDep is the store-sets-predicted producer store.
	predictedDep instRef

	// Branch state, decided at fetch against the oracle outcome.
	mispredicted bool

	// Store lifecycle.
	sqEntered  uint64 // cycle the SQ entry was allocated (rename)
	verified   bool   // leading: output comparison done
	verifiedAt uint64
	drained    bool // left the SQ for the merge buffer / dropped
	forceTerm  bool // chunk must terminate after this store (partial fwd)

	// RMT correlation tags (non-zero when applicable).
	loadTag  uint64
	storeTag uint64

	// Leading-copy resource info delivered through the LPQ (trailing
	// copies only).
	hasLeadInfo bool
	leadUpper   bool
	leadFU      uint8

	// gen is the recycling generation, incremented each time the dynInst
	// returns to its context's free list. instRefs snapshot it so stale
	// references to a recycled instruction resolve to "gone" instead of
	// aliasing whatever dynamic instruction reuses the storage.
	gen uint64
}

// instRef is a recycling-safe reference to a dynInst: the pointer plus the
// generation it was taken at. An instruction is only ever recycled after it
// has retired (and, for stores, drained), so a reference whose generation no
// longer matches denotes a retired/drained producer — exactly the condition
// under which the unpooled model treated the pointer as satisfied. get
// therefore returns nil both for the never-set reference and for one whose
// target has been recycled, and callers treat nil as "architecturally done".
type instRef struct {
	d   *dynInst
	gen uint64
}

// ref captures a recycling-safe reference to d (nil-safe).
func ref(d *dynInst) instRef {
	if d == nil {
		return instRef{}
	}
	return instRef{d: d, gen: d.gen}
}

// get returns the referenced instruction, or nil if the reference was never
// set or its target has since been recycled.
func (r instRef) get() *dynInst {
	if r.d != nil && r.d.gen == r.gen {
		return r.d
	}
	return nil
}

// wasSet reports whether the reference was ever set, regardless of whether
// the target has been recycled since (used where the unpooled model tested
// pointer non-nilness without dereferencing).
func (r instRef) wasSet() bool { return r.d != nil }

func (d *dynInst) isLoad() bool  { return d.kind == kindLoad }
func (d *dynInst) isStore() bool { return d.kind == kindStore }
func (d *dynInst) isMem() bool   { return d.kind == kindLoad || d.kind == kindStore }

// overlaps reports whether two memory accesses touch any common byte.
func overlaps(a1 uint64, s1 int, a2 uint64, s2 int) bool {
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}

// covers reports whether access (a1,s1) fully contains (a2,s2).
func covers(a1 uint64, s1 int, a2 uint64, s2 int) bool {
	return a1 <= a2 && a1+uint64(s1) >= a2+uint64(s2)
}
