package pipeline

import "repro/internal/rmt"

// issueStage implements the QBOX scheduler: each instruction-queue half
// issues up to four ready instructions per cycle in age order, subject to
// the MBOX port limits (at most three loads, two stores, four memory
// operations per cycle).
func (co *Core) issueStage() {
	var issuedHalf [2]int
	loads, storesN, mems, fps := 0, 0, 0, 0
	n := len(co.ctxs)
	start := int(co.cycle) % max(n, 1)
	for i := 0; i < n; i++ {
		ctx := co.ctxs[(start+i)%n]
		iq := ctx.iq
		// iq holds exactly the unissued IQ residents in age order, so this
		// visits the same candidates, in the same order, as a full window
		// scan — without re-skipping issued instructions every cycle. An
		// issued candidate is removed in place, which slides the next
		// candidate into index j.
		for j := 0; j < iq.Len(); {
			d := iq.At(j)
			if issuedHalf[0] >= co.cfg.IssuePerHalf && issuedHalf[1] >= co.cfg.IssuePerHalf {
				return
			}
			if d.earliestIssue > co.cycle {
				j++
				continue
			}
			h := halfIdx(d.upperHalf)
			if issuedHalf[h] >= co.cfg.IssuePerHalf {
				j++
				continue
			}
			if !co.operandsReady(d) {
				j++
				continue
			}
			isFP := d.kind == kindFPAdd || d.kind == kindFPMul || d.kind == kindFPDiv
			if isFP && fps >= co.cfg.MaxFPPerCycle {
				j++
				continue
			}
			if d.isMem() {
				if mems >= co.cfg.MaxMemPerCycle {
					j++
					continue
				}
				if d.isLoad() && loads >= co.cfg.MaxLoadsPerCycle {
					j++
					continue
				}
				if d.isStore() && storesN >= co.cfg.MaxStoresPerCycle {
					j++
					continue
				}
				if !co.memReady(ctx, d) {
					j++
					continue
				}
			}

			// Issue.
			d.issued = true
			d.inIQ = false
			iq.RemoveAt(j)
			co.iqUsed[h]--
			ctx.iqOccupancy--
			d.issueCycle = co.cycle
			d.fu = uint8(h*co.cfg.IssuePerHalf + issuedHalf[h])
			issuedHalf[h]++
			if d.isMem() {
				mems++
				if d.isLoad() {
					loads++
				} else {
					storesN++
				}
			}
			if isFP {
				fps++
			}
			co.execute(ctx, d)
		}
	}
}

// operandsReady reports whether all register operands will be available at
// the bypass network by register read. Stores issue on their address
// operand alone: the data value follows the address into the store queue
// (§3.4), so a store need not wait for its data producer to issue.
func (co *Core) operandsReady(d *dynInst) bool {
	ready := func(r instRef) bool {
		// A recycled producer was retired before recycling, so the stale
		// reference resolving to nil gives the same answer as before.
		p := r.get()
		if p == nil || p.retired {
			return true
		}
		return p.issued && p.doneCycle <= co.cycle+RBOXLatency
	}
	if d.isStore() {
		return ready(d.srcA)
	}
	return ready(d.srcA) && ready(d.srcB) && ready(d.srcD)
}

// memReady applies memory-ordering constraints before a load or store may
// issue.
func (co *Core) memReady(ctx *Context, d *dynInst) bool {
	if d.out.Instr.IsUncached() && d.isLoad() {
		// Uncached loads are non-speculative: they issue only from the
		// head of the thread's window, after all older stores drained.
		return ctx.robHead() == d && !ctx.hasUndrainedOlderStores(d.out.Seq)
	}
	if d.isStore() {
		return true
	}
	if ctx.Role == RoleTrailing {
		if d.loadTag == 0 {
			// Unprotected load of a gated pair: no LVQ entry to wait for;
			// it reads the cache like a leading load.
			return true
		}
		// Trailing loads read the load value queue; if the entry has not
		// been forwarded yet the load retries (out-of-order trailing issue
		// is allowed by the tag-associative LVQ, §4.1).
		readyAt, ok := ctx.Pair.LVQ.Peek(d.loadTag)
		if !ok {
			ctx.Stats.LVQWaits.Inc()
			d.earliestIssue = co.cycle + 1
			return false
		}
		if readyAt > co.cycle {
			d.earliestIssue = readyAt
			return false
		}
		return true
	}
	// Stores are recycled only after they drain, so a stale depStore /
	// predictedDep reference (get() == nil) means "drained" — the same
	// outcome the pointer-based checks produced.
	if s := d.depStore.get(); s != nil && d.partial && !s.drained {
		// Partial overlap: the store must leave the store queue before the
		// load can read merged bytes from the cache (§4.4.2).
		return false
	}
	if s := d.depStore.get(); s != nil && d.covered && !s.drained &&
		!(s.issued && s.doneCycle <= co.cycle+RBOXLatency) {
		return false // wait for store-queue forwarding data
	}
	if p := d.predictedDep.get(); p != nil && !p.drained && !p.issued {
		return false // store-sets predicted dependence
	}
	return true
}

// execute assigns the completion time of an issued instruction and performs
// the issue-time side effects (cache access, LVQ consumption, comparator
// forwarding, fetch unblocking, space-redundancy accounting).
func (co *Core) execute(ctx *Context, d *dynInst) {
	base := co.cycle + RBOXLatency
	switch d.kind {
	case kindLoad:
		d.doneCycle = co.executeLoad(ctx, d, base)
	case kindStore:
		// Address at base+1; data arrives two cycles after the address
		// (§3.4), or when the data producer's result reaches the bypass
		// network, whichever is later.
		d.doneCycle = base + 3
		if p := d.srcD.get(); p != nil && !p.retired {
			if dataAt := p.doneCycle + 2; dataAt > d.doneCycle {
				d.doneCycle = dataAt
			}
		}
		if ctx.Role == RoleTrailing && !co.cfg.NoStoreComparison && d.storeTag != 0 {
			ctx.Pair.Cmp.AddTrailing(rmt.StoreRecord{
				Tag:     d.storeTag,
				Addr:    d.out.Addr,
				Size:    d.out.Size,
				Value:   d.out.Value,
				ReadyAt: d.doneCycle + ctx.Pair.Lat.StoreForward,
			})
		}
	case kindBranch:
		d.doneCycle = base + 1
		if d.mispredicted {
			// Resolve: fetch restarts down the correct path next cycle.
			if ctx.fetchBlockedUntil == neverUnblock && ctx.pendingBranch == d {
				ctx.fetchBlockedUntil = d.doneCycle + 1
				ctx.pendingBranch = nil
				co.emit(ctx, d, StageSquash, d.doneCycle)
			}
		}
	default:
		d.doneCycle = base + ctx.latOf(&co.cfg, d)
	}

	if ctx.Role == RoleTrailing && d.hasLeadInfo {
		ctx.Pair.ObserveSpaceRedundancy(d.leadUpper, d.upperHalf, int(d.leadFU), int(d.fu))
	}
	co.emit(ctx, d, StageIssue, d.issueCycle)
	co.emit(ctx, d, StageDone, d.doneCycle)
}

// executeLoad resolves a load's completion: store-queue forwarding, LVQ
// read, or data cache access, plus the memory-order-violation replay
// penalty when the store-sets predictor failed to predict a real
// dependence.
func (co *Core) executeLoad(ctx *Context, d *dynInst, base uint64) uint64 {
	if d.out.Instr.IsUncached() {
		// Device round trip; the value was obtained (leading) or
		// replicated (trailing) by the functional oracle.
		return base + co.cfg.IOLatency
	}
	if ctx.Role == RoleTrailing && d.loadTag != 0 {
		e, ok := ctx.Pair.LVQ.Lookup(d.loadTag, co.cycle)
		if ok && e.Addr != d.out.Addr {
			// Address mismatch at the LVQ: a detected fault (§2.1 — the
			// trailing load verifies the address).
			ctx.Pair.LVQ.AddrMismatches.Inc()
			ctx.Pair.Detected = append(ctx.Pair.Detected, &rmt.Mismatch{
				Tag:      d.loadTag,
				LeadAddr: e.Addr, TrailAddr: d.out.Addr,
			})
			co.emitCompare(ctx, d, co.cycle, true)
		}
		// The LVQ lookup is a store-queue-like CAM probe (§4.1).
		return base + 1 + MBOXLatency
	}

	done := base + 1 + MBOXLatency
	dep := d.depStore.get() // nil once the store drained and was recycled
	if dep != nil && d.covered && !dep.drained {
		// Store-queue forwarding: same latency as a cache hit.
	} else {
		avail := co.hier.L1D.Access(co.dAddr(ctx, d.out.Addr), base+1)
		if avail > base+1 {
			ctx.Stats.DCacheMisses.Inc()
			done = avail + MBOXLatency
		}
	}
	if dep != nil && !d.predictedDep.wasSet() && !dep.drained &&
		dep.issueCycle >= d.renameCycle {
		// The dependence was not predicted: on the real machine the load
		// would have issued early, violated, and replayed. Charge the
		// replay and teach the store-sets predictor.
		done += co.cfg.ReplayPenalty
		co.storeSets.Violation(co.iAddr(ctx, d.out.PC), co.iAddr(ctx, dep.out.PC))
	}
	return done
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
