// Package pipeline implements the timing model of the base processor: an
// eight-wide, four-context SMT core resembling the Alpha 21464 (EV8), with
// the paper's IBOX/PBOX/QBOX/RBOX/EBOX/MBOX organisation (Figure 2, Table
// 1), plus the hooks that internal/rmt uses to turn it into an SRT or CRT
// machine.
//
// The model is cycle-driven. Instructions are executed functionally (by
// internal/vm) in program order at fetch, giving the timing model oracle
// knowledge of branch outcomes, addresses and values; the timing model then
// charges the real penalties: misfetches and mispredictions stall and
// redirect fetch, cache misses delay fills, queue and port limits throttle
// dispatch and issue, and the store queue holds stores until they may leave
// the sphere of replication. Wrong-path instructions are not simulated
// (their cache side effects are ignored), a standard oracle-frontend
// simplification.
package pipeline

import "repro/internal/mem"

// Stage latencies from Figure 2 of the paper.
const (
	IBOXLatency = 4 // fetch pipeline: thread choice, line predict, icache, RMB write
	PBOXLatency = 2 // rename
	QBOXLatency = 2 // queue front (insert to first possible issue)
	RBOXLatency = 4 // register read
	MBOXLatency = 2 // data cache / LVQ access after address generation
)

// Role describes how a hardware thread context participates.
type Role uint8

// Roles.
const (
	// RoleSingle is a non-redundant thread: stores leave the sphere at
	// retirement (base machine and lockstepped machines).
	RoleSingle Role = iota
	// RoleLeading is the leading copy of a redundant pair.
	RoleLeading
	// RoleTrailing is the trailing copy: fetch is driven by the line
	// prediction queue, loads come from the load value queue, stores are
	// compared and discarded.
	RoleTrailing
)

func (r Role) String() string {
	switch r {
	case RoleSingle:
		return "single"
	case RoleLeading:
		return "leading"
	case RoleTrailing:
		return "trailing"
	}
	return "role?"
}

// Config carries the machine parameters. DefaultConfig reproduces Table 1.
type Config struct {
	// FetchChunks is chunks fetched per cycle (from one thread).
	FetchChunks int
	// ChunkSize is instructions per fetch chunk.
	ChunkSize int
	// RMBCap is the per-thread rate-matching buffer capacity in
	// instructions.
	RMBCap int

	// MapWidth is instructions renamed per cycle (one chunk).
	MapWidth int

	// IQHalfCap is the capacity of each instruction-queue half.
	IQHalfCap int
	// IssuePerHalf is the issue bandwidth of each half.
	IssuePerHalf int
	// ReservedChunks reserves one chunk's worth of IQ slots per thread
	// (the paper's deadlock-avoidance measure, §4.3). Disabled only by
	// the deadlock-demonstration tests.
	ReservedChunks bool

	// MaxLoads/MaxStores/MaxMem bound memory issue per cycle (Table 1:
	// four memory ops, at most two stores and three loads).
	MaxLoadsPerCycle  int
	MaxStoresPerCycle int
	MaxMemPerCycle    int
	// MaxFPPerCycle bounds FP issue (Table 1: four FP units).
	MaxFPPerCycle int

	// LQCap and SQCap are the total load/store queue sizes, statically
	// divided among the threads that use them (§3.4). PerThreadSQ gives
	// every thread its own SQCap-entry store queue instead (the paper's
	// proposed optimization, §4.2).
	LQCap       int
	SQCap       int
	PerThreadSQ bool

	// RetireWidth is instructions retired per cycle (all threads).
	RetireWidth int
	// InFlightCap bounds instructions between rename and retire
	// (completion-unit capacity; also stands in for the 512-entry
	// physical register file: 512 physical minus 256 architectural).
	InFlightCap int

	// StoreDrainPerCycle bounds verified/retired stores leaving the store
	// queue for the merge buffer per cycle per thread.
	StoreDrainPerCycle int
	// MergeBufEntries is the coalescing merge buffer capacity.
	MergeBufEntries int

	// LineRetrainBubble is the fetch bubble when the control-flow
	// predictors disagree with the line predictor and it must be
	// retrained and the fetch reinitiated (§3.1).
	LineRetrainBubble uint64
	// ReplayPenalty is charged to a load that issued before an older
	// conflicting store (memory-order violation replay).
	ReplayPenalty uint64
	// IOLatency is the round-trip latency of an uncached device access.
	IOLatency uint64
	// InterruptEvery, when non-zero, raises a timer interrupt for each
	// single/leading thread every so many cycles (the program must define
	// an interrupt handler). Trailing threads replicate the leading
	// thread's delivery points exactly (SRT interrupt input replication).
	InterruptEvery uint64

	// LVQSize and LPQSize size the RMT queues (entries / chunks). The
	// paper argues an LVQ equal in size to the store queue supports three
	// accesses per cycle without hurting cycle time.
	LVQSize int
	LPQSize int

	// RVQSize sizes the SRTR register value queue (entries). Only the
	// SRTR organisation builds an RVQ; a full RVQ stalls leading-thread
	// retirement, so it bounds the pair's lead-ahead in retired
	// register-writing instructions.
	RVQSize int

	// NoStoreComparison disables output comparison of stores (the paper's
	// "SRT + nosc" configuration in Figure 6): leading stores drain at
	// retirement as on the base machine. Input replication still happens.
	NoStoreComparison bool

	// SlackFetch, when positive, gates trailing-thread fetch on the
	// leading thread being at least this many committed instructions
	// ahead (the original SRT slack-fetch mechanism, kept for the
	// ablation study; 0 = the paper's LPQ-priority policy). Must be
	// comfortably below the LPQ's capacity in instructions
	// (LPQSize x average chunk size), or the leading thread's retirement
	// backpressure deadlocks against the slack gate.
	SlackFetch uint64

	// CheckerStorePenalty delays every store's exit from the sphere by
	// the lockstep checker latency (Lock8). Applied to RoleSingle stores.
	CheckerStorePenalty uint64

	// Hier configures the memory hierarchy.
	Hier mem.HierarchyConfig

	// Latency per instruction class (execution cycles after register
	// read). Zero entries default to 1.
	IntALULat, IntMulLat, IntDivLat uint64
	FPAddLat, FPMulLat, FPDivLat    uint64

	// BranchPredictorBits, LinePredictorBits, JumpPredictorBits and
	// RASDepth size the prediction structures.
	BranchPredictorBits uint
	LinePredictorBits   uint
	JumpPredictorBits   uint
	RASDepth            int

	// StoreSetBits and StoreSetCount size the memory dependence predictor.
	StoreSetBits  uint
	StoreSetCount int

	// WatchdogCycles aborts the run if no instruction retires for this
	// many cycles (deadlock detection). 0 disables.
	WatchdogCycles uint64

	// DisableInstPool turns off dynamic-instruction recycling (every
	// dynInst is heap-allocated and never reused). Timing is identical
	// either way; the knob exists so tests can diff the pooled machine
	// against the allocation-per-instruction one.
	DisableInstPool bool
}

// DefaultConfig returns the Table 1 base-machine parameters.
func DefaultConfig() Config {
	return Config{
		FetchChunks: 2,
		ChunkSize:   8,
		RMBCap:      32,

		MapWidth: 8,

		IQHalfCap:      64,
		IssuePerHalf:   4,
		ReservedChunks: true,

		MaxLoadsPerCycle:  3,
		MaxStoresPerCycle: 2,
		MaxMemPerCycle:    4,
		MaxFPPerCycle:     4,

		LQCap: 64,
		SQCap: 64,

		RetireWidth: 8,
		InFlightCap: 256,

		StoreDrainPerCycle: 2,
		MergeBufEntries:    16,

		LineRetrainBubble: 2,
		ReplayPenalty:     14,
		IOLatency:         100,

		LVQSize: 64,
		LPQSize: 32,
		RVQSize: 256,

		Hier: mem.DefaultHierarchyConfig(),

		IntALULat: 1, IntMulLat: 7, IntDivLat: 20,
		FPAddLat: 4, FPMulLat: 4, FPDivLat: 16,

		BranchPredictorBits: 15, // 3 tables x 32K x 2 bits ≈ Table 1's 208 Kbit
		LinePredictorBits:   15, // ≈ 28K entries
		JumpPredictorBits:   10,
		RASDepth:            32,

		StoreSetBits:  12, // 4K entries (Table 1)
		StoreSetCount: 256,

		WatchdogCycles: 100000,
	}
}

// classLat returns the execution latency for an instruction class.
func (c *Config) classLat(cl classKind) uint64 {
	var l uint64
	switch cl {
	case kindIntALU:
		l = c.IntALULat
	case kindIntMul:
		l = c.IntMulLat
	case kindIntDiv:
		l = c.IntDivLat
	case kindFPAdd:
		l = c.FPAddLat
	case kindFPMul:
		l = c.FPMulLat
	case kindFPDiv:
		l = c.FPDivLat
	default:
		l = 1
	}
	if l == 0 {
		l = 1
	}
	return l
}
