package pipeline

import "repro/internal/isa"

// noReg marks an absent source/destination register in a decode record.
const noReg = 0xff

// decodedInst is the static decode record for one program instruction:
// everything the per-cycle path previously re-derived from the opcode for
// every dynamic instance (class, execution latency, source/destination
// registers, port class). It is computed once per static instruction at
// program load and indexed by PC, so fetch, rename and issue read a flat
// table instead of running the isa switch chains per dynamic instruction.
type decodedInst struct {
	kind classKind
	// lat is the execution latency after register read (classLat applied).
	lat uint64
	// isFP marks the FP port class (kindFPAdd/Mul/Div) for the issue-stage
	// FP bandwidth limit.
	isFP bool

	// Source registers (noReg = absent) and their register-file selectors.
	srcA, srcB, srcD uint8
	aFP, bFP, dFP    bool

	// Destination register (noReg = none; stores and branches don't
	// rename).
	dest   uint8
	destFP bool
}

// decodeOne builds the decode record for a single instruction under cfg's
// latency table. It is the single source of truth both for the per-program
// tables and for the out-of-image fallback path (a corrupted jump target in
// a fault-injection run can fetch from outside the code image).
func decodeOne(cfg *Config, ins isa.Instr) decodedInst {
	kind := kindOf(ins.Op)
	dec := decodedInst{
		kind: kind,
		lat:  cfg.classLat(kind),
		isFP: kind == kindFPAdd || kind == kindFPMul || kind == kindFPDiv,
		srcA: noReg, srcB: noReg, srcD: noReg,
		dest: noReg,
	}
	a, aFP, aOK, b, bFP, bOK, sd, sdFP, sdOK := srcRegs(ins)
	if aOK && a != isa.ZeroReg {
		dec.srcA, dec.aFP = uint8(a), aFP
	}
	if bOK && b != isa.ZeroReg {
		dec.srcB, dec.bFP = uint8(b), bFP
	}
	if sdOK && sd != isa.ZeroReg {
		dec.srcD, dec.dFP = uint8(sd), sdFP
	}
	if ins.HasDest() && !ins.IsStore() && ins.Rd != isa.ZeroReg {
		dec.dest, dec.destFP = uint8(ins.Rd), ins.DestIsFP()
	}
	return dec
}

// buildDecode precomputes the decode table for a program's code image.
func buildDecode(cfg *Config, prog *isa.Program) []decodedInst {
	table := make([]decodedInst, len(prog.Code))
	for pc, ins := range prog.Code {
		table[pc] = decodeOne(cfg, ins)
	}
	return table
}

// decodeOf returns the decode record for a dynamic instruction. PCs inside
// the code image hit the precomputed table; anything else (tolerant-mode
// wild fetches) decodes on the fly into scratch, a value on the caller's
// stack, so the fallback stays allocation-free.
func (c *Context) decodeOf(cfg *Config, d *dynInst, scratch *decodedInst) *decodedInst {
	if pc := d.out.PC; pc < uint64(len(c.decode)) {
		return &c.decode[pc]
	}
	*scratch = decodeOne(cfg, d.out.Instr)
	return scratch
}

// kindAt returns the instruction class at pc (table hit) or derives it from
// the opcode (fallback).
func (c *Context) kindAt(pc uint64, op isa.Op) classKind {
	if pc < uint64(len(c.decode)) {
		return c.decode[pc].kind
	}
	return kindOf(op)
}

// latOf returns the execution latency of d's class.
func (c *Context) latOf(cfg *Config, d *dynInst) uint64 {
	if pc := d.out.PC; pc < uint64(len(c.decode)) {
		return c.decode[pc].lat
	}
	return cfg.classLat(d.kind)
}
