package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/rmt"
	"repro/internal/vm"
)

// progGen generates random, terminating, self-contained programs: an outer
// counted loop whose body mixes ALU work, loads/stores confined to a 64 KB
// scratch region, short forward branches, byte/quad mixes (partial
// forwarding), memory barriers, and calls. Everything the timing model
// handles, in random combination.
type progGen struct{ state uint64 }

func (g *progGen) next() uint64 {
	g.state ^= g.state << 13
	g.state ^= g.state >> 7
	g.state ^= g.state << 17
	return g.state
}

func (g *progGen) reg() isa.Reg { return isa.Reg(1 + g.next()%14) } // R1..R14

const scratchBase = 0x10000

func (g *progGen) gen(iters int64) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("rand%x", g.state))
	b.Ldi(isa.R20, scratchBase)
	b.Ldi(isa.R15, iters) // loop counter (reserved)
	// Seed work registers deterministically.
	for r := isa.R1; r <= isa.R14; r++ {
		b.Ldi(r, int64(g.next()&0xffff))
	}
	b.Label("top")
	bodyLen := 10 + int(g.next()%30)
	for i := 0; i < bodyLen; i++ {
		switch g.next() % 12 {
		case 0:
			b.Add(g.reg(), g.reg(), g.reg())
		case 1:
			b.Mul(g.reg(), g.reg(), g.reg())
		case 2:
			b.Xor(g.reg(), g.reg(), g.reg())
		case 3:
			b.Addi(g.reg(), g.reg(), int64(g.next()%1000)-500)
		case 4:
			b.Srli(g.reg(), g.reg(), int64(g.next()%32))
		case 5: // quad store to a masked scratch address
			addr, data := g.reg(), g.reg()
			b.Andi(isa.R16, addr, 0xfff8)
			b.Add(isa.R16, isa.R16, isa.R20)
			b.Stq(data, isa.R16, 0)
		case 6: // quad load
			addr := g.reg()
			b.Andi(isa.R16, addr, 0xfff8)
			b.Add(isa.R16, isa.R16, isa.R20)
			b.Ldq(g.reg(), isa.R16, 0)
		case 7: // byte store then possibly-overlapping quad load (partial fwd)
			addr, data := g.reg(), g.reg()
			b.Andi(isa.R16, addr, 0xfff8)
			b.Add(isa.R16, isa.R16, isa.R20)
			b.Stb(data, isa.R16, int64(g.next()%8))
			if g.next()%2 == 0 {
				b.Ldq(g.reg(), isa.R16, 0)
			}
		case 8: // short forward branch over one instruction
			cond := g.reg()
			label := fmt.Sprintf("skip%d_%d", iters, i)
			switch g.next() % 3 {
			case 0:
				b.Beq(cond, label)
			case 1:
				b.Bne(cond, label)
			case 2:
				b.Blt(cond, label)
			}
			b.Addi(g.reg(), g.reg(), 1)
			b.Label(label)
		case 9:
			if g.next()%4 == 0 {
				b.Mb()
			} else {
				b.Cmplt(g.reg(), g.reg(), g.reg())
			}
		case 10: // FP excursion through the int values
			fa, fb := isa.Reg(1+g.next()%6), isa.Reg(1+g.next()%6)
			b.Cvtqf(fa, g.reg())
			b.Fadd(fb, fb, fa)
			b.Ftoi(isa.R17, fb)
			b.Andi(isa.R17, isa.R17, 0xffff)
		case 11: // call a tiny helper
			b.Jsr(isa.R26, "helper")
		}
	}
	b.Addi(isa.R15, isa.R15, -1)
	b.Bne(isa.R15, "top")
	b.Halt()

	b.Label("helper")
	b.Xori(isa.R18, isa.R18, 0x5a)
	b.Add(isa.R18, isa.R18, isa.R1)
	b.Ret(isa.R26)
	return b.MustFinish()
}

// snapshot captures the architectural state a program leaves behind.
type snapshot struct {
	intReg  [32]uint64
	fpReg   [32]uint64
	scratch [8192]uint64 // the whole 64 KB region
}

func archSnap(th *vm.Thread, memImg *vm.Memory) snapshot {
	var s snapshot
	s.intReg = th.IntReg
	s.fpReg = th.FPReg
	for i := range s.scratch {
		s.scratch[i] = memImg.Read64(scratchBase + uint64(i*8))
	}
	return s
}

func functionalRun(t *testing.T, prog *isa.Program) snapshot {
	t.Helper()
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	th := vm.NewThread(0, prog, memImg)
	if n := th.Run(3_000_000); n == 3_000_000 {
		t.Fatal("functional run did not terminate")
	}
	// Commit the overlay so memory reflects all stores.
	// (Functional-only threads never release; read through the overlay.)
	var s snapshot
	s.intReg = th.IntReg
	s.fpReg = th.FPReg
	for i := range s.scratch {
		s.scratch[i] = th.Mem.Read64(scratchBase + uint64(i*8))
	}
	return s
}

func compareSnapshots(t *testing.T, tag string, want, got snapshot) {
	t.Helper()
	for r := 0; r < 32; r++ {
		if want.intReg[r] != got.intReg[r] {
			t.Errorf("%s: R%d = %#x, want %#x", tag, r, got.intReg[r], want.intReg[r])
		}
		if want.fpReg[r] != got.fpReg[r] {
			t.Errorf("%s: F%d = %#x, want %#x", tag, r, got.fpReg[r], want.fpReg[r])
		}
	}
	diffs := 0
	for i := range want.scratch {
		if want.scratch[i] != got.scratch[i] {
			diffs++
			if diffs <= 3 {
				t.Errorf("%s: mem[%#x] = %#x, want %#x",
					tag, scratchBase+uint64(i*8), got.scratch[i], want.scratch[i])
			}
		}
	}
	if diffs > 3 {
		t.Errorf("%s: ... and %d more memory differences", tag, diffs-3)
	}
}

// TestDifferentialBase runs random programs through the full timing model
// and checks the architectural outcome — registers and committed memory —
// is bit-identical to pure functional execution. The timing model may
// reorder and stall, but must never change semantics.
func TestDifferentialBase(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := &progGen{state: seed * 0x9E3779B97F4A7C15}
			prog := g.gen(40)
			want := functionalRun(t, prog)

			m, ctx := singleMachine(t, prog, 10_000_000)
			if _, err := m.Run(3_000_000); err != nil {
				t.Fatal(err)
			}
			memImg := ctxMemory(ctx)
			got := archSnap(ctx.Arch, memImg)
			compareSnapshots(t, "base", want, got)
			if ctx.Arch.Mem.PendingBytes() != 0 {
				t.Errorf("overlay not fully drained: %d bytes", ctx.Arch.Mem.PendingBytes())
			}
		})
	}
}

// TestDifferentialSRT runs the same random programs as redundant pairs:
// both copies must finish with the functional state, all stores verified,
// zero mismatches.
func TestDifferentialSRT(t *testing.T) {
	configs := []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", func(c *Config) {}},
		{"ptsq", func(c *Config) { c.PerThreadSQ = true }},
		{"nosc", func(c *Config) { c.NoStoreComparison = true }},
		{"smallLVQ", func(c *Config) { c.LVQSize = 8 }},
	}
	for seed := uint64(1); seed <= 6; seed++ {
		for _, cc := range configs {
			tag := fmt.Sprintf("seed%d/%s", seed, cc.name)
			t.Run(tag, func(t *testing.T) {
				g := &progGen{state: seed * 0xBF58476D1CE4E5B9}
				prog := g.gen(30)
				want := functionalRun(t, prog)

				cfg := DefaultConfig()
				cc.mut(&cfg)
				m, lead, trail, pair := srtMachine(t, prog, 10_000_000, cfg)
				if _, err := m.Run(3_000_000); err != nil {
					t.Fatal(err)
				}
				// The run stops when the (budgeted) leading copy halts and
				// drains; give the trailing copy time to drain its last
				// stores so every commit reaches memory.
				for i := 0; i < 50000 && !(trail.Arch.Halted && trail.drainedAndIdle()); i++ {
					m.Cores[0].Step()
				}
				if !trail.Arch.Halted {
					t.Fatal("trailing copy never reached HALT")
				}
				compareSnapshots(t, tag+"/lead", want, archSnap(lead.Arch, ctxMemory(lead)))
				// The trailing copy's registers must match too (identical
				// stream).
				got := archSnap(trail.Arch, ctxMemory(trail))
				for r := 0; r < 32; r++ {
					if want.intReg[r] != got.intReg[r] {
						t.Errorf("%s/trail: R%d = %#x, want %#x", tag, r, got.intReg[r], want.intReg[r])
					}
				}
				if !cfg.NoStoreComparison && pair.Cmp.Mismatches.Value() != 0 {
					t.Errorf("%s: %d mismatches in fault-free run", tag, pair.Cmp.Mismatches.Value())
				}
				if len(pair.Detected) != 0 {
					t.Errorf("%s: spurious detections", tag)
				}
			})
		}
	}
}

// ctxMemory digs out the shared committed memory under a context's overlay.
func ctxMemory(ctx *Context) *vm.Memory { return ctx.Arch.Mem.Backing() }

// crtMachine hand-wires one redundant pair across the two cores of a CMP:
// leading copy on core 0, trailing copy on core 1, shared L2, cross-core
// forwarding latencies.
func crtMachine(t *testing.T, prog *isa.Program, budget uint64, cfg Config) (*Machine, *Context, *Context, *rmt.Pair) {
	t.Helper()
	core0 := NewCore(0, cfg, nil)
	core1 := NewCore(1, cfg, core0.Hierarchy().L2)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	lead := NewContext(RoleLeading, 0, vm.NewThread(0, prog, memImg), budget)
	trail := NewContext(RoleTrailing, 0, vm.NewThread(1, prog, memImg), 0)
	lead.PeerArch = trail.Arch
	trail.PeerArch = lead.Arch
	pair := rmt.NewPair(0, rmt.CRTLatencies(), cfg.LVQSize, cfg.LPQSize)
	pair.PreferentialSpaceRedundancy = true
	lead.Pair = pair
	trail.Pair = pair
	core0.AddContext(lead)
	core1.AddContext(trail)
	pair.LeadCore, pair.LeadTID = 0, lead.TID
	pair.TrailCore, pair.TrailTID = 1, trail.TID
	core0.FinalizeQueues()
	core1.FinalizeQueues()
	m := &Machine{Cores: []*Core{core0, core1}, Pairs: []*rmt.Pair{pair}}
	return m, lead, trail, pair
}

// TestDifferentialCRT is the cross-core metamorphic check: a fault-free CRT
// pair must finish with exactly the architectural state of a pure
// functional run — registers and committed memory bit-identical on both
// copies — with every store compared and zero mismatches, despite the
// cross-processor forwarding latencies reordering everything in time.
func TestDifferentialCRT(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := &progGen{state: seed * 0x94D049BB133111EB}
			prog := g.gen(30)
			want := functionalRun(t, prog)

			cfg := DefaultConfig()
			m, lead, trail, pair := crtMachine(t, prog, 10_000_000, cfg)
			if _, err := m.Run(3_000_000); err != nil {
				t.Fatal(err)
			}
			// Let the trailing copy on core 1 drain its final stores.
			for i := 0; i < 50000 && !(trail.Arch.Halted && trail.drainedAndIdle()); i++ {
				m.Cores[0].Step()
				m.Cores[1].Step()
			}
			if !trail.Arch.Halted {
				t.Fatal("trailing copy never reached HALT")
			}
			compareSnapshots(t, "crt/lead", want, archSnap(lead.Arch, ctxMemory(lead)))
			got := archSnap(trail.Arch, ctxMemory(trail))
			for r := 0; r < 32; r++ {
				if want.intReg[r] != got.intReg[r] {
					t.Errorf("crt/trail: R%d = %#x, want %#x", r, got.intReg[r], want.intReg[r])
				}
			}
			if pair.Cmp.Mismatches.Value() != 0 {
				t.Errorf("%d mismatches in fault-free CRT run", pair.Cmp.Mismatches.Value())
			}
			if pair.Cmp.Comparisons.Value() == 0 {
				t.Error("no store comparisons happened — sphere boundary not exercised")
			}
			if len(pair.Detected) != 0 {
				t.Errorf("spurious detections: %d", len(pair.Detected))
			}
		})
	}
}
