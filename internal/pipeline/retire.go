package pipeline

import (
	"repro/internal/rmt"
	"repro/internal/stats"
)

// retireStage implements the QBOX completion unit: up to RetireWidth
// instructions retire per cycle across threads, in program order within
// each thread. Leading-thread retirement feeds the RMT structures: every
// instruction joins the line-prediction-queue aggregation, loads push their
// address and value into the load value queue, and stores enter the store
// comparator while remaining in the store queue (§4.1, §4.2).
func (co *Core) retireStage() {
	width := co.cfg.RetireWidth
	n := len(co.ctxs)
	if n == 0 {
		return
	}
	start := int(co.cycle) % n
	for i := 0; i < n && width > 0; i++ {
		ctx := co.ctxs[(start+i)%n]
		for width > 0 {
			if !co.retireOne(ctx) {
				break
			}
			width--
		}
	}
}

// hasUndrainedOlderStores reports whether any store older than seq is still
// in the store queue (memory barriers may not retire until all older stores
// have drained, §4.4.2).
func (c *Context) hasUndrainedOlderStores(seq uint64) bool {
	for i := 0; i < c.inFlightStores.Len(); i++ {
		s := c.inFlightStores.At(i)
		if !s.drained && s.out.Seq < seq {
			return true
		}
	}
	return false
}

// retireOne retires the oldest instruction of ctx if possible.
func (co *Core) retireOne(ctx *Context) bool {
	d := ctx.robHead()
	if d == nil || !d.issued || d.doneCycle > co.cycle {
		return false
	}
	pair := ctx.Pair

	if d.kind == kindBarrier && ctx.hasUndrainedOlderStores(d.out.Seq) {
		if ctx.Role == RoleLeading {
			// The oldest leading instruction is a memory barrier blocked on
			// stores that cannot drain until their trailing copies are
			// fetched: force the pending chunk out (§4.4.2's deadlock fix).
			pair.Agg.ForceFlush(co.cycle, pair.Lat.LPQForward)
		}
		return false
	}

	if ctx.Role == RoleLeading {
		// Unprotected (untagged) loads of a gated pair bypass the LVQ and
		// cannot stall on it; everything else keeps the SRT stall exactly.
		if d.isLoad() && pair.LVQ.Full() && (d.loadTag != 0 || !pair.Gated()) {
			pair.LVQ.FullStalls.Inc()
			return false
		}
		if !pair.Agg.CanAdd() {
			pair.LPQ.FullStalls.Inc()
			return false
		}
		if pair.RVQ != nil && d.out.Instr.HasDest() && !d.out.Instr.IsStore() && pair.RVQ.Full() {
			pair.RVQ.FullStalls.Inc()
			return false
		}
	}
	if ctx.Role == RoleTrailing && pair.RVQ != nil &&
		d.out.Instr.HasDest() && !d.out.Instr.IsStore() &&
		pair.RVQ.Front(co.cycle) == nil {
		// SRTR: the trailing copy may not commit a register result before
		// checking it against the leading copy's RVQ entry.
		pair.RVQ.Waits.Inc()
		return false
	}

	// Commit.
	ctx.rob.Pop()
	d.retired = true
	d.retireCycle = co.cycle
	co.emit(ctx, d, StageRetire, co.cycle)
	co.inFlight--
	co.Retired++
	ctx.committed++
	ctx.Stats.Committed.Inc()
	if !ctx.warmed && ctx.committed >= ctx.Warmup {
		// End of warmup: reset counters; caches, predictors and queue
		// state stay warm.
		ctx.warmed = true
		ctx.WarmCycle = co.cycle
		*ctx.Stats = stats.ThreadStats{}
	}
	if ctx.Budget > 0 && ctx.committed == ctx.Budget {
		ctx.FinishCycle = co.cycle
	}

	switch ctx.Role {
	case RoleLeading:
		pair.LeadCommitted = ctx.committed
		pair.Agg.Add(rmt.RetireInfo{
			PC:             d.out.PC,
			UpperHalf:      d.upperHalf,
			FU:             d.fu,
			ChunkStart:     d.fetchSlot == 0,
			LoadTag:        d.loadTag,
			StoreTag:       d.storeTag,
			ForceTerminate: d.forceTerm,
			RetireCycle:    co.cycle,
			ForwardLatency: pair.Lat.LPQForward,
		})
		if d.isLoad() && d.loadTag != 0 {
			pair.LVQ.Push(rmt.LVQEntry{
				Tag:     d.loadTag,
				Addr:    d.out.Addr,
				Size:    d.out.Size,
				Value:   d.out.Value,
				ReadyAt: co.cycle + pair.Lat.LVQForward,
			})
			ctx.lqUsed--
		} else if d.isLoad() && !d.out.Instr.IsUncached() {
			// Unprotected load of a gated pair: it occupied a load-queue
			// slot but bypasses the LVQ, so free the slot here.
			ctx.lqUsed--
		}
		if pair.RVQ != nil && d.out.Instr.HasDest() && !d.out.Instr.IsStore() {
			pair.RVQ.Push(d.out.PC, d.out.DestVal, co.cycle+pair.Lat.LVQForward)
		}
		if d.isStore() {
			if co.cfg.NoStoreComparison || d.storeTag == 0 {
				// Untagged stores of a gated pair skip the comparator and
				// drain like uncompared stores.
				ctx.retiredStores.Push(d)
			} else {
				pair.Cmp.AddLeading(rmt.StoreRecord{
					Tag:     d.storeTag,
					Addr:    d.out.Addr,
					Size:    d.out.Size,
					Value:   d.out.Value,
					ReadyAt: co.cycle,
				})
				pair.LeadStoresRetired++
				ctx.retiredStores.Push(d)
			}
		}
		if d.kind == kindHalt {
			// Nothing retires after HALT: push the final partial chunk so
			// the trailing thread sees the end of the stream.
			pair.Agg.ForceFlush(co.cycle, pair.Lat.LPQForward)
		}
	case RoleTrailing:
		if d.isLoad() {
			// LVQ entry was consumed at issue; no load queue entry.
		}
		if pair.RVQ != nil && d.out.Instr.HasDest() && !d.out.Instr.IsStore() {
			// SRTR register value check: the trailing result must match
			// the leading copy's committed result instruction-for-
			// instruction (the pre-commit wait above guarantees an entry).
			e := pair.RVQ.Front(co.cycle)
			if e.PC != d.out.PC || e.Val != d.out.DestVal {
				pair.RVQ.Mismatches.Inc()
				pair.Detected = append(pair.Detected, &rmt.Mismatch{
					LeadAddr: e.PC, TrailAddr: d.out.PC,
					LeadValue: e.Val, TrailValue: d.out.DestVal,
				})
			}
			pair.RVQ.Pop()
		}
		if d.isStore() {
			ctx.trailRetiredStores.Push(d)
		}
	case RoleSingle:
		if d.isLoad() && !d.out.Instr.IsUncached() {
			ctx.lqUsed--
		}
		if d.isStore() {
			ctx.retiredStores.Push(d)
		}
	}
	// Non-stores are done with the pipeline here; recycle them. Stores stay
	// live until their store-queue entry drains (freed by the drain loops).
	if !d.isStore() {
		ctx.freeInst(d)
	}
	return true
}

// drainStores advances the tail of the store pipeline each cycle: verifying
// leading stores against their trailing copies, draining verified/retired
// stores into the coalescing merge buffer, and releasing trailing
// store-queue entries once the comparator has consumed them.
func (co *Core) drainStores() {
	for _, ctx := range co.ctxs {
		switch ctx.Role {
		case RoleSingle:
			co.drainSingle(ctx)
		case RoleLeading:
			if co.cfg.NoStoreComparison {
				co.drainSingle(ctx)
			} else {
				co.drainLeading(ctx)
			}
		case RoleTrailing:
			co.drainTrailing(ctx)
		}
	}
}

// releaseStore finalises one store's exit from the store queue (the timing
// resource). Functional visibility is separate: a RoleSingle store commits
// to memory here; for redundant pairs the commit is deferred to the
// trailing copy's release (releasePairStore), because shared committed
// memory must never run ahead of the slower copy's functional execution
// point — the same invariant the sphere of replication provides in
// hardware.
func (co *Core) releaseStore(ctx *Context, d *dynInst) {
	d.drained = true
	ctx.sqUsed--
	ctx.Stats.StoreLifetime.Add(float64(co.cycle - d.sqEntered))
	uncached := d.out.Instr.IsUncached()
	if ctx.Role == RoleSingle {
		if !uncached {
			ctx.Arch.Mem.Release(d.out.Addr, d.out.Value, d.out.Size, d.out.Seq, true)
		}
		if co.DrainTap != nil {
			co.DrainTap(d.out.Addr, d.out.Value, d.out.Size)
		}
	}
	if ctx.Role == RoleTrailing && !uncached {
		co.releasePairStore(ctx, d)
	}
	// The device write is performed exactly once, as the store leaves the
	// sphere of replication (single copy, or the verified leading copy).
	if uncached && (ctx.Role == RoleSingle || ctx.Role == RoleLeading) && ctx.IOWrite != nil {
		ctx.IOWrite(d.out.Addr, d.out.Value)
	}
	co.storeSets.StoreRetired(co.iAddr(ctx, d.out.PC), d.out.Seq+1)
	// Stores drain in program order, so this is almost always the ring's
	// O(1) front removal (the old slice shift-delete was O(n) per release).
	ctx.inFlightStores.Remove(d)
}

// releasePairStore commits a redundant store to shared memory and clears
// both copies' overlay bytes. It runs when the trailing copy's store-queue
// entry is freed: by then both copies have functionally executed the store,
// so making it globally visible cannot perturb either oracle. (Both copies
// wrote the same bytes in a fault-free run; under an injected fault the
// mismatch has already been recorded and architectural state past the
// detection point is not meaningful.)
func (co *Core) releasePairStore(trail *Context, d *dynInst) {
	trail.Arch.Mem.Release(d.out.Addr, d.out.Value, d.out.Size, d.out.Seq, true)
	if trail.PeerArch != nil {
		trail.PeerArch.Mem.Release(d.out.Addr, d.out.Value, d.out.Size, d.out.Seq, false)
	}
}

// drainSingle drains retired stores of a non-compared thread into the merge
// buffer, oldest first, honouring the lockstep checker penalty when
// configured.
func (co *Core) drainSingle(ctx *Context) {
	for n := 0; n < co.cfg.StoreDrainPerCycle && !ctx.retiredStores.Empty(); n++ {
		d := ctx.retiredStores.Front()
		if d.retireCycle+co.cfg.CheckerStorePenalty > co.cycle {
			return
		}
		if !d.out.Instr.IsUncached() {
			addr := co.dAddr(ctx, d.out.Addr)
			if !co.mergeBuf.CanAccept(addr, co.cycle) {
				return
			}
			co.mergeBuf.Accept(addr, co.cycle)
		}
		co.releaseStore(ctx, d)
		ctx.retiredStores.Pop()
		ctx.freeInst(d)
	}
}

// drainLeading verifies and drains leading-thread stores in program order:
// a store leaves the sphere of replication only after the store comparator
// has matched it against its trailing copy (§4.2). Mismatches are recorded
// as detected faults.
func (co *Core) drainLeading(ctx *Context) {
	pair := ctx.Pair
	for n := 0; n < co.cfg.StoreDrainPerCycle && !ctx.retiredStores.Empty(); n++ {
		d := ctx.retiredStores.Front()
		if !d.verified {
			if d.storeTag == 0 {
				// Untagged store of a gated pair: nothing to compare
				// against; it leaves the sphere unverified by design.
				d.verified = true
				d.verifiedAt = d.retireCycle
			} else {
				when, mismatch, done := pair.Cmp.Verify(d.storeTag, co.cycle)
				if !done {
					return // trailing copy not yet arrived
				}
				d.verified = true
				pair.StoresVerified++
				co.emitCompare(ctx, d, co.cycle, mismatch != nil)
				if mismatch != nil {
					pair.Detected = append(pair.Detected, mismatch)
					d.verifiedAt = co.cycle
				} else {
					d.verifiedAt = when
				}
			}
		}
		if d.verifiedAt > co.cycle {
			return
		}
		if !d.out.Instr.IsUncached() {
			addr := co.dAddr(ctx, d.out.Addr)
			if !co.mergeBuf.CanAccept(addr, co.cycle) {
				return
			}
			co.mergeBuf.Accept(addr, co.cycle)
		}
		co.releaseStore(ctx, d)
		ctx.retiredStores.Pop()
		ctx.freeInst(d)
	}
}

// drainTrailing frees trailing store-queue entries whose comparator records
// have been consumed by verification. Trailing stores never leave the
// sphere themselves; their overlay bytes are committed (identically to the
// leading copy's) purely to keep the shared functional memory image
// consistent for later oracle reads.
func (co *Core) drainTrailing(ctx *Context) {
	pair := ctx.Pair
	for !ctx.trailRetiredStores.Empty() {
		d := ctx.trailRetiredStores.Front()
		// Tag 0 is "not compared" (gated pair): HasTrailing(0) would match
		// a FREE comparator slot and block the drain forever.
		if !co.cfg.NoStoreComparison && d.storeTag != 0 && pair.Cmp.HasTrailing(d.storeTag) {
			return // not yet compared
		}
		co.releaseStore(ctx, d)
		ctx.trailRetiredStores.Pop()
		ctx.freeInst(d)
	}
}
