package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/rmt"
	"repro/internal/stats"
	"repro/internal/vm"
)

// NewContext creates a hardware thread context running arch in the given
// role. budget is the commit count after which the context's finish time is
// recorded (0 = no budget).
func NewContext(role Role, progID int, arch *vm.Thread, budget uint64) *Context {
	return &Context{
		Role:   role,
		ProgID: progID,
		Arch:   arch,
		Budget: budget,
		Stats:  &stats.ThreadStats{},
	}
}

// Machine drives one or more cores in lockstep cycles and collects results.
type Machine struct {
	Cores []*Core
	Pairs []*rmt.Pair

	// StopOnDetection ends the run at the first detected fault (used by
	// the fault-injection experiments).
	StopOnDetection bool //rmtsnap:skip — run policy, not machine state

	// WatchdogCycles overrides the per-core config watchdog when non-zero.
	WatchdogCycles uint64 //rmtsnap:skip — run policy, not machine state

	// OnCycle, when non-nil, runs at the top of every simulated cycle
	// (before the cores step). A non-nil return aborts the run with that
	// error. The snapshot engine hangs checkpoint capture off this hook.
	OnCycle func(cycle uint64) error //rmtsnap:skip — observer hook, outside simulated state

	Cycles uint64

	// Watchdog progress state. Fields rather than Run locals so a restored
	// machine resumes the deadlock countdown exactly where the snapshotted
	// one left it.
	wdLastProgress uint64
	wdLastRetired  uint64

	// ctxCache memoises allContexts: done() runs every cycle, and
	// rebuilding the slice per call was a per-cycle allocation.
	ctxCache []*Context //rmtsnap:skip — memo of wiring, rebuilt on demand
}

// DeadlockError reports a watchdog-detected lack of forward progress, with
// a state dump to aid debugging.
type DeadlockError struct {
	Cycle uint64
	Dump  string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("pipeline: no retirement progress by cycle %d (deadlock?)\n%s", e.Cycle, e.Dump)
}

// allContexts returns every context across cores (cached after first use;
// cores and contexts are fixed before the machine starts stepping).
func (m *Machine) allContexts() []*Context {
	if m.ctxCache == nil {
		for _, co := range m.Cores {
			m.ctxCache = append(m.ctxCache, co.ctxs...)
		}
	}
	return m.ctxCache
}

// done reports whether every budgeted context has finished: reached its
// commit budget, or halted (HALT retired) with nothing left in flight.
func (m *Machine) done() bool {
	any := false
	for _, c := range m.allContexts() {
		if c.Budget > 0 {
			any = true
			finished := c.FinishCycle > 0 || (c.Arch.Halted && c.drainedAndIdle())
			if !finished {
				return false
			}
		}
	}
	return any
}

// detected reports whether any pair has recorded a fault detection.
func (m *Machine) detected() bool {
	for _, p := range m.Pairs {
		if len(p.Detected) > 0 {
			return true
		}
	}
	return false
}

// Run simulates until every budgeted context commits its budget, maxCycles
// elapse, or (with StopOnDetection) a fault is detected. It returns the
// accumulated statistics. Run continues from the machine's current cycle
// count, so a freshly built machine starts at cycle 0 and a restored one
// resumes mid-flight.
func (m *Machine) Run(maxCycles uint64) (*stats.RunStats, error) {
	watchdog := m.WatchdogCycles
	if watchdog == 0 && len(m.Cores) > 0 {
		watchdog = m.Cores[0].cfg.WatchdogCycles
	}
	for ; m.Cycles < maxCycles; m.Cycles++ {
		if m.OnCycle != nil {
			if err := m.OnCycle(m.Cycles); err != nil {
				return m.stats(), err
			}
		}
		for _, co := range m.Cores {
			co.Step()
		}
		if m.done() {
			m.Cycles++
			break
		}
		if m.StopOnDetection && m.detected() {
			m.Cycles++
			break
		}
		var retired uint64
		for _, co := range m.Cores {
			retired += co.Retired
		}
		if retired > m.wdLastRetired {
			m.wdLastRetired = retired
			m.wdLastProgress = m.Cycles
		} else if watchdog > 0 && m.Cycles-m.wdLastProgress > watchdog {
			return m.stats(), &DeadlockError{Cycle: m.Cycles, Dump: m.dump()}
		}
	}
	return m.stats(), nil
}

func (m *Machine) dump() string {
	var b strings.Builder
	for _, co := range m.Cores {
		fmt.Fprintln(&b, co.String())
		for _, c := range co.ctxs {
			if d := c.robHead(); d != nil {
				fmt.Fprintf(&b, "  t%d head: %v seq=%d issued=%v done=%d sq=%d/%d retSt=%d\n",
					c.TID, d.out.Instr, d.out.Seq, d.issued, d.doneCycle,
					c.sqUsed, c.sqCap, c.retiredStores.Len())
			}
		}
	}
	for _, p := range m.Pairs {
		fmt.Fprintf(&b, "pair %d: lpq=%d lvq=%d cmpLead=%d aggPend=%d\n",
			p.LogicalID, p.LPQ.Len(), p.LVQ.Len(), p.Cmp.PendingLeading(), p.Agg.Pending())
	}
	return b.String()
}

// stats assembles the run's results. Per-thread IPC uses the thread's own
// finish time when it had a budget (so tail effects of other threads don't
// distort it).
func (m *Machine) stats() *stats.RunStats {
	ctxs := m.allContexts()
	rs := &stats.RunStats{
		Cycles:     m.Cycles,
		Extra:      make(map[string]float64, 8),
		Threads:    make([]*stats.ThreadStats, 0, len(ctxs)),
		LogicalIPC: make([]float64, 0, len(m.Pairs)+len(ctxs)),
	}
	for _, c := range ctxs {
		rs.Threads = append(rs.Threads, c.Stats)
	}
	// Logical IPC: one entry per pair (leading copy), plus one per single
	// context, in pair/context order.
	for _, p := range m.Pairs {
		ctx := m.findContext(p.LeadCore, p.LeadTID)
		rs.LogicalIPC = append(rs.LogicalIPC, m.threadIPC(ctx))
	}
	if len(m.Pairs) == 0 {
		for _, c := range m.allContexts() {
			if c.Role == RoleSingle {
				rs.LogicalIPC = append(rs.LogicalIPC, m.threadIPC(c))
			}
		}
	}
	return rs
}

func (m *Machine) threadIPC(c *Context) float64 {
	if c == nil {
		return 0
	}
	cycles := m.Cycles
	committed := c.committed
	if c.Budget > 0 && c.FinishCycle > 0 {
		cycles = c.FinishCycle
		committed = c.Budget
	}
	// Measure from the end of warmup.
	if committed <= c.Warmup || cycles <= c.WarmCycle {
		return 0
	}
	committed -= c.Warmup
	cycles -= c.WarmCycle
	return float64(committed) / float64(cycles)
}

func (m *Machine) findContext(core, tid int) *Context {
	if core < 0 || core >= len(m.Cores) {
		return nil
	}
	for _, c := range m.Cores[core].ctxs {
		if c.TID == tid {
			return c
		}
	}
	return nil
}

// Detections returns all recorded fault detections across pairs.
func (m *Machine) Detections() []*rmt.Mismatch {
	var ds []*rmt.Mismatch
	for _, p := range m.Pairs {
		ds = append(ds, p.Detected...)
	}
	return ds
}
