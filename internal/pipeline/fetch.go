package pipeline

import (
	"repro/internal/isa"
	"repro/internal/rmt"
	"repro/internal/vm"
)

// fetchStage implements the IBOX: the thread chooser selects one thread per
// cycle and fetches up to two 8-instruction chunks for it. Trailing threads
// fetch from their pair's line prediction queue; other threads fetch down
// the oracle-correct path under the line predictor / branch predictor
// timing rules.
func (co *Core) fetchStage() {
	ctx := co.chooseFetchThread()
	if ctx == nil {
		return
	}
	if ctx.Role == RoleTrailing {
		co.fetchTrailing(ctx)
	} else {
		co.fetchLeading(ctx)
	}
}

// fetchEligible reports whether a context can fetch at all this cycle.
func (co *Core) fetchEligible(ctx *Context) bool {
	if ctx.fetchHalted || ctx.fetchBlockedUntil > co.cycle {
		return false
	}
	if co.cfg.RMBCap-ctx.rmb.Len() < co.cfg.ChunkSize {
		return false
	}
	if ctx.Role == RoleTrailing {
		if _, ok := ctx.Pair.LPQ.PeekActive(co.cycle); !ok {
			return false
		}
		if co.cfg.SlackFetch > 0 {
			// Original-SRT slack fetch: hold trailing fetch until the
			// leading copy is sufficiently far ahead (ablation mode).
			lead := ctx.Pair.LeadCommitted
			if lead < ctx.Arch.Seq+co.cfg.SlackFetch {
				return false
			}
		}
	}
	return true
}

// chooseFetchThread picks the thread to fetch for: trailing threads with
// line predictions available take priority (the policy the paper found
// best, §4.4), then an ICOUNT-approximation over the rest (§3.1: the thread
// with the fewest instructions in its rate-matching buffer).
func (co *Core) chooseFetchThread() *Context {
	n := len(co.ctxs)
	// Trailing priority, round-robin among eligible trailing threads.
	for i := 0; i < n; i++ {
		ctx := co.ctxs[(co.fetchRR+i)%n]
		if ctx.Role == RoleTrailing && co.fetchEligible(ctx) {
			co.fetchRR = (co.fetchRR + i + 1) % n
			return ctx
		}
	}
	// ICOUNT among the others: fewest RMB+IQ instructions.
	var best *Context
	bestCount := 0
	for i := 0; i < n; i++ {
		ctx := co.ctxs[(co.fetchRR+i)%n]
		if ctx.Role == RoleTrailing || !co.fetchEligible(ctx) {
			continue
		}
		count := ctx.rmb.Len() + ctx.iqN()
		if best == nil || count < bestCount {
			best, bestCount = ctx, count
		}
	}
	if best != nil {
		co.fetchRR = (co.fetchRR + 1) % n
	}
	return best
}

func (co *Core) newDynInst(ctx *Context, out *vm.Outcome) *dynInst {
	d := ctx.allocInst()
	d.out = *out
	d.tid = ctx.TID
	d.kind = ctx.kindAt(out.PC, out.Instr.Op)
	d.fetchCycle = co.cycle
	d.rmbReadyAt = co.cycle + IBOXLatency
	return d
}

// maybeInterrupt delivers a pending timer interrupt at a fetch-chunk
// boundary: the oracle is redirected to the handler, and (for a leading
// copy) the delivery point — the dynamic instruction count — is recorded so
// the trailing copy takes the interrupt at exactly the same point.
func (co *Core) maybeInterrupt(ctx *Context) {
	if co.cfg.InterruptEvery == 0 || ctx.Arch.Prog.InterruptHandler == 0 {
		return
	}
	if ctx.nextInterruptAt == 0 {
		ctx.nextInterruptAt = co.cfg.InterruptEvery
	}
	if co.cycle < ctx.nextInterruptAt {
		return
	}
	// Do not interrupt inside the handler (R30 live): defer until the
	// running handler returns, detected by the resume PC register being
	// consumed. A simple and sufficient guard: require the previous
	// interrupt's handler to have finished by spacing (the schedule period
	// is far longer than any handler).
	ctx.nextInterruptAt = co.cycle + co.cfg.InterruptEvery
	ctx.Interrupts++
	if ctx.Role == RoleLeading {
		ctx.Pair.InterruptSchedule = append(ctx.Pair.InterruptSchedule, ctx.Arch.Seq)
	}
	ctx.Arch.Interrupt(ctx.Arch.Prog.InterruptHandler)
}

// maybeTrailingInterrupt replays the leading copy's interrupt delivery
// points on the trailing copy, before the instruction with the recorded
// dynamic count is executed.
func (co *Core) maybeTrailingInterrupt(ctx *Context) {
	pair := ctx.Pair
	if pair == nil || pair.TrailInterruptIdx >= len(pair.InterruptSchedule) {
		return
	}
	if ctx.Arch.Seq == pair.InterruptSchedule[pair.TrailInterruptIdx] {
		pair.TrailInterruptIdx++
		ctx.Interrupts++
		ctx.Arch.Interrupt(ctx.Arch.Prog.InterruptHandler)
	}
}

// fetchLeading fetches for a single or leading thread down the correct
// path, modelling line-predictor and branch-predictor behaviour and
// instruction cache misses.
func (co *Core) fetchLeading(ctx *Context) {
	for chunk := 0; chunk < co.cfg.FetchChunks; chunk++ {
		if ctx.fetchHalted || ctx.fetchBlockedUntil > co.cycle {
			return
		}
		if co.cfg.RMBCap-ctx.rmb.Len() < co.cfg.ChunkSize {
			return
		}
		co.maybeInterrupt(ctx)
		chunkStart := ctx.Arch.PC
		// Instruction cache probe for the chunk's block. A way-mispredict
		// bubble (hit with done = now+1) delays the chunk's delivery but
		// does not re-initiate the fetch; a real miss stalls the thread
		// until the fill.
		avail, hit := co.hier.L1I.Lookup(co.iAddr(ctx, chunkStart), co.cycle)
		if !hit || avail > co.cycle+IBOXLatency {
			if !hit {
				ctx.Stats.ICacheMisses.Inc()
			}
			ctx.fetchBlockedUntil = avail
			return
		}
		co.buildChunk(ctx, chunkStart, avail-co.cycle)
		// Line predictor accounting: it predicts the next chunk start
		// from this one. A wrong line prediction that the control-flow
		// predictors catch costs a retrain bubble (§3.1); a wrong-path
		// branch blocks fetch until resolution (handled in buildChunk).
		ctx.Stats.LineFetches.Inc()
		key := co.iAddr(ctx, chunkStart)
		actualNext := co.iAddr(ctx, ctx.Arch.PC)
		pred, ok := co.linePred.Predict(key)
		if !ok || pred != actualNext {
			ctx.Stats.LineMispredicts.Inc()
			co.linePred.Train(key, actualNext)
			if ctx.fetchBlockedUntil <= co.cycle {
				ctx.fetchBlockedUntil = co.cycle + co.cfg.LineRetrainBubble
			}
			return // reinitiated fetch: no second chunk this cycle
		}
	}
}

// buildChunk steps the oracle through one fetch chunk, creating dynInsts and
// handling branch prediction. It stops at taken branches, block boundaries,
// the chunk limit, HALT, and branch mispredictions.
func (co *Core) buildChunk(ctx *Context, chunkStart uint64, bubble uint64) {
	blockWords := uint64(co.cfg.Hier.BlockBytes / 8)
	for slot := 0; slot < co.cfg.ChunkSize; slot++ {
		pc := ctx.Arch.PC
		if slot > 0 && pc/blockWords != chunkStart/blockWords {
			return // cannot fetch across a cache line in one chunk
		}
		out := &ctx.stepOut
		ctx.Arch.StepInto(out)
		d := co.newDynInst(ctx, out)
		d.rmbReadyAt += bubble
		d.fetchSlot = slot
		ctx.rmb.Push(d)
		co.emit(ctx, d, StageFetch, co.cycle)

		if out.Halted {
			ctx.fetchHalted = true
			return
		}
		if out.Instr.IsBranch() {
			co.predictBranch(ctx, d)
			if d.mispredicted {
				// Fetch stalls until the branch resolves at execute;
				// issueStage unblocks it.
				ctx.pendingBranch = d
				ctx.fetchBlockedUntil = neverUnblock
				return
			}
			if out.Taken {
				return // chunk ends at a (correctly) predicted-taken branch
			}
		}
	}
}

// predictBranch runs the control-flow predictors against the oracle outcome
// and marks the dynInst mispredicted when they disagree. Predictors train
// immediately (in fetch order).
func (co *Core) predictBranch(ctx *Context, d *dynInst) {
	out := &d.out
	ins := out.Instr
	ctx.Stats.Branches.Inc()
	pcKey := co.iAddr(ctx, out.PC)

	switch {
	case ins.IsCondBranch():
		predTaken := co.branchPred.Predict(pcKey, ctx.TID)
		co.branchPred.Train(pcKey, ctx.TID, out.Taken)
		if predTaken != out.Taken {
			d.mispredicted = true
		}
	case ins.Op == isa.JSR:
		// Direct call: target known at fetch; push the return address.
		ctx.ras.Push(out.PC + 1)
	case ins.Op == isa.JMP:
		// Returns predict through the RAS; other indirect jumps through
		// the jump target predictor.
		if target, ok := ctx.ras.Pop(); ok && target == out.NextPC {
			break
		} else if ok {
			d.mispredicted = true
			break
		}
		target, ok := co.jumpPred.Predict(pcKey)
		co.jumpPred.Train(pcKey, out.NextPC)
		if !ok || target != out.NextPC {
			d.mispredicted = true
		}
	case ins.Op == isa.BR:
		// Direct unconditional: always correctly predicted (the line
		// predictor cost is modelled separately).
	}
	if d.mispredicted {
		ctx.Stats.BranchMispredicts.Inc()
	}
}

// fetchTrailing fetches for a trailing thread from its pair's line
// prediction queue: perfect chunk predictions from the leading thread's
// retirement stream (§4.4). Instruction cache misses roll the active head
// back to the recovery head (Figure 4).
func (co *Core) fetchTrailing(ctx *Context) {
	pair := ctx.Pair
	for chunk := 0; chunk < co.cfg.FetchChunks; chunk++ {
		if ctx.fetchHalted || co.cfg.RMBCap-ctx.rmb.Len() < co.cfg.ChunkSize {
			return
		}
		c, ok := pair.LPQ.PeekActive(co.cycle)
		if !ok {
			return
		}
		avail, hit := co.hier.L1I.Lookup(co.iAddr(ctx, c.StartPC), co.cycle)
		if !hit || avail > co.cycle+IBOXLatency {
			// The address driver accepted the prediction but the fetch
			// must reissue after the fill: roll back to the recovery head.
			if !hit {
				ctx.Stats.ICacheMisses.Inc()
			}
			pair.LPQ.Ack()
			pair.LPQ.Rollback()
			ctx.fetchBlockedUntil = avail
			return
		}
		bubble := avail - co.cycle
		pair.LPQ.Ack()
		co.maybeTrailingInterrupt(ctx)
		if ctx.Arch.PC != c.StartPC {
			// The two copies' control flow has diverged — only possible
			// under an injected fault. Record the divergence; the trailing
			// copy continues down its own architectural path and the store
			// comparator will flag the first differing store.
			pair.Detected = append(pair.Detected, &rmt.Mismatch{
				LeadAddr:  c.StartPC,
				TrailAddr: ctx.Arch.PC,
			})
			if co.Trace != nil {
				co.Trace(TraceEvent{
					Cycle:    co.cycle,
					TID:      ctx.TID,
					Seq:      ctx.Arch.Seq,
					PC:       ctx.Arch.PC,
					Text:     "control-flow divergence",
					Stage:    StageCompare,
					Mismatch: true,
				})
			}
		}
		for slot := 0; slot < c.Count; slot++ {
			out := &ctx.stepOut
			ctx.Arch.StepInto(out)
			d := co.newDynInst(ctx, out)
			d.rmbReadyAt += bubble
			d.fetchSlot = slot
			co.emit(ctx, d, StageFetch, co.cycle)
			d.hasLeadInfo = true
			d.leadUpper = c.UpperHalf[slot]
			d.leadFU = c.FUs[slot]
			ctx.rmb.Push(d)
			if out.Halted {
				ctx.fetchHalted = true
				break
			}
		}
		pair.LPQ.Complete()
	}
}
