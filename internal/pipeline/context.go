package pipeline

import (
	"math"

	"repro/internal/predict"
	"repro/internal/rmt"
	"repro/internal/stats"
	"repro/internal/vm"
)

const neverUnblock = math.MaxUint64

// Context is one hardware thread context on a core.
type Context struct {
	TID  int // context number on this core
	Role Role
	// Pair is the redundant pair this context belongs to (nil for
	// RoleSingle).
	Pair *rmt.Pair
	// ProgID tags this logical program's address space in the shared
	// memory hierarchy.
	ProgID int

	// Arch is the functional oracle.
	Arch *vm.Thread
	// PeerArch is the other copy's functional state (redundant pairs
	// only): the trailing copy releases both overlays when its stores
	// drain, keeping the shared committed memory consistent with the
	// slower copy's execution point.
	PeerArch *vm.Thread

	// Stats accumulates per-thread counters.
	Stats *stats.ThreadStats

	// IOWrite performs an uncached (STIO) device write when the store
	// leaves the sphere of replication (exactly once, after comparison in
	// redundant modes). nil discards the write.
	IOWrite func(addr, val uint64)

	// Budget stops fetch after this many committed instructions
	// (0 = unlimited).
	Budget uint64
	// Warmup is the committed-instruction count after which statistics are
	// reset (caches and predictors stay warm), mirroring the paper's
	// warm-then-measure methodology (§6.2). Must be < Budget.
	Warmup uint64

	// --- fetch state ---
	fetchBlockedUntil uint64
	// pendingBranch, when non-nil, is the unresolved mispredicted branch
	// fetch is waiting on; fetch resumes the cycle after it completes.
	pendingBranch *dynInst
	fetchHalted   bool // HALT fetched or budget reached
	ras           *predict.RAS
	// lastChunkStart keys the line predictor (it predicts the next chunk
	// from the current one).
	lastChunkStart uint64
	haveLastChunk  bool

	// rmb is the rate-matching buffer: fetched, decoded instructions in
	// program order awaiting rename.
	rmb []*dynInst

	// rob is the in-flight window (renamed, unretired), program order.
	rob []*dynInst

	// Rename tables: last in-flight writer per architectural register.
	lastInt [32]*dynInst
	lastFP  [32]*dynInst

	// inFlightStores tracks renamed, undrained stores for memory
	// disambiguation and the partial-forward rule.
	inFlightStores []*dynInst

	// retiredStores holds retired-but-undrained stores in program order
	// (leading: awaiting verification; single: awaiting merge-buffer
	// drain).
	retiredStores []*dynInst

	// trailRetiredStores holds retired trailing stores whose comparator
	// records have not yet been consumed (their SQ entries stay busy).
	trailRetiredStores []*dynInst

	// Queue occupancies and caps (static division of Table 1's queues).
	lqUsed, sqUsed int
	lqCap, sqCap   int

	// iqOccupancy caches this thread's instruction-queue slot usage.
	iqOccupancy int

	// nextInterruptAt is the next timer-interrupt cycle (0 = disabled or
	// trailing role, which follows the pair's replicated schedule).
	nextInterruptAt uint64
	// Interrupts counts interrupts delivered to this context.
	Interrupts uint64

	committed uint64
	// FinishCycle records when the commit budget was reached (0 = not
	// yet). Threads keep running after their budget so resource contention
	// stays realistic until every thread finishes.
	FinishCycle uint64
	// WarmCycle records when the warmup count was reached.
	WarmCycle uint64
	warmed    bool
}

// Committed returns the number of retired instructions.
func (c *Context) Committed() uint64 { return c.committed }

// BudgetReached reports whether the commit budget has been hit.
func (c *Context) BudgetReached() bool {
	return c.Budget > 0 && c.committed >= c.Budget
}

// robHead returns the oldest in-flight instruction, nil if none.
func (c *Context) robHead() *dynInst {
	if len(c.rob) == 0 {
		return nil
	}
	return c.rob[0]
}

// usesLoadQueue reports whether the context's loads occupy load-queue
// entries. Trailing threads read the LVQ instead, freeing their share
// (§4.1).
func (c *Context) usesLoadQueue() bool { return c.Role != RoleTrailing }

// Occupancy reports the context's live queue occupancies (window, rate
// matching buffer, instruction queue slots, store queue, load queue) for
// the observability layer's gauges and per-cycle histograms.
func (c *Context) Occupancy() (rob, rmb, iq, sq, lq int) {
	return len(c.rob), len(c.rmb), c.iqOccupancy, c.sqUsed, c.lqUsed
}

// QueueCaps reports the context's static store/load queue shares.
func (c *Context) QueueCaps() (sq, lq int) { return c.sqCap, c.lqCap }

// drainedAndIdle reports whether the context has no in-flight work at all.
func (c *Context) drainedAndIdle() bool {
	return len(c.rob) == 0 && len(c.rmb) == 0 &&
		len(c.retiredStores) == 0 && len(c.trailRetiredStores) == 0
}
