package pipeline

import (
	"math"

	"repro/internal/predict"
	"repro/internal/ringq"
	"repro/internal/rmt"
	"repro/internal/stats"
	"repro/internal/vm"
)

const neverUnblock = math.MaxUint64

// Context is one hardware thread context on a core.
type Context struct {
	TID  int  //rmtsnap:skip — identity fixed at AddContext
	Role Role //rmtsnap:skip — identity fixed at AddContext
	// Pair is the redundant pair this context belongs to (nil for
	// RoleSingle).
	Pair *rmt.Pair //rmtsnap:skip — pair wiring; the pair snapshots itself
	// ProgID tags this logical program's address space in the shared
	// memory hierarchy.
	ProgID int //rmtsnap:skip — identity fixed at AddContext

	// Arch is the functional oracle.
	Arch *vm.Thread

	// stepOut is the fetch stage's reusable outcome buffer: StepInto's
	// target must not be a stack variable whose address flows into the
	// predecoded handler closures, or escape analysis heap-allocates it
	// every step.
	stepOut vm.Outcome //rmtsnap:skip — scratch buffer, dead between steps
	// PeerArch is the other copy's functional state (redundant pairs
	// only): the trailing copy releases both overlays when its stores
	// drain, keeping the shared committed memory consistent with the
	// slower copy's execution point.
	PeerArch *vm.Thread //rmtsnap:skip — wiring to the peer, which snapshots its own thread

	// Stats accumulates per-thread counters.
	Stats *stats.ThreadStats

	// IOWrite performs an uncached (STIO) device write when the store
	// leaves the sphere of replication (exactly once, after comparison in
	// redundant modes). nil discards the write.
	IOWrite func(addr, val uint64) //rmtsnap:skip — device hook, outside simulated state

	// Budget stops fetch after this many committed instructions
	// (0 = unlimited).
	Budget uint64
	// Warmup is the committed-instruction count after which statistics are
	// reset (caches and predictors stay warm), mirroring the paper's
	// warm-then-measure methodology (§6.2). Must be < Budget.
	Warmup uint64

	// --- fetch state ---
	fetchBlockedUntil uint64
	// pendingBranch, when non-nil, is the unresolved mispredicted branch
	// fetch is waiting on; fetch resumes the cycle after it completes.
	pendingBranch *dynInst
	fetchHalted   bool // HALT fetched or budget reached
	ras           *predict.RAS
	// lastChunkStart keys the line predictor (it predicts the next chunk
	// from the current one).
	lastChunkStart uint64
	haveLastChunk  bool

	// decode is the static decode table, indexed by PC (built once per
	// context at AddContext from the program's code image).
	decode []decodedInst //rmtsnap:skip — static table derived from the code image

	// freeInsts is the context's dynInst recycling pool: instructions are
	// returned here after retirement (stores: after drain) and reused by
	// fetch, so the steady-state per-cycle path allocates nothing.
	freeInsts []*dynInst
	// poolDisabled turns recycling off (testing knob: the pooled and
	// unpooled machines must be cycle-identical).
	poolDisabled bool //rmtsnap:skip — testing knob, not simulated state

	// rmb is the rate-matching buffer: fetched, decoded instructions in
	// program order awaiting rename.
	rmb *ringq.Ring[*dynInst]

	// rob is the in-flight window (renamed, unretired), program order.
	rob *ringq.Ring[*dynInst]

	// Rename tables: last in-flight writer per architectural register.
	// Generation-checked references: a recycled producer reads as nil,
	// which renameSources treats the same as "no in-flight writer".
	lastInt [32]instRef
	lastFP  [32]instRef

	// inFlightStores tracks renamed, undrained stores for memory
	// disambiguation and the partial-forward rule.
	inFlightStores *ringq.Ring[*dynInst]

	// retiredStores holds retired-but-undrained stores in program order
	// (leading: awaiting verification; single: awaiting merge-buffer
	// drain).
	retiredStores *ringq.Ring[*dynInst]

	// trailRetiredStores holds retired trailing stores whose comparator
	// records have not yet been consumed (their SQ entries stay busy).
	trailRetiredStores *ringq.Ring[*dynInst]

	// Queue occupancies and caps (static division of Table 1's queues).
	lqUsed, sqUsed int
	lqCap, sqCap   int //rmtsnap:skip — static queue division fixed at AddContext

	// iqOccupancy caches this thread's instruction-queue slot usage.
	iqOccupancy int

	// iq lists this thread's instruction-queue residents (dispatched, not
	// yet issued) in age order. It mirrors the inIQ flag exactly — pushed
	// at dispatch, removed at issue — so the scheduler scans only live
	// candidates instead of walking the whole reorder buffer every cycle.
	// Pure scan bookkeeping: the candidates and their visit order are
	// identical to the full ROB walk's.
	iq *ringq.Ring[*dynInst]

	// nextInterruptAt is the next timer-interrupt cycle (0 = disabled or
	// trailing role, which follows the pair's replicated schedule).
	nextInterruptAt uint64
	// Interrupts counts interrupts delivered to this context.
	Interrupts uint64

	committed uint64
	// FinishCycle records when the commit budget was reached (0 = not
	// yet). Threads keep running after their budget so resource contention
	// stays realistic until every thread finishes.
	FinishCycle uint64
	// WarmCycle records when the warmup count was reached.
	WarmCycle uint64
	warmed    bool
}

// allocInst draws a dynamic instruction from the recycling pool, falling
// back to the heap while the pool warms up (or when recycling is disabled).
func (c *Context) allocInst() *dynInst {
	if n := len(c.freeInsts); n > 0 {
		d := c.freeInsts[n-1]
		c.freeInsts[n-1] = nil
		c.freeInsts = c.freeInsts[:n-1]
		return d
	}
	return new(dynInst)
}

// freeInst returns a dynamic instruction to the pool, bumping its generation
// so outstanding instRefs to it resolve to nil ("retired/drained") instead
// of aliasing its next incarnation. Instructions are only freed once fully
// done — retired for non-stores, retired and drained for stores — which is
// exactly the state every reader already treats as "architecturally ready".
func (c *Context) freeInst(d *dynInst) {
	if c.poolDisabled {
		return
	}
	*d = dynInst{gen: d.gen + 1}
	if len(c.freeInsts) < cap(c.freeInsts) {
		c.freeInsts = append(c.freeInsts, d)
	}
}

// Committed returns the number of retired instructions.
func (c *Context) Committed() uint64 { return c.committed }

// BudgetReached reports whether the commit budget has been hit.
func (c *Context) BudgetReached() bool {
	return c.Budget > 0 && c.committed >= c.Budget
}

// robHead returns the oldest in-flight instruction, nil if none.
func (c *Context) robHead() *dynInst {
	if c.rob.Empty() {
		return nil
	}
	return c.rob.Front()
}

// usesLoadQueue reports whether the context's loads occupy load-queue
// entries. Trailing threads read the LVQ instead, freeing their share
// (§4.1).
func (c *Context) usesLoadQueue() bool { return c.Role != RoleTrailing }

// Occupancy reports the context's live queue occupancies (window, rate
// matching buffer, instruction queue slots, store queue, load queue) for
// the observability layer's gauges and per-cycle histograms.
func (c *Context) Occupancy() (rob, rmb, iq, sq, lq int) {
	return c.rob.Len(), c.rmb.Len(), c.iqOccupancy, c.sqUsed, c.lqUsed
}

// QueueCaps reports the context's static store/load queue shares.
func (c *Context) QueueCaps() (sq, lq int) { return c.sqCap, c.lqCap }

// drainedAndIdle reports whether the context has no in-flight work at all.
func (c *Context) drainedAndIdle() bool {
	return c.rob.Empty() && c.rmb.Empty() &&
		c.retiredStores.Empty() && c.trailRetiredStores.Empty()
}
