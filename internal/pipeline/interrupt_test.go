package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// interruptProgram: a compute loop plus an interrupt handler that counts
// deliveries in memory and stores a progress snapshot (so handler stores
// flow through RMT output comparison too).
func interruptProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("intr")
	b.Ldi(isa.R1, iters)
	b.Ldi(isa.R21, 0x6000) // interrupt counter cell
	b.Label("top")
	b.Addi(isa.R2, isa.R2, 3)
	b.Mul(isa.R3, isa.R2, isa.R2)
	b.Andi(isa.R3, isa.R3, 0xffff)
	b.Stq(isa.R3, isa.R21, 8)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()

	b.InterruptHandlerAt("handler")
	b.Label("handler")
	b.Ldq(isa.R28, isa.R21, 0)
	b.Addi(isa.R28, isa.R28, 1)
	b.Stq(isa.R28, isa.R21, 0)
	b.Jmp(isa.R31, isa.R30) // return from interrupt
	return b.MustFinish()
}

// TestInterruptsDeliveredSingle: the timer interrupt fires periodically, the
// handler runs, and the count lands in memory.
func TestInterruptsDeliveredSingle(t *testing.T) {
	prog := interruptProgram(4000)
	cfg := DefaultConfig()
	cfg.InterruptEvery = 1000
	core := NewCore(0, cfg, nil)
	memImg, ctx := wire(core, prog, RoleSingle, 1_000_000)
	core.FinalizeQueues()
	m := &Machine{Cores: []*Core{core}}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if ctx.Interrupts == 0 {
		t.Fatal("no interrupts delivered")
	}
	if got := memImg.Read64(0x6000); got != ctx.Interrupts {
		t.Errorf("handler counted %d, machine delivered %d", got, ctx.Interrupts)
	}
}

// TestInterruptReplicationSRT: the leading copy takes asynchronous timer
// interrupts; the trailing copy must take them at exactly the same dynamic
// instruction points, so the two streams stay identical and every handler
// store verifies (SRT interrupt input replication).
func TestInterruptReplicationSRT(t *testing.T) {
	prog := interruptProgram(4000)
	cfg := DefaultConfig()
	cfg.InterruptEvery = 1500
	m, lead, trail, pair := srtMachine(t, prog, 1_000_000, cfg)
	if _, err := m.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000 && !(trail.Arch.Halted && trail.drainedAndIdle()); i++ {
		m.Cores[0].Step()
	}
	if lead.Interrupts == 0 {
		t.Fatal("leading copy took no interrupts")
	}
	if trail.Interrupts != lead.Interrupts {
		t.Errorf("interrupt counts diverge: leading %d, trailing %d",
			lead.Interrupts, trail.Interrupts)
	}
	if pair.Cmp.Mismatches.Value() != 0 {
		t.Errorf("%d store mismatches: interrupt points not replicated exactly",
			pair.Cmp.Mismatches.Value())
	}
	if len(pair.Detected) != 0 {
		t.Errorf("%d spurious detections", len(pair.Detected))
	}
	// Both copies' handler counters agree.
	if l, tr := lead.Arch.Mem.Read64(0x6000), trail.Arch.Mem.Read64(0x6000); l != tr {
		t.Errorf("handler counters diverge: %d vs %d", l, tr)
	}
}

// TestNoInterruptsWithoutHandler: a program without a handler must never be
// redirected even with the timer configured.
func TestNoInterruptsWithoutHandler(t *testing.T) {
	prog := tinyLoop(500)
	cfg := DefaultConfig()
	cfg.InterruptEvery = 200
	core := NewCore(0, cfg, nil)
	_, ctx := wire(core, prog, RoleSingle, 1_000_000)
	core.FinalizeQueues()
	m := &Machine{Cores: []*Core{core}}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if ctx.Interrupts != 0 {
		t.Errorf("%d interrupts delivered to a handler-less program", ctx.Interrupts)
	}
}

// wire attaches a fresh context running prog to core and returns its memory
// image.
func wire(core *Core, prog *isa.Program, role Role, budget uint64) (*vm.Memory, *Context) {
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	ctx := NewContext(role, 0, vm.NewThread(0, prog, memImg), budget)
	core.AddContext(ctx)
	return memImg, ctx
}
