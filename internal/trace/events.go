package trace

import (
	"encoding/json"
	"io"

	"repro/internal/pipeline"
)

// EventKind classifies a structured trace event.
type EventKind uint8

// Event kinds.
const (
	// KindInstr is one dynamic instruction's full fetch-to-retire span.
	KindInstr EventKind = iota
	// KindSquash marks a mispredicted branch resolving (wrong-path bubble
	// ends, fetch restarts).
	KindSquash
	// KindCompare marks a sphere-of-replication output comparison (store
	// comparator, LVQ address check, or trailing-fetch divergence).
	KindCompare
	// KindFaultInject marks a fault-injection campaign corrupting one
	// instruction's result.
	KindFaultInject
)

func (k EventKind) String() string {
	switch k {
	case KindInstr:
		return "instr"
	case KindSquash:
		return "squash"
	case KindCompare:
		return "compare"
	case KindFaultInject:
		return "fault-inject"
	}
	return "unknown"
}

// Event is one structured trace record. Instruction events span
// [Cycle, End]; point events (squash, compare, fault-inject) carry only
// Cycle.
type Event struct {
	Kind EventKind
	Core int
	TID  int
	// Cycle is the event time: the fetch cycle for instruction events, the
	// occurrence cycle for point events.
	Cycle uint64
	// End is the retire cycle (instruction events only).
	End  uint64
	Seq  uint64
	PC   uint64
	Text string
	// Mismatch is set on compare events that detected a divergence.
	Mismatch bool
}

// EventLog accumulates structured events from one or more cores. It is not
// safe for concurrent use; each simulated machine runs in a single
// goroutine, so event order — and therefore the exported byte stream — is
// deterministic for a given configuration.
type EventLog struct {
	// Cap bounds the number of stored events (0 = 1 << 20). Once full,
	// further events are counted but dropped.
	Cap     int
	Dropped uint64

	evs     []Event
	pending map[instrKey]*Event
}

type instrKey struct {
	core int
	tid  int
	seq  uint64
}

// NewEventLog returns a log holding up to cap events (0 = 1<<20).
func NewEventLog(cap int) *EventLog {
	if cap <= 0 {
		cap = 1 << 20
	}
	return &EventLog{Cap: cap, pending: make(map[instrKey]*Event)}
}

// add appends an event, honouring the cap.
func (l *EventLog) add(ev Event) {
	if len(l.evs) >= l.Cap {
		l.Dropped++
		return
	}
	l.evs = append(l.evs, ev)
}

// Inject records a fault-injection event (called by the fault package when
// a campaign corrupts an instruction's result).
func (l *EventLog) Inject(core, tid int, cycle, seq, pc uint64, text string) {
	l.add(Event{Kind: KindFaultInject, Core: core, TID: tid,
		Cycle: cycle, Seq: seq, PC: pc, Text: text})
}

// Events returns the stored events in emission order. Instruction events
// appear at their retire point (when the span closes); unretired
// instructions at the end of a run are not included.
func (l *EventLog) Events() []Event { return l.evs }

// CoreHook returns the function to install as pipeline.Core.Trace for the
// core with the given ID. Stage events are folded into one spanning
// instruction event per dynamic instruction; squash and compare stages
// become point events.
func (l *EventLog) CoreHook(core int) func(ev pipeline.TraceEvent) {
	return func(ev pipeline.TraceEvent) {
		switch ev.Stage {
		case pipeline.StageFetch:
			k := instrKey{core, ev.TID, ev.Seq}
			l.pending[k] = &Event{
				Kind: KindInstr, Core: core, TID: ev.TID,
				Cycle: ev.Cycle, Seq: ev.Seq, PC: ev.PC, Text: ev.Text,
			}
		case pipeline.StageRetire:
			k := instrKey{core, ev.TID, ev.Seq}
			if p, ok := l.pending[k]; ok {
				p.End = ev.Cycle
				l.add(*p)
				delete(l.pending, k)
			}
		case pipeline.StageSquash:
			l.add(Event{Kind: KindSquash, Core: core, TID: ev.TID,
				Cycle: ev.Cycle, Seq: ev.Seq, PC: ev.PC, Text: ev.Text})
		case pipeline.StageCompare:
			l.add(Event{Kind: KindCompare, Core: core, TID: ev.TID,
				Cycle: ev.Cycle, Seq: ev.Seq, PC: ev.PC, Text: ev.Text,
				Mismatch: ev.Mismatch})
		}
	}
}

// chromeEvent is one entry of the Chrome trace_event JSON format
// (consumed by Perfetto / chrome://tracing). Field order here fixes the
// exported byte layout.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON exports the log in Chrome trace_event JSON format: one
// "X" (complete) event per retired instruction spanning fetch to retire,
// and "i" (instant) events for squashes, comparisons and fault injections.
// Cycles map to microseconds of trace time; pid is the core, tid the
// hardware thread. Output is deterministic: emission order and fixed field
// order only.
func (l *EventLog) WriteChromeJSON(w io.Writer) error {
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(l.evs)), DisplayTimeUnit: "ns"}
	for _, ev := range l.evs {
		ce := chromeEvent{
			Name: ev.Text,
			Cat:  ev.Kind.String(),
			TS:   ev.Cycle,
			PID:  ev.Core,
			TID:  ev.TID,
			Args: map[string]any{"seq": ev.Seq, "pc": ev.PC},
		}
		switch ev.Kind {
		case KindInstr:
			ce.Phase = "X"
			dur := ev.End - ev.Cycle
			if dur == 0 {
				dur = 1
			}
			ce.Dur = &dur
		default:
			ce.Phase = "i"
			ce.Scope = "t"
			ce.Name = ev.Kind.String()
			if ev.Text != "" {
				ce.Args["text"] = ev.Text
			}
			if ev.Kind == KindCompare {
				ce.Args["mismatch"] = ev.Mismatch
			}
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}
