// Package trace renders per-instruction pipeline traces: for each dynamic
// instruction, the cycles at which it was fetched, dispatched, issued,
// completed and retired, drawn as a pipeline diagram. Attach a Collector to
// a core (pipeline.Core.Trace) and render with Format.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pipeline"
)

// Record is one dynamic instruction's pipeline history.
type Record struct {
	TID      int
	Seq      uint64
	PC       uint64
	Text     string
	Fetch    uint64
	Dispatch uint64
	Issue    uint64
	Done     uint64
	Retire   uint64
}

// Collector accumulates trace events from a core, bounded by Cap.
type Collector struct {
	Cap  int
	recs map[key]*Record
}

type key struct {
	tid int
	seq uint64
}

// NewCollector returns a collector holding up to cap instructions
// (0 = 4096).
func NewCollector(cap int) *Collector {
	if cap <= 0 {
		cap = 4096
	}
	return &Collector{Cap: cap, recs: make(map[key]*Record, cap)}
}

// Hook returns the function to install as pipeline.Core.Trace.
func (c *Collector) Hook() func(ev pipeline.TraceEvent) {
	return func(ev pipeline.TraceEvent) {
		if ev.Stage == pipeline.StageSquash || ev.Stage == pipeline.StageCompare {
			return // point events belong to the EventLog, not the diagram
		}
		k := key{ev.TID, ev.Seq}
		r, ok := c.recs[k]
		if !ok {
			if len(c.recs) >= c.Cap {
				return
			}
			r = &Record{TID: ev.TID, Seq: ev.Seq, PC: ev.PC, Text: ev.Text}
			c.recs[k] = r
		}
		switch ev.Stage {
		case pipeline.StageFetch:
			r.Fetch = ev.Cycle
		case pipeline.StageDispatch:
			r.Dispatch = ev.Cycle
		case pipeline.StageIssue:
			r.Issue = ev.Cycle
		case pipeline.StageDone:
			r.Done = ev.Cycle
		case pipeline.StageRetire:
			r.Retire = ev.Cycle
		}
	}
}

// Records returns the collected records sorted by (tid, seq).
func (c *Collector) Records() []*Record {
	rs := make([]*Record, 0, len(c.recs))
	for _, r := range c.recs {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].TID != rs[j].TID {
			return rs[i].TID < rs[j].TID
		}
		return rs[i].Seq < rs[j].Seq
	})
	return rs
}

// Format renders records retired in [from, to) as a pipeline diagram:
//
//	t0 seq=102 pc=17    add r3, r1, r2   F---D--I+++RC..X
//
// F fetch, D dispatch, I issue, C complete, X retire; '-' waiting in the
// rate-matching buffer, '+' executing, '.' waiting to retire.
func Format(rs []*Record, from, to uint64) string {
	var b strings.Builder
	for _, r := range rs {
		if r.Retire < from || (to > 0 && r.Retire >= to) || r.Retire == 0 {
			continue
		}
		// Each line's diagram starts at its own fetch cycle (printed as a
		// prefix) so deep traces stay narrow.
		origin := r.Fetch
		line := make([]byte, 0, 64)
		pos := func(cycle uint64) int {
			if cycle < origin {
				return 0
			}
			return int(cycle - origin)
		}
		put := func(p int, ch byte, fill byte) {
			for len(line) < p {
				line = append(line, fill)
			}
			if len(line) == p {
				line = append(line, ch)
			} else if p >= 0 && p < len(line) {
				line[p] = ch
			}
		}
		put(pos(r.Fetch), 'F', ' ')
		put(pos(r.Dispatch), 'D', '-')
		put(pos(r.Issue), 'I', '-')
		put(pos(r.Done), 'C', '+')
		retirePos := pos(r.Retire)
		if retirePos == pos(r.Done) {
			retirePos++ // retirement never precedes completion visually
		}
		put(retirePos, 'X', '.')
		fmt.Fprintf(&b, "t%d %6d cyc=%-7d pc=%-5d %-26s %s\n",
			r.TID, r.Seq, r.Fetch, r.PC, r.Text, line)
	}
	return b.String()
}
