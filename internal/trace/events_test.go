package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/pipeline"
)

func TestEventLogFoldsInstrSpans(t *testing.T) {
	l := NewEventLog(0)
	hook := l.CoreHook(0)
	hook(pipeline.TraceEvent{Cycle: 10, TID: 1, Seq: 5, PC: 7, Text: "add", Stage: pipeline.StageFetch})
	hook(pipeline.TraceEvent{Cycle: 12, TID: 1, Seq: 5, Stage: pipeline.StageIssue})
	hook(pipeline.TraceEvent{Cycle: 20, TID: 1, Seq: 5, Stage: pipeline.StageRetire})
	hook(pipeline.TraceEvent{Cycle: 15, TID: 1, Seq: 6, PC: 8, Text: "br", Stage: pipeline.StageSquash})
	hook(pipeline.TraceEvent{Cycle: 16, TID: 1, Seq: 7, PC: 9, Text: "stq", Stage: pipeline.StageCompare, Mismatch: true})
	// A fetched-but-never-retired instruction stays pending.
	hook(pipeline.TraceEvent{Cycle: 30, TID: 1, Seq: 9, Stage: pipeline.StageFetch})

	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(evs), evs)
	}
	if evs[0].Kind != KindInstr || evs[0].Cycle != 10 || evs[0].End != 20 || evs[0].Text != "add" {
		t.Errorf("instr span wrong: %+v", evs[0])
	}
	if evs[1].Kind != KindSquash || evs[1].Cycle != 15 {
		t.Errorf("squash wrong: %+v", evs[1])
	}
	if evs[2].Kind != KindCompare || !evs[2].Mismatch {
		t.Errorf("compare wrong: %+v", evs[2])
	}
}

func TestEventLogCapDrops(t *testing.T) {
	l := NewEventLog(2)
	for i := 0; i < 5; i++ {
		l.Inject(0, 0, uint64(i), 0, 0, "flip")
	}
	if len(l.Events()) != 2 || l.Dropped != 3 {
		t.Errorf("cap not honoured: len=%d dropped=%d", len(l.Events()), l.Dropped)
	}
}

func TestChromeJSONExport(t *testing.T) {
	l := NewEventLog(0)
	hook := l.CoreHook(2)
	hook(pipeline.TraceEvent{Cycle: 1, TID: 0, Seq: 1, PC: 4, Text: "ldq", Stage: pipeline.StageFetch})
	hook(pipeline.TraceEvent{Cycle: 9, TID: 0, Seq: 1, Stage: pipeline.StageRetire})
	l.Inject(2, 0, 5, 1, 4, "bit 3")
	hook(pipeline.TraceEvent{Cycle: 11, TID: 0, Seq: 2, PC: 5, Text: "stq", Stage: pipeline.StageCompare, Mismatch: false})

	var buf bytes.Buffer
	if err := l.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[0]
	if x["ph"] != "X" || x["pid"] != float64(2) || x["ts"] != float64(1) || x["dur"] != float64(8) {
		t.Errorf("complete event wrong: %v", x)
	}
	for _, ev := range doc.TraceEvents[1:] {
		if ev["ph"] != "i" || ev["s"] != "t" {
			t.Errorf("instant event wrong: %v", ev)
		}
	}
	if doc.TraceEvents[2]["args"].(map[string]any)["mismatch"] != false {
		t.Errorf("compare args wrong: %v", doc.TraceEvents[2])
	}

	// Byte determinism: exporting twice is identical.
	var buf2 bytes.Buffer
	if err := l.WriteChromeJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("export is not byte-stable")
	}
}
