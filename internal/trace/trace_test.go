package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

func TestCollectorRendersPipeline(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Ldi(isa.R1, 5)
	b.Label("top")
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	prog := b.MustFinish()

	core := pipeline.NewCore(0, pipeline.DefaultConfig(), nil)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	ctx := pipeline.NewContext(pipeline.RoleSingle, 0, vm.NewThread(0, prog, memImg), 1000)
	core.AddContext(ctx)
	core.FinalizeQueues()

	c := NewCollector(64)
	core.Trace = c.Hook()
	m := &pipeline.Machine{Cores: []*pipeline.Core{core}}
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}

	recs := c.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	for _, r := range recs {
		if r.Retire == 0 {
			continue
		}
		if !(r.Fetch <= r.Dispatch && r.Dispatch <= r.Issue && r.Issue < r.Done && r.Done <= r.Retire) {
			t.Errorf("stage order violated for seq %d: F%d D%d I%d C%d X%d",
				r.Seq, r.Fetch, r.Dispatch, r.Issue, r.Done, r.Retire)
		}
	}
	out := Format(recs, 0, 0)
	for _, want := range []string{"F", "D", "I", "C", "X", "ldi", "addi", "bne"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorRespectsCap(t *testing.T) {
	c := NewCollector(2)
	h := c.Hook()
	for seq := uint64(0); seq < 10; seq++ {
		h(pipeline.TraceEvent{TID: 0, Seq: seq, Stage: pipeline.StageFetch})
	}
	if len(c.Records()) != 2 {
		t.Errorf("records = %d, want cap 2", len(c.Records()))
	}
}
