// Package rmt implements the paper's core contribution: the machinery that
// turns one or two SMT cores into a redundantly multithreaded
// fault-detection machine.
//
// A redundant Pair couples a leading and a trailing hardware thread running
// identical copies of one logical program. Values entering the sphere of
// replication are replicated (the load value queue), the trailing thread's
// fetch stream is steered by the leading thread's retired control flow (the
// line prediction queue), and values leaving the sphere are compared (the
// store comparator). The same structures serve SRT (both threads on one
// core), CRT (threads on different cores of a CMP — only the forwarding
// latencies change), and the preferential-space-redundancy extension.
//
// The package is deliberately pipeline-agnostic: it deals in PCs, addresses,
// values, tags and cycle numbers. internal/pipeline drives it.
package rmt

import (
	"fmt"

	"repro/internal/stats"
)

// ChunkSize is the fetch-chunk width: up to eight contiguous instructions,
// matching the base machine's 8-instruction fetch chunks.
const ChunkSize = 8

// --- Load value queue ---

// LVQEntry is one replicated load: the leading thread's retired load address
// and value, tagged with the pair-local load correlation tag assigned by the
// PBOX.
type LVQEntry struct {
	Tag     uint64
	Addr    uint64
	Size    int
	Value   uint64
	ReadyAt uint64 // cycle the entry is visible to the trailing thread
}

// LVQ is the load value queue. Trailing-thread loads look entries up
// associatively by correlation tag, so the trailing thread may issue its
// loads out of order (paper §4.1). The hardware is a small CAM, and the
// model matches: a fixed array of capacity entries searched linearly
// (Tag 0 marks a free slot — correlation tags start at 1), which stays
// allocation-free and beats a map at these sizes (Table 1: 64 entries).
//
// Note the live tag window genuinely requires an associative search: tags
// are pushed sequentially but consumed out of order, so the span of live
// tags can exceed the capacity and a tag-modulo-capacity direct index
// would collide.
type LVQ struct {
	entries    []LVQEntry // fixed length = capacity; Tag==0 slots are free
	n          int
	lastPushed uint64

	Pushes     stats.Counter
	FullStalls stats.Counter
	Waits      stats.Counter
	// AddrMismatches counts trailing loads whose address disagreed with
	// the leading thread's — a detected fault.
	AddrMismatches stats.Counter
}

// NewLVQ returns a load value queue with the given capacity.
func NewLVQ(capacity int) *LVQ {
	return &LVQ{entries: make([]LVQEntry, capacity)}
}

// Full reports whether the queue cannot accept another entry; the leading
// thread's load must then stall at retirement.
func (q *LVQ) Full() bool { return q.n >= len(q.entries) }

// Len returns the current occupancy.
func (q *LVQ) Len() int { return q.n }

// find returns the slot index holding tag, or -1.
func (q *LVQ) find(tag uint64) int {
	for i := range q.entries {
		if q.entries[i].Tag == tag {
			return i
		}
	}
	return -1
}

// Push records a retired leading-thread load. The caller must have checked
// Full.
func (q *LVQ) Push(e LVQEntry) {
	if q.Full() {
		panic("rmt: LVQ overflow (caller must check Full)")
	}
	q.Pushes.Inc()
	if q.lastPushed != 0 && e.Tag != q.lastPushed+1 {
		panic(fmt.Sprintf("rmt: LVQ push tag %d after %d", e.Tag, q.lastPushed))
	}
	if q.lastPushed == 0 && e.Tag != 1 {
		panic(fmt.Sprintf("rmt: first LVQ push tag %d", e.Tag))
	}
	q.lastPushed = e.Tag
	i := q.find(0)
	if i < 0 {
		panic("rmt: LVQ has no free slot despite not being full")
	}
	q.entries[i] = e
	q.n++
}

// Peek reports whether an entry with the given tag exists and, if so, the
// cycle it becomes visible (for issue-retry scheduling).
func (q *LVQ) Peek(tag uint64) (readyAt uint64, ok bool) {
	if i := q.find(tag); i >= 0 {
		return q.entries[i].ReadyAt, true
	}
	return 0, false
}

// Lookup services a trailing-thread load at cycle now. It returns the entry
// and true when the entry exists and has arrived; the entry is consumed.
// If the entry exists but has not yet arrived (forwarding latency), or does
// not exist yet (insufficient slack), it returns false and the load must
// retry.
func (q *LVQ) Lookup(tag uint64, now uint64) (LVQEntry, bool) {
	i := q.find(tag)
	if i < 0 || q.entries[i].ReadyAt > now {
		q.Waits.Inc()
		return LVQEntry{}, false
	}
	e := q.entries[i]
	q.entries[i] = LVQEntry{}
	q.n--
	return e, true
}

// --- Line prediction queue ---

// Chunk is one trailing-thread fetch chunk forwarded through the line
// prediction queue: a contiguous group of up to eight instructions starting
// at StartPC, plus the per-slot issue-queue-half bits the leading thread's
// instructions used (for preferential space redundancy).
type Chunk struct {
	StartPC   uint64
	Count     int
	UpperHalf [ChunkSize]bool
	// FUs records which functional unit each leading instruction executed
	// on, riding along for the space-redundancy statistics.
	FUs     [ChunkSize]uint8
	ReadyAt uint64
	// LoadTags carries the load correlation tags, in slot order, for the
	// loads in this chunk (0 for non-load slots).
	LoadTags [ChunkSize]uint64
	// StoreTags carries store correlation tags likewise.
	StoreTags [ChunkSize]uint64
}

// LPQ is the line prediction queue (paper §4.4): a FIFO of perfect line
// predictions from the leading thread's retirement to the trailing thread's
// fetch stage, with the two head pointers of Figure 4. The active head feeds
// the address driver and advances on ack; the recovery head advances only
// when the fetch completed (e.g., survived the instruction cache), and the
// IBOX may roll the active head back to it after a cache miss.
type LPQ struct {
	capacity int
	buf      []Chunk
	head     int // recovery head index into buf
	active   int // active head offset >= head (entries between are "spoken for")
	tail     int
	n        int

	Pushes     stats.Counter
	Rollbacks  stats.Counter
	FullStalls stats.Counter
}

// NewLPQ returns a line prediction queue holding capacity chunks.
func NewLPQ(capacity int) *LPQ {
	return &LPQ{capacity: capacity, buf: make([]Chunk, capacity)}
}

// Full reports whether the queue cannot accept another chunk; leading-thread
// retirement must then stall.
func (q *LPQ) Full() bool { return q.n >= q.capacity }

// Len returns the number of chunks between the recovery head and the tail.
func (q *LPQ) Len() int { return q.n }

// PendingAtActive returns the number of chunks available at the active head.
func (q *LPQ) PendingAtActive() int { return q.n - q.active }

// Push appends a chunk. The caller must have checked Full.
func (q *LPQ) Push(c Chunk) {
	if q.Full() {
		panic("rmt: LPQ overflow (caller must check Full)")
	}
	q.Pushes.Inc()
	q.buf[q.tail] = c
	q.tail = (q.tail + 1) % q.capacity
	q.n++
}

// PeekActive returns the chunk at the active head if one is present and has
// arrived by cycle now.
func (q *LPQ) PeekActive(now uint64) (Chunk, bool) {
	if q.active >= q.n {
		return Chunk{}, false
	}
	c := q.buf[(q.head+q.active)%q.capacity]
	if c.ReadyAt > now {
		return Chunk{}, false
	}
	return c, true
}

// Ack advances the active head: the address driver accepted the prediction.
func (q *LPQ) Ack() {
	if q.active >= q.n {
		panic("rmt: LPQ ack past tail")
	}
	q.active++
}

// Complete advances the recovery head: the oldest outstanding chunk's
// instructions were successfully fetched from the cache.
func (q *LPQ) Complete() {
	if q.active == 0 || q.n == 0 {
		panic("rmt: LPQ complete without outstanding ack")
	}
	q.head = (q.head + 1) % q.capacity
	q.active--
	q.n--
}

// Rollback moves the active head back to the recovery head, re-issuing the
// sequence of predictions (instruction cache miss handling, Figure 4).
func (q *LPQ) Rollback() {
	if q.active > 0 {
		q.Rollbacks.Inc()
	}
	q.active = 0
}

// --- Chunk aggregation at the QBOX end ---

// Aggregator builds trailing-thread fetch chunks from the leading thread's
// retirement stream, implementing the chunk-termination rules of §4.4.2:
// non-contiguous PCs, the 8-instruction limit, forced termination for
// memory barriers and partial-forwarding hazards, and taken-branch merging
// (a mispredicted-taken branch that fell through stays contiguous and keeps
// extending the chunk).
type Aggregator struct {
	lpq *LPQ //rmtsnap:skip — wiring to the queue, which snapshots itself

	cur     Chunk
	started bool
	nextPC  uint64

	ForcedTerminations stats.Counter
}

// NewAggregator returns an aggregator feeding lpq.
func NewAggregator(lpq *LPQ) *Aggregator {
	return &Aggregator{lpq: lpq}
}

// CanAdd reports whether another retired instruction can currently be
// absorbed (there is room in the chunk or in the LPQ for a flush).
func (a *Aggregator) CanAdd() bool {
	return !a.lpq.Full()
}

// RetireInfo describes one retiring leading-thread instruction as seen by
// the aggregator.
type RetireInfo struct {
	PC        uint64
	UpperHalf bool
	FU        uint8
	// ChunkStart marks the first instruction of a leading fetch chunk; the
	// aggregator terminates the pending chunk there so trailing chunk slots
	// line up with leading ones (the position-based issue-queue-half
	// assignment of §3.3 then puts corresponding instructions in the same
	// half unless preferential space redundancy redirects them).
	ChunkStart bool
	LoadTag    uint64 // non-zero for loads
	StoreTag   uint64 // non-zero for stores
	// ForceTerminate requests chunk termination *after* this instruction
	// (partial-forward hazard: the store must reach the trailing thread
	// before the dependent load can proceed).
	ForceTerminate bool
	RetireCycle    uint64
	ForwardLatency uint64
}

// Add absorbs one retired instruction, flushing completed chunks into the
// LPQ. The caller must have checked CanAdd.
func (a *Aggregator) Add(info RetireInfo) {
	if a.started && (info.PC != a.nextPC || a.cur.Count == ChunkSize || info.ChunkStart) {
		a.flush(info.RetireCycle, info.ForwardLatency)
	}
	if !a.started {
		a.cur = Chunk{StartPC: info.PC}
		a.started = true
	}
	slot := a.cur.Count
	a.cur.UpperHalf[slot] = info.UpperHalf
	a.cur.FUs[slot] = info.FU
	a.cur.LoadTags[slot] = info.LoadTag
	a.cur.StoreTags[slot] = info.StoreTag
	a.cur.Count++
	a.nextPC = info.PC + 1
	if info.ForceTerminate {
		a.ForcedTerminations.Inc()
		a.flush(info.RetireCycle, info.ForwardLatency)
	}
}

// ForceFlush pushes any pending partial chunk immediately. The pipeline
// calls this when the oldest unretired leading instruction is a memory
// barrier (or is otherwise blocked on trailing-thread progress), breaking
// the deadlock described in §4.4.2.
func (a *Aggregator) ForceFlush(now uint64, fwdLat uint64) {
	if a.started && a.cur.Count > 0 {
		a.ForcedTerminations.Inc()
		a.flush(now, fwdLat)
	}
}

// Pending returns the number of instructions buffered in the unflushed
// chunk.
func (a *Aggregator) Pending() int {
	if !a.started {
		return 0
	}
	return a.cur.Count
}

func (a *Aggregator) flush(now uint64, fwdLat uint64) {
	if !a.started || a.cur.Count == 0 {
		return
	}
	a.cur.ReadyAt = now + fwdLat
	a.lpq.Push(a.cur)
	a.started = false
	a.cur = Chunk{}
}

// --- Store comparator ---

// StoreRecord is one store's identity at the comparator: for the leading
// side, a retired store awaiting verification; for the trailing side, an
// executed store whose address and data have been forwarded.
type StoreRecord struct {
	Tag   uint64
	Addr  uint64
	Size  int
	Value uint64
	// ReadyAt is when the record's address+data are present at the
	// comparator (retirement for the leading side; execution plus
	// forwarding latency for the trailing side).
	ReadyAt uint64
}

// Mismatch describes a detected output divergence — a fault caught at the
// sphere-of-replication boundary.
type Mismatch struct {
	Tag                   uint64
	LeadAddr, TrailAddr   uint64
	LeadValue, TrailValue uint64
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("rmt: store mismatch tag %d: leading %#x=%#x, trailing %#x=%#x",
		m.Tag, m.LeadAddr, m.LeadValue, m.TrailAddr, m.TrailValue)
}

// StoreComparator sits next to the store queue (paper §4.2): it holds
// leading-thread stores until the corresponding trailing-thread store's
// address and data arrive, compares them, and reports when each store is
// verified and may drain out of the sphere of replication.
//
// Both sides are bounded by the store queue (every record corresponds to an
// occupied SQ entry), so they live in small slot arrays searched linearly —
// Tag 0 marks a free slot (store tags start at 1) — rather than maps. The
// arrays grow to the high-water mark once and are then reused forever.
type StoreComparator struct {
	compareLatency uint64 //rmtsnap:skip — timing config fixed at construction
	lead           []StoreRecord
	trail          []StoreRecord
	nLead, nTrail  int

	Comparisons stats.Counter
	Mismatches  stats.Counter
}

// NewStoreComparator returns a comparator whose comparisons take
// compareLatency cycles.
func NewStoreComparator(compareLatency uint64) *StoreComparator {
	return &StoreComparator{compareLatency: compareLatency}
}

// putRecord stores r in the first free slot, extending the array only when
// every slot is occupied (first excursion to a new high-water mark).
func putRecord(slots []StoreRecord, r StoreRecord) []StoreRecord {
	for i := range slots {
		if slots[i].Tag == 0 {
			slots[i] = r
			return slots
		}
	}
	return append(slots, r)
}

// findRecord returns the slot index holding tag, or -1.
func findRecord(slots []StoreRecord, tag uint64) int {
	for i := range slots {
		if slots[i].Tag == tag {
			return i
		}
	}
	return -1
}

// PendingLeading returns the number of unverified leading stores.
func (c *StoreComparator) PendingLeading() int { return c.nLead }

// AddLeading registers a leading-thread store (when its address and data are
// in the store queue).
func (c *StoreComparator) AddLeading(r StoreRecord) {
	c.lead = putRecord(c.lead, r)
	c.nLead++
}

// AddTrailing registers the arrival of the trailing-thread copy of a store.
func (c *StoreComparator) AddTrailing(r StoreRecord) {
	c.trail = putRecord(c.trail, r)
	c.nTrail++
}

// HasTrailing reports whether the trailing copy with the given tag is still
// held (i.e., not yet consumed by Verify); the trailing store-queue entry
// cannot be freed while it is.
func (c *StoreComparator) HasTrailing(tag uint64) bool {
	return findRecord(c.trail, tag) >= 0
}

// Verify attempts to verify the leading store with the given tag at cycle
// now. It returns:
//
//	verifiedAt, nil, true   — match; the store may drain at verifiedAt
//	0, *Mismatch, true      — both copies present but differ (fault!)
//	0, nil, false           — trailing copy not yet arrived
func (c *StoreComparator) Verify(tag uint64, now uint64) (uint64, *Mismatch, bool) {
	li := findRecord(c.lead, tag)
	if li < 0 {
		panic(fmt.Sprintf("rmt: Verify of unknown leading store tag %d", tag))
	}
	ti := findRecord(c.trail, tag)
	if ti < 0 || c.trail[ti].ReadyAt > now {
		return 0, nil, false
	}
	l, t := c.lead[li], c.trail[ti]
	c.lead[li] = StoreRecord{}
	c.trail[ti] = StoreRecord{}
	c.nLead--
	c.nTrail--
	c.Comparisons.Inc()
	when := now
	if l.ReadyAt > when {
		when = l.ReadyAt
	}
	when += c.compareLatency
	if l.Addr != t.Addr || l.Value != t.Value || l.Size != t.Size {
		c.Mismatches.Inc()
		m := &Mismatch{
			Tag:      tag,
			LeadAddr: l.Addr, TrailAddr: t.Addr,
			LeadValue: l.Value, TrailValue: t.Value,
		}
		return 0, m, true
	}
	return when, nil, true
}

// DebugTags returns the min and max tags currently in the queue (0,0 when
// empty); a diagnostic helper.
func (q *LVQ) DebugTags() (lo, hi uint64) {
	for i := range q.entries {
		t := q.entries[i].Tag
		if t == 0 {
			continue
		}
		if lo == 0 || t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return
}
