package rmt

import (
	"testing"
	"testing/quick"
)

// --- LVQ ---

func TestLVQPushLookup(t *testing.T) {
	q := NewLVQ(4)
	q.Push(LVQEntry{Tag: 1, Addr: 0x100, Size: 8, Value: 42, ReadyAt: 10})
	if _, ok := q.Lookup(1, 5); ok {
		t.Error("entry visible before ReadyAt")
	}
	e, ok := q.Lookup(1, 10)
	if !ok || e.Value != 42 || e.Addr != 0x100 {
		t.Fatalf("lookup at ReadyAt: %+v ok=%v", e, ok)
	}
	if _, ok := q.Lookup(1, 11); ok {
		t.Error("entry not consumed")
	}
}

func TestLVQOutOfOrderConsumption(t *testing.T) {
	// The tag-associative LVQ permits out-of-order trailing loads (§4.1).
	q := NewLVQ(8)
	for tag := uint64(1); tag <= 4; tag++ {
		q.Push(LVQEntry{Tag: tag, Value: tag * 10})
	}
	for _, tag := range []uint64{3, 1, 4, 2} {
		e, ok := q.Lookup(tag, 0)
		if !ok || e.Value != tag*10 {
			t.Fatalf("tag %d: %+v ok=%v", tag, e, ok)
		}
	}
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestLVQFull(t *testing.T) {
	q := NewLVQ(2)
	q.Push(LVQEntry{Tag: 1})
	if q.Full() {
		t.Error("full at 1/2")
	}
	q.Push(LVQEntry{Tag: 2})
	if !q.Full() {
		t.Error("not full at 2/2")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	q.Push(LVQEntry{Tag: 3})
}

func TestLVQSequentialPushInvariant(t *testing.T) {
	q := NewLVQ(8)
	q.Push(LVQEntry{Tag: 1})
	defer func() {
		if recover() == nil {
			t.Error("gapped push did not panic")
		}
	}()
	q.Push(LVQEntry{Tag: 3})
}

func TestLVQPeek(t *testing.T) {
	q := NewLVQ(4)
	if _, ok := q.Peek(7); ok {
		t.Error("peek of absent tag")
	}
	q.Push(LVQEntry{Tag: 1, ReadyAt: 99})
	ready, ok := q.Peek(1)
	if !ok || ready != 99 {
		t.Errorf("peek: %d %v", ready, ok)
	}
	if q.Len() != 1 {
		t.Error("peek must not consume")
	}
}

// --- LPQ ---

func TestLPQFIFOOrder(t *testing.T) {
	q := NewLPQ(4)
	q.Push(Chunk{StartPC: 10, Count: 8})
	q.Push(Chunk{StartPC: 20, Count: 4})
	c, ok := q.PeekActive(0)
	if !ok || c.StartPC != 10 {
		t.Fatalf("peek: %+v %v", c, ok)
	}
	q.Ack()
	q.Complete()
	c, ok = q.PeekActive(0)
	if !ok || c.StartPC != 20 {
		t.Fatalf("second peek: %+v %v", c, ok)
	}
}

func TestLPQReadyAtGatesVisibility(t *testing.T) {
	q := NewLPQ(4)
	q.Push(Chunk{StartPC: 10, ReadyAt: 50})
	if _, ok := q.PeekActive(49); ok {
		t.Error("chunk visible before forwarding latency elapsed")
	}
	if _, ok := q.PeekActive(50); !ok {
		t.Error("chunk not visible at ReadyAt")
	}
}

// TestLPQTwoHeads exercises Figure 4's active/recovery head pair: an
// instruction cache miss rolls the active head back without losing
// predictions.
func TestLPQTwoHeads(t *testing.T) {
	q := NewLPQ(4)
	q.Push(Chunk{StartPC: 10})
	q.Push(Chunk{StartPC: 20})
	q.Push(Chunk{StartPC: 30})

	// The address driver acks two predictions...
	q.Ack()
	q.Ack()
	if q.PendingAtActive() != 1 {
		t.Fatalf("pending at active = %d, want 1", q.PendingAtActive())
	}
	// ...then the fetch misses the icache: roll back to the recovery head.
	q.Rollback()
	if q.PendingAtActive() != 3 {
		t.Fatalf("after rollback pending = %d, want 3", q.PendingAtActive())
	}
	c, _ := q.PeekActive(0)
	if c.StartPC != 10 {
		t.Fatalf("rollback must replay from the oldest unfetched chunk, got %d", c.StartPC)
	}
	// Successful fetch: ack + complete advances both heads.
	q.Ack()
	q.Complete()
	c, _ = q.PeekActive(0)
	if c.StartPC != 20 {
		t.Fatalf("after complete, head = %d, want 20", c.StartPC)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
}

func TestLPQFullAndWrap(t *testing.T) {
	q := NewLPQ(2)
	q.Push(Chunk{StartPC: 1})
	q.Push(Chunk{StartPC: 2})
	if !q.Full() {
		t.Fatal("should be full")
	}
	q.Ack()
	q.Complete()
	q.Push(Chunk{StartPC: 3}) // wraps the ring
	q.Ack()
	q.Complete()
	c, ok := q.PeekActive(0)
	if !ok || c.StartPC != 3 {
		t.Fatalf("wrap: %+v %v", c, ok)
	}
}

// TestLPQQuickRingInvariant property-tests the ring under random
// push/ack/complete/rollback sequences: the queue never loses or reorders
// chunks.
func TestLPQQuickRingInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewLPQ(8)
		nextPush := uint64(1)
		nextFetch := uint64(1)
		acked := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if !q.Full() {
					q.Push(Chunk{StartPC: nextPush})
					nextPush++
				}
			case 1:
				if q.PendingAtActive() > 0 {
					c, ok := q.PeekActive(0)
					if !ok || c.StartPC != nextFetch+uint64(acked) {
						return false
					}
					q.Ack()
					acked++
				}
			case 2:
				if acked > 0 {
					q.Complete()
					acked--
					nextFetch++
				}
			case 3:
				q.Rollback()
				acked = 0
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Aggregator ---

func collect(lpq *LPQ) []Chunk {
	var cs []Chunk
	for {
		c, ok := lpq.PeekActive(^uint64(0) >> 1)
		if !ok {
			break
		}
		cs = append(cs, c)
		lpq.Ack()
		lpq.Complete()
	}
	return cs
}

func addSeq(a *Aggregator, pcs ...uint64) {
	for _, pc := range pcs {
		a.Add(RetireInfo{PC: pc})
	}
}

func TestAggregatorContiguousRun(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	addSeq(a, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9) // 10 contiguous
	cs := collect(lpq)
	if len(cs) != 1 || cs[0].Count != 8 || cs[0].StartPC != 0 {
		t.Fatalf("chunks: %+v", cs)
	}
	if a.Pending() != 2 {
		t.Errorf("pending = %d, want 2", a.Pending())
	}
}

func TestAggregatorNonContiguousTerminates(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	addSeq(a, 0, 1, 2, 100, 101) // taken branch after pc=2
	cs := collect(lpq)
	if len(cs) != 1 || cs[0].StartPC != 0 || cs[0].Count != 3 {
		t.Fatalf("chunks: %+v", cs)
	}
}

// TestAggregatorFallThroughMerge checks the paper's merge case: a
// not-taken branch keeps the chunk growing across what fetch would have
// split (contiguous PCs never terminate early).
func TestAggregatorFallThroughMerge(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	// 5 contiguous instructions, then 3 more contiguous: one chunk of 8.
	addSeq(a, 10, 11, 12, 13, 14, 15, 16, 17)
	a.Add(RetireInfo{PC: 18}) // forces flush of the full chunk
	cs := collect(lpq)
	if len(cs) != 1 || cs[0].Count != 8 {
		t.Fatalf("chunks: %+v", cs)
	}
}

func TestAggregatorChunkStartTerminates(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	a.Add(RetireInfo{PC: 0})
	a.Add(RetireInfo{PC: 1})
	a.Add(RetireInfo{PC: 2, ChunkStart: true}) // leading fetch chunk boundary
	a.Add(RetireInfo{PC: 3})
	a.ForceFlush(0, 0)
	cs := collect(lpq)
	if len(cs) != 2 || cs[0].Count != 2 || cs[1].Count != 2 || cs[1].StartPC != 2 {
		t.Fatalf("chunks: %+v", cs)
	}
}

func TestAggregatorForceTerminate(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	a.Add(RetireInfo{PC: 0})
	a.Add(RetireInfo{PC: 1, ForceTerminate: true}) // partial-forward store
	a.Add(RetireInfo{PC: 2})
	cs := collect(lpq)
	if len(cs) != 1 || cs[0].Count != 2 {
		t.Fatalf("chunks: %+v", cs)
	}
	if a.ForcedTerminations.Value() != 1 {
		t.Errorf("forced terminations = %d", a.ForcedTerminations.Value())
	}
}

func TestAggregatorForceFlushEmptyIsNoop(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	a.ForceFlush(0, 0)
	if lpq.Len() != 0 || a.ForcedTerminations.Value() != 0 {
		t.Error("flush of empty aggregator should do nothing")
	}
}

func TestAggregatorCarriesSlotMetadata(t *testing.T) {
	lpq := NewLPQ(8)
	a := NewAggregator(lpq)
	a.Add(RetireInfo{PC: 0, UpperHalf: true, FU: 3, LoadTag: 7})
	a.Add(RetireInfo{PC: 1, StoreTag: 9})
	a.ForceFlush(0, 5)
	c, ok := lpq.PeekActive(5)
	if !ok {
		t.Fatal("no chunk")
	}
	if !c.UpperHalf[0] || c.FUs[0] != 3 || c.LoadTags[0] != 7 || c.StoreTags[1] != 9 {
		t.Errorf("metadata lost: %+v", c)
	}
	if c.ReadyAt != 5 {
		t.Errorf("ReadyAt = %d, want retire+latency = 5", c.ReadyAt)
	}
}

// --- Store comparator ---

func TestStoreComparatorMatch(t *testing.T) {
	c := NewStoreComparator(1)
	c.AddLeading(StoreRecord{Tag: 1, Addr: 0x10, Size: 8, Value: 5, ReadyAt: 100})
	if _, _, done := c.Verify(1, 100); done {
		t.Fatal("verified without trailing copy")
	}
	c.AddTrailing(StoreRecord{Tag: 1, Addr: 0x10, Size: 8, Value: 5, ReadyAt: 105})
	if _, _, done := c.Verify(1, 104); done {
		t.Fatal("verified before trailing arrival")
	}
	when, mismatch, done := c.Verify(1, 105)
	if !done || mismatch != nil {
		t.Fatalf("verify: done=%v mismatch=%v", done, mismatch)
	}
	if when != 106 {
		t.Errorf("verified at %d, want arrival+compare = 106", when)
	}
	if c.PendingLeading() != 0 || c.HasTrailing(1) {
		t.Error("records not consumed")
	}
}

func TestStoreComparatorMismatch(t *testing.T) {
	cases := []StoreRecord{
		{Tag: 1, Addr: 0x10, Size: 8, Value: 6}, // value differs
		{Tag: 1, Addr: 0x18, Size: 8, Value: 5}, // address differs
		{Tag: 1, Addr: 0x10, Size: 1, Value: 5}, // size differs
	}
	for i, trail := range cases {
		c := NewStoreComparator(1)
		c.AddLeading(StoreRecord{Tag: 1, Addr: 0x10, Size: 8, Value: 5})
		c.AddTrailing(trail)
		_, mismatch, done := c.Verify(1, 10)
		if !done || mismatch == nil {
			t.Errorf("case %d: mismatch not flagged", i)
		}
		if mismatch != nil && mismatch.Error() == "" {
			t.Errorf("case %d: empty error text", i)
		}
	}
}

func TestStoreComparatorUnknownTagPanics(t *testing.T) {
	c := NewStoreComparator(1)
	defer func() {
		if recover() == nil {
			t.Error("verify of unknown tag did not panic")
		}
	}()
	c.Verify(99, 0)
}

// --- Pair ---

func TestPairTagCounters(t *testing.T) {
	p := NewPair(0, SRTLatencies(), 8, 8)
	if p.NextLeadLoadTag() != 1 || p.NextLeadLoadTag() != 2 {
		t.Error("lead load tags not sequential from 1")
	}
	if p.NextTrailLoadTag() != 1 {
		t.Error("trail load tags independent of lead's")
	}
	if p.NextLeadStoreTag() != 1 || p.NextTrailStoreTag() != 1 {
		t.Error("store tags not sequential from 1")
	}
}

func TestPairSpaceRedundancyStats(t *testing.T) {
	p := NewPair(0, SRTLatencies(), 8, 8)
	p.ObserveSpaceRedundancy(true, true, 2, 2)   // same half, same FU
	p.ObserveSpaceRedundancy(true, false, 2, 6)  // different
	p.ObserveSpaceRedundancy(false, false, 1, 5) // same half, diff FU
	if got := p.SameHalfFrac(); got < 0.66 || got > 0.67 {
		t.Errorf("same half = %.3f, want 2/3", got)
	}
	if got := p.SameFUFrac(); got < 0.33 || got > 0.34 {
		t.Errorf("same FU = %.3f, want 1/3", got)
	}
}

func TestLatencies(t *testing.T) {
	srt := SRTLatencies()
	crt := CRTLatencies()
	if srt.LPQForward != 4 || srt.LVQForward != 2 {
		t.Errorf("SRT latencies = %+v (paper: 4-cycle LPQ, 2-cycle LVQ)", srt)
	}
	if crt.LPQForward != srt.LPQForward+4 || crt.LVQForward != srt.LVQForward+4 ||
		crt.StoreForward != srt.StoreForward+4 {
		t.Errorf("CRT must add the 4-cycle cross-core penalty: %+v", crt)
	}
}
