package rmt

import "repro/internal/stats"

// Latencies are the forwarding delays between the leading thread's
// structures and the trailing thread's consumers. SRT uses the same-core
// values from the paper's methodology (§6.3); CRT adds the 4-cycle
// cross-processor penalty to each path.
type Latencies struct {
	// LPQForward is QBOX retirement -> IBOX line prediction queue.
	LPQForward uint64
	// LVQForward is QBOX retirement -> MBOX load value queue.
	LVQForward uint64
	// StoreForward is trailing store execution -> store comparator.
	StoreForward uint64
	// Compare is the store comparator's comparison latency.
	Compare uint64
}

// SRTLatencies returns the same-core forwarding delays: 4 cycles to the
// line prediction queue, 2 cycles to the load value queue.
func SRTLatencies() Latencies {
	return Latencies{LPQForward: 4, LVQForward: 2, StoreForward: 0, Compare: 1}
}

// CRTLatencies returns the cross-core forwarding delays: SRT plus the
// 4-cycle inter-processor datapath penalty on every path.
func CRTLatencies() Latencies {
	l := SRTLatencies()
	l.LPQForward += 4
	l.LVQForward += 4
	l.StoreForward += 4
	return l
}

// Pair couples a leading and a trailing hardware thread into one redundant
// logical thread, owning the replication and comparison structures between
// them. For SRT both thread contexts live on one core; for CRT they live on
// different cores and only Latencies changes.
type Pair struct {
	// LogicalID identifies the logical program this pair runs.
	LogicalID int //rmtsnap:skip — identity fixed at construction
	// LeadCore/LeadTID and TrailCore/TrailTID locate the two copies.
	LeadCore, LeadTID   int //rmtsnap:skip — wiring fixed at construction
	TrailCore, TrailTID int //rmtsnap:skip — wiring fixed at construction

	Lat Latencies //rmtsnap:skip — timing config fixed at construction

	LVQ *LVQ
	LPQ *LPQ
	Agg *Aggregator
	Cmp *StoreComparator

	// PreferentialSpaceRedundancy biases the trailing thread's instructions
	// to the opposite issue-queue half from their leading counterparts.
	PreferentialSpaceRedundancy bool //rmtsnap:skip — policy knob fixed at construction

	// LeadCommitted mirrors the leading copy's committed instruction count
	// (used by the slack-fetch ablation policy).
	LeadCommitted uint64

	// InterruptSchedule replicates asynchronous interrupt delivery points:
	// the leading copy records the dynamic instruction count at which it
	// took each interrupt, and the trailing copy takes its interrupts at
	// exactly the same points — the precise input replication the original
	// SRT paper calls for on interrupt inputs.
	InterruptSchedule []uint64
	// TrailInterruptIdx indexes the next schedule entry the trailing copy
	// will consume.
	TrailInterruptIdx int

	// Correlation tag counters. Both copies execute the same dynamic
	// instruction stream, so the Nth load (store) of each copy corresponds;
	// the PBOX models this by assigning tags from per-copy counters.
	leadLoadTag, trailLoadTag   uint64
	leadStoreTag, trailStoreTag uint64

	// Space-redundancy accounting for the Figure 7 experiment: of the
	// instruction pairs where both copies used a schedulable resource, how
	// many landed on the same issue-queue half / same functional unit.
	PairsObserved stats.Counter
	SameHalf      stats.Counter
	SameFU        stats.Counter

	// Detected accumulates fault-detection events (store mismatches, LVQ
	// address mismatches).
	Detected []*Mismatch

	// RVQ, when non-nil, is the SRTR register value queue: every retired
	// leading-copy destination result is checked against the trailing
	// copy's before either commits past a checkpoint boundary. Nil in all
	// non-SRTR modes.
	RVQ *RVQ

	// Protect, when non-nil, is the adaptive-redundancy protection table:
	// Protect[pc] reports whether the instruction at pc runs inside the
	// sphere of replication (tagged, replicated, compared). Instructions
	// outside run untagged: no LVQ/comparator traffic, no detection. Built
	// once from the static vulnerability profile, so both copies always
	// agree — tag sequences stay dense and identical.
	Protect []bool //rmtsnap:skip — static policy table fixed at construction

	// LeadStoresRetired counts leading-copy stores handed to the
	// comparator; StoresVerified counts those the trailing copy has since
	// matched. Their difference bounds the unverified-store window that
	// SRTR checkpoint validation must wait out.
	LeadStoresRetired uint64
	StoresVerified    uint64
}

// NewPair builds the queues for one redundant pair. lvqSize and lpqSize are
// entry counts; cmpLatency is the store comparison latency.
func NewPair(logical int, lat Latencies, lvqSize, lpqSize int) *Pair {
	lpq := NewLPQ(lpqSize)
	return &Pair{
		LogicalID: logical,
		Lat:       lat,
		LVQ:       NewLVQ(lvqSize),
		LPQ:       lpq,
		Agg:       NewAggregator(lpq),
		Cmp:       NewStoreComparator(lat.Compare),
	}
}

// NextLeadLoadTag returns the correlation tag for the leading copy's next
// load. Tags start at 1 so 0 can mean "not a load".
func (p *Pair) NextLeadLoadTag() uint64 {
	p.leadLoadTag++
	return p.leadLoadTag
}

// NextTrailLoadTag returns the correlation tag for the trailing copy's next
// load.
func (p *Pair) NextTrailLoadTag() uint64 {
	p.trailLoadTag++
	return p.trailLoadTag
}

// NextLeadStoreTag returns the correlation tag for the leading copy's next
// store.
func (p *Pair) NextLeadStoreTag() uint64 {
	p.leadStoreTag++
	return p.leadStoreTag
}

// NextTrailStoreTag returns the correlation tag for the trailing copy's next
// store.
func (p *Pair) NextTrailStoreTag() uint64 {
	p.trailStoreTag++
	return p.trailStoreTag
}

// ObserveSpaceRedundancy records one corresponding instruction pair's
// resource assignment for the preferential-space-redundancy statistics.
func (p *Pair) ObserveSpaceRedundancy(leadUpper, trailUpper bool, leadFU, trailFU int) {
	p.PairsObserved.Inc()
	if leadUpper == trailUpper {
		p.SameHalf.Inc()
	}
	if leadFU == trailFU {
		p.SameFU.Inc()
	}
}

// SameHalfFrac returns the fraction of observed pairs that shared an
// issue-queue half.
func (p *Pair) SameHalfFrac() float64 {
	if p.PairsObserved == 0 {
		return 0
	}
	return float64(p.SameHalf) / float64(p.PairsObserved)
}

// SameFUFrac returns the fraction of observed pairs that shared a
// functional unit.
func (p *Pair) SameFUFrac() float64 {
	if p.PairsObserved == 0 {
		return 0
	}
	return float64(p.SameFU) / float64(p.PairsObserved)
}

// Gated reports whether the pair runs with an adaptive protection table
// (some instructions outside the sphere of replication).
func (p *Pair) Gated() bool { return p.Protect != nil }

// ProtectedPC reports whether the instruction at pc is inside the sphere
// of replication. Without a protection table everything is protected;
// out-of-range pcs (trap handlers, tolerant out-of-image fetches) stay
// protected so the gate only ever narrows coverage at analysed sites.
func (p *Pair) ProtectedPC(pc uint64) bool {
	if p.Protect == nil || pc >= uint64(len(p.Protect)) {
		return true
	}
	return p.Protect[pc]
}

// DebugCounters returns the four correlation-tag counters (diagnostics).
func (p *Pair) DebugCounters() (ll, tl, ls, ts uint64) {
	return p.leadLoadTag, p.trailLoadTag, p.leadStoreTag, p.trailStoreTag
}
