package rmt

import (
	"repro/internal/snap"
	"repro/internal/stats"
)

// RVQEntry is one retired leading-copy register result waiting for its
// trailing-copy counterpart.
type RVQEntry struct {
	// PC is the instruction address of the producing instruction.
	PC uint64
	// Val is the destination value the leading copy committed.
	Val uint64
	// ReadyAt is the cycle the entry becomes visible to the trailing
	// copy's retire stage (leading retirement + LVQ forwarding latency).
	ReadyAt uint64
}

// RVQ is the register value queue of the SRTR organisation (Vijaykumar et
// al., DSN 2002): the leading copy enqueues every retired destination
// result in program order, and the trailing copy compares each of its own
// retirements against the head entry before committing. A mismatch is a
// detection *before* either copy's faulty value can reach a checkpoint —
// the property that makes trailing-validated checkpoints safe to roll back
// to. It is a strict FIFO: both copies retire the same dynamic instruction
// stream, so the Nth result of each corresponds.
type RVQ struct {
	entries []RVQEntry
	head    int // index of the oldest entry
	n       int // occupancy

	Pushes     stats.Counter
	FullStalls stats.Counter
	Waits      stats.Counter
	Mismatches stats.Counter
}

// NewRVQ returns an empty register value queue with the given capacity.
func NewRVQ(size int) *RVQ {
	return &RVQ{entries: make([]RVQEntry, size)}
}

// Full reports whether the queue has no free slot (the leading copy must
// stall retirement).
func (q *RVQ) Full() bool { return q.n == len(q.entries) }

// Len returns the current occupancy.
func (q *RVQ) Len() int { return q.n }

// Push enqueues a retired leading-copy result.
func (q *RVQ) Push(pc, val, readyAt uint64) {
	if q.Full() {
		panic("rmt: RVQ overflow (leading retire must stall on Full)")
	}
	q.entries[(q.head+q.n)%len(q.entries)] = RVQEntry{PC: pc, Val: val, ReadyAt: readyAt}
	q.n++
	q.Pushes.Inc()
}

// Front returns the oldest entry, or nil if the queue is empty or the
// entry is not yet visible at cycle now (forwarding latency).
func (q *RVQ) Front(now uint64) *RVQEntry {
	if q.n == 0 {
		return nil
	}
	e := &q.entries[q.head]
	if e.ReadyAt > now {
		return nil
	}
	return e
}

// Pop removes the oldest entry.
func (q *RVQ) Pop() {
	if q.n == 0 {
		panic("rmt: RVQ underflow")
	}
	q.head = (q.head + 1) % len(q.entries)
	q.n--
}

// SnapshotTo writes the ring slot-for-slot plus head/occupancy and the
// statistics counters.
func (q *RVQ) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(q.entries)))
	for _, e := range q.entries {
		w.U64(e.PC)
		w.U64(e.Val)
		w.U64(e.ReadyAt)
	}
	w.Int(q.head)
	w.Int(q.n)
	w.U64(q.Pushes.Value())
	w.U64(q.FullStalls.Value())
	w.U64(q.Waits.Value())
	w.U64(q.Mismatches.Value())
}

// RestoreFrom reads state written by SnapshotTo into an RVQ of the same
// capacity.
func (q *RVQ) RestoreFrom(r *snap.Reader) {
	if int(r.U64()) != len(q.entries) {
		r.Failf("RVQ capacity mismatch")
		return
	}
	for i := range q.entries {
		q.entries[i] = RVQEntry{PC: r.U64(), Val: r.U64(), ReadyAt: r.U64()}
	}
	q.head = r.Int()
	q.n = r.Int()
	q.Pushes = stats.Counter(r.U64())
	q.FullStalls = stats.Counter(r.U64())
	q.Waits = stats.Counter(r.U64())
	q.Mismatches = stats.Counter(r.U64())
}
