package rmt

import (
	"repro/internal/snap"
	"repro/internal/stats"
)

// Snapshot support for the redundant-pair structures. Slot positions are
// behavior here — LVQ.Push fills the first free slot, the store comparator
// grows to a high-water mark and reuses slots — so every array is restored
// slot-for-slot at its snapshotted length, not repacked.

func writeChunk(w *snap.Writer, c *Chunk) {
	w.U64(c.StartPC)
	w.Int(c.Count)
	for _, b := range c.UpperHalf {
		w.Bool(b)
	}
	for _, f := range c.FUs {
		w.U64(uint64(f))
	}
	w.U64(c.ReadyAt)
	for _, t := range c.LoadTags {
		w.U64(t)
	}
	for _, t := range c.StoreTags {
		w.U64(t)
	}
}

func readChunk(r *snap.Reader, c *Chunk) {
	c.StartPC = r.U64()
	c.Count = r.Int()
	for i := range c.UpperHalf {
		c.UpperHalf[i] = r.Bool()
	}
	for i := range c.FUs {
		c.FUs[i] = uint8(r.U64())
	}
	c.ReadyAt = r.U64()
	for i := range c.LoadTags {
		c.LoadTags[i] = r.U64()
	}
	for i := range c.StoreTags {
		c.StoreTags[i] = r.U64()
	}
}

func writeStoreRecords(w *snap.Writer, slots []StoreRecord) {
	w.U64(uint64(len(slots)))
	for _, s := range slots {
		w.U64(s.Tag)
		w.U64(s.Addr)
		w.Int(s.Size)
		w.U64(s.Value)
		w.U64(s.ReadyAt)
	}
}

func readStoreRecords(r *snap.Reader) []StoreRecord {
	n := r.Count(40)
	if n == 0 {
		return nil
	}
	slots := make([]StoreRecord, n)
	for i := range slots {
		slots[i] = StoreRecord{
			Tag:     r.U64(),
			Addr:    r.U64(),
			Size:    r.Int(),
			Value:   r.U64(),
			ReadyAt: r.U64(),
		}
	}
	return slots
}

// SnapshotTo writes the LVQ's slot array (slot-for-slot) and counters.
func (q *LVQ) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(q.entries)))
	for _, e := range q.entries {
		w.U64(e.Tag)
		w.U64(e.Addr)
		w.Int(e.Size)
		w.U64(e.Value)
		w.U64(e.ReadyAt)
	}
	w.Int(q.n)
	w.U64(q.lastPushed)
	w.U64(q.Pushes.Value())
	w.U64(q.FullStalls.Value())
	w.U64(q.Waits.Value())
	w.U64(q.AddrMismatches.Value())
}

// RestoreFrom reads state written by SnapshotTo into an LVQ of the same
// capacity.
func (q *LVQ) RestoreFrom(r *snap.Reader) {
	if int(r.U64()) != len(q.entries) {
		r.Failf("LVQ capacity mismatch")
		return
	}
	for i := range q.entries {
		q.entries[i] = LVQEntry{
			Tag:     r.U64(),
			Addr:    r.U64(),
			Size:    r.Int(),
			Value:   r.U64(),
			ReadyAt: r.U64(),
		}
	}
	q.n = r.Int()
	q.lastPushed = r.U64()
	q.Pushes = stats.Counter(r.U64())
	q.FullStalls = stats.Counter(r.U64())
	q.Waits = stats.Counter(r.U64())
	q.AddrMismatches = stats.Counter(r.U64())
}

// SnapshotTo writes the LPQ ring contents and head/tail state.
func (q *LPQ) SnapshotTo(w *snap.Writer) {
	w.Int(q.capacity)
	for i := range q.buf {
		writeChunk(w, &q.buf[i])
	}
	w.Int(q.head)
	w.Int(q.active)
	w.Int(q.tail)
	w.Int(q.n)
	w.U64(q.Pushes.Value())
	w.U64(q.Rollbacks.Value())
	w.U64(q.FullStalls.Value())
}

// RestoreFrom reads state written by SnapshotTo into an LPQ of the same
// capacity.
func (q *LPQ) RestoreFrom(r *snap.Reader) {
	if r.Int() != q.capacity {
		r.Failf("LPQ capacity mismatch")
		return
	}
	for i := range q.buf {
		readChunk(r, &q.buf[i])
	}
	q.head = r.Int()
	q.active = r.Int()
	q.tail = r.Int()
	q.n = r.Int()
	q.Pushes = stats.Counter(r.U64())
	q.Rollbacks = stats.Counter(r.U64())
	q.FullStalls = stats.Counter(r.U64())
}

// SnapshotTo writes the aggregator's in-progress chunk. The LPQ link is
// wiring and stays with the rebuilt machine.
func (a *Aggregator) SnapshotTo(w *snap.Writer) {
	writeChunk(w, &a.cur)
	w.Bool(a.started)
	w.U64(a.nextPC)
	w.U64(a.ForcedTerminations.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (a *Aggregator) RestoreFrom(r *snap.Reader) {
	readChunk(r, &a.cur)
	a.started = r.Bool()
	a.nextPC = r.U64()
	a.ForcedTerminations = stats.Counter(r.U64())
}

// SnapshotTo writes both comparator sides slot-for-slot (the arrays have
// grown to their high-water marks; repacking would change future slot
// assignment) and the counters.
func (c *StoreComparator) SnapshotTo(w *snap.Writer) {
	writeStoreRecords(w, c.lead)
	writeStoreRecords(w, c.trail)
	w.Int(c.nLead)
	w.Int(c.nTrail)
	w.U64(c.Comparisons.Value())
	w.U64(c.Mismatches.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (c *StoreComparator) RestoreFrom(r *snap.Reader) {
	c.lead = readStoreRecords(r)
	c.trail = readStoreRecords(r)
	c.nLead = r.Int()
	c.nTrail = r.Int()
	c.Comparisons = stats.Counter(r.U64())
	c.Mismatches = stats.Counter(r.U64())
}

// SnapshotTo writes the pair's mutable coupling state: tag counters, the
// interrupt replication schedule, detections, statistics, and the four
// owned queue structures. Identity and latency fields are configuration.
func (p *Pair) SnapshotTo(w *snap.Writer) {
	w.U64(p.LeadCommitted)
	w.U64(uint64(len(p.InterruptSchedule)))
	for _, v := range p.InterruptSchedule {
		w.U64(v)
	}
	w.Int(p.TrailInterruptIdx)
	w.U64(p.leadLoadTag)
	w.U64(p.trailLoadTag)
	w.U64(p.leadStoreTag)
	w.U64(p.trailStoreTag)
	w.U64(p.PairsObserved.Value())
	w.U64(p.SameHalf.Value())
	w.U64(p.SameFU.Value())
	w.U64(uint64(len(p.Detected)))
	for _, m := range p.Detected {
		w.U64(m.Tag)
		w.U64(m.LeadAddr)
		w.U64(m.TrailAddr)
		w.U64(m.LeadValue)
		w.U64(m.TrailValue)
	}
	w.U64(p.LeadStoresRetired)
	w.U64(p.StoresVerified)
	p.LVQ.SnapshotTo(w)
	p.LPQ.SnapshotTo(w)
	p.Agg.SnapshotTo(w)
	p.Cmp.SnapshotTo(w)
	if p.RVQ != nil {
		p.RVQ.SnapshotTo(w)
	}
}

// RestoreFrom reads state written by SnapshotTo into an identically
// configured pair.
func (p *Pair) RestoreFrom(r *snap.Reader) {
	p.LeadCommitted = r.U64()
	n := r.Count(8)
	p.InterruptSchedule = p.InterruptSchedule[:0]
	for i := 0; i < n; i++ {
		p.InterruptSchedule = append(p.InterruptSchedule, r.U64())
	}
	p.TrailInterruptIdx = r.Int()
	p.leadLoadTag = r.U64()
	p.trailLoadTag = r.U64()
	p.leadStoreTag = r.U64()
	p.trailStoreTag = r.U64()
	p.PairsObserved = stats.Counter(r.U64())
	p.SameHalf = stats.Counter(r.U64())
	p.SameFU = stats.Counter(r.U64())
	nd := r.Count(40)
	p.Detected = p.Detected[:0]
	for i := 0; i < nd; i++ {
		p.Detected = append(p.Detected, &Mismatch{
			Tag:      r.U64(),
			LeadAddr: r.U64(), TrailAddr: r.U64(),
			LeadValue: r.U64(), TrailValue: r.U64(),
		})
	}
	p.LeadStoresRetired = r.U64()
	p.StoresVerified = r.U64()
	p.LVQ.RestoreFrom(r)
	p.LPQ.RestoreFrom(r)
	p.Agg.RestoreFrom(r)
	p.Cmp.RestoreFrom(r)
	if p.RVQ != nil {
		p.RVQ.RestoreFrom(r)
	}
}
