package sim

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func TestBuildRejectsEmptyAndUnknown(t *testing.T) {
	if _, err := Build(Spec{Mode: ModeBase, Config: pipeline.DefaultConfig()}); err == nil {
		t.Error("empty program list accepted")
	}
	_, err := Build(Spec{Mode: ModeBase, Programs: []string{"nonesuch"}, Config: pipeline.DefaultConfig()})
	if err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("unknown kernel error = %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeBase: "base", ModeBase2: "base2", ModeSRT: "srt",
		ModeLockstep: "lockstep", ModeCRT: "crt",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

// TestCRTFourProgramTopology checks Figure 5's cross-coupling generalised to
// four programs: two leading threads per core, trailing threads on the
// opposite core, and a shared L2.
func TestCRTFourProgramTopology(t *testing.T) {
	m, err := Build(Spec{
		Mode:     ModeCRT,
		Programs: []string{"gcc", "go", "ijpeg", "swim"},
		Budget:   3000, Warmup: 1000,
		Config: pipeline.DefaultConfig(),
		PSR:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cores) != 2 {
		t.Fatalf("cores = %d", len(m.Cores))
	}
	if m.Cores[0].Hierarchy().L2 != m.Cores[1].Hierarchy().L2 {
		t.Error("CRT cores must share the L2")
	}
	perCore := map[int]int{}
	for _, p := range m.Pairs {
		if p.LeadCore == p.TrailCore {
			t.Errorf("pair %d not cross-core", p.LogicalID)
		}
		perCore[p.LeadCore]++
	}
	if perCore[0] != 2 || perCore[1] != 2 {
		t.Errorf("leading threads per core = %v, want 2+2", perCore)
	}
	for _, co := range m.Cores {
		if n := len(co.Contexts()); n != 4 {
			t.Errorf("core has %d contexts, want 4 (2 leading + 2 trailing)", n)
		}
	}
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, ipc := range rs.LogicalIPC {
		if ipc <= 0.01 {
			t.Errorf("program %d IPC %.3f", i, ipc)
		}
	}
}

// TestRunsAreDeterministic: two identical builds produce identical cycle
// counts and identical per-thread statistics — the property every recorded
// experiment depends on.
func TestRunsAreDeterministic(t *testing.T) {
	spec := Spec{
		Mode: ModeSRT, Programs: []string{"wave5"},
		Budget: 5000, Warmup: 2000,
		Config: pipeline.DefaultConfig(), PSR: true,
	}
	run := func() (uint64, uint64, float64) {
		m, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs.Cycles, m.Pairs[0].Cmp.Comparisons.Value(), rs.LogicalIPC[0]
	}
	c1, n1, i1 := run()
	c2, n2, i2 := run()
	if c1 != c2 || n1 != n2 || i1 != i2 {
		t.Errorf("non-deterministic: cycles %d/%d comparisons %d/%d ipc %v/%v",
			c1, c2, n1, n2, i1, i2)
	}
}

// TestWarmupImprovesMeasuredIPC: measuring after warmup must not be slower
// than measuring cold for a cache-warming kernel.
func TestWarmupImprovesMeasuredIPC(t *testing.T) {
	ipc := func(warmup uint64) float64 {
		m, err := Build(Spec{
			Mode: ModeBase, Programs: []string{"tomcatv"},
			Budget: 8000, Warmup: warmup, Config: pipeline.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs.LogicalIPC[0]
	}
	cold := ipc(0)
	warm := ipc(40000)
	if warm < cold {
		t.Errorf("warm IPC %.3f < cold IPC %.3f", warm, cold)
	}
}

// TestBaseIPCDeduplicates: asking for the same program twice runs it once.
func TestBaseIPCDeduplicates(t *testing.T) {
	out, err := BaseIPC(pipeline.DefaultConfig(), 1000, 2000, "go", "go", "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("map size = %d, want 2", len(out))
	}
	for k, v := range out {
		if v <= 0 {
			t.Errorf("%s IPC = %v", k, v)
		}
	}
}

// TestLockstepCheckerSlowsLongRuns: Lock8 must cost cycles vs Lock0 at the
// sim level too (vortex misses a lot).
func TestLockstepCheckerCost(t *testing.T) {
	cycles := func(checker uint64) uint64 {
		m, err := Build(Spec{
			Mode: ModeLockstep, Programs: []string{"vortex"},
			Budget: 6000, Warmup: 2000, CheckerLatency: checker,
			Config: pipeline.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs.Cycles
	}
	if l0, l8 := cycles(0), cycles(8); l8 <= l0 {
		t.Errorf("Lock8 %d cycles <= Lock0 %d", l8, l0)
	}
}
