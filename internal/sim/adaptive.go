package sim

import (
	"crypto/sha256"

	"repro/internal/analysis"
	"repro/internal/progen"
	"repro/internal/snap"
	"repro/internal/vm"
)

// adaptiveTable derives the per-PC protection table for ModeAdaptive from
// the program's static vulnerability profile: an instruction is protected
// (inside the sphere of replication) iff its destination site is not
// provably masked and its live-in register count, normalised by the
// program's maximum, reaches the threshold θ. θ <= 0 returns a nil table,
// which protects everything — bit-identical to plain SRT, the anchor
// point of the coverage/slowdown frontier.
func adaptiveTable(name string, threshold float64) ([]bool, error) {
	if threshold <= 0 {
		return nil, nil
	}
	prog, err := progen.Build(name)
	if err != nil {
		return nil, err
	}
	prof, err := analysis.AnalyzeProgram(prog)
	if err != nil {
		return nil, err
	}
	maxLive := 1
	for _, v := range prof.LiveIn {
		if v > maxLive {
			maxLive = v
		}
	}
	tbl := make([]bool, len(prog.Code))
	for pc := range tbl {
		frac := float64(prof.LiveIn[pc]) / float64(maxLive)
		tbl[pc] = !prof.DestMasked(pc) && frac >= threshold
	}
	return tbl, nil
}

// ArchDigest hashes the machine's committed architectural outcome: per
// logical program the measured copy's halt/trap disposition, each distinct
// committed memory image, and each pseudo-device's state. Registers are
// deliberately excluded — a flip confined to a register that never reaches
// committed memory or a device is not architecturally observable, which is
// exactly the masked/SDC boundary the adaptive campaigns classify against.
func (m *Machine) ArchDigest() [32]byte {
	// NewWriterSize, not NewWriter: the writer here is a canonical byte
	// encoder feeding a hash, not a snapshot entry point — ArchDigest
	// deliberately covers only the architecturally observable subset, so
	// it must stay outside the snapcomplete round-trip contract.
	w := snap.NewWriterSize(1 << 16)
	seen := make(map[*vm.Memory]bool, len(m.Leads))
	for _, lead := range m.Leads {
		w.Bool(lead.Arch.Halted)
		w.Bool(lead.Arch.Trapped)
		mem := lead.Arch.Mem.Backing()
		if !seen[mem] {
			seen[mem] = true
			mem.SnapshotTo(w)
		}
	}
	for _, dev := range m.Devices {
		dev.SnapshotTo(w)
	}
	return sha256.Sum256(w.Finish())
}
