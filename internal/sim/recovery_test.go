package sim

import (
	"testing"

	"repro/internal/pipeline"
)

// TestSRTRFaultFreeRuns checks the recovery organisation completes a
// fault-free run with zero recoveries: the segmented checkpoint loop must
// be invisible when nothing goes wrong.
func TestSRTRFaultFreeRuns(t *testing.T) {
	m, err := Build(Spec{
		Mode: ModeSRTR, Programs: []string{"gcc"},
		Budget: 3000, Warmup: 1000,
		Config: pipeline.DefaultConfig(), PSR: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs[0].RVQ == nil {
		t.Fatal("SRTR machine built without an RVQ")
	}
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if m.Recoveries != 0 || m.RecoveryCycles != 0 {
		t.Errorf("fault-free run recovered: %d rollbacks, %d cycles", m.Recoveries, m.RecoveryCycles)
	}
	if got := m.Pairs[0].RVQ.Mismatches.Value(); got != 0 {
		t.Errorf("fault-free RVQ mismatches = %d", got)
	}
	if m.Pairs[0].RVQ.Pushes.Value() == 0 {
		t.Error("RVQ saw no traffic")
	}
}

// TestSRTRFaultFreeMatchesSRTArch checks the two organisations commit the
// same architectural outcome: the RVQ changes timing, never values.
func TestSRTRFaultFreeMatchesSRTArch(t *testing.T) {
	digest := func(mode Mode) [32]byte {
		m, err := Build(Spec{
			Mode: mode, Programs: []string{"li"},
			Budget: 2000, Warmup: 500,
			Config: pipeline.DefaultConfig(), PSR: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.ArchDigest()
	}
	if digest(ModeSRT) != digest(ModeSRTR) {
		t.Error("SRTR fault-free architectural state diverges from SRT")
	}
}

// TestAdaptiveZeroThresholdIsSRT checks θ = 0 disables gating entirely:
// the machine must be cycle-identical to plain SRT, anchoring the
// coverage/slowdown frontier at the SRT point.
func TestAdaptiveZeroThresholdIsSRT(t *testing.T) {
	run := func(mode Mode, theta float64) uint64 {
		m, err := Build(Spec{
			Mode: mode, Programs: []string{"compress"},
			Budget: 2000, Warmup: 500,
			Config: pipeline.DefaultConfig(), PSR: true,
			AdaptiveThreshold: theta,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rs.Cycles
	}
	if srt, ad := run(ModeSRT, 0), run(ModeAdaptive, 0); srt != ad {
		t.Errorf("adaptive θ=0 cycles = %d, SRT = %d", ad, srt)
	}
}

// TestAdaptiveGatingRuns checks a gated machine completes, actually
// excludes some instructions from the sphere, and commits the same
// architectural outcome as SRT (fault-free partial redundancy changes
// protection, not semantics).
func TestAdaptiveGatingRuns(t *testing.T) {
	srt, err := Build(Spec{
		Mode: ModeSRT, Programs: []string{"gcc"},
		Budget: 2000, Warmup: 500,
		Config: pipeline.DefaultConfig(), PSR: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srt.Run(); err != nil {
		t.Fatal(err)
	}
	m, err := Build(Spec{
		Mode: ModeAdaptive, Programs: []string{"gcc"},
		Budget: 2000, Warmup: 500,
		Config: pipeline.DefaultConfig(), PSR: true,
		AdaptiveThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair := m.Pairs[0]
	if !pair.Gated() {
		t.Fatal("θ=0.5 built an ungated pair")
	}
	unprotected := 0
	for _, p := range pair.Protect {
		if !p {
			unprotected++
		}
	}
	if unprotected == 0 {
		t.Fatal("θ=0.5 protects every pc; gating untested")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if srt.ArchDigest() != m.ArchDigest() {
		t.Error("adaptive fault-free architectural state diverges from SRT")
	}
}

// TestSRTRCheckpointIntervalSweep checks the recovery loop is stable
// across checkpoint intervals, including ones that do not divide the
// fault engine's 1024-cycle grid.
func TestSRTRCheckpointIntervalSweep(t *testing.T) {
	for _, interval := range []uint64{256, 512, 1024} {
		m, err := Build(Spec{
			Mode: ModeSRTR, Programs: []string{"compress"},
			Budget: 1500, Warmup: 500,
			Config: pipeline.DefaultConfig(), PSR: true,
			CheckpointInterval: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Errorf("interval %d: %v", interval, err)
		}
	}
}
