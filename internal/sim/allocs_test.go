package sim

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/program"
)

// TestPoolDisabledIsCycleIdentical diffs full simulations with instruction
// recycling on and off, in every redundancy mode: the pool is pure
// mechanics, so cycle counts and logical IPC must match exactly, and the
// pooled machine's architectural state must still match a functional replay
// (the metamorphic oracle).
func TestPoolDisabledIsCycleIdentical(t *testing.T) {
	cases := []struct {
		mode  Mode
		progs []string
	}{
		{ModeBase, []string{"gcc"}},
		{ModeSRT, []string{"gcc"}},
		{ModeCRT, []string{"gcc", "ijpeg"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.mode.String(), func(t *testing.T) {
			t.Parallel()
			run := func(disablePool bool) *Machine {
				cfg := pipeline.DefaultConfig()
				cfg.DisableInstPool = disablePool
				m, err := Build(Spec{
					Mode:     tc.mode,
					Programs: tc.progs,
					Budget:   1500,
					Warmup:   500,
					Config:   cfg,
					PSR:      true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
				return m
			}
			pooled, unpooled := run(false), run(true)
			if pooled.Cycles != unpooled.Cycles {
				t.Errorf("cycles: pooled %d, unpooled %d", pooled.Cycles, unpooled.Cycles)
			}
			for i := range pooled.Leads {
				p, u := pooled.Leads[i], unpooled.Leads[i]
				if p.Committed() != u.Committed() {
					t.Errorf("lead %d committed: pooled %d, unpooled %d", i, p.Committed(), u.Committed())
				}
				if p.Arch.Seq != u.Arch.Seq {
					t.Errorf("lead %d seq: pooled %d, unpooled %d", i, p.Arch.Seq, u.Arch.Seq)
				}
				checkCopyAgainstReference(t, tc.mode.String()+"/pooled", tc.progs[i], p)
			}
			checkPairsClean(t, tc.mode.String()+"/pooled", pooled)
		})
	}
}

// TestSteadyStateAllocs is the tentpole's gate: once the pipeline is warm
// (pool filled, ring buffers and comparator slots at their high-water
// marks), simulating a cycle must allocate nothing, in every machine
// organisation.
func TestSteadyStateAllocs(t *testing.T) {
	if program.MustBuild("gcc") == nil {
		t.Fatal("gcc kernel missing")
	}
	cases := []struct {
		name  string
		mode  Mode
		progs []string
	}{
		{"base", ModeBase, []string{"gcc"}},
		{"srt", ModeSRT, []string{"gcc"}},
		{"crt", ModeCRT, []string{"gcc", "ijpeg"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, err := Build(Spec{
				Mode:     tc.mode,
				Programs: tc.progs,
				Budget:   50_000_000, // far beyond the measured window: fetch never halts
				Config:   pipeline.DefaultConfig(),
				PSR:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Warm up: fill the pool, touch the kernels' working-set pages,
			// and let every slot array reach its high-water mark.
			lead := m.Leads[0]
			for lead.Committed() < 30_000 {
				for _, co := range m.Cores {
					co.Step()
				}
			}
			allocs := testing.AllocsPerRun(3000, func() {
				for _, co := range m.Cores {
					co.Step()
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %.2f allocations per simulated cycle after warmup, want 0", tc.name, allocs)
			}
		})
	}
}
