package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/rmt"
	"repro/internal/vm"
)

// ioProgram polls a device register, accumulates, and writes results back
// to the device and to memory — the uncached-I/O pattern the paper defers
// to future work (§2.1/§2.2) and this implementation provides.
func ioProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("iobench")
	b.Ldi(isa.R1, iters)
	b.Ldi(isa.R20, 0x8000) // device register block
	b.Ldi(isa.R21, 0x4000) // memory scratch
	b.Label("top")
	b.Ldio(isa.R2, isa.R20, 0) // poll device (side-effecting!)
	b.Add(isa.R3, isa.R3, isa.R2)
	b.Andi(isa.R3, isa.R3, 0xffffff)
	b.Stq(isa.R3, isa.R21, 0)  // regular cached store
	b.Stio(isa.R3, isa.R20, 8) // device command write
	b.Addi(isa.R21, isa.R21, 8)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, "top")
	b.Halt()
	return b.MustFinish()
}

// buildIOPair hand-builds an SRT machine around a custom program (the
// registry-driven Build only knows the workload suite).
func buildIOPair(t *testing.T, prog *isa.Program) (*pipeline.Machine, *pipeline.Context, *pipeline.Context, *rmt.Pair, *vm.PseudoDevice) {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	core := pipeline.NewCore(0, cfg, nil)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	lead := pipeline.NewContext(pipeline.RoleLeading, 0, vm.NewThread(0, prog, memImg), 1_000_000)
	trail := pipeline.NewContext(pipeline.RoleTrailing, 0, vm.NewThread(1, prog, memImg), 0)
	lead.PeerArch = trail.Arch
	trail.PeerArch = lead.Arch
	pair := rmt.NewPair(0, rmt.SRTLatencies(), cfg.LVQSize, cfg.LPQSize)
	pair.PreferentialSpaceRedundancy = true
	lead.Pair = pair
	trail.Pair = pair
	core.AddContext(lead)
	core.AddContext(trail)
	pair.LeadCore, pair.LeadTID = 0, lead.TID
	pair.TrailCore, pair.TrailTID = 0, trail.TID
	core.FinalizeQueues()

	dev := vm.NewPseudoDevice(42)
	wireIO(dev, pair, lead, trail)
	m := &pipeline.Machine{Cores: []*pipeline.Core{core}, Pairs: []*rmt.Pair{pair}}
	return m, lead, trail, pair, dev
}

// TestUncachedIOSingle: on a non-redundant machine, each LDIO reads the
// device once and each STIO is performed exactly once, in program order.
func TestUncachedIOSingle(t *testing.T) {
	prog := ioProgram(25)
	cfg := pipeline.DefaultConfig()
	core := pipeline.NewCore(0, cfg, nil)
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	ctx := pipeline.NewContext(pipeline.RoleSingle, 0, vm.NewThread(0, prog, memImg), 1_000_000)
	core.AddContext(ctx)
	core.FinalizeQueues()
	dev := vm.NewPseudoDevice(42)
	wireIO(dev, nil, ctx, nil)
	m := &pipeline.Machine{Cores: []*pipeline.Core{core}}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if dev.Reads != 25 {
		t.Errorf("device reads = %d, want 25 (exactly one per LDIO)", dev.Reads)
	}
	if len(dev.WriteLog) != 25 {
		t.Fatalf("device writes = %d, want 25 (exactly one per STIO)", len(dev.WriteLog))
	}
	for i, w := range dev.WriteLog {
		if w.Addr != 0x8008 {
			t.Errorf("write %d addr = %#x", i, w.Addr)
		}
	}
	// The device writes must match a functional re-run with its own device.
	ref := vm.NewPseudoDevice(42)
	memRef := vm.NewMemory()
	vm.Load(prog, memRef)
	th := vm.NewThread(9, prog, memRef)
	th.IORead = ref.Read
	var wantVals []uint64
	for !th.Halted {
		out := th.Step()
		if out.Instr.Op == isa.STIO {
			wantVals = append(wantVals, out.Value)
		}
	}
	for i := range wantVals {
		if dev.WriteLog[i].Val != wantVals[i] {
			t.Errorf("write %d = %#x, want %#x", i, dev.WriteLog[i].Val, wantVals[i])
		}
	}
}

// TestUncachedIOSRT: under SRT the device is read ONCE per dynamic LDIO
// (the trailing copy consumes the replicated value), device writes happen
// once after comparison, and a fault-free run records no detections.
func TestUncachedIOSRT(t *testing.T) {
	prog := ioProgram(25)
	m, lead, trail, pair, dev := buildIOPair(t, prog)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// Let the trailing copy finish.
	for i := 0; i < 50000 && !trail.Arch.Halted; i++ {
		m.Cores[0].Step()
	}
	if dev.Reads != 25 {
		t.Errorf("device reads = %d, want 25 (replication, not re-reading)", dev.Reads)
	}
	if len(dev.WriteLog) != 25 {
		t.Errorf("device writes = %d, want 25 (performed once, post-comparison)", len(dev.WriteLog))
	}
	if len(pair.Detected) != 0 {
		t.Errorf("fault-free I/O run recorded %d detections", len(pair.Detected))
	}
	// Both copies computed the same accumulator from the same device data.
	if lead.Arch.IntReg[isa.R3] != trail.Arch.IntReg[isa.R3] {
		t.Errorf("accumulators diverged: %#x vs %#x",
			lead.Arch.IntReg[isa.R3], trail.Arch.IntReg[isa.R3])
	}
	// Comparisons covered the STIOs as well as the cached stores.
	if pair.Cmp.Comparisons.Value() < 50 {
		t.Errorf("comparisons = %d, want >= 50 (25 cached + 25 uncached stores)",
			pair.Cmp.Comparisons.Value())
	}
}

// TestUncachedIOFaultDetected: corrupt the leading copy's device-read value;
// the copies' computations diverge and the store comparator catches it —
// the fault coverage that motivates replicating uncached loads.
func TestUncachedIOFaultDetected(t *testing.T) {
	prog := ioProgram(200)
	m, lead, _, pair, _ := buildIOPair(t, prog)
	m.StopOnDetection = true
	inner := lead.Arch.IORead
	n := 0
	lead.Arch.IORead = func(addr uint64) uint64 {
		v := inner(addr)
		n++
		if n == 40 {
			// Strike the value after replication capture would have been
			// correct: flip a bit on the leading copy's register side only.
			return v ^ 0x10
		}
		return v
	}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	_ = pair
	if len(m.Detections()) == 0 {
		t.Fatal("corrupted device read not detected")
	}
}
