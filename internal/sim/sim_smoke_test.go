package sim

import (
	"testing"

	"repro/internal/pipeline"
)

func smokeSpec(mode Mode, progs ...string) Spec {
	return Spec{
		Mode:     mode,
		Programs: progs,
		Budget:   5000,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	}
}

func runSmoke(t *testing.T, spec Spec) float64 {
	t.Helper()
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.LogicalIPC) != len(spec.Programs) {
		t.Fatalf("logical IPC count = %d, want %d", len(rs.LogicalIPC), len(spec.Programs))
	}
	for i, ipc := range rs.LogicalIPC {
		if ipc <= 0.05 || ipc > 8 {
			t.Fatalf("%v %s: implausible IPC %.3f (cycles=%d)", spec.Mode, spec.Programs[i], ipc, rs.Cycles)
		}
	}
	return rs.LogicalIPC[0]
}

func TestBaseSingleThreadRuns(t *testing.T) {
	runSmoke(t, smokeSpec(ModeBase, "gcc"))
}

func TestSRTSingleProgramRuns(t *testing.T) {
	runSmoke(t, smokeSpec(ModeSRT, "gcc"))
}

func TestSRTIsSlowerThanBase(t *testing.T) {
	base := runSmoke(t, smokeSpec(ModeBase, "gcc"))
	srt := runSmoke(t, smokeSpec(ModeSRT, "gcc"))
	if srt >= base {
		t.Errorf("SRT IPC %.3f >= base IPC %.3f; redundant execution should cost something", srt, base)
	}
}

func TestLockstepRuns(t *testing.T) {
	spec := smokeSpec(ModeLockstep, "swim")
	spec.CheckerLatency = 8
	runSmoke(t, spec)
}

func TestCRTSingleProgramRuns(t *testing.T) {
	runSmoke(t, smokeSpec(ModeCRT, "gcc"))
}

func TestCRTTwoProgramsCrossCoupled(t *testing.T) {
	m, err := Build(smokeSpec(ModeCRT, "gcc", "swim"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cores) != 2 {
		t.Fatalf("CRT should build 2 cores, got %d", len(m.Cores))
	}
	// Cross-coupling: each pair's leading and trailing cores must differ.
	for _, p := range m.Pairs {
		if p.LeadCore == p.TrailCore {
			t.Errorf("pair %d not cross-core: lead=%d trail=%d", p.LogicalID, p.LeadCore, p.TrailCore)
		}
	}
	if m.Pairs[0].LeadCore == m.Pairs[1].LeadCore {
		t.Error("two-program CRT should place the leading threads on different cores")
	}
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, ipc := range rs.LogicalIPC {
		if ipc <= 0.05 {
			t.Errorf("program %d IPC %.3f", i, ipc)
		}
	}
}

func TestBase2Runs(t *testing.T) {
	m, err := Build(smokeSpec(ModeBase2, "go"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Threads) != 2 {
		t.Fatalf("Base2 should run 2 hardware threads, got %d", len(rs.Threads))
	}
	if rs.LogicalIPC[0] <= 0.05 {
		t.Fatalf("IPC %.3f", rs.LogicalIPC[0])
	}
}

func TestSRTTwoLogicalThreads(t *testing.T) {
	m, err := Build(smokeSpec(ModeSRT, "gcc", "go"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m.Cores[0].Contexts()); n != 4 {
		t.Fatalf("two SRT pairs should use 4 hardware contexts, got %d", n)
	}
	for i, ipc := range rs.LogicalIPC {
		if ipc <= 0.02 {
			t.Errorf("program %d IPC %.3f", i, ipc)
		}
	}
}

// TestSRTComparesEveryStore checks that output comparison actually covers
// the store stream: comparisons happened and no mismatches were recorded in
// a fault-free run.
func TestSRTComparesEveryStore(t *testing.T) {
	m, err := Build(smokeSpec(ModeSRT, "compress"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	pair := m.Pairs[0]
	if pair.Cmp.Comparisons.Value() == 0 {
		t.Fatal("no store comparisons happened")
	}
	if pair.Cmp.Mismatches.Value() != 0 {
		t.Fatalf("%d mismatches in a fault-free run", pair.Cmp.Mismatches.Value())
	}
	if len(pair.Detected) != 0 {
		t.Fatalf("fault-free run recorded detections: %v", pair.Detected[0])
	}
}
