package sim

import (
	"strconv"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/rmt"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EnableTrace attaches a structured event log capturing every core's
// pipeline events (instruction spans, squashes, sphere-of-replication
// comparisons). cap bounds the stored event count (0 = default). Call
// before Run.
func (m *Machine) EnableTrace(cap int) *trace.EventLog {
	l := trace.NewEventLog(cap)
	m.Events = l
	for _, co := range m.Cores {
		co.Trace = l.CoreHook(co.ID)
	}
	return l
}

// EnableMetrics builds a metrics registry over every pipeline structure of
// the machine — per-thread frontend/cache/queue counters, per-core shared
// resources, and the RMT structures (LVQ, LPQ, store comparator, chunk
// aggregator) of each redundant pair — and installs a per-cycle probe
// sampling queue-occupancy histograms. Call before Run; snapshot any time.
func (m *Machine) EnableMetrics() *metrics.Registry {
	r := metrics.New()
	m.Metrics = r
	for _, co := range m.Cores {
		m.registerCore(r, co)
	}
	for _, p := range m.Pairs {
		m.registerPair(r, p)
	}
	return r
}

// occProbe samples one context's queue occupancies each cycle.
type occProbe struct {
	ctx               *pipeline.Context
	rob, sq, lq, rmbH *stats.Histogram
}

func (o *occProbe) sample() {
	rob, rmb, _, sq, lq := o.ctx.Occupancy()
	o.rob.Add(rob)
	o.rmbH.Add(rmb)
	o.sq.Add(sq)
	o.lq.Add(lq)
}

func (m *Machine) registerCore(r *metrics.Registry, co *pipeline.Core) {
	coreL := metrics.Labels{"core": strconv.Itoa(co.ID)}
	r.Counter("core.retired", coreL, func() uint64 { return co.Retired })
	r.Gauge("core.cycle", coreL, func() float64 { return float64(co.Cycle()) })
	for half := 0; half < 2; half++ {
		h := half
		l := metrics.Labels{"core": strconv.Itoa(co.ID), "half": strconv.Itoa(h)}
		r.Gauge("core.iq_used", l, func() float64 { return float64(co.IQUsed(h)) })
	}
	r.Gauge("core.inflight", coreL, func() float64 { return float64(co.InFlightCount()) })

	probes := make([]*occProbe, 0, len(co.Contexts()))
	for _, ctx := range co.Contexts() {
		m.registerContext(r, co, ctx)
		sqCap, lqCap := ctx.QueueCaps()
		p := &occProbe{
			ctx:  ctx,
			rob:  stats.NewHistogram(m.Spec.Config.InFlightCap + 1),
			rmbH: stats.NewHistogram(m.Spec.Config.RMBCap + 1),
			sq:   stats.NewHistogram(sqCap + 2),
			lq:   stats.NewHistogram(lqCap + 2),
		}
		probes = append(probes, p)
		l := ctxLabels(co, ctx)
		regOccHist(r, "ctx.rob_occupancy", l, p.rob)
		regOccHist(r, "ctx.rmb_occupancy", l, p.rmbH)
		regOccHist(r, "ctx.sq_occupancy", l, p.sq)
		regOccHist(r, "ctx.lq_occupancy", l, p.lq)
	}
	co.Probe = func() {
		for _, p := range probes {
			p.sample()
		}
	}
}

// regOccHist registers a histogram metric backed by a stats.Histogram.
func regOccHist(r *metrics.Registry, name string, l metrics.Labels, h *stats.Histogram) {
	r.Histogram(name, l, func() metrics.HistogramValue {
		return metrics.HistogramValue{Buckets: h.Buckets(), Total: h.Total(), Sum: h.Sum()}
	})
}

func ctxLabels(co *pipeline.Core, ctx *pipeline.Context) metrics.Labels {
	return metrics.Labels{
		"core": strconv.Itoa(co.ID),
		"tid":  strconv.Itoa(ctx.TID),
		"role": ctx.Role.String(),
		"prog": strconv.Itoa(ctx.ProgID),
	}
}

func (m *Machine) registerContext(r *metrics.Registry, co *pipeline.Core, ctx *pipeline.Context) {
	l := ctxLabels(co, ctx)
	c := ctx // capture
	counters := []struct {
		name string
		get  func() uint64
	}{
		{"ctx.committed", func() uint64 { return c.Stats.Committed.Value() }},
		{"ctx.loads", func() uint64 { return c.Stats.Loads.Value() }},
		{"ctx.stores", func() uint64 { return c.Stats.Stores.Value() }},
		{"ctx.branches", func() uint64 { return c.Stats.Branches.Value() }},
		{"ctx.branch_mispredicts", func() uint64 { return c.Stats.BranchMispredicts.Value() }},
		{"ctx.line_mispredicts", func() uint64 { return c.Stats.LineMispredicts.Value() }},
		{"ctx.line_fetches", func() uint64 { return c.Stats.LineFetches.Value() }},
		{"ctx.icache_misses", func() uint64 { return c.Stats.ICacheMisses.Value() }},
		{"ctx.dcache_misses", func() uint64 { return c.Stats.DCacheMisses.Value() }},
		{"ctx.sq_full_stalls", func() uint64 { return c.Stats.SQFullStalls.Value() }},
		{"ctx.iq_full_stalls", func() uint64 { return c.Stats.IQFullStalls.Value() }},
		{"ctx.lq_full_stalls", func() uint64 { return c.Stats.LQFullStalls.Value() }},
		{"ctx.lvq_waits", func() uint64 { return c.Stats.LVQWaits.Value() }},
		{"ctx.interrupts", func() uint64 { return c.Interrupts }},
	}
	for _, cn := range counters {
		r.Counter(cn.name, l, cn.get)
	}
	r.Gauge("ctx.store_lifetime_mean", l, func() float64 { return c.Stats.StoreLifetime.Value() })
}

func (m *Machine) registerPair(r *metrics.Registry, p *rmt.Pair) {
	l := metrics.Labels{"pair": strconv.Itoa(p.LogicalID)}
	r.Counter("lvq.pushes", l, func() uint64 { return p.LVQ.Pushes.Value() })
	r.Counter("lvq.waits", l, func() uint64 { return p.LVQ.Waits.Value() })
	r.Counter("lvq.full_stalls", l, func() uint64 { return p.LVQ.FullStalls.Value() })
	r.Counter("lvq.addr_mismatches", l, func() uint64 { return p.LVQ.AddrMismatches.Value() })
	r.Gauge("lvq.len", l, func() float64 { return float64(p.LVQ.Len()) })
	r.Counter("lpq.pushes", l, func() uint64 { return p.LPQ.Pushes.Value() })
	r.Counter("lpq.full_stalls", l, func() uint64 { return p.LPQ.FullStalls.Value() })
	r.Gauge("lpq.len", l, func() float64 { return float64(p.LPQ.Len()) })
	r.Counter("cmp.comparisons", l, func() uint64 { return p.Cmp.Comparisons.Value() })
	r.Counter("cmp.mismatches", l, func() uint64 { return p.Cmp.Mismatches.Value() })
	r.Counter("agg.forced_terminations", l, func() uint64 { return p.Agg.ForcedTerminations.Value() })
	r.Counter("pair.detected", l, func() uint64 { return uint64(len(p.Detected)) })
}
