package sim

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// buildObserved assembles a small SRT machine with the full observability
// layer attached and runs it to completion.
func buildObserved(t *testing.T) (*Machine, *metrics.Registry, *trace.EventLog) {
	t.Helper()
	m, err := Build(Spec{
		Mode:     ModeSRT,
		Programs: []string{"compress"},
		Budget:   2000,
		Warmup:   1000,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := m.EnableMetrics()
	log := m.EnableTrace(0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, reg, log
}

func TestMetricsCoverPipelineStructures(t *testing.T) {
	m, reg, _ := buildObserved(t)
	snap := reg.Snapshot(m.Cycles)

	leadLabels := metrics.Labels{"core": "0", "tid": "0", "role": "leading", "prog": "0"}
	if got, ok := snap.CounterValue("ctx.committed", leadLabels); !ok || got == 0 {
		t.Errorf("ctx.committed{leading} = %d, %v; want > 0", got, ok)
	}
	if got, ok := snap.CounterValue("cmp.comparisons", metrics.Labels{"pair": "0"}); !ok || got == 0 {
		t.Errorf("cmp.comparisons = %d, %v; want > 0", got, ok)
	}
	if got, ok := snap.CounterValue("cmp.mismatches", metrics.Labels{"pair": "0"}); !ok || got != 0 {
		t.Errorf("cmp.mismatches = %d, %v; want 0 in a fault-free run", got, ok)
	}
	if got, ok := snap.CounterValue("lvq.pushes", metrics.Labels{"pair": "0"}); !ok || got == 0 {
		t.Errorf("lvq.pushes = %d, %v; want > 0", got, ok)
	}
	// The per-cycle probe samples every context each cycle, so every
	// occupancy histogram holds exactly Cycles samples.
	v, ok := snap.Get("ctx.sq_occupancy", leadLabels)
	if !ok || v.Histogram == nil {
		t.Fatal("ctx.sq_occupancy{leading} missing")
	}
	if v.Histogram.Total != m.Cycles {
		t.Errorf("sq occupancy samples = %d, want cycles = %d", v.Histogram.Total, m.Cycles)
	}
}

func TestEventLogCapturesPipelineActivity(t *testing.T) {
	_, _, log := buildObserved(t)
	var instr, squash, compare, mismatches int
	for _, ev := range log.Events() {
		switch ev.Kind {
		case trace.KindInstr:
			instr++
			if ev.End < ev.Cycle {
				t.Fatalf("instruction span ends before it starts: %+v", ev)
			}
		case trace.KindSquash:
			squash++
		case trace.KindCompare:
			compare++
			if ev.Mismatch {
				mismatches++
			}
		}
	}
	if instr == 0 || squash == 0 || compare == 0 {
		t.Errorf("event mix instr=%d squash=%d compare=%d; want all > 0", instr, squash, compare)
	}
	if mismatches != 0 {
		t.Errorf("%d compare mismatches in a fault-free run", mismatches)
	}
}

func TestObservabilityArtifactsDeterministic(t *testing.T) {
	m1, reg1, log1 := buildObserved(t)
	m2, reg2, log2 := buildObserved(t)

	var ma, mb bytes.Buffer
	if err := reg1.Snapshot(m1.Cycles).WriteJSON(&ma); err != nil {
		t.Fatal(err)
	}
	if err := reg2.Snapshot(m2.Cycles).WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
		t.Error("metrics snapshots of identical runs differ")
	}

	var ta, tb bytes.Buffer
	if err := log1.WriteChromeJSON(&ta); err != nil {
		t.Fatal(err)
	}
	if err := log2.WriteChromeJSON(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("event traces of identical runs differ")
	}
}
