// Package sim assembles complete simulated machines for the paper's four
// target architectures (§6.3): the base SMT processor, SRT (redundant
// threads on one core), lockstepped cores (Lock0/Lock8), and CRT (redundant
// threads across the two cores of a CMP), and runs budgeted simulations.
package sim

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/rmt"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Mode selects the machine organisation.
type Mode int

// Machine organisations.
const (
	// ModeBase is the unprotected base SMT processor: one hardware thread
	// per logical program.
	ModeBase Mode = iota
	// ModeBase2 runs two independent copies of each program as separate
	// hardware threads with no input replication or output comparison
	// (Figure 6's "Base2" reference point).
	ModeBase2
	// ModeSRT runs each program as a leading/trailing redundant pair on
	// one core.
	ModeSRT
	// ModeLockstep models two cycle-synchronised cores with a central
	// checker. Because the two lockstepped cores are cycle-identical by
	// construction, the model simulates one core and charges the checker
	// interposition penalties (cache-miss path and store-exit path); see
	// DESIGN.md.
	ModeLockstep
	// ModeCRT runs leading and trailing copies on different cores of a
	// two-way CMP, cross-coupled for multiprogram workloads (Figure 5).
	ModeCRT
	// ModeSRTR extends SRT with recovery (after Vijaykumar et al.'s SRTR):
	// every retired register result is cross-checked through a register
	// value queue, machine state is checkpointed at a fixed cycle interval,
	// and a checkpoint becomes a valid rollback target once the trailing
	// copy has validated everything it captured. On detection the machine
	// rolls back and re-executes instead of halting.
	ModeSRTR
	// ModeAdaptive is SRT with partial redundancy: a static per-PC
	// protection table derived from the ACE/liveness vulnerability profile
	// gates which instructions enter the sphere of replication. Low-
	// vulnerability regions run untagged (no LVQ/comparator traffic — the
	// slack this buys is the point), trading detection coverage there.
	ModeAdaptive
)

func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeBase2:
		return "base2"
	case ModeSRT:
		return "srt"
	case ModeLockstep:
		return "lockstep"
	case ModeCRT:
		return "crt"
	case ModeSRTR:
		return "srtr"
	case ModeAdaptive:
		return "adaptive"
	}
	return "mode?"
}

// Modes returns every machine organisation, in declaration order. Seam
// exhaustiveness tests (cliflags, rmtd wire contract, fault matrix) range
// over this so a future mode cannot silently miss a layer.
func Modes() []Mode {
	return []Mode{ModeBase, ModeBase2, ModeSRT, ModeLockstep, ModeCRT, ModeSRTR, ModeAdaptive}
}

// Spec describes one simulation.
type Spec struct {
	Mode     Mode
	Programs []string
	// Budget is measured committed instructions per logical program (per
	// leading copy), not counting warmup.
	Budget uint64
	// Warmup is committed instructions executed before measurement starts
	// (caches and predictors warm; statistics reset), as in §6.2.
	Warmup uint64

	Config pipeline.Config

	// PSR enables preferential space redundancy (§4.5). The paper enables
	// it for all results after Figure 7.
	PSR bool
	// PerThreadSQ gives each hardware thread a private store queue (§4.2).
	PerThreadSQ bool
	// NoStoreComparison disables output comparison (Figure 6's SRT+nosc).
	NoStoreComparison bool
	// CheckerLatency is the lockstep checker delay (0 = Lock0, 8 = Lock8).
	CheckerLatency uint64
	// SlackFetch enables the original-SRT slack fetch policy (ablation).
	SlackFetch uint64

	// StopOnDetection ends the run at the first detected fault. In SRTR
	// mode a detection first triggers rollback; the run only stops on a
	// detection the machine cannot recover from.
	StopOnDetection bool

	// CheckpointInterval is the SRTR checkpoint capture period in cycles
	// (0 = 1024, the fault engine's snapshot grid). Checkpoints are taken
	// on absolute multiples of the interval so independently built and
	// mid-flight-restored machines capture at identical cycles.
	CheckpointInterval uint64
	// MaxRecoveries bounds rollbacks per run (0 = 8); past it, detections
	// behave as in SRT.
	MaxRecoveries int
	// AdaptiveThreshold is the ModeAdaptive protection cutoff θ in [0,1]:
	// an instruction is protected iff its normalised live-in register
	// count reaches θ and its destination is not provably masked. θ <= 0
	// protects everything (bit-identical to SRT).
	AdaptiveThreshold float64

	// MaxCycles caps the run (0 = derived from the budget).
	MaxCycles uint64

	// VM selects the functional engine's interpreter for every hardware
	// thread context. Dispatch is timing-invariant — outcomes are
	// byte-identical between variants — so it is deliberately not part of
	// the rmtd wire contract or its canonical cache keys.
	VM vm.Config
}

// Machine is an assembled simulation ready to run.
type Machine struct {
	*pipeline.Machine
	Spec Spec
	// Leads holds, per logical program, the measured copy's context.
	Leads []*pipeline.Context
	// Trails holds the trailing contexts (nil entries for non-redundant
	// modes).
	Trails []*pipeline.Context
	// Devices holds each logical program's memory-mapped pseudo-device
	// (uncached LDIO/STIO traffic), indexed like Leads.
	Devices []*vm.PseudoDevice

	// Metrics, when non-nil, is the observability registry built by
	// EnableMetrics.
	Metrics *metrics.Registry
	// Events, when non-nil, is the structured event log attached by
	// EnableTrace.
	Events *trace.EventLog

	// bridges holds each logical program's uncached-load replication bridge
	// (nil entries for non-redundant modes), indexed like Leads. Snapshots
	// capture its queued (addr, value) stream.
	bridges []*ioBridge

	// snapHint remembers the last snapshot's encoded size so the next one
	// preallocates its buffer instead of growing into it.
	snapHint int

	// Recoveries and RecoveryCycles account SRTR rollbacks: how many the
	// run performed and the total cycles re-executed (trigger cycle minus
	// restored checkpoint cycle, summed). Engine-level run accounting,
	// deliberately outside snapshots: a rolled-back machine is
	// byte-identical to the fault-free one, and these fields are the only
	// record that a recovery happened.
	Recoveries     int
	RecoveryCycles uint64
}

// Build assembles the machine described by spec.
func Build(spec Spec) (*Machine, error) {
	if len(spec.Programs) == 0 {
		return nil, fmt.Errorf("sim: no programs")
	}
	cfg := spec.Config
	cfg.PerThreadSQ = spec.PerThreadSQ
	cfg.NoStoreComparison = spec.NoStoreComparison
	cfg.SlackFetch = spec.SlackFetch
	if spec.Mode == ModeLockstep {
		cfg.Hier.CheckerMissPenalty = spec.CheckerLatency
		cfg.CheckerStorePenalty = spec.CheckerLatency
	}

	m := &Machine{
		Machine: &pipeline.Machine{StopOnDetection: spec.StopOnDetection},
		Spec:    spec,
	}

	switch spec.Mode {
	case ModeBase, ModeLockstep:
		core := pipeline.NewCore(0, cfg, nil)
		m.Cores = append(m.Cores, core)
		for i, name := range spec.Programs {
			ctx, err := newSingle(name, i, spec)
			if err != nil {
				return nil, err
			}
			core.AddContext(ctx)
			m.Leads = append(m.Leads, ctx)
			m.Trails = append(m.Trails, nil)
		}
		core.FinalizeQueues()

	case ModeBase2:
		core := pipeline.NewCore(0, cfg, nil)
		m.Cores = append(m.Cores, core)
		// Two independent copies per program, each with its own memory
		// image (no replication or comparison couples them).
		progID := 0
		for _, name := range spec.Programs {
			lead, err := newSingle(name, progID, spec)
			if err != nil {
				return nil, err
			}
			copy2, err := newSingle(name, progID+1, spec)
			if err != nil {
				return nil, err
			}
			progID += 2
			core.AddContext(lead)
			core.AddContext(copy2)
			m.Leads = append(m.Leads, lead)
			m.Trails = append(m.Trails, nil)
		}
		core.FinalizeQueues()

	case ModeSRT, ModeSRTR, ModeAdaptive:
		core := pipeline.NewCore(0, cfg, nil)
		m.Cores = append(m.Cores, core)
		for i, name := range spec.Programs {
			lead, trail, pair, err := newPair(name, i, spec, rmt.SRTLatencies(), cfg)
			if err != nil {
				return nil, err
			}
			switch spec.Mode {
			case ModeSRTR:
				pair.RVQ = rmt.NewRVQ(cfg.RVQSize)
			case ModeAdaptive:
				tbl, err := adaptiveTable(name, spec.AdaptiveThreshold)
				if err != nil {
					return nil, err
				}
				pair.Protect = tbl
			}
			core.AddContext(lead)
			core.AddContext(trail)
			bindPair(pair, 0, lead, 0, trail)
			m.Pairs = append(m.Pairs, pair)
			m.Leads = append(m.Leads, lead)
			m.Trails = append(m.Trails, trail)
		}
		core.FinalizeQueues()

	case ModeCRT:
		core0 := pipeline.NewCore(0, cfg, nil)
		core1 := pipeline.NewCore(1, cfg, core0.Hierarchy().L2)
		m.Cores = append(m.Cores, core0, core1)
		if err := buildCRT(m, spec, cfg, core0, core1); err != nil {
			return nil, err
		}
		core0.FinalizeQueues()
		core1.FinalizeQueues()

	default:
		return nil, fmt.Errorf("sim: unknown mode %v", spec.Mode)
	}
	// Attach one pseudo-device per logical program for uncached I/O.
	for i := range m.Leads {
		dev := vm.NewPseudoDevice(0xD0000 + uint64(i))
		m.Devices = append(m.Devices, dev)
		var pair *rmt.Pair
		if i < len(m.Pairs) {
			pair = m.Pairs[i]
		}
		m.bridges = append(m.bridges, wireIO(dev, pair, m.Leads[i], m.Trails[i]))
	}
	return m, nil
}

// newSingle builds a non-redundant context for program name.
func newSingle(name string, progID int, spec Spec) (*pipeline.Context, error) {
	prog, err := progen.Build(name)
	if err != nil {
		return nil, err
	}
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	arch := vm.NewThreadWith(progID, prog, memImg, spec.VM)
	ctx := pipeline.NewContext(pipeline.RoleSingle, progID, arch, spec.Warmup+spec.Budget)
	ctx.Warmup = spec.Warmup
	return ctx, nil
}

// newPair builds leading and trailing contexts sharing one committed memory
// image, plus the RMT pair structures between them.
func newPair(name string, logical int, spec Spec, lat rmt.Latencies, cfg pipeline.Config) (lead, trail *pipeline.Context, pair *rmt.Pair, err error) {
	prog, err := progen.Build(name)
	if err != nil {
		return nil, nil, nil, err
	}
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	leadArch := vm.NewThreadWith(logical*2, prog, memImg, spec.VM)
	trailArch := vm.NewThreadWith(logical*2+1, prog, memImg, spec.VM)
	lead = pipeline.NewContext(pipeline.RoleLeading, logical, leadArch, spec.Warmup+spec.Budget)
	lead.Warmup = spec.Warmup
	trail = pipeline.NewContext(pipeline.RoleTrailing, logical, trailArch, 0)
	lead.PeerArch = trailArch
	trail.PeerArch = leadArch
	pair = rmt.NewPair(logical, lat, cfg.LVQSize, cfg.LPQSize)
	pair.PreferentialSpaceRedundancy = spec.PSR
	lead.Pair = pair
	trail.Pair = pair
	return lead, trail, pair, nil
}

// bindPair records where the two copies live (after AddContext assigned
// TIDs).
func bindPair(pair *rmt.Pair, leadCore int, lead *pipeline.Context, trailCore int, trail *pipeline.Context) {
	pair.LeadCore, pair.LeadTID = leadCore, lead.TID
	pair.TrailCore, pair.TrailTID = trailCore, trail.TID
}

// buildCRT places redundant pairs across the two cores, cross-coupling the
// leading and trailing threads of different programs (Figure 5): with two
// programs, core 0 runs leading-A with trailing-B and core 1 runs leading-B
// with trailing-A; with four programs each core runs two leading threads of
// its own programs and the trailing threads of the other core's.
func buildCRT(m *Machine, spec Spec, cfg pipeline.Config, core0, core1 *pipeline.Core) error {
	n := len(spec.Programs)
	type built struct {
		lead, trail *pipeline.Context
		pair        *rmt.Pair
	}
	bs := make([]built, n)
	for i, name := range spec.Programs {
		lead, trail, pair, err := newPair(name, i, spec, rmt.CRTLatencies(), cfg)
		if err != nil {
			return err
		}
		bs[i] = built{lead, trail, pair}
		m.Pairs = append(m.Pairs, pair)
		m.Leads = append(m.Leads, lead)
		m.Trails = append(m.Trails, trail)
	}
	// Leading threads: first half on core 0, second half on core 1 (with
	// one program, the leading thread is alone on core 0).
	leadCore := func(i int) int {
		if i < (n+1)/2 {
			return 0
		}
		return 1
	}
	cores := []*pipeline.Core{core0, core1}
	// Add leading contexts first so they get low TIDs on each core.
	for i := range bs {
		cores[leadCore(i)].AddContext(bs[i].lead)
	}
	for i := range bs {
		tc := 1 - leadCore(i) // trailing thread on the other core
		cores[tc].AddContext(bs[i].trail)
		bindPair(bs[i].pair, leadCore(i), bs[i].lead, tc, bs[i].trail)
	}
	return nil
}

// Run executes the simulation to completion of all budgets. In SRTR mode
// the run is segmented by checkpoint boundaries and detections roll the
// machine back instead of ending it (see recovery.go).
func (m *Machine) Run() (*stats.RunStats, error) {
	maxCycles := m.Spec.MaxCycles
	if maxCycles == 0 {
		maxCycles = (m.Spec.Warmup+m.Spec.Budget)*60 + 500000
	}
	var rs *stats.RunStats
	var err error
	if m.Spec.Mode == ModeSRTR {
		rs, err = m.runSRTR(maxCycles)
	} else {
		rs, err = m.Machine.Run(maxCycles)
	}
	if err != nil {
		return rs, err
	}
	if !m.finishedAll() && !m.Spec.StopOnDetection {
		return rs, fmt.Errorf("sim: %v run hit the %d-cycle cap before all budgets completed", m.Spec.Mode, maxCycles)
	}
	return rs, nil
}

// finishedAll mirrors pipeline.Machine's completion rule: a context is
// done when its budget committed, or when its program halted first — a
// halting kernel that runs out of work before the budget is a completed
// run, not a cycle-cap failure.
func (m *Machine) finishedAll() bool {
	for _, c := range m.Leads {
		if c.Budget > 0 && c.FinishCycle == 0 && !c.Arch.Halted {
			return false
		}
	}
	return true
}

// BaseIPC runs each named program alone on the base machine and returns its
// IPC — the SMT-Efficiency denominator.
func BaseIPC(cfg pipeline.Config, warmup, budget uint64, names ...string) (map[string]float64, error) {
	out := make(map[string]float64, len(names))
	for _, name := range names {
		if _, done := out[name]; done {
			continue
		}
		m, err := Build(Spec{Mode: ModeBase, Programs: []string{name}, Warmup: warmup, Budget: budget, Config: cfg})
		if err != nil {
			return nil, err
		}
		rs, err := m.Run()
		if err != nil {
			return nil, err
		}
		out[name] = rs.LogicalIPC[0]
	}
	return out, nil
}
