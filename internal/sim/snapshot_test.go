package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/pipeline"
)

func snapSpec(mode Mode, progs ...string) Spec {
	return Spec{
		Mode:     mode,
		Programs: progs,
		Budget:   4000,
		Warmup:   1000,
		Config:   pipeline.DefaultConfig(),
		PSR:      mode != ModeBase,
	}
}

// runToCycle builds a machine for spec, snapshots it at the top of
// iteration k, and runs to completion. It returns the mid-run snapshot and
// the finished machine.
func runToCycle(t *testing.T, spec Spec, k uint64) (snapshot []byte, m *Machine) {
	t.Helper()
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.OnCycle = func(cycle uint64) error {
		if cycle == k {
			snapshot, err = m.Snapshot()
			return err
		}
		return nil
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if snapshot == nil {
		t.Fatalf("run finished before cycle %d; no snapshot taken", k)
	}
	return snapshot, m
}

// TestRestoredRunCycleIdentical is the tentpole invariant: a machine
// restored from a mid-run snapshot and run to completion produces
// cycle-identical stats and a byte-identical final snapshot to the
// uninterrupted run, for every machine organisation.
func TestRestoredRunCycleIdentical(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"base", snapSpec(ModeBase, "compress")},
		{"srt", snapSpec(ModeSRT, "compress")},
		{"srt two programs", snapSpec(ModeSRT, "gcc", "swim")},
		{"crt", snapSpec(ModeCRT, "gcc")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference run.
			ref, err := Build(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			refStats, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}
			refSnap, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Interrupted run: snapshot mid-flight, restore into a fresh
			// machine, finish there.
			mid, _ := runToCycle(t, tc.spec, 2500)
			restored, err := Restore(tc.spec, mid)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Cycles != 2500 {
				t.Fatalf("restored machine at cycle %d, want 2500", restored.Cycles)
			}
			gotStats, err := restored.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refStats, gotStats) {
				t.Errorf("restored run stats differ:\nref: %+v\ngot: %+v", refStats, gotStats)
			}
			gotSnap, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refSnap, gotSnap) {
				t.Errorf("final snapshots differ: ref %d bytes, got %d bytes", len(refSnap), len(gotSnap))
			}
		})
	}
}

// TestSnapshotDeterministic: snapshotting the same state twice yields the
// same bytes, and snapshots of two identically-built-and-run machines are
// byte-identical (no map-order or pointer-identity leakage).
func TestSnapshotDeterministic(t *testing.T) {
	spec := snapSpec(ModeSRT, "vortex")
	a, _ := runToCycle(t, spec, 2000)
	b, _ := runToCycle(t, spec, 2000)
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots of identical runs differ: %d vs %d bytes", len(a), len(b))
	}
	m, err := Restore(spec, a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c, d) {
		t.Fatal("back-to-back snapshots of one machine differ")
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("restore/re-snapshot round trip not byte-identical: %d vs %d bytes", len(a), len(c))
	}
}

// TestRestorePreservesPoolGenerations: dynInst recycling correctness after
// restore depends on every pool slot keeping its generation counter; a
// restore that reset generations would silently revive stale instRefs.
func TestRestorePreservesPoolGenerations(t *testing.T) {
	spec := snapSpec(ModeSRT, "li")
	snapshot, _ := runToCycle(t, spec, 3000)
	m, err := Restore(spec, snapshot)
	if err != nil {
		t.Fatal(err)
	}
	anyNonZero := false
	for ci, co := range m.Cores {
		for xi, ctx := range co.Contexts() {
			gens := ctx.PoolGenerations()
			for _, g := range gens {
				if g > 0 {
					anyNonZero = true
				}
			}
			// Restoring the same snapshot again must reproduce the same
			// generations exactly.
			m2, err := Restore(spec, snapshot)
			if err != nil {
				t.Fatal(err)
			}
			gens2 := m2.Cores[ci].Contexts()[xi].PoolGenerations()
			if !reflect.DeepEqual(gens, gens2) {
				t.Fatalf("core %d ctx %d pool generations not reproducible", ci, xi)
			}
		}
	}
	if !anyNonZero {
		t.Fatal("no pool slot was ever recycled by cycle 3000; test is vacuous")
	}
}

// TestRestoreRejectsWrongSpec: a snapshot taken under one machine geometry
// must not silently restore into another.
func TestRestoreRejectsWrongSpec(t *testing.T) {
	snapshot, _ := runToCycle(t, snapSpec(ModeSRT, "compress"), 1500)
	if _, err := Restore(snapSpec(ModeCRT, "compress"), snapshot); err == nil {
		t.Error("restoring an SRT snapshot into a CRT machine should fail")
	}
	if _, err := Restore(snapSpec(ModeBase, "compress"), snapshot); err == nil {
		t.Error("restoring an SRT snapshot into a base machine should fail")
	}
}

// TestRestoreRejectsGarbage: malformed streams error out, never panic.
func TestRestoreRejectsGarbage(t *testing.T) {
	spec := snapSpec(ModeSRT, "compress")
	snapshot, _ := runToCycle(t, spec, 1500)
	for _, n := range []int{0, 7, 8, 100, len(snapshot) / 2, len(snapshot) - 1} {
		if _, err := Restore(spec, snapshot[:n]); err == nil {
			t.Errorf("truncation to %d bytes restored successfully", n)
		}
	}
}

// FuzzSnapshot feeds arbitrary bytes to RestoreState: it must reject or
// accept but never crash, and any accepted stream must re-serialize
// idempotently (restore → snapshot → restore → snapshot is a fixed point).
func FuzzSnapshot(f *testing.F) {
	spec := snapSpec(ModeSRT, "compress")
	spec.Budget, spec.Warmup = 600, 200
	m, err := Build(spec)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := m.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:9])
	f.Add([]byte("RMTSNAP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RestoreState(data); err != nil {
			return
		}
		once, err := m.Snapshot()
		if err != nil {
			t.Fatalf("accepted stream failed to re-serialize: %v", err)
		}
		m2, err := Restore(spec, once)
		if err != nil {
			t.Fatalf("re-serialized stream failed to restore: %v", err)
		}
		twice, err := m2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once, twice) {
			t.Fatal("snapshot not idempotent after one normalization")
		}
	})
}
