package sim

import (
	"repro/internal/pipeline"
	"repro/internal/rmt"
	"repro/internal/vm"
)

// ioBridge replicates uncached load values from the leading copy to the
// trailing copy (the paper defers uncached input replication to future
// work; this implements it). Device reads are side-effecting, so only the
// leading copy touches the device; the trailing copy consumes the
// replicated (address, value) stream in program order and verifies the
// address — a divergence there is a detected fault, like the LVQ's address
// check.
type ioBridge struct {
	addrs []uint64
	vals  []uint64
}

// wireIO connects a logical program's contexts to its pseudo-device and
// returns the replication bridge (nil for non-redundant contexts, which
// read and write the device directly). Redundant pairs route reads through
// the bridge and perform writes once, from the leading side, after output
// comparison.
func wireIO(dev *vm.PseudoDevice, pair *rmt.Pair, lead, trail *pipeline.Context) *ioBridge {
	if trail == nil {
		lead.Arch.IORead = dev.Read
		lead.IOWrite = dev.Write
		return nil
	}
	br := &ioBridge{}
	lead.Arch.IORead = func(addr uint64) uint64 {
		v := dev.Read(addr)
		br.addrs = append(br.addrs, addr)
		br.vals = append(br.vals, v)
		return v
	}
	trail.Arch.IORead = func(addr uint64) uint64 {
		if len(br.vals) == 0 {
			// The trailing copy cannot run ahead of the leading copy's
			// retirement in a fault-free machine; reaching here means the
			// copies' uncached-load streams diverged.
			pair.Detected = append(pair.Detected, &rmt.Mismatch{TrailAddr: addr})
			return 0
		}
		a, v := br.addrs[0], br.vals[0]
		br.addrs, br.vals = br.addrs[1:], br.vals[1:]
		if a != addr {
			pair.Detected = append(pair.Detected, &rmt.Mismatch{LeadAddr: a, TrailAddr: addr})
		}
		return v
	}
	lead.IOWrite = dev.Write
	return br
}
