package sim

import (
	"fmt"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/program"
	"repro/internal/vm"
)

// The metamorphic invariant behind every mode the simulator offers: the
// machine organisation (base SMT, SRT pair, cross-core CRT pair) is pure
// timing — the architectural function each logical program computes is
// exactly the one a bare functional thread computes. Each copy's registers
// and memory view after a fault-free run must be bit-identical to a fresh
// functional replay to the same dynamic instruction count, and no
// sphere-of-replication comparator may fire.

// refReplay replays kernel name functionally for exactly seq instructions,
// recording the 8-byte-aligned addresses its stores covered.
type refReplay struct {
	th     *vm.Thread
	stores []uint64
}

func replayKernel(t *testing.T, name string, seq uint64) *refReplay {
	t.Helper()
	prog := progen.MustBuild(name) // registry kernels and generated "gen:<seed>" names alike
	memImg := vm.NewMemory()
	vm.Load(prog, memImg)
	r := &refReplay{th: vm.NewThread(0, prog, memImg)}
	seen := map[uint64]bool{}
	for r.th.Seq < seq && !r.th.Halted {
		out := r.th.Step()
		if out.Instr.IsStore() && !out.Instr.IsUncached() {
			for a := out.Addr &^ 7; a < out.Addr+uint64(out.Size); a += 8 {
				if !seen[a] {
					seen[a] = true
					r.stores = append(r.stores, a)
				}
			}
		}
	}
	if r.th.Seq != seq {
		t.Fatalf("%s: reference replay stopped at seq %d, want %d", name, r.th.Seq, seq)
	}
	return r
}

// checkCopyAgainstReference verifies one hardware copy's final
// architectural state against the functional replay.
func checkCopyAgainstReference(t *testing.T, tag, name string, ctx *pipeline.Context) {
	t.Helper()
	ref := replayKernel(t, name, ctx.Arch.Seq)
	for r := 0; r < 32; r++ {
		if ctx.Arch.IntReg[r] != ref.th.IntReg[r] {
			t.Errorf("%s: R%d = %#x, want %#x", tag, r, ctx.Arch.IntReg[r], ref.th.IntReg[r])
		}
		if ctx.Arch.FPReg[r] != ref.th.FPReg[r] {
			t.Errorf("%s: F%d = %#x, want %#x", tag, r, ctx.Arch.FPReg[r], ref.th.FPReg[r])
		}
	}
	diffs := 0
	for _, a := range ref.stores {
		if got, want := ctx.Arch.Mem.Read64(a), ref.th.Mem.Read64(a); got != want {
			if diffs++; diffs <= 3 {
				t.Errorf("%s: mem[%#x] = %#x, want %#x", tag, a, got, want)
			}
		}
	}
	if diffs > 3 {
		t.Errorf("%s: ... and %d more memory differences", tag, diffs-3)
	}
}

func runMode(t *testing.T, mode Mode, progs []string) *Machine {
	t.Helper()
	m, err := Build(Spec{
		Mode:     mode,
		Programs: progs,
		Budget:   1500,
		Warmup:   500,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// checkPairsClean asserts no comparator fired during a fault-free run.
func checkPairsClean(t *testing.T, tag string, m *Machine) {
	t.Helper()
	for i, p := range m.Pairs {
		if n := p.Cmp.Mismatches.Value(); n != 0 {
			t.Errorf("%s pair %d: %d store mismatches in a fault-free run", tag, i, n)
		}
		if n := p.LVQ.AddrMismatches.Value(); n != 0 {
			t.Errorf("%s pair %d: %d LVQ address mismatches", tag, i, n)
		}
		if n := len(p.Detected); n != 0 {
			t.Errorf("%s pair %d: %d spurious detections", tag, i, n)
		}
		if p.Cmp.Comparisons.Value() == 0 {
			t.Errorf("%s pair %d: no store comparisons — output boundary not exercised", tag, i)
		}
	}
}

func TestMetamorphicBaseMatchesFunctional(t *testing.T) {
	for _, name := range program.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeBase, []string{name})
			checkCopyAgainstReference(t, "base/"+name, name, m.Leads[0])
		})
	}
}

func TestMetamorphicSRTMatchesFunctional(t *testing.T) {
	for _, name := range program.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeSRT, []string{name})
			checkCopyAgainstReference(t, "srt/lead/"+name, name, m.Leads[0])
			checkCopyAgainstReference(t, "srt/trail/"+name, name, m.Trails[0])
			checkPairsClean(t, "srt/"+name, m)
		})
	}
}

func TestMetamorphicCRTMatchesFunctional(t *testing.T) {
	pairs := program.MultiprogramPairs()
	if len(pairs) > 3 {
		pairs = pairs[:3]
	}
	for _, progs := range pairs {
		progs := progs
		t.Run(fmt.Sprintf("%s+%s", progs[0], progs[1]), func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeCRT, progs[:])
			for i, name := range progs {
				checkCopyAgainstReference(t, "crt/lead/"+name, name, m.Leads[i])
				checkCopyAgainstReference(t, "crt/trail/"+name, name, m.Trails[i])
			}
			checkPairsClean(t, "crt", m)
		})
	}
}
