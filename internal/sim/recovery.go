package sim

import (
	"errors"

	"repro/internal/pipeline"
	"repro/internal/stats"
)

// SRTR recovery: the machine checkpoints its complete state on a fixed
// cycle grid and rolls back to the newest *validated* checkpoint when the
// redundant pair detects a fault, re-executing instead of halting.
//
// A checkpoint is validated in two phases, both evaluated only at
// checkpoint boundaries:
//
//  1. Both copies have committed past the pair's functional execution
//     point at capture (needSeq = max of the two vm sequence numbers).
//     Every register result the snapshot could contain — architectural or
//     in flight — has by then been cross-checked through the RVQ, because
//     the trailing copy compares each result at its own commit.
//  2. Every leading store retired by the end of phase 1 has been verified
//     by the store comparator (needVer, recorded at the phase transition,
//     over-approximates the stores the snapshot could contain).
//
// Any corruption captured by a checkpoint therefore forces a detection
// before that checkpoint can validate; on detection the machine discards
// all unvalidated checkpoints, so a validated checkpoint is provably
// byte-identical to the fault-free run's state at its cycle. That is the
// property the fault campaigns measure: post-recovery re-execution (the
// transient never re-fires) reconverges bit-for-bit with the golden run.
type srtrCkpt struct {
	cycle uint64
	data  []byte
	// Per-pair validation progress.
	needSeq   []uint64 // phase 0 target: both copies committed past this
	needVer   []uint64 // phase 1 target: stores verified past this
	phase     []int    // 0, 1, or 2 (= pair fully validated)
	validated bool
}

const (
	// defaultCheckpointInterval matches the fault engine's snapshot grid,
	// so an engine-restored machine resumes on the same absolute
	// boundaries a freshly built one uses.
	defaultCheckpointInterval = 1024
	defaultMaxRecoveries      = 8
	// haltGraceIntervals bounds how long a halt divergence between the
	// two copies may persist before it is treated as a detected fault:
	// the trailing copy normally halts a drain-lag after the leading one,
	// so divergence is only a symptom once that transient is over.
	haltGraceIntervals = 2
)

// capture snapshots the machine and records each pair's validation
// targets. A snapshot failure returns nil; the run simply lacks that
// rollback point.
func (m *Machine) capture() *srtrCkpt {
	data, err := m.Snapshot()
	if err != nil {
		return nil
	}
	c := &srtrCkpt{
		cycle:   m.Cycles,
		data:    data,
		needSeq: make([]uint64, len(m.Pairs)),
		needVer: make([]uint64, len(m.Pairs)),
		phase:   make([]int, len(m.Pairs)),
	}
	for i := range m.Pairs {
		lead, trail := m.Leads[i], m.Trails[i]
		c.needSeq[i] = lead.Arch.Seq
		if trail.Arch.Seq > c.needSeq[i] {
			c.needSeq[i] = trail.Arch.Seq
		}
	}
	return c
}

// advance moves the checkpoint's validation state machine forward against
// the machine's current progress counters.
func (c *srtrCkpt) advance(m *Machine) {
	if c.validated {
		return
	}
	done := true
	for i, p := range m.Pairs {
		if c.phase[i] == 0 {
			committed := m.Leads[i].Committed()
			if t := m.Trails[i].Committed(); t < committed {
				committed = t
			}
			if committed < c.needSeq[i] {
				done = false
				continue
			}
			c.needVer[i] = p.LeadStoresRetired
			c.phase[i] = 1
		}
		if c.phase[i] == 1 {
			if p.StoresVerified < c.needVer[i] {
				done = false
				continue
			}
			c.phase[i] = 2
		}
	}
	c.validated = done
}

// haltDiverged reports whether any pair's two copies disagree on having
// halted.
func (m *Machine) haltDiverged() bool {
	for i := range m.Pairs {
		if m.Leads[i].Arch.Halted != m.Trails[i].Arch.Halted {
			return true
		}
	}
	return false
}

// runSRTR drives the machine in checkpoint-interval segments, validating
// and capturing checkpoints at each boundary and rolling back on
// detection, deadlock, or persistent halt divergence.
func (m *Machine) runSRTR(maxCycles uint64) (*stats.RunStats, error) {
	interval := m.Spec.CheckpointInterval
	if interval == 0 {
		interval = defaultCheckpointInterval
	}
	maxRec := m.Spec.MaxRecoveries
	if maxRec == 0 {
		maxRec = defaultMaxRecoveries
	}
	// Reset per-run recovery state: fault-engine replays recycle pooled
	// machines through RestoreState, which does not touch engine fields.
	m.Recoveries, m.RecoveryCycles = 0, 0

	var ckpts []*srtrCkpt
	// The run-entry checkpoint (cycle 0 of a freshly built machine, or the
	// restore point of a fault-engine replay) is trusted as validated at
	// capture: it precedes every instruction this run executes, and an
	// armed fault cannot have fired before the run started, so no
	// corruption this run will ever detect can be inside it. Without this,
	// a detection arriving before the two-phase pipeline validates any
	// checkpoint (the first couple of intervals) would find no rollback
	// target at all.
	if c := m.capture(); c != nil {
		c.validated = true
		ckpts = append(ckpts, c)
	}
	disabled := false

	recoverTo := func(trigger uint64) bool {
		if disabled || m.Recoveries >= maxRec {
			return false
		}
		// Newest validated checkpoint; everything unvalidated is suspect
		// (it may have captured the not-yet-detected corruption) and is
		// discarded alongside anything newer than the restore point.
		var target *srtrCkpt
		kept := ckpts[:0]
		for _, c := range ckpts {
			if c.validated {
				target = c
				kept = append(kept, c)
			}
		}
		if target == nil {
			return false
		}
		if err := m.RestoreState(target.data); err != nil {
			return false
		}
		ckpts = kept
		m.Recoveries++
		m.RecoveryCycles += trigger - target.cycle
		return true
	}

	var rs *stats.RunStats
	var err error
	for {
		next := m.Cycles - m.Cycles%interval + interval
		if next > maxCycles {
			next = maxCycles
		}
		rs, err = m.Machine.Run(next)
		var dead *pipeline.DeadlockError
		isDeadlock := errors.As(err, &dead)
		if err != nil && !isDeadlock {
			return rs, err
		}
		if len(m.Detections()) > 0 || isDeadlock {
			if recoverTo(m.Cycles) {
				continue
			}
			// Unrecoverable: behave like SRT from here on.
			disabled = true
			if isDeadlock {
				return rs, err
			}
			if m.Spec.StopOnDetection {
				return rs, nil
			}
			// Keep running to completion with the detection standing.
		}
		finished := err == nil && m.Cycles < next
		if finished && m.haltDiverged() && len(m.Detections()) == 0 {
			// Give the trailing copy its normal drain lag before calling
			// the divergence a fault.
			deadline := m.Cycles + haltGraceIntervals*interval
			for m.haltDiverged() && m.Cycles < deadline && len(m.Detections()) == 0 {
				if rs, err = m.Machine.Run(m.Cycles + 1); err != nil {
					return rs, err
				}
			}
			if m.haltDiverged() && len(m.Detections()) == 0 && !disabled {
				if recoverTo(m.Cycles) {
					continue
				}
				disabled = true
			}
			finished = true
		}
		if len(m.Detections()) == 0 {
			for _, c := range ckpts {
				c.advance(m)
			}
			// Only the newest validated checkpoint can ever be a restore
			// target; drop older ones to bound memory at roughly the
			// validation lag's worth of snapshots.
			newestValid := -1
			for i, c := range ckpts {
				if c.validated {
					newestValid = i
				}
			}
			if newestValid > 0 {
				ckpts = append(ckpts[:0], ckpts[newestValid:]...)
			}
			if !finished && m.Cycles%interval == 0 {
				if c := m.capture(); c != nil {
					ckpts = append(ckpts, c)
				}
			}
		}
		if finished || m.Cycles >= maxCycles {
			return rs, nil
		}
	}
}
