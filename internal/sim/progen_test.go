package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/vmdiff"
)

// The generated-corpus differential battery: the fixed-seed 64-kernel
// corpus (progen.CorpusSeeds(genCorpusSeed, 64), the constant recorded in
// EXPERIMENTS.md) runs through the same metamorphic oracle as the
// hand-written suite — every machine organisation is pure timing, so each
// copy's architectural state must be bit-identical to a functional replay
// — plus snapshot/restore byte-identity. Randomly generated kernels reach
// comparator/replication/forwarding interleavings the 18 curated kernels
// cannot.

const genCorpusSeed = 0xC0FFEE

func genCorpus(n int) []string {
	seeds := progen.CorpusSeeds(genCorpusSeed, n)
	names := make([]string, n)
	for i, s := range seeds {
		names[i] = progen.Name(s)
	}
	return names
}

// TestGenMetamorphicSRT runs the full 64-kernel corpus as SRT pairs:
// lead and trail must both match the functional replay, and no
// comparator may fire fault-free.
func TestGenMetamorphicSRT(t *testing.T) {
	for _, name := range genCorpus(64) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeSRT, []string{name})
			checkCopyAgainstReference(t, "srt/lead/"+name, name, m.Leads[0])
			checkCopyAgainstReference(t, "srt/trail/"+name, name, m.Trails[0])
			checkPairsClean(t, "srt/"+name, m)
		})
	}
}

// TestGenMetamorphicBase: the corpus under the unprotected base machine.
func TestGenMetamorphicBase(t *testing.T) {
	for _, name := range genCorpus(32) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeBase, []string{name})
			checkCopyAgainstReference(t, "base/"+name, name, m.Leads[0])
		})
	}
}

// TestGenMetamorphicSRTR runs half the corpus as SRTR pairs: the register
// value queue and the segmented checkpoint/validation loop must be pure
// timing — both copies bit-identical to the functional replay, no
// comparator or RVQ mismatch, and zero rollbacks on a fault-free run.
func TestGenMetamorphicSRTR(t *testing.T) {
	for _, name := range genCorpus(32) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeSRTR, []string{name})
			checkCopyAgainstReference(t, "srtr/lead/"+name, name, m.Leads[0])
			checkCopyAgainstReference(t, "srtr/trail/"+name, name, m.Trails[0])
			checkPairsClean(t, "srtr/"+name, m)
			if m.Recoveries != 0 || m.RecoveryCycles != 0 {
				t.Errorf("srtr/%s: fault-free run rolled back %d times", name, m.Recoveries)
			}
			if n := m.Pairs[0].RVQ.Mismatches.Value(); n != 0 {
				t.Errorf("srtr/%s: %d RVQ mismatches in a fault-free run", name, n)
			}
		})
	}
}

// TestGenMetamorphicAdaptive runs half the corpus under adaptive partial
// redundancy at θ = 0.5: gating removes instructions from the sphere of
// replication but never from execution, so both copies must still match
// the functional replay exactly and nothing may fire fault-free. The
// comparison-count floor from checkPairsClean is deliberately dropped — a
// generated kernel may legitimately have every store outside the sphere.
func TestGenMetamorphicAdaptive(t *testing.T) {
	for _, name := range genCorpus(32) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := Build(Spec{
				Mode: ModeAdaptive, Programs: []string{name},
				Budget: 1500, Warmup: 500,
				Config: pipeline.DefaultConfig(), PSR: true,
				AdaptiveThreshold: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			checkCopyAgainstReference(t, "adaptive/lead/"+name, name, m.Leads[0])
			checkCopyAgainstReference(t, "adaptive/trail/"+name, name, m.Trails[0])
			for i, p := range m.Pairs {
				if n := p.Cmp.Mismatches.Value(); n != 0 {
					t.Errorf("adaptive/%s pair %d: %d store mismatches fault-free", name, i, n)
				}
				if n := p.LVQ.AddrMismatches.Value(); n != 0 {
					t.Errorf("adaptive/%s pair %d: %d LVQ address mismatches", name, i, n)
				}
				if n := len(p.Detected); n != 0 {
					t.Errorf("adaptive/%s pair %d: %d spurious detections", name, i, n)
				}
			}
		})
	}
}

// TestGenMetamorphicCRTMixes: randomized 2-pair cross-coupled CRT mixes —
// each core runs one program's leading thread and the other's trailing
// thread, the shape the paper's multi-program CRT figures measure.
func TestGenMetamorphicCRTMixes(t *testing.T) {
	for _, progs := range progen.MixPairs(genCorpusSeed, 4) {
		progs := progs
		t.Run(fmt.Sprintf("%s+%s", progs[0], progs[1]), func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeCRT, progs[:])
			for i, name := range progs {
				checkCopyAgainstReference(t, "crt/lead/"+name, name, m.Leads[i])
				checkCopyAgainstReference(t, "crt/trail/"+name, name, m.Trails[i])
			}
			checkPairsClean(t, "crt", m)
		})
	}
}

// TestGenFourContextSMT: randomized 4-program mixes filling all four SMT
// contexts of the base machine; every context must still compute its
// program's exact functional state.
func TestGenFourContextSMT(t *testing.T) {
	for _, progs := range progen.MixQuads(genCorpusSeed, 2) {
		progs := progs
		t.Run(progs[0]+"...", func(t *testing.T) {
			t.Parallel()
			m := runMode(t, ModeBase, progs[:])
			for i, name := range progs {
				checkCopyAgainstReference(t, "smt4/"+name, name, m.Leads[i])
			}
		})
	}
}

// TestGenBatchLockstep: the batched SoA functional engine over the full
// 64-kernel corpus — each kernel as an 8-lane vm.Batch (lane 0 fault-free,
// the rest under per-lane injection) — must stay bit-equal to independent
// scalar oracle threads after every step. The harness lives in
// internal/vmdiff; gen-battery runs this under the race detector.
func TestGenBatchLockstep(t *testing.T) {
	for _, seed := range progen.CorpusSeeds(genCorpusSeed, 64) {
		seed := seed
		t.Run(progen.Name(seed), func(t *testing.T) {
			t.Parallel()
			k := progen.Generate(seed)
			if err := vmdiff.VerifyKernel(k, 8, seed, 4*k.MaxDynInstr+64); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGenSnapshotByteIdentity: for generated kernels, a machine restored
// from a mid-run snapshot and run to completion must produce identical
// stats and a byte-identical final snapshot to the uninterrupted run —
// the snapshot substrate cannot depend on the workload being one of the
// curated kernels.
func TestGenSnapshotByteIdentity(t *testing.T) {
	corpus := genCorpus(64)
	cases := []struct {
		name  string
		mode  Mode
		theta float64
		progs []string
	}{
		{"srt", ModeSRT, 0, []string{corpus[0]}},
		{"srt two programs", ModeSRT, 0, []string{corpus[1], corpus[2]}},
		{"crt pair", ModeCRT, 0, []string{corpus[3], corpus[4]}},
		{"base", ModeBase, 0, []string{corpus[5]}},
		// The restore point (cycle 800) is mid-checkpoint-interval: the
		// restored SRTR machine re-enters the recovery loop off the grid
		// and must still reproduce the uninterrupted run exactly.
		{"srtr", ModeSRTR, 0, []string{corpus[6]}},
		{"adaptive", ModeAdaptive, 0.5, []string{corpus[7]}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec := snapSpec(tc.mode, tc.progs...)
			spec.AdaptiveThreshold = tc.theta
			ref, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			refStats, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}
			refSnap, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			mid, _ := runToCycle(t, spec, 800)
			restored, err := Restore(spec, mid)
			if err != nil {
				t.Fatal(err)
			}
			gotStats, err := restored.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refStats, gotStats) {
				t.Errorf("restored run stats differ:\nref: %+v\ngot: %+v", refStats, gotStats)
			}
			gotSnap, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refSnap, gotSnap) {
				t.Errorf("final snapshots differ: ref %d bytes, got %d", len(refSnap), len(gotSnap))
			}
		})
	}
}

// FuzzGenModeEquivalence extends the generator fuzz contract (progen's
// FuzzGenerate) to the recovery and partial-redundancy organisations: for
// ANY seed, the generated kernel run under SRTR and under adaptive gating
// must commit the same architectural digest as plain SRT, with zero
// fault-free rollbacks. Any divergence is a mode-implementation bug and
// the seed is its own minimized reproducer.
func FuzzGenModeEquivalence(f *testing.F) {
	for _, seed := range progen.CorpusSeeds(genCorpusSeed, 8) {
		f.Add(seed)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(1) << 63)
	f.Fuzz(func(t *testing.T, seed uint64) {
		name := progen.Name(seed)
		digest := func(mode Mode, theta float64) [32]byte {
			m, err := Build(Spec{
				Mode: mode, Programs: []string{name},
				Budget: 800, Warmup: 200,
				Config: pipeline.DefaultConfig(), PSR: true,
				AdaptiveThreshold: theta,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if m.Recoveries != 0 {
				t.Fatalf("%v: fault-free run rolled back %d times", mode, m.Recoveries)
			}
			return m.ArchDigest()
		}
		srt := digest(ModeSRT, 0)
		if got := digest(ModeSRTR, 0); got != srt {
			t.Error("SRTR architectural outcome diverges from SRT")
		}
		if got := digest(ModeAdaptive, 0.5); got != srt {
			t.Error("adaptive architectural outcome diverges from SRT")
		}
	})
}

// TestGenEarlyHaltCompletesRun is the regression for the sim-layer
// completion bug the generator shook out: finishedAll ignored
// Arch.Halted, so a kernel that halts before committing its budget made
// Run report a spurious cycle-cap failure even though the pipeline had
// drained cleanly. Every generated kernel halts, so any budget beyond a
// kernel's dynamic length reproduces it. The minimized form is checked
// into internal/program/testdata/earlyhalt.rmtbin.
func TestGenEarlyHaltCompletesRun(t *testing.T) {
	name := genCorpus(1)[0]
	seed, _ := progen.ParseName(name)
	prof, err := progen.Characterize(progen.Generate(seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeBase, ModeSRT} {
		m, err := Build(Spec{
			Mode:     mode,
			Programs: []string{name},
			Budget:   prof.DynInstrs + 5000, // more budget than the kernel has instructions
			Warmup:   500,
			Config:   pipeline.DefaultConfig(),
			PSR:      mode == ModeSRT,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			t.Fatalf("%v: halting kernel reported as incomplete: %v", mode, err)
		}
		if got := m.Leads[0].Arch.Seq; got != prof.DynInstrs {
			t.Errorf("%v: halted at seq %d, functional replay says %d", mode, got, prof.DynInstrs)
		}
		if rs.Cycles == 0 {
			t.Errorf("%v: zero-cycle run", mode)
		}
	}
}
