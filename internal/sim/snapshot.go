package sim

import (
	"fmt"

	"repro/internal/snap"
)

// snapshotVersion frames the sim-level snapshot: the pipeline state plus
// the machine assembly's own mutable pieces (pseudo-devices and uncached
// I/O replication bridges).
const snapshotVersion = 1

// Snapshot serializes the machine's complete simulated state. The snapshot
// pairs with the Spec the machine was built from: Restore rebuilds an
// identical machine and overlays this state onto it. Observer attachments
// (Metrics, Events, trace hooks) are not captured; a restored machine
// starts with whatever observers its fresh build has.
func (m *Machine) Snapshot() ([]byte, error) {
	w := snap.NewWriterSize(m.snapHint + 512)
	w.U64(snapshotVersion)
	m.Machine.SnapshotTo(w)
	w.Int(len(m.Devices))
	for _, d := range m.Devices {
		d.SnapshotTo(w)
	}
	w.Int(len(m.bridges))
	for _, br := range m.bridges {
		if br == nil {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.U64(uint64(len(br.addrs)))
		for _, a := range br.addrs {
			w.U64(a)
		}
		w.U64(uint64(len(br.vals)))
		for _, v := range br.vals {
			w.U64(v)
		}
	}
	out := w.Finish()
	m.snapHint = len(out)
	return out, nil
}

// RestoreState overlays a snapshot onto this machine, which must have been
// built from the same Spec the snapshot was taken under. On error the
// machine's state is undefined and it must be discarded. Structural
// validation happens in the decoder; the recover guard converts any
// residual inconsistency (a queue invariant a hand-crafted stream violates)
// into an error instead of a crash.
func (m *Machine) RestoreState(data []byte) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sim: restore: %v", p)
		}
	}()
	r, nerr := snap.NewReader(data)
	if nerr != nil {
		return nerr
	}
	if v := r.U64(); v != snapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, want %d", v, snapshotVersion)
	}
	if err := m.Machine.RestoreFrom(r); err != nil {
		return err
	}
	if r.Int() != len(m.Devices) {
		r.Failf("device count mismatch")
		return r.Err()
	}
	for _, d := range m.Devices {
		d.RestoreFrom(r)
	}
	if r.Int() != len(m.bridges) {
		r.Failf("bridge count mismatch")
		return r.Err()
	}
	for i, br := range m.bridges {
		has := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if has != (br != nil) {
			r.Failf("bridge %d presence mismatch", i)
			return r.Err()
		}
		if br == nil {
			continue
		}
		na := r.Count(8)
		br.addrs = br.addrs[:0]
		for j := 0; j < na; j++ {
			br.addrs = append(br.addrs, r.U64())
		}
		nv := r.Count(8)
		br.vals = br.vals[:0]
		for j := 0; j < nv; j++ {
			br.vals = append(br.vals, r.U64())
		}
	}
	return r.Done()
}

// Restore builds a fresh machine from spec and overlays the snapshot onto
// it. spec must be the Spec the snapshot was taken under (same mode,
// programs, sizes, and configuration); geometry mismatches are detected
// and returned as errors.
func Restore(spec Spec, data []byte) (*Machine, error) {
	m, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if err := m.RestoreState(data); err != nil {
		return nil, err
	}
	return m, nil
}
