package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenParams is deliberately tiny: the goldens pin the exact rendered
// tables for a fixed parameter set, so any behavioural drift in the pipeline,
// the kernels, or the table renderer shows up as a diff. Results are
// independent of Parallelism, so the default (GOMAXPROCS) is fine.
func goldenParams() Params {
	return Params{Budget: 1200, Warmup: 600, Config: pipeline.DefaultConfig()}
}

// goldenCampaignParams sizes the campaign-bearing goldens (recovery,
// adaptive). Campaigns run at half the stated budget, so these land each
// trial on the 2500/800 sizes the fault batteries prove recovery at.
func goldenCampaignParams() Params {
	return Params{Budget: 5000, Warmup: 1600, CampaignRuns: 6, Config: pipeline.DefaultConfig()}
}

// render produces the canonical golden text: the table followed by the
// summary map in sorted key order.
func render(tbl *stats.Table, summary map[string]float64) string {
	var b strings.Builder
	b.WriteString(tbl.String())
	if !strings.HasSuffix(tbl.String(), "\n") {
		b.WriteString("\n")
	}
	keys := make([]string, 0, len(summary))
	for k := range summary {
		if k == "simcycles" {
			// Benchmark-harness bookkeeping (the throughput denominator),
			// not a modeled result: keep the goldens pinned to the model.
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("summary:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s = %.6f\n", k, summary[k])
	}
	return b.String()
}

func checkGolden(t *testing.T, id string, got string) {
	t.Helper()
	path := filepath.Join("testdata", id+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/exp -run TestGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			id, path, got, want)
	}
}

// TestGoldenFigures locks the rendered Figure 6/7/8 tables against recorded
// goldens. These are the tables cmd/rmtbench prints; a diff here means either
// a deliberate model change (regenerate with -update and review the diff) or
// an accidental regression.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure sweep skipped in -short mode")
	}
	figs := []struct {
		id  string
		p   Params
		run func(Params) (*stats.Table, map[string]float64, error)
	}{
		{"fig6", goldenParams(), Fig6},
		{"fig7", goldenParams(), Fig7},
		{"fig8", goldenParams(), Fig8},
		{"recovery", goldenCampaignParams(), FigRecovery},
		{"adaptive", goldenCampaignParams(), FigAdaptive},
	}
	for _, fig := range figs {
		fig := fig
		t.Run(fig.id, func(t *testing.T) {
			t.Parallel()
			tbl, summary, err := fig.run(fig.p)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fig.id, render(tbl, summary))
		})
	}
}
