package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// TestBaseCacheConcurrent is the regression test for the data race the
// serial evaluation left latent: baseCache.get used to read/write an
// unsynchronized map, which -race flags as soon as two jobs share a cache.
// It also pins the single-flight contract: a kernel's reference run
// executes exactly once no matter how many goroutines ask for it.
func TestBaseCacheConcurrent(t *testing.T) {
	cache := newBaseCache(quick())
	var computes atomic.Int64
	cache.compute = func(name string) (float64, error) {
		computes.Add(1)
		return float64(len(name)), nil
	}

	names := []string{"gcc", "swim", "fpppp", "li"}
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				got, err := cache.get(names...)
				if err != nil {
					errs[g] = err
					return
				}
				for _, n := range names {
					if got[n] != float64(len(n)) {
						errs[g] = fmt.Errorf("got[%s] = %v, want %v", n, got[n], float64(len(n)))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := computes.Load(), int64(len(names)); got != want {
		t.Errorf("compute ran %d times, want %d (single flight per kernel)", got, want)
	}
}

// TestBaseCacheErrorPropagates: a failing reference run surfaces its error
// to every waiter and is not silently cached as a zero IPC.
func TestBaseCacheErrorPropagates(t *testing.T) {
	cache := newBaseCache(quick())
	cache.compute = func(name string) (float64, error) {
		return 0, fmt.Errorf("no reference for %s", name)
	}
	if _, err := cache.get("gcc"); err == nil {
		t.Fatal("expected an error from the failing compute")
	}
	// Second call must see the same error (the entry memoises failure
	// rather than pretending IPC 0 succeeded).
	if _, err := cache.get("gcc"); err == nil {
		t.Fatal("expected the memoised error on re-get")
	}
}

// TestParallelDeterminism is the headline invariant of the sweep engine:
// the rendered tables — every cell, every mean — are identical whether the
// jobs run serially or fanned across workers, for both a figure sweep and
// a sharded fault-injection campaign.
func TestParallelDeterminism(t *testing.T) {
	tiny := quick()
	tiny.Budget = 2000
	tiny.Warmup = 1000
	tiny.CampaignRuns = 6

	experiments := []struct {
		name string
		run  func(Params) (string, error)
	}{
		{"fig6", func(p Params) (string, error) {
			tbl, _, err := Fig6(p)
			if err != nil {
				return "", err
			}
			return tbl.String(), nil
		}},
		{"coverage", func(p Params) (string, error) {
			tbl, _, err := Coverage(p)
			if err != nil {
				return "", err
			}
			return tbl.String(), nil
		}},
		{"recovery", func(p Params) (string, error) {
			tbl, _, err := FigRecovery(p)
			if err != nil {
				return "", err
			}
			return tbl.String(), nil
		}},
		{"adaptive", func(p Params) (string, error) {
			tbl, _, err := FigAdaptive(p)
			if err != nil {
				return "", err
			}
			return tbl.String(), nil
		}},
	}
	for _, e := range experiments {
		serial := tiny
		serial.Parallelism = 1
		parallel := tiny
		parallel.Parallelism = 8

		want, err := e.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", e.name, err)
		}
		got, err := e.run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.name, err)
		}
		if got != want {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s--- parallel ---\n%s", e.name, want, got)
		}
	}
}

// TestSweepErrorPropagation: a failing job inside a figure sweep surfaces
// its error instead of a partial table.
func TestSweepErrorPropagation(t *testing.T) {
	p := quick()
	p.Parallelism = 4
	cache := newBaseCache(p)
	good := sim.Spec{Mode: sim.ModeBase, Programs: []string{"gcc"}}
	bad := sim.Spec{Mode: sim.ModeBase, Programs: []string{"no-such-kernel"}}
	jobs := []job{{p, good}, {p, bad}, {p, good}}
	if _, err := sweep(p, jobs, cache); err == nil {
		t.Fatal("expected the unknown-kernel job to fail the sweep")
	}
}
