package exp

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func quick() Params {
	p := Quick()
	p.Budget = 4000
	p.Warmup = 2000
	p.CampaignRuns = 4
	return p
}

func TestTable1ListsEverySubsystem(t *testing.T) {
	tbl := Table1(pipeline.DefaultConfig())
	s := tbl.String()
	for _, want := range []string{"IBOX", "PBOX", "QBOX", "RBOX", "MBOX",
		"line predictor", "store sets", "store queue", "L2 cache"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

// TestFig6Shape checks the experiment's qualitative claims at small scale:
// every configuration produces a full table and the orderings the paper
// reports hold on average — redundancy costs something, per-thread store
// queues and dropping store comparison both recover performance, and SRT
// beats running two independent copies.
func TestFig6Shape(t *testing.T) {
	tbl, sum, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 19 { // 18 kernels + MEAN
		t.Fatalf("rows = %d, want 19", len(tbl.Rows))
	}
	if sum["SRT"] >= 1.0 {
		t.Errorf("SRT mean efficiency %.3f >= 1; redundancy should cost something", sum["SRT"])
	}
	if sum["SRT"] <= sum["Base2"] {
		t.Errorf("SRT (%.3f) should outperform Base2 (%.3f)", sum["SRT"], sum["Base2"])
	}
	if sum["SRT+ptSQ"] < sum["SRT"] {
		t.Errorf("per-thread store queues should help: %.3f < %.3f", sum["SRT+ptSQ"], sum["SRT"])
	}
	if sum["SRT+noSC"] < sum["SRT"] {
		t.Errorf("removing store comparison should help: %.3f < %.3f", sum["SRT+noSC"], sum["SRT"])
	}
}

// TestFig7Shape: without PSR most pairs share a half; with PSR almost none
// do, and performance is unchanged.
func TestFig7Shape(t *testing.T) {
	_, sum, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if sum["sameHalf.noPSR"] < 0.5 {
		t.Errorf("same-half without PSR = %.3f; expected high (paper: 65%% same-FU)", sum["sameHalf.noPSR"])
	}
	if sum["sameHalf.PSR"] > 0.1 {
		t.Errorf("same-half with PSR = %.3f; expected near zero", sum["sameHalf.PSR"])
	}
	if diff := sum["eff.noPSR"] - sum["eff.PSR"]; diff > 0.05 {
		t.Errorf("PSR cost %.3f efficiency; paper reports none", diff)
	}
}

// TestFig11Shape: CRT must beat the realistic lockstep machine on
// multiprogrammed workloads.
func TestFig11Shape(t *testing.T) {
	_, sum, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if sum["crt"] <= sum["lock8"] {
		t.Errorf("CRT (%.3f) should outperform Lock8 (%.3f) on two-program workloads",
			sum["crt"], sum["lock8"])
	}
	if sum["lock8"] > sum["lock0"] {
		t.Errorf("Lock8 (%.3f) cannot beat the ideal checker Lock0 (%.3f)",
			sum["lock8"], sum["lock0"])
	}
}

// TestFigRecoveryShape: SRTR campaigns recover every detected fault (no
// trial may end merely detected) and actually exercise rollback.
func TestFigRecoveryShape(t *testing.T) {
	_, sum, err := FigRecovery(quick())
	if err != nil {
		t.Fatal(err)
	}
	if sum["unrecovered"] != 0 {
		t.Errorf("%v trials ended detected-but-unrecovered; SRTR must roll back every detection", sum["unrecovered"])
	}
	if sum["recovered"] == 0 {
		t.Error("no trial recovered; the sweep never exercised rollback")
	}
	for _, iv := range []string{"i256", "i512", "i1024"} {
		if sum["coverage."+iv] <= 0 {
			t.Errorf("coverage.%s = %.3f; campaigns detected nothing", iv, sum["coverage."+iv])
		}
	}
}

// TestFigAdaptiveShape: θ = 0 is bit-identical to SRT (everything
// protected, no SDC) and raising θ can only shrink the protected fraction.
func TestFigAdaptiveShape(t *testing.T) {
	_, sum, err := FigAdaptive(quick())
	if err != nil {
		t.Fatal(err)
	}
	if sum["protected.t00"] != 1 {
		t.Errorf("protected.t00 = %.3f, want 1 (theta 0 protects everything)", sum["protected.t00"])
	}
	if sum["sdc.t00"] != 0 {
		t.Errorf("sdc.t00 = %v; full protection cannot leak silent corruption", sum["sdc.t00"])
	}
	tags := []string{"t00", "t25", "t50", "t75", "t95"}
	for i := 1; i < len(tags); i++ {
		if sum["protected."+tags[i]] > sum["protected."+tags[i-1]] {
			t.Errorf("protected fraction rose from %s (%.3f) to %s (%.3f); theta can only narrow the sphere",
				tags[i-1], sum["protected."+tags[i-1]], tags[i], sum["protected."+tags[i]])
		}
	}
}

// TestCoverageShape: campaigns classify every trial and detect real faults.
func TestCoverageShape(t *testing.T) {
	_, sum, err := Coverage(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"srt", "crt"} {
		if sum["coverage."+mode] <= 0 {
			t.Errorf("%s coverage = %.3f; campaigns detected nothing", mode, sum["coverage."+mode])
		}
	}
}
