// Package exp drives the paper's evaluation: one function per table/figure,
// each returning a text table with the same rows and series the paper
// reports. cmd/rmtbench and the repository's benchmarks call these.
//
// Every figure declares its sweep as a flat job list — one independent
// (kernel, configuration) simulation per job — and hands it to
// internal/runner, which fans the jobs across Params.Parallelism worker
// goroutines. Results are keyed by job index, so tables are assembled in
// declaration order and the output is byte-identical at any parallelism.
//
// Figure/table numbering follows DESIGN.md's experiment index. The paper's
// published numbers (where the supplied text states them) are embedded in
// the table titles for side-by-side comparison; EXPERIMENTS.md records a
// full paper-vs-measured discussion.
package exp

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Params sizes the experiments.
type Params struct {
	// Budget is measured instructions per logical thread; Warmup precedes
	// it.
	Budget uint64
	Warmup uint64
	// CampaignRuns sizes fault-injection campaigns.
	CampaignRuns int
	Config       pipeline.Config

	// Parallelism caps concurrent simulations (0 = GOMAXPROCS). Results
	// are independent of this value; 1 reproduces a serial run exactly.
	Parallelism int
	// Progress, when non-nil, receives per-sweep completion updates
	// (done, total jobs). Calls are serialized.
	Progress func(done, total int)
	// OnReport, when non-nil, receives each sweep's timing report.
	OnReport func(runner.Report)
}

// Full returns the parameters used for the recorded results: large enough
// for steady-state behaviour on every kernel.
func Full() Params {
	return Params{Budget: 50000, Warmup: 50000, CampaignRuns: 40, Config: pipeline.DefaultConfig()}
}

// Quick returns cut-down parameters for tests and -short benchmarks.
func Quick() Params {
	return Params{Budget: 8000, Warmup: 5000, CampaignRuns: 8, Config: pipeline.DefaultConfig()}
}

// baseCache memoises single-thread base IPCs per parameter set. It is safe
// for concurrent use: each kernel's reference run executes at most once
// (single flight) and late arrivals block until the winner's result is
// ready.
type baseCache struct {
	p Params
	// compute produces one kernel's base IPC; tests stub it.
	compute func(name string) (float64, error)

	mu      sync.Mutex
	entries map[string]*baseEntry
}

type baseEntry struct {
	once sync.Once
	ipc  float64
	err  error
}

func newBaseCache(p Params) *baseCache {
	c := &baseCache{p: p, entries: make(map[string]*baseEntry)}
	c.compute = func(name string) (float64, error) {
		got, err := sim.BaseIPC(c.p.Config, c.p.Warmup, c.p.Budget, name)
		if err != nil {
			return 0, err
		}
		return got[name], nil
	}
	return c
}

func (c *baseCache) get(names ...string) (map[string]float64, error) {
	out := make(map[string]float64, len(names))
	for _, n := range names {
		c.mu.Lock()
		e, ok := c.entries[n]
		if !ok {
			e = &baseEntry{}
			c.entries[n] = e
		}
		c.mu.Unlock()
		e.once.Do(func() { e.ipc, e.err = c.compute(n) })
		if e.err != nil {
			return nil, e.err
		}
		out[n] = e.ipc
	}
	return out, nil
}

// run executes one spec and returns per-logical-thread SMT-Efficiencies and
// the run stats.
func run(p Params, spec sim.Spec, cache *baseCache) ([]float64, *stats.RunStats, *sim.Machine, error) {
	spec.Budget = p.Budget
	spec.Warmup = p.Warmup
	spec.Config = p.Config
	m, err := sim.Build(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	rs, err := m.Run()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("exp: %v %v: %w", spec.Mode, spec.Programs, err)
	}
	base, err := cache.get(spec.Programs...)
	if err != nil {
		return nil, nil, nil, err
	}
	effs := make([]float64, len(spec.Programs))
	for i, name := range spec.Programs {
		if base[name] > 0 {
			effs[i] = rs.LogicalIPC[i] / base[name]
		}
	}
	return effs, rs, m, nil
}

// job is one simulation in a figure's sweep. Figures that sweep machine
// configuration (Fig9's store-queue sizes) carry a per-job Params; the
// base-IPC cache stays keyed to the figure's standard parameters.
type job struct {
	p    Params
	spec sim.Spec
}

// result bundles what run() returns for deterministic reassembly.
type result struct {
	effs []float64
	rs   *stats.RunStats
	m    *sim.Machine
}

// sweep fans jobs across the worker pool and returns results keyed by job
// index, so callers assemble tables in declaration order regardless of
// completion order.
func sweep(p Params, jobs []job, cache *baseCache) ([]result, error) {
	fns := make([]func() (result, error), len(jobs))
	for i := range jobs {
		j := jobs[i]
		fns[i] = func() (result, error) {
			effs, rs, m, err := run(j.p, j.spec, cache)
			if err != nil {
				return result{}, err
			}
			return result{effs: effs, rs: rs, m: m}, nil
		}
	}
	out, rep, err := runner.Run(fns, runner.Options{Parallelism: p.Parallelism, Progress: p.Progress})
	if p.OnReport != nil {
		p.OnReport(rep)
	}
	return out, err
}

// meanEff is the arithmetic mean over logical threads — the paper's
// SMT-Efficiency for a run (Snavely-Tullsen weighted speedup).
func meanEff(effs []float64) float64 { return stats.ArithMean(effs) }

// sumCycles totals simulated cycles across a sweep, published in each
// figure's summary under "simcycles" so the benchmark harness can report
// simulator throughput (simulated cycles per wall-clock second).
func sumCycles(res []result) float64 {
	var total uint64
	for _, r := range res {
		total += r.rs.Cycles
	}
	return float64(total)
}

// Table1 prints the base processor parameters (the paper's Table 1), taken
// live from the configuration so the reported machine is the simulated one.
func Table1(cfg pipeline.Config) *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: base processor parameters",
		Columns: []string{"unit", "parameter", "value"},
	}
	add := func(u, p, v string) { t.AddRow(u, p, v) }
	add("IBOX", "fetch width", fmt.Sprintf("%d x %d-instruction chunks per cycle (same thread)", cfg.FetchChunks, cfg.ChunkSize))
	add("IBOX", "line predictor", fmt.Sprintf("%d entries", 1<<cfg.LinePredictorBits))
	add("IBOX", "L1 instruction cache", fmt.Sprintf("%d KB, %d-way, %d B blocks, way prediction", cfg.Hier.L1ISize>>10, cfg.Hier.L1IWays, cfg.Hier.BlockBytes))
	add("IBOX", "branch predictor", fmt.Sprintf("hybrid, 3 x %d x 2-bit tables (~%d Kbit)", 1<<cfg.BranchPredictorBits, 3*(1<<cfg.BranchPredictorBits)*2/1024))
	add("IBOX", "memory dependence predictor", fmt.Sprintf("store sets, %d entries", 1<<cfg.StoreSetBits))
	add("IBOX", "rate matching buffer", fmt.Sprintf("%d instructions per thread", cfg.RMBCap))
	add("PBOX", "map width", fmt.Sprintf("one %d-instruction chunk per cycle (same thread)", cfg.MapWidth))
	add("QBOX", "instruction queue", fmt.Sprintf("%d entries in two %d-entry halves", 2*cfg.IQHalfCap, cfg.IQHalfCap))
	add("QBOX", "issue width", fmt.Sprintf("%d per cycle (%d per half)", 2*cfg.IssuePerHalf, cfg.IssuePerHalf))
	add("RBOX", "register file", fmt.Sprintf("%d in-flight renames (512 physical - 256 architectural)", cfg.InFlightCap))
	add("EBOX/FBOX", "functional units", fmt.Sprintf("8 integer, %d FP, %d memory ports", cfg.MaxFPPerCycle, cfg.MaxMemPerCycle))
	add("MBOX", "L1 data cache", fmt.Sprintf("%d KB, %d-way, %d B blocks, %d load / %d store ports", cfg.Hier.L1DSize>>10, cfg.Hier.L1DWays, cfg.Hier.BlockBytes, cfg.MaxLoadsPerCycle, cfg.MaxStoresPerCycle))
	add("MBOX", "load queue", fmt.Sprintf("%d entries (statically divided)", cfg.LQCap))
	add("MBOX", "store queue", fmt.Sprintf("%d entries (statically divided)", cfg.SQCap))
	add("MBOX", "coalescing merge buffer", fmt.Sprintf("%d blocks", cfg.MergeBufEntries))
	add("system", "L2 cache", fmt.Sprintf("%d MB, %d-way, %d-cycle", cfg.Hier.L2Size>>20, cfg.Hier.L2Ways, cfg.Hier.L2Latency))
	add("system", "memory", fmt.Sprintf("%d-cycle flat latency", cfg.Hier.MemLatency))
	add("pipeline", "stage latencies", fmt.Sprintf("I=%d P=%d Q=%d R=%d E=1 M=%d", pipeline.IBOXLatency, pipeline.PBOXLatency, pipeline.QBOXLatency, pipeline.RBOXLatency, pipeline.MBOXLatency))
	return t
}

// Fig6 reproduces Figure 6: SMT-Efficiency of one logical thread under
// Base2, SRT, SRT with per-thread store queues, and SRT without store
// comparison, across the 18-kernel suite. Paper: SRT degrades 32% on
// average; per-thread store queues reduce it to 30%.
func Fig6(p Params) (*stats.Table, map[string]float64, error) {
	cache := newBaseCache(p)
	t := &stats.Table{
		Title:   "Figure 6: SMT-Efficiency, one logical thread (paper: SRT avg 0.68, SRT+ptSQ avg 0.70)",
		Columns: []string{"program", "Base2", "SRT", "SRT+ptSQ", "SRT+noSC"},
	}
	configs := []struct {
		name string
		spec sim.Spec
	}{
		{"Base2", sim.Spec{Mode: sim.ModeBase2}},
		{"SRT", sim.Spec{Mode: sim.ModeSRT, PSR: true}},
		{"SRT+ptSQ", sim.Spec{Mode: sim.ModeSRT, PSR: true, PerThreadSQ: true}},
		{"SRT+noSC", sim.Spec{Mode: sim.ModeSRT, PSR: true, NoStoreComparison: true}},
	}
	names := program.Names()
	t.Grow(len(names) + 1)
	// Job list: names x configs, row-major.
	var jobs []job
	for _, name := range names {
		for _, c := range configs {
			spec := c.spec
			spec.Programs = []string{name}
			jobs = append(jobs, job{p, spec})
		}
	}
	res, err := sweep(p, jobs, cache)
	if err != nil {
		return nil, nil, err
	}
	sums := map[string][]float64{}
	for ni, name := range names {
		row := []string{name}
		for ci, c := range configs {
			e := meanEff(res[ni*len(configs)+ci].effs)
			sums[c.name] = append(sums[c.name], e)
			row = append(row, fmt.Sprintf("%.3f", e))
		}
		t.AddRow(row...)
	}
	summary := map[string]float64{}
	mrow := []string{"MEAN"}
	for _, c := range configs {
		mean := stats.ArithMean(sums[c.name])
		summary[c.name] = mean
		mrow = append(mrow, fmt.Sprintf("%.3f", mean))
	}
	t.AddRow(mrow...)
	summary["simcycles"] = sumCycles(res)
	return t, summary, nil
}

// Fig7 reproduces Figure 7: the fraction of corresponding instruction pairs
// sharing an issue-queue half / functional unit, with and without
// preferential space redundancy. Paper: 65% same functional unit without
// PSR, 0.06% with, at no performance cost.
func Fig7(p Params) (*stats.Table, map[string]float64, error) {
	cache := newBaseCache(p)
	t := &stats.Table{
		Title:   "Figure 7: space redundancy (paper: same-FU 65% -> 0.06%, no slowdown)",
		Columns: []string{"program", "sameHalf noPSR", "sameFU noPSR", "sameHalf PSR", "sameFU PSR", "eff noPSR", "eff PSR"},
	}
	names := program.Names()
	t.Grow(len(names) + 1)
	psrs := []bool{false, true}
	var jobs []job
	for _, name := range names {
		for _, psr := range psrs {
			jobs = append(jobs, job{p, sim.Spec{Mode: sim.ModeSRT, PSR: psr, Programs: []string{name}}})
		}
	}
	res, err := sweep(p, jobs, cache)
	if err != nil {
		return nil, nil, err
	}
	var aggHalfOff, aggFUOff, aggHalfOn, aggFUOn, effOff, effOn []float64
	for ni, name := range names {
		var halves, fus, effs [2]float64
		for i := range psrs {
			r := res[ni*len(psrs)+i]
			pair := r.m.Pairs[0]
			halves[i] = pair.SameHalfFrac()
			fus[i] = pair.SameFUFrac()
			effs[i] = meanEff(r.effs)
		}
		aggHalfOff = append(aggHalfOff, halves[0])
		aggFUOff = append(aggFUOff, fus[0])
		aggHalfOn = append(aggHalfOn, halves[1])
		aggFUOn = append(aggFUOn, fus[1])
		effOff = append(effOff, effs[0])
		effOn = append(effOn, effs[1])
		t.AddRow(name,
			fmt.Sprintf("%.3f", halves[0]), fmt.Sprintf("%.3f", fus[0]),
			fmt.Sprintf("%.4f", halves[1]), fmt.Sprintf("%.4f", fus[1]),
			fmt.Sprintf("%.3f", effs[0]), fmt.Sprintf("%.3f", effs[1]))
	}
	summary := map[string]float64{
		"sameHalf.noPSR": stats.ArithMean(aggHalfOff),
		"sameFU.noPSR":   stats.ArithMean(aggFUOff),
		"sameHalf.PSR":   stats.ArithMean(aggHalfOn),
		"sameFU.PSR":     stats.ArithMean(aggFUOn),
		"eff.noPSR":      stats.ArithMean(effOff),
		"eff.PSR":        stats.ArithMean(effOn),
		"simcycles":      sumCycles(res),
	}
	t.AddRow("MEAN",
		fmt.Sprintf("%.3f", summary["sameHalf.noPSR"]), fmt.Sprintf("%.3f", summary["sameFU.noPSR"]),
		fmt.Sprintf("%.4f", summary["sameHalf.PSR"]), fmt.Sprintf("%.4f", summary["sameFU.PSR"]),
		fmt.Sprintf("%.3f", summary["eff.noPSR"]), fmt.Sprintf("%.3f", summary["eff.PSR"]))
	return t, summary, nil
}

// Fig8 reproduces the two-logical-thread SRT experiment (four hardware
// contexts). Paper: ~40% degradation, ~32% with per-thread store queues.
func Fig8(p Params) (*stats.Table, map[string]float64, error) {
	cache := newBaseCache(p)
	t := &stats.Table{
		Title:   "Figure 8: SMT-Efficiency, two logical threads under SRT (paper: avg 0.60, ptSQ 0.68)",
		Columns: []string{"pair", "Base(2 threads)", "SRT", "SRT+ptSQ"},
	}
	pairs := program.MultiprogramPairs()
	t.Grow(len(pairs) + 1)
	var jobs []job
	for _, pr := range pairs {
		progs := []string{pr[0], pr[1]}
		jobs = append(jobs,
			job{p, sim.Spec{Mode: sim.ModeBase, Programs: progs}},
			job{p, sim.Spec{Mode: sim.ModeSRT, PSR: true, Programs: progs}},
			job{p, sim.Spec{Mode: sim.ModeSRT, PSR: true, PerThreadSQ: true, Programs: progs}})
	}
	res, err := sweep(p, jobs, cache)
	if err != nil {
		return nil, nil, err
	}
	var b, s, sp []float64
	for pi, pr := range pairs {
		be := meanEff(res[pi*3].effs)
		se := meanEff(res[pi*3+1].effs)
		pe := meanEff(res[pi*3+2].effs)
		b = append(b, be)
		s = append(s, se)
		sp = append(sp, pe)
		t.AddRowf(pr[0]+"+"+pr[1], be, se, pe)
	}
	summary := map[string]float64{
		"base2t":    stats.ArithMean(b),
		"srt":       stats.ArithMean(s),
		"ptsq":      stats.ArithMean(sp),
		"simcycles": sumCycles(res),
	}
	t.AddRowf("MEAN", summary["base2t"], summary["srt"], summary["ptsq"])
	return t, summary, nil
}

// Fig9 reproduces the store-queue pressure analysis: average leading-store
// store-queue lifetime versus the base machine (paper: +39 cycles), and
// SMT-Efficiency across store-queue sizes.
func Fig9(p Params) (*stats.Table, map[string]float64, error) {
	cache := newBaseCache(p)
	t := &stats.Table{
		Title:   "Figure 9: store-queue lifetime and size sensitivity (paper: SRT adds ~39 cycles)",
		Columns: []string{"program", "base life", "SRT life", "delta", "eff SQ=32", "eff SQ=48", "eff SQ=64", "eff ptSQ"},
	}
	names := program.Names()
	t.Grow(len(names) + 1)
	sqSizes := []int{32, 48, 64}
	perName := 3 + len(sqSizes) // base, SRT, SQ sweep..., ptSQ
	var jobs []job
	for _, name := range names {
		progs := []string{name}
		jobs = append(jobs,
			job{p, sim.Spec{Mode: sim.ModeBase, Programs: progs}},
			job{p, sim.Spec{Mode: sim.ModeSRT, PSR: true, Programs: progs}})
		for _, sq := range sqSizes {
			cfg := p.Config
			cfg.SQCap = sq * 2 // statically divided between the two contexts
			pp := p
			pp.Config = cfg
			// The base reference must stay the standard machine: the
			// shared cache is keyed to the figure's standard Params.
			jobs = append(jobs, job{pp, sim.Spec{Mode: sim.ModeSRT, PSR: true, Programs: progs}})
		}
		jobs = append(jobs, job{p, sim.Spec{Mode: sim.ModeSRT, PSR: true, PerThreadSQ: true, Programs: progs}})
	}
	res, err := sweep(p, jobs, cache)
	if err != nil {
		return nil, nil, err
	}
	var deltas []float64
	effSums := map[int][]float64{32: nil, 48: nil, 64: nil, -1: nil}
	for ni, name := range names {
		row := res[ni*perName : (ni+1)*perName]
		baseLife := row[0].m.Leads[0].Stats.StoreLifetime.Value()
		srtLife := row[1].m.Leads[0].Stats.StoreLifetime.Value()
		delta := srtLife - baseLife
		deltas = append(deltas, delta)

		cells := []string{name, fmt.Sprintf("%.1f", baseLife), fmt.Sprintf("%.1f", srtLife), fmt.Sprintf("%+.1f", delta)}
		for si, sq := range sqSizes {
			e := meanEff(row[2+si].effs)
			effSums[sq] = append(effSums[sq], e)
			cells = append(cells, fmt.Sprintf("%.3f", e))
		}
		e := meanEff(row[perName-1].effs)
		effSums[-1] = append(effSums[-1], e)
		cells = append(cells, fmt.Sprintf("%.3f", e))
		t.AddRow(cells...)
	}
	summary := map[string]float64{
		"lifetime.delta": stats.ArithMean(deltas),
		"eff.sq32":       stats.ArithMean(effSums[32]),
		"eff.sq48":       stats.ArithMean(effSums[48]),
		"eff.sq64":       stats.ArithMean(effSums[64]),
		"eff.ptsq":       stats.ArithMean(effSums[-1]),
		"simcycles":      sumCycles(res),
	}
	t.AddRow("MEAN", "", "", fmt.Sprintf("%+.1f", summary["lifetime.delta"]),
		fmt.Sprintf("%.3f", summary["eff.sq32"]), fmt.Sprintf("%.3f", summary["eff.sq48"]),
		fmt.Sprintf("%.3f", summary["eff.sq64"]), fmt.Sprintf("%.3f", summary["eff.ptsq"]))
	return t, summary, nil
}

// lockCRTTable runs Lock0/Lock8/CRT/CRT+ptSQ over workload groups.
func lockCRTTable(p Params, title string, groups [][]string) (*stats.Table, map[string]float64, error) {
	cache := newBaseCache(p)
	t := &stats.Table{
		Title:   title,
		Columns: []string{"workload", "Lock0", "Lock8", "CRT", "CRT+ptSQ"},
	}
	const perGroup = 4
	t.Grow(len(groups) + 1)
	var jobs []job
	for _, progs := range groups {
		jobs = append(jobs,
			job{p, sim.Spec{Mode: sim.ModeLockstep, CheckerLatency: 0, Programs: progs}},
			job{p, sim.Spec{Mode: sim.ModeLockstep, CheckerLatency: 8, Programs: progs}},
			job{p, sim.Spec{Mode: sim.ModeCRT, PSR: true, Programs: progs}},
			job{p, sim.Spec{Mode: sim.ModeCRT, PSR: true, PerThreadSQ: true, Programs: progs}})
	}
	res, err := sweep(p, jobs, cache)
	if err != nil {
		return nil, nil, err
	}
	var l0s, l8s, cs, cps []float64
	for gi, progs := range groups {
		label := ""
		for i, n := range progs {
			if i > 0 {
				label += "+"
			}
			label += n
		}
		l0 := meanEff(res[gi*perGroup].effs)
		l8 := meanEff(res[gi*perGroup+1].effs)
		c := meanEff(res[gi*perGroup+2].effs)
		cp := meanEff(res[gi*perGroup+3].effs)
		l0s = append(l0s, l0)
		l8s = append(l8s, l8)
		cs = append(cs, c)
		cps = append(cps, cp)
		t.AddRowf(label, l0, l8, c, cp)
	}
	summary := map[string]float64{
		"lock0":     stats.ArithMean(l0s),
		"lock8":     stats.ArithMean(l8s),
		"crt":       stats.ArithMean(cs),
		"crt+ptsq":  stats.ArithMean(cps),
		"simcycles": sumCycles(res),
	}
	t.AddRowf("MEAN", summary["lock0"], summary["lock8"], summary["crt"], summary["crt+ptsq"])
	return t, summary, nil
}

// Fig10 compares lockstepping and CRT for single-program workloads. Paper:
// CRT performs similarly to lockstepping on one logical thread.
func Fig10(p Params) (*stats.Table, map[string]float64, error) {
	var groups [][]string
	for _, n := range program.Names() {
		groups = append(groups, []string{n})
	}
	return lockCRTTable(p, "Figure 10: lockstep vs CRT, one logical thread (paper: similar)", groups)
}

// Fig11 compares lockstepping and CRT on the six two-program pairs. Paper:
// CRT outperforms lockstepping by 13% on average (max 22%).
func Fig11(p Params) (*stats.Table, map[string]float64, error) {
	var groups [][]string
	for _, pr := range program.MultiprogramPairs() {
		groups = append(groups, []string{pr[0], pr[1]})
	}
	return lockCRTTable(p, "Figure 11: lockstep vs CRT, two logical threads (paper: CRT +13% avg, +22% max)", groups)
}

// Fig12 compares lockstepping and CRT on the four-program combinations.
func Fig12(p Params) (*stats.Table, map[string]float64, error) {
	var groups [][]string
	for _, c := range program.FourProgramCombos() {
		groups = append(groups, []string{c[0], c[1], c[2], c[3]})
	}
	return lockCRTTable(p, "Figure 12: lockstep vs CRT, four logical threads", groups)
}

// Coverage runs transient fault-injection campaigns on SRT and CRT and
// reports detection coverage plus the permanent-fault space-redundancy
// measurements (no unmasked fault may escape output comparison). Campaigns
// are the longest-running sweep in the evaluation, so each one shards its
// injection trials across Params.Parallelism workers; the fault plan is
// drawn from the seed before any trial runs, so the outcome counts are
// identical at any parallelism.
func Coverage(p Params) (*stats.Table, map[string]float64, error) {
	t := &stats.Table{
		Title:   "Coverage: transient injection campaigns + permanent-fault space redundancy",
		Columns: []string{"config", "runs", "detected", "masked", "not-fired", "coverage", "mean latency (cyc)"},
	}
	kernels := []string{"gcc", "compress", "li", "swim", "wave5", "m88ksim"}
	summary := map[string]float64{}
	var simCycles float64
	for _, mode := range []sim.Mode{sim.ModeSRT, sim.ModeCRT} {
		var det, msk, nf, runs int
		var lat []float64
		for _, k := range kernels {
			spec := sim.Spec{
				Mode: mode, Programs: []string{k},
				Budget: p.Budget / 2, Warmup: p.Warmup / 2,
				Config: p.Config, PSR: true,
			}
			sum, err := fault.CampaignParallel(spec, p.CampaignRuns/len(kernels)+1, 0xABCD^uint64(len(k)),
				fault.CampaignOptions{Parallelism: p.Parallelism, Progress: p.Progress, OnReport: p.OnReport})
			if err != nil {
				return nil, nil, err
			}
			det += sum.Detected
			msk += sum.Masked
			nf += sum.NotFired
			runs += sum.Runs
			simCycles += float64(sum.TotalCycles)
			if sum.Detected > 0 {
				lat = append(lat, sum.MeanDetectionCycles)
			}
		}
		cov := float64(det) / float64(max(det+msk, 1))
		meanLat := stats.ArithMean(lat)
		t.AddRow(mode.String(), fmt.Sprint(runs), fmt.Sprint(det), fmt.Sprint(msk),
			fmt.Sprint(nf), fmt.Sprintf("%.3f", cov), fmt.Sprintf("%.0f", meanLat))
		summary["coverage."+mode.String()] = cov
		summary["latency."+mode.String()] = meanLat
	}
	summary["simcycles"] = simCycles
	return t, summary, nil
}

// FigRecovery sweeps the SRTR checkpoint interval across recovery
// campaigns on three kernels. Every detected transient rolls back to the
// newest validated checkpoint and re-executes the suffix, so the mean
// re-executed cycles — the recovery latency — tracks the interval, while
// coverage stays at SRT's detection coverage (no detected fault may end
// the run unrecovered). Campaigns shard across Params.Parallelism; the
// plan is drawn from the seed up front, so the table is byte-identical at
// any parallelism.
func FigRecovery(p Params) (*stats.Table, map[string]float64, error) {
	intervals := []uint64{256, 512, 1024}
	kernels := []string{"compress", "li", "vortex"}
	cols := []string{"program"}
	for _, iv := range intervals {
		cols = append(cols, fmt.Sprintf("cov I=%d", iv), fmt.Sprintf("rlat I=%d", iv))
	}
	t := &stats.Table{
		Title:   "Recovery: SRTR coverage and rollback re-execution vs checkpoint interval",
		Columns: cols,
	}
	t.Grow(len(kernels) + 1)
	runs := p.CampaignRuns/len(kernels) + 1
	covSums := map[uint64][]float64{}
	latSums := map[uint64][]float64{}
	var recovered, unrecovered int
	var simCycles float64
	for _, k := range kernels {
		row := []string{k}
		for _, iv := range intervals {
			spec := sim.Spec{
				Mode: sim.ModeSRTR, Programs: []string{k},
				Budget: p.Budget / 2, Warmup: p.Warmup / 2,
				Config: p.Config, PSR: true,
				CheckpointInterval: iv,
			}
			sum, err := fault.CampaignParallel(spec, runs, 0xBADC0DE^iv^uint64(len(k)),
				fault.CampaignOptions{Parallelism: p.Parallelism, Progress: p.Progress, OnReport: p.OnReport})
			if err != nil {
				return nil, nil, err
			}
			recovered += sum.Recovered
			unrecovered += sum.Detected // SRTR must leave nothing merely detected
			simCycles += float64(sum.TotalCycles)
			cov := sum.Coverage()
			covSums[iv] = append(covSums[iv], cov)
			if sum.Recovered > 0 {
				latSums[iv] = append(latSums[iv], sum.MeanRecoveryCycles)
			}
			row = append(row, fmt.Sprintf("%.3f", cov), fmt.Sprintf("%.0f", sum.MeanRecoveryCycles))
		}
		t.AddRow(row...)
	}
	summary := map[string]float64{
		"recovered":   float64(recovered),
		"unrecovered": float64(unrecovered),
		"simcycles":   simCycles,
	}
	mrow := []string{"MEAN"}
	for _, iv := range intervals {
		cov := stats.ArithMean(covSums[iv])
		lat := stats.ArithMean(latSums[iv])
		summary[fmt.Sprintf("coverage.i%d", iv)] = cov
		summary[fmt.Sprintf("rlat.i%d", iv)] = lat
		mrow = append(mrow, fmt.Sprintf("%.3f", cov), fmt.Sprintf("%.0f", lat))
	}
	t.AddRow(mrow...)
	return t, summary, nil
}

// protectedFrac is the fraction of static instruction sites the adaptive
// protection table keeps inside the sphere of replication (1.0 when the
// table is nil: θ <= 0 protects everything, bit-identical to SRT).
func protectedFrac(m *sim.Machine) float64 {
	pair := m.Pairs[0]
	if len(pair.Protect) == 0 {
		return 1
	}
	n := 0
	for _, on := range pair.Protect {
		if on {
			n++
		}
	}
	return float64(n) / float64(len(pair.Protect))
}

// FigAdaptive maps the coverage/protection frontier of adaptive partial
// redundancy: as θ rises, the protected fraction of static sites falls,
// faults striking unprotected regions escape as silent data corruption,
// and campaign coverage decays from SRT's. Each θ row aggregates three
// kernels: a fault-free run (SMT-Efficiency and the protection table) plus
// an injection campaign classifying detected / masked / unprotected-SDC.
func FigAdaptive(p Params) (*stats.Table, map[string]float64, error) {
	cache := newBaseCache(p)
	thetas := []float64{0, 0.25, 0.5, 0.75, 0.95}
	kernels := []string{"gcc", "compress", "li"}
	t := &stats.Table{
		Title:   "Adaptive: partial-redundancy frontier (protection, efficiency, campaign coverage vs theta)",
		Columns: []string{"theta", "protected", "eff", "runs", "detected", "masked", "sdc", "coverage"},
	}
	t.Grow(len(thetas))
	var jobs []job
	for _, th := range thetas {
		for _, k := range kernels {
			jobs = append(jobs, job{p, sim.Spec{
				Mode: sim.ModeAdaptive, AdaptiveThreshold: th,
				PSR: true, Programs: []string{k},
			}})
		}
	}
	res, err := sweep(p, jobs, cache)
	if err != nil {
		return nil, nil, err
	}
	runsPer := p.CampaignRuns/len(kernels) + 1
	summary := map[string]float64{}
	simCycles := sumCycles(res)
	for ti, th := range thetas {
		var prot, effs []float64
		for ki := range kernels {
			r := res[ti*len(kernels)+ki]
			prot = append(prot, protectedFrac(r.m))
			effs = append(effs, meanEff(r.effs))
		}
		var det, msk, sdc, runs int
		for _, k := range kernels {
			spec := sim.Spec{
				Mode: sim.ModeAdaptive, Programs: []string{k},
				Budget: p.Budget / 2, Warmup: p.Warmup / 2,
				Config: p.Config, PSR: true,
				AdaptiveThreshold: th,
			}
			sum, err := fault.CampaignParallel(spec, runsPer, 0xADA^uint64(ti*31+len(k)),
				fault.CampaignOptions{Parallelism: p.Parallelism, Progress: p.Progress, OnReport: p.OnReport})
			if err != nil {
				return nil, nil, err
			}
			det += sum.Detected
			msk += sum.Masked
			sdc += sum.UnprotectedSDC
			runs += sum.Runs
			simCycles += float64(sum.TotalCycles)
		}
		cov := float64(det) / float64(max(det+msk+sdc, 1))
		tag := fmt.Sprintf("t%02.0f", th*100)
		summary["protected."+tag] = stats.ArithMean(prot)
		summary["eff."+tag] = stats.ArithMean(effs)
		summary["coverage."+tag] = cov
		summary["sdc."+tag] = float64(sdc)
		t.AddRow(fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%.3f", summary["protected."+tag]),
			fmt.Sprintf("%.3f", summary["eff."+tag]),
			fmt.Sprint(runs), fmt.Sprint(det), fmt.Sprint(msk), fmt.Sprint(sdc),
			fmt.Sprintf("%.3f", cov))
	}
	summary["simcycles"] = simCycles
	return t, summary, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
