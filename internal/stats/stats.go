// Package stats provides the counters, distributions and derived metrics
// used by the evaluation: per-thread instruction/cycle accounting, IPC, the
// paper's SMT-Efficiency metric (the Snavely-Tullsen weighted speedup), and
// store-lifetime tracking for the store-queue pressure analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple monotonic event counter.
type Counter uint64

// Inc adds 1.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the count.
func (c Counter) Value() uint64 { return uint64(c) }

// Mean tracks a running mean without storing samples.
type Mean struct {
	n   uint64
	sum float64
}

// Add records one sample.
func (m *Mean) Add(v float64) {
	m.n++
	m.sum += v
}

// N returns the sample count.
func (m *Mean) N() uint64 { return m.n }

// State exposes the accumulator internals for external serialization
// (machine-state snapshots). MeanFromState is its inverse.
func (m Mean) State() (n uint64, sum float64) { return m.n, m.sum }

// MeanFromState rebuilds a Mean from State's components.
func MeanFromState(n uint64, sum float64) Mean { return Mean{n: n, sum: sum} }

// Value returns the mean (0 for no samples).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Histogram is a fixed-bucket histogram for small non-negative values
// (occupancies, latencies). Values beyond the last bucket are clamped into
// it.
type Histogram struct {
	buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram returns a histogram with buckets [0, n).
func NewHistogram(n int) *Histogram {
	return &Histogram{buckets: make([]uint64, n)}
}

// Add records a sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// Total returns the sample count.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Buckets returns a copy of the bucket counts (index = sample value).
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	var acc uint64
	for i, b := range h.buckets {
		acc += b
		if acc >= target {
			return i
		}
	}
	return len(h.buckets) - 1
}

// ThreadStats accumulates per-hardware-thread counters during a run.
type ThreadStats struct {
	Committed Counter // retired instructions
	Loads     Counter
	Stores    Counter
	Branches  Counter

	BranchMispredicts Counter // direction/target wrong at execute
	LineMispredicts   Counter // line predictor wrong, branch predictor right
	LineFetches       Counter // line-predictor-driven fetch chunks

	ICacheMisses Counter
	DCacheMisses Counter

	// SQFullStalls counts rename stalls due to a full store queue; the
	// central SRT pressure statistic.
	SQFullStalls Counter
	IQFullStalls Counter
	LQFullStalls Counter

	// StoreLifetime samples cycles from SQ entry (rename) to SQ release.
	StoreLifetime Mean
	// LVQWaits counts trailing loads that found their LVQ entry not yet
	// forwarded.
	LVQWaits Counter
}

// LineMispredictRate returns line-predictor mispredictions per fetch chunk.
func (t *ThreadStats) LineMispredictRate() float64 {
	if t.LineFetches == 0 {
		return 0
	}
	return float64(t.LineMispredicts) / float64(t.LineFetches)
}

// BranchMispredictRate returns mispredictions per branch.
func (t *ThreadStats) BranchMispredictRate() float64 {
	if t.Branches == 0 {
		return 0
	}
	return float64(t.BranchMispredicts) / float64(t.Branches)
}

// RunStats is the result of one simulated run.
type RunStats struct {
	Cycles  uint64
	Threads []*ThreadStats
	// LogicalIPC maps logical thread index -> committed instructions of
	// its (leading) copy divided by cycles.
	LogicalIPC []float64
	// Extra carries experiment-specific measurements keyed by name
	// (e.g. "psr.same_half_frac").
	Extra map[string]float64
}

// IPCOf returns the IPC of hardware thread i.
func (r *RunStats) IPCOf(i int) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Threads[i].Committed) / float64(r.Cycles)
}

// TotalCommitted sums committed instructions across all hardware threads.
func (r *RunStats) TotalCommitted() uint64 {
	var n uint64
	for _, t := range r.Threads {
		n += t.Committed.Value()
	}
	return n
}

// SMTEfficiency computes the paper's evaluation metric for one run: the
// arithmetic mean over logical threads of IPC(thread in this mode) /
// IPC(thread alone on the base machine). baseIPC[i] must be the
// single-thread base-machine IPC of logical thread i.
func SMTEfficiency(logicalIPC, baseIPC []float64) float64 {
	if len(logicalIPC) != len(baseIPC) || len(logicalIPC) == 0 {
		return 0
	}
	var sum float64
	for i := range logicalIPC {
		if baseIPC[i] == 0 {
			return 0
		}
		sum += logicalIPC[i] / baseIPC[i]
	}
	return sum / float64(len(logicalIPC))
}

// GeoMean returns the geometric mean of vs (0 if any v <= 0).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// ArithMean returns the arithmetic mean of vs.
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Table is a simple text table for experiment reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Grow preallocates storage for n additional rows. Experiment sweeps
// assemble tables of known size, so growing once up front keeps result
// assembly free of append reallocation.
func (t *Table) Grow(n int) {
	if cap(t.Rows)-len(t.Rows) >= n {
		return
	}
	rows := make([][]string, len(t.Rows), len(t.Rows)+n)
	copy(rows, t.Rows)
	t.Rows = rows
}

// AddRow appends a row; cells beyond len(Columns) are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting float cells with 3 decimals.
func (t *Table) AddRowf(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.3f", v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted cells where
// needed), suitable for plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Columns {
			if i > 0 {
				b.WriteByte(',')
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed float map; report
// output must be deterministic.
func SortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
