package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean should be 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Value() != 2.5 || m.N() != 4 {
		t.Errorf("mean = %v n = %d", m.Value(), m.N())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Add(i % 10)
	}
	if h.Total() != 100 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Mean() != 4.5 {
		t.Errorf("mean = %v, want 4.5", h.Mean())
	}
	if p := h.Percentile(50); p != 4 {
		t.Errorf("p50 = %d, want 4", p)
	}
	if p := h.Percentile(100); p != 9 {
		t.Errorf("p100 = %d, want 9", p)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-5)
	h.Add(100)
	if h.Total() != 2 {
		t.Errorf("total = %d", h.Total())
	}
	if p := h.Percentile(100); p != 3 {
		t.Errorf("clamped max percentile = %d", p)
	}
}

func TestSMTEfficiency(t *testing.T) {
	// Two threads at half their solo IPC: efficiency 0.5.
	got := SMTEfficiency([]float64{1.0, 2.0}, []float64{2.0, 4.0})
	if got != 0.5 {
		t.Errorf("efficiency = %v, want 0.5", got)
	}
	if SMTEfficiency([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched lengths should yield 0")
	}
	if SMTEfficiency([]float64{1}, []float64{0}) != 0 {
		t.Error("zero base IPC should yield 0")
	}
}

func TestSMTEfficiencyQuickBounds(t *testing.T) {
	// Property: with 0 < ipc <= base, efficiency lies in (0, 1].
	f := func(ipcs []float64) bool {
		if len(ipcs) == 0 {
			return true
		}
		var logical, base []float64
		for _, v := range ipcs {
			v = math.Abs(v)
			if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				v = 1
			}
			base = append(base, v+1)
			logical = append(logical, (v+1)/2)
		}
		e := SMTEfficiency(logical, base)
		return e > 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeans(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if g := GeoMean([]float64{2, 0}); g != 0 {
		t.Errorf("geomean with zero = %v", g)
	}
	if a := ArithMean([]float64{1, 3}); a != 2 {
		t.Errorf("arithmean = %v", a)
	}
	if ArithMean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "v"}}
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	s := tb.String()
	for _, want := range []string{"demo", "alpha", "beta", "2.500", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Extra cells are dropped, never panic.
	tb.AddRow("x", "y", "z", "overflow")
	_ = tb.String()
}

func TestThreadStatsRates(t *testing.T) {
	ts := &ThreadStats{}
	if ts.BranchMispredictRate() != 0 || ts.LineMispredictRate() != 0 {
		t.Error("rates with no samples should be 0")
	}
	ts.Branches.Add(10)
	ts.BranchMispredicts.Add(2)
	ts.LineFetches.Add(100)
	ts.LineMispredicts.Add(25)
	if ts.BranchMispredictRate() != 0.2 {
		t.Errorf("branch rate = %v", ts.BranchMispredictRate())
	}
	if ts.LineMispredictRate() != 0.25 {
		t.Errorf("line rate = %v", ts.LineMispredictRate())
	}
}

func TestRunStats(t *testing.T) {
	rs := &RunStats{Cycles: 100}
	a, b := &ThreadStats{}, &ThreadStats{}
	a.Committed.Add(150)
	b.Committed.Add(50)
	rs.Threads = []*ThreadStats{a, b}
	if rs.IPCOf(0) != 1.5 || rs.IPCOf(1) != 0.5 {
		t.Errorf("IPCs = %v, %v", rs.IPCOf(0), rs.IPCOf(1))
	}
	if rs.TotalCommitted() != 200 {
		t.Errorf("total = %d", rs.TotalCommitted())
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Errorf("keys = %v", ks)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,1", "plain")
	tb.AddRow(`quo"te`, "2")
	got := tb.CSV()
	want := "a,b\n\"x,1\",plain\n\"quo\"\"te\",2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
