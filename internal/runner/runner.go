// Package runner schedules independent simulation jobs across a worker
// pool. The paper's evaluation is embarrassingly parallel — every
// (kernel, configuration) simulation is independent — so the experiment
// drivers declare their job lists and hand them here instead of looping
// inline.
//
// Determinism contract: results are keyed by job index, not completion
// order, so callers that assemble tables from the returned slice produce
// byte-identical output at any parallelism. On failure the error with the
// lowest job index is returned — the same error a serial run would have
// stopped on.
package runner

import (
	"runtime"
	"sync"
	"time"
)

// Options configure one Run.
type Options struct {
	// Parallelism is the worker-goroutine count; values <= 0 select
	// runtime.GOMAXPROCS(0). 1 reproduces a serial run exactly.
	Parallelism int
	// Progress, when non-nil, is called after each job finishes with the
	// number of completed jobs and the total. Calls are serialized and
	// done is strictly increasing.
	Progress func(done, total int)
}

// Report describes how a Run spent its time.
type Report struct {
	// Jobs is the number of jobs submitted; Ran counts those that
	// actually executed (fewer than Jobs only when an error cancelled
	// the remainder).
	Jobs, Ran int
	// Parallelism is the resolved worker count.
	Parallelism int
	// Wall is the elapsed wall-clock time of the Run; Busy is the summed
	// duration of the individual jobs — approximately what a serial run
	// would have cost.
	Wall, Busy time.Duration
}

// Speedup returns Busy/Wall — the effective parallel speedup over a
// serial execution of the same jobs.
func (r Report) Speedup() float64 {
	if r.Wall <= 0 || r.Busy <= 0 {
		return 1
	}
	return float64(r.Busy) / float64(r.Wall)
}

// Add merges another report into r (for aggregating across sweeps).
func (r *Report) Add(o Report) {
	r.Jobs += o.Jobs
	r.Ran += o.Ran
	if o.Parallelism > r.Parallelism {
		r.Parallelism = o.Parallelism
	}
	r.Wall += o.Wall
	r.Busy += o.Busy
}

// Run executes jobs across a worker pool and returns their results in job
// order. The first job error (lowest index among jobs that ran) cancels
// all not-yet-started jobs and is returned; in-flight jobs run to
// completion. A nil error guarantees every result slot is populated.
func Run[T any](jobs []func() (T, error), opts Options) ([]T, Report, error) {
	n := len(jobs)
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	durs := make([]time.Duration, n)

	var (
		mu     sync.Mutex // guards next, done, failed, Progress calls
		next   int
		done   int
		failed bool
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	finish := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failed = true
		}
		done++
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}

	start := time.Now() //rmtlint:allow determinism — wall-clock feeds only the stderr timing Report, never canonical output
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				t0 := time.Now() //rmtlint:allow determinism — per-job Busy time for the stderr timing Report only
				v, err := jobs[i]()
				durs[i] = time.Since(t0)
				if err != nil {
					errs[i] = err
				} else {
					results[i] = v
				}
				finish(i, err)
			}
		}()
	}
	wg.Wait()

	rep := Report{Jobs: n, Ran: done, Parallelism: workers, Wall: time.Since(start)}
	for _, d := range durs {
		rep.Busy += d
	}
	for _, err := range errs {
		if err != nil {
			return nil, rep, err
		}
	}
	return results, rep, nil
}
