package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestOrdering: results come back keyed by job index regardless of the
// order workers complete them.
func TestOrdering(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		n := 64
		jobs := make([]func() (int, error), n)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) { return i * i, nil }
		}
		got, rep, err := Run(jobs, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
		if rep.Jobs != n || rep.Ran != n {
			t.Errorf("parallelism %d: report jobs=%d ran=%d, want %d", par, rep.Jobs, rep.Ran, n)
		}
	}
}

// TestErrorCancelsRemaining: after a failure, not-yet-started jobs are
// skipped and the failing error is propagated.
func TestErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	n := 100
	jobs := make([]func() (int, error), n)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		}
	}
	_, rep, err := Run(jobs, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Jobs in flight when the failure lands still finish, but the long
	// tail must have been cancelled.
	if got := ran.Load(); got >= int64(n) {
		t.Errorf("all %d jobs ran despite early failure", got)
	}
	if rep.Ran >= rep.Jobs {
		t.Errorf("report ran=%d jobs=%d: expected cancellation", rep.Ran, rep.Jobs)
	}
}

// TestLowestIndexError: with several failures the reported error is the
// lowest-index one — what a serial run would have stopped on.
func TestLowestIndexError(t *testing.T) {
	jobs := make([]func() (int, error), 8)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) {
			if i >= 2 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		}
	}
	// High parallelism so several failures land concurrently.
	_, _, err := Run(jobs, Options{Parallelism: 8})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got, want := err.Error(), "job 2 failed"; got != want {
		t.Errorf("err = %q, want %q (lowest index)", got, want)
	}
}

// TestProgressMonotonic: progress callbacks are serialized with strictly
// increasing done counts ending at the total.
func TestProgressMonotonic(t *testing.T) {
	n := 50
	jobs := make([]func() (int, error), n)
	for i := range jobs {
		jobs[i] = func() (int, error) { return 0, nil }
	}
	last := 0
	_, _, err := Run(jobs, Options{Parallelism: 8, Progress: func(done, total int) {
		if done != last+1 {
			t.Errorf("progress jumped %d -> %d", last, done)
		}
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		last = done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last != n {
		t.Errorf("final progress = %d, want %d", last, n)
	}
}

// TestEmptyAndDefaults: zero jobs is a no-op; parallelism <= 0 resolves
// to a positive worker count.
func TestEmptyAndDefaults(t *testing.T) {
	got, rep, err := Run[int](nil, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: results=%v err=%v", got, err)
	}
	if rep.Speedup() != 1 {
		t.Errorf("empty report speedup = %v, want 1", rep.Speedup())
	}
	jobs := []func() (string, error){func() (string, error) { return "ok", nil }}
	res, rep, err := Run(jobs, Options{Parallelism: -3})
	if err != nil || res[0] != "ok" {
		t.Fatalf("default parallelism run: %v %v", res, err)
	}
	if rep.Parallelism < 1 {
		t.Errorf("resolved parallelism = %d, want >= 1", rep.Parallelism)
	}
}

// TestReportAdd: aggregation across sweeps sums jobs and times.
func TestReportAdd(t *testing.T) {
	a := Report{Jobs: 2, Ran: 2, Parallelism: 2, Wall: 10, Busy: 15}
	a.Add(Report{Jobs: 3, Ran: 3, Parallelism: 4, Wall: 5, Busy: 20})
	if a.Jobs != 5 || a.Ran != 5 || a.Parallelism != 4 || a.Wall != 15 || a.Busy != 35 {
		t.Errorf("merged report = %+v", a)
	}
}
