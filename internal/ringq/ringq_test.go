package ringq

import "testing"

func TestFIFOOrder(t *testing.T) {
	r := New[int](5)
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	for i := 1; i <= 5; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty")
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](3)
	r.Push(1)
	r.Push(2)
	r.Pop()
	r.Push(3)
	r.Push(4) // wraps: internal size is 4, capacity 3
	want := []int{2, 3, 4}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if r.Front() != 2 {
		t.Fatalf("front = %d, want 2", r.Front())
	}
}

func TestCapacityRounding(t *testing.T) {
	r := New[int](5)
	if r.Cap() != 5 {
		t.Fatalf("cap = %d, want 5", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push beyond capacity did not panic")
		}
	}()
	r.Push(99) // must panic at the logical capacity, not the pow2 size
}

func TestRemove(t *testing.T) {
	r := New[int](8)
	// Cycle the head off zero so removal exercises wrapped indices.
	r.Push(-1)
	r.Push(-2)
	r.Pop()
	r.Pop()
	for i := 1; i <= 6; i++ {
		r.Push(i * 10)
	}
	if r.Remove(999) {
		t.Fatal("removed an element that is not present")
	}
	if !r.Remove(10) { // front: O(1) path
		t.Fatal("front remove failed")
	}
	if !r.Remove(40) { // middle: shift path
		t.Fatal("middle remove failed")
	}
	if !r.Remove(60) { // back
		t.Fatal("back remove failed")
	}
	want := []int{20, 30, 50}
	if r.Len() != len(want) {
		t.Fatalf("len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("after removes At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRemoveAt(t *testing.T) {
	// Every (occupancy, index) combination on a wrapped ring, checked
	// against a reference slice: both shift directions, both boundaries.
	for n := 1; n <= 6; n++ {
		for i := 0; i < n; i++ {
			r := New[int](6)
			// Cycle the head to force wrapped indices.
			for k := 0; k < 5; k++ {
				r.Push(-1)
				r.Pop()
			}
			var want []int
			for k := 0; k < n; k++ {
				r.Push(k * 10)
				want = append(want, k*10)
			}
			r.RemoveAt(i)
			want = append(want[:i], want[i+1:]...)
			if r.Len() != len(want) {
				t.Fatalf("n=%d i=%d: len = %d, want %d", n, i, r.Len(), len(want))
			}
			for k, w := range want {
				if got := r.At(k); got != w {
					t.Fatalf("n=%d i=%d: At(%d) = %d, want %d", n, i, k, got, w)
				}
			}
			// The vacated slot must be usable again without overflow.
			r.Push(999)
			if got := r.At(r.Len() - 1); got != 999 {
				t.Fatalf("n=%d i=%d: push after remove = %d, want 999", n, i, got)
			}
		}
	}
}

// TestFullEmptyRefillWraparound cycles every capacity (power-of-two and
// not) through fill-to-exact-capacity → drain-to-empty → refill, enough
// times that the head crosses the backing array's wrap point at every
// alignment. Each phase checks occupancy, FIFO order, Front/At agreement,
// and that the capacity boundary panics exactly at cap — the off-by-one
// surface of a ring whose backing size exceeds its logical capacity.
func TestFullEmptyRefillWraparound(t *testing.T) {
	for capacity := 1; capacity <= 9; capacity++ {
		r := New[int](capacity)
		next := 0
		for cycle := 0; cycle < 2*capacity+3; cycle++ {
			// Fill to exact capacity.
			base := next
			for i := 0; i < capacity; i++ {
				if r.Full() {
					t.Fatalf("cap=%d cycle=%d: Full() at occupancy %d", capacity, cycle, r.Len())
				}
				r.Push(next)
				next++
			}
			if !r.Full() || r.Len() != capacity {
				t.Fatalf("cap=%d cycle=%d: after fill Len=%d Full=%v", capacity, cycle, r.Len(), r.Full())
			}
			mustPanic(t, func() { r.Push(-1) }, "push beyond exact capacity")
			// Indexed reads agree with insertion order while full.
			for i := 0; i < capacity; i++ {
				if got := r.At(i); got != base+i {
					t.Fatalf("cap=%d cycle=%d: At(%d) = %d, want %d", capacity, cycle, i, got, base+i)
				}
			}
			// Drain to empty in FIFO order.
			for i := 0; i < capacity; i++ {
				if r.Front() != base+i {
					t.Fatalf("cap=%d cycle=%d: Front = %d, want %d", capacity, cycle, r.Front(), base+i)
				}
				if got := r.Pop(); got != base+i {
					t.Fatalf("cap=%d cycle=%d: Pop = %d, want %d", capacity, cycle, got, base+i)
				}
			}
			if !r.Empty() || r.Len() != 0 {
				t.Fatalf("cap=%d cycle=%d: after drain Len=%d Empty=%v", capacity, cycle, r.Len(), r.Empty())
			}
			mustPanic(t, func() { r.Pop() }, "pop of empty ring")
			mustPanic(t, func() { r.Front() }, "front of empty ring")
			// Shift the head by one so the next cycle starts at a new
			// alignment; over 2*cap+3 cycles every wrap offset is hit.
			r.Push(next)
			next++
			r.Pop()
		}
	}
}

// TestRefillAfterPartialDrainAtCapacity holds the ring at capacity while
// sliding the window one slot per step — the steady state of the
// pipeline's rate-matching buffer — and checks element identity across
// more than two full traversals of the backing array.
func TestRefillAfterPartialDrainAtCapacity(t *testing.T) {
	for capacity := 1; capacity <= 9; capacity++ {
		r := New[int](capacity)
		for i := 0; i < capacity; i++ {
			r.Push(i)
		}
		oldest := 0
		for step := 0; step < 3*capacity+5; step++ {
			if got := r.Pop(); got != oldest {
				t.Fatalf("cap=%d step=%d: Pop = %d, want %d", capacity, step, got, oldest)
			}
			oldest++
			r.Push(capacity + step)
			if !r.Full() {
				t.Fatalf("cap=%d step=%d: window slide lost capacity (Len=%d)", capacity, step, r.Len())
			}
			for i := 0; i < capacity; i++ {
				if got := r.At(i); got != oldest+i {
					t.Fatalf("cap=%d step=%d: At(%d) = %d, want %d", capacity, step, i, got, oldest+i)
				}
			}
		}
	}
}

// TestRemoveOnFullWrappedRing removes from every index of a ring that is
// simultaneously full and wrapped, then refills to capacity — Remove's
// shift path must leave the vacated slot reusable at every alignment.
func TestRemoveOnFullWrappedRing(t *testing.T) {
	for capacity := 2; capacity <= 7; capacity++ {
		for shift := 0; shift <= 2*capacity; shift++ {
			for victim := 0; victim < capacity; victim++ {
				r := New[int](capacity)
				for k := 0; k < shift; k++ {
					r.Push(-1)
					r.Pop()
				}
				want := make([]int, 0, capacity)
				for k := 0; k < capacity; k++ {
					r.Push(k * 10)
					want = append(want, k*10)
				}
				if !r.Remove(victim * 10) {
					t.Fatalf("cap=%d shift=%d: Remove(%d) not found", capacity, shift, victim*10)
				}
				want = append(want[:victim], want[victim+1:]...)
				r.Push(999)
				want = append(want, 999)
				if r.Len() != len(want) || !r.Full() {
					t.Fatalf("cap=%d shift=%d victim=%d: Len=%d Full=%v after remove+refill",
						capacity, shift, victim, r.Len(), r.Full())
				}
				for i, w := range want {
					if got := r.At(i); got != w {
						t.Fatalf("cap=%d shift=%d victim=%d: At(%d) = %d, want %d",
							capacity, shift, victim, i, got, w)
					}
				}
			}
		}
	}
}

func mustPanic(t *testing.T, fn func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestPushPopSteadyStateDoesNotAllocate(t *testing.T) {
	r := New[*int](16)
	vals := make([]*int, 16)
	for i := range vals {
		vals[i] = new(int)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, v := range vals {
			r.Push(v)
		}
		for range vals {
			r.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run", allocs)
	}
}
