package ringq

import "testing"

func TestFIFOOrder(t *testing.T) {
	r := New[int](5)
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	for i := 1; i <= 5; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty")
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](3)
	r.Push(1)
	r.Push(2)
	r.Pop()
	r.Push(3)
	r.Push(4) // wraps: internal size is 4, capacity 3
	want := []int{2, 3, 4}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if r.Front() != 2 {
		t.Fatalf("front = %d, want 2", r.Front())
	}
}

func TestCapacityRounding(t *testing.T) {
	r := New[int](5)
	if r.Cap() != 5 {
		t.Fatalf("cap = %d, want 5", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push beyond capacity did not panic")
		}
	}()
	r.Push(99) // must panic at the logical capacity, not the pow2 size
}

func TestRemove(t *testing.T) {
	r := New[int](8)
	// Cycle the head off zero so removal exercises wrapped indices.
	r.Push(-1)
	r.Push(-2)
	r.Pop()
	r.Pop()
	for i := 1; i <= 6; i++ {
		r.Push(i * 10)
	}
	if r.Remove(999) {
		t.Fatal("removed an element that is not present")
	}
	if !r.Remove(10) { // front: O(1) path
		t.Fatal("front remove failed")
	}
	if !r.Remove(40) { // middle: shift path
		t.Fatal("middle remove failed")
	}
	if !r.Remove(60) { // back
		t.Fatal("back remove failed")
	}
	want := []int{20, 30, 50}
	if r.Len() != len(want) {
		t.Fatalf("len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("after removes At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRemoveAt(t *testing.T) {
	// Every (occupancy, index) combination on a wrapped ring, checked
	// against a reference slice: both shift directions, both boundaries.
	for n := 1; n <= 6; n++ {
		for i := 0; i < n; i++ {
			r := New[int](6)
			// Cycle the head to force wrapped indices.
			for k := 0; k < 5; k++ {
				r.Push(-1)
				r.Pop()
			}
			var want []int
			for k := 0; k < n; k++ {
				r.Push(k * 10)
				want = append(want, k*10)
			}
			r.RemoveAt(i)
			want = append(want[:i], want[i+1:]...)
			if r.Len() != len(want) {
				t.Fatalf("n=%d i=%d: len = %d, want %d", n, i, r.Len(), len(want))
			}
			for k, w := range want {
				if got := r.At(k); got != w {
					t.Fatalf("n=%d i=%d: At(%d) = %d, want %d", n, i, k, got, w)
				}
			}
			// The vacated slot must be usable again without overflow.
			r.Push(999)
			if got := r.At(r.Len() - 1); got != 999 {
				t.Fatalf("n=%d i=%d: push after remove = %d, want 999", n, i, got)
			}
		}
	}
}

func TestPushPopSteadyStateDoesNotAllocate(t *testing.T) {
	r := New[*int](16)
	vals := make([]*int, 16)
	for i := range vals {
		vals[i] = new(int)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, v := range vals {
			r.Push(v)
		}
		for range vals {
			r.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run", allocs)
	}
}
