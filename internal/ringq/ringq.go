// Package ringq provides the fixed-capacity ring buffer backing the
// pipeline's bounded queues (ROB, rate-matching buffer, store lists). Every
// hardware structure the timing model simulates has a capacity fixed by
// Table 1 of the paper, so the backing storage is allocated once at machine
// construction and never grows: pushes and pops in the per-cycle hot loop
// are pointer arithmetic on a preallocated array, with none of the
// append-grow / slice-shift garbage the naive []T representation churns
// through.
//
// The zero Ring is not usable; construct with New. Push on a full ring and
// Pop on an empty ring panic: the pipeline checks occupancy against the
// modelled capacity before every insertion, so an overflow is a simulator
// bug, not a recoverable condition.
package ringq

import "fmt"

// Ring is a fixed-capacity FIFO with indexed access. The element order is
// insertion order (front = oldest), matching the program order the pipeline
// queues maintain.
type Ring[T comparable] struct {
	buf  []T
	mask int // len(buf)-1; len(buf) is a power of two >= capacity
	cap  int // logical capacity (panic threshold)
	head int
	n    int
}

// New returns a ring with the given logical capacity.
func New[T comparable](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ringq: capacity %d must be positive", capacity))
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring[T]{buf: make([]T, size), mask: size - 1, cap: capacity}
}

// Len returns the current occupancy.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the logical capacity.
func (r *Ring[T]) Cap() int { return r.cap }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.n >= r.cap }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Push appends v at the back. It panics when full.
func (r *Ring[T]) Push(v T) {
	if r.n >= r.cap {
		panic("ringq: push beyond capacity")
	}
	r.buf[(r.head+r.n)&r.mask] = v
	r.n++
}

// Pop removes and returns the front element. It panics when empty.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("ringq: pop of empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // drop the reference for the collector
	r.head = (r.head + 1) & r.mask
	r.n--
	return v
}

// Front returns the front (oldest) element. It panics when empty.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("ringq: front of empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th element from the front (0 = oldest). The panic
// message is a constant so the bounds check stays cheap enough for the
// compiler to inline At into the pipeline's per-cycle queue scans.
func (r *Ring[T]) At(i int) T {
	if uint(i) >= uint(r.n) {
		panic("ringq: index out of range")
	}
	return r.buf[(r.head+i)&r.mask]
}

// RemoveAt deletes the i-th element from the front, preserving the order of
// the remaining elements. Whichever side of i holds fewer elements is the
// side that shifts, so removals near the front (the pipeline scheduler's
// common case: the oldest ready instruction issues first) move almost
// nothing.
func (r *Ring[T]) RemoveAt(i int) {
	if uint(i) >= uint(r.n) {
		panic("ringq: remove index out of range")
	}
	var zero T
	if i <= r.n-1-i {
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)&r.mask] = r.buf[(r.head+j-1)&r.mask]
		}
		r.buf[r.head] = zero
		r.head = (r.head + 1) & r.mask
	} else {
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&r.mask] = r.buf[(r.head+j+1)&r.mask]
		}
		r.buf[(r.head+r.n-1)&r.mask] = zero
	}
	r.n--
}

// Remove deletes the first element equal to v, preserving the order of the
// remaining elements, and reports whether it was found. Removal at the front
// is O(1); elsewhere the elements behind it are shifted forward (the
// pipeline's store lists release almost exclusively at the front, so the
// shift path is cold).
func (r *Ring[T]) Remove(v T) bool {
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head+i)&r.mask] != v {
			continue
		}
		if i == 0 {
			r.Pop()
			return true
		}
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&r.mask] = r.buf[(r.head+j+1)&r.mask]
		}
		var zero T
		r.buf[(r.head+r.n-1)&r.mask] = zero
		r.n--
		return true
	}
	return false
}
