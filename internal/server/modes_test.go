// The mode round-trip exhaustiveness battery: every machine organisation
// internal/sim enumerates must survive the whole naming chain unchanged —
// Mode.String → cliflags.ParseMode → rmt.ParseMode → the daemon's
// canonical request key → the campaign handler's engine-mode resolution.
// A mode added to the engine but not plumbed through any one of these
// layers fails here, not in a user's terminal.
package server

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cliflags"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/rmt"
)

func TestModeRoundTripExhaustive(t *testing.T) {
	if len(sim.Modes()) != len(rmt.Modes()) {
		t.Fatalf("facade exposes %d modes, engine has %d", len(rmt.Modes()), len(sim.Modes()))
	}
	for _, im := range sim.Modes() {
		name := im.String()
		t.Run(name, func(t *testing.T) {
			// CLI layer: the engine mode's own name parses back to it.
			cm, err := cliflags.ParseMode(name)
			if err != nil {
				t.Fatalf("cliflags.ParseMode(%q): %v", name, err)
			}
			if cm != im {
				t.Fatalf("cliflags.ParseMode(%q) = %v, want %v", name, cm, im)
			}

			// Facade layer: same name, same spelling back out.
			rm, err := rmt.ParseMode(name)
			if err != nil {
				t.Fatalf("rmt.ParseMode(%q): %v", name, err)
			}
			if got := rm.String(); got != name {
				t.Fatalf("rmt mode %v spells itself %q, engine says %q", rm, got, name)
			}

			// Wire layer: a /run request in this mode canonicalises with the
			// mode name intact (normalise must never rewrite a canonical
			// spelling into something else).
			body := fmt.Sprintf(`{"mode":%q,"programs":["li"]}`, name)
			req, mode, key, err := parseRun([]byte(body))
			if err != nil {
				t.Fatalf("parseRun: %v", err)
			}
			if mode != rm || req.Mode != name {
				t.Fatalf("parseRun resolved (%v, %q), want (%v, %q)", mode, req.Mode, rm, name)
			}
			if !strings.HasPrefix(key, "run:") {
				t.Fatalf("canonical key %q lacks endpoint prefix", key)
			}
			// Canonicalisation is a fixed point: re-parsing the normalised
			// request yields the same key.
			enc := fmt.Sprintf(`{"mode":%q,"programs":["li"],"budget":%d,"warmup":%d}`,
				req.Mode, req.Budget, req.Warmup)
			if _, _, key2, err := parseRun([]byte(enc)); err != nil || key2 != key {
				t.Fatalf("canonical key not a fixed point: %q vs %q (%v)", key, key2, err)
			}

			// Campaign resolution: the wire gate and the handler's engine
			// mapping must accept exactly the modes the fault engine runs
			// campaigns for, and map each back to the engine mode we started
			// from.
			cbody := fmt.Sprintf(`{"mode":%q,"programs":["li"],"n":4}`, name)
			_, cmode, _, cerr := parseCampaign([]byte(cbody))
			if fault.CampaignMode(im) {
				if cerr != nil {
					t.Fatalf("parseCampaign rejects campaign-capable mode: %v", cerr)
				}
				simMode, err := campaignSimMode(cmode)
				if err != nil {
					t.Fatalf("campaignSimMode(%v): %v", cmode, err)
				}
				if simMode != im {
					t.Fatalf("server resolves %q to engine mode %v, want %v", name, simMode, im)
				}
			} else if cerr == nil {
				t.Fatalf("parseCampaign accepted %q, but the fault engine cannot campaign it", name)
			}
		})
	}
}
