package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/progen"
	"repro/internal/sim"
	"repro/rmt"
)

// Generated kernels over the wire: rmtd must serve "gen:<seed>" names as
// first-class experiment identities — same validation path, same
// canonical cache keys, same byte-for-byte agreement with the local
// runner the curated kernels get.

// TestGenCRTMixCampaignEndpointMatchesDirect is the acceptance criterion:
// a randomized 2-pair cross-coupled CRT mix served through /campaign
// agrees with a direct local fault.CampaignParallel on every aggregate
// and every per-trial outcome, and the repeat request is a cache hit
// serving identical bytes.
func TestGenCRTMixCampaignEndpointMatchesDirect(t *testing.T) {
	pair := progen.MixPairs(0xC0FFEE, 1)[0]
	_, ts := newTestServer(t, Config{SimParallelism: 2})
	const (
		n      = 6
		seed   = 11
		budget = 2500
		warmup = 1000
	)
	direct, err := fault.CampaignParallel(sim.Spec{
		Mode:     sim.ModeCRT,
		Programs: []string{pair[0], pair[1]},
		Budget:   budget,
		Warmup:   warmup,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	}, n, seed, fault.CampaignOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	body := fmt.Sprintf(`{"mode":"crt","programs":[%q,%q],"psr":true,"n":%d,"seed":%d,"budget":%d,"warmup":%d}`,
		pair[0], pair[1], n, seed, budget, warmup)
	r1, b1 := post(t, ts.URL+"/campaign", body)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", r1.StatusCode, b1)
	}
	var got CampaignResponse
	if err := json.Unmarshal(b1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Runs != direct.Runs || got.Detected != direct.Detected ||
		got.Masked != direct.Masked || got.NotFired != direct.NotFired ||
		got.Coverage != direct.Coverage() || got.TotalCycles != direct.TotalCycles {
		t.Fatalf("gen CRT mix campaign response %+v disagrees with direct summary", got)
	}
	for i, res := range direct.Results {
		if got.Outcomes[i] != res.Outcome.String() {
			t.Fatalf("outcome %d = %q, want %q", i, got.Outcomes[i], res.Outcome)
		}
	}

	r2, b2 := post(t, ts.URL+"/campaign", body)
	if r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second gen campaign X-Cache = %q, want hit", r2.Header.Get("X-Cache"))
	}
	if string(b1) != string(b2) {
		t.Fatalf("cached gen campaign served different bytes")
	}
}

// TestGenRunByteEqualsDirect: a single generated kernel through /run is
// byte-identical to the direct facade encoding — Build-side resolution of
// gen names cannot fork server and library behaviour.
func TestGenRunByteEqualsDirect(t *testing.T) {
	name := progen.Name(progen.CorpusSeeds(0xC0FFEE, 1)[0])
	_, ts := newTestServer(t, Config{})
	direct, err := rmt.Run(context.Background(), rmt.Spec{Mode: rmt.SRT, Programs: []string{name}},
		rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeResult(direct)
	resp, got := post(t, ts.URL+"/run", runBody("srt", name, tBudget, tWarmup))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("/run gen response differs from direct encoding:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestGenUnknownNameRejected: non-canonical gen spellings are 400s, not
// silently-distinct cache keys for the same experiment.
func TestGenUnknownNameRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, bad := range []string{"gen:", "gen:01", "gen:0x10", "gen:1 "} {
		resp, b := post(t, ts.URL+"/run", runBody("srt", bad, tBudget, tWarmup))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("kernel %q: status %d (%s), want 400", bad, resp.StatusCode, b)
		}
	}
}
