// Wire format of the rmtd HTTP/JSON API, and the content-addressed keys
// the result cache is indexed by.
//
// A request is canonicalised before anything else happens to it: the JSON
// body is decoded into a fixed struct (so incoming field order is
// irrelevant), validated, normalised (default sizes resolved, fields the
// selected mode ignores zeroed), and re-marshalled with the struct's fixed
// field order. The SHA-256 of that canonical encoding, prefixed with the
// endpoint name, is the cache key. encoding/json emits every field of the
// normalised struct exactly once in declaration order, so the canonical
// encoding — and therefore the key — is injective on normalised requests:
// distinct experiments never collide, and the same experiment always maps
// to the same key however its JSON was spelled. FuzzCanonicalKey holds
// this contract in place.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/rmt"
)

// maxBodyBytes bounds a request body; a sweep of every kernel in every
// mode fits in a few KB, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// SpecWire is the JSON form of one simulation spec. It mirrors rmt.Spec
// with the mode spelled by name, plus the sizing that rmt passes as
// options (0 = server default, resolved during canonicalisation).
type SpecWire struct {
	Mode               string   `json:"mode"`
	Programs           []string `json:"programs"`
	PSR                bool     `json:"psr"`
	PerThreadSQ        bool     `json:"per_thread_sq"`
	NoStoreComparison  bool     `json:"no_store_comparison"`
	CheckerLatency     uint64   `json:"checker_latency"`
	AdaptiveThreshold  float64  `json:"adaptive_threshold"`
	CheckpointInterval uint64   `json:"checkpoint_interval"`
}

// validate checks the spec and returns its parsed mode.
func (s *SpecWire) validate() (rmt.Mode, error) {
	mode, err := rmt.ParseMode(s.Mode)
	if err != nil {
		return 0, err
	}
	if len(s.Programs) == 0 {
		return 0, fmt.Errorf("spec has no programs")
	}
	for _, p := range s.Programs {
		if !rmt.KnownKernel(p) {
			return 0, fmt.Errorf("unknown kernel %q (see rmt.Kernels() for the registry; generated kernels are \"gen:<seed>\")", p)
		}
	}
	return mode, nil
}

// normalise rewrites the spec into its canonical form: the mode name is
// the parsed mode's own String (so aliases or stray spellings cannot fork
// the key) and fields the mode ignores are zeroed (CheckerLatency only
// matters under lockstep, AdaptiveThreshold under adaptive,
// CheckpointInterval under srtr — an SRT spec with CheckerLatency 8 is
// the same experiment as one with 0 and must hit the same cache line).
func (s *SpecWire) normalise(mode rmt.Mode) {
	s.Mode = mode.String()
	if mode != rmt.Lockstep {
		s.CheckerLatency = 0
	}
	if mode != rmt.Adaptive {
		s.AdaptiveThreshold = 0
	}
	if mode != rmt.SRTR {
		s.CheckpointInterval = 0
	}
}

// toSpec converts the validated wire form to the facade's Spec.
func (s *SpecWire) toSpec(mode rmt.Mode) rmt.Spec {
	return rmt.Spec{
		Mode:               mode,
		Programs:           s.Programs,
		PSR:                s.PSR,
		PerThreadSQ:        s.PerThreadSQ,
		NoStoreComparison:  s.NoStoreComparison,
		CheckerLatency:     s.CheckerLatency,
		AdaptiveThreshold:  s.AdaptiveThreshold,
		CheckpointInterval: s.CheckpointInterval,
	}
}

// RunRequest is the body of POST /run.
type RunRequest struct {
	SpecWire
	// Budget/Warmup are instruction counts; 0 selects the rmt defaults
	// and is resolved to the concrete value before keying.
	Budget uint64 `json:"budget"`
	Warmup uint64 `json:"warmup"`
}

// SweepRequest is the body of POST /sweep: independent specs sharing one
// sizing, exactly like rmt.Sweep.
type SweepRequest struct {
	Specs  []SpecWire `json:"specs"`
	Budget uint64     `json:"budget"`
	Warmup uint64     `json:"warmup"`
}

// CampaignRequest is the body of POST /campaign: a deterministic
// transient-fault injection campaign (internal/fault) against an RMT mode.
type CampaignRequest struct {
	SpecWire
	// N is the number of injection trials; Seed draws the fault plan.
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
	// Budget/Warmup as in RunRequest (0 = campaign defaults).
	Budget uint64 `json:"budget"`
	Warmup uint64 `json:"warmup"`
}

// CampaignResponse is the body served for POST /campaign. The field set
// and order mirror rmt.CampaignSummary exactly — ClientContractBody pins
// the two encodings together.
type CampaignResponse struct {
	Runs                int     `json:"runs"`
	Detected            int     `json:"detected"`
	Masked              int     `json:"masked"`
	NotFired            int     `json:"not_fired"`
	Recovered           int     `json:"recovered"`
	UnprotectedSDC      int     `json:"unprotected_sdc"`
	Coverage            float64 `json:"coverage"`
	MeanDetectionCycles float64 `json:"mean_detection_cycles"`
	MeanRecoveryCycles  float64 `json:"mean_recovery_cycles"`
	TotalCycles         uint64  `json:"total_cycles"`
	// Outcomes lists the per-trial classification in trial order —
	// invariant to the server's campaign parallelism.
	Outcomes []string `json:"outcomes"`
}

// resolveSizes maps (budget, warmup) with 0 meaning "default" to the
// concrete defaults, so a request spelling the default explicitly and one
// omitting it are the same experiment (and the same cache key).
func resolveSizes(budget, warmup, defBudget, defWarmup uint64) (uint64, uint64) {
	if budget == 0 {
		budget = defBudget
	}
	if warmup == 0 {
		warmup = defWarmup
	}
	return budget, warmup
}

// Campaign sizing defaults, matching cmd/faultinject's full sizes.
const (
	defaultCampaignBudget uint64 = 20000
	defaultCampaignWarmup uint64 = 5000
	// maxCampaignTrials bounds one request's work.
	maxCampaignTrials = 10000
)

// canonicalKey hashes the canonical encoding of a normalised request
// under its endpoint name. The endpoint is part of the preimage so /run
// and a one-spec /sweep of the same experiment cannot share an entry
// (their response shapes differ).
func canonicalKey(endpoint string, normalised any) string {
	enc, err := json.Marshal(normalised)
	if err != nil {
		panic(fmt.Sprintf("server: canonical marshal cannot fail: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(enc)
	return endpoint + ":" + hex.EncodeToString(h.Sum(nil))
}

// decodeStrict decodes body into v, rejecting unknown fields and trailing
// garbage — a mistyped field name must be a 400, not a silently-distinct
// cache key.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// parseRun canonicalises a /run body: decoded, validated, normalised,
// keyed.
func parseRun(body []byte) (RunRequest, rmt.Mode, string, error) {
	var req RunRequest
	if err := decodeStrict(body, &req); err != nil {
		return req, 0, "", err
	}
	mode, err := req.validate()
	if err != nil {
		return req, 0, "", err
	}
	req.normalise(mode)
	req.Budget, req.Warmup = resolveSizes(req.Budget, req.Warmup, rmt.DefaultBudget, rmt.DefaultWarmup)
	return req, mode, canonicalKey("run", req), nil
}

// parseSweep canonicalises a /sweep body.
func parseSweep(body []byte) (SweepRequest, []rmt.Spec, string, error) {
	var req SweepRequest
	if err := decodeStrict(body, &req); err != nil {
		return req, nil, "", err
	}
	if len(req.Specs) == 0 {
		return req, nil, "", fmt.Errorf("sweep has no specs")
	}
	specs := make([]rmt.Spec, len(req.Specs))
	for i := range req.Specs {
		mode, err := req.Specs[i].validate()
		if err != nil {
			return req, nil, "", fmt.Errorf("spec %d: %w", i, err)
		}
		req.Specs[i].normalise(mode)
		specs[i] = req.Specs[i].toSpec(mode)
	}
	req.Budget, req.Warmup = resolveSizes(req.Budget, req.Warmup, rmt.DefaultBudget, rmt.DefaultWarmup)
	return req, specs, canonicalKey("sweep", req), nil
}

// parseCampaign canonicalises a /campaign body.
func parseCampaign(body []byte) (CampaignRequest, rmt.Mode, string, error) {
	var req CampaignRequest
	if err := decodeStrict(body, &req); err != nil {
		return req, 0, "", err
	}
	mode, err := req.validate()
	if err != nil {
		return req, 0, "", err
	}
	switch mode {
	case rmt.SRT, rmt.CRT, rmt.SRTR, rmt.Adaptive:
	default:
		return req, 0, "", fmt.Errorf("campaign requires an RMT mode (srt, crt, srtr or adaptive), got %s", mode)
	}
	if req.N <= 0 || req.N > maxCampaignTrials {
		return req, 0, "", fmt.Errorf("campaign n must be in 1..%d, got %d", maxCampaignTrials, req.N)
	}
	req.normalise(mode)
	req.Budget, req.Warmup = resolveSizes(req.Budget, req.Warmup, defaultCampaignBudget, defaultCampaignWarmup)
	return req, mode, canonicalKey("campaign", req), nil
}

// EncodeResult renders one rmt.Result exactly as /run serves it: indented
// JSON plus a trailing newline. The e2e battery compares /run bodies
// against this encoding of a direct rmt.Run result byte for byte.
func EncodeResult(res *rmt.Result) []byte {
	return encodeJSON(res)
}

// EncodeResults renders a result slice exactly as /sweep serves it.
func EncodeResults(results []*rmt.Result) []byte {
	return encodeJSON(results)
}

func encodeJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("server: response marshal cannot fail: %v", err))
	}
	return append(b, '\n')
}
