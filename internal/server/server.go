// Package server is rmtd's serving layer: a long-lived HTTP/JSON daemon
// over the rmt facade. It turns the batch experiment engine into a
// cache-fronted service:
//
//   - POST /run      one simulation (rmt.Run), canonical-keyed and cached
//   - POST /sweep    independent simulations (rmt.Sweep), results in input order
//   - POST /campaign a deterministic fault-injection campaign (internal/fault)
//   - GET  /healthz  liveness (503 while draining)
//   - GET  /metricsz the server's internal/metrics registry snapshot
//
// Requests are canonicalised into a content-addressed key (wire.go), so
// identical experiments — however their JSON is spelled — are computed
// once: an LRU cache serves repeats from memory, a single-flight group
// collapses concurrent duplicates onto one computation, and a bounded
// worker pool with a queue-depth admission limiter sheds overload as
// 429 + Retry-After instead of collapsing. Simulation results are pure
// functions of the canonical request, which is what makes serving cached
// bytes sound: a hit is byte-identical to a recompute.
//
// Shutdown drains: the listener closes immediately, in-flight requests
// run to completion, /healthz flips to 503.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/rmt"
)

// Config sizes a Server. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Workers bounds concurrently executing simulation requests
	// (default 2).
	Workers int
	// QueueDepth bounds requests waiting for a worker; beyond it the
	// server answers 429 (0 = default 8; negative = no queueing, shed
	// whenever every worker is busy).
	QueueDepth int
	// CacheEntries bounds the result cache (default 512 entries).
	CacheEntries int
	// SimParallelism fans one sweep's or campaign's internal jobs across
	// this many goroutines (default 1: request-level concurrency comes
	// from Workers). Results never depend on it.
	SimParallelism int
	// RetryAfter is the Retry-After hint on 429 responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.SimParallelism <= 0 {
		c.SimParallelism = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// latencyHist is a race-safe log2 latency histogram: bucket i counts
// requests whose wall latency in microseconds has bit-length i (so bucket
// boundaries double, 1µs..~1h), with the last bucket absorbing the tail.
type latencyHist struct {
	buckets    [32]atomic.Uint64
	total, sum atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
}

func (h *latencyHist) value() metrics.HistogramValue {
	v := metrics.HistogramValue{Buckets: make([]uint64, len(h.buckets))}
	for i := range h.buckets {
		v.Buckets[i] = h.buckets[i].Load()
	}
	v.Total = h.total.Load()
	v.Sum = h.sum.Load()
	return v
}

// endpointStats is the per-endpoint instrument block.
type endpointStats struct {
	requests atomic.Uint64
	computes atomic.Uint64
	errors   atomic.Uint64
	rejected atomic.Uint64
	latency  latencyHist
}

// Server is one rmtd instance.
type Server struct {
	cfg    Config
	cache  *lruCache
	flight *flightGroup
	lim    *limiter
	reg    *metrics.Registry
	mux    *http.ServeMux

	requests atomic.Uint64 // all endpoints; doubles as the /metricsz snapshot ordinal
	draining atomic.Bool

	run, sweep, campaign endpointStats

	httpServer *http.Server

	// computeWrap, when non-nil, wraps every cache-miss computation; the
	// test battery uses it to gate and observe computes. Never set in
	// production.
	computeWrap func(key string, compute func() ([]byte, error)) func() ([]byte, error)
}

// New builds a Server ready to serve via Handler, Serve or
// ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  newLRUCache(cfg.CacheEntries),
		flight: newFlightGroup(),
		lim:    newLimiter(cfg.Workers, cfg.QueueDepth),
		reg:    metrics.New(),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/campaign", s.handleCampaign)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	// Built here, not in Serve: Shutdown may run from another goroutine
	// before Serve (cmd/rmtd serves from a goroutine while main waits on
	// signals), and it must always see a valid pointer so an early signal
	// stops the server instead of racing a nil check.
	s.httpServer = &http.Server{Handler: s.mux}
	s.registerMetrics()
	return s
}

// registerMetrics wires the server's counters into an internal/metrics
// registry; every reader is an atomic load, so /metricsz is race-safe
// against in-flight handlers.
func (s *Server) registerMetrics() {
	s.reg.Gauge("rmtd_queue_depth", nil, func() float64 { return float64(s.lim.depth()) })
	s.reg.Gauge("rmtd_in_flight", nil, func() float64 { return float64(s.lim.inFlight()) })
	s.reg.Gauge("rmtd_cache_entries", nil, func() float64 {
		_, _, _, n := s.cache.stats()
		return float64(n)
	})
	s.reg.Counter("rmtd_cache_hits_total", nil, func() uint64 { h, _, _, _ := s.cache.stats(); return h })
	s.reg.Counter("rmtd_cache_misses_total", nil, func() uint64 { _, m, _, _ := s.cache.stats(); return m })
	s.reg.Counter("rmtd_cache_evictions_total", nil, func() uint64 { _, _, e, _ := s.cache.stats(); return e })
	s.reg.Gauge("rmtd_cache_hit_ratio", nil, func() float64 {
		h, m, _, _ := s.cache.stats()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	for _, ep := range []struct {
		name string
		st   *endpointStats
	}{
		{"run", &s.run}, {"sweep", &s.sweep}, {"campaign", &s.campaign},
	} {
		st := ep.st
		labels := metrics.Labels{"endpoint": ep.name}
		s.reg.Counter("rmtd_requests_total", labels, st.requests.Load)
		s.reg.Counter("rmtd_computes_total", labels, st.computes.Load)
		s.reg.Counter("rmtd_errors_total", labels, st.errors.Load)
		s.reg.Counter("rmtd_rejected_total", labels, st.rejected.Load)
		s.reg.Histogram("rmtd_request_latency_us", labels, st.latency.value)
	}
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean drain, like net/http. If Shutdown
// already ran, Serve closes l and returns http.ErrServerClosed
// immediately.
func (s *Server) Serve(l net.Listener) error {
	return s.httpServer.Serve(l)
}

// ListenAndServe binds addr and serves. The returned listener address is
// reported through ready (if non-nil) once the socket is bound — cmd/rmtd
// prints it, and tests bind ":0".
func (s *Server) ListenAndServe(addr string, ready func(net.Addr)) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(l.Addr())
	}
	return s.Serve(l)
}

// Shutdown stops accepting new connections and drains in-flight requests
// (bounded by ctx). /healthz answers 503 from the first call onward, so
// load balancers stop routing while the drain runs.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.httpServer.Shutdown(ctx)
}

// httpError is the JSON error body.
type httpError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(encodeJSON(httpError{Error: err.Error()}))
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Method != http.MethodPost {
		return nil, errMethod
	}
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

var errMethod = errors.New("use POST with a JSON body")

// serveCached is the shared request path: canonical key → single-flight
// → cache → admission → compute → cache fill. The cache probe happens
// inside the flight so a leader finishing between another request's probe
// and its flight join can never trigger a recompute. compute must be a
// pure function of the canonical request.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, st *endpointStats, key string, compute func() ([]byte, error)) {
	st.requests.Add(1)
	s.requests.Add(1)
	t0 := time.Now() //rmtlint:allow determinism — request latency metric; never reaches a response body
	defer func() { st.latency.observe(time.Since(t0)) }()

	// state is written only inside the flight closure, which runs on this
	// goroutine iff this request is the leader; followers keep "dedup".
	state := "dedup"
	b, err, _ := s.flight.do(key, func() ([]byte, error) {
		if b, ok := s.cache.get(key); ok {
			state = "hit"
			return b, nil
		}
		if err := s.lim.acquire(r.Context()); err != nil {
			return nil, err
		}
		defer s.lim.release()
		state = "miss"
		st.computes.Add(1)
		if s.computeWrap != nil {
			compute = s.computeWrap(key, compute)
		}
		out, err := compute()
		if err != nil {
			return nil, err
		}
		s.cache.put(key, out)
		return out, nil
	})
	switch {
	case err == nil:
		writeResult(w, b, state)
	case errors.Is(err, errOverloaded):
		st.rejected.Add(1)
		s.writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st.rejected.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, err)
	default:
		// Validation failed in the parse step before serveCached, so
		// anything left is the computation itself failing: a server-side
		// error, not the client's.
		st.errors.Add(1)
		s.writeError(w, http.StatusInternalServerError, err)
	}
}

func writeResult(w http.ResponseWriter, b []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Write(b)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	req, mode, key, err := parseRun(body)
	if err != nil {
		s.run.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCached(w, r, &s.run, key, func() ([]byte, error) {
		res, err := rmt.Run(r.Context(), req.toSpec(mode), rmt.WithBudget(req.Budget), rmt.WithWarmup(req.Warmup))
		if err != nil {
			return nil, err
		}
		return EncodeResult(res), nil
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	req, specs, key, err := parseSweep(body)
	if err != nil {
		s.sweep.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCached(w, r, &s.sweep, key, func() ([]byte, error) {
		results, err := rmt.Sweep(r.Context(), specs,
			rmt.WithBudget(req.Budget), rmt.WithWarmup(req.Warmup),
			rmt.WithParallelism(s.cfg.SimParallelism))
		if err != nil {
			return nil, err
		}
		return EncodeResults(results), nil
	})
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	req, mode, key, err := parseCampaign(body)
	if err != nil {
		s.campaign.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	simMode, err := campaignSimMode(mode)
	if err != nil {
		s.campaign.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCached(w, r, &s.campaign, key, func() ([]byte, error) {
		spec := sim.Spec{
			Mode:               simMode,
			Programs:           req.Programs,
			Budget:             req.Budget,
			Warmup:             req.Warmup,
			Config:             pipeline.DefaultConfig(),
			PSR:                req.PSR,
			PerThreadSQ:        req.PerThreadSQ,
			NoStoreComparison:  req.NoStoreComparison,
			AdaptiveThreshold:  req.AdaptiveThreshold,
			CheckpointInterval: req.CheckpointInterval,
		}
		sum, err := fault.CampaignParallel(spec, req.N, req.Seed,
			fault.CampaignOptions{Parallelism: s.cfg.SimParallelism})
		if err != nil {
			return nil, err
		}
		resp := CampaignResponse{
			Runs:                sum.Runs,
			Detected:            sum.Detected,
			Masked:              sum.Masked,
			NotFired:            sum.NotFired,
			Recovered:           sum.Recovered,
			UnprotectedSDC:      sum.UnprotectedSDC,
			Coverage:            sum.Coverage(),
			MeanDetectionCycles: sum.MeanDetectionCycles,
			MeanRecoveryCycles:  sum.MeanRecoveryCycles,
			TotalCycles:         sum.TotalCycles,
			Outcomes:            make([]string, 0, len(sum.Results)),
		}
		for _, res := range sum.Results {
			resp.Outcomes = append(resp.Outcomes, res.Outcome.String())
		}
		return encodeJSON(resp), nil
	})
}

// campaignSimMode resolves a campaign-capable facade mode to the engine
// mode handleCampaign builds. Kept as a function (not inline) so the mode
// round-trip battery can assert the server resolves every campaign mode
// the wire contract accepts.
func campaignSimMode(mode rmt.Mode) (sim.Mode, error) {
	switch mode {
	case rmt.SRT:
		return sim.ModeSRT, nil
	case rmt.CRT:
		return sim.ModeCRT, nil
	case rmt.SRTR:
		return sim.ModeSRTR, nil
	case rmt.Adaptive:
		return sim.ModeAdaptive, nil
	}
	return 0, fmt.Errorf("campaign mode %s has no engine mapping", mode)
}

func statusFor(err error) int {
	if errors.Is(err, errMethod) {
		return http.StatusMethodNotAllowed
	}
	return http.StatusBadRequest
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetricsz serves the metrics registry snapshot. The snapshot
// "cycle" is the total request count — a monotonic ordinal standing in
// for the simulation cycle the registry was designed around.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.Snapshot(s.requests.Load()).WriteJSON(w); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
	}
}
