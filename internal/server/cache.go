// Content-addressed result cache: a fixed-entry LRU over canonical
// request keys, fronted by single-flight deduplication so a stampede of
// identical requests computes once and fans the bytes out to every
// waiter.
package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// cacheEntry is one cached response body.
type cacheEntry struct {
	key   string
	bytes []byte
}

// lruCache is a mutex-guarded LRU keyed by canonical request key. Values
// are immutable response bodies, so a hit can hand the stored slice to
// any number of readers without copying.
type lruCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; elements hold *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

func newLRUCache(maxEntries int) *lruCache {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	return &lruCache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key, promoting the entry, and counts
// the hit or miss.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).bytes, true
}

// put inserts (or refreshes) key's bytes, evicting from the LRU tail.
func (c *lruCache) put(key string, b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).bytes = b
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, bytes: b})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats samples the counters for the metrics registry.
func (c *lruCache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, len(c.entries)
}

// flightCall is one in-flight computation other requests can latch onto.
type flightCall struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// flightGroup deduplicates concurrent computations by key: the first
// caller becomes the leader and runs fn, every concurrent duplicate
// blocks on the leader's result. Unlike a generic singleflight, the
// result is not re-fetched from the cache afterwards — waiters read the
// call record directly, so an eviction racing the fan-out cannot force a
// recompute.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn for key once among concurrent callers. leader reports
// whether this caller executed fn itself.
//
// A leader that fails with a context error failed because its OWN client
// gave up (canceled or timed out while queued for admission) — that says
// nothing about the followers, whose clients are still waiting. Followers
// therefore don't inherit such an error: they retry the flight, re-probing
// the cache and, if still empty, electing a new leader that runs fn under
// its own request's context. Every other error is a property of the
// computation itself and fans out to all waiters as before.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (b []byte, err error, leader bool) {
	for {
		g.mu.Lock()
		if call, ok := g.calls[key]; ok {
			g.mu.Unlock()
			<-call.done
			if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
				continue
			}
			return call.bytes, call.err, false
		}
		call := &flightCall{done: make(chan struct{})}
		g.calls[key] = call
		g.mu.Unlock()

		call.bytes, call.err = fn()

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(call.done)
		return call.bytes, call.err, true
	}
}
