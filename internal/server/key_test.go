// Canonical-key contract tests: the content-addressed cache is sound only
// if the key is stable across JSON spellings of the same experiment and
// injective across distinct experiments. FuzzCanonicalKey drives both
// properties from arbitrary bodies.
package server

import (
	"encoding/json"
	"testing"

	"repro/rmt"
)

func mustKey(t *testing.T, body string) string {
	t.Helper()
	_, _, key, err := parseRun([]byte(body))
	if err != nil {
		t.Fatalf("parseRun(%s): %v", body, err)
	}
	return key
}

func TestCanonicalKeyStableAcrossFieldOrder(t *testing.T) {
	a := mustKey(t, `{"mode":"srt","programs":["gcc","go"],"psr":true,"budget":1000,"warmup":500}`)
	b := mustKey(t, `{"warmup":500,"psr":true,"budget":1000,"programs":["gcc","go"],"mode":"srt"}`)
	if a != b {
		t.Fatalf("field order forked the key:\n%s\n%s", a, b)
	}
}

func TestCanonicalKeyResolvesDefaults(t *testing.T) {
	implicit := mustKey(t, `{"mode":"srt","programs":["gcc"]}`)
	explicit := mustKey(t, `{"mode":"srt","programs":["gcc"],"budget":30000,"warmup":20000}`)
	if implicit != explicit {
		t.Fatalf("default sizes and their explicit spelling are the same experiment but keyed apart")
	}
}

func TestCanonicalKeyZeroesIgnoredCheckerLatency(t *testing.T) {
	a := mustKey(t, `{"mode":"srt","programs":["gcc"],"checker_latency":8}`)
	b := mustKey(t, `{"mode":"srt","programs":["gcc"]}`)
	if a != b {
		t.Fatalf("checker latency is ignored outside lockstep but forked the key")
	}
	l0 := mustKey(t, `{"mode":"lockstep","programs":["gcc"]}`)
	l8 := mustKey(t, `{"mode":"lockstep","programs":["gcc"],"checker_latency":8}`)
	if l0 == l8 {
		t.Fatalf("Lock0 and Lock8 are distinct experiments but share a key")
	}
}

func TestCanonicalKeyDistinguishesExperiments(t *testing.T) {
	base := `{"mode":"srt","programs":["gcc"],"budget":1000,"warmup":500}`
	distinct := []string{
		`{"mode":"crt","programs":["gcc"],"budget":1000,"warmup":500}`,
		`{"mode":"srt","programs":["go"],"budget":1000,"warmup":500}`,
		`{"mode":"srt","programs":["gcc","gcc"],"budget":1000,"warmup":500}`,
		`{"mode":"srt","programs":["gcc"],"budget":1001,"warmup":500}`,
		`{"mode":"srt","programs":["gcc"],"budget":1000,"warmup":501}`,
		`{"mode":"srt","programs":["gcc"],"budget":1000,"warmup":500,"psr":true}`,
		`{"mode":"srt","programs":["gcc"],"budget":1000,"warmup":500,"per_thread_sq":true}`,
		`{"mode":"srt","programs":["gcc"],"budget":1000,"warmup":500,"no_store_comparison":true}`,
	}
	seen := map[string]string{mustKey(t, base): base}
	for _, body := range distinct {
		k := mustKey(t, body)
		if prev, dup := seen[k]; dup {
			t.Fatalf("distinct experiments collide:\n%s\n%s", prev, body)
		}
		seen[k] = body
	}
}

func TestEndpointIsPartOfKey(t *testing.T) {
	_, _, runKey, err := parseRun([]byte(`{"mode":"srt","programs":["gcc"]}`))
	if err != nil {
		t.Fatal(err)
	}
	_, _, sweepKey, err := parseSweep([]byte(`{"specs":[{"mode":"srt","programs":["gcc"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if runKey == sweepKey {
		t.Fatalf("/run and /sweep share a key for overlapping experiments")
	}
}

// FuzzCanonicalKey proves, over arbitrary bodies, that canonicalisation
// is (1) stable across JSON field ordering and (2) injective on valid
// requests: any semantic mutation of the canonical form changes the key,
// and any non-semantic respelling does not.
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte(`{"mode":"srt","programs":["gcc"],"budget":1000,"warmup":500}`))
	f.Add([]byte(`{"mode":"crt","programs":["gcc","swim"],"psr":true}`))
	f.Add([]byte(`{"mode":"lockstep","programs":["li"],"checker_latency":8}`))
	f.Add([]byte(`{"warmup":1,"budget":2,"programs":["compress"],"mode":"base2"}`))
	f.Add([]byte(`{"mode":"base","programs":["fpppp","applu","mgrid"],"per_thread_sq":true,"no_store_comparison":true}`))
	// Generated kernels are first-class experiment identities: their names
	// must canonicalise and key exactly like registry names.
	f.Add([]byte(`{"mode":"srt","programs":["gen:7"],"budget":1000,"warmup":500}`))
	f.Add([]byte(`{"mode":"crt","programs":["gen:12926140234400183891","gen:5988186966546787131"],"psr":true}`))
	f.Add([]byte(`{"mode":"base","programs":["gen:0","gcc","gen:18446744073709551615"]}`))

	kernels := rmt.Kernels()

	f.Fuzz(func(t *testing.T, body []byte) {
		req, mode, k1, err := parseRun(body)
		if err != nil {
			t.Skip() // not a valid request: no key to reason about
		}

		// Stability: re-spell the same body with sorted field order (via a
		// map round-trip) — the key must not move.
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(body, &fields); err != nil {
			t.Fatalf("struct decode accepted what map decode rejects: %v", err)
		}
		respelled, err := json.Marshal(fields)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, k2, err := parseRun(respelled); err != nil {
			t.Fatalf("respelled body stopped parsing: %v", err)
		} else if k2 != k1 {
			t.Fatalf("field order forked the key:\nbody      %s\nrespelled %s", body, respelled)
		}

		// Stability: the canonical form itself re-keys identically.
		canon, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, k3, err := parseRun(canon); err != nil {
			t.Fatalf("canonical form stopped parsing: %v", err)
		} else if k3 != k1 {
			t.Fatalf("canonicalisation is not idempotent")
		}

		// Injectivity: every semantic mutation of the canonical request
		// must move the key.
		mutate := func(name string, fn func(r *RunRequest)) {
			m := req
			m.Programs = append([]string(nil), req.Programs...)
			fn(&m)
			mb, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			_, _, mk, err := parseRun(mb)
			if err != nil {
				t.Fatalf("mutation %s produced an invalid request: %v", name, err)
			}
			if mk == k1 {
				t.Fatalf("mutation %s did not change the key (body %s)", name, mb)
			}
		}
		mutate("budget+1", func(r *RunRequest) { r.Budget++ })
		mutate("warmup+1", func(r *RunRequest) { r.Warmup++ })
		mutate("flip psr", func(r *RunRequest) { r.PSR = !r.PSR })
		mutate("flip per_thread_sq", func(r *RunRequest) { r.PerThreadSQ = !r.PerThreadSQ })
		mutate("flip no_store_comparison", func(r *RunRequest) { r.NoStoreComparison = !r.NoStoreComparison })
		mutate("append program", func(r *RunRequest) { r.Programs = append(r.Programs, kernels[0]) })
		mutate("switch mode", func(r *RunRequest) {
			next := map[string]string{"base": "base2", "base2": "srt", "srt": "crt", "crt": "lockstep", "lockstep": "base"}
			r.Mode = next[r.Mode]
		})
		if mode == rmt.Lockstep {
			mutate("checker_latency+1", func(r *RunRequest) { r.CheckerLatency++ })
		} else {
			// Non-semantic outside lockstep: must NOT move the key.
			m := req
			m.CheckerLatency = 5
			mb, _ := json.Marshal(m)
			if _, _, mk, err := parseRun(mb); err != nil {
				t.Fatal(err)
			} else if mk != k1 {
				t.Fatalf("ignored checker latency forked the key for mode %s", req.Mode)
			}
		}
		if len(req.Programs) > 1 && req.Programs[0] != req.Programs[len(req.Programs)-1] {
			mutate("reverse programs", func(r *RunRequest) {
				for i, j := 0, len(r.Programs)-1; i < j; i, j = i+1, j-1 {
					r.Programs[i], r.Programs[j] = r.Programs[j], r.Programs[i]
				}
			})
		}
	})
}
