// Admission control: a bounded worker pool plus a bounded wait queue.
// Requests beyond workers+queue are rejected immediately with
// errOverloaded (mapped to 429 + Retry-After by the handler), so overload
// produces fast, explicit pushback instead of unbounded goroutine and
// memory growth.
package server

import (
	"context"
	"errors"
	"sync"
)

// errOverloaded is returned by limiter.acquire when both the worker pool
// and the wait queue are full.
var errOverloaded = errors.New("server overloaded: worker pool and queue full")

// limiter is a counting semaphore (the worker pool) with a bounded number
// of blocked acquirers (the queue).
type limiter struct {
	slots chan struct{} // buffered to the worker count

	mu      sync.Mutex
	waiting int
	maxWait int
}

func newLimiter(workers, queueDepth int) *limiter {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &limiter{slots: make(chan struct{}, workers), maxWait: queueDepth}
}

// acquire claims a worker slot, queueing if the pool is busy and the
// queue has room. It fails fast with errOverloaded at capacity and with
// ctx.Err() if the caller gives up while queued.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	l.mu.Lock()
	if l.waiting >= l.maxWait {
		l.mu.Unlock()
		return errOverloaded
	}
	l.waiting++
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.waiting--
		l.mu.Unlock()
	}()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot.
func (l *limiter) release() { <-l.slots }

// depth reports the current queue occupancy (blocked acquirers).
func (l *limiter) depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// inFlight reports the busy worker count.
func (l *limiter) inFlight() int { return len(l.slots) }
