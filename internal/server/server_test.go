// End-to-end battery for rmtd's serving layer, run under -race in CI:
// byte-equality against the direct facade, cache hit/miss equivalence,
// single-flight dedup under a 100-request stampede, 429 backpressure at
// queue capacity, and graceful drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/rmt"
)

// Small sizes keep a single request in the low milliseconds.
const (
	tBudget uint64 = 1500
	tWarmup uint64 = 800
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, b := postRaw(url, body)
	return resp, b
}

func runBody(mode, prog string, budget, warmup uint64) string {
	return fmt.Sprintf(`{"mode":%q,"programs":[%q],"budget":%d,"warmup":%d}`, mode, prog, budget, warmup)
}

func TestRunByteEqualsDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	direct, err := rmt.Run(context.Background(), rmt.Spec{Mode: rmt.SRT, Programs: []string{"gcc"}},
		rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeResult(direct)

	resp, got := post(t, ts.URL+"/run", runBody("srt", "gcc", tBudget, tWarmup))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if string(got) != string(want) {
		t.Fatalf("/run response differs from direct rmt.Run encoding:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
}

func TestSweepByteEqualsDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{SimParallelism: 4})
	specs := []rmt.Spec{
		{Mode: rmt.Base, Programs: []string{"compress"}},
		{Mode: rmt.SRT, Programs: []string{"compress"}, PSR: true},
	}
	direct, err := rmt.Sweep(context.Background(), specs, rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeResults(direct)

	body := fmt.Sprintf(`{"specs":[{"mode":"base","programs":["compress"]},{"mode":"srt","programs":["compress"],"psr":true}],"budget":%d,"warmup":%d}`, tBudget, tWarmup)
	resp, got := post(t, ts.URL+"/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("/sweep response differs from direct rmt.Sweep encoding")
	}
}

func snapshotOf(t *testing.T, ts *httptest.Server) *metrics.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metricsz: %v", err)
	}
	return &snap
}

func counter(t *testing.T, snap *metrics.Snapshot, name string, labels metrics.Labels) uint64 {
	t.Helper()
	v, ok := snap.CounterValue(name, labels)
	if !ok {
		t.Fatalf("metric %s%v missing from snapshot", name, labels)
	}
	return v
}

func TestCacheHitMissEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := runBody("srt", "compress", tBudget, tWarmup)

	r1, b1 := post(t, ts.URL+"/run", body)
	r2, b2 := post(t, ts.URL+"/run", body)
	if r1.Header.Get("X-Cache") != "miss" || r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache sequence = %q, %q; want miss, hit", r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"))
	}
	if string(b1) != string(b2) {
		t.Fatalf("cache hit served different bytes than the miss that filled it")
	}

	// A differently-spelled JSON body of the same experiment must hit too.
	respelled := fmt.Sprintf(`{"warmup":%d,"budget":%d,"programs":["compress"],"mode":"srt","psr":false}`, tWarmup, tBudget)
	r3, b3 := post(t, ts.URL+"/run", respelled)
	if r3.Header.Get("X-Cache") != "hit" {
		t.Fatalf("reordered body X-Cache = %q, want hit", r3.Header.Get("X-Cache"))
	}
	if string(b3) != string(b1) {
		t.Fatalf("reordered body served different bytes")
	}

	snap := snapshotOf(t, ts)
	lab := metrics.Labels{"endpoint": "run"}
	if got := counter(t, snap, "rmtd_cache_hits_total", nil); got != 2 {
		t.Errorf("cache hits = %d, want 2", got)
	}
	if got := counter(t, snap, "rmtd_cache_misses_total", nil); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	if got := counter(t, snap, "rmtd_computes_total", lab); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
	if got := counter(t, snap, "rmtd_requests_total", lab); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if v, ok := snap.Get("rmtd_cache_hit_ratio", nil); !ok || v.Gauge == nil {
		t.Errorf("cache hit ratio gauge missing")
	} else if want := 2.0 / 3.0; *v.Gauge < want-1e-9 || *v.Gauge > want+1e-9 {
		t.Errorf("cache hit ratio = %v, want %v", *v.Gauge, want)
	}
}

func TestSingleFlightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 4})
	body := runBody("srt", "go", tBudget, tWarmup)

	const n = 100
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d read: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d served different bytes than request 0", i)
		}
	}
	if got := s.run.computes.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests computed %d times, want 1", n, got)
	}
}

// gate installs a computeWrap that parks every computation until release
// is closed, announcing each entry on started.
func gate(s *Server) (started chan string, release chan struct{}) {
	started = make(chan string, 64)
	release = make(chan struct{})
	s.computeWrap = func(key string, compute func() ([]byte, error)) func() ([]byte, error) {
		return func() ([]byte, error) {
			started <- key
			<-release
			return compute()
		}
	}
	return started, release
}

func TestOverload429AtQueueCapacity(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	started, release := gate(s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	type reply struct {
		status int
		body   []byte
	}
	fire := func(budget uint64) chan reply {
		ch := make(chan reply, 1)
		go func() {
			resp, body := postRaw(ts.URL+"/run", runBody("srt", "ijpeg", budget, tWarmup))
			ch <- reply{resp.StatusCode, body}
		}()
		return ch
	}

	// r1 occupies the single worker (parked inside compute).
	r1 := fire(1001)
	<-started
	// r2 takes the single queue slot.
	r2 := fire(1002)
	waitFor(t, func() bool { return s.lim.depth() == 1 }, "queued request")

	// r3 must be shed immediately.
	resp3, body3 := postRaw(ts.URL+"/run", runBody("srt", "ijpeg", 1003, tWarmup))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429 (body %s)", resp3.StatusCode, body3)
	}
	if ra := resp3.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	close(release)
	<-started // r2's compute begins once r1 frees the worker
	if rep := <-r1; rep.status != http.StatusOK {
		t.Fatalf("r1 status = %d: %s", rep.status, rep.body)
	}
	if rep := <-r2; rep.status != http.StatusOK {
		t.Fatalf("r2 status = %d: %s", rep.status, rep.body)
	}
	if got := s.run.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestFollowerSurvivesLeaderClientCancel: when a flight leader's client
// disconnects while the leader is queued for admission, concurrent
// identical requests from still-connected clients must not inherit the
// leader's context-canceled error — they retry the flight under their own
// contexts and get the result.
func TestFollowerSurvivesLeaderClientCancel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	started, release := gate(s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	type reply struct {
		status int
		body   []byte
	}

	// r0 occupies the single worker, parked inside compute.
	r0 := make(chan reply, 1)
	go func() {
		resp, body := postRaw(ts.URL+"/run", runBody("srt", "gcc", 1001, tWarmup))
		r0 <- reply{resp.StatusCode, body}
	}()
	<-started

	// The leader posts the flight key with a cancellable client and blocks
	// queued in admission.
	bodyK := runBody("srt", "compress", 1002, tWarmup)
	ctxL, cancelL := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, err := http.NewRequestWithContext(ctxL, http.MethodPost, ts.URL+"/run", strings.NewReader(bodyK))
		if err != nil {
			t.Error(err)
			return
		}
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.lim.depth() == 1 }, "leader queued for admission")

	// A follower with a live client joins the same flight.
	follower := make(chan reply, 1)
	go func() {
		resp, body := postRaw(ts.URL+"/run", bodyK)
		follower <- reply{resp.StatusCode, body}
	}()
	waitFor(t, func() bool { return s.run.requests.Load() == 3 }, "follower to reach the flight")

	// The leader's client gives up; its context error is its own, not the
	// follower's.
	cancelL()
	<-leaderDone
	close(release) // r0 completes, freeing the worker for the follower's retry

	if rep := <-follower; rep.status != http.StatusOK {
		t.Fatalf("follower after leader cancel: status %d: %s", rep.status, rep.body)
	}
	if rep := <-r0; rep.status != http.StatusOK {
		t.Fatalf("r0 status = %d: %s", rep.status, rep.body)
	}
}

// TestComputeFailureIs500: an internal computation error is the server's
// fault, not the client's.
func TestComputeFailureIs500(t *testing.T) {
	s := New(Config{})
	s.computeWrap = func(key string, compute func() ([]byte, error)) func() ([]byte, error) {
		return func() ([]byte, error) { return nil, errors.New("compute exploded") }
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := post(t, ts.URL+"/run", runBody("srt", "gcc", tBudget, tWarmup))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("compute failure status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if got := s.run.errors.Load(); got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
}

func postRaw(url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	return resp, b
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second) //rmtlint:allow determinism — test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //rmtlint:allow determinism — test polling deadline
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGracefulDrainOnShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	started, release := gate(s)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	// An in-flight request parks inside compute.
	inflight := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		resp, body := postRaw(base+"/run", runBody("crt", "swim", tBudget, tWarmup))
		inflight <- struct {
			status int
			body   []byte
		}{resp.StatusCode, body}
	}()
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Drain mode flips /healthz to 503 (observed through the handler: the
	// listener stops accepting during shutdown).
	waitFor(t, func() bool {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rec.Code == http.StatusServiceUnavailable
	}, "healthz to report draining")

	// The in-flight request survives the drain and completes.
	close(release)
	rep := <-inflight
	if rep.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", rep.status, rep.body)
	}
	if len(rep.body) == 0 {
		t.Fatalf("in-flight request served an empty body")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	// The socket is closed: new work is refused, not queued.
	if _, err := http.Post(base+"/run", "application/json", strings.NewReader(runBody("srt", "gcc", tBudget, tWarmup))); err == nil {
		t.Fatalf("request after drain unexpectedly succeeded")
	}
}

func TestCampaignEndpointMatchesDirectAndCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{SimParallelism: 2})
	const (
		n      = 4
		seed   = 7
		budget = 4000
		warmup = 1500
	)
	direct, err := fault.CampaignParallel(sim.Spec{
		Mode:     sim.ModeSRT,
		Programs: []string{"compress"},
		Budget:   budget,
		Warmup:   warmup,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	}, n, seed, fault.CampaignOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	body := fmt.Sprintf(`{"mode":"srt","programs":["compress"],"psr":true,"n":%d,"seed":%d,"budget":%d,"warmup":%d}`, n, seed, budget, warmup)
	r1, b1 := post(t, ts.URL+"/campaign", body)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", r1.StatusCode, b1)
	}
	var got CampaignResponse
	if err := json.Unmarshal(b1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Runs != direct.Runs || got.Detected != direct.Detected ||
		got.Masked != direct.Masked || got.NotFired != direct.NotFired ||
		got.Coverage != direct.Coverage() || got.TotalCycles != direct.TotalCycles {
		t.Fatalf("campaign response %+v disagrees with direct summary", got)
	}
	for i, res := range direct.Results {
		if got.Outcomes[i] != res.Outcome.String() {
			t.Fatalf("outcome %d = %q, want %q", i, got.Outcomes[i], res.Outcome)
		}
	}

	r2, b2 := post(t, ts.URL+"/campaign", body)
	if r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second campaign X-Cache = %q, want hit", r2.Header.Get("X-Cache"))
	}
	if string(b1) != string(b2) {
		t.Fatalf("cached campaign served different bytes")
	}
}

// TestCampaignPassesThroughNoStoreComparison: a campaign with
// no_store_comparison=true must be computed with store comparison
// disabled, not silently served the default experiment under a distinct
// cache key.
func TestCampaignPassesThroughNoStoreComparison(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const (
		n      = 4
		seed   = 7
		budget = 4000
		warmup = 1500
	)
	direct, err := fault.CampaignParallel(sim.Spec{
		Mode:              sim.ModeSRT,
		Programs:          []string{"compress"},
		Budget:            budget,
		Warmup:            warmup,
		Config:            pipeline.DefaultConfig(),
		NoStoreComparison: true,
	}, n, seed, fault.CampaignOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	body := fmt.Sprintf(`{"mode":"srt","programs":["compress"],"no_store_comparison":true,"n":%d,"seed":%d,"budget":%d,"warmup":%d}`, n, seed, budget, warmup)
	resp, b := post(t, ts.URL+"/campaign", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got CampaignResponse
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Detected != direct.Detected || got.Masked != direct.Masked ||
		got.NotFired != direct.NotFired || got.Coverage != direct.Coverage() ||
		got.TotalCycles != direct.TotalCycles {
		t.Fatalf("nosc campaign response %+v disagrees with direct nosc summary %+v", got, direct)
	}
	for i, res := range direct.Results {
		if got.Outcomes[i] != res.Outcome.String() {
			t.Fatalf("outcome %d = %q, want %q", i, got.Outcomes[i], res.Outcome)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"invalid json", "/run", `{"mode":`, http.StatusBadRequest},
		{"unknown mode", "/run", `{"mode":"turbo","programs":["gcc"]}`, http.StatusBadRequest},
		{"unknown kernel", "/run", `{"mode":"srt","programs":["notakernel"]}`, http.StatusBadRequest},
		{"no programs", "/run", `{"mode":"srt","programs":[]}`, http.StatusBadRequest},
		{"unknown field", "/run", `{"mode":"srt","programs":["gcc"],"bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", "/run", `{"mode":"srt","programs":["gcc"]} extra`, http.StatusBadRequest},
		{"empty sweep", "/sweep", `{"specs":[]}`, http.StatusBadRequest},
		{"campaign non-rmt mode", "/campaign", `{"mode":"base","programs":["gcc"],"n":4}`, http.StatusBadRequest},
		{"campaign zero trials", "/campaign", `{"mode":"srt","programs":["gcc"],"n":0}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not the JSON error envelope", body)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status = %d, want 405", resp.StatusCode)
	}
}

func TestClientHelpersRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := rmt.NewClient(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	spec := rmt.Spec{Mode: rmt.SRT, Programs: []string{"li"}, PSR: true}
	direct, err := rmt.Run(context.Background(), spec, rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx, spec, rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatalf("client Run: %v", err)
	}
	if !reflect.DeepEqual(got, direct) {
		t.Fatalf("client Run result differs from direct rmt.Run:\ngot  %+v\nwant %+v", got, direct)
	}

	specs := []rmt.Spec{
		{Mode: rmt.Base, Programs: []string{"li"}},
		{Mode: rmt.SRT, Programs: []string{"li"}},
	}
	directSweep, err := rmt.Sweep(context.Background(), specs, rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatal(err)
	}
	gotSweep, err := c.Sweep(ctx, specs, rmt.WithBudget(tBudget), rmt.WithWarmup(tWarmup))
	if err != nil {
		t.Fatalf("client Sweep: %v", err)
	}
	if !reflect.DeepEqual(gotSweep, directSweep) {
		t.Fatalf("client Sweep results differ from direct rmt.Sweep")
	}

	sum, err := c.Campaign(ctx, rmt.CampaignSpec{
		Spec: rmt.Spec{Mode: rmt.SRT, Programs: []string{"compress"}, PSR: true},
		N:    3, Seed: 11,
	}, rmt.WithBudget(3000), rmt.WithWarmup(1000))
	if err != nil {
		t.Fatalf("client Campaign: %v", err)
	}
	if sum.Runs != 3 || len(sum.Outcomes) != 3 {
		t.Fatalf("campaign summary %+v, want 3 runs with 3 outcomes", sum)
	}

	// The Runner seam: the identical campaign through the in-process
	// engine and through the daemon client yields the identical summary,
	// so call sites can swap backends freely.
	for _, rn := range []rmt.Runner{rmt.Local{}, c} {
		got, err := rn.Campaign(ctx, rmt.CampaignSpec{
			Spec: rmt.Spec{Mode: rmt.SRT, Programs: []string{"compress"}, PSR: true},
			N:    3, Seed: 11,
		}, rmt.WithBudget(3000), rmt.WithWarmup(1000))
		if err != nil {
			t.Fatalf("Runner %T Campaign: %v", rn, err)
		}
		if !reflect.DeepEqual(got, sum) {
			t.Fatalf("Runner %T campaign summary differs:\ngot  %+v\nwant %+v", rn, got, sum)
		}
	}

	mb, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("client Metrics: %v", err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("client Metrics returned unparseable snapshot: %v", err)
	}
	if _, ok := snap.CounterValue("rmtd_requests_total", metrics.Labels{"endpoint": "run"}); !ok {
		t.Fatalf("snapshot lacks rmtd_requests_total{endpoint=run}")
	}
}

func TestClientSeesRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1, RetryAfter: 2 * time.Second})
	started, release := gate(s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		postRaw(ts.URL+"/run", runBody("srt", "perl", 1001, tWarmup))
	}()
	<-started

	c := rmt.NewClient(ts.URL)
	_, err := c.Run(context.Background(), rmt.Spec{Mode: rmt.SRT, Programs: []string{"perl"}},
		rmt.WithBudget(1002), rmt.WithWarmup(tWarmup))
	var ra *rmt.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("overloaded client error = %v, want *rmt.RetryAfterError", err)
	}
	if ra.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", ra.RetryAfter)
	}
	close(release)
	<-done
}

// TestListenAndServeRoundTrip exercises the real-socket path cmd/rmtd
// uses: bind :0, learn the address through the ready callback, serve one
// request over TCP, shut down cleanly.
func TestListenAndServeRoundTrip(t *testing.T) {
	s := New(Config{Workers: 1})
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe("127.0.0.1:0", func(a net.Addr) { ready <- a }) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("ListenAndServe failed before binding: %v", err)
	}
	base := "http://" + addr.String()
	resp, b := postRaw(base+"/run", runBody("srt", "compress", tBudget, tWarmup))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run over TCP: %d %s", resp.StatusCode, b)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("ListenAndServe returned %v, want http.ErrServerClosed", err)
	}
}

// TestShutdownBeforeServe: a server that never served drains trivially,
// and a Serve that loses the race with Shutdown refuses to run (closing
// its listener) instead of serving forever — cmd/rmtd waits on Serve's
// error after Shutdown, so this is what keeps an early signal from
// hanging the daemon.
func TestShutdownBeforeServe(t *testing.T) {
	s := New(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown of never-served server: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve after Shutdown returned %v, want http.ErrServerClosed", err)
	}
}
