package predict

import (
	"repro/internal/snap"
	"repro/internal/stats"
)

// Snapshot support for the prediction structures. Table geometry comes from
// configuration; only table contents, per-thread histories, and counters
// travel. 8-bit counter tables are written as byte strings to keep the
// stream compact (a branch predictor alone is three 32K-entry tables).

// SnapshotTo writes the line predictor's table and counters.
func (l *LinePredictor) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(l.table)))
	for _, v := range l.table {
		w.U64(v)
	}
	w.U64(l.Lookups.Value())
	w.U64(l.Wrong.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (l *LinePredictor) RestoreFrom(r *snap.Reader) {
	if int(r.U64()) != len(l.table) {
		r.Failf("line predictor size mismatch")
		return
	}
	for i := range l.table {
		l.table[i] = r.U64()
	}
	l.Lookups = stats.Counter(r.U64())
	l.Wrong = stats.Counter(r.U64())
}

// SnapshotTo writes the branch predictor's tables, histories, and counters.
func (b *BranchPredictor) SnapshotTo(w *snap.Writer) {
	w.Bytes(b.bimodal)
	w.Bytes(b.gshare)
	w.Bytes(b.choice)
	for _, h := range b.history {
		w.U64(h)
	}
	w.U64(b.Lookups.Value())
	w.U64(b.Wrong.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (b *BranchPredictor) RestoreFrom(r *snap.Reader) {
	for _, dst := range [][]uint8{b.bimodal, b.gshare, b.choice} {
		src := r.Bytes()
		if r.Err() != nil {
			return
		}
		if len(src) != len(dst) {
			r.Failf("branch predictor table size mismatch")
			return
		}
		copy(dst, src)
	}
	for i := range b.history {
		b.history[i] = r.U64()
	}
	b.Lookups = stats.Counter(r.U64())
	b.Wrong = stats.Counter(r.U64())
}

// SnapshotTo writes the return address stack contents and pointers.
func (ras *RAS) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(ras.stack)))
	for _, v := range ras.stack {
		w.U64(v)
	}
	w.Int(ras.top)
	w.Int(ras.depth)
}

// RestoreFrom reads state written by SnapshotTo.
func (ras *RAS) RestoreFrom(r *snap.Reader) {
	if int(r.U64()) != len(ras.stack) {
		r.Failf("RAS depth mismatch")
		return
	}
	for i := range ras.stack {
		ras.stack[i] = r.U64()
	}
	ras.top = r.Int()
	ras.depth = r.Int()
}

// SnapshotTo writes the jump predictor's table and counters.
func (j *JumpPredictor) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(j.table)))
	for _, v := range j.table {
		w.U64(v)
	}
	w.U64(j.Lookups.Value())
	w.U64(j.Wrong.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (j *JumpPredictor) RestoreFrom(r *snap.Reader) {
	if int(r.U64()) != len(j.table) {
		r.Failf("jump predictor size mismatch")
		return
	}
	for i := range j.table {
		j.table[i] = r.U64()
	}
	j.Lookups = stats.Counter(r.U64())
	j.Wrong = stats.Counter(r.U64())
}

// SnapshotTo writes the store-sets tables, the cyclic-clear phase, and
// counters.
func (s *StoreSets) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(s.ssit)))
	for _, v := range s.ssit {
		w.I64(int64(v))
	}
	w.U64(uint64(len(s.lfst)))
	for _, v := range s.lfst {
		w.U64(v)
	}
	w.U64(s.accesses)
	w.U64(s.Assignments.Value())
	w.U64(s.Violations.Value())
	w.U64(s.Clears.Value())
}

// RestoreFrom reads state written by SnapshotTo.
func (s *StoreSets) RestoreFrom(r *snap.Reader) {
	if int(r.U64()) != len(s.ssit) {
		r.Failf("store-sets SSIT size mismatch")
		return
	}
	for i := range s.ssit {
		s.ssit[i] = int32(r.I64())
	}
	if int(r.U64()) != len(s.lfst) {
		r.Failf("store-sets LFST size mismatch")
		return
	}
	for i := range s.lfst {
		s.lfst[i] = r.U64()
	}
	s.accesses = r.U64()
	s.Assignments = stats.Counter(r.U64())
	s.Violations = stats.Counter(r.U64())
	s.Clears = stats.Counter(r.U64())
}
